// Search hot-path benchmarks: the compiled-plan episode engine's
// steady-state cost. These are the benches scripts/bench.sh runs and
// the CI bench-smoke job tracks with benchstat against
// bench/baseline.txt (the committed pre-searchplan numbers).
package qsdnn

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// BenchmarkSearchEpisodes runs the paper's full 1000-episode QS-DNN
// search on the AlexNet GPGPU table once per iteration — the
// episodes/sec headline of the zero-alloc engine work. The default
// sub-benchmark is the byte-identical serial replay; batched flips
// qlearn.Config.BatchedReplay, trading the serial ordering for the
// wave scheme (deterministic, own goldens, ~2x the episode rate).
func BenchmarkSearchEpisodes(b *testing.B) {
	tab := benchTable(b, "alexnet", primitives.ModeGPGPU)
	for _, bc := range []struct {
		name    string
		batched bool
	}{{"default", false}, {"batched", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := core.Config{Episodes: 1000, Seed: 1}
			cfg.Agent.BatchedReplay = bc.batched
			b.ReportAllocs()
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Search(tab, cfg)
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)*float64(cfg.Episodes)/sec, "episodes/s")
			}
			b.ReportMetric(res.Time*1e3, "ms_best")
		})
	}
}

// BenchmarkReplayInto measures the replay loop in isolation: one full
// replay pass (128 sampled episodes re-applied to the Q-table) per
// iteration, at AlexNet-like dimensions.
func BenchmarkReplayInto(b *testing.B) {
	const steps, prims, epLen, capacity = 16, 24, 15, 128
	rng := rand.New(rand.NewSource(1))
	allowed := make([]int, prims)
	for i := range allowed {
		allowed[i] = i
	}
	q := qlearn.NewTable(steps, prims)
	replay := qlearn.NewReplay(capacity)
	traj := make([]qlearn.Transition, epLen)
	cfg := qlearn.PaperConfig()
	for ep := 0; ep < capacity; ep++ {
		prev := 0
		for k := 0; k < epLen; k++ {
			action := rng.Intn(prims)
			var next []int
			if k+1 < epLen {
				next = allowed
			}
			traj[k] = qlearn.Transition{Step: k, Prim: prev, Action: action, Reward: -rng.Float64(), NextAllowed: next}
			prev = action
		}
		replay.Add(traj)
	}
	for _, bc := range []struct {
		name    string
		batched bool
	}{{"default", false}, {"batched", true}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := cfg
			cfg.BatchedReplay = bc.batched
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replay.ReplayInto(q, cfg, capacity, rng)
			}
		})
	}
}

// BenchmarkPlanTotalTime measures one full-assignment evaluation on
// the compiled plan — the cost of an episode's terminal reward.
func BenchmarkPlanTotalTime(b *testing.B) {
	tab := benchTable(b, "alexnet", primitives.ModeGPGPU)
	plan := searchplan.Compile(tab)
	rng := rand.New(rand.NewSource(1))
	apos := make([]int32, plan.NumLayers())
	for i := 1; i < plan.NumLayers(); i++ {
		apos[i] = int32(rng.Intn(plan.NumCandidates(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += plan.TotalTimePos(apos)
	}
	_ = sink
}
