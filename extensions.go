package qsdnn

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/profile"
)

// This file exposes the paper's §VII future-work directions, built as
// first-class extensions:
//
//   - multi-objective (latency + energy) search and Pareto sweeps,
//   - a PBQP solver (the Anderson & Gregg comparator),
//   - linear value-function approximation for very deep networks,
//   - additional heterogeneous board presets.

// MultiResult is a multi-objective search outcome.
type MultiResult = core.MultiResult

// ParetoPoint is one point of a latency/energy front.
type ParetoPoint = core.ParetoPoint

// Platforms lists the built-in board presets by name.
func Platforms() []string {
	names := make([]string, 0, len(platform.Presets()))
	for n := range platform.Presets() {
		names = append(names, n)
	}
	return names
}

// NewPlatform builds a board preset by name ("tx2-like", "tx1-like",
// "nano-like", "xavier-like", "cpu-only").
func NewPlatform(name string) (*Platform, error) {
	p, ok := platform.Preset(name)
	if !ok {
		return nil, fmt.Errorf("qsdnn: unknown platform %q (available: %v)", name, Platforms())
	}
	return p, nil
}

// ProfileWithEnergy runs the inference phase measuring both latency
// (seconds) and energy (joules), returning one table per objective.
func ProfileWithEnergy(net *Network, pl *Platform, mode Mode, samples int) (timeTab, energyTab *Table, err error) {
	if samples == 0 {
		samples = 50
	}
	return profile.RunWithEnergy(net, profile.NewSimSource(net, pl),
		profile.Options{Mode: mode, Samples: samples})
}

// OptimizeMulti searches with the scalarized objective
// latency + lambda*energy. lambda = 0 is the plain latency search;
// larger lambda trades speed for joules.
func OptimizeMulti(timeTab, energyTab *Table, lambda float64, cfg SearchConfig) (*MultiResult, error) {
	return core.SearchMulti(timeTab, energyTab, lambda, cfg)
}

// Pareto sweeps the trade-off weight and returns the non-dominated
// latency/energy points. nil lambdas selects a default sweep.
func Pareto(timeTab, energyTab *Table, lambdas []float64, cfg SearchConfig) ([]ParetoPoint, error) {
	return core.ParetoFront(timeTab, energyTab, lambdas, cfg)
}

// PBQP solves the selection problem with partitioned boolean quadratic
// programming (exact on chains/trees, heuristic on branchy graphs) —
// the prior-art comparator from Anderson & Gregg.
func PBQP(tab *Table) *Result { return core.PBQP(tab) }

// SearchApprox runs the linear value-function-approximation agent —
// the scalable alternative to the tabular Q-table for very deep
// networks. The network is needed to build layer-kind features.
func SearchApprox(tab *Table, net *nn.Network, cfg SearchConfig) (*Result, error) {
	return core.SearchApprox(tab, net, core.ApproxConfig{Config: cfg})
}

// EnergyOf evaluates an assignment's joules against an energy table.
func EnergyOf(energyTab *Table, r *Result) float64 {
	return core.EnergyOf(energyTab, r.Assignment)
}

// Plan is a deployment artifact: the explicit step sequence (compute,
// conversion, transfer, host return) a runtime executes for a searched
// assignment.
type Plan = plan.Plan

// BuildPlan turns a search result into a deployment plan over the
// table it was searched on.
func BuildPlan(net *Network, tab *Table, r *Result) (*Plan, error) {
	p, err := plan.Build(net, tab, r.Assignment)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(tab, r.Assignment); err != nil {
		return nil, err
	}
	return p, nil
}
