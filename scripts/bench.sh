#!/usr/bin/env sh
# Runs the search hot-path benchmarks and emits BENCH_search.json —
# the machine-readable perf record the CI bench-smoke job uploads and
# EXPERIMENTS.md quotes. The raw `go test -bench` text is preserved
# next to it for benchstat.
#
# Environment overrides:
#   BENCHTIME  per-benchmark budget (default 2s; CI smoke uses 1x)
#   COUNT      repetitions per benchmark (default 1)
#   OUT        output JSON path (default BENCH_search.json)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_search.json}"
RAW="${RAW:-bench/latest.txt}"

mkdir -p "$(dirname "$RAW")"

go test -run '^$' \
    -bench 'BenchmarkSearchEpisodes|BenchmarkReplayInto|BenchmarkPlanTotalTime' \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"

# Reduce the benchmark text to one JSON object per benchmark. Averages
# over COUNT repetitions; carries every reported metric through.
awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n[name]++
    for (i = 3; i + 1 <= NF; i += 2) {
        key = $(i + 1)
        gsub(/\//, "_per_", key)
        sum[name "\034" key] += $i
        seen[name "\034" key] = 1
        if (!(key in keyorder_seen)) { keyorder[++nk] = key; keyorder_seen[key] = 1 }
        metrics[name] = metrics[name] == "" ? key : metrics[name] "\035" key
    }
    if (!(name in order_seen)) { order[++no] = name; order_seen[name] = 1 }
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    for (b = 1; b <= no; b++) {
        name = order[b]
        printf "    {\"name\": \"%s\", \"count\": %d", name, n[name] >> out
        split(metrics[name], mk, "\035")
        delete done
        for (m = 1; m in mk; m++) {
            key = mk[m]
            if (key in done) continue
            done[key] = 1
            printf ", \"%s\": %.6g", key, sum[name "\034" key] / n[name] >> out
        }
        printf "}%s\n", (b < no ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
