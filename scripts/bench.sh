#!/usr/bin/env sh
# Runs the hot-path benchmarks and emits the machine-readable perf
# records the CI bench-smoke job uploads and EXPERIMENTS.md quotes:
#   BENCH_search.json   search-phase benchmarks (root package)
#   BENCH_kernels.json  GEMM/conv kernel + engine benchmarks
#   BENCH_serve.json    serving daemon: 64-client load percentiles
#                       (p50/p95/p99 latency, throughput)
#   BENCH_tuner.json    kernel autotuner: tuned-vs-default per-layer
#                       times and the end-to-end searched engine
#                       improvement on a real zoo network
# The raw `go test -bench` text is preserved next to them for
# benchstat (bench/latest.txt, bench/latest_kernels.txt,
# bench/latest_serve.txt).
#
# Environment overrides:
#   BENCHTIME  per-benchmark budget (default 2s; CI smoke uses 1x)
#   COUNT      repetitions per benchmark (default 1)
#   OUT        search JSON path (default BENCH_search.json)
#   KOUT       kernel JSON path (default BENCH_kernels.json)
#   SOUT       serve JSON path (default BENCH_serve.json)
#   TOUT       tuner JSON path (default BENCH_tuner.json)
#   TUNER_BUDGET  autotuner measurements per (layer, primitive)
#                 (default 8; CI smoke uses 4)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_search.json}"
KOUT="${KOUT:-BENCH_kernels.json}"
SOUT="${SOUT:-BENCH_serve.json}"
TOUT="${TOUT:-BENCH_tuner.json}"
TUNER_BUDGET="${TUNER_BUDGET:-8}"
RAW="${RAW:-bench/latest.txt}"
KRAW="${KRAW:-bench/latest_kernels.txt}"
SRAW="${SRAW:-bench/latest_serve.txt}"

mkdir -p "$(dirname "$RAW")"

# The dispatched GEMM micro-kernel (ISA) the numbers were measured
# with; recorded in every JSON so perf records from different hosts
# (or QSDNN_DISABLE_SIMD runs) are never compared apples-to-oranges.
KERNEL="$(go run ./cmd/qsdnn version | awk -F': ' '/^gemm kernel/ {print $2}')"

# emit_json RAWFILE OUTFILE: reduce benchmark text to one JSON object
# per benchmark. Averages over COUNT repetitions; carries every
# reported metric through. The header records the dispatched kernel.
emit_json() {
    awk -v out="$2" -v kern="$KERNEL" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n[name]++
    for (i = 3; i + 1 <= NF; i += 2) {
        key = $(i + 1)
        gsub(/\//, "_per_", key)
        sum[name "\034" key] += $i
        seen[name "\034" key] = 1
        if (!(key in keyorder_seen)) { keyorder[++nk] = key; keyorder_seen[key] = 1 }
        metrics[name] = metrics[name] == "" ? key : metrics[name] "\035" key
    }
    if (!(name in order_seen)) { order[++no] = name; order_seen[name] = 1 }
}
END {
    printf "{\n  \"gemm_kernel\": \"%s\",\n  \"benchmarks\": [\n", kern > out
    for (b = 1; b <= no; b++) {
        name = order[b]
        printf "    {\"name\": \"%s\", \"count\": %d", name, n[name] >> out
        split(metrics[name], mk, "\035")
        delete done
        for (m = 1; m in mk; m++) {
            key = mk[m]
            if (key in done) continue
            done[key] = 1
            printf ", \"%s\": %.6g", key, sum[name "\034" key] / n[name] >> out
        }
        printf "}%s\n", (b < no ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
}
' "$1"
    echo "wrote $2"
}

# Search-phase benchmarks (root package).
go test -run '^$' \
    -bench 'BenchmarkSearchEpisodes|BenchmarkReplayInto|BenchmarkPlanTotalTime' \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"
emit_json "$RAW" "$OUT"

# Kernel-layer benchmarks: packed/parallel GEMM backends, the conv
# kernels they feed, real end-to-end engine inference, and the batch
# orchestrator's sequential-bypass guard.
go test -run '^$' \
    -bench 'BenchmarkGEMMBackends|BenchmarkGemm$|BenchmarkConvKernels|BenchmarkConvFFTKernel|BenchmarkEngineInference|BenchmarkProfilePhase|BenchmarkOptimizeBatch|BenchmarkRunBatch' \
    -benchtime "$BENCHTIME" -count "$COUNT" \
    . ./internal/gemm/ ./internal/runner/ | tee "$KRAW"
emit_json "$KRAW" "$KOUT"

# Serving daemon: the three HTTP request classes end to end (cold
# profile+search, warm cache hit, 8-way coalesced duplicates).
go test -run '^$' \
    -bench 'BenchmarkServeOptimize' \
    -benchtime "$BENCHTIME" -count "$COUNT" \
    ./internal/serve/ | tee "$SRAW"

# Load generator: 64 concurrent clients against an in-process daemon;
# writes client-observed p50/p95/p99 latency and sustained throughput,
# plus a second degraded-mode phase (seeded faults + deadline budgets)
# whose per-class percentiles land under "faulty_load".
# go test runs the test in its package directory, so the output path
# must be absolute.
case "$SOUT" in
/*) sout_abs="$SOUT" ;;
*) sout_abs="$(pwd)/$SOUT" ;;
esac
QSDNN_LOADTEST_OUT="$sout_abs" go test -run 'TestLoadRecord' -count 1 ./internal/serve/loadtest/
echo "wrote $SOUT"

# Kernel autotuner: budgeted variant search on the real host engine
# over a zoo network; records per-(layer, primitive) tuned-vs-default
# times and the end-to-end searched engine improvement, and gates on
# >= 10% best per-layer speedup.
case "$TOUT" in
/*) tout_abs="$TOUT" ;;
*) tout_abs="$(pwd)/$TOUT" ;;
esac
QSDNN_TUNER_OUT="$tout_abs" QSDNN_TUNER_BUDGET="$TUNER_BUDGET" \
    go test -run 'TestTunerRecord' -count 1 ./internal/tune/
echo "wrote $TOUT"
