package qsdnn

import (
	"math"
	"testing"
)

func TestPlatformPresets(t *testing.T) {
	if len(Platforms()) != 5 {
		t.Errorf("platforms = %v", Platforms())
	}
	for _, name := range Platforms() {
		p, err := NewPlatform(name)
		if err != nil || p.Name != name {
			t.Errorf("NewPlatform(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := NewPlatform("bogus"); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestProfileWithEnergyAndMultiObjective(t *testing.T) {
	net := MustModel("lenet5")
	tt, et, err := ProfileWithEnergy(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := OptimizeMulti(tt, et, 0, SearchConfig{Episodes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Seconds <= 0 || fast.Joules <= 0 {
		t.Fatalf("bad multi result %+v", fast)
	}
	front, err := Pareto(tt, et, []float64{0, 10}, SearchConfig{Episodes: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Error("empty Pareto front")
	}
}

func TestPBQPExposed(t *testing.T) {
	net := MustModel("mobilenet-v1")
	tab, err := Profile(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	pb := PBQP(tab)
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	// MobileNet is a chain: PBQP must be exact.
	if math.Abs(pb.Time-opt.Time) > 1e-12 {
		t.Errorf("PBQP %.6g != optimal %.6g on a chain", pb.Time, opt.Time)
	}
}

func TestSearchApproxExposed(t *testing.T) {
	net := MustModel("lenet5")
	tab, err := Profile(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchApprox(tab, net, SearchConfig{Episodes: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || math.IsInf(res.Time, 0) {
		t.Fatalf("approx time %v", res.Time)
	}
}

func TestEnergyOfExposed(t *testing.T) {
	net := MustModel("lenet5")
	tt, et, err := ProfileWithEnergy(net, NewTX2Platform(), ModeCPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := Search(tt, SearchConfig{Episodes: 100, Seed: 1})
	if e := EnergyOf(et, res); e <= 0 {
		t.Errorf("EnergyOf = %v", e)
	}
}

func TestXavierOffloadsMoreThanNano(t *testing.T) {
	// Cross-preset behavior: the board with cheap transfers and a big
	// GPU should put at least as many layers on the GPU as the
	// entry-level board.
	net := MustModel("squeezenet")
	countGPU := func(name string) int {
		pl, err := NewPlatform(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Optimize(net, pl, Options{Mode: ModeGPGPU, Episodes: 600, Samples: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, c := range rep.Choices {
			if c.Processor == "GPU" {
				n++
			}
		}
		return n
	}
	xavier := countGPU("xavier-like")
	nano := countGPU("nano-like")
	if xavier < nano {
		t.Errorf("xavier offloads %d layers, nano %d — expected xavier >= nano", xavier, nano)
	}
}
