// Heterogeneous: reproduce the paper's flagship MobileNet-v1 GPGPU
// result. The agent learns to combine ArmCL's specialized depth-wise
// code on the CPU, cuDNN convolutions on the GPU, and cheap Vanilla
// ReLU/B-Norm layers to avoid extra copies — beating the best single
// library by well over the paper's 1.4x.
package main

import (
	"fmt"
	"log"

	qsdnn "repro"
)

func main() {
	net := qsdnn.MustModel("mobilenet-v1")
	board := qsdnn.NewTX2Platform()

	rep, err := qsdnn.Optimize(net, board, qsdnn.Options{Mode: qsdnn.ModeGPGPU})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	fmt.Println("\nwho runs what (depth-wise vs point-wise vs glue):")
	kinds := map[string]map[string]int{}
	for _, c := range rep.Choices {
		if kinds[c.Kind] == nil {
			kinds[c.Kind] = map[string]int{}
		}
		kinds[c.Kind][c.Library+"/"+c.Processor]++
	}
	for _, kind := range []string{"DepthwiseConv", "Conv", "BatchNorm", "ReLU"} {
		fmt.Printf("  %-14s", kind)
		for who, n := range kinds[kind] {
			fmt.Printf(" %s x%d", who, n)
		}
		fmt.Println()
	}

	// Show the processor hops the agent accepted: each hop costs a
	// transfer, so they only appear where the GPU's gain exceeds it.
	hops := 0
	prev := "CPU"
	for _, c := range rep.Choices {
		if c.Processor != prev {
			hops++
			prev = c.Processor
		}
	}
	fmt.Printf("\nprocessor hops along the network: %d (each costs a transfer)\n", hops)
}
