// Quickstart: optimize SqueezeNet's inference on the TX2-like
// heterogeneous platform model in a few lines — profile, search,
// report. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	qsdnn "repro"
)

func main() {
	// 1. Pick a network from the zoo (or build your own with nn.Builder).
	net := qsdnn.MustModel("squeezenet")

	// 2. Pick a target platform model.
	board := qsdnn.NewTX2Platform()

	// 3. Run the two-phase pipeline: profile every primitive, then let
	//    the Q-learning agent search the combination space.
	rep, err := qsdnn.Optimize(net, board, qsdnn.Options{
		Mode:     qsdnn.ModeGPGPU,
		Episodes: 1000, // the paper's budget; converges in seconds here
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read the results.
	fmt.Print(rep.Summary())
	fmt.Println("\nlearned library mix:")
	for lib, n := range rep.LibraryMix() {
		fmt.Printf("  %-10s %d layers\n", lib, n)
	}
}
