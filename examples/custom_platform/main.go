// Custom platform + custom network: QS-DNN is not tied to the model
// zoo or to the TX2 preset. Here we define a drone-class board with a
// weaker GPU and a much slower interconnect, build a custom CNN with
// the nn.Builder, and let the search decide what is worth offloading.
// On this board the expensive transfers push far more of the network
// onto the CPU than the TX2 preset would.
package main

import (
	"fmt"
	"log"

	qsdnn "repro"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/tensor"
)

// buildDroneNet is a small detector-style CNN: strided convs, one
// depth-wise block, a detection head.
func buildDroneNet() *qsdnn.Network {
	b := nn.NewBuilder("drone-net", tensor.Shape{N: 1, C: 3, H: 160, W: 160})
	x := b.Conv("stem", b.Input(), 16, 3, 2, 1)
	x = b.BatchNorm("stem/bn", x)
	x = b.ReLU("stem/relu", x)
	x = b.Conv("conv2", x, 32, 3, 2, 1)
	x = b.ReLU("conv2/relu", x)
	x = b.DepthwiseConv("dw3", x, 3, 1, 1)
	x = b.ReLU("dw3/relu", x)
	x = b.Conv("pw3", x, 64, 1, 1, 0)
	x = b.ReLU("pw3/relu", x)
	x = b.Conv("conv4", x, 128, 3, 2, 1)
	x = b.ReLU("conv4/relu", x)
	b.Conv("head", x, 30, 1, 1, 0)
	return b.MustBuild()
}

// buildDroneBoard derives a board with a quarter of the TX2's GPU, a
// slow shared bus and pricier kernel launches.
func buildDroneBoard() *qsdnn.Platform {
	board := platform.JetsonTX2Like()
	board.Name = "drone-board"
	board.GPUPeakGFLOPS = 60
	board.GPUMemGBps = 8
	board.TransferGBps = 1
	board.TransferFixedSec = 400e-6
	board.GPULaunchSec = 120e-6
	return board
}

func main() {
	net := buildDroneNet()

	for _, tc := range []struct {
		name  string
		board *qsdnn.Platform
	}{
		{"tx2-like", qsdnn.NewTX2Platform()},
		{"drone-board", buildDroneBoard()},
	} {
		rep, err := qsdnn.Optimize(net, tc.board, qsdnn.Options{Mode: qsdnn.ModeGPGPU, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		gpuLayers := 0
		for _, c := range rep.Choices {
			if c.Processor == "GPU" {
				gpuLayers++
			}
		}
		fmt.Printf("%-12s QS-DNN %8.3f ms (%.1fx vs Vanilla), %d/%d layers on GPU\n",
			tc.name, rep.Seconds*1e3, rep.SpeedupVsVanilla, gpuLayers, len(rep.Choices))
	}
	fmt.Println("\nthe same network maps differently onto different boards —")
	fmt.Println("the search adapts the primitive selection to the platform's costs.")
}
