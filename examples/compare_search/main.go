// Compare search strategies on one profiled table: QS-DNN's RL agent
// vs Random Search vs the per-layer Greedy pick vs the exact dynamic-
// programming optimum (available because MobileNet-v1 is a chain).
// This is the paper's §VI-B story in one program: RL converges close
// to the optimum within a few hundred episodes; RS "only converges
// towards the infinite"; Greedy walks into penalties.
package main

import (
	"fmt"
	"log"

	qsdnn "repro"
)

func main() {
	net := qsdnn.MustModel("mobilenet-v1")
	tab, err := qsdnn.Profile(net, qsdnn.NewTX2Platform(), qsdnn.ModeGPGPU, 50)
	if err != nil {
		log.Fatal(err)
	}

	opt, err := qsdnn.Optimal(tab) // exact: MobileNet-v1 is a chain
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10.3f ms   (exact DP optimum)\n", "optimal", opt.Time*1e3)

	greedy := qsdnn.Greedy(tab)
	fmt.Printf("%-22s %10.3f ms   (%.2fx off optimal — the Fig. 1 trap)\n",
		"greedy per layer", greedy.Time*1e3, greedy.Time/opt.Time)

	for _, budget := range []int{25, 100, 350, 1000} {
		rl := qsdnn.Search(tab, qsdnn.SearchConfig{Episodes: budget, Seed: 4})
		rs := qsdnn.RandomSearch(tab, budget, 4)
		fmt.Printf("%-22s %10.3f ms   vs RS %10.3f ms   (RS/RL %.2fx)\n",
			fmt.Sprintf("QS-DNN @%d episodes", budget), rl.Time*1e3, rs.Time*1e3, rs.Time/rl.Time)
	}
}
