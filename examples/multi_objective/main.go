// Multi-objective: the paper's future-work direction made concrete.
// Profile SqueezeNet for both latency and energy on the TX2-like
// board, then sweep the trade-off weight: λ = 0 reproduces the
// latency-optimal mapping (GPU-heavy, power-hungry); large λ pushes
// work onto the low-power CPU. The non-dominated points form the
// latency/energy Pareto front an embedded-systems engineer actually
// deploys from.
package main

import (
	"fmt"
	"log"

	qsdnn "repro"
)

func main() {
	net := qsdnn.MustModel("squeezenet")
	board := qsdnn.NewTX2Platform()

	timeTab, energyTab, err := qsdnn.ProfileWithEnergy(net, board, qsdnn.ModeGPGPU, 50)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("lambda sweep (cost = latency + lambda * energy):")
	for _, lambda := range []float64{0, 0.01, 0.1, 1, 100} {
		r, err := qsdnn.OptimizeMulti(timeTab, energyTab, lambda, qsdnn.SearchConfig{Episodes: 800, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  lambda %-7g -> %8.2f ms  %8.2f mJ\n", lambda, r.Seconds*1e3, r.Joules*1e3)
	}

	front, err := qsdnn.Pareto(timeTab, energyTab, nil, qsdnn.SearchConfig{Episodes: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPareto front (non-dominated):")
	for _, p := range front {
		fmt.Printf("  %8.2f ms  %8.2f mJ   (lambda %g)\n", p.Seconds*1e3, p.Joules*1e3, p.Lambda)
	}

	// The same trade-off on a different board.
	nano, err := qsdnn.NewPlatform("nano-like")
	if err != nil {
		log.Fatal(err)
	}
	tn, en, err := qsdnn.ProfileWithEnergy(net, nano, qsdnn.ModeGPGPU, 50)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := qsdnn.OptimizeMulti(tn, en, 0, qsdnn.SearchConfig{Episodes: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnano-like board, latency-optimal: %.2f ms, %.2f mJ\n",
		fast.Seconds*1e3, fast.Joules*1e3)
}
