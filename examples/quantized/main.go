// Quantized inference: the deployment flow the paper's engine family
// pairs with primitive selection (the authors' QUENN companion work).
// Build a small CNN, run its convolution and FC layers in int8 with
// int32 accumulation, and measure the signal-to-quantization-noise
// ratio against the float32 reference — showing that the substrate
// under the primitive search also supports low-precision execution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A conv layer at MobileNet-block scale.
	in := tensor.New(tensor.Shape{N: 1, C: 32, H: 28, W: 28}, tensor.NCHW)
	in.FillRandom(rng, 1)
	p := nn.ConvParams{OutChannels: 64, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := make([]float32, 64*32*9)
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * 0.1
	}
	bias := make([]float32, 64)

	ref := kernels.ConvDirect(in, w, bias, p)
	qin := quant.QuantizeTensor(in)
	qw, wp := quant.QuantizeSlice(w)
	got, err := quant.Conv(qin, qw, wp, bias, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conv 32->64 3x3: int8 vs float32  SQNR %.1f dB  max|Δ| %.2g\n",
		quant.SQNR(ref, got), tensor.MaxAbsDiff(ref, got))

	// An FC layer at classifier scale.
	fcIn := tensor.New(tensor.Shape{N: 1, C: 1024, H: 1, W: 1}, tensor.NCHW)
	fcIn.FillRandom(rng, 1)
	fw := make([]float32, 100*1024)
	for i := range fw {
		fw[i] = (rng.Float32()*2 - 1) * 0.05
	}
	fb := make([]float32, 100)
	fcRef := kernels.FCGemv(fcIn, fw, fb, 100)
	qfc := quant.QuantizeTensor(fcIn)
	qfw, fwp := quant.QuantizeSlice(fw)
	fcGot, err := quant.FC(qfc, qfw, fwp, fb, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fc 1024->100   : int8 vs float32  SQNR %.1f dB  max|Δ| %.2g\n",
		quant.SQNR(fcRef, fcGot), tensor.MaxAbsDiff(fcRef, fcGot))

	// Memory story: int8 weights are 4x smaller.
	fmt.Printf("\nweight footprint: float32 %d KB -> int8 %d KB (4x smaller)\n",
		len(w)*4/1024, len(qw)/1024)
}
