// Real engine: the full QS-DNN pipeline on genuinely measured
// latencies. The inference engine executes the network with the real
// float32 kernels (direct / im2col / im2row / kn2row / Winograd /
// sparse), the profiler times them on this host's CPU, the RL agent
// searches on those measurements, and the winning assignment is then
// executed end-to-end and checked against the Vanilla reference
// output — proving that any primitive mix computes the same function.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	qsdnn "repro"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/profile"
	"repro/internal/tensor"
)

func main() {
	// A small CIFAR-scale CNN keeps real profiling quick.
	b := nn.NewBuilder("cifar-net", tensor.Shape{N: 1, C: 3, H: 32, W: 32})
	x := b.Conv("conv1", b.Input(), 16, 3, 1, 1)
	x = b.ReLU("relu1", x)
	x = b.Pool("pool1", x, nn.MaxPool, 2, 2, 0)
	x = b.Conv("conv2", x, 32, 3, 1, 1)
	x = b.ReLU("relu2", x)
	x = b.Pool("pool2", x, nn.MaxPool, 2, 2, 0)
	x = b.Conv("conv3", x, 64, 3, 1, 1)
	x = b.ReLU("relu3", x)
	x = b.Flatten("flat", x)
	x = b.FullyConnected("fc", x, 10)
	b.Softmax("prob", x)
	net := b.MustBuild()

	// Engine with pruned weights (35% kept — the Sparse library's
	// assumption), kernels parallelized across the host cores (outputs
	// stay bit-identical at any worker count), and a random input image.
	eng := engine.New(net, 7, 0.35, engine.Parallelism(runtime.NumCPU()))
	input := tensor.New(net.InputShape, tensor.NCHW)
	input.FillRandom(rand.New(rand.NewSource(1)), 1)

	// Phase 1 on real measurements.
	src, err := engine.NewSource(eng, input)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := profile.Run(net, src, profile.Options{Mode: qsdnn.ModeCPU, Samples: 10})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: search on the measured LUT.
	rep, err := qsdnn.OptimizeTable(net, tab, qsdnn.Options{Mode: qsdnn.ModeCPU, Episodes: 600, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	// Execute both configurations for real and compare outputs and
	// wall-clock.
	ref, err := eng.Run(eng.VanillaAssignment(), input)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := eng.Run(rep.Raw.Assignment, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal execution   vanilla %8.3f ms   searched %8.3f ms   (%.1fx measured)\n",
		ref.Total*1e3, fast.Total*1e3, ref.Total/fast.Total)
	fmt.Printf("output agreement: max |Δ| = %.2g (same function, different kernels)\n",
		tensor.MaxAbsDiff(ref.Output, fast.Output))
}
