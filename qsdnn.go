// Package qsdnn is the public API of the QS-DNN reproduction: an
// automatic, Reinforcement-Learning-based search that finds the
// fastest combination of acceleration-library primitives to run a
// trained CNN on a heterogeneous embedded platform (de Prado, Pazos,
// Benini — "Learning to infer: RL-based search for DNN primitive
// selection on Heterogeneous Embedded Systems", DATE 2019).
//
// The pipeline has two phases, mirroring the paper:
//
//  1. Profile — run the network once per global library implementation
//     on the target (here: a calibrated analytical model of a Jetson
//     TX-2-class board, or the real host-CPU engine), measuring every
//     layer and every possible compatibility layer, producing a
//     look-up table.
//  2. Search — a tabular Q-learning agent walks the network layer by
//     layer selecting primitives, learning to trade locally slower
//     kernels for globally faster paths that avoid layout-conversion
//     and CPU<->GPU transfer penalties.
//
// Quick start:
//
//	net := qsdnn.MustModel("mobilenet-v1")
//	rep, err := qsdnn.Optimize(net, qsdnn.NewTX2Platform(), qsdnn.Options{Mode: qsdnn.ModeGPGPU})
//	fmt.Println(rep.Summary())
package qsdnn

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// Mode selects the processors the search may use.
type Mode = primitives.Mode

// Library identifies an acceleration library.
type Library = primitives.Library

// Network is an immutable layer DAG (build with the model zoo or the
// nn.Builder).
type Network = nn.Network

// Platform is a latency model of a target board.
type Platform = platform.Platform

// Table is a profiled look-up table.
type Table = lut.Table

// Result is a raw search outcome.
type Result = core.Result

// EpisodePoint is one episode of a learning curve.
type EpisodePoint = core.EpisodePoint

// SearchConfig are the QS-DNN agent settings.
type SearchConfig = core.Config

// RobustPolicy configures the fault-tolerant measurement path:
// per-sample timeout, bounded retry with backoff, outlier-robust
// aggregation, and the graceful-degradation thresholds.
type RobustPolicy = profile.Robust

// FaultInjection is a seeded, deterministic fault schedule for a
// profiling source — the test harness for the robustness machinery.
type FaultInjection = profile.FaultConfig

// ProfileReport is the structured outcome of a fault-tolerant
// profiling run: exclusions, retries, timeouts, rejected observations.
type ProfileReport = profile.Report

// Processor modes.
const (
	// ModeCPU restricts the search to CPU primitives.
	ModeCPU = primitives.ModeCPU
	// ModeGPGPU allows CPU and GPU primitives (the paper's
	// heterogeneous setting).
	ModeGPGPU = primitives.ModeGPGPU
)

// NewTX2Platform returns the calibrated Jetson-TX-2-like platform
// model used throughout the reproduction.
func NewTX2Platform() *Platform { return platform.JetsonTX2Like() }

// NewCPUOnlyPlatform returns a board model without a GPU.
func NewCPUOnlyPlatform() *Platform { return platform.CPUOnlyBoard() }

// Models lists the model zoo (the networks of the paper's Table II).
func Models() []string { return models.All() }

// Model builds a zoo network by name.
func Model(name string) (*Network, error) { return models.Build(name) }

// MustModel builds a zoo network or panics on an unknown name.
func MustModel(name string) *Network { return models.MustBuild(name) }

// Options configures Optimize.
type Options struct {
	// Mode selects CPU-only or heterogeneous search. Default ModeCPU.
	Mode Mode
	// Episodes is the search budget (default 1000, as in the paper).
	Episodes int
	// Samples is the profiling average count (default 50).
	Samples int
	// Seed drives profiling noise and the agent (default 1).
	Seed int64
	// Search overrides the full agent configuration; zero fields use
	// the paper's hyper-parameters (α=0.05, γ=0.9, replay 128, 50%/5%
	// ε schedule).
	Search SearchConfig
}

func (o Options) withDefaults() Options {
	if o.Episodes == 0 {
		o.Episodes = 1000
	}
	if o.Samples == 0 {
		o.Samples = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Search.Episodes = o.Episodes
	if o.Search.Seed == 0 {
		o.Search.Seed = o.Seed
	}
	return o
}

// LayerChoice reports the primitive selected for one layer.
type LayerChoice struct {
	// Layer is the layer name.
	Layer string
	// Kind is the layer operation.
	Kind string
	// Primitive is the chosen primitive name.
	Primitive string
	// Library is the chosen primitive's library.
	Library string
	// Processor is where the primitive runs.
	Processor string
	// Seconds is the layer's profiled execution time.
	Seconds float64
}

// Report is the result of a full Optimize run, with the paper's
// comparison quantities precomputed.
type Report struct {
	// Network is the architecture name.
	Network string
	// Mode is the processor mode searched.
	Mode Mode
	// VanillaSeconds is the dependency-free baseline inference time.
	VanillaSeconds float64
	// BSLSeconds is the Best-Single-Library inference time.
	BSLSeconds float64
	// BSLLibrary names the best single library.
	BSLLibrary string
	// Seconds is the QS-DNN result's inference time.
	Seconds float64
	// SpeedupVsVanilla is VanillaSeconds / Seconds.
	SpeedupVsVanilla float64
	// SpeedupVsBSL is BSLSeconds / Seconds.
	SpeedupVsBSL float64
	// Choices is the per-layer selection.
	Choices []LayerChoice
	// Curve is the learning curve (one point per episode).
	Curve []EpisodePoint
	// Table is the profiled LUT (reusable for further searches).
	Table *Table
	// Raw is the underlying search result.
	Raw *Result
}

// DefaultRobustPolicy returns the standard fault-tolerance settings
// (2s sample timeout, 3 retries with exponential backoff, 10% trimmed
// mean with MAD outlier rejection).
func DefaultRobustPolicy() *RobustPolicy { return profile.DefaultRobust() }

// DefaultFaultInjection returns a moderate seeded fault schedule:
// transient errors, occasional stalls, NaN samples and latency spikes.
func DefaultFaultInjection(seed int64) FaultInjection { return profile.DefaultFaults(seed) }

// Profile runs the inference phase on the platform model and returns
// the look-up table.
func Profile(net *Network, pl *Platform, mode Mode, samples int) (*Table, error) {
	if samples == 0 {
		samples = 50
	}
	return profile.Run(net, profile.NewSimSource(net, pl), profile.Options{Mode: mode, Samples: samples})
}

// ProfileContext is Profile under a context and an optional robust
// policy: cancellation aborts the run promptly, and with a non-nil
// policy failed measurements are retried, outliers rejected, and
// persistently failing primitives dropped — the returned ProfileReport
// says what happened.
func ProfileContext(ctx context.Context, net *Network, pl *Platform, mode Mode, samples int, robust *RobustPolicy) (*Table, *ProfileReport, error) {
	if samples == 0 {
		samples = 50
	}
	return profile.RunContext(ctx, net, profile.NewSimSource(net, pl),
		profile.Options{Mode: mode, Samples: samples, Robust: robust})
}

// Optimize runs the full QS-DNN pipeline — profile then search — and
// returns a Report.
func Optimize(net *Network, pl *Platform, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	tab, err := Profile(net, pl, opts.Mode, opts.Samples)
	if err != nil {
		return nil, err
	}
	return OptimizeTable(net, tab, opts)
}

// OptimizeTable searches an existing look-up table (e.g. loaded from
// disk or profiled on the real engine) and returns a Report.
func OptimizeTable(net *Network, tab *Table, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if tab.Network != net.Name {
		return nil, fmt.Errorf("qsdnn: table is for %q, network is %q", tab.Network, net.Name)
	}
	return newReport(net, tab, core.Search(tab, opts.Search)), nil
}

// ReportForResult assembles the standard Report around an externally
// produced search result — the hook for searches run through the
// durable/checkpointed path (core.SearchCheckpointed), which own their
// search loop but want the same reporting as OptimizeTable.
func ReportForResult(net *Network, tab *Table, res *Result) (*Report, error) {
	if tab.Network != net.Name {
		return nil, fmt.Errorf("qsdnn: table is for %q, network is %q", tab.Network, net.Name)
	}
	if len(res.Assignment) != tab.NumLayers() {
		return nil, fmt.Errorf("qsdnn: result assigns %d layers, table has %d", len(res.Assignment), tab.NumLayers())
	}
	return newReport(net, tab, res), nil
}

// newReport assembles the public Report around a finished search
// result — the shared back end of OptimizeTable and OptimizeBatch.
func newReport(net *Network, tab *Table, res *Result) *Report {
	bslLib, bsl := core.BestSingleLibrary(tab)
	rep := &Report{
		Network:        net.Name,
		Mode:           tab.Mode,
		VanillaSeconds: core.VanillaTime(tab),
		BSLSeconds:     bsl.Time,
		BSLLibrary:     bslLib.String(),
		Seconds:        res.Time,
		Curve:          res.Curve,
		Table:          tab,
		Raw:            res,
	}
	rep.SpeedupVsVanilla = rep.VanillaSeconds / rep.Seconds
	rep.SpeedupVsBSL = rep.BSLSeconds / rep.Seconds
	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		p := primitives.ByID(res.Assignment[i])
		rep.Choices = append(rep.Choices, LayerChoice{
			Layer:     l.Name,
			Kind:      l.Kind.String(),
			Primitive: p.Name,
			Library:   p.Lib.String(),
			Processor: p.Proc.String(),
			Seconds:   tab.Time(i, p.Idx),
		})
	}
	return rep
}

// Summary renders the headline numbers of a report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s mode)\n", r.Network, r.Mode)
	fmt.Fprintf(&b, "  Vanilla baseline : %10.3f ms\n", r.VanillaSeconds*1e3)
	fmt.Fprintf(&b, "  Best single lib  : %10.3f ms (%s)\n", r.BSLSeconds*1e3, r.BSLLibrary)
	fmt.Fprintf(&b, "  QS-DNN           : %10.3f ms\n", r.Seconds*1e3)
	fmt.Fprintf(&b, "  speedup vs Vanilla %.1fx, vs BSL %.2fx\n", r.SpeedupVsVanilla, r.SpeedupVsBSL)
	return b.String()
}

// LibraryMix counts the report's layer choices per library — handy to
// see the learned combinations (e.g. MobileNet's ArmCL depth-wise +
// cuDNN conv + Vanilla ReLU/B-Norm mix).
func (r *Report) LibraryMix() map[string]int {
	mix := map[string]int{}
	for _, c := range r.Choices {
		mix[c.Library]++
	}
	return mix
}

// RandomSearch runs the RS baseline on a profiled table.
func RandomSearch(tab *Table, episodes int, seed int64) *Result {
	return core.RandomSearch(tab, episodes, seed)
}

// Greedy runs the per-layer-greedy baseline (fastest primitive per
// layer, penalties ignored).
func Greedy(tab *Table) *Result { return core.Greedy(tab) }

// Optimal computes the exact optimum for chain networks via dynamic
// programming.
func Optimal(tab *Table) (*Result, error) { return core.Optimal(tab) }

// Search runs QS-DNN over an existing table with full control of the
// agent configuration.
func Search(tab *Table, cfg SearchConfig) *Result { return core.Search(tab, cfg) }
