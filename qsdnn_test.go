package qsdnn

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/lut"
)

func TestModelsZoo(t *testing.T) {
	if len(Models()) != 13 {
		t.Fatalf("zoo has %d models", len(Models()))
	}
	net, err := Model("lenet5")
	if err != nil || net.Name != "lenet5" {
		t.Fatalf("Model(lenet5) = %v, %v", net, err)
	}
	if _, err := Model("bogus"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	net := MustModel("lenet5")
	rep, err := Optimize(net, NewTX2Platform(), Options{Mode: ModeGPGPU, Episodes: 400, Samples: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || math.IsInf(rep.Seconds, 0) {
		t.Fatalf("Seconds = %v", rep.Seconds)
	}
	if rep.SpeedupVsVanilla < 1 {
		t.Errorf("QS-DNN should beat Vanilla, speedup %v", rep.SpeedupVsVanilla)
	}
	if rep.SpeedupVsBSL < 0.999 {
		t.Errorf("QS-DNN should not lose to BSL, ratio %v", rep.SpeedupVsBSL)
	}
	if len(rep.Choices) != net.Len()-1 {
		t.Errorf("choices = %d, want %d", len(rep.Choices), net.Len()-1)
	}
	if len(rep.Curve) != 400 {
		t.Errorf("curve = %d points", len(rep.Curve))
	}
	// LeNet-5's paper-reproduced quirk: the GPGPU winner is pure CPU.
	for _, c := range rep.Choices {
		if c.Processor != "CPU" {
			t.Errorf("lenet5 GPGPU winner should be pure CPU, %s runs on %s", c.Layer, c.Processor)
		}
	}
	sum := rep.Summary()
	for _, want := range []string{"lenet5", "Vanilla baseline", "QS-DNN", "speedup"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	mix := rep.LibraryMix()
	total := 0
	for _, n := range mix {
		total += n
	}
	if total != len(rep.Choices) {
		t.Errorf("library mix covers %d layers, want %d", total, len(rep.Choices))
	}
}

func TestOptimizeTableRejectsMismatch(t *testing.T) {
	netA := MustModel("lenet5")
	netB := MustModel("alexnet")
	tab, err := Profile(netA, NewTX2Platform(), ModeCPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeTable(netB, tab, Options{}); err == nil {
		t.Error("table/network mismatch should error")
	}
}

func TestProfileSearchRoundTripThroughJSON(t *testing.T) {
	// The CLI workflow: profile -> save -> load -> search.
	net := MustModel("lenet5")
	tab, err := Profile(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lut.Load(data, net)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OptimizeTable(net, tab, Options{Episodes: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeTable(net, back, Options{Episodes: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("search through JSON round trip differs: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestBaselinesExposed(t *testing.T) {
	net := MustModel("mobilenet-v1")
	tab, err := Profile(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	rl := Search(tab, SearchConfig{Episodes: 600, Seed: 2})
	rs := RandomSearch(tab, 600, 2)
	greedy := Greedy(tab)
	// Ordering invariants: optimum <= RL <= RS; greedy valid but can
	// be anywhere above the optimum.
	if rl.Time < opt.Time-1e-12 {
		t.Error("RL below DP optimum — impossible")
	}
	if rs.Time < opt.Time-1e-12 || greedy.Time < opt.Time-1e-12 {
		t.Error("baseline below DP optimum — impossible")
	}
	if rl.Time > rs.Time {
		t.Errorf("RL %v should beat RS %v on MobileNet", rl.Time, rs.Time)
	}
}

func TestOptimizeBatchBasics(t *testing.T) {
	jobs := []BatchJob{
		{Network: "lenet5", Mode: ModeGPGPU},
		{Network: "lenet5", Mode: ModeCPU},
	}
	batch, err := OptimizeBatch(jobs, BatchOptions{
		Options: Options{Episodes: 200, Samples: 3, Seed: 1},
		Workers: 4,
		BestOf:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Reports) != 2 || len(batch.Stats) != 2 {
		t.Fatalf("got %d reports, %d stats", len(batch.Reports), len(batch.Stats))
	}
	for i, rep := range batch.Reports {
		if rep.Network != "lenet5" {
			t.Errorf("report %d network %q", i, rep.Network)
		}
		if rep.Seconds <= 0 || math.IsInf(rep.Seconds, 0) {
			t.Errorf("report %d seconds %v", i, rep.Seconds)
		}
		st := batch.Stats[i]
		if len(st.Seeds) != 3 || len(st.SeedSeconds) != 3 {
			t.Errorf("report %d: %d seeds, %d seed times", i, len(st.Seeds), len(st.SeedSeconds))
		}
		// The report carries the best seed's time.
		best := st.SeedSeconds[0]
		for _, s := range st.SeedSeconds[1:] {
			if s < best {
				best = s
			}
		}
		if rep.Seconds != best {
			t.Errorf("report %d: Seconds %v != best seed time %v", i, rep.Seconds, best)
		}
	}
	// Two modes of the same network are two distinct profiling keys.
	if batch.ProfileMisses != 2 {
		t.Errorf("ProfileMisses = %d, want 2", batch.ProfileMisses)
	}
	if batch.ProfileHits != 6-2 {
		t.Errorf("ProfileHits = %d, want 4 (6 units, 2 builds)", batch.ProfileHits)
	}
	sum := batch.Summary()
	for _, want := range []string{"lenet5", "GPGPU", "qsdnn(ms)"} {
		if !strings.Contains(sum, want) {
			t.Errorf("batch summary missing %q:\n%s", want, sum)
		}
	}
	if !strings.Contains(batch.TimingSummary(), "profile cache: 2 runs, 4 shared") {
		t.Errorf("timing summary: %s", batch.TimingSummary())
	}
}

// TestOptimizeBatchDeterministicAcrossWorkers is the acceptance bar of
// the orchestrator: the full model zoo, searched with 8 workers, must
// produce byte-identical Reports to sequential (1-worker) execution,
// while profiling each (network, mode, samples) key exactly once even
// though every network is requested twice.
func TestOptimizeBatchDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo batch in -short mode")
	}
	// Two jobs per network (different seed sets, same profiling key)
	// so the single-flight cache is actually contended.
	var jobs []BatchJob
	for _, name := range Models() {
		jobs = append(jobs,
			BatchJob{Network: name, Mode: ModeGPGPU, Seeds: []int64{1, 2}},
			BatchJob{Network: name, Mode: ModeGPGPU, Seeds: []int64{3}},
		)
	}
	run := func(workers int) *BatchReport {
		t.Helper()
		batch, err := OptimizeBatch(jobs, BatchOptions{
			Options: Options{Episodes: 120, Samples: 2},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return batch
	}
	seq, par := run(1), run(8)

	nets := len(Models())
	for _, b := range []*BatchReport{seq, par} {
		if b.ProfileMisses != nets {
			t.Errorf("ProfileMisses = %d, want %d (one per network/mode/samples key)", b.ProfileMisses, nets)
		}
		units := 3 * nets // seeds per network across both jobs
		if b.ProfileHits != units-nets {
			t.Errorf("ProfileHits = %d, want %d", b.ProfileHits, units-nets)
		}
	}

	a, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("serialized batch reports differ between 1 and 8 workers")
	}
	if seq.Summary() != par.Summary() {
		t.Errorf("summaries differ:\n%s\nvs\n%s", seq.Summary(), par.Summary())
	}
}

func TestOptimizeBatchErrors(t *testing.T) {
	if _, err := OptimizeBatch(nil, BatchOptions{}); err == nil {
		t.Error("empty batch should error")
	}
	if _, err := OptimizeBatch([]BatchJob{{Network: "bogus"}}, BatchOptions{}); err == nil {
		t.Error("unknown network should error")
	}
}

func TestZooBatchCoversZoo(t *testing.T) {
	jobs := ZooBatch(ModeGPGPU)
	if len(jobs) != len(Models()) {
		t.Fatalf("ZooBatch has %d jobs, zoo has %d models", len(jobs), len(Models()))
	}
	for i, j := range jobs {
		if j.Network != Models()[i] || j.Mode != ModeGPGPU {
			t.Errorf("job %d = %+v", i, j)
		}
	}
}

// TestOptimizeBatchMatchesOptimizeTable: a 1-job, 1-seed batch must
// reproduce exactly what the sequential single-network pipeline finds.
func TestOptimizeBatchMatchesOptimizeTable(t *testing.T) {
	opts := Options{Mode: ModeGPGPU, Episodes: 250, Samples: 3, Seed: 7}
	single, err := Optimize(MustModel("lenet5"), NewTX2Platform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := OptimizeBatch([]BatchJob{{Network: "lenet5", Mode: ModeGPGPU}}, BatchOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	got := batch.Reports[0]
	if got.Seconds != single.Seconds || got.VanillaSeconds != single.VanillaSeconds ||
		got.BSLSeconds != single.BSLSeconds || got.BSLLibrary != single.BSLLibrary {
		t.Errorf("batch report %+v differs from sequential %+v", got, single)
	}
	for i := range single.Choices {
		if got.Choices[i] != single.Choices[i] {
			t.Errorf("choice %d differs: %+v vs %+v", i, got.Choices[i], single.Choices[i])
		}
	}
}

func TestCPUOnlyPlatform(t *testing.T) {
	net := MustModel("lenet5")
	rep, err := Optimize(net, NewCPUOnlyPlatform(), Options{Mode: ModeCPU, Episodes: 200, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Choices {
		if c.Processor == "GPU" {
			t.Error("CPU-only platform produced a GPU choice")
		}
	}
}
