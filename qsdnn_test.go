package qsdnn

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/lut"
)

func TestModelsZoo(t *testing.T) {
	if len(Models()) != 13 {
		t.Fatalf("zoo has %d models", len(Models()))
	}
	net, err := Model("lenet5")
	if err != nil || net.Name != "lenet5" {
		t.Fatalf("Model(lenet5) = %v, %v", net, err)
	}
	if _, err := Model("bogus"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	net := MustModel("lenet5")
	rep, err := Optimize(net, NewTX2Platform(), Options{Mode: ModeGPGPU, Episodes: 400, Samples: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || math.IsInf(rep.Seconds, 0) {
		t.Fatalf("Seconds = %v", rep.Seconds)
	}
	if rep.SpeedupVsVanilla < 1 {
		t.Errorf("QS-DNN should beat Vanilla, speedup %v", rep.SpeedupVsVanilla)
	}
	if rep.SpeedupVsBSL < 0.999 {
		t.Errorf("QS-DNN should not lose to BSL, ratio %v", rep.SpeedupVsBSL)
	}
	if len(rep.Choices) != net.Len()-1 {
		t.Errorf("choices = %d, want %d", len(rep.Choices), net.Len()-1)
	}
	if len(rep.Curve) != 400 {
		t.Errorf("curve = %d points", len(rep.Curve))
	}
	// LeNet-5's paper-reproduced quirk: the GPGPU winner is pure CPU.
	for _, c := range rep.Choices {
		if c.Processor != "CPU" {
			t.Errorf("lenet5 GPGPU winner should be pure CPU, %s runs on %s", c.Layer, c.Processor)
		}
	}
	sum := rep.Summary()
	for _, want := range []string{"lenet5", "Vanilla baseline", "QS-DNN", "speedup"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	mix := rep.LibraryMix()
	total := 0
	for _, n := range mix {
		total += n
	}
	if total != len(rep.Choices) {
		t.Errorf("library mix covers %d layers, want %d", total, len(rep.Choices))
	}
}

func TestOptimizeTableRejectsMismatch(t *testing.T) {
	netA := MustModel("lenet5")
	netB := MustModel("alexnet")
	tab, err := Profile(netA, NewTX2Platform(), ModeCPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeTable(netB, tab, Options{}); err == nil {
		t.Error("table/network mismatch should error")
	}
}

func TestProfileSearchRoundTripThroughJSON(t *testing.T) {
	// The CLI workflow: profile -> save -> load -> search.
	net := MustModel("lenet5")
	tab, err := Profile(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lut.Load(data, net)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OptimizeTable(net, tab, Options{Episodes: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeTable(net, back, Options{Episodes: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("search through JSON round trip differs: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestBaselinesExposed(t *testing.T) {
	net := MustModel("mobilenet-v1")
	tab, err := Profile(net, NewTX2Platform(), ModeGPGPU, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	rl := Search(tab, SearchConfig{Episodes: 600, Seed: 2})
	rs := RandomSearch(tab, 600, 2)
	greedy := Greedy(tab)
	// Ordering invariants: optimum <= RL <= RS; greedy valid but can
	// be anywhere above the optimum.
	if rl.Time < opt.Time-1e-12 {
		t.Error("RL below DP optimum — impossible")
	}
	if rs.Time < opt.Time-1e-12 || greedy.Time < opt.Time-1e-12 {
		t.Error("baseline below DP optimum — impossible")
	}
	if rl.Time > rs.Time {
		t.Errorf("RL %v should beat RS %v on MobileNet", rl.Time, rs.Time)
	}
}

func TestCPUOnlyPlatform(t *testing.T) {
	net := MustModel("lenet5")
	rep, err := Optimize(net, NewCPUOnlyPlatform(), Options{Mode: ModeCPU, Episodes: 200, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Choices {
		if c.Processor == "GPU" {
			t.Error("CPU-only platform produced a GPU choice")
		}
	}
}
