// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out and microbenches
// of the real compute kernels. Result quality is exposed through
// b.ReportMetric custom metrics (ms_* = inference milliseconds of the
// found configuration, x_* = speedup ratios), so `go test -bench=.`
// regenerates both the numbers and the costs of producing them.
package qsdnn

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/kernels"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/qlearn"
	"repro/internal/report"
	"repro/internal/tensor"
)

// benchTables caches profiled LUTs across benchmarks (profiling is
// deterministic, so sharing changes nothing).
var (
	benchMu     sync.Mutex
	benchTables = map[string]*lut.Table{}
)

func benchTable(b *testing.B, network string, mode primitives.Mode) *lut.Table {
	b.Helper()
	key := fmt.Sprintf("%s/%v", network, mode)
	benchMu.Lock()
	defer benchMu.Unlock()
	if t, ok := benchTables[key]; ok {
		return t
	}
	net := models.MustBuild(network)
	pl := platform.JetsonTX2Like()
	t, err := profile.Run(net, profile.NewSimSource(net, pl), profile.Options{Mode: mode, Samples: 50})
	if err != nil {
		b.Fatal(err)
	}
	benchTables[key] = t
	return t
}

// BenchmarkTableII regenerates one Table II row per network per
// iteration (both modes, 1000 episodes, Random-Search comparison) and
// reports the headline ratios as custom metrics.
func BenchmarkTableII(b *testing.B) {
	for _, network := range models.TableIINetworks() {
		b.Run(network, func(b *testing.B) {
			pl := platform.JetsonTX2Like()
			var row report.Row
			for i := 0; i < b.N; i++ {
				rows, err := report.TableII([]string{network}, pl, report.Options{Episodes: 1000, Samples: 20, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.QSDNNCPU, "x_qsdnn_cpu")
			b.ReportMetric(row.QSDNNGPU, "x_qsdnn_gpgpu")
			b.ReportMetric(row.QSvsBSLGPU, "x_vs_bsl_gpgpu")
			b.ReportMetric(row.QSvsRSGPU, "x_vs_rs_gpgpu")
		})
	}
}

// BenchmarkFig1GreedyTrap measures the greedy-vs-RL gap of Fig. 1 on
// the heterogeneous MobileNet table.
func BenchmarkFig1GreedyTrap(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	var greedy, rl float64
	for i := 0; i < b.N; i++ {
		greedy = core.Greedy(tab).Time
		rl = core.Search(tab, core.Config{Episodes: 1000, Seed: 1}).Time
	}
	b.ReportMetric(greedy*1e3, "ms_greedy")
	b.ReportMetric(rl*1e3, "ms_qsdnn")
	b.ReportMetric(greedy/rl, "x_greedy_over_qsdnn")
}

// BenchmarkFig4LearningCurve runs the paper's 1000-episode MobileNet
// search (500 exploration episodes, ε −0.1 every 50 thereafter) and
// reports where the curve lands.
func BenchmarkFig4LearningCurve(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = core.Search(tab, core.Config{Episodes: 1000, Seed: 1})
	}
	b.ReportMetric(res.Curve[0].Time*1e3, "ms_first_episode")
	b.ReportMetric(res.Time*1e3, "ms_converged")
	b.ReportMetric(res.Curve[0].Time/res.Time, "x_curve_drop")
}

// BenchmarkFig5RLvsRS sweeps episode budgets with 5 complete searches
// per point (the paper's protocol) and reports the RS/RL ratio at 350
// episodes, where the paper says RS is "twice as worse".
func BenchmarkFig5RLvsRS(b *testing.B) {
	pl := platform.JetsonTX2Like()
	var points []report.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = report.Fig5("mobilenet-v1", pl, 5, report.Options{Episodes: 1000, Samples: 20, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		if pt.Episodes == 350 {
			b.ReportMetric(pt.RSMean/pt.RLMean, "x_rs_over_rl_at_350")
		}
		if pt.Episodes == 25 {
			b.ReportMetric(pt.RSMean/pt.RLMean, "x_rs_over_rl_at_25")
		}
	}
}

// BenchmarkSearchWallClock times the search phase alone on the largest
// design spaces — the paper reports convergence "in less than 10 min"
// on a standard CPU; here it is seconds.
func BenchmarkSearchWallClock(b *testing.B) {
	for _, network := range []string{"googlenet", "vgg19", "resnet50"} {
		b.Run(network, func(b *testing.B) {
			tab := benchTable(b, network, primitives.ModeGPGPU)
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Search(tab, core.Config{Episodes: 1000, Seed: 1})
			}
			b.ReportMetric(res.Time*1e3, "ms_solution")
		})
	}
}

// BenchmarkProfilePhase times the inference phase (50-sample
// whole-library substitution plus the compatibility pass).
func BenchmarkProfilePhase(b *testing.B) {
	for _, network := range []string{"lenet5", "mobilenet-v1", "googlenet"} {
		b.Run(network, func(b *testing.B) {
			net := models.MustBuild(network)
			pl := platform.JetsonTX2Like()
			for i := 0; i < b.N; i++ {
				if _, err := profile.Run(net, profile.NewSimSource(net, pl),
					profile.Options{Mode: primitives.ModeGPGPU, Samples: 50}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProfilePhaseEngine times the profiling phase on the real
// inference engine (host-CPU kernel executions, the `-engine` CLI
// path) rather than the platform simulator — the phase the packed
// parallel kernel layer accelerates. kernel-workers 1 isolates the
// packing win; NumCPU adds the multicore scaling on real hardware.
func BenchmarkProfilePhaseEngine(b *testing.B) {
	net := models.MustBuild("lenet5")
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("kernel-workers=%d", workers), func(b *testing.B) {
			eng := engine.New(net, 7, 0.35, engine.Parallelism(workers))
			input := tensor.New(net.InputShape, tensor.NCHW)
			input.FillRandom(rand.New(rand.NewSource(2)), 1)
			src, err := engine.NewSource(eng, input)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := profile.Run(net, src, profile.Options{Mode: primitives.ModeCPU, Samples: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShaping compares reward shaping (per-layer negated
// times, the paper's choice) against a single terminal reward.
func BenchmarkAblationShaping(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"shaped", false}, {"terminal-only", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Search(tab, core.Config{Episodes: 1000, Seed: 1, DisableShaping: tc.disable})
			}
			b.ReportMetric(res.Time*1e3, "ms_solution")
		})
	}
}

// BenchmarkAblationReplay compares experience replay off/on and across
// buffer sizes (the paper uses 128 following Baker et al.).
func BenchmarkAblationReplay(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	run := func(b *testing.B, cfg core.Config) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = core.Search(tab, cfg)
		}
		b.ReportMetric(res.Time*1e3, "ms_solution")
	}
	b.Run("off", func(b *testing.B) {
		run(b, core.Config{Episodes: 1000, Seed: 1, DisableReplay: true})
	})
	for _, size := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			run(b, core.Config{
				Episodes: 1000, Seed: 1,
				Agent: qlearn.Config{Alpha: 0.05, Gamma: 0.9, ReplaySize: size},
			})
		})
	}
}

// BenchmarkAblationSchedule compares the paper's 50%/5% ε schedule
// against a linear decay and a fixed ε.
func BenchmarkAblationSchedule(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	const episodes = 1000
	linear := make([]qlearn.Phase, 0, 10)
	for i := 0; i < 10; i++ {
		linear = append(linear, qlearn.Phase{Epsilon: 1 - float64(i)/9, Episodes: episodes / 10})
	}
	schedules := []struct {
		name   string
		phases []qlearn.Phase
	}{
		{"paper-50-5", qlearn.PaperSchedule(episodes)},
		{"linear", linear},
		{"fixed-0.1", []qlearn.Phase{{Epsilon: 0.1, Episodes: episodes}}},
	}
	for _, s := range schedules {
		b.Run(s.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Search(tab, core.Config{Episodes: episodes, Seed: 1, Schedule: s.phases})
			}
			b.ReportMetric(res.Time*1e3, "ms_solution")
		})
	}
}

// BenchmarkAblationAlphaGamma sweeps the learning rate and discount
// factor around the paper's (0.05, 0.9).
func BenchmarkAblationAlphaGamma(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	for _, cfg := range []struct {
		alpha, gamma float64
	}{{0.05, 0.9}, {0.2, 0.9}, {0.05, 0.5}, {0.01, 0.99}} {
		b.Run(fmt.Sprintf("a%.2f-g%.2f", cfg.alpha, cfg.gamma), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Search(tab, core.Config{
					Episodes: 1000, Seed: 1,
					Agent: qlearn.Config{Alpha: cfg.alpha, Gamma: cfg.gamma, ReplaySize: 128},
				})
			}
			b.ReportMetric(res.Time*1e3, "ms_solution")
		})
	}
}

// BenchmarkConvKernels measures the real compute kernels on a
// VGG-like 3x3 convolution — the concrete speed differences the
// primitive registry abstracts.
func BenchmarkConvKernels(b *testing.B) {
	in := tensor.New(tensor.Shape{N: 1, C: 32, H: 28, W: 28}, tensor.NCHW)
	in.FillRandom(rand.New(rand.NewSource(1)), 1)
	p := nn.ConvParams{OutChannels: 32, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := make([]float32, 32*32*9)
	for i := range w {
		w[i] = rand.New(rand.NewSource(int64(i))).Float32()
	}
	bias := make([]float32, 32)
	variants := []struct {
		name string
		run  func()
	}{
		{"direct", func() { kernels.ConvDirect(in, w, bias, p) }},
		{"im2col-naive", func() { kernels.ConvIm2col(in, w, bias, p, gemm.Naive) }},
		{"im2col-blocked", func() { kernels.ConvIm2col(in, w, bias, p, gemm.Blocked) }},
		{"im2col-packed", func() { kernels.ConvIm2col(in, w, bias, p, gemm.Packed) }},
		{"im2row-blocked", func() { kernels.ConvIm2row(in, w, bias, p, gemm.Blocked) }},
		{"im2row-packed", func() { kernels.ConvIm2row(in, w, bias, p, gemm.Packed) }},
		{"kn2row-blocked", func() { kernels.ConvKn2row(in, w, bias, p, gemm.Blocked) }},
		{"kn2row-packed", func() { kernels.ConvKn2row(in, w, bias, p, gemm.Packed) }},
		{"winograd", func() { kernels.ConvWinograd(in, w, bias, p) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.run()
			}
		})
	}
}

// BenchmarkGemm measures the two GEMM backends at a conv-lowering
// shape.
func BenchmarkGemm(b *testing.B) {
	const m, n, k = 64, 784, 288
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(i%7) * 0.1
	}
	for i := range bb {
		bb[i] = float32(i%5) * 0.1
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gemm.Naive(m, n, k, a, bb, c)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gemm.Blocked(m, n, k, a, bb, c)
		}
	})
}

// BenchmarkEngineInference measures real end-to-end inference of a
// small CNN under the Vanilla and searched assignments.
func BenchmarkEngineInference(b *testing.B) {
	bld := nn.NewBuilder("bench-net", tensor.Shape{N: 1, C: 3, H: 32, W: 32})
	x := bld.Conv("conv1", bld.Input(), 16, 3, 1, 1)
	x = bld.ReLU("relu1", x)
	x = bld.Pool("pool1", x, nn.MaxPool, 2, 2, 0)
	x = bld.Conv("conv2", x, 32, 3, 1, 1)
	x = bld.Flatten("flat", x)
	bld.FullyConnected("fc", x, 10)
	net := bld.MustBuild()
	eng := engine.New(net, 7, 0.5)
	input := tensor.New(net.InputShape, tensor.NCHW)
	input.FillRandom(rand.New(rand.NewSource(2)), 1)

	src, err := engine.NewSource(eng, input)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := profile.Run(net, src, profile.Options{Mode: primitives.ModeCPU, Samples: 5})
	if err != nil {
		b.Fatal(err)
	}
	searched := core.Search(tab, core.Config{Episodes: 400, Seed: 1}).Assignment

	b.Run("vanilla", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(eng.VanillaAssignment(), input); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("searched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(searched, input); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPBQPvsRL compares the prior-art PBQP solver against the RL
// search on a chain (both exact) and on branchy graphs (PBQP falls
// back to heuristic RN reductions).
func BenchmarkPBQPvsRL(b *testing.B) {
	for _, network := range []string{"mobilenet-v1", "googlenet", "resnet50"} {
		tab := benchTable(b, network, primitives.ModeGPGPU)
		b.Run(network+"/pbqp", func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.PBQP(tab)
			}
			b.ReportMetric(res.Time*1e3, "ms_solution")
		})
		b.Run(network+"/rl", func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Search(tab, core.Config{Episodes: 1000, Seed: 1})
			}
			b.ReportMetric(res.Time*1e3, "ms_solution")
		})
	}
}

// BenchmarkApproxVsTabular compares the linear value-function
// approximation agent (the paper's scalability direction) against the
// tabular agent at a small episode budget on a deep network.
func BenchmarkApproxVsTabular(b *testing.B) {
	tab := benchTable(b, "resnet50", primitives.ModeGPGPU)
	net := models.MustBuild("resnet50")
	const budget = 100
	b.Run("tabular", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = core.Search(tab, core.Config{Episodes: budget, Seed: 1})
		}
		b.ReportMetric(res.Time*1e3, "ms_solution")
	})
	b.Run("approx", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = core.SearchApprox(tab, net, core.ApproxConfig{Config: core.Config{Episodes: budget, Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Time*1e3, "ms_solution")
	})
}

// BenchmarkParetoFront sweeps the latency/energy trade-off (future-
// work extension) and reports the corners of the front.
func BenchmarkParetoFront(b *testing.B) {
	net := models.MustBuild("squeezenet")
	pl := platform.JetsonTX2Like()
	tt, et, err := profile.RunWithEnergy(net, profile.NewSimSource(net, pl),
		profile.Options{Mode: primitives.ModeGPGPU, Samples: 20})
	if err != nil {
		b.Fatal(err)
	}
	var front []core.ParetoPoint
	for i := 0; i < b.N; i++ {
		front, err = core.ParetoFront(tt, et, []float64{0, 0.1, 1, 10, 100}, core.Config{Episodes: 600, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(front) > 0 {
		b.ReportMetric(front[0].Seconds*1e3, "ms_fastest")
		b.ReportMetric(front[len(front)-1].Joules*1e3, "mJ_frugalest")
	}
}

// BenchmarkConvFFTKernel measures the FFT convolution against direct
// and im2col on the Inception 5x5 geometry.
func BenchmarkConvFFTKernel(b *testing.B) {
	in := tensor.New(tensor.Shape{N: 1, C: 16, H: 14, W: 14}, tensor.NCHW)
	in.FillRandom(rand.New(rand.NewSource(1)), 1)
	p := nn.ConvParams{OutChannels: 32, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	w := make([]float32, 32*16*25)
	rng := rand.New(rand.NewSource(2))
	for i := range w {
		w[i] = rng.Float32()
	}
	bias := make([]float32, 32)
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.ConvFFT(in, w, bias, p)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.ConvDirect(in, w, bias, p)
		}
	})
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.ConvIm2col(in, w, bias, p, gemm.Blocked)
		}
	})
}

// BenchmarkAblationProfilingNoise measures robustness to measurement
// noise: profile at increasing jitter, search on the noisy table, then
// evaluate the found assignment against the noise-free table. The
// reported ms_true is what the configuration would actually cost —
// the paper's 50-image averaging exists precisely to keep this close
// to the noise-free optimum.
func BenchmarkAblationProfilingNoise(b *testing.B) {
	net := models.MustBuild("mobilenet-v1")
	clean := platform.JetsonTX2Like()
	clean.MeasurementNoise = 0
	cleanTab, err := profile.Run(net, profile.NewSimSource(net, clean),
		profile.Options{Mode: primitives.ModeGPGPU, Samples: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, noise := range []float64{0, 0.05, 0.20, 0.50} {
		b.Run(fmt.Sprintf("noise-%.0f%%", noise*100), func(b *testing.B) {
			pl := platform.JetsonTX2Like()
			pl.MeasurementNoise = noise
			var trueTime float64
			for i := 0; i < b.N; i++ {
				noisyTab, err := profile.Run(net, profile.NewSimSource(net, pl),
					profile.Options{Mode: primitives.ModeGPGPU, Samples: 50})
				if err != nil {
					b.Fatal(err)
				}
				res := core.Search(noisyTab, core.Config{Episodes: 1000, Seed: 1})
				trueTime = cleanTab.TotalTime(res.Assignment)
			}
			b.ReportMetric(trueTime*1e3, "ms_true")
		})
	}
}

// BenchmarkBoltzmannVsEpsilonGreedy compares exploration policies (a
// "different reward/exploration choices" study from the paper's
// future work).
func BenchmarkBoltzmannVsEpsilonGreedy(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	b.Run("epsilon-greedy", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = core.SearchWithPolicy(tab, core.Config{Episodes: 1000, Seed: 1}, nil)
		}
		b.ReportMetric(res.Time*1e3, "ms_solution")
	})
	b.Run("boltzmann", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = core.SearchWithPolicy(tab, core.Config{Episodes: 1000, Seed: 1},
				&core.Boltzmann{Start: 1, End: 0.01, Episodes: 1000})
		}
		b.ReportMetric(res.Time*1e3, "ms_solution")
	})
}

// BenchmarkOptimizeBatch measures the batch orchestrator's throughput
// at one worker (pure sequential, pool bypassed) versus an 8-worker
// pool, over a mixed batch with best-of-2 seeds per job (8 units).
// The ms_batch metric is the wall-clock of one whole batch; on a host
// with C cores the pooled variant divides it by roughly min(C, 8),
// while on a single core it exposes the scheduling overhead instead.
func BenchmarkOptimizeBatch(b *testing.B) {
	b.Logf("GOMAXPROCS=%d NumCPU=%d", runtime.GOMAXPROCS(0), runtime.NumCPU())
	jobs := []BatchJob{
		{Network: "lenet5", Mode: ModeGPGPU},
		{Network: "mobilenet-v1", Mode: ModeGPGPU},
		{Network: "mobilenet-v1", Mode: ModeCPU},
		{Network: "squeezenet", Mode: ModeGPGPU},
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var batch *BatchReport
			for i := 0; i < b.N; i++ {
				var err error
				batch, err = OptimizeBatch(jobs, BatchOptions{
					Options: Options{Episodes: 300, Samples: 10},
					Workers: workers,
					BestOf:  2,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch.Elapsed.Milliseconds()), "ms_batch")
			b.ReportMetric(float64(batch.ProfileMisses), "profiles")
		})
	}
}

// BenchmarkSearchEnsemble measures the 5-seed ensemble protocol of
// Fig. 5 and reports the spread across seeds.
func BenchmarkSearchEnsemble(b *testing.B) {
	tab := benchTable(b, "mobilenet-v1", primitives.ModeGPGPU)
	var stats *core.EnsembleStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = core.SearchEnsemble(tab, core.Config{Episodes: 350, Seed: 1}, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean*1e3, "ms_mean")
	b.ReportMetric(stats.Std*1e3, "ms_std")
}
