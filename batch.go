package qsdnn

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/runner"
	"repro/internal/store"
)

// This file is the public face of the concurrent batch orchestrator
// (internal/runner): many (network, mode, seed) optimizations fanned
// across a bounded worker pool, profiling each distinct
// (network, mode, samples) combination exactly once via a
// single-flight cache, with deterministic best-of-N-seeds aggregation
// — the batch output depends only on the jobs and seeds, never on the
// worker count or completion order.

// BatchJob requests one network optimization within a batch.
type BatchJob struct {
	// Network is the zoo model name.
	Network string
	// Mode is the processor mode (default ModeCPU).
	Mode Mode
	// Seeds are the search seeds to try, keeping the best result
	// (best-of-N). Empty derives BestOf consecutive seeds from the
	// batch Options.Seed.
	Seeds []int64
}

// BatchOptions configures OptimizeBatch. The embedded Options supply
// the per-job defaults (Episodes, Samples, Seed, Search).
type BatchOptions struct {
	Options
	// Workers bounds the worker pool; <= 0 uses one per CPU.
	Workers int
	// BestOf is the number of consecutive seeds (starting at
	// Options.Seed) tried per job when a job has no explicit Seeds;
	// <= 0 means 1.
	BestOf int
	// Platform is the board model; nil selects the TX2-like preset.
	Platform *Platform
	// Robust selects the fault-tolerant profiling policy (retry,
	// per-sample timeout, robust aggregation, graceful degradation).
	// nil keeps the strict legacy path unless Faults is set, in which
	// case the default policy applies.
	Robust *RobustPolicy
	// Faults, when non-nil, wraps the profiling source in a seeded
	// deterministic fault injector.
	Faults *FaultInjection
	// ManifestDir, when non-empty, makes the batch resumable: each
	// completed (network, mode, seed) unit is durably journaled in the
	// directory together with checksummed copies of the profiled
	// look-up tables, and a re-invoked batch with the same directory
	// restores every verifiable unit (journal record intact, stored
	// LUT passes its checksum and matches the record's digest, result
	// re-evaluates exactly) instead of re-running it — so a killed
	// sweep converges to the same output as an uninterrupted one,
	// re-running only what is missing or corrupt.
	ManifestDir string
}

// JobStats carries the per-job batch bookkeeping that is not part of
// the Report itself. Wall-clock fields are excluded from JSON so a
// serialized batch is reproducible byte for byte across runs and
// worker counts.
type JobStats struct {
	// Network and Mode identify the job.
	Network string
	Mode    Mode
	// Seeds are the seeds tried, in order.
	Seeds []int64
	// BestSeed produced the job's Report.
	BestSeed int64
	// SeedSeconds holds each seed's best inference time, seed order
	// (seeds that never ran — profiling failure or cancellation — are
	// omitted).
	SeedSeconds []float64
	// Excluded lists candidates the graceful-degradation policy
	// dropped while profiling this job's table, as "layer:primitive".
	Excluded []string `json:",omitempty"`
	// Err is the job's failure (or cancellation) cause; nil for a
	// completed job. Excluded from JSON like the wall-clock fields.
	Err error `json:"-"`
	// Elapsed is the summed search wall-clock across the job's seeds.
	Elapsed time.Duration `json:"-"`
}

// BatchReport is the outcome of OptimizeBatch.
type BatchReport struct {
	// Reports holds one best-of-seeds Report per job, in input order.
	// A job that failed or was canceled before any seed completed has
	// a nil entry; its Stats slot carries the error.
	Reports []*Report
	// Stats holds the matching per-job seed and timing details.
	Stats []JobStats
	// Canceled reports that the batch context was done before every
	// unit ran; the populated entries are the flushed partial results.
	Canceled bool
	// Elapsed is the whole batch's wall clock, profiling included
	// (excluded from JSON: it varies run to run).
	Elapsed time.Duration `json:"-"`
	// ProfileHits counts profiling requests served by the shared
	// cache; ProfileMisses counts distinct profiling runs executed.
	ProfileHits, ProfileMisses int
	// Restored counts units restored from the manifest instead of
	// re-run (always 0 without BatchOptions.ManifestDir).
	Restored int
}

// OptimizeBatch profiles and searches every job concurrently on a
// bounded worker pool and returns the per-job Reports in input order.
// Tables are shared: each distinct (network, mode, samples)
// combination is profiled exactly once per batch, even when many
// workers request it simultaneously.
//
// OptimizeBatch keeps the legacy all-or-nothing contract: the first
// per-job failure fails the whole call. Use OptimizeBatchContext for
// partial results under failure or cancellation.
func OptimizeBatch(jobs []BatchJob, opts BatchOptions) (*BatchReport, error) {
	out, err := OptimizeBatchContext(context.Background(), jobs, opts)
	if err != nil {
		return nil, err
	}
	for i := range out.Stats {
		if jerr := out.Stats[i].Err; jerr != nil {
			return nil, jerr
		}
	}
	return out, nil
}

// OptimizeBatchContext runs the batch under ctx. A failing job records
// its error in the matching Stats entry (its Reports slot stays nil)
// while the rest proceed; cancellation stops further work, sets
// Canceled, and returns whatever jobs completed — an interrupted sweep
// still flushes its partial results.
func OptimizeBatchContext(ctx context.Context, jobs []BatchJob, opts BatchOptions) (*BatchReport, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("qsdnn: empty batch")
	}
	opts.Options = opts.Options.withDefaults()
	if opts.BestOf <= 0 {
		opts.BestOf = 1
	}
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		seeds := j.Seeds
		if len(seeds) == 0 {
			seeds = make([]int64, opts.BestOf)
			for k := range seeds {
				seeds[k] = opts.Seed + int64(k)
			}
		}
		rjobs[i] = runner.Job{
			Network:  j.Network,
			Mode:     j.Mode,
			Seeds:    seeds,
			Episodes: opts.Episodes,
			Samples:  opts.Samples,
			Search:   opts.Search,
		}
	}
	ropts := runner.Options{
		Workers:  opts.Workers,
		Platform: opts.Platform,
		Robust:   opts.Robust,
		Faults:   opts.Faults,
	}
	if opts.ManifestDir != "" {
		man, err := store.OpenManifest(opts.ManifestDir)
		if err != nil {
			return nil, fmt.Errorf("qsdnn: opening manifest: %w", err)
		}
		defer man.Close()
		ropts.Manifest = man
	}
	batch, err := runner.RunContext(ctx, rjobs, ropts)
	if err != nil {
		return nil, err
	}
	out := &BatchReport{
		Reports:       make([]*Report, len(batch.Jobs)),
		Stats:         make([]JobStats, len(batch.Jobs)),
		Canceled:      batch.Canceled,
		Elapsed:       batch.Elapsed,
		ProfileHits:   batch.ProfileHits,
		ProfileMisses: batch.ProfileMisses,
		Restored:      batch.Restored,
	}
	for i, jr := range batch.Jobs {
		st := JobStats{
			Network:  jr.Job.Network,
			Mode:     jr.Job.Mode,
			Seeds:    jr.Job.Seeds,
			BestSeed: jr.BestSeed,
			Err:      jr.Err,
			Elapsed:  jr.Elapsed,
		}
		if jr.Profile != nil {
			for _, e := range jr.Profile.Excluded {
				st.Excluded = append(st.Excluded, fmt.Sprintf("%s:%s", e.LayerName, e.Primitive))
			}
		}
		for _, sr := range jr.Seeds {
			if sr.Result != nil {
				st.SeedSeconds = append(st.SeedSeconds, sr.Result.Time)
			}
		}
		if jr.Best != nil {
			out.Reports[i] = newReport(jr.Net, jr.Table, jr.Best)
		}
		out.Stats[i] = st
	}
	return out, nil
}

// ZooBatch builds one BatchJob per zoo model under the given mode —
// the full-sweep input for OptimizeBatch.
func ZooBatch(mode Mode) []BatchJob {
	names := Models()
	jobs := make([]BatchJob, len(names))
	for i, n := range names {
		jobs[i] = BatchJob{Network: n, Mode: mode}
	}
	return jobs
}

// Summary renders the batch as a fixed-width table: one line per job
// with the paper's headline quantities plus the winning seed. Failed
// or canceled jobs render a FAILED line with their cause; degraded
// jobs get a footer listing the excluded primitives. The string is
// deterministic for fixed jobs, seeds and fault schedules —
// wall-clock stats are reported separately by TimingSummary.
func (r *BatchReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-6s %10s %10s %10s %9s %8s\n",
		"network", "mode", "qsdnn(ms)", "vanilla/x", "bsl/x", "seeds", "best")
	for i, rep := range r.Reports {
		st := r.Stats[i]
		if rep == nil {
			fmt.Fprintf(&b, "%-16s %-6s %10s  %v\n", st.Network, st.Mode, "FAILED", st.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %-6s %10.3f %9.1fx %9.2fx %9d %8d\n",
			rep.Network, rep.Mode, rep.Seconds*1e3,
			rep.SpeedupVsVanilla, rep.SpeedupVsBSL, len(st.Seeds), st.BestSeed)
	}
	for _, st := range r.Stats {
		if len(st.Excluded) > 0 {
			fmt.Fprintf(&b, "degraded %s/%s: dropped %s\n",
				st.Network, st.Mode, strings.Join(st.Excluded, ", "))
		}
	}
	if r.Canceled {
		b.WriteString("batch interrupted: partial results above\n")
	}
	return b.String()
}

// TimingSummary renders the wall-clock side of the batch: per-job
// search times (descending), total elapsed and cache effectiveness.
func (r *BatchReport) TimingSummary() string {
	type jt struct {
		name string
		d    time.Duration
	}
	items := make([]jt, len(r.Stats))
	var total time.Duration
	for i, st := range r.Stats {
		items[i] = jt{name: fmt.Sprintf("%s/%s", st.Network, st.Mode), d: st.Elapsed}
		total += st.Elapsed
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].d > items[j].d })
	var b strings.Builder
	fmt.Fprintf(&b, "batch wall-clock %v (search time summed over jobs %v)\n", r.Elapsed, total)
	fmt.Fprintf(&b, "profile cache: %d runs, %d shared\n", r.ProfileMisses, r.ProfileHits)
	for _, it := range items {
		fmt.Fprintf(&b, "  %-24s %v\n", it.name, it.d)
	}
	return b.String()
}
