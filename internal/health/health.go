// Package health implements the plan-health subsystem: measurement
// fingerprints, drift detection over canary re-measurements, and the
// per-(platform, library) quarantine state machine that drives the
// serve daemon's self-healing re-optimization.
//
// QS-DNN's premise is that measured primitive times are ground truth,
// but on embedded targets ground truth drifts: thermal throttling,
// DVFS and co-located load silently invalidate a LUT profiled minutes
// ago. This package decides *when* a profiled table stopped being
// true. Every decision is a pure function of measured values and
// epoch counters — no wall clock — so chaos tests that inject
// deterministic drift stay byte-reproducible.
//
// The state machine per (platform, library):
//
//	fresh ──drifted entry──▶ suspect ──confirmed──▶ quarantined
//	  ▲                        │                        │
//	  └────clean canary────────┘            heal job completes
//	                                                    │
//	                                       ┌────────────┴───────────┐
//	                                    healed                rolled-back
//	                                 (new plan won)      (parent plan kept)
//
// Healed and rolled-back pairs re-enter the detector: a later drift
// moves them back to suspect.
package health

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/lut"
	"repro/internal/primitives"
)

// Fingerprint summarizes one (platform, library)'s measured latencies
// in a profiled table: the median and the median absolute deviation
// of its (layer, primitive) entries — the same two robust statistics
// profile.Robust's aggregation is built on. The MAD scales the drift
// band: a fresh canary estimate farther than Band normalized MADs
// from its stored baseline is flagged as drifted.
type Fingerprint struct {
	Platform string `json:"platform"`
	Library  string `json:"library"`
	// MedianSec and MADSec are seconds over the library's measured
	// (layer, primitive) entries.
	MedianSec float64 `json:"median_sec"`
	MADSec    float64 `json:"mad_sec"`
	// Entries is how many measured cells the fingerprint covers.
	Entries int `json:"entries"`
}

// Fingerprints computes the per-library fingerprints of a profiled
// table, sorted by library name. Libraries with no measured entry
// (never a candidate, or fully dropped by degradation) are absent.
func Fingerprints(platform string, tab *lut.Table) []Fingerprint {
	byLib := map[string][]float64{}
	for i := 1; i < tab.NumLayers(); i++ {
		for _, id := range tab.Candidates(i) {
			v := tab.Time(i, id)
			if math.IsInf(v, 1) {
				continue
			}
			lib := primitives.ByID(id).Lib.String()
			byLib[lib] = append(byLib[lib], v)
		}
	}
	libs := make([]string, 0, len(byLib))
	for lib := range byLib {
		libs = append(libs, lib)
	}
	sort.Strings(libs)
	out := make([]Fingerprint, 0, len(libs))
	for _, lib := range libs {
		med, mad := medianMAD(byLib[lib])
		out = append(out, Fingerprint{
			Platform: platform, Library: lib,
			MedianSec: med, MADSec: mad, Entries: len(byLib[lib]),
		})
	}
	return out
}

// medianMAD returns the median and the (raw, unscaled) median
// absolute deviation of vals.
func medianMAD(vals []float64) (med, mad float64) {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	med = medianSorted(sorted)
	dev := make([]float64, len(sorted))
	for i, v := range sorted {
		dev[i] = math.Abs(v - med)
	}
	sort.Float64s(dev)
	return med, medianSorted(dev)
}

func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// State is one (platform, library) pair's position in the plan-health
// state machine.
type State int

const (
	// Fresh means no unexplained deviation has been observed.
	Fresh State = iota
	// Suspect means at least one canary entry drifted but the
	// confirmation threshold has not been reached.
	Suspect
	// Quarantined means drift is confirmed: dependent cached plans are
	// stale and served flagged revalidating until a heal completes.
	Quarantined
	// Healed means a re-optimization against a fresh table replaced
	// the dependent plans.
	Healed
	// RolledBack means the re-searched plan regressed against the
	// fresh table, so the parent plan (re-priced) was kept.
	RolledBack
)

var stateNames = [...]string{"fresh", "suspect", "quarantined", "healed", "rolled-back"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Status is one pair's externally visible health, as reported in
// /statusz.
type Status struct {
	Platform string `json:"platform"`
	Library  string `json:"library"`
	State    string `json:"state"`
	// DriftedEntries counts canary entries flagged since the pair was
	// last fresh or healed.
	DriftedEntries int `json:"drifted_entries,omitempty"`
	// QuarantinedEpoch / HealedEpoch are the profile epochs of the
	// last quarantine and heal transitions.
	QuarantinedEpoch int64 `json:"quarantined_epoch,omitempty"`
	HealedEpoch      int64 `json:"healed_epoch,omitempty"`
}

// TickStats summarizes one canary round.
type TickStats struct {
	// Measured counts canary re-measurements attempted this round.
	Measured int `json:"measured"`
	// Drifted counts entries whose fresh estimate left the MAD band.
	Drifted int `json:"drifted"`
	// Quarantined counts (platform, library) pairs newly confirmed
	// this round.
	Quarantined int `json:"quarantined"`
	// Recovered counts previously dropped entries that measured
	// successfully again (breaker-recovery probes).
	Recovered int `json:"recovered"`
}

// Config tunes the plan-health subsystem. The zero value selects
// every default, so a nil-config server still has sane health
// machinery (manual canary ticks only).
type Config struct {
	// Seed drives the canary rotation's starting offset.
	Seed int64
	// CanarySize is how many (layer, primitive) entries each LUT
	// re-measures per canary tick; <= 0 selects 4.
	CanarySize int
	// Band is the drift band in normalized MADs: a fresh estimate
	// farther than Band * (1.4826 * MAD) from its baseline is
	// drifted; <= 0 selects 4.
	Band float64
	// Confirm is how many drifted entries confirm a (platform,
	// library) quarantine; <= 0 selects 2.
	Confirm int
	// PlanTTL, in profile epochs, marks plans whose LUT has advanced
	// PlanTTL or more epochs since they were optimized as
	// revalidating; 0 disables.
	PlanTTL int64
	// NoHeal disables the self-healing re-optimization: drift is
	// still detected and quarantined (and visible in /statusz), but
	// stale plans are only refreshed by explicit heals.
	NoHeal bool
	// Interval is the wall-clock cadence of the background canary
	// loop; 0 runs no loop (ticks are driven explicitly). The
	// interval only schedules work — every health decision is
	// epoch-based.
	Interval time.Duration
}

// Size returns the effective canary subset size.
func (c *Config) Size() int {
	if c == nil || c.CanarySize <= 0 {
		return 4
	}
	return c.CanarySize
}

// BandWidth returns the effective drift band in normalized MADs.
func (c *Config) BandWidth() float64 {
	if c == nil || c.Band <= 0 {
		return 4
	}
	return c.Band
}

// ConfirmCount returns the effective quarantine confirmation
// threshold.
func (c *Config) ConfirmCount() int {
	if c == nil || c.Confirm <= 0 {
		return 2
	}
	return c.Confirm
}

// Drifted reports whether a fresh robust estimate falls outside the
// MAD-scaled band of its stored baseline. mad is the library
// fingerprint's raw MAD; 1.4826 scales it to a Gaussian sigma
// estimate (the same scaling the robust aggregation uses). A floor of
// 2% of the baseline guards near-zero MADs — deterministic simulated
// sources reproduce baselines exactly, so the floor never masks real
// drift, only numeric dust.
func (c *Config) Drifted(fresh, baseline, mad float64) bool {
	scale := 1.4826 * mad
	if floor := 0.02 * baseline; scale < floor {
		scale = floor
	}
	if scale <= 0 {
		scale = 1e-12
	}
	return math.Abs(fresh-baseline) > c.BandWidth()*scale
}

// CanaryIndices selects the rotating canary subset for one tick:
// k deterministic indices into an n-entry list, chosen so successive
// rounds sweep the whole list (every entry is re-measured within
// ceil(n/k) rounds) from a seeded starting offset. No randomness at
// tick time — the schedule is a pure function of (seed, round).
func CanaryIndices(seed, round int64, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	start := int(hash01(seed, round) * float64(n))
	out := make([]int, k)
	for j := range out {
		out[j] = (start + int(round%int64(n))*k + j) % n
	}
	return out
}

// hash01 maps (seed, round) to a deterministic uniform value in
// [0, 1) — FNV-64a with a splitmix64 finalizer, the same construction
// profile's seeded schedules use.
func hash01(seed, round int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|canary|%d", seed, round)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Monitor is the quarantine state machine plus the global profile
// epoch counter. Safe for concurrent use.
type Monitor struct {
	confirm int

	mu    sync.Mutex
	epoch int64
	pairs map[pairKey]*pairState
}

type pairKey struct{ platform, library string }

type pairState struct {
	state     State
	drifted   int
	quarEpoch int64
	healEpoch int64
}

// NewMonitor returns a monitor confirming quarantine after confirm
// drifted entries (<= 0 selects 2).
func NewMonitor(confirm int) *Monitor {
	if confirm <= 0 {
		confirm = 2
	}
	return &Monitor{confirm: confirm, pairs: map[pairKey]*pairState{}}
}

// Epoch returns the current profile epoch.
func (m *Monitor) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// NextEpoch advances and returns the profile epoch — called once per
// re-profiled LUT, so plan ages count re-profiles, not seconds.
func (m *Monitor) NextEpoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	return m.epoch
}

func (m *Monitor) pair(platform, library string) *pairState {
	k := pairKey{platform, library}
	p := m.pairs[k]
	if p == nil {
		p = &pairState{}
		m.pairs[k] = p
	}
	return p
}

// NoteDrift records n freshly drifted canary entries for (platform,
// library) and reports whether this note confirmed a new quarantine.
// A healed (or rolled-back) pair that drifts again re-enters suspect.
func (m *Monitor) NoteDrift(platform, library string, n int) bool {
	if n <= 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pair(platform, library)
	switch p.state {
	case Quarantined:
		p.drifted += n
		return false
	case Healed, RolledBack:
		p.state, p.drifted = Suspect, 0
	case Fresh:
		p.state = Suspect
	}
	p.drifted += n
	if p.drifted >= m.confirm {
		p.state = Quarantined
		p.quarEpoch = m.epoch
		return true
	}
	return false
}

// NoteClean records a canary round where every re-measured entry of
// (platform, library) stayed inside the band: a suspect pair returns
// to fresh (the deviation did not persist).
func (m *Monitor) NoteClean(platform, library string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.pairs[pairKey{platform, library}]; p != nil && p.state == Suspect {
		p.state, p.drifted = Fresh, 0
	}
}

// MarkHealed moves a quarantined pair to healed (or rolled-back when
// the re-searched plan regressed and the parent was kept).
func (m *Monitor) MarkHealed(platform, library string, rolledBack bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pair(platform, library)
	if p.state != Quarantined {
		return
	}
	if rolledBack {
		p.state = RolledBack
	} else {
		p.state = Healed
	}
	p.drifted = 0
	p.healEpoch = m.epoch
}

// QuarantinedLibs returns the quarantined library names of a
// platform, sorted.
func (m *Monitor) QuarantinedLibs(platform string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var libs []string
	for k, p := range m.pairs {
		if k.platform == platform && p.state == Quarantined {
			libs = append(libs, k.library)
		}
	}
	sort.Strings(libs)
	return libs
}

// IsQuarantined reports whether (platform, library) is quarantined.
func (m *Monitor) IsQuarantined(platform, library string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pairs[pairKey{platform, library}]
	return p != nil && p.state == Quarantined
}

// Snapshot returns every tracked pair's status, sorted by (platform,
// library) — the /statusz health section.
func (m *Monitor) Snapshot() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.pairs))
	for k, p := range m.pairs {
		out = append(out, Status{
			Platform: k.platform, Library: k.library,
			State:            p.state.String(),
			DriftedEntries:   p.drifted,
			QuarantinedEpoch: p.quarEpoch,
			HealedEpoch:      p.healEpoch,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Library < out[j].Library
	})
	return out
}
