package health

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

func TestMedianMAD(t *testing.T) {
	cases := []struct {
		vals     []float64
		med, mad float64
	}{
		{nil, 0, 0},
		{[]float64{5}, 5, 0},
		{[]float64{1, 2, 3}, 2, 1},
		{[]float64{1, 2, 3, 100}, 2.5, 1},
		{[]float64{4, 4, 4, 4}, 4, 0},
	}
	for _, c := range cases {
		med, mad := medianMAD(c.vals)
		if med != c.med || mad != c.mad {
			t.Errorf("medianMAD(%v) = (%v, %v), want (%v, %v)", c.vals, med, mad, c.med, c.mad)
		}
	}
}

func TestFingerprintsDeterministicAndSorted(t *testing.T) {
	net, err := models.Build("lenet5")
	if err != nil {
		t.Fatal(err)
	}
	board, _ := platform.Preset("tx2-like")
	build := func() []Fingerprint {
		sim := profile.NewSimSource(net, board)
		tab, _, err := profile.RunFallible(context.Background(), net, profile.AsFallible(sim),
			profile.Options{Mode: primitives.ModeCPU, Samples: 3})
		if err != nil {
			t.Fatal(err)
		}
		return Fingerprints("tx2-like", tab)
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("no fingerprints from a fully measured table")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fingerprints not deterministic:\n%v\n%v", a, b)
	}
	for i, fp := range a {
		if fp.Platform != "tx2-like" {
			t.Errorf("fingerprint %d platform = %q", i, fp.Platform)
		}
		if fp.Entries <= 0 || fp.MedianSec <= 0 || fp.MADSec < 0 {
			t.Errorf("degenerate fingerprint: %+v", fp)
		}
		if i > 0 && a[i-1].Library >= fp.Library {
			t.Errorf("fingerprints not sorted by library: %q before %q", a[i-1].Library, fp.Library)
		}
	}
}

func TestDriftedBand(t *testing.T) {
	c := &Config{Band: 4}
	// MAD-scaled band: 4 * 1.4826 * 0.01 ≈ 0.0593 around baseline 1.
	if c.Drifted(1.05, 1.0, 0.01) {
		t.Error("inside the MAD band flagged as drifted")
	}
	if !c.Drifted(1.10, 1.0, 0.01) {
		t.Error("outside the MAD band not flagged")
	}
	// Near-zero MAD falls back to the 2% floor: band = 4 * 0.02 = 8%.
	if c.Drifted(1.07, 1.0, 0) {
		t.Error("inside the floor band flagged as drifted")
	}
	if !c.Drifted(1.09, 1.0, 0) {
		t.Error("outside the floor band not flagged")
	}
	// Exact reproduction (deterministic source) never drifts.
	if c.Drifted(1.0, 1.0, 0) {
		t.Error("exact reproduction flagged as drifted")
	}
	// nil config uses the defaults without panicking.
	var nilCfg *Config
	if nilCfg.BandWidth() != 4 || nilCfg.Size() != 4 || nilCfg.ConfirmCount() != 2 {
		t.Error("nil config defaults wrong")
	}
}

func TestCanaryIndicesDeterministicInRange(t *testing.T) {
	for round := int64(1); round <= 20; round++ {
		a := CanaryIndices(7, round, 50, 4)
		b := CanaryIndices(7, round, 50, 4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round %d not deterministic: %v vs %v", round, a, b)
		}
		if len(a) != 4 {
			t.Fatalf("round %d: got %d indices, want 4", round, len(a))
		}
		for _, ix := range a {
			if ix < 0 || ix >= 50 {
				t.Fatalf("round %d: index %d out of range", round, ix)
			}
		}
	}
	if got := CanaryIndices(1, 1, 3, 10); len(got) != 3 {
		t.Errorf("k >= n should return all indices, got %v", got)
	}
	if got := CanaryIndices(1, 1, 0, 4); got != nil {
		t.Errorf("n = 0 should return nil, got %v", got)
	}
	// Different seeds give different schedules (start offsets).
	s1 := CanaryIndices(1, 1, 1000, 2)
	s2 := CanaryIndices(2, 1, 1000, 2)
	if reflect.DeepEqual(s1, s2) {
		t.Errorf("seeds 1 and 2 produced identical schedules %v", s1)
	}
}

func TestCanaryIndicesSweepCoverage(t *testing.T) {
	// Successive rounds must visit every entry within a bounded number
	// of rounds — canaries that never look at an entry never catch its
	// drift.
	const n, k = 23, 4
	seen := map[int]bool{}
	for round := int64(1); round <= int64(4*n); round++ {
		for _, ix := range CanaryIndices(3, round, n, k) {
			seen[ix] = true
		}
		if len(seen) == n {
			return
		}
	}
	t.Fatalf("after %d rounds only %d/%d entries visited", 4*n, len(seen), n)
}

func TestMonitorStateMachine(t *testing.T) {
	m := NewMonitor(2)
	// One drifted entry: suspect, not quarantined.
	if m.NoteDrift("p", "ATLAS", 1) {
		t.Fatal("single drifted entry confirmed quarantine at confirm=2")
	}
	if m.IsQuarantined("p", "ATLAS") {
		t.Fatal("suspect pair reported quarantined")
	}
	// A clean round clears a suspect.
	m.NoteClean("p", "ATLAS")
	if st := m.Snapshot(); st[0].State != "fresh" || st[0].DriftedEntries != 0 {
		t.Fatalf("clean round did not reset suspect: %+v", st[0])
	}
	// Two drifted entries in one note: quarantined.
	if !m.NoteDrift("p", "ATLAS", 2) {
		t.Fatal("confirm threshold reached but quarantine not confirmed")
	}
	if !m.IsQuarantined("p", "ATLAS") {
		t.Fatal("confirmed pair not quarantined")
	}
	// Further drift accumulates without re-confirming.
	if m.NoteDrift("p", "ATLAS", 3) {
		t.Fatal("already quarantined pair re-confirmed")
	}
	// A clean round does NOT clear a quarantine.
	m.NoteClean("p", "ATLAS")
	if !m.IsQuarantined("p", "ATLAS") {
		t.Fatal("clean round cleared a confirmed quarantine")
	}
	if libs := m.QuarantinedLibs("p"); len(libs) != 1 || libs[0] != "ATLAS" {
		t.Fatalf("QuarantinedLibs = %v", libs)
	}
	// Heal resolves it; MarkHealed on a non-quarantined pair is a no-op.
	m.MarkHealed("p", "ATLAS", false)
	if m.IsQuarantined("p", "ATLAS") {
		t.Fatal("healed pair still quarantined")
	}
	if st := m.Snapshot(); st[0].State != "healed" {
		t.Fatalf("state after heal = %q", st[0].State)
	}
	m.MarkHealed("p", "OpenBLAS", true)
	if st := m.Snapshot(); len(st) != 2 || st[1].State != "fresh" {
		t.Fatalf("MarkHealed on a fresh pair should be a no-op: %+v", st)
	}
	// A healed pair that drifts again re-enters suspect from zero.
	if m.NoteDrift("p", "ATLAS", 1) {
		t.Fatal("healed pair jumped straight to quarantine")
	}
	if st := m.Snapshot(); st[0].State != "suspect" || st[0].DriftedEntries != 1 {
		t.Fatalf("re-drift after heal: %+v", st[0])
	}
	// Rolled-back terminal state.
	m2 := NewMonitor(1)
	m2.NoteDrift("p", "Sparse", 1)
	m2.MarkHealed("p", "Sparse", true)
	if st := m2.Snapshot(); st[0].State != "rolled-back" {
		t.Fatalf("rollback state = %q", st[0].State)
	}
}

func TestMonitorEpoch(t *testing.T) {
	m := NewMonitor(0)
	if m.Epoch() != 0 {
		t.Fatal("fresh monitor epoch not 0")
	}
	if m.NextEpoch() != 1 || m.NextEpoch() != 2 || m.Epoch() != 2 {
		t.Fatal("epoch counter broken")
	}
	m.NoteDrift("p", "L", 2)
	if st := m.Snapshot(); st[0].QuarantinedEpoch != 2 {
		t.Fatalf("quarantine epoch = %d, want 2", st[0].QuarantinedEpoch)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Fresh: "fresh", Suspect: "suspect", Quarantined: "quarantined",
		Healed: "healed", RolledBack: "rolled-back"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if State(99).String() != "State(99)" {
		t.Errorf("out-of-range state: %q", State(99).String())
	}
}
