package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestCalibrate(t *testing.T) {
	p := Calibrate([]float32{-2, 0.5, 1})
	if math.Abs(float64(p.Scale)-2.0/127) > 1e-9 {
		t.Errorf("scale = %v, want 2/127", p.Scale)
	}
	if z := Calibrate(nil); z.Scale != 1 {
		t.Errorf("empty calibration scale = %v, want 1", z.Scale)
	}
	if z := Calibrate([]float32{0, 0}); z.Scale != 1 {
		t.Errorf("zero calibration scale = %v, want 1", z.Scale)
	}
}

func TestQuantizeRoundTripBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 257)
	for i := range data {
		data[i] = rng.Float32()*4 - 2
	}
	q, p := QuantizeSlice(data)
	for i, v := range q {
		back := p.Dequantize(v)
		if math.Abs(float64(back-data[i])) > float64(p.Scale)/2+1e-6 {
			t.Fatalf("element %d: %v -> %v (scale %v)", i, data[i], back, p.Scale)
		}
	}
}

func TestQuantizeClamps(t *testing.T) {
	p := Params{Scale: 0.01}
	if p.quantize(10) != 127 || p.quantize(-10) != -127 {
		t.Error("out-of-range values should clamp to ±127")
	}
}

func TestTensorQuantizeDequantize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(tensor.Shape{N: 1, C: 3, H: 5, W: 7}, tensor.NCHW)
	x.FillRandom(rng, 1.5)
	q := QuantizeTensor(x)
	back := q.Dequantize()
	if d := tensor.MaxAbsDiff(x, back); d > float64(q.Params.Scale)/2+1e-6 {
		t.Errorf("round trip error %g exceeds half a step %g", d, q.Params.Scale/2)
	}
	if got := SQNR(x, back); got < 35 {
		t.Errorf("tensor SQNR = %.1f dB, want > 35", got)
	}
}

func TestQuantizedConvTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := tensor.New(tensor.Shape{N: 1, C: 4, H: 10, W: 10}, tensor.NCHW)
	in.FillRandom(rng, 1)
	p := nn.ConvParams{OutChannels: 6, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := make([]float32, 6*4*9)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	bias := make([]float32, 6)
	for i := range bias {
		bias[i] = rng.Float32() * 0.1
	}
	ref := kernels.ConvDirect(in, w, bias, p)

	qin := QuantizeTensor(in)
	qw, wp := QuantizeSlice(w)
	got, err := Conv(qin, qw, wp, bias, p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(ref.Shape()) {
		t.Fatalf("shape %v, want %v", got.Shape(), ref.Shape())
	}
	if sqnr := SQNR(ref, got); sqnr < 25 {
		t.Errorf("quantized conv SQNR = %.1f dB, want > 25", sqnr)
	}
}

func TestQuantizedFCTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := tensor.New(tensor.Shape{N: 1, C: 64, H: 1, W: 1}, tensor.NCHW)
	in.FillRandom(rng, 1)
	w := make([]float32, 16*64)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	bias := make([]float32, 16)
	ref := kernels.FCGemv(in, w, bias, 16)

	qin := QuantizeTensor(in)
	qw, wp := QuantizeSlice(w)
	got, err := FC(qin, qw, wp, bias, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sqnr := SQNR(ref, got); sqnr < 25 {
		t.Errorf("quantized FC SQNR = %.1f dB, want > 25", sqnr)
	}
}

func TestQuantizedConvProperty(t *testing.T) {
	f := func(ch, oc uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := int(ch%3) + 1
		o := int(oc%3) + 1
		in := tensor.New(tensor.Shape{N: 1, C: c, H: 6, W: 6}, tensor.NCHW)
		in.FillRandom(rng, 1)
		p := nn.ConvParams{OutChannels: o, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		w := make([]float32, o*c*9)
		for i := range w {
			w[i] = rng.Float32()*2 - 1
		}
		bias := make([]float32, o)
		ref := kernels.ConvDirect(in, w, bias, p)
		qw, wp := QuantizeSlice(w)
		got, err := Conv(QuantizeTensor(in), qw, wp, bias, p)
		if err != nil {
			return false
		}
		return SQNR(ref, got) > 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConvFCValidation(t *testing.T) {
	qin := QuantizeTensor(tensor.New(tensor.Shape{N: 1, C: 2, H: 4, W: 4}, tensor.NCHW))
	p := nn.ConvParams{OutChannels: 2, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}
	if _, err := Conv(qin, make([]int8, 3), Params{Scale: 1}, make([]float32, 2), p); err == nil {
		t.Error("short weights should error")
	}
	if _, err := Conv(qin, make([]int8, 2*2*9), Params{Scale: 1}, make([]float32, 1), p); err == nil {
		t.Error("short bias should error")
	}
	if _, err := FC(qin, make([]int8, 3), Params{Scale: 1}, make([]float32, 2), 2); err == nil {
		t.Error("short FC weights should error")
	}
}

func TestSQNREdgeCases(t *testing.T) {
	a := tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 2}, tensor.NCHW)
	a.Fill(1)
	if got := SQNR(a, a.Clone()); !math.IsInf(got, 1) {
		t.Errorf("identical tensors SQNR = %v, want +Inf", got)
	}
	zero := tensor.New(a.Shape(), tensor.NCHW)
	other := tensor.New(a.Shape(), tensor.NCHW)
	other.Fill(0.5)
	if got := SQNR(zero, other); !math.IsInf(got, -1) {
		t.Errorf("zero-signal SQNR = %v, want -Inf", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	SQNR(a, tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 3}, tensor.NCHW))
}
