// Package quant provides the int8 quantization substrate of the
// Bonseyes engine family (the authors' QUENN quantization engine is
// the companion work the paper's inference-engine optimizer builds
// on): symmetric per-tensor quantization, int8 convolution and
// fully-connected kernels with int32 accumulation, and the SQNR
// metric used to validate precision. It extends the reproduction the
// way the original deployment flow pairs primitive selection with
// low-precision execution.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Params holds symmetric per-tensor quantization parameters:
// q = round(x / Scale), clamped to [-127, 127].
type Params struct {
	// Scale maps one quantization step to real units.
	Scale float32
}

// Calibrate derives the symmetric scale covering the data's maximum
// magnitude. All-zero data gets scale 1 (any scale represents it).
func Calibrate(data []float32) Params {
	var maxAbs float32
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return Params{Scale: 1}
	}
	return Params{Scale: maxAbs / 127}
}

// quantize converts one value under the params.
func (p Params) quantize(x float32) int8 {
	q := math.RoundToEven(float64(x / p.Scale))
	if q > 127 {
		q = 127
	}
	if q < -127 {
		q = -127
	}
	return int8(q)
}

// Dequantize converts one quantized value back to real units.
func (p Params) Dequantize(q int8) float32 { return float32(q) * p.Scale }

// Tensor8 is an int8 activation/weight tensor with its quantization
// parameters. Storage is NCHW.
type Tensor8 struct {
	// Shape is the logical tensor shape.
	Shape tensor.Shape
	// Data is the quantized payload in NCHW order.
	Data []int8
	// Params maps values back to real units.
	Params Params
}

// QuantizeTensor quantizes a float tensor (any layout) with a
// freshly calibrated symmetric scale.
func QuantizeTensor(t *tensor.Tensor) *Tensor8 {
	nchw := t.ToLayout(tensor.NCHW)
	p := Calibrate(nchw.Data())
	q := &Tensor8{Shape: t.Shape(), Data: make([]int8, len(nchw.Data())), Params: p}
	for i, v := range nchw.Data() {
		q.Data[i] = p.quantize(v)
	}
	return q
}

// QuantizeSlice quantizes a raw float32 slice (e.g. weights).
func QuantizeSlice(data []float32) ([]int8, Params) {
	p := Calibrate(data)
	out := make([]int8, len(data))
	for i, v := range data {
		out[i] = p.quantize(v)
	}
	return out, p
}

// Dequantize expands the tensor back to float32 NCHW.
func (q *Tensor8) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Shape, tensor.NCHW)
	d := out.Data()
	for i, v := range q.Data {
		d[i] = q.Params.Dequantize(v)
	}
	return out
}

// at reads a quantized activation element (NCHW indexing).
func (q *Tensor8) at(n, c, h, w int) int32 {
	s := q.Shape
	return int32(q.Data[((n*s.C+c)*s.H+h)*s.W+w])
}

// Conv computes a dense 2-D convolution over int8 activations and
// weights with int32 accumulation, emitting dequantized float32
// output (bias is applied in float, as deployment engines do).
func Conv(in *Tensor8, w []int8, wp Params, bias []float32, p nn.ConvParams) (*tensor.Tensor, error) {
	s := in.Shape
	kArea := p.KernelH * p.KernelW
	if len(w) != p.OutChannels*s.C*kArea {
		return nil, fmt.Errorf("quant: conv weights have %d elements, need %d",
			len(w), p.OutChannels*s.C*kArea)
	}
	if len(bias) != p.OutChannels {
		return nil, fmt.Errorf("quant: conv bias has %d elements, need %d", len(bias), p.OutChannels)
	}
	oh := (s.H+2*p.PadH-p.KernelH)/p.StrideH + 1
	ow := (s.W+2*p.PadW-p.KernelW)/p.StrideW + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("quant: conv output %dx%d not positive", oh, ow)
	}
	out := tensor.New(tensor.Shape{N: s.N, C: p.OutChannels, H: oh, W: ow}, tensor.NCHW)
	rescale := in.Params.Scale * wp.Scale
	for n := 0; n < s.N; n++ {
		for oc := 0; oc < p.OutChannels; oc++ {
			wBase := oc * s.C * kArea
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc int32
					for c := 0; c < s.C; c++ {
						for r := 0; r < p.KernelH; r++ {
							ih := y*p.StrideH + r - p.PadH
							if ih < 0 || ih >= s.H {
								continue
							}
							for q2 := 0; q2 < p.KernelW; q2++ {
								iw := x*p.StrideW + q2 - p.PadW
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += int32(w[wBase+c*kArea+r*p.KernelW+q2]) * in.at(n, c, ih, iw)
							}
						}
					}
					out.Set(n, oc, y, x, float32(acc)*rescale+bias[oc])
				}
			}
		}
	}
	return out, nil
}

// FC computes a fully-connected layer over int8 inputs and weights
// (int32 accumulate, float bias and output).
func FC(in *Tensor8, w []int8, wp Params, bias []float32, outUnits int) (*tensor.Tensor, error) {
	inWidth := in.Shape.Elems() / in.Shape.N
	if len(w) != outUnits*inWidth {
		return nil, fmt.Errorf("quant: fc weights have %d elements, need %d", len(w), outUnits*inWidth)
	}
	if len(bias) != outUnits {
		return nil, fmt.Errorf("quant: fc bias size mismatch")
	}
	out := tensor.New(tensor.Shape{N: in.Shape.N, C: outUnits, H: 1, W: 1}, tensor.NCHW)
	rescale := in.Params.Scale * wp.Scale
	for n := 0; n < in.Shape.N; n++ {
		x := in.Data[n*inWidth : (n+1)*inWidth]
		for u := 0; u < outUnits; u++ {
			var acc int32
			row := w[u*inWidth : (u+1)*inWidth]
			for i, v := range row {
				acc += int32(v) * int32(x[i])
			}
			out.Set(n, u, 0, 0, float32(acc)*rescale+bias[u])
		}
	}
	return out, nil
}

// SQNR returns the signal-to-quantization-noise ratio, in dB, of an
// approximation against a float reference. Higher is better; int8
// inference typically lands above ~20 dB per layer.
func SQNR(ref, approx *tensor.Tensor) float64 {
	if !ref.Shape().Equal(approx.Shape()) {
		panic("quant: SQNR shape mismatch")
	}
	var signal, noise float64
	a := ref.ToLayout(tensor.NCHW).Data()
	b := approx.ToLayout(tensor.NCHW).Data()
	for i := range a {
		signal += float64(a[i]) * float64(a[i])
		d := float64(a[i]) - float64(b[i])
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	if signal == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(signal/noise)
}
