// Package searchplan compiles an immutable lut.Table into a dense,
// cache-friendly evaluation plan for the search phase. The look-up
// table is the profiling phase's product and keeps a sparse,
// registry-indexed layout that is convenient to populate and
// serialize; the search phase evaluates millions of layer costs and
// total times against it, and wants everything hoisted: per-layer
// candidate arrays, an ID→candidate-position map, per-edge penalty
// matrices indexed by candidate position, the incoming-edge adjacency
// of every layer, and the output-penalty vector. Compile performs that
// flattening exactly once per table; every evaluation afterwards is an
// allocation-free walk over flat slices.
//
// The compiled plan is semantically equal to the table it came from:
// LayerCostPos and TotalTimePos perform the same floating-point
// additions in the same order as lut.Table.LayerCost and
// lut.Table.TotalTime, so results are bit-identical, not just close
// (internal/core's golden tests pin this).
//
// Concurrency: a Plan is immutable after Compile and safe for
// concurrent use by any number of searches — the batch runner caches
// one plan per table and shares it across all jobs and seeds.
package searchplan

import (
	"fmt"

	"repro/internal/lut"
	"repro/internal/primitives"
)

// inEdge is one incoming dependency of a layer, pre-resolved so a
// layer-cost evaluation never touches the global edge list.
type inEdge struct {
	// from is the producer layer index.
	from int32
	// pen is the edge's penalty matrix, indexed
	// fromPos*width+toPos over candidate positions.
	pen []float64
}

// Plan is the compiled evaluation form of one lut.Table.
type Plan struct {
	numLayers int
	numPrims  int
	output    int

	// cands[i] holds layer i's candidate primitive IDs in table order;
	// a candidate's index in this slice is its "position".
	cands [][]primitives.ID
	// allowed[i] is cands[i] widened to ints — the action sets handed
	// to the Q-table, shared (read-only) by every episode.
	allowed [][]int
	// pos[i*numPrims+id] is the candidate position of primitive id at
	// layer i, or -1 when id is not a candidate there.
	pos []int32
	// times[i][c] is layer i's latency under its candidate position c.
	times [][]float64

	// edges mirrors the table's dependency list, in table order.
	edges []lut.Edge
	// pen[e][fc*width(e)+tc] is edge e's penalty for producer
	// candidate position fc and consumer candidate position tc, where
	// width(e) = len(cands[edges[e].To]).
	pen [][]float64
	// incoming[i] lists layer i's incoming edges in edge order — the
	// same order lut.Table.LayerCost sums them in.
	incoming [][]inEdge

	// outputPen[c] is the host-return penalty of the output layer's
	// candidate position c.
	outputPen []float64
}

// Compile flattens tab into a Plan. The table must be fully populated
// and immutable (no further Set*/DropCandidate calls); Compile reads
// it through the public read-side API only.
func Compile(tab *lut.Table) *Plan {
	L := tab.NumLayers()
	np := primitives.Count()
	p := &Plan{
		numLayers: L,
		numPrims:  np,
		output:    tab.OutputLayer(),
		cands:     make([][]primitives.ID, L),
		allowed:   make([][]int, L),
		pos:       make([]int32, L*np),
		times:     make([][]float64, L),
		edges:     append([]lut.Edge(nil), tab.Edges()...),
		incoming:  make([][]inEdge, L),
	}
	for i := range p.pos {
		p.pos[i] = -1
	}
	for i := 0; i < L; i++ {
		ids := tab.Candidates(i)
		p.cands[i] = append([]primitives.ID(nil), ids...)
		acts := make([]int, len(ids))
		ts := make([]float64, len(ids))
		for c, id := range ids {
			acts[c] = int(id)
			ts[c] = tab.Time(i, id)
			p.pos[i*np+int(id)] = int32(c)
		}
		p.allowed[i] = acts
		p.times[i] = ts
	}
	p.pen = make([][]float64, len(p.edges))
	for e, ed := range p.edges {
		from, to := p.cands[ed.From], p.cands[ed.To]
		m := make([]float64, len(from)*len(to))
		for fc, fp := range from {
			for tc, tp := range to {
				m[fc*len(to)+tc] = tab.PenaltyByEdge(e, fp, tp)
			}
		}
		p.pen[e] = m
		p.incoming[ed.To] = append(p.incoming[ed.To], inEdge{from: int32(ed.From), pen: m})
	}
	if p.output >= 0 && p.output < L {
		p.outputPen = make([]float64, len(p.cands[p.output]))
		for c, id := range p.cands[p.output] {
			p.outputPen[c] = tab.OutputPenalty(id)
		}
	}
	return p
}

// NumLayers returns the layer count including the input pseudo-layer.
func (p *Plan) NumLayers() int { return p.numLayers }

// OutputLayer returns the index of the layer whose result returns to
// the host.
func (p *Plan) OutputLayer() int { return p.output }

// Edges returns the dependency list in table order. Callers must not
// mutate it.
func (p *Plan) Edges() []lut.Edge { return p.edges }

// Candidates returns layer i's candidate IDs in position order.
// Callers must not mutate the returned slice.
func (p *Plan) Candidates(i int) []primitives.ID { return p.cands[i] }

// NumCandidates returns the size of layer i's candidate set.
func (p *Plan) NumCandidates(i int) int { return len(p.cands[i]) }

// CandidateAt returns the primitive ID at candidate position c of
// layer i.
func (p *Plan) CandidateAt(i, c int) primitives.ID { return p.cands[i][c] }

// Allowed returns layer i's candidate set as Q-table actions. The
// slice is shared; callers must not mutate it.
func (p *Plan) Allowed(i int) []int { return p.allowed[i] }

// Pos returns the candidate position of primitive id at layer i, or
// -1 when id is not a candidate of the layer.
func (p *Plan) Pos(i int, id primitives.ID) int32 { return p.pos[i*p.numPrims+int(id)] }

// TimePos returns layer i's latency under candidate position c.
func (p *Plan) TimePos(i, c int) float64 { return p.times[i][c] }

// PenaltyPos returns edge e's penalty under producer candidate
// position fc and consumer candidate position tc.
func (p *Plan) PenaltyPos(e, fc, tc int) float64 {
	return p.pen[e][fc*len(p.cands[p.edges[e].To])+tc]
}

// OutputPenaltyPos returns the host-return penalty of the output
// layer's candidate position c.
func (p *Plan) OutputPenaltyPos(c int) float64 { return p.outputPen[c] }

// LayerCostPos returns layer i's latency under candidate position c
// plus every incoming-edge penalty given the already-chosen producer
// positions in apos — bit-identical to lut.Table.LayerCost on the
// equivalent ID-indexed arguments (same additions, same order).
func (p *Plan) LayerCostPos(i, c int, apos []int32) float64 {
	cost := p.times[i][c]
	w := len(p.times[i])
	for _, ie := range p.incoming[i] {
		cost += ie.pen[int(apos[ie.from])*w+c]
	}
	if i == p.output {
		cost += p.outputPen[c]
	}
	return cost
}

// TotalTimePos evaluates a complete assignment expressed as candidate
// positions (apos[0] must be 0, the input pseudo-primitive):
// bit-identical to lut.Table.TotalTime on the equivalent ID-indexed
// assignment.
func (p *Plan) TotalTimePos(apos []int32) float64 {
	if len(apos) != p.numLayers {
		panic(fmt.Sprintf("searchplan: assignment has %d entries, want %d", len(apos), p.numLayers))
	}
	var total float64
	for i := 1; i < p.numLayers; i++ {
		total += p.times[i][apos[i]]
	}
	for e := range p.pen {
		ed := &p.edges[e]
		w := len(p.times[ed.To])
		total += p.pen[e][int(apos[ed.From])*w+int(apos[ed.To])]
	}
	total += p.outputPen[apos[p.output]]
	return total
}

// AssignmentIDs converts a position-indexed assignment to primitive
// IDs, appending into dst (pass dst[:0] to reuse a buffer).
func (p *Plan) AssignmentIDs(apos []int32, dst []primitives.ID) []primitives.ID {
	for i, c := range apos {
		dst = append(dst, p.cands[i][c])
	}
	return dst
}
