package searchplan_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/searchplan"
	"repro/internal/tensor"
)

// randomTable populates a built network's table with random finite
// times and penalties.
func randomTable(net *nn.Network, rng *rand.Rand) *lut.Table {
	tab := lut.New(net, primitives.ModeGPGPU)
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			tab.SetTime(i, p, 0.1+rng.Float64())
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				pen := 0.0
				if rng.Float64() < 0.5 {
					pen = rng.Float64() * 2
				}
				tab.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		tab.SetOutputPenalty(p, rng.Float64()*0.5)
	}
	return tab
}

func chainTable(rng *rand.Rand, depth int) *lut.Table {
	b := nn.NewBuilder("plan-chain", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Input()
	for i := 0; i < depth; i++ {
		n := string(rune('a' + i))
		switch i % 3 {
		case 0:
			x = b.Conv("c"+n, x, 4, 3, 1, 1)
		case 1:
			x = b.ReLU("r"+n, x)
		default:
			x = b.BatchNorm("b"+n, x)
		}
	}
	return randomTable(b.MustBuild(), rng)
}

func dagTable(rng *rand.Rand) *lut.Table {
	b := nn.NewBuilder("plan-dag", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Input()
	c1 := b.Conv("c1", x, 4, 3, 1, 1)
	r1 := b.ReLU("r1", c1)
	br1 := b.Conv("br1", r1, 4, 3, 1, 1)
	br2 := b.BatchNorm("br2", r1)
	add := b.EltwiseAdd("add", br1, br2)
	cc := b.Concat("cc", add, r1)
	c2 := b.Conv("c2", cc, 4, 1, 1, 0)
	b.ReLU("r2", c2)
	return randomTable(b.MustBuild(), rng)
}

// randomAssignment draws a uniform valid configuration as IDs and the
// equivalent candidate positions.
func randomAssignment(tab *lut.Table, rng *rand.Rand) ([]primitives.ID, []int32) {
	L := tab.NumLayers()
	ids := make([]primitives.ID, L)
	pos := make([]int32, L)
	ids[0] = tab.Candidates(0)[0]
	for i := 1; i < L; i++ {
		c := rng.Intn(len(tab.Candidates(i)))
		ids[i] = tab.Candidates(i)[c]
		pos[i] = int32(c)
	}
	return ids, pos
}

// The compiled plan must reproduce the table's evaluations bit for bit
// — same additions in the same order — on both chain and DAG shapes.
func TestPlanMatchesTableBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tables := map[string]*lut.Table{
		"chain": chainTable(rng, 7),
		"dag":   dagTable(rng),
	}
	for tname, tab := range tables {
		p := searchplan.Compile(tab)
		if p.NumLayers() != tab.NumLayers() || p.OutputLayer() != tab.OutputLayer() {
			t.Fatalf("%s: dims %d/%d, want %d/%d", tname,
				p.NumLayers(), p.OutputLayer(), tab.NumLayers(), tab.OutputLayer())
		}
		for trial := 0; trial < 200; trial++ {
			ids, pos := randomAssignment(tab, rng)
			want := tab.TotalTime(ids)
			got := p.TotalTimePos(pos)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s trial %d: TotalTime %x != %x", tname, trial,
					math.Float64bits(got), math.Float64bits(want))
			}
			for i := 1; i < tab.NumLayers(); i++ {
				wantL := tab.LayerCost(i, ids[i], ids)
				gotL := p.LayerCostPos(i, int(pos[i]), pos)
				if math.Float64bits(wantL) != math.Float64bits(gotL) {
					t.Fatalf("%s trial %d layer %d: LayerCost %x != %x", tname, trial, i,
						math.Float64bits(gotL), math.Float64bits(wantL))
				}
			}
		}
	}
}

// The position maps must be mutually consistent and agree with the
// table's candidate sets.
func TestPlanPositionMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := dagTable(rng)
	p := searchplan.Compile(tab)
	np := primitives.Count()
	for i := 0; i < p.NumLayers(); i++ {
		cands := tab.Candidates(i)
		if got := p.NumCandidates(i); got != len(cands) {
			t.Fatalf("layer %d: NumCandidates %d, want %d", i, got, len(cands))
		}
		if got := p.Candidates(i); len(got) != len(cands) {
			t.Fatalf("layer %d: Candidates len %d, want %d", i, len(got), len(cands))
		}
		inSet := map[primitives.ID]int{}
		for c, id := range cands {
			inSet[id] = c
			if got := p.CandidateAt(i, c); got != id {
				t.Fatalf("layer %d pos %d: CandidateAt %d, want %d", i, c, got, id)
			}
			if got := p.Pos(i, id); got != int32(c) {
				t.Fatalf("layer %d: Pos(%d) = %d, want %d", i, id, got, c)
			}
			if got := p.Allowed(i)[c]; got != int(id) {
				t.Fatalf("layer %d: Allowed[%d] = %d, want %d", i, c, got, id)
			}
			if wantT, gotT := tab.Time(i, id), p.TimePos(i, c); i > 0 &&
				math.Float64bits(wantT) != math.Float64bits(gotT) {
				t.Fatalf("layer %d pos %d: TimePos %v, want %v", i, c, gotT, wantT)
			}
		}
		for id := 0; id < np; id++ {
			if _, ok := inSet[primitives.ID(id)]; !ok {
				if got := p.Pos(i, primitives.ID(id)); got != -1 {
					t.Fatalf("layer %d: Pos(non-candidate %d) = %d, want -1", i, id, got)
				}
			}
		}
	}
}

// AssignmentIDs must invert the position encoding, reusing dst.
func TestPlanAssignmentIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := chainTable(rng, 5)
	p := searchplan.Compile(tab)
	ids, pos := randomAssignment(tab, rng)
	buf := make([]primitives.ID, 0, len(pos))
	got := p.AssignmentIDs(pos, buf[:0])
	if len(got) != len(ids) {
		t.Fatalf("AssignmentIDs len %d, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("layer %d: AssignmentIDs %d, want %d", i, got[i], ids[i])
		}
	}
}
