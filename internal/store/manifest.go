package store

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Manifest makes a batch run resumable: a directory holding an
// append-only journal of completed work units plus enveloped blob
// files (profiled look-up tables). A process killed at any instant
// leaves the manifest loadable — the worst a crash can do is tear the
// final journal line or a blob mid-write, and both are detected by
// checksum and simply redone on the next invocation.
//
// Journal format: one record per line, `<json>#<crc32c-hex>\n`, where
// the checksum covers the JSON bytes. Each record carries a string key
// and an opaque JSON value; replay keeps the last value per key. A
// line that is torn (SIGKILL between write and newline), truncated, or
// bit-flipped fails its own checksum and is skipped — later records
// are unaffected because appends never rewrite earlier bytes.
type Manifest struct {
	dir string

	mu      sync.Mutex
	journal *os.File
	entries map[string]json.RawMessage
	lines   int // valid records replayed or appended
	skipped int // damaged lines detected at open
}

// journalName is the journal file inside a manifest directory.
const journalName = "journal.jsonl"

// OpenManifest opens (creating if needed) the manifest at dir and
// replays its journal. A journal whose final line was torn by a crash
// is repaired in place: the torn tail is newline-terminated so the
// next append starts a fresh record, and the damaged line is counted
// in Skipped.
func OpenManifest(dir string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	m := &Manifest{dir: dir, journal: f, entries: map[string]json.RawMessage{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	tornTail := false
	for sc.Scan() {
		key, val, ok := parseJournalLine(sc.Text())
		if !ok {
			m.skipped++
			continue
		}
		m.entries[key] = val
		m.lines++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	// A crash between the record bytes and the newline leaves the file
	// without a trailing '\n'; terminate it so the next append cannot
	// concatenate onto the torn record.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, fi.Size()-1); err == nil && buf[0] != '\n' {
			tornTail = true
		}
	}
	if tornTail {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, err
		}
	}
	return m, nil
}

// parseJournalLine splits and verifies one journal record.
func parseJournalLine(line string) (key string, val json.RawMessage, ok bool) {
	i := strings.LastIndexByte(line, '#')
	if i < 0 || len(line)-i-1 != 8 {
		return "", nil, false
	}
	sum, err := hex.DecodeString(line[i+1:])
	if err != nil {
		return "", nil, false
	}
	payload := line[:i]
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if CRC([]byte(payload)) != want {
		return "", nil, false
	}
	var rec struct {
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal([]byte(payload), &rec); err != nil || rec.Key == "" {
		return "", nil, false
	}
	return rec.Key, rec.Value, true
}

// Dir returns the manifest directory.
func (m *Manifest) Dir() string { return m.dir }

// Close releases the journal handle. Records already appended remain
// durable; the manifest must not be used afterwards.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal.Close()
}

// Get returns the last value recorded under key.
func (m *Manifest) Get(key string) (json.RawMessage, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.entries[key]
	return v, ok
}

// Len returns the number of distinct keys recorded.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Lines returns the number of valid journal records seen (replayed at
// open plus appended since) — equal to Len when no key was ever
// recorded twice.
func (m *Manifest) Lines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lines
}

// Skipped returns the number of damaged journal lines detected at
// open — each is a crash artifact that cost nothing but the record it
// carried.
func (m *Manifest) Skipped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.skipped
}

// Put durably appends a record: value is JSON-marshaled, checksummed,
// written under the journal's append-only discipline and fsynced
// before Put returns — once Put succeeds, a crash cannot lose the
// record.
func (m *Manifest) Put(key string, value any) error {
	if key == "" {
		return fmt.Errorf("store: empty manifest key")
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(struct {
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value"`
	}{Key: key, Value: raw})
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%s#%08x\n", payload, CRC(payload))
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.journal.WriteString(line); err != nil {
		return err
	}
	if err := m.journal.Sync(); err != nil {
		return err
	}
	m.entries[key] = raw
	m.lines++
	return nil
}

// blobPath resolves a blob name inside the manifest, rejecting names
// that would escape the directory.
func (m *Manifest) blobPath(name string) (string, error) {
	if name == "" || filepath.IsAbs(name) {
		return "", fmt.Errorf("store: invalid blob name %q", name)
	}
	clean := filepath.Clean(name)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("store: invalid blob name %q", name)
	}
	return filepath.Join(m.dir, clean), nil
}

// WriteBlob atomically stores an enveloped payload under name inside
// the manifest directory and returns its checksum — the digest a
// journal record embeds to tie a result to the exact blob version it
// was computed from.
func (m *Manifest) WriteBlob(name string, payload []byte) (uint32, error) {
	path, err := m.blobPath(name)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	if err := Write(path, payload); err != nil {
		return 0, err
	}
	return CRC(payload), nil
}

// ReadBlob loads a blob and re-verifies its envelope checksum,
// returning the payload and its CRC. Damage wraps ErrCorrupt.
func (m *Manifest) ReadBlob(name string) ([]byte, uint32, error) {
	path, err := m.blobPath(name)
	if err != nil {
		return nil, 0, err
	}
	payload, err := Read(path)
	if err != nil {
		return nil, 0, err
	}
	return payload, CRC(payload), nil
}
