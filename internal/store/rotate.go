package store

import (
	"fmt"
	"os"
)

// Generation says which snapshot generation a rotating load used.
type Generation int

const (
	// GenCurrent is the newest snapshot.
	GenCurrent Generation = iota
	// GenPrevious is the rotated-out snapshot before the newest.
	GenPrevious
)

// String renders the generation for reports.
func (g Generation) String() string {
	if g == GenPrevious {
		return "previous"
	}
	return "current"
}

// PreviousPath returns the rotated sibling of a snapshot path.
func PreviousPath(path string) string { return path + ".prev" }

// SaveRotating atomically persists payload as the current snapshot at
// path, first rotating any existing current snapshot to path+".prev".
// Every intermediate state a crash can expose is recoverable: either
// the old current still exists, or it has moved to .prev and the new
// current is absent or complete — LoadRotating handles all three.
func SaveRotating(path string, payload []byte) error {
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, PreviousPath(path)); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	return Write(path, payload)
}

// LoadRotating loads the newest valid snapshot at path: the current
// generation, or — when the current file is missing, fails the
// envelope CRC, or is rejected by validate — the previous rotation.
// validate may be nil; otherwise it vets the decoded payload (schema
// checks) and its error counts as corruption for fallback purposes.
//
// warn is non-nil exactly when the previous generation was used, and
// says why the current one was skipped. err is non-nil only when no
// valid snapshot exists at all.
func LoadRotating(path string, validate func([]byte) error) (payload []byte, gen Generation, warn, err error) {
	tryLoad := func(p string) ([]byte, error) {
		payload, err := Read(p)
		if err != nil {
			return nil, err
		}
		if validate != nil {
			if verr := validate(payload); verr != nil {
				return nil, fmt.Errorf("%s: %w", p, verr)
			}
		}
		return payload, nil
	}
	payload, curErr := tryLoad(path)
	if curErr == nil {
		return payload, GenCurrent, nil, nil
	}
	payload, prevErr := tryLoad(PreviousPath(path))
	if prevErr == nil {
		return payload, GenPrevious, curErr, nil
	}
	return nil, GenCurrent, nil, fmt.Errorf("no valid snapshot: current: %v; previous: %v", curErr, prevErr)
}
