package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("qsdnn"), 1000)} {
		back, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("payload mangled: %d bytes in, %d out", len(payload), len(back))
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	good := Encode([]byte("hello durable world"))
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:headerSize-1],
		"bad magic":  append([]byte("NOPE"), good[4:]...),
		"truncated":  good[:len(good)-3],
		"overlong":   append(append([]byte{}, good...), 'x'),
		"length lie": func() []byte { b := append([]byte{}, good...); b[8] ^= 0xFF; return b }(),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Every single-bit flip in the payload must be caught by the CRC.
	for bit := 0; bit < 8; bit++ {
		b := append([]byte{}, good...)
		b[headerSize+5] ^= 1 << bit
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("payload bit flip %d: err = %v, want ErrCorrupt", bit, err)
		}
	}
	// An unsupported version is an error, but a distinguishable one.
	b := append([]byte{}, good...)
	b[4] = 99
	if _, err := Decode(b); err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("future version: err = %v, want non-corrupt error", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.qsd")
	payload := []byte(`{"hello":"world"}`)
	if err := Write(path, payload); err != nil {
		t.Fatal(err)
	}
	back, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatalf("payload = %q", back)
	}
	// A flipped byte on disk is detected at load.
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for i := 0; i < 3; i++ {
		if err := WriteFileAtomic(path, []byte("v"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.txt" {
		names := []string{}
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("leftover files: %v", names)
	}
}

func TestRotationFallsBackToPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.qsd")
	if err := SaveRotating(path, []byte("gen-1")); err != nil {
		t.Fatal(err)
	}
	if err := SaveRotating(path, []byte("gen-2")); err != nil {
		t.Fatal(err)
	}
	payload, gen, warn, err := LoadRotating(path, nil)
	if err != nil || warn != nil || gen != GenCurrent || string(payload) != "gen-2" {
		t.Fatalf("healthy load: %q gen=%v warn=%v err=%v", payload, gen, warn, err)
	}

	// Corrupt the current generation: load falls back to previous and
	// reports why.
	raw, _ := os.ReadFile(path)
	raw[headerSize] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, gen, warn, err = LoadRotating(path, nil)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if gen != GenPrevious || string(payload) != "gen-1" {
		t.Fatalf("fallback = %q gen=%v", payload, gen)
	}
	if warn == nil || !errors.Is(warn, ErrCorrupt) {
		t.Fatalf("warn = %v, want ErrCorrupt", warn)
	}

	// Both generations bad: a real error.
	os.Remove(PreviousPath(path))
	if _, _, _, err := LoadRotating(path, nil); err == nil {
		t.Fatal("no valid snapshot should error")
	}
}

func TestRotationValidateRejection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.qsd")
	if err := SaveRotating(path, []byte("old-good")); err != nil {
		t.Fatal(err)
	}
	if err := SaveRotating(path, []byte("new-bad")); err != nil {
		t.Fatal(err)
	}
	// Schema validation failures count as corruption for fallback.
	validate := func(p []byte) error {
		if string(p) == "new-bad" {
			return errors.New("schema says no")
		}
		return nil
	}
	payload, gen, warn, err := LoadRotating(path, validate)
	if err != nil {
		t.Fatal(err)
	}
	if gen != GenPrevious || string(payload) != "old-good" || warn == nil {
		t.Fatalf("payload=%q gen=%v warn=%v", payload, gen, warn)
	}
}

// TestRotationCrashWindow simulates the crash between the
// current→previous rotation and the new current write: only .prev
// exists, and loading recovers it.
func TestRotationCrashWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.qsd")
	if err := Write(PreviousPath(path), []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	payload, gen, _, err := LoadRotating(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != GenPrevious || string(payload) != "survivor" {
		t.Fatalf("payload=%q gen=%v", payload, gen)
	}
}
