package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type rec struct {
	Seconds float64 `json:"seconds"`
	N       int     `json:"n"`
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("a/cpu/1", rec{Seconds: 0.25, N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("a/gpu/1", rec{Seconds: 0.125, N: 2}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 2 || m2.Lines() != 2 || m2.Skipped() != 0 {
		t.Fatalf("len=%d lines=%d skipped=%d", m2.Len(), m2.Lines(), m2.Skipped())
	}
	raw, ok := m2.Get("a/cpu/1")
	if !ok {
		t.Fatal("record missing after reopen")
	}
	var r rec
	if err := json.Unmarshal(raw, &r); err != nil || r.Seconds != 0.25 || r.N != 1 {
		t.Fatalf("record = %+v, err %v", r, err)
	}
	if _, ok := m2.Get("nope"); ok {
		t.Fatal("phantom record")
	}
}

func TestManifestLastWritePerKeyWins(t *testing.T) {
	m, err := OpenManifest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 1; i <= 3; i++ {
		if err := m.Put("k", rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	raw, _ := m.Get("k")
	var r rec
	json.Unmarshal(raw, &r)
	if r.N != 3 || m.Len() != 1 || m.Lines() != 3 {
		t.Fatalf("r=%+v len=%d lines=%d", r, m.Len(), m.Lines())
	}
}

// TestManifestTornTail: a SIGKILL mid-append leaves a partial final
// line; reopening skips it, keeps every earlier record, and repairs
// the journal so later appends start clean.
func TestManifestTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Put(fmt.Sprintf("k%d", i), rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	// Tear the journal: chop the trailing newline plus a few bytes.
	path := filepath.Join(dir, journalName)
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 || m2.Skipped() != 1 {
		t.Fatalf("after tear: len=%d skipped=%d", m2.Len(), m2.Skipped())
	}
	// Appending after the repair works and survives another reopen.
	if err := m2.Put("k2", rec{N: 99}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	raw3, ok := m3.Get("k2")
	var r rec
	if !ok || json.Unmarshal(raw3, &r) != nil || r.N != 99 {
		t.Fatalf("post-repair record lost: ok=%v r=%+v", ok, r)
	}
	if m3.Len() != 3 {
		t.Fatalf("len=%d, want 3", m3.Len())
	}
}

// TestManifestBitFlippedLine: a flipped byte in the middle of the
// journal invalidates only that record.
func TestManifestBitFlippedLine(t *testing.T) {
	dir := t.TempDir()
	m, _ := OpenManifest(dir)
	for i := 0; i < 3; i++ {
		if err := m.Put(fmt.Sprintf("k%d", i), rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	path := filepath.Join(dir, journalName)
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0x20
	os.WriteFile(path, raw, 0o644)

	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Skipped() != 1 || m2.Len() != 2 {
		t.Fatalf("len=%d skipped=%d", m2.Len(), m2.Skipped())
	}
}

func TestManifestBlobs(t *testing.T) {
	m, err := OpenManifest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	payload := []byte(`{"lut":"bytes"}`)
	crc, err := m.WriteBlob("luts/lenet5-cpu.lut", payload)
	if err != nil {
		t.Fatal(err)
	}
	back, crc2, err := m.ReadBlob("luts/lenet5-cpu.lut")
	if err != nil || crc2 != crc || string(back) != string(payload) {
		t.Fatalf("blob round trip: %q crc %08x/%08x err %v", back, crc, crc2, err)
	}
	// A flipped byte in the blob is caught.
	path := filepath.Join(m.Dir(), "luts", "lenet5-cpu.lut")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0x10
	os.WriteFile(path, raw, 0o644)
	if _, _, err := m.ReadBlob("luts/lenet5-cpu.lut"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// Escaping names are rejected.
	for _, bad := range []string{"", "../evil", "/abs/path", "a/../../b"} {
		if _, err := m.WriteBlob(bad, payload); err == nil {
			t.Errorf("blob name %q accepted", bad)
		}
	}
}

// TestManifestConcurrentPut exercises the journal mutex under -race.
func TestManifestConcurrentPut(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := m.Put(fmt.Sprintf("w%d-i%d", w, i), rec{N: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m.Close()
	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 160 || m2.Skipped() != 0 {
		t.Fatalf("len=%d skipped=%d, want 160/0", m2.Len(), m2.Skipped())
	}
}
