// Package store is the crash-safe persistence layer: every byte the
// pipeline puts on disk goes through an atomic temp-file + fsync +
// rename write, and durable payloads (checkpoints, look-up tables,
// journal records) are wrapped in a versioned, CRC-checksummed
// envelope so a torn or bit-flipped file is detected at load time
// instead of silently corrupting a search.
//
// The durability primitive is rename(2): POSIX guarantees a rename
// within one directory atomically replaces the target, so a reader
// observes either the complete old file or the complete new file,
// never a prefix of the new one. fsync on the temp file before the
// rename bounds the torn-write window to a crash of the kernel itself,
// and fsync on the directory makes the rename durable. The CRC
// envelope then catches everything rename cannot: bit rot, partial
// sector writes after power loss, and manual truncation.
//
// On top of the envelope the package builds two higher-level
// facilities: a last-good/previous rotation for periodic checkpoints
// (rotate.go) and an append-only, per-record-checksummed journal plus
// blob store for resumable batch runs (manifest.go).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrCorrupt marks a file that failed envelope validation: wrong
// magic, impossible length, or a CRC mismatch. Callers distinguish it
// from I/O errors to drive the corruption-fallback policy.
var ErrCorrupt = errors.New("corrupt store file")

// envelope layout (little endian):
//
//	offset size
//	0      4    magic "QSD1"
//	4      4    format version (currently 1)
//	8      8    payload length
//	16     4    CRC32-C (Castagnoli) of the payload
//	20     ...  payload
const (
	magic          = "QSD1"
	formatVersion  = 1
	headerSize     = 20
	maxPayloadSize = 1 << 33 // 8 GiB sanity bound against corrupt length fields
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC returns the CRC32-C checksum of payload — the same checksum the
// envelope embeds, exposed so callers can compare a blob's identity
// across sessions without re-reading file contents into an envelope.
func CRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// Encode wraps payload in the versioned, checksummed envelope.
func Encode(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], formatVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[16:], CRC(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// Decode validates the envelope and returns the payload. Structural
// damage (short file, bad magic, length mismatch, CRC mismatch) wraps
// ErrCorrupt; an unsupported format version is reported distinctly so
// callers can tell "newer writer" from "damaged file".
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != formatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d)", v, formatVersion)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n > maxPayloadSize || n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d, file carries %d", ErrCorrupt, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if want, got := binary.LittleEndian.Uint32(data[16:]), CRC(payload); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return payload, nil
}

// WriteFileAtomic writes data to path so that a reader (or a crash at
// any instant) observes either the previous file or the complete new
// one, never a partial write: the data lands in a same-directory temp
// file, is fsynced, renamed over path, and the directory is fsynced.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Filesystems that cannot fsync directories report EINVAL/EISDIR;
// those are ignored — the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Write atomically writes payload wrapped in the checksummed envelope.
func Write(path string, payload []byte) error {
	return WriteFileAtomic(path, Encode(payload), 0o644)
}

// Read loads an enveloped file and returns the verified payload. A
// missing file returns the os.ReadFile error (os.IsNotExist-able);
// damage wraps ErrCorrupt.
func Read(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}
