package nn

import (
	"fmt"
	"strings"
)

// ToDot renders the network as a Graphviz digraph, optionally
// annotating each layer with a label supplied by annotate (e.g. the
// chosen primitive and its measured time). A nil annotate yields the
// bare architecture. The output is stable (layers in topological
// order), so it can be golden-tested and diffed.
func (n *Network) ToDot(annotate func(layerIdx int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", n.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	for i, l := range n.Layers {
		label := fmt.Sprintf("%s\\n%s %s", l.Name, l.Kind, l.OutShape)
		if annotate != nil {
			if extra := annotate(i); extra != "" {
				label += "\\n" + extra
			}
		}
		shape := ""
		switch l.Kind {
		case OpInput:
			shape = ", shape=ellipse"
		case OpConcat, OpEltwiseAdd:
			shape = ", shape=diamond"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", i, label, shape)
	}
	for i, l := range n.Layers {
		for _, in := range l.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
