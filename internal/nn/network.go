package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Network is an immutable DAG of layers in topological order (the
// Builder only lets a layer consume previously-declared layers, so the
// declaration order is a valid topological order). Layer 0 is always
// the OpInput layer.
type Network struct {
	// Name identifies the architecture (e.g. "mobilenet-v1").
	Name string
	// Layers holds every layer in topological order.
	Layers []*Layer
	// InputShape is the shape fed to layer 0.
	InputShape tensor.Shape

	byName    map[string]int
	consumers [][]int
}

// Len returns the number of layers including the input layer.
func (n *Network) Len() int { return len(n.Layers) }

// NumSearchable returns the number of layers the primitive-selection
// search assigns implementations to (everything except OpInput).
func (n *Network) NumSearchable() int { return len(n.Layers) - 1 }

// LayerIndex returns the index of the named layer, or -1.
func (n *Network) LayerIndex(name string) int {
	if i, ok := n.byName[name]; ok {
		return i
	}
	return -1
}

// Consumers returns the indices of layers that consume layer i's output.
func (n *Network) Consumers(i int) []int { return n.consumers[i] }

// OutputLayer returns the index of the final layer (no consumers). If
// several layers have no consumers the last one in topological order is
// returned.
func (n *Network) OutputLayer() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if len(n.consumers[i]) == 0 {
			return i
		}
	}
	return len(n.Layers) - 1
}

// IsChain reports whether the network is a pure chain: every layer has
// exactly one input (its predecessor) and at most one consumer. Chain
// networks admit an exact dynamic-programming optimum, which the test
// suite uses to certify the RL search.
func (n *Network) IsChain() bool {
	for i, l := range n.Layers {
		if i == 0 {
			continue
		}
		if len(l.Inputs) != 1 || l.Inputs[0] != i-1 {
			return false
		}
		if len(n.consumers[i]) > 1 {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: unique names, input indices in
// range and topologically ordered, shapes inferred and positive.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	if n.Layers[0].Kind != OpInput {
		return fmt.Errorf("nn: network %q layer 0 is %v, want Input", n.Name, n.Layers[0].Kind)
	}
	seen := make(map[string]bool, len(n.Layers))
	for i, l := range n.Layers {
		if seen[l.Name] {
			return fmt.Errorf("nn: duplicate layer name %q", l.Name)
		}
		seen[l.Name] = true
		if i > 0 && len(l.Inputs) == 0 {
			return fmt.Errorf("nn: layer %q has no inputs", l.Name)
		}
		for _, in := range l.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("nn: layer %q input index %d out of topological order", l.Name, in)
			}
		}
		if !l.OutShape.Valid() {
			return fmt.Errorf("nn: layer %q has invalid output shape %v", l.Name, l.OutShape)
		}
	}
	return nil
}

// Builder incrementally constructs a Network. Each method appends one
// layer consuming previously-added layers (referenced by the returned
// handles) and returns the new layer's handle. Build performs shape
// inference and validation; errors are accumulated and reported there,
// so model-zoo builders can be written without per-call error checks.
type Builder struct {
	net  *Network
	errs []error
}

// NewBuilder starts a network with the given name and input shape.
// The input layer is created implicitly as handle 0.
func NewBuilder(name string, input tensor.Shape) *Builder {
	b := &Builder{net: &Network{
		Name:       name,
		InputShape: input,
		byName:     map[string]int{},
	}}
	b.add(&Layer{Name: "input", Kind: OpInput, InShape: input, OutShape: input})
	return b
}

// Input returns the handle of the implicit input layer.
func (b *Builder) Input() int { return 0 }

func (b *Builder) add(l *Layer) int {
	if _, dup := b.net.byName[l.Name]; dup {
		b.errs = append(b.errs, fmt.Errorf("nn: duplicate layer name %q", l.Name))
	}
	idx := len(b.net.Layers)
	b.net.byName[l.Name] = idx
	b.net.Layers = append(b.net.Layers, l)
	return idx
}

func (b *Builder) checkInput(name string, in int) {
	if in < 0 || in >= len(b.net.Layers) {
		b.errs = append(b.errs, fmt.Errorf("nn: layer %q references unknown input %d", name, in))
	}
}

// Conv appends a standard convolution with a square kernel.
func (b *Builder) Conv(name string, in, outCh, kernel, stride, pad int) int {
	return b.Conv2D(name, in, ConvParams{
		OutChannels: outCh,
		KernelH:     kernel, KernelW: kernel,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	})
}

// Conv2D appends a standard convolution with explicit geometry.
func (b *Builder) Conv2D(name string, in int, p ConvParams) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpConv, Inputs: []int{in}, Conv: p})
}

// DepthwiseConv appends a depth-wise convolution with a square kernel.
// OutChannels is inferred from the input during shape inference.
func (b *Builder) DepthwiseConv(name string, in, kernel, stride, pad int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpDepthwiseConv, Inputs: []int{in}, Conv: ConvParams{
		KernelH: kernel, KernelW: kernel,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}})
}

// FullyConnected appends a dense layer with outUnits outputs.
func (b *Builder) FullyConnected(name string, in, outUnits int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpFullyConnected, Inputs: []int{in}, OutUnits: outUnits})
}

// Pool appends a pooling layer with a square window.
func (b *Builder) Pool(name string, in int, kind PoolKind, kernel, stride, pad int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpPool, Inputs: []int{in}, Pool: kind, Conv: ConvParams{
		KernelH: kernel, KernelW: kernel,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}})
}

// GlobalPool appends a pooling layer covering the full spatial extent.
func (b *Builder) GlobalPool(name string, in int, kind PoolKind) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpPool, Inputs: []int{in}, Pool: kind, GlobalPool: true})
}

// ReLU appends a rectified-linear activation.
func (b *Builder) ReLU(name string, in int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpReLU, Inputs: []int{in}})
}

// BatchNorm appends an inference-mode batch normalization.
func (b *Builder) BatchNorm(name string, in int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpBatchNorm, Inputs: []int{in}})
}

// LRN appends a local response normalization with window size.
func (b *Builder) LRN(name string, in, size int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpLRN, Inputs: []int{in}, LRNSize: size})
}

// Softmax appends the final probability normalization.
func (b *Builder) Softmax(name string, in int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpSoftmax, Inputs: []int{in}})
}

// Concat appends a channel-axis concatenation of the given inputs.
func (b *Builder) Concat(name string, ins ...int) int {
	for _, in := range ins {
		b.checkInput(name, in)
	}
	if len(ins) < 2 {
		b.errs = append(b.errs, fmt.Errorf("nn: concat %q needs >= 2 inputs", name))
	}
	return b.add(&Layer{Name: name, Kind: OpConcat, Inputs: append([]int(nil), ins...)})
}

// EltwiseAdd appends an element-wise addition of two same-shape inputs.
func (b *Builder) EltwiseAdd(name string, a, c int) int {
	b.checkInput(name, a)
	b.checkInput(name, c)
	return b.add(&Layer{Name: name, Kind: OpEltwiseAdd, Inputs: []int{a, c}})
}

// Dropout appends an inference-mode dropout (identity pass-through).
func (b *Builder) Dropout(name string, in int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpDropout, Inputs: []int{in}})
}

// Flatten appends a reshape of NCHW into N×(CHW)×1×1.
func (b *Builder) Flatten(name string, in int) int {
	b.checkInput(name, in)
	return b.add(&Layer{Name: name, Kind: OpFlatten, Inputs: []int{in}})
}

// Build runs shape inference, computes the consumer lists, validates
// the network and returns it. The Builder must not be reused after.
func (b *Builder) Build() (*Network, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	n := b.net
	if err := inferShapes(n); err != nil {
		return nil, err
	}
	n.consumers = make([][]int, len(n.Layers))
	for i, l := range n.Layers {
		for _, in := range l.Inputs {
			n.consumers[in] = append(n.consumers[in], i)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustBuild is Build but panics on error; intended for the static
// model zoo where a failure is a programming bug.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
