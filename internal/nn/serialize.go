package nn

import (
	"encoding/json"
	"fmt"

	"repro/internal/tensor"
)

// JSON (de)serialization of network architectures, so downstream users
// can define models in files instead of Go code (the role Caffe's
// prototxt plays for the paper's engine). Only the architecture is
// stored — weights are synthetic and seeded in this reproduction.

// layerJSON is the on-disk form of one layer.
type layerJSON struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Inputs []int  `json:"inputs,omitempty"`

	OutChannels int `json:"out_channels,omitempty"`
	KernelH     int `json:"kernel_h,omitempty"`
	KernelW     int `json:"kernel_w,omitempty"`
	StrideH     int `json:"stride_h,omitempty"`
	StrideW     int `json:"stride_w,omitempty"`
	PadH        int `json:"pad_h,omitempty"`
	PadW        int `json:"pad_w,omitempty"`
	Groups      int `json:"groups,omitempty"`

	Pool       string `json:"pool,omitempty"`
	GlobalPool bool   `json:"global_pool,omitempty"`
	OutUnits   int    `json:"out_units,omitempty"`
	LRNSize    int    `json:"lrn_size,omitempty"`
}

// networkJSON is the on-disk form of a network.
type networkJSON struct {
	Name  string       `json:"name"`
	Input tensor.Shape `json:"input"`
	// Layers excludes the implicit input layer; input indices refer
	// to the full layer numbering (0 = input).
	Layers []layerJSON `json:"layers"`
}

// kindNamesInverse maps layer-kind names back to OpKind.
var kindNamesInverse = func() map[string]OpKind {
	m := make(map[string]OpKind, len(opNames))
	for k, v := range opNames {
		m[v] = k
	}
	return m
}()

// MarshalJSON serializes the network's architecture.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := networkJSON{Name: n.Name, Input: n.InputShape}
	for i, l := range n.Layers {
		if i == 0 {
			continue
		}
		lj := layerJSON{
			Name:   l.Name,
			Kind:   l.Kind.String(),
			Inputs: l.Inputs,
		}
		switch l.Kind {
		case OpConv, OpDepthwiseConv:
			lj.OutChannels = l.Conv.OutChannels
			lj.KernelH, lj.KernelW = l.Conv.KernelH, l.Conv.KernelW
			lj.StrideH, lj.StrideW = l.Conv.StrideH, l.Conv.StrideW
			lj.PadH, lj.PadW = l.Conv.PadH, l.Conv.PadW
			lj.Groups = l.Conv.Groups
		case OpPool:
			lj.Pool = l.Pool.String()
			lj.GlobalPool = l.GlobalPool
			if !l.GlobalPool {
				lj.KernelH, lj.KernelW = l.Conv.KernelH, l.Conv.KernelW
				lj.StrideH, lj.StrideW = l.Conv.StrideH, l.Conv.StrideW
				lj.PadH, lj.PadW = l.Conv.PadH, l.Conv.PadW
			}
		case OpFullyConnected:
			lj.OutUnits = l.OutUnits
		case OpLRN:
			lj.LRNSize = l.LRNSize
		}
		out.Layers = append(out.Layers, lj)
	}
	return json.Marshal(out)
}

// ParseJSON reconstructs a network from its serialized architecture,
// re-running shape inference and validation.
func ParseJSON(data []byte) (*Network, error) {
	var in networkJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	b := NewBuilder(in.Name, in.Input)
	for _, lj := range in.Layers {
		kind, ok := kindNamesInverse[lj.Kind]
		if !ok {
			return nil, fmt.Errorf("nn: unknown layer kind %q in %q", lj.Kind, lj.Name)
		}
		if len(lj.Inputs) == 0 {
			return nil, fmt.Errorf("nn: layer %q has no inputs", lj.Name)
		}
		in0 := lj.Inputs[0]
		switch kind {
		case OpConv:
			b.Conv2D(lj.Name, in0, ConvParams{
				OutChannels: lj.OutChannels,
				KernelH:     lj.KernelH, KernelW: lj.KernelW,
				StrideH: lj.StrideH, StrideW: lj.StrideW,
				PadH: lj.PadH, PadW: lj.PadW,
				Groups: lj.Groups,
			})
		case OpDepthwiseConv:
			if lj.KernelH != lj.KernelW || lj.StrideH != lj.StrideW || lj.PadH != lj.PadW {
				// The builder only exposes square depth-wise; extend
				// by hand if ever needed.
				return nil, fmt.Errorf("nn: depthwise layer %q must be square", lj.Name)
			}
			b.DepthwiseConv(lj.Name, in0, lj.KernelH, lj.StrideH, lj.PadH)
		case OpPool:
			pk := MaxPool
			if lj.Pool == AvgPool.String() {
				pk = AvgPool
			} else if lj.Pool != MaxPool.String() {
				return nil, fmt.Errorf("nn: pool layer %q has unknown pool kind %q", lj.Name, lj.Pool)
			}
			if lj.GlobalPool {
				b.GlobalPool(lj.Name, in0, pk)
			} else {
				if lj.KernelH != lj.KernelW || lj.StrideH != lj.StrideW || lj.PadH != lj.PadW {
					return nil, fmt.Errorf("nn: pool layer %q must be square", lj.Name)
				}
				b.Pool(lj.Name, in0, pk, lj.KernelH, lj.StrideH, lj.PadH)
			}
		case OpFullyConnected:
			b.FullyConnected(lj.Name, in0, lj.OutUnits)
		case OpReLU:
			b.ReLU(lj.Name, in0)
		case OpBatchNorm:
			b.BatchNorm(lj.Name, in0)
		case OpLRN:
			b.LRN(lj.Name, in0, lj.LRNSize)
		case OpSoftmax:
			b.Softmax(lj.Name, in0)
		case OpConcat:
			b.Concat(lj.Name, lj.Inputs...)
		case OpEltwiseAdd:
			if len(lj.Inputs) != 2 {
				return nil, fmt.Errorf("nn: eltwise layer %q needs 2 inputs", lj.Name)
			}
			b.EltwiseAdd(lj.Name, lj.Inputs[0], lj.Inputs[1])
		case OpFlatten:
			b.Flatten(lj.Name, in0)
		case OpDropout:
			b.Dropout(lj.Name, in0)
		default:
			return nil, fmt.Errorf("nn: layer kind %v not serializable", kind)
		}
	}
	return b.Build()
}
