package nn

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func buildChain(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder("chain", tensor.Shape{N: 1, C: 3, H: 32, W: 32})
	x := b.Conv("conv1", b.Input(), 16, 3, 1, 1)
	x = b.ReLU("relu1", x)
	x = b.Pool("pool1", x, MaxPool, 2, 2, 0)
	x = b.Flatten("flat", x)
	x = b.FullyConnected("fc", x, 10)
	b.Softmax("prob", x)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestBuilderChainShapes(t *testing.T) {
	n := buildChain(t)
	want := map[string]tensor.Shape{
		"input": {N: 1, C: 3, H: 32, W: 32},
		"conv1": {N: 1, C: 16, H: 32, W: 32},
		"relu1": {N: 1, C: 16, H: 32, W: 32},
		"pool1": {N: 1, C: 16, H: 16, W: 16},
		"flat":  {N: 1, C: 4096, H: 1, W: 1},
		"fc":    {N: 1, C: 10, H: 1, W: 1},
		"prob":  {N: 1, C: 10, H: 1, W: 1},
	}
	for name, ws := range want {
		i := n.LayerIndex(name)
		if i < 0 {
			t.Fatalf("layer %q missing", name)
		}
		if got := n.Layers[i].OutShape; !got.Equal(ws) {
			t.Errorf("%s OutShape = %v, want %v", name, got, ws)
		}
	}
	if !n.IsChain() {
		t.Error("chain network should report IsChain")
	}
	if n.NumSearchable() != 6 {
		t.Errorf("NumSearchable = %d, want 6", n.NumSearchable())
	}
	if n.OutputLayer() != n.LayerIndex("prob") {
		t.Errorf("OutputLayer = %d", n.OutputLayer())
	}
}

func TestBuilderBranching(t *testing.T) {
	b := NewBuilder("branchy", tensor.Shape{N: 1, C: 8, H: 14, W: 14})
	x := b.Conv("stem", b.Input(), 16, 3, 1, 1)
	b1 := b.Conv("b1", x, 8, 1, 1, 0)
	b2 := b.Conv("b2", x, 24, 3, 1, 1)
	cat := b.Concat("cat", b1, b2)
	sc := b.Conv("proj", x, 32, 1, 1, 0)
	add := b.EltwiseAdd("add", cat, sc)
	b.ReLU("out", add)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if n.IsChain() {
		t.Error("branchy network should not report IsChain")
	}
	ci := n.LayerIndex("cat")
	if got := n.Layers[ci].OutShape.C; got != 32 {
		t.Errorf("concat channels = %d, want 32", got)
	}
	// stem feeds b1, b2 and proj.
	if got := len(n.Consumers(n.LayerIndex("stem"))); got != 3 {
		t.Errorf("stem consumers = %d, want 3", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder("dup", tensor.Shape{N: 1, C: 1, H: 4, W: 4})
		b.ReLU("a", b.Input())
		b.ReLU("a", b.Input())
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("want duplicate-name error, got %v", err)
		}
	})
	t.Run("bad conv geometry", func(t *testing.T) {
		b := NewBuilder("bad", tensor.Shape{N: 1, C: 1, H: 2, W: 2})
		b.Conv("c", b.Input(), 4, 5, 1, 0) // kernel larger than input
		if _, err := b.Build(); err == nil {
			t.Error("want geometry error")
		}
	})
	t.Run("eltwise shape mismatch", func(t *testing.T) {
		b := NewBuilder("mm", tensor.Shape{N: 1, C: 2, H: 4, W: 4})
		a := b.Conv("c1", b.Input(), 4, 1, 1, 0)
		c := b.Conv("c2", b.Input(), 8, 1, 1, 0)
		b.EltwiseAdd("add", a, c)
		if _, err := b.Build(); err == nil {
			t.Error("want eltwise mismatch error")
		}
	})
	t.Run("concat needs two inputs", func(t *testing.T) {
		b := NewBuilder("cc", tensor.Shape{N: 1, C: 2, H: 4, W: 4})
		x := b.ReLU("r", b.Input())
		b.Concat("cat", x)
		if _, err := b.Build(); err == nil {
			t.Error("want concat arity error")
		}
	})
	t.Run("fc bad units", func(t *testing.T) {
		b := NewBuilder("fc", tensor.Shape{N: 1, C: 2, H: 1, W: 1})
		b.FullyConnected("fc", b.Input(), 0)
		if _, err := b.Build(); err == nil {
			t.Error("want fc units error")
		}
	})
}

func TestDepthwiseInfersChannels(t *testing.T) {
	b := NewBuilder("dw", tensor.Shape{N: 1, C: 32, H: 10, W: 10})
	x := b.DepthwiseConv("dw1", b.Input(), 3, 1, 1)
	b.ReLU("r", x)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layers[n.LayerIndex("dw1")]
	if l.Conv.OutChannels != 32 || l.OutShape.C != 32 {
		t.Errorf("depthwise channels = %d / %d, want 32", l.Conv.OutChannels, l.OutShape.C)
	}
	if !l.IsConvLike() {
		t.Error("depthwise should be conv-like")
	}
}

func TestGlobalPool(t *testing.T) {
	b := NewBuilder("gp", tensor.Shape{N: 1, C: 7, H: 13, W: 9})
	b.GlobalPool("gpool", b.Input(), AvgPool)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := n.Layers[n.LayerIndex("gpool")].OutShape
	if !got.Equal(tensor.Shape{N: 1, C: 7, H: 1, W: 1}) {
		t.Errorf("global pool shape = %v", got)
	}
}

func TestConvOutDim(t *testing.T) {
	tests := []struct {
		in, k, s, p, want int
	}{
		{224, 7, 2, 3, 112}, // ResNet stem
		{227, 11, 4, 0, 55}, // AlexNet conv1
		{32, 5, 1, 0, 28},   // LeNet conv1
		{14, 3, 1, 1, 14},   // same padding
	}
	for _, tc := range tests {
		if got := convOutDim(tc.in, tc.k, tc.s, tc.p); got != tc.want {
			t.Errorf("convOutDim(%d,%d,%d,%d) = %d, want %d", tc.in, tc.k, tc.s, tc.p, got, tc.want)
		}
	}
}

func TestFLOPsAndWeights(t *testing.T) {
	b := NewBuilder("f", tensor.Shape{N: 1, C: 3, H: 8, W: 8})
	x := b.Conv("conv", b.Input(), 4, 3, 1, 1) // out 1x4x8x8
	x = b.Flatten("flat", x)
	b.FullyConnected("fc", x, 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	conv := n.Layers[n.LayerIndex("conv")]
	// macs = 4*8*8*3*3*3 = 6912; flops = 2*6912 + 256 bias adds.
	if got := conv.FLOPs(); got != 2*6912+256 {
		t.Errorf("conv FLOPs = %d", got)
	}
	if got := conv.WeightCount(); got != 4*3*3*3+4 {
		t.Errorf("conv weights = %d", got)
	}
	fc := n.Layers[n.LayerIndex("fc")]
	if got := fc.FLOPs(); got != 2*256*10+10 {
		t.Errorf("fc FLOPs = %d", got)
	}
	if got := fc.WeightCount(); got != 256*10+10 {
		t.Errorf("fc weights = %d", got)
	}
	if n.TotalFLOPs() != conv.FLOPs()+fc.FLOPs() {
		t.Error("TotalFLOPs mismatch")
	}
	if n.TotalWeights() != conv.WeightCount()+fc.WeightCount() {
		t.Error("TotalWeights mismatch")
	}
	if conv.Traffic() <= 0 || fc.Traffic() <= 0 {
		t.Error("traffic should be positive")
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "Conv" || OpDepthwiseConv.String() != "DepthwiseConv" {
		t.Error("op kind names wrong")
	}
	if !strings.Contains(OpKind(200).String(), "200") {
		t.Error("unknown op kind should include number")
	}
	if MaxPool.String() != "max" || AvgPool.String() != "avg" {
		t.Error("pool kind names wrong")
	}
	if len(AllOpKinds()) != 12 {
		t.Errorf("AllOpKinds = %d entries", len(AllOpKinds()))
	}
}

func TestLayerIndexMissing(t *testing.T) {
	n := buildChain(t)
	if n.LayerIndex("nope") != -1 {
		t.Error("missing layer should return -1")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	b := NewBuilder("bad", tensor.Shape{N: 1, C: 1, H: 1, W: 1})
	b.Conv("c", b.Input(), 1, 3, 1, 0)
	b.MustBuild()
}

func TestGroupedConvValidation(t *testing.T) {
	b := NewBuilder("g", tensor.Shape{N: 1, C: 6, H: 8, W: 8})
	b.Conv2D("bad", b.Input(), ConvParams{
		OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 4,
	})
	if _, err := b.Build(); err == nil {
		t.Error("groups not dividing input channels should fail")
	}

	b2 := NewBuilder("g2", tensor.Shape{N: 1, C: 8, H: 8, W: 8})
	b2.Conv2D("ok", b2.Input(), ConvParams{
		OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2,
	})
	n, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layers[n.LayerIndex("ok")]
	// Weight count: OC * (C/g) * K * K + bias = 4*4*9 + 4.
	if got := l.WeightCount(); got != 4*4*9+4 {
		t.Errorf("grouped weights = %d", got)
	}
	// FLOPs: 2 * OC*OH*OW * (C/g)*K*K + bias adds.
	if got := l.FLOPs(); got != 2*(4*8*8)*(4*9)+4*8*8 {
		t.Errorf("grouped FLOPs = %d", got)
	}
	if l.Conv.GroupCount() != 2 {
		t.Errorf("GroupCount = %d", l.Conv.GroupCount())
	}
}
