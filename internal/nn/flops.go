package nn

// This file provides the arithmetic and memory-traffic accounting the
// analytical platform cost model is built on. Counts follow the usual
// conventions: a multiply-accumulate is 2 FLOPs, and traffic is the
// float32 bytes of every tensor a layer must read plus what it writes
// (weights included), ignoring cache reuse — the cost model applies
// per-primitive efficiency factors on top.

// FLOPs returns the floating-point operation count of the layer.
func (l *Layer) FLOPs() int64 {
	in, out := l.InShape, l.OutShape
	switch l.Kind {
	case OpConv:
		// 2 * K * (C/groups) * R * S per output element, plus the
		// bias add.
		macs := int64(out.N) * int64(out.C) * int64(out.H) * int64(out.W) *
			int64(in.C/l.Conv.GroupCount()) * int64(l.Conv.KernelH) * int64(l.Conv.KernelW)
		return 2*macs + int64(out.Elems())
	case OpDepthwiseConv:
		macs := int64(out.Elems()) * int64(l.Conv.KernelH) * int64(l.Conv.KernelW)
		return 2*macs + int64(out.Elems())
	case OpFullyConnected:
		macs := int64(in.Elems()) * int64(l.OutUnits)
		return 2*macs + int64(out.Elems())
	case OpPool:
		return int64(out.Elems()) * int64(l.Conv.KernelH) * int64(l.Conv.KernelW)
	case OpReLU:
		return int64(out.Elems())
	case OpBatchNorm:
		return 2 * int64(out.Elems()) // scale + shift
	case OpLRN:
		// window accumulate + divide, approximated as 3 ops per
		// element per window entry.
		return 3 * int64(out.Elems()) * int64(l.LRNSize)
	case OpSoftmax:
		return 4 * int64(out.Elems()) // exp + sum + div (+max shift)
	case OpConcat, OpFlatten, OpInput, OpDropout:
		return 0
	case OpEltwiseAdd:
		return int64(out.Elems())
	default:
		return 0
	}
}

// WeightCount returns the number of learned parameters of the layer.
func (l *Layer) WeightCount() int64 {
	in := l.InShape
	switch l.Kind {
	case OpConv:
		return int64(l.Conv.OutChannels)*int64(in.C/l.Conv.GroupCount())*int64(l.Conv.KernelH)*int64(l.Conv.KernelW) +
			int64(l.Conv.OutChannels)
	case OpDepthwiseConv:
		return int64(in.C)*int64(l.Conv.KernelH)*int64(l.Conv.KernelW) + int64(in.C)
	case OpFullyConnected:
		return int64(in.Elems())*int64(l.OutUnits) + int64(l.OutUnits)
	case OpBatchNorm:
		return 2 * int64(in.C)
	default:
		return 0
	}
}

// Traffic returns the minimum float32 byte traffic of the layer:
// activations in, weights in, activations out. Concat and Flatten move
// their input once (copy); Input moves nothing.
func (l *Layer) Traffic() int64 {
	switch l.Kind {
	case OpInput:
		return 0
	case OpConcat:
		var b int64
		b = int64(l.OutShape.Bytes()) * 2 // read every input + write output
		return b
	case OpFlatten:
		return 2 * int64(l.OutShape.Bytes())
	case OpDropout:
		return 0 // identity in place
	case OpEltwiseAdd:
		return 3 * int64(l.OutShape.Bytes())
	default:
		t := int64(l.InShape.Bytes()) + int64(l.OutShape.Bytes()) + 4*l.WeightCount()
		return t
	}
}

// TotalFLOPs sums FLOPs over all layers of the network.
func (n *Network) TotalFLOPs() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.FLOPs()
	}
	return total
}

// TotalWeights sums the parameter counts over all layers.
func (n *Network) TotalWeights() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.WeightCount()
	}
	return total
}
