package nn

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// roundTrip serializes and re-parses a network, asserting structural
// equality.
func roundTrip(t *testing.T, n *Network) *Network {
	t.Helper()
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if back.Name != n.Name || !back.InputShape.Equal(n.InputShape) {
		t.Fatalf("metadata lost: %s %v", back.Name, back.InputShape)
	}
	if back.Len() != n.Len() {
		t.Fatalf("layer count %d != %d", back.Len(), n.Len())
	}
	for i := range n.Layers {
		a, b := n.Layers[i], back.Layers[i]
		if a.Name != b.Name || a.Kind != b.Kind || !a.OutShape.Equal(b.OutShape) {
			t.Errorf("layer %d: %v vs %v", i, a, b)
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Errorf("layer %d inputs differ", i)
			continue
		}
		for k := range a.Inputs {
			if a.Inputs[k] != b.Inputs[k] {
				t.Errorf("layer %d input %d: %d vs %d", i, k, a.Inputs[k], b.Inputs[k])
			}
		}
	}
	return back
}

func TestSerializeChain(t *testing.T) {
	b := NewBuilder("chain", tensor.Shape{N: 1, C: 3, H: 32, W: 32})
	x := b.Conv("conv1", b.Input(), 16, 3, 1, 1)
	x = b.BatchNorm("bn1", x)
	x = b.ReLU("relu1", x)
	x = b.Pool("pool1", x, MaxPool, 2, 2, 0)
	x = b.DepthwiseConv("dw", x, 3, 1, 1)
	x = b.LRN("lrn", x, 5)
	x = b.GlobalPool("gpool", x, AvgPool)
	x = b.Flatten("flat", x)
	x = b.FullyConnected("fc", x, 10)
	b.Softmax("prob", x)
	roundTrip(t, b.MustBuild())
}

func TestSerializeBranches(t *testing.T) {
	b := NewBuilder("branchy", tensor.Shape{N: 1, C: 8, H: 14, W: 14})
	x := b.Conv("stem", b.Input(), 16, 3, 1, 1)
	l := b.Conv("l", x, 8, 1, 1, 0)
	r := b.Conv("r", x, 8, 1, 1, 0)
	cat := b.Concat("cat", l, r)
	sc := b.Conv("proj", x, 16, 1, 1, 0)
	add := b.EltwiseAdd("add", cat, sc)
	b.ReLU("out", add)
	roundTrip(t, b.MustBuild())
}

func TestSerializePreservesGeometry(t *testing.T) {
	b := NewBuilder("geom", tensor.Shape{N: 1, C: 3, H: 27, W: 31})
	b.Conv2D("asym", b.Input(), ConvParams{
		OutChannels: 5,
		KernelH:     3, KernelW: 5,
		StrideH: 2, StrideW: 1,
		PadH: 1, PadW: 2,
	})
	back := roundTrip(t, b.MustBuild())
	l := back.Layers[back.LayerIndex("asym")]
	if l.Conv.KernelW != 5 || l.Conv.StrideH != 2 || l.Conv.PadW != 2 {
		t.Errorf("geometry lost: %+v", l.Conv)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      `{`,
		"unknown kind": `{"name":"x","input":{"N":1,"C":1,"H":4,"W":4},"layers":[{"name":"l","kind":"Conv9D","inputs":[0]}]}`,
		"no inputs":    `{"name":"x","input":{"N":1,"C":1,"H":4,"W":4},"layers":[{"name":"l","kind":"ReLU"}]}`,
		"bad shape":    `{"name":"x","input":{"N":1,"C":1,"H":2,"W":2},"layers":[{"name":"l","kind":"Conv","inputs":[0],"out_channels":4,"kernel_h":5,"kernel_w":5,"stride_h":1,"stride_w":1}]}`,
		"bad pool":     `{"name":"x","input":{"N":1,"C":1,"H":4,"W":4},"layers":[{"name":"l","kind":"Pool","inputs":[0],"pool":"median","kernel_h":2,"kernel_w":2,"stride_h":2,"stride_w":2}]}`,
	}
	for name, data := range cases {
		if _, err := ParseJSON([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSerializedFormReadable(t *testing.T) {
	b := NewBuilder("tiny", tensor.Shape{N: 1, C: 1, H: 4, W: 4})
	b.Conv("c", b.Input(), 2, 3, 1, 1)
	data, err := json.Marshal(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"tiny"`, `"kind":"Conv"`, `"out_channels":2`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serialized form missing %s in %s", want, data)
		}
	}
}

func TestSerializeGroups(t *testing.T) {
	b := NewBuilder("grp", tensor.Shape{N: 1, C: 8, H: 8, W: 8})
	b.Conv2D("g2", b.Input(), ConvParams{
		OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2,
	})
	back := roundTrip(t, b.MustBuild())
	if back.Layers[back.LayerIndex("g2")].Conv.Groups != 2 {
		t.Error("groups lost in serialization round trip")
	}
}

func TestToDot(t *testing.T) {
	b := NewBuilder("dotnet", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Conv("stem", b.Input(), 8, 3, 1, 1)
	l := b.ReLU("l", x)
	r := b.ReLU("r", x)
	b.Concat("cat", l, r)
	net := b.MustBuild()

	dot := net.ToDot(nil)
	for _, want := range []string{`digraph "dotnet"`, "stem", "shape=diamond", "n0 -> n1", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q", want)
		}
	}
	// Edge count: input->stem, stem->l, stem->r, l->cat, r->cat.
	if got := strings.Count(dot, "->"); got != 5 {
		t.Errorf("dot has %d edges, want 5", got)
	}
	// Annotations appear on the requested nodes.
	annotated := net.ToDot(func(i int) string {
		if net.Layers[i].Name == "stem" {
			return "cudnn-conv 1.2ms"
		}
		return ""
	})
	if !strings.Contains(annotated, "cudnn-conv 1.2ms") {
		t.Error("annotation missing")
	}
	// Stable output.
	if net.ToDot(nil) != dot {
		t.Error("dot output should be deterministic")
	}
}
