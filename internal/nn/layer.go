// Package nn defines the network representation the whole system works
// on: typed layers, a DAG of layers in topological order, shape
// inference, and the arithmetic/memory accounting that the platform
// cost model consumes. Networks are built with a Builder and are
// immutable afterwards.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// OpKind identifies a layer's operation. The set matches the layer
// types that appear in the paper's nine benchmark networks.
type OpKind uint8

const (
	// OpInput is the synthetic source layer holding the network input.
	OpInput OpKind = iota
	// OpConv is a standard 2-D convolution (with bias).
	OpConv
	// OpDepthwiseConv is a depth-wise 2-D convolution (one filter per
	// channel, as in MobileNet). ArmCL ships code specialized for it.
	OpDepthwiseConv
	// OpFullyConnected is a dense layer (GEMV at batch 1). cuDNN
	// famously provides no primitive for it, which is why QS-DNN beats
	// cuDNN on AlexNet/VGG19.
	OpFullyConnected
	// OpPool is spatial max or average pooling.
	OpPool
	// OpReLU is the rectified-linear activation.
	OpReLU
	// OpBatchNorm is inference-mode batch normalization (scale+shift).
	OpBatchNorm
	// OpLRN is local response normalization (AlexNet, GoogleNet).
	OpLRN
	// OpSoftmax is the final probability normalization.
	OpSoftmax
	// OpConcat concatenates inputs along the channel axis (Inception).
	OpConcat
	// OpEltwiseAdd adds two same-shape inputs (ResNet shortcuts).
	OpEltwiseAdd
	// OpFlatten reshapes an NCHW activation into NC (before FC stacks).
	OpFlatten
	// OpDropout is inference-mode dropout: an identity pass-through
	// (Caffe deploy descriptions keep the layer; execution is a no-op).
	OpDropout
)

var opNames = map[OpKind]string{
	OpInput:          "Input",
	OpConv:           "Conv",
	OpDepthwiseConv:  "DepthwiseConv",
	OpFullyConnected: "FullyConnected",
	OpPool:           "Pool",
	OpReLU:           "ReLU",
	OpBatchNorm:      "BatchNorm",
	OpLRN:            "LRN",
	OpSoftmax:        "Softmax",
	OpConcat:         "Concat",
	OpEltwiseAdd:     "EltwiseAdd",
	OpFlatten:        "Flatten",
	OpDropout:        "Dropout",
}

// String returns the layer-kind name.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// AllOpKinds lists every operation kind (excluding OpInput).
func AllOpKinds() []OpKind {
	return []OpKind{
		OpConv, OpDepthwiseConv, OpFullyConnected, OpPool, OpReLU,
		OpBatchNorm, OpLRN, OpSoftmax, OpConcat, OpEltwiseAdd, OpFlatten,
		OpDropout,
	}
}

// PoolKind distinguishes max from average pooling.
type PoolKind uint8

const (
	// MaxPool takes the window maximum.
	MaxPool PoolKind = iota
	// AvgPool takes the window mean.
	AvgPool
)

// String returns the pool-kind name.
func (p PoolKind) String() string {
	if p == MaxPool {
		return "max"
	}
	return "avg"
}

// ConvParams carries the geometry of convolution-like layers
// (OpConv, OpDepthwiseConv) and pooling windows.
type ConvParams struct {
	// OutChannels is the number of output feature maps. For
	// depth-wise convolution it must equal the input channel count.
	OutChannels int
	// KernelH and KernelW are the filter spatial dimensions.
	KernelH, KernelW int
	// StrideH and StrideW are the filter strides.
	StrideH, StrideW int
	// PadH and PadW are the symmetric zero paddings.
	PadH, PadW int
	// Groups splits input and output channels into independent
	// convolution groups (AlexNet's conv2/4/5 use 2). 0 means 1.
	Groups int
}

// GroupCount returns Groups, treating the zero value as 1.
func (p ConvParams) GroupCount() int {
	if p.Groups <= 0 {
		return 1
	}
	return p.Groups
}

// Layer is one node of the network DAG. Layers are created through the
// Builder and must not be mutated after Build.
type Layer struct {
	// Name uniquely identifies the layer within its network.
	Name string
	// Kind is the operation the layer performs.
	Kind OpKind
	// Inputs are the indices (into Network.Layers) of producer layers.
	Inputs []int
	// Conv holds geometry for OpConv/OpDepthwiseConv/OpPool.
	Conv ConvParams
	// Pool selects max vs average pooling for OpPool.
	Pool PoolKind
	// GlobalPool makes OpPool cover the whole spatial extent.
	GlobalPool bool
	// OutUnits is the output width of OpFullyConnected.
	OutUnits int
	// LRNSize is the normalization window of OpLRN.
	LRNSize int
	// InShape and OutShape are filled in by shape inference. For
	// multi-input layers InShape is the shape of the first input.
	InShape, OutShape tensor.Shape
}

// IsConvLike reports whether the layer performs a convolution
// (standard or depth-wise).
func (l *Layer) IsConvLike() bool {
	return l.Kind == OpConv || l.Kind == OpDepthwiseConv
}

// String summarizes the layer.
func (l *Layer) String() string {
	return fmt.Sprintf("%s(%s %v->%v)", l.Name, l.Kind, l.InShape, l.OutShape)
}
