package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// convOutDim computes one spatial output dimension of a convolution or
// pooling window: floor((in + 2*pad - kernel)/stride) + 1.
func convOutDim(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// inferShapes fills InShape/OutShape for every layer, walking the
// topological order. It returns an error for geometry that does not
// fit (e.g. kernel larger than padded input, mismatched eltwise inputs).
func inferShapes(n *Network) error {
	for i, l := range n.Layers {
		if l.Kind == OpInput {
			if !n.InputShape.Valid() {
				return fmt.Errorf("nn: invalid input shape %v", n.InputShape)
			}
			l.InShape, l.OutShape = n.InputShape, n.InputShape
			continue
		}
		in := n.Layers[l.Inputs[0]].OutShape
		l.InShape = in
		switch l.Kind {
		case OpConv:
			p := l.Conv
			if p.OutChannels <= 0 || p.KernelH <= 0 || p.KernelW <= 0 || p.StrideH <= 0 || p.StrideW <= 0 {
				return fmt.Errorf("nn: conv %q has invalid params %+v", l.Name, p)
			}
			if g := p.GroupCount(); in.C%g != 0 || p.OutChannels%g != 0 {
				return fmt.Errorf("nn: conv %q groups %d do not divide channels %d->%d",
					l.Name, g, in.C, p.OutChannels)
			}
			oh := convOutDim(in.H, p.KernelH, p.StrideH, p.PadH)
			ow := convOutDim(in.W, p.KernelW, p.StrideW, p.PadW)
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("nn: conv %q output %dx%d not positive (in %v, params %+v)", l.Name, oh, ow, in, p)
			}
			l.OutShape = tensor.Shape{N: in.N, C: p.OutChannels, H: oh, W: ow}
		case OpDepthwiseConv:
			p := l.Conv
			if p.KernelH <= 0 || p.KernelW <= 0 || p.StrideH <= 0 || p.StrideW <= 0 {
				return fmt.Errorf("nn: depthwise conv %q has invalid params %+v", l.Name, p)
			}
			oh := convOutDim(in.H, p.KernelH, p.StrideH, p.PadH)
			ow := convOutDim(in.W, p.KernelW, p.StrideW, p.PadW)
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("nn: depthwise conv %q output %dx%d not positive", l.Name, oh, ow)
			}
			l.Conv.OutChannels = in.C
			l.OutShape = tensor.Shape{N: in.N, C: in.C, H: oh, W: ow}
		case OpFullyConnected:
			if l.OutUnits <= 0 {
				return fmt.Errorf("nn: fc %q has non-positive OutUnits %d", l.Name, l.OutUnits)
			}
			l.OutShape = tensor.Shape{N: in.N, C: l.OutUnits, H: 1, W: 1}
		case OpPool:
			if l.GlobalPool {
				l.Conv.KernelH, l.Conv.KernelW = in.H, in.W
				l.Conv.StrideH, l.Conv.StrideW = in.H, in.W
				l.Conv.PadH, l.Conv.PadW = 0, 0
				l.OutShape = tensor.Shape{N: in.N, C: in.C, H: 1, W: 1}
				break
			}
			p := l.Conv
			if p.KernelH <= 0 || p.KernelW <= 0 || p.StrideH <= 0 || p.StrideW <= 0 {
				return fmt.Errorf("nn: pool %q has invalid params %+v", l.Name, p)
			}
			oh := convOutDim(in.H, p.KernelH, p.StrideH, p.PadH)
			ow := convOutDim(in.W, p.KernelW, p.StrideW, p.PadW)
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("nn: pool %q output %dx%d not positive", l.Name, oh, ow)
			}
			l.OutShape = tensor.Shape{N: in.N, C: in.C, H: oh, W: ow}
		case OpReLU, OpBatchNorm, OpSoftmax, OpDropout:
			l.OutShape = in
		case OpLRN:
			if l.LRNSize <= 0 {
				return fmt.Errorf("nn: lrn %q has non-positive size", l.Name)
			}
			l.OutShape = in
		case OpConcat:
			c := 0
			for _, idx := range l.Inputs {
				s := n.Layers[idx].OutShape
				if s.N != in.N || s.H != in.H || s.W != in.W {
					return fmt.Errorf("nn: concat %q input %q shape %v incompatible with %v",
						l.Name, n.Layers[idx].Name, s, in)
				}
				c += s.C
			}
			l.OutShape = tensor.Shape{N: in.N, C: c, H: in.H, W: in.W}
		case OpEltwiseAdd:
			if len(l.Inputs) != 2 {
				return fmt.Errorf("nn: eltwise %q needs exactly 2 inputs", l.Name)
			}
			s1 := n.Layers[l.Inputs[1]].OutShape
			if !in.Equal(s1) {
				return fmt.Errorf("nn: eltwise %q inputs %v vs %v differ", l.Name, in, s1)
			}
			l.OutShape = in
		case OpFlatten:
			l.OutShape = tensor.Shape{N: in.N, C: in.C * in.H * in.W, H: 1, W: 1}
		default:
			return fmt.Errorf("nn: layer %q has unknown kind %v", l.Name, l.Kind)
		}
		_ = i
	}
	return nil
}
