package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// ConvergenceRow summarizes one network's search behavior — the §V
// claim ("the design space search ... takes less than 10 min to
// converge") made measurable.
type ConvergenceRow struct {
	// Network is the architecture name.
	Network string
	// SpaceSize is the design-space cardinality (GPGPU mode).
	SpaceSize float64
	// Episodes is the budget used.
	Episodes int
	// ConvergedAt is the first episode within 5 % of the final best.
	ConvergedAt int
	// SearchSeconds is the wall-clock of the search phase alone.
	SearchSeconds float64
	// BestMs is the found configuration's inference time.
	BestMs float64
}

// ConvergenceTable profiles and searches each network, timing the
// search phase.
func ConvergenceTable(networks []string, pl *platform.Platform, opts Options) ([]ConvergenceRow, error) {
	opts = opts.withDefaults()
	rows := make([]ConvergenceRow, 0, len(networks))
	for _, name := range networks {
		net, err := models.Build(name)
		if err != nil {
			return nil, err
		}
		tab, err := profiledTable(net, pl, primitives.ModeGPGPU, opts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := core.Search(tab, core.Config{Episodes: opts.Episodes, Seed: opts.Seed})
		rows = append(rows, ConvergenceRow{
			Network:       name,
			SpaceSize:     primitives.SpaceSize(net, primitives.ModeGPGPU),
			Episodes:      opts.Episodes,
			ConvergedAt:   res.ConvergedAt(0.05),
			SearchSeconds: time.Since(start).Seconds(),
			BestMs:        res.Time * 1e3,
		})
	}
	return rows, nil
}

// FormatConvergence renders the table.
func FormatConvergence(rows []ConvergenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %9s %12s %12s %10s\n",
		"Network", "space", "episodes", "converged@", "search (s)", "best (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.2g %9d %12d %12.2f %10.3f\n",
			r.Network, r.SpaceSize, r.Episodes, r.ConvergedAt, r.SearchSeconds, r.BestMs)
	}
	return b.String()
}
