package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// Fig4 runs the paper's Fig. 4 experiment: a single QS-DNN search
// (default MobileNet-v1, GPGPU, 1000 episodes — 500 exploration, then
// ε −0.1 every 50) returning the per-episode learning curve.
func Fig4(network string, pl *platform.Platform, opts Options) ([]core.EpisodePoint, error) {
	opts = opts.withDefaults()
	net, err := models.Build(network)
	if err != nil {
		return nil, err
	}
	tab, err := profiledTable(net, pl, primitives.ModeGPGPU, opts)
	if err != nil {
		return nil, err
	}
	res := core.Search(tab, core.Config{Episodes: opts.Episodes, Seed: opts.Seed})
	return res.Curve, nil
}

// FormatCurveCSV renders a learning curve as CSV (episode, epsilon,
// episode time in ms, best-so-far in ms).
func FormatCurveCSV(curve []core.EpisodePoint) string {
	var b strings.Builder
	b.WriteString("episode,epsilon,time_ms,best_ms\n")
	for _, pt := range curve {
		fmt.Fprintf(&b, "%d,%.2f,%.4f,%.4f\n", pt.Episode, pt.Epsilon, pt.Time*1e3, pt.Best*1e3)
	}
	return b.String()
}

// Fig5Point is one budget point of the RL-vs-RS comparison: the mean
// and standard deviation of the best-found inference time over
// Repeats complete searches with that exact episode budget.
type Fig5Point struct {
	// Episodes is the search budget of this point.
	Episodes int
	// RLMean / RLStd summarize the RL searches (seconds).
	RLMean, RLStd float64
	// RSMean / RSStd summarize the Random Searches (seconds).
	RSMean, RSStd float64
}

// Fig5Budgets are the episode budgets swept in the reproduction.
var Fig5Budgets = []int{25, 50, 100, 150, 200, 250, 350, 500, 700, 1000}

// Fig5 runs the paper's Fig. 5 experiment on one network: for each
// budget, `repeats` complete RL searches (with the ε schedule scaled
// to the budget, as a real short search would use) and as many Random
// Searches, reporting mean and spread of the best-found time.
func Fig5(network string, pl *platform.Platform, repeats int, opts Options) ([]Fig5Point, error) {
	opts = opts.withDefaults()
	if repeats <= 0 {
		repeats = 5
	}
	net, err := models.Build(network)
	if err != nil {
		return nil, err
	}
	tab, err := profiledTable(net, pl, primitives.ModeGPGPU, opts)
	if err != nil {
		return nil, err
	}
	points := make([]Fig5Point, 0, len(Fig5Budgets))
	for _, budget := range Fig5Budgets {
		if budget > opts.Episodes {
			break
		}
		pt := Fig5Point{Episodes: budget}
		rl := make([]float64, repeats)
		rs := make([]float64, repeats)
		for r := 0; r < repeats; r++ {
			seed := opts.Seed + int64(r)*1000 + int64(budget)
			rl[r] = core.Search(tab, core.Config{Episodes: budget, Seed: seed}).Time
			rs[r] = core.RandomSearch(tab, budget, seed).Time
		}
		pt.RLMean, pt.RLStd = meanStd(rl)
		pt.RSMean, pt.RSStd = meanStd(rs)
		points = append(points, pt)
	}
	return points, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// FormatFig5CSV renders the sweep as CSV (milliseconds).
func FormatFig5CSV(points []Fig5Point) string {
	var b strings.Builder
	b.WriteString("episodes,rl_mean_ms,rl_std_ms,rs_mean_ms,rs_std_ms,rs_over_rl\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.4f,%.4f,%.2f\n",
			p.Episodes, p.RLMean*1e3, p.RLStd*1e3, p.RSMean*1e3, p.RSStd*1e3, p.RSMean/p.RLMean)
	}
	return b.String()
}

// Fig1Demo reproduces the paper's Fig. 1 story on a real profiled
// network: it compares the per-layer-greedy path (fastest primitive
// per layer, penalties ignored) against the QS-DNN path on the same
// table, returning (greedy, rl) total seconds. On heterogeneous
// tables greedy routinely walks into transfer penalties.
func Fig1Demo(network string, pl *platform.Platform, opts Options) (greedy, rl float64, err error) {
	opts = opts.withDefaults()
	net, err := models.Build(network)
	if err != nil {
		return 0, 0, err
	}
	tab, err := profiledTable(net, pl, primitives.ModeGPGPU, opts)
	if err != nil {
		return 0, 0, err
	}
	g := core.Greedy(tab)
	r := core.Search(tab, core.Config{Episodes: opts.Episodes, Seed: opts.Seed})
	return g.Time, r.Time, nil
}

// ASCIIPlot renders a crude down-sampled curve of best-so-far times —
// enough to eyeball Fig. 4 in a terminal.
func ASCIIPlot(curve []core.EpisodePoint, width, height int) string {
	if len(curve) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, pt := range curve {
		if pt.Best < minV {
			minV = pt.Best
		}
		if pt.Best > maxV {
			maxV = pt.Best
		}
	}
	if maxV == minV {
		maxV = minV + 1e-12
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		idx := c * (len(curve) - 1) / maxInt(width-1, 1)
		v := curve[idx].Best
		r := int(float64(height-1) * (maxV - v) / (maxV - minV))
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "best inference time, %.3fms (top) .. %.3fms (bottom)\n", maxV*1e3, minV*1e3)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "> episodes\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TableFor profiles one network and returns the LUT (exposed for the
// CLI's profile/search subcommands).
func TableFor(network string, pl *platform.Platform, mode primitives.Mode, opts Options) (*lut.Table, error) {
	opts = opts.withDefaults()
	net, err := models.Build(network)
	if err != nil {
		return nil, err
	}
	return profiledTable(net, pl, mode, opts)
}
