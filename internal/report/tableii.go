// Package report regenerates the paper's evaluation artifacts: Table
// II (per-library, BSL, QS-DNN and Random-Search speedups over the
// Vanilla baseline for every network, in CPU and GPGPU modes), the
// Fig. 4 learning curve, the Fig. 5 RL-vs-RS budget sweep and the
// Fig. 1 greedy-trap demonstration. The same functions back the cmd/
// tools and the bench_test.go benchmarks.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/runner"
)

// Options scales the experiments; zero values select the paper's
// settings.
type Options struct {
	// Episodes is the search budget per network (paper: 1000).
	Episodes int
	// Samples is the profiling average count (paper: 50).
	Samples int
	// Seed drives everything; fixed seed = identical tables.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Episodes == 0 {
		o.Episodes = 1000
	}
	if o.Samples == 0 {
		o.Samples = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// cpuLibs and gpuLibs are the library columns of Table II.
var cpuLibs = []primitives.Library{
	primitives.ATLAS, primitives.OpenBLAS, primitives.NNPACK,
	primitives.ArmCL, primitives.Sparse,
}
var gpuLibs = []primitives.Library{primitives.CuDNN, primitives.CuBLAS}

// Row is one network's line of Table II. All speedups are relative to
// the all-Vanilla baseline of the same mode (>1 is faster).
type Row struct {
	// Network is the architecture name.
	Network string
	// LibSpeedupCPU maps each CPU library to its whole-library
	// substitution speedup (CPU mode).
	LibSpeedupCPU map[string]float64
	// LibSpeedupGPU maps the GPU libraries to their substitution
	// speedup (GPGPU mode).
	LibSpeedupGPU map[string]float64
	// BSLCPU / BSLGPU name the best single library per mode.
	BSLCPU, BSLGPU string
	// QSDNNCPU / QSDNNGPU are QS-DNN's speedups over Vanilla.
	QSDNNCPU, QSDNNGPU float64
	// QSvsBSLCPU / QSvsBSLGPU are QS-DNN's improvements over the best
	// single library.
	QSvsBSLCPU, QSvsBSLGPU float64
	// RSGPU is Random Search's speedup over Vanilla at the same
	// episode budget (GPGPU mode).
	RSGPU float64
	// QSvsRSGPU is QS-DNN's improvement over Random Search.
	QSvsRSGPU float64
	// VanillaCPUSeconds / VanillaGPGPUSeconds are the baselines.
	VanillaCPUSeconds, VanillaGPGPUSeconds float64
	// QSDNNGPUUsesGPU reports whether the GPGPU-mode winner actually
	// touches the GPU (false for LeNet-5: pure CPU wins).
	QSDNNGPUUsesGPU bool
}

// profiledTable builds the LUT for one network and mode (the figure
// generators profile outside the batch runner).
func profiledTable(net *nn.Network, pl *platform.Platform, mode primitives.Mode, opts Options) (*lut.Table, error) {
	return profile.Run(net, profile.NewSimSource(net, pl), profile.Options{Mode: mode, Samples: opts.Samples})
}

// TableII computes the full table for the given networks,
// sequentially with the paper's single-seed protocol. It is
// TableIIParallel with one worker and one seed.
func TableII(networks []string, pl *platform.Platform, opts Options) ([]Row, error) {
	return TableIIParallel(networks, pl, opts, 1, 1)
}

// TableIIParallel computes Table II through the batch runner: every
// (network, mode) pair is one job fanned across a bounded worker pool
// with best-of-seeds searches, and each pair is profiled exactly once
// (single-flight LUT cache). Rows come back in input order; with
// workers == 1 and seeds == 1 the output is identical to the original
// sequential sweep.
func TableIIParallel(networks []string, pl *platform.Platform, opts Options, workers, seeds int) ([]Row, error) {
	opts = opts.withDefaults()
	if seeds <= 0 {
		seeds = 1
	}
	seedList := make([]int64, seeds)
	for i := range seedList {
		seedList[i] = opts.Seed + int64(i)
	}
	jobs := make([]runner.Job, 0, 2*len(networks))
	for _, name := range networks {
		for _, mode := range []primitives.Mode{primitives.ModeCPU, primitives.ModeGPGPU} {
			jobs = append(jobs, runner.Job{
				Network:  name,
				Mode:     mode,
				Seeds:    seedList,
				Episodes: opts.Episodes,
				Samples:  opts.Samples,
			})
		}
	}
	batch, err := runner.Run(jobs, runner.Options{Workers: workers, Platform: pl})
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rows := make([]Row, len(networks))
	for i := range networks {
		rows[i] = tableIIRow(&batch.Jobs[2*i], &batch.Jobs[2*i+1], opts)
	}
	return rows, nil
}

// tableIIRow assembles one row from a network's CPU-mode and
// GPGPU-mode job results.
func tableIIRow(cpu, gpu *runner.JobResult, opts Options) Row {
	row := Row{
		Network:       cpu.Job.Network,
		LibSpeedupCPU: map[string]float64{},
		LibSpeedupGPU: map[string]float64{},
	}

	// CPU mode.
	cpuTab := cpu.Table
	vanCPU := cpu.VanillaSeconds
	row.VanillaCPUSeconds = vanCPU
	bslCPU := vanCPU
	row.BSLCPU = primitives.Vanilla.String()
	for _, lib := range cpuLibs {
		t := core.SingleLibrary(cpuTab, lib).Time
		row.LibSpeedupCPU[lib.String()] = vanCPU / t
		if t < bslCPU {
			bslCPU, row.BSLCPU = t, lib.String()
		}
	}
	row.QSDNNCPU = vanCPU / cpu.Best.Time
	row.QSvsBSLCPU = bslCPU / cpu.Best.Time

	// GPGPU mode.
	gpuTab := gpu.Table
	vanGPU := gpu.VanillaSeconds
	row.VanillaGPGPUSeconds = vanGPU
	bslGPU := vanGPU
	row.BSLGPU = primitives.Vanilla.String()
	for _, lib := range append(append([]primitives.Library{}, cpuLibs...), gpuLibs...) {
		t := core.SingleLibrary(gpuTab, lib).Time
		if lib == primitives.CuDNN || lib == primitives.CuBLAS {
			row.LibSpeedupGPU[lib.String()] = vanGPU / t
		}
		if t < bslGPU {
			bslGPU, row.BSLGPU = t, lib.String()
		}
	}
	row.QSDNNGPU = vanGPU / gpu.Best.Time
	row.QSvsBSLGPU = bslGPU / gpu.Best.Time
	for _, id := range gpu.Best.Assignment {
		if primitives.ByID(id).Proc == primitives.GPU {
			row.QSDNNGPUUsesGPU = true
			break
		}
	}

	rs := core.RandomSearch(gpuTab, opts.Episodes, opts.Seed)
	row.RSGPU = vanGPU / rs.Time
	row.QSvsRSGPU = rs.Time / gpu.Best.Time
	return row
}

// FormatTableII renders rows as a fixed-width text table in the
// paper's layout.
func FormatTableII(rows []Row) string {
	var b strings.Builder
	cpuCols := make([]string, 0, len(cpuLibs))
	for _, l := range cpuLibs {
		cpuCols = append(cpuCols, l.String())
	}
	gpuCols := make([]string, 0, len(gpuLibs))
	for _, l := range gpuLibs {
		gpuCols = append(gpuCols, l.String())
	}
	fmt.Fprintf(&b, "Inference-time speedup over Vanilla (dependency-free) baseline\n\n")
	fmt.Fprintf(&b, "%-13s", "Network")
	for _, c := range cpuCols {
		fmt.Fprintf(&b, " %9s", c)
	}
	fmt.Fprintf(&b, " %9s %9s |", "QS(CPU)", "QS/BSL")
	for _, c := range gpuCols {
		fmt.Fprintf(&b, " %9s", c)
	}
	fmt.Fprintf(&b, " %9s %9s %9s %9s\n", "QS(GPU)", "QS/BSL", "RS(GPU)", "QS/RS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s", r.Network)
		for _, c := range cpuCols {
			fmt.Fprintf(&b, " %8.1fx", r.LibSpeedupCPU[c])
		}
		fmt.Fprintf(&b, " %8.1fx %8.2fx |", r.QSDNNCPU, r.QSvsBSLCPU)
		for _, c := range gpuCols {
			fmt.Fprintf(&b, " %8.1fx", r.LibSpeedupGPU[c])
		}
		gpuNote := ""
		if !r.QSDNNGPUUsesGPU {
			gpuNote = "*" // pure-CPU winner (LeNet-5 in the paper)
		}
		fmt.Fprintf(&b, " %7.1fx%s %8.2fx %8.1fx %8.2fx\n",
			r.QSDNNGPU, gpuNote, r.QSvsBSLGPU, r.RSGPU, r.QSvsRSGPU)
	}
	fmt.Fprintf(&b, "\n* GPGPU-mode winner uses no GPU primitive (transfers outweigh gains).\n")

	// Paper headline aggregates.
	var maxCPU, sumBSL float64
	n := 0.0
	for _, r := range rows {
		if r.QSDNNCPU > maxCPU {
			maxCPU = r.QSDNNCPU
		}
		sumBSL += r.QSvsBSLGPU
		n++
	}
	fmt.Fprintf(&b, "\nHeadlines: best CPU speedup vs Vanilla %.0fx (paper: 45x); "+
		"mean GPGPU speedup vs BSL %.2fx (paper: ~2x)\n", maxCPU, sumBSL/n)
	return b.String()
}

// SortedLibraries returns a row's CPU library columns sorted by name
// (stable iteration for tests and rendering).
func SortedLibraries(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
