package report

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/platform"
)

// fastOpts keeps the experiment harness quick under `go test`.
var fastOpts = Options{Episodes: 400, Samples: 3, Seed: 1}

func TestTableIIShapes(t *testing.T) {
	// The paper's qualitative claims, asserted on a representative
	// subset (full table in cmd/qsdnn-table2 and BenchmarkTableII).
	pl := platform.JetsonTX2Like()
	rows, err := TableII([]string{"lenet5", "vgg19", "mobilenet-v1"}, pl, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Network] = r
	}

	for name, r := range byName {
		// Every library beats Vanilla on CPU for every network here.
		for lib, s := range r.LibSpeedupCPU {
			if s <= 1 {
				t.Errorf("%s: %s CPU speedup %.2f <= 1", name, lib, s)
			}
		}
		// QS-DNN never loses to the best single library.
		if r.QSvsBSLCPU < 0.999 || r.QSvsBSLGPU < 0.999 {
			t.Errorf("%s: QS/BSL = %.3f (CPU) %.3f (GPU), must be >= 1", name, r.QSvsBSLCPU, r.QSvsBSLGPU)
		}
		// QS-DNN at least matches Random Search at equal budget.
		if r.QSvsRSGPU < 0.999 {
			t.Errorf("%s: QS/RS = %.3f, must be >= 1", name, r.QSvsRSGPU)
		}
		// OpenBLAS > ATLAS on CPU (paper §III-B library ordering).
		if r.LibSpeedupCPU["OpenBLAS"] <= r.LibSpeedupCPU["ATLAS"] {
			t.Errorf("%s: OpenBLAS (%.1f) should beat ATLAS (%.1f)",
				name, r.LibSpeedupCPU["OpenBLAS"], r.LibSpeedupCPU["ATLAS"])
		}
	}

	// LeNet-5: the GPGPU winner is pure CPU (paper §VI-A).
	if byName["lenet5"].QSDNNGPUUsesGPU {
		t.Error("lenet5 GPGPU winner should use no GPU primitive")
	}
	// VGG19: large 3x3 network — CPU QS-DNN approaches the 45x claim.
	if got := byName["vgg19"].QSDNNCPU; got < 35 || got > 60 {
		t.Errorf("vgg19 CPU speedup = %.1fx, want ~45x (35..60)", got)
	}
	// VGG19 GPGPU beats cuDNN alone (the missing-FC effect).
	if byName["vgg19"].QSvsBSLGPU < 1.2 {
		t.Errorf("vgg19 QS/BSL GPGPU = %.2f, want > 1.2 (cuDNN lacks FC)", byName["vgg19"].QSvsBSLGPU)
	}
	// MobileNet: >1.4x over BSL (paper §VI-A), and the big net really
	// uses the GPU.
	if byName["mobilenet-v1"].QSvsBSLGPU < 1.4 {
		t.Errorf("mobilenet QS/BSL GPGPU = %.2f, want > 1.4", byName["mobilenet-v1"].QSvsBSLGPU)
	}
	if !byName["vgg19"].QSDNNGPUUsesGPU {
		t.Error("vgg19 GPGPU winner should use the GPU")
	}
}

func TestFormatTableII(t *testing.T) {
	pl := platform.JetsonTX2Like()
	rows, err := TableII([]string{"lenet5"}, pl, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTableII(rows)
	for _, want := range []string{"lenet5", "OpenBLAS", "cuDNN", "QS/BSL", "Headlines"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestFig4Curve(t *testing.T) {
	pl := platform.JetsonTX2Like()
	curve, err := Fig4("mobilenet-v1", pl, Options{Episodes: 300, Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 300 {
		t.Fatalf("curve = %d points", len(curve))
	}
	// The learning curve's defining shape: late-search episode times
	// are far below early exploration times.
	early, late := 0.0, 0.0
	for _, pt := range curve[:50] {
		early += pt.Time
	}
	for _, pt := range curve[250:] {
		late += pt.Time
	}
	if late >= early {
		t.Errorf("late episodes (%.3g) should be faster than early exploration (%.3g)", late, early)
	}
	csv := FormatCurveCSV(curve)
	if !strings.HasPrefix(csv, "episode,epsilon,time_ms,best_ms\n") {
		t.Error("CSV header wrong")
	}
	if strings.Count(csv, "\n") != 301 {
		t.Errorf("CSV has %d lines", strings.Count(csv, "\n"))
	}
	plot := ASCIIPlot(curve, 40, 8)
	if !strings.Contains(plot, "*") || !strings.Contains(plot, "episodes") {
		t.Error("ASCII plot looks empty")
	}
}

func TestFig5Sweep(t *testing.T) {
	pl := platform.JetsonTX2Like()
	points, err := Fig5("mobilenet-v1", pl, 3, Options{Episodes: 350, Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range points {
		if pt.RLMean <= 0 || pt.RSMean <= 0 || math.IsNaN(pt.RLStd) || math.IsNaN(pt.RSStd) {
			t.Fatalf("bad point %+v", pt)
		}
		if pt.Episodes > 350 {
			t.Fatalf("budget %d beyond Episodes option", pt.Episodes)
		}
	}
	// At the largest budget RL must beat RS (Fig. 5's story).
	last := points[len(points)-1]
	if last.RLMean >= last.RSMean {
		t.Errorf("at %d episodes RL (%.4g) should beat RS (%.4g)", last.Episodes, last.RLMean, last.RSMean)
	}
	// RL's best-found time never degrades with budget (averaged over
	// repeats it should be monotone within noise; assert loosely).
	first := points[0]
	if last.RLMean > first.RLMean {
		t.Errorf("RL at %d episodes (%.4g) worse than at %d (%.4g)",
			last.Episodes, last.RLMean, first.Episodes, first.RLMean)
	}
	csv := FormatFig5CSV(points)
	if !strings.HasPrefix(csv, "episodes,") {
		t.Error("CSV header wrong")
	}
}

func TestFig1Demo(t *testing.T) {
	pl := platform.JetsonTX2Like()
	greedy, rl, err := Fig1Demo("mobilenet-v1", pl, Options{Episodes: 400, Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rl <= 0 || greedy <= 0 {
		t.Fatalf("times: greedy %v rl %v", greedy, rl)
	}
	if rl > greedy {
		t.Errorf("QS-DNN (%.4g) should not lose to greedy (%.4g)", rl, greedy)
	}
}

func TestUnknownNetworkErrors(t *testing.T) {
	pl := platform.JetsonTX2Like()
	if _, err := TableII([]string{"nope"}, pl, fastOpts); err == nil {
		t.Error("unknown network should error")
	}
	if _, err := Fig4("nope", pl, fastOpts); err == nil {
		t.Error("unknown network should error")
	}
	if _, _, err := Fig1Demo("nope", pl, fastOpts); err == nil {
		t.Error("unknown network should error")
	}
	if _, err := Fig5("nope", pl, 2, fastOpts); err == nil {
		t.Error("unknown network should error")
	}
}

func TestConvergenceTable(t *testing.T) {
	pl := platform.JetsonTX2Like()
	rows, err := ConvergenceTable([]string{"lenet5", "mobilenet-v1"}, pl,
		Options{Episodes: 400, Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SearchSeconds <= 0 || r.BestMs <= 0 || r.SpaceSize <= 1 {
			t.Errorf("bad row %+v", r)
		}
		if r.ConvergedAt < 0 || r.ConvergedAt >= r.Episodes {
			t.Errorf("%s: ConvergedAt = %d", r.Network, r.ConvergedAt)
		}
		// The §V claim: comfortably under 10 minutes.
		if r.SearchSeconds > 600 {
			t.Errorf("%s: search took %.1fs", r.Network, r.SearchSeconds)
		}
	}
	out := FormatConvergence(rows)
	if !strings.Contains(out, "lenet5") || !strings.Contains(out, "converged@") {
		t.Error("render incomplete")
	}
	if _, err := ConvergenceTable([]string{"nope"}, pl, fastOpts); err == nil {
		t.Error("unknown network should error")
	}
}

func TestSortedLibraries(t *testing.T) {
	got := SortedLibraries(map[string]float64{"Zeta": 1, "Alpha": 2, "Mid": 3})
	want := []string{"Alpha", "Mid", "Zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
}

func TestTableIIParallelMatchesSequential(t *testing.T) {
	pl := platform.JetsonTX2Like()
	nets := []string{"lenet5", "mobilenet-v1"}
	opts := Options{Episodes: 150, Samples: 3, Seed: 1}
	seq, err := TableII(nets, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := TableIIParallel(nets, pl, opts, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel rows differ from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestTableIIParallelBestOfSeeds(t *testing.T) {
	pl := platform.JetsonTX2Like()
	opts := Options{Episodes: 150, Samples: 3, Seed: 1}
	one, err := TableIIParallel([]string{"lenet5"}, pl, opts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := TableIIParallel([]string{"lenet5"}, pl, opts, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// More seeds can only match or improve the QS-DNN speedups.
	if three[0].QSDNNCPU < one[0].QSDNNCPU || three[0].QSDNNGPU < one[0].QSDNNGPU {
		t.Errorf("best-of-3 (%v/%v) worse than single seed (%v/%v)",
			three[0].QSDNNCPU, three[0].QSDNNGPU, one[0].QSDNNCPU, one[0].QSDNNGPU)
	}
}
