package engine

import (
	"context"
	"testing"

	"repro/internal/gemm"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// convAssignment assigns base to every conv layer and Vanilla
// elsewhere.
func convAssignment(e *Engine, id primitives.ID) []primitives.ID {
	a := e.VanillaAssignment()
	for i, l := range e.Net.Layers {
		if i == 0 {
			continue
		}
		if l.Kind == nn.OpConv {
			a[i] = id
		}
	}
	return a
}

func TestRunTunedTwinMatchesBase(t *testing.T) {
	primitives.EnableTunedVariants()
	base := primitives.POpenIm2col
	twinID, ok := primitives.TunedOf(base.Idx)
	if !ok {
		t.Fatal("no tuned twin for openblas-gemm-im2col")
	}
	net := testNet(t)
	e := New(net, 1, 1.0)
	in := testInput(net, 2)

	ref, err := e.Run(convAssignment(e, base.Idx), in)
	if err != nil {
		t.Fatal(err)
	}

	// With no recorded config, the twin runs the defaults and must be
	// bit-identical to the base path.
	got, err := e.Run(convAssignment(e, twinID), in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref.Output, got.Output); d != 0 {
		t.Errorf("unconfigured twin output differs from base by %g", d)
	}

	// A panel-tiled, worker-overridden config with a zero Block stays
	// bit-identical; a KC-blocked config stays within float32 tolerance.
	for i := range net.Layers {
		e.SetTuned(i, twinID, kernels.ConvTuned{Panel: 2, Workers: 2})
	}
	got, err = e.Run(convAssignment(e, twinID), in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref.Output, got.Output); d != 0 {
		t.Errorf("panel-tiled twin output differs from base by %g", d)
	}

	for i := range net.Layers {
		e.SetTuned(i, twinID, kernels.ConvTuned{Panel: 2, Block: gemm.BlockConfig{KC: 16, NC: 16}})
	}
	got, err = e.Run(convAssignment(e, twinID), in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref.Output, got.Output); d > 1e-3 {
		t.Errorf("blocked twin output differs from base by %g", d)
	}
}

func TestRunTunedTwinAllLowerings(t *testing.T) {
	primitives.EnableTunedVariants()
	net := testNet(t)
	e := New(net, 1, 1.0)
	in := testInput(net, 2)
	for _, base := range []*primitives.Primitive{primitives.POpenIm2col, primitives.POpenIm2row, primitives.POpenKn2row} {
		twinID, ok := primitives.TunedOf(base.Idx)
		if !ok {
			t.Fatalf("no twin for %s", base.Name)
		}
		ref, err := e.Run(convAssignment(e, base.Idx), in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(convAssignment(e, twinID), in)
		if err != nil {
			t.Fatalf("%s twin: %v", base.Name, err)
		}
		if d := tensor.MaxAbsDiff(ref.Output, got.Output); d != 0 {
			t.Errorf("%s twin differs from base by %g", base.Name, d)
		}
	}
}

func TestMeasureTuned(t *testing.T) {
	primitives.EnableTunedVariants()
	net := testNet(t)
	e := New(net, 1, 1.0)
	src, err := NewSource(e, testInput(net, 2))
	if err != nil {
		t.Fatal(err)
	}
	convLayer := net.LayerIndex("conv1")
	for _, cfg := range []kernels.ConvTuned{
		{},
		{Panel: 2, Workers: 2},
		{Block: gemm.BlockConfig{KC: 32, NC: 32, Kernel: "go-4x8"}},
	} {
		sec, err := src.MeasureTuned(context.Background(), convLayer, primitives.POpenIm2col, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if sec <= 0 {
			t.Errorf("cfg %+v: non-positive time %v", cfg, sec)
		}
	}
	// Cancelled context fails fast.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.MeasureTuned(ctx, convLayer, primitives.POpenIm2col, kernels.ConvTuned{}); err == nil {
		t.Error("cancelled MeasureTuned should fail")
	}
}
