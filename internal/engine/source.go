package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/primitives"
	"repro/internal/tensor"
)

// Source adapts the real engine to the profiling interface, so the
// whole QS-DNN pipeline can run on genuinely measured host-CPU
// latencies instead of the platform model. A canonical all-Vanilla
// inference is run once to cache every layer's input activations;
// Sample then times individual (layer, primitive) executions on that
// cached data, which is equivalent to the paper's whole-network
// substitution runs but avoids re-executing unrelated layers.
type Source struct {
	eng  *Engine
	acts []*tensor.Tensor
}

// NewSource runs the canonical inference and returns a profiling
// source. The input must match the network input shape.
func NewSource(e *Engine, input *tensor.Tensor) (*Source, error) {
	net := e.Net
	if !input.Shape().Equal(net.InputShape) {
		return nil, fmt.Errorf("engine: input shape %v, want %v", input.Shape(), net.InputShape)
	}
	s := &Source{eng: e, acts: make([]*tensor.Tensor, net.Len())}
	s.acts[0] = input.ToLayout(tensor.NCHW)
	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		inputs := make([]*tensor.Tensor, len(l.Inputs))
		for k, src := range l.Inputs {
			inputs[k] = s.acts[src].ToLayout(tensor.NCHW)
		}
		out, err := e.exec(i, l, primitives.PVanilla, inputs)
		if err != nil {
			return nil, err
		}
		s.acts[i] = out
	}
	return s, nil
}

// Engine returns the engine the source profiles on — the autotuner
// needs it to install tuned-variant configs after measuring.
func (s *Source) Engine() *Engine { return s.eng }

// Sample times one execution of layer i under primitive p on the
// cached activations. The sample index is accepted for interface
// compatibility; real time naturally varies between calls. Execution
// failures panic — prefer MeasureSample, which reports them as errors
// the fault-tolerant profiling layer can retry or degrade on.
func (s *Source) Sample(i int, p *primitives.Primitive, sample int) float64 {
	v, err := s.MeasureSample(context.Background(), i, p, sample)
	if err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	return v
}

// MeasureSample is the fallible twin of Sample: a primitive that
// cannot execute the layer yields an error instead of a panic, which
// lets profile.RunFallible retry it or drop it from the candidate set.
func (s *Source) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	_ = sample
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	l := s.eng.Net.Layers[i]
	inputs := make([]*tensor.Tensor, len(l.Inputs))
	for k, src := range l.Inputs {
		inputs[k] = s.acts[src].ToLayout(p.Layout)
	}
	t0 := time.Now()
	if _, err := s.eng.exec(i, l, p, inputs); err != nil {
		return 0, fmt.Errorf("profiling %s with %s: %w", l.Name, p.Name, err)
	}
	return time.Since(t0).Seconds(), nil
}

// MeasureEdgePenalty is the fallible, cancellable twin of EdgePenalty.
func (s *Source) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.EdgePenalty(producer, fp, tp), nil
}

// MeasureOutputPenalty is the fallible, cancellable twin of
// OutputPenalty.
func (s *Source) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.OutputPenalty(output, p), nil
}

// EdgePenalty times the real layout conversion between the producer's
// output under fp and the consumer's required layout under tp. Both
// primitives run on the CPU here, so no transfer cost exists.
func (s *Source) EdgePenalty(producer int, fp, tp *primitives.Primitive) float64 {
	if fp.Layout == tp.Layout {
		return 0
	}
	src := s.acts[producer].ToLayout(fp.Layout)
	t0 := time.Now()
	src.ToLayout(tp.Layout)
	return time.Since(t0).Seconds()
}

// The fallible methods satisfy profile.FallibleSource structurally;
// engine_test asserts it without adding a package dependency here.

// OutputPenalty times the conversion of the output layer's activation
// back to the host NCHW format.
func (s *Source) OutputPenalty(output int, p *primitives.Primitive) float64 {
	if p.Layout == tensor.NCHW {
		return 0
	}
	src := s.acts[output].ToLayout(p.Layout)
	t0 := time.Now()
	src.ToLayout(tensor.NCHW)
	return time.Since(t0).Seconds()
}
