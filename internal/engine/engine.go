// Package engine is the executable inference engine optimizer: it runs
// a network end-to-end with an arbitrary per-layer primitive
// assignment, using the real float32 kernels, inserting real layout
// conversions at incompatible edges, and timing every step. It plays
// the role of the Bonseyes engine of §III-A: the search never needs it
// (it consumes the LUT), but the engine grounds the reproduction — any
// primitive mix the search emits computes the same function, and the
// engine doubles as a real-measurement profiling source on the host
// CPU.
//
// Only CPU primitives are executable (there is no GPU in this
// environment — the platform package simulates one); asking the engine
// to run a GPU primitive returns an error.
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/gemm"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// layerParams holds the synthetic learned parameters of one layer.
type layerParams struct {
	w, bias      []float32
	scale, shift []float32
	csr          *kernels.CSR
}

// Engine executes one network with seeded synthetic weights.
type Engine struct {
	// Net is the network being executed.
	Net *nn.Network
	// Density is the kept fraction of conv/FC weights; the remainder
	// are exact zeros so dense and sparse kernels agree bit-for-bit
	// on which function they compute.
	Density float64

	params  []layerParams
	workers int
	// tuned maps (layer, tuned-twin) to the execution config the
	// autotuner selected; see SetTuned.
	tuned map[tunedKey]kernels.ConvTuned
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// Parallelism sets the number of goroutines the library-backed kernels
// may use (the packed GEMM, the Par conv kernels and the lowerings).
// The Vanilla reference primitive always runs sequentially. Kernel
// outputs are bit-identical at every worker count — parallelism changes
// who computes each exclusive output block, never any reduction order —
// so this is purely a throughput knob. Values < 1 are ignored; the
// default is 1 (sequential).
func Parallelism(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// New builds an engine for the network with weights drawn from the
// seed. density in (0, 1] controls weight sparsity (the paper's Sparse
// library assumes pruned models); 0 selects 0.35.
func New(net *nn.Network, seed int64, density float64, opts ...Option) *Engine {
	if density <= 0 || density > 1 {
		density = 0.35
	}
	e := &Engine{Net: net, Density: density, params: make([]layerParams, net.Len()), workers: 1}
	for _, o := range opts {
		o(e)
	}
	rng := rand.New(rand.NewSource(seed))
	for i, l := range net.Layers {
		e.params[i] = e.makeParams(l, rng)
	}
	return e
}

// Workers reports the kernel worker count the engine was built with.
func (e *Engine) Workers() int { return e.workers }

// makeParams draws the layer's weights. Magnitudes scale with
// 1/sqrt(fan-in) to keep activations bounded through deep stacks.
func (e *Engine) makeParams(l *nn.Layer, rng *rand.Rand) layerParams {
	var p layerParams
	sparseFill := func(n, fanIn int) []float32 {
		s := make([]float32, n)
		scale := float32(1 / math.Sqrt(float64(fanIn)))
		for i := range s {
			if rng.Float64() < e.Density {
				s[i] = (rng.Float32()*2 - 1) * scale
			}
		}
		return s
	}
	switch l.Kind {
	case nn.OpConv:
		fanIn := (l.InShape.C / l.Conv.GroupCount()) * l.Conv.KernelH * l.Conv.KernelW
		p.w = sparseFill(l.Conv.OutChannels*fanIn, fanIn)
		p.bias = make([]float32, l.Conv.OutChannels)
		if l.Conv.GroupCount() == 1 {
			p.csr = kernels.FromDense(l.Conv.OutChannels, fanIn, p.w, 0)
		}
	case nn.OpDepthwiseConv:
		k := l.Conv.KernelH * l.Conv.KernelW
		p.w = sparseFill(l.InShape.C*k, k)
		p.bias = make([]float32, l.InShape.C)
	case nn.OpFullyConnected:
		fanIn := l.InShape.Elems()
		p.w = sparseFill(l.OutUnits*fanIn, fanIn)
		p.bias = make([]float32, l.OutUnits)
		p.csr = kernels.FromDense(l.OutUnits, fanIn, p.w, 0)
	case nn.OpBatchNorm:
		p.scale = make([]float32, l.InShape.C)
		p.shift = make([]float32, l.InShape.C)
		for i := range p.scale {
			p.scale[i] = 0.8 + rng.Float32()*0.4
			p.shift[i] = (rng.Float32() - 0.5) * 0.1
		}
	}
	return p
}

// RunResult reports one timed inference.
type RunResult struct {
	// Output is the final layer's activation (host layout, NCHW).
	Output *tensor.Tensor
	// LayerSeconds is the kernel execution time per layer index.
	LayerSeconds []float64
	// PenaltySeconds is the total layout-conversion time charged to
	// each consumer layer index.
	PenaltySeconds []float64
	// Total is the end-to-end wall time (kernels + conversions).
	Total float64
}

// VanillaAssignment returns the all-Vanilla assignment for the
// engine's network.
func (e *Engine) VanillaAssignment() []primitives.ID {
	a := make([]primitives.ID, e.Net.Len())
	for i := range a {
		a[i] = primitives.PVanilla.Idx
	}
	return a
}

// Run executes the network on input with the given assignment (one
// primitive ID per layer; entry 0 is ignored). The input must match
// the network's input shape.
func (e *Engine) Run(assignment []primitives.ID, input *tensor.Tensor) (*RunResult, error) {
	net := e.Net
	if len(assignment) != net.Len() {
		return nil, fmt.Errorf("engine: assignment has %d entries, want %d", len(assignment), net.Len())
	}
	if !input.Shape().Equal(net.InputShape) {
		return nil, fmt.Errorf("engine: input shape %v, want %v", input.Shape(), net.InputShape)
	}
	res := &RunResult{
		LayerSeconds:   make([]float64, net.Len()),
		PenaltySeconds: make([]float64, net.Len()),
	}
	acts := make([]*tensor.Tensor, net.Len())
	acts[0] = input.ToLayout(tensor.NCHW)
	start := time.Now()
	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		p := primitives.ByID(assignment[i])
		if err := checkExecutable(l, p); err != nil {
			return nil, err
		}
		// Real layout conversions at incompatible edges, timed as the
		// consumer's penalty — exactly the compatibility layers of
		// the paper's Fig. 3.
		inputs := make([]*tensor.Tensor, len(l.Inputs))
		for k, src := range l.Inputs {
			t0 := time.Now()
			inputs[k] = acts[src].ToLayout(p.Layout)
			res.PenaltySeconds[i] += time.Since(t0).Seconds()
		}
		t0 := time.Now()
		out, err := e.exec(i, l, p, inputs)
		if err != nil {
			return nil, err
		}
		res.LayerSeconds[i] = time.Since(t0).Seconds()
		acts[i] = out
	}
	outIdx := net.OutputLayer()
	res.Output = acts[outIdx].ToLayout(tensor.NCHW)
	res.Total = time.Since(start).Seconds()
	return res, nil
}

// checkExecutable rejects primitives the host cannot run and
// primitives that cannot implement the layer.
func checkExecutable(l *nn.Layer, p *primitives.Primitive) error {
	if p.Proc == primitives.GPU {
		return fmt.Errorf("engine: %s targets the GPU; the real engine executes CPU primitives only (use the platform simulator for GPGPU studies)", p.Name)
	}
	// A tuned twin is executable wherever its base is — candidate sets
	// deliberately never contain twins (see primitives.Candidates).
	target := p
	if p.Tuned {
		target = primitives.ByID(p.Base)
	}
	for _, c := range primitives.Candidates(l, primitives.ModeCPU) {
		if c == target {
			return nil
		}
	}
	return fmt.Errorf("engine: primitive %s cannot implement layer %s (%v)", p.Name, l.Name, l.Kind)
}

// exec dispatches one layer to the kernel implementing the primitive.
// Inputs are already in p.Layout.
func (e *Engine) exec(i int, l *nn.Layer, p *primitives.Primitive, in []*tensor.Tensor) (*tensor.Tensor, error) {
	if p.Tuned {
		return e.execTuned(i, l, p, in)
	}
	x := in[0]
	par := e.params[i]
	switch l.Kind {
	case nn.OpConv:
		return e.execConv(l, p, x, par)
	case nn.OpDepthwiseConv:
		if p.Lib == primitives.Vanilla {
			return kernels.DepthwiseDirect(x, par.w, par.bias, l.Conv), nil
		}
		if p.Layout == tensor.NHWC {
			return kernels.DepthwiseNHWCPar(x, par.w, par.bias, l.Conv, e.workers), nil
		}
		return kernels.DepthwiseDirectPar(x, par.w, par.bias, l.Conv, e.workers), nil
	case nn.OpFullyConnected:
		if p.Lib == primitives.Sparse {
			return kernels.FCSparse(x, par.csr, par.bias), nil
		}
		return kernels.FCGemv(x, par.w, par.bias, l.OutUnits), nil
	case nn.OpPool:
		if l.Pool == nn.MaxPool {
			return kernels.MaxPool(x, l.Conv), nil
		}
		return kernels.AvgPool(x, l.Conv), nil
	case nn.OpReLU:
		return kernels.ReLU(x), nil
	case nn.OpBatchNorm:
		return kernels.BatchNorm(x, par.scale, par.shift), nil
	case nn.OpLRN:
		return kernels.LRN(x, l.LRNSize), nil
	case nn.OpSoftmax:
		return kernels.Softmax(x), nil
	case nn.OpConcat:
		return kernels.Concat(in), nil
	case nn.OpEltwiseAdd:
		return kernels.EltwiseAdd(in[0], in[1]), nil
	case nn.OpFlatten:
		return kernels.Flatten(x), nil
	case nn.OpDropout:
		return x, nil // inference dropout is the identity
	}
	return nil, fmt.Errorf("engine: layer %s has unsupported kind %v", l.Name, l.Kind)
}

// execConv dispatches the convolution variants. NCHW-native fast
// kernels used under an NHWC-declared primitive convert internally;
// that cost is the primitive's own business and lands in its layer
// time.
func (e *Engine) execConv(l *nn.Layer, p *primitives.Primitive, x *tensor.Tensor, par layerParams) (*tensor.Tensor, error) {
	// Tuned libraries get the packed parallel GEMM (the tuned-BLAS
	// stand-in); ATLAS and Vanilla keep the naive one — their role in
	// the paper is the slow reference BLAS.
	w := e.workers
	mul := kernels.Gemm(func(m, n, k int, a, b, c []float32) {
		gemm.Parallel(m, n, k, a, b, c, w)
	})
	if p.Lib == primitives.ATLAS || p.Lib == primitives.Vanilla {
		mul = gemm.Naive
	}
	if kernels.IsGrouped(l.Conv) {
		switch p.Lib {
		case primitives.Vanilla:
			return kernels.ConvGroupedDirect(x, par.w, par.bias, l.Conv), nil
		case primitives.Sparse:
			// Sparse weights for grouped convs run the direct grouped
			// path (the zeros contribute nothing either way).
			return kernels.ConvGroupedDirect(x, par.w, par.bias, l.Conv), nil
		default:
			return kernels.ConvGroupedIm2colPar(x, par.w, par.bias, l.Conv, mul, w), nil
		}
	}
	switch {
	case p.Lib == primitives.Vanilla:
		return kernels.ConvDirect(x, par.w, par.bias, l.Conv), nil
	case p.Lib == primitives.Sparse:
		return kernels.ConvSparse(x, par.csr, par.bias, l.Conv), nil
	case p.Algo == primitives.WinogradAlgo:
		nchw := x.ToLayout(tensor.NCHW)
		out := kernels.ConvWinogradPar(nchw, par.w, par.bias, l.Conv, w)
		return out.ToLayout(p.Layout), nil
	case p.Algo == primitives.FFTAlgo:
		nchw := x.ToLayout(tensor.NCHW)
		out := kernels.ConvFFTPar(nchw, par.w, par.bias, l.Conv, w)
		return out.ToLayout(p.Layout), nil
	case p.Layout == tensor.NHWC: // nnpack-gemm / armcl-gemm
		return kernels.ConvDirectNHWCPar(x, par.w, par.bias, l.Conv, w), nil
	case p.Lower == primitives.Im2col:
		return kernels.ConvIm2colPar(x, par.w, par.bias, l.Conv, mul, w), nil
	case p.Lower == primitives.Im2row:
		return kernels.ConvIm2rowPar(x, par.w, par.bias, l.Conv, mul, w), nil
	case p.Lower == primitives.Kn2row:
		return kernels.ConvKn2rowPar(x, par.w, par.bias, l.Conv, mul, w), nil
	}
	return nil, fmt.Errorf("engine: no conv kernel for %s", p.Name)
}
