package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gemm"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// tunedKey addresses one tuned-variant assignment: configs are
// per-(layer, twin) because the autotuner tunes each layer's shape
// independently.
type tunedKey struct {
	layer int
	id    primitives.ID
}

// SetTuned records the execution config a tuned twin uses at the given
// layer. Run consults these when an assignment selects a tuned twin
// (see primitives.EnableTunedVariants); a twin with no recorded config
// executes with the defaults, so a partially-applied tuning cache is
// only ever a missed optimization, never an error. SetTuned may only be
// called while the engine is being configured, not concurrently with
// Run — the same single-writer discipline as lut.Table population.
func (e *Engine) SetTuned(i int, id primitives.ID, cfg kernels.ConvTuned) {
	if e.tuned == nil {
		e.tuned = map[tunedKey]kernels.ConvTuned{}
	}
	e.tuned[tunedKey{i, id}] = cfg
}

// TunedConfig reports the config recorded for a (layer, twin) pair.
func (e *Engine) TunedConfig(i int, id primitives.ID) (kernels.ConvTuned, bool) {
	cfg, ok := e.tuned[tunedKey{i, id}]
	return cfg, ok
}

// execTuned executes layer i under a tuned twin using its recorded
// config (defaults when none was recorded).
func (e *Engine) execTuned(i int, l *nn.Layer, p *primitives.Primitive, in []*tensor.Tensor) (*tensor.Tensor, error) {
	cfg := e.tuned[tunedKey{i, p.Idx}]
	return e.execTunedCfg(i, l, primitives.ByID(p.Base), in, cfg)
}

// execTunedCfg executes layer i as the base primitive would, but
// through the parameterized kernel paths under an explicit config. It
// is the race-free entry point the tuner measures through: nothing
// here reads or writes the engine's tuned map.
func (e *Engine) execTunedCfg(i int, l *nn.Layer, base *primitives.Primitive, in []*tensor.Tensor, cfg kernels.ConvTuned) (*tensor.Tensor, error) {
	if base.Tuned {
		return nil, fmt.Errorf("engine: tuned base %s is itself tuned", base.Name)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = e.workers
	}
	x := in[0]
	par := e.params[i]
	switch l.Kind {
	case nn.OpConv:
		if kernels.IsGrouped(l.Conv) {
			// Grouped convs have no panel-tiled lowering; the tunables
			// are the GEMM config and the fan-out.
			w := cfg.Workers
			blk := cfg.Block
			mul := kernels.Gemm(func(m, n, k int, a, b, c []float32) {
				gemm.ParallelCfg(m, n, k, a, b, c, w, blk)
			})
			return kernels.ConvGroupedIm2colPar(x, par.w, par.bias, l.Conv, mul, w), nil
		}
		switch base.Lower {
		case primitives.Im2col:
			return kernels.ConvIm2colTuned(x, par.w, par.bias, l.Conv, cfg), nil
		case primitives.Im2row:
			return kernels.ConvIm2rowTuned(x, par.w, par.bias, l.Conv, cfg), nil
		case primitives.Kn2row:
			return kernels.ConvKn2rowTuned(x, par.w, par.bias, l.Conv, cfg), nil
		}
		return nil, fmt.Errorf("engine: no tuned conv path for %s", base.Name)
	case nn.OpDepthwiseConv:
		return kernels.DepthwiseDirectPar(x, par.w, par.bias, l.Conv, cfg.Workers), nil
	}
	// Any other layer kind a tuned base can serve runs its default path.
	return e.exec(i, l, base, in)
}

// MeasureTuned times one execution of layer i as base would run it,
// under an explicit tuned config, on the cached canonical activations.
// Unlike MeasureSample with a tuned twin it never touches the engine's
// tuned-config map, so concurrent measurement fan-outs with different
// configs are race-free.
func (s *Source) MeasureTuned(ctx context.Context, i int, base *primitives.Primitive, cfg kernels.ConvTuned) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	l := s.eng.Net.Layers[i]
	inputs := make([]*tensor.Tensor, len(l.Inputs))
	for k, src := range l.Inputs {
		inputs[k] = s.acts[src].ToLayout(base.Layout)
	}
	t0 := time.Now()
	if _, err := s.eng.execTunedCfg(i, l, base, inputs, cfg); err != nil {
		return 0, fmt.Errorf("tuning %s with %s: %w", l.Name, base.Name, err)
	}
	return time.Since(t0).Seconds(), nil
}
