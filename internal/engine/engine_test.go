package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/tensor"
)

// testNet is small enough to run every primitive quickly but contains
// a conv (3x3 s1, so winograd applies), depthwise, pool, bn, fc and
// softmax.
func testNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("engine-test", tensor.Shape{N: 1, C: 3, H: 16, W: 16})
	x := b.Conv("conv1", b.Input(), 8, 3, 1, 1)
	x = b.BatchNorm("bn1", x)
	x = b.ReLU("relu1", x)
	x = b.DepthwiseConv("dw", x, 3, 1, 1)
	x = b.Pool("pool", x, nn.MaxPool, 2, 2, 0)
	x = b.Flatten("flat", x)
	x = b.FullyConnected("fc", x, 10)
	b.Softmax("prob", x)
	return b.MustBuild()
}

func testInput(net *nn.Network, seed int64) *tensor.Tensor {
	in := tensor.New(net.InputShape, tensor.NCHW)
	in.FillRandom(rand.New(rand.NewSource(seed)), 1)
	return in
}

func TestVanillaRun(t *testing.T) {
	net := testNet(t)
	e := New(net, 1, 1.0)
	res, err := e.Run(e.VanillaAssignment(), testInput(net, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Shape().Equal(tensor.Shape{N: 1, C: 10, H: 1, W: 1}) {
		t.Fatalf("output shape %v", res.Output.Shape())
	}
	// Softmax output sums to 1.
	var sum float32
	for _, v := range res.Output.Data() {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("softmax sum = %v", sum)
	}
	if res.Total <= 0 {
		t.Error("total time should be positive")
	}
}

// The defining property of the whole system: every primitive
// assignment computes the same function. Random assignments must match
// the vanilla reference within float tolerance.
func TestAssignmentInvariance(t *testing.T) {
	net := testNet(t)
	e := New(net, 3, 0.5)
	in := testInput(net, 4)
	ref, err := e.Run(e.VanillaAssignment(), in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		assignment := make([]primitives.ID, net.Len())
		assignment[0] = primitives.PVanilla.Idx
		for i := 1; i < net.Len(); i++ {
			cands := primitives.Candidates(net.Layers[i], primitives.ModeCPU)
			assignment[i] = cands[rng.Intn(len(cands))].Idx
		}
		res, err := e.Run(assignment, in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := tensor.MaxAbsDiff(ref.Output, res.Output); d > 1e-3 {
			t.Errorf("trial %d: output differs from vanilla by %g", trial, d)
		}
	}
}

func TestRunRejectsGPUPrimitive(t *testing.T) {
	net := testNet(t)
	e := New(net, 1, 1.0)
	a := e.VanillaAssignment()
	a[net.LayerIndex("conv1")] = primitives.PCuDNNConv.Idx
	_, err := e.Run(a, testInput(net, 1))
	if err == nil || !strings.Contains(err.Error(), "GPU") {
		t.Errorf("GPU primitive should be rejected, got %v", err)
	}
}

func TestRunRejectsIncapablePrimitive(t *testing.T) {
	net := testNet(t)
	e := New(net, 1, 1.0)
	a := e.VanillaAssignment()
	a[net.LayerIndex("fc")] = primitives.PArmCLWinograd.Idx
	if _, err := e.Run(a, testInput(net, 1)); err == nil {
		t.Error("winograd on an FC layer should be rejected")
	}
}

func TestRunRejectsBadShapes(t *testing.T) {
	net := testNet(t)
	e := New(net, 1, 1.0)
	bad := tensor.New(tensor.Shape{N: 1, C: 3, H: 8, W: 8}, tensor.NCHW)
	if _, err := e.Run(e.VanillaAssignment(), bad); err == nil {
		t.Error("wrong input shape should be rejected")
	}
	if _, err := e.Run(make([]primitives.ID, 2), testInput(net, 1)); err == nil {
		t.Error("wrong assignment length should be rejected")
	}
}

func TestPenaltyChargedForLayoutMix(t *testing.T) {
	net := testNet(t)
	e := New(net, 1, 1.0)
	a := e.VanillaAssignment()
	// NHWC depthwise after an NCHW producer forces a real conversion.
	a[net.LayerIndex("dw")] = primitives.PArmCLDepth.Idx
	res, err := e.Run(a, testInput(net, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.PenaltySeconds[net.LayerIndex("dw")] <= 0 {
		t.Error("layout mix should be charged a conversion penalty")
	}
}

func TestSparseDensityAffectsCSR(t *testing.T) {
	net := testNet(t)
	dense := New(net, 1, 1.0)
	sparse := New(net, 1, 0.2)
	ci := net.LayerIndex("conv1")
	if dense.params[ci].csr.Density() <= sparse.params[ci].csr.Density() {
		t.Errorf("density 1.0 CSR (%v) should be denser than 0.2 CSR (%v)",
			dense.params[ci].csr.Density(), sparse.params[ci].csr.Density())
	}
}

func TestWeightsSeedDeterminism(t *testing.T) {
	net := testNet(t)
	in := testInput(net, 5)
	r1, err := New(net, 77, 1.0).Run(e0(net, 77).VanillaAssignment(), in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(net, 77, 1.0).Run(e0(net, 77).VanillaAssignment(), in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(r1.Output, r2.Output); d != 0 {
		t.Errorf("same seed should give identical outputs, diff %g", d)
	}
	r3, err := New(net, 78, 1.0).Run(e0(net, 78).VanillaAssignment(), in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(r1.Output, r3.Output); d == 0 {
		t.Error("different seeds should give different outputs")
	}
}

func e0(net *nn.Network, seed int64) *Engine { return New(net, seed, 1.0) }

// The engine source must satisfy the error-aware profiling contract so
// AsFallible preserves its genuine error reporting instead of wrapping
// the panicking legacy methods.
var _ profile.FallibleSource = (*Source)(nil)

// End-to-end on real measurements: profile with the engine source,
// search, and execute the found assignment — it must be valid and
// compute the reference function.
func TestProfileSearchExecutePipeline(t *testing.T) {
	net := testNet(t)
	e := New(net, 11, 0.5)
	in := testInput(net, 12)
	src, err := NewSource(e, in)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := profile.Run(net, src, profile.Options{Mode: primitives.ModeCPU, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Search(tab, core.Config{Episodes: 300, Seed: 1})
	run, err := e.Run(res.Assignment, in)
	if err != nil {
		t.Fatalf("executing searched assignment: %v", err)
	}
	ref, err := e.Run(e.VanillaAssignment(), in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref.Output, run.Output); d > 1e-3 {
		t.Errorf("searched assignment output differs by %g", d)
	}
}

func TestSourcePenalties(t *testing.T) {
	net := testNet(t)
	e := New(net, 11, 1.0)
	src, err := NewSource(e, testInput(net, 12))
	if err != nil {
		t.Fatal(err)
	}
	ci := net.LayerIndex("conv1")
	if got := src.EdgePenalty(ci, primitives.PVanilla, primitives.PAtlasIm2col); got != 0 {
		t.Errorf("same-layout penalty = %v, want 0", got)
	}
	if got := src.EdgePenalty(ci, primitives.PVanilla, primitives.PArmCLGemm); got <= 0 {
		t.Errorf("layout-change penalty = %v, want > 0", got)
	}
	out := net.OutputLayer()
	if got := src.OutputPenalty(out, primitives.PVanilla); got != 0 {
		t.Errorf("NCHW output penalty = %v, want 0", got)
	}
}

// Grouped convolutions must preserve the engine's defining property:
// every primitive choice computes the same function.
func TestGroupedConvAssignmentInvariance(t *testing.T) {
	b := nn.NewBuilder("grouped-net", tensor.Shape{N: 1, C: 6, H: 12, W: 12})
	x := b.Conv2D("gconv", b.Input(), nn.ConvParams{
		OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2,
	})
	x = b.ReLU("relu", x)
	x = b.Flatten("flat", x)
	b.FullyConnected("fc", x, 5)
	net := b.MustBuild()
	e := New(net, 31, 1.0)
	in := testInput(net, 32)
	ref, err := e.Run(e.VanillaAssignment(), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, prim := range []primitives.ID{
		primitives.PAtlasIm2col.Idx, primitives.POpenIm2col.Idx, primitives.PSparseConv.Idx,
	} {
		a := e.VanillaAssignment()
		a[net.LayerIndex("gconv")] = prim
		got, err := e.Run(a, in)
		if err != nil {
			t.Fatalf("%v: %v", primitives.ByID(prim).Name, err)
		}
		if d := tensor.MaxAbsDiff(ref.Output, got.Output); d > 1e-3 {
			t.Errorf("%v: grouped conv output differs by %g", primitives.ByID(prim).Name, d)
		}
	}
}

// TestParallelismBitIdenticalOutputs pins the engine-level contract:
// for any primitive assignment, an engine built with Parallelism(n)
// produces output bit-identical to the sequential engine — parallel
// kernels repartition exclusive output blocks, never reduction orders.
func TestParallelismBitIdenticalOutputs(t *testing.T) {
	net := testNet(t)
	in := testInput(net, 5)
	seq := New(net, 3, 0.5)
	rng := rand.New(rand.NewSource(10))
	assignments := [][]primitives.ID{seq.VanillaAssignment()}
	for trial := 0; trial < 6; trial++ {
		a := make([]primitives.ID, net.Len())
		a[0] = primitives.PVanilla.Idx
		for i := 1; i < net.Len(); i++ {
			cands := primitives.Candidates(net.Layers[i], primitives.ModeCPU)
			a[i] = cands[rng.Intn(len(cands))].Idx
		}
		assignments = append(assignments, a)
	}
	for _, workers := range []int{2, 4, 8} {
		par := New(net, 3, 0.5, Parallelism(workers))
		if par.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", par.Workers(), workers)
		}
		for ai, a := range assignments {
			want, err := seq.Run(a, in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Run(a, in)
			if err != nil {
				t.Fatal(err)
			}
			wd, gd := want.Output.Data(), got.Output.Data()
			for i := range wd {
				if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
					t.Fatalf("assignment %d workers=%d: output differs at %d: %v vs %v",
						ai, workers, i, wd[i], gd[i])
				}
			}
		}
	}
}
