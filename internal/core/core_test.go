package core

import (
	"math"
	"testing"

	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/qlearn"
	"repro/internal/tensor"
)

// profiled builds a simulated LUT for a network and mode.
func profiled(t *testing.T, net *nn.Network, mode primitives.Mode) *lut.Table {
	t.Helper()
	pl := platform.JetsonTX2Like()
	tab, err := profile.Run(net, profile.NewSimSource(net, pl), profile.Options{Mode: mode, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// smallChain is a 7-searchable-layer chain with convs, pooling and FC.
func smallChain(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("small-chain", tensor.Shape{N: 1, C: 3, H: 32, W: 32})
	x := b.Conv("conv1", b.Input(), 16, 3, 1, 1)
	x = b.ReLU("relu1", x)
	x = b.Pool("pool1", x, nn.MaxPool, 2, 2, 0)
	x = b.Conv("conv2", x, 32, 3, 1, 1)
	x = b.Flatten("flat", x)
	x = b.FullyConnected("fc", x, 64)
	b.Softmax("prob", x)
	return b.MustBuild()
}

func TestSearchFindsChainOptimum(t *testing.T) {
	net := smallChain(t)
	for _, mode := range []primitives.Mode{primitives.ModeCPU, primitives.ModeGPGPU} {
		tab := profiled(t, net, mode)
		opt, err := Optimal(tab)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res := Search(tab, Config{Episodes: 1000, Seed: 7})
		if res.Time > opt.Time*1.001 {
			t.Errorf("%v: QS-DNN %.4gms > optimum %.4gms", mode, res.Time*1e3, opt.Time*1e3)
		}
		if got := tab.TotalTime(res.Assignment); math.Abs(got-res.Time) > 1e-12 {
			t.Errorf("%v: reported time %v != recomputed %v", mode, res.Time, got)
		}
	}
}

func TestExhaustiveAgreesWithOptimal(t *testing.T) {
	b := nn.NewBuilder("tiny", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Conv("conv", b.Input(), 8, 3, 1, 1)
	x = b.ReLU("relu", x)
	x = b.Flatten("flat", x)
	b.FullyConnected("fc", x, 10)
	net := b.MustBuild()
	tab := profiled(t, net, primitives.ModeGPGPU)
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := Exhaustive(tab, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.Time-exh.Time) > 1e-12 {
		t.Errorf("optimal %.6g != exhaustive %.6g", opt.Time, exh.Time)
	}
	if exh.Episodes <= 0 {
		t.Error("exhaustive should report the enumeration count")
	}
}

func TestExhaustiveRefusesHugeSpace(t *testing.T) {
	tab := profiled(t, models.MustBuild("lenet5"), primitives.ModeGPGPU)
	if _, err := Exhaustive(tab, 100); err == nil {
		t.Error("exhaustive should refuse a space above the cap")
	}
}

func TestOptimalRejectsBranches(t *testing.T) {
	b := nn.NewBuilder("branch", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Conv("stem", b.Input(), 8, 3, 1, 1)
	l := b.ReLU("l", x)
	r := b.ReLU("r", x)
	b.Concat("cat", l, r)
	net := b.MustBuild()
	tab := profiled(t, net, primitives.ModeCPU)
	if _, err := Optimal(tab); err == nil {
		t.Error("Optimal should reject non-chain networks")
	}
}

// Fig. 1: a hand-built three-layer trap where the per-layer-greedy
// choice walks into a conversion penalty and the RL search avoids it.
func TestGreedyTrapFig1(t *testing.T) {
	b := nn.NewBuilder("fig1", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Conv("l1", b.Input(), 8, 3, 1, 1)
	x = b.Conv("l2", x, 8, 3, 1, 1)
	b.Conv("l3", x, 8, 3, 1, 1)
	net := b.MustBuild()
	tab := lut.New(net, primitives.ModeCPU)

	fast := primitives.PArmCLGemm.Idx // NHWC
	slow := primitives.PVanilla.Idx   // NCHW
	for i := 1; i <= 3; i++ {
		for _, p := range tab.Candidates(i) {
			tab.SetTime(i, p, 10) // every other primitive: terrible
		}
		tab.SetTime(i, slow, 2)
	}
	// Layer 1: the NHWC primitive is the fastest *intermediate*
	// implementation, but both neighbours punish the layout change.
	tab.SetTime(1, fast, 1)
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				pen := 0.0
				if primitives.ByID(fp).Layout != primitives.ByID(tp).Layout {
					pen = 3.0
				}
				tab.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	for _, p := range tab.Candidates(3) {
		tab.SetOutputPenalty(p, 0)
	}

	greedy := Greedy(tab)
	if greedy.Assignment[1] != fast {
		t.Fatalf("greedy should fall for the fast layer-1 primitive, took %v",
			primitives.ByID(greedy.Assignment[1]).Name)
	}
	// Greedy: 1 + 2 + 2 + two 3.0 penalties (input edge NCHW->NHWC and
	// l1->l2 NHWC->NCHW) = 11; optimal all-slow = 6.
	if math.Abs(greedy.Time-11) > 1e-9 {
		t.Errorf("greedy time = %v, want 11", greedy.Time)
	}
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.Time-6) > 1e-9 {
		t.Errorf("optimal time = %v, want 6", opt.Time)
	}
	res := Search(tab, Config{Episodes: 400, Seed: 3})
	if math.Abs(res.Time-opt.Time) > 1e-9 {
		t.Errorf("QS-DNN time = %v, want optimum %v", res.Time, opt.Time)
	}
	if res.Assignment[1] == fast {
		t.Error("QS-DNN should avoid the local minimum at layer 1")
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	a := Search(tab, Config{Episodes: 200, Seed: 42})
	b := Search(tab, Config{Episodes: 200, Seed: 42})
	if a.Time != b.Time {
		t.Errorf("same seed gave %v and %v", a.Time, b.Time)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("assignments differ at layer %d", i)
		}
	}
	c := Search(tab, Config{Episodes: 200, Seed: 43})
	// Different seed may legitimately find the same optimum, but the
	// curves should differ somewhere.
	same := true
	for i := range c.Curve {
		if c.Curve[i].Time != a.Curve[i].Time {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical episode curves")
	}
}

func TestCurveInvariants(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	res := Search(tab, Config{Episodes: 300, Seed: 1})
	if len(res.Curve) != 300 {
		t.Fatalf("curve has %d points", len(res.Curve))
	}
	prevBest := math.Inf(1)
	for _, pt := range res.Curve {
		if pt.Best > prevBest+1e-15 {
			t.Fatalf("best-so-far increased at episode %d", pt.Episode)
		}
		prevBest = pt.Best
		if pt.Time < pt.Best-1e-15 {
			t.Fatalf("episode time below best at %d", pt.Episode)
		}
		if pt.Epsilon < 0 || pt.Epsilon > 1 {
			t.Fatalf("epsilon %v out of range", pt.Epsilon)
		}
	}
	// Schedule: first half fully exploratory, last episodes greedy.
	if res.Curve[0].Epsilon != 1 {
		t.Error("first episode should be full exploration")
	}
	if res.Curve[299].Epsilon != 0 {
		t.Error("last episode should be full exploitation")
	}
}

func TestRLBeatsRandomSearch(t *testing.T) {
	// MobileNet-v1 GPGPU: the paper's Fig. 5 comparison. At equal
	// budget the RL search must find a configuration at least as good
	// as Random Search, and substantially better after convergence.
	net := models.MustBuild("mobilenet-v1")
	tab := profiled(t, net, primitives.ModeGPGPU)
	rl := Search(tab, Config{Episodes: 700, Seed: 5})
	rs := RandomSearch(tab, 700, 5)
	if rl.Time >= rs.Time {
		t.Errorf("RL %.4gms should beat RS %.4gms at equal budget", rl.Time*1e3, rs.Time*1e3)
	}
	if rs.Time/rl.Time < 1.2 {
		t.Errorf("RL should be clearly ahead after convergence (RS/RL = %.2f)", rs.Time/rl.Time)
	}
}

func TestSearchBeatsBestSingleLibrary(t *testing.T) {
	net := models.MustBuild("squeezenet")
	tab := profiled(t, net, primitives.ModeGPGPU)
	_, bsl := BestSingleLibrary(tab)
	res := Search(tab, Config{Episodes: 1000, Seed: 11})
	if res.Time > bsl.Time {
		t.Errorf("QS-DNN %.4gms should not lose to BSL %.4gms", res.Time*1e3, bsl.Time*1e3)
	}
}

func TestSingleLibraryAssignments(t *testing.T) {
	net := smallChain(t)
	tab := profiled(t, net, primitives.ModeGPGPU)
	van := SingleLibrary(tab, primitives.Vanilla)
	for i := 1; i < tab.NumLayers(); i++ {
		if van.Assignment[i] != primitives.PVanilla.Idx {
			t.Fatalf("vanilla substitution layer %d = %v", i, van.Assignment[i])
		}
	}
	// cuDNN substitution: the FC layer must fall back to Vanilla.
	cud := SingleLibrary(tab, primitives.CuDNN)
	fcIdx := net.LayerIndex("fc")
	if got := primitives.ByID(cud.Assignment[fcIdx]).Lib; got != primitives.Vanilla {
		t.Errorf("cuDNN substitution FC layer uses %v, want Vanilla fallback", got)
	}
	convIdx := net.LayerIndex("conv1")
	if got := primitives.ByID(cud.Assignment[convIdx]).Lib; got != primitives.CuDNN {
		t.Errorf("cuDNN substitution conv layer uses %v", got)
	}
	// Vanilla must be the slowest single library of the classic CPU
	// libraries.
	for _, lib := range []primitives.Library{primitives.OpenBLAS, primitives.ATLAS} {
		if r := SingleLibrary(tab, lib); r.Time >= van.Time {
			t.Errorf("%v (%.4g) should beat Vanilla (%.4g)", lib, r.Time, van.Time)
		}
	}
}

func TestVanillaTimeMatchesSubstitution(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeCPU)
	if VanillaTime(tab) != SingleLibrary(tab, primitives.Vanilla).Time {
		t.Error("VanillaTime mismatch")
	}
}

func TestAblationsRun(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	base := Search(tab, Config{Episodes: 300, Seed: 2})
	noReplay := Search(tab, Config{Episodes: 300, Seed: 2, DisableReplay: true})
	noShape := Search(tab, Config{Episodes: 300, Seed: 2, DisableShaping: true})
	for name, r := range map[string]*Result{"no-replay": noReplay, "no-shaping": noShape} {
		if math.IsInf(r.Time, 1) || r.Time <= 0 {
			t.Errorf("%s: time %v", name, r.Time)
		}
	}
	// The ablated variants must never beat physics: all results are
	// valid configurations of the same table.
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{base, noReplay, noShape} {
		if r.Time < opt.Time-1e-12 {
			t.Error("search reported a time below the true optimum")
		}
	}
}

func TestCustomScheduleAndConfigDefaults(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeCPU)
	res := Search(tab, Config{
		Episodes: 100,
		Schedule: []qlearn.Phase{{Epsilon: 0.5, Episodes: 100}},
		Seed:     1,
	})
	for _, pt := range res.Curve {
		if pt.Epsilon != 0.5 {
			t.Fatalf("custom schedule not honored: eps %v", pt.Epsilon)
		}
	}
	// Zero config picks the paper defaults (1000 episodes).
	full := Search(tab, Config{Seed: 1})
	if full.Episodes != 1000 {
		t.Errorf("default episodes = %d, want 1000", full.Episodes)
	}
}

func TestRandomSearchDeterministic(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	a := RandomSearch(tab, 100, 9)
	b := RandomSearch(tab, 100, 9)
	if a.Time != b.Time {
		t.Error("random search should be seed-deterministic")
	}
}
