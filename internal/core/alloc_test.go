package core

import (
	"math/rand"
	"testing"

	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// A steady-state search episode must perform zero heap allocations:
// every buffer — trajectory slab, assignment, replay slab, compiled
// replay arrays — is allocated during engine construction or the
// warm-up episodes, never in the loop. This is the core guarantee of
// the compiled-plan engine; a regression here silently reintroduces
// GC pressure multiplied by thousands of episodes per job.
func TestSearchEpisodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(9))
	tab := randomChainTable(rng, 8)
	plan := searchplan.Compile(tab)
	cfg := Config{Episodes: 1000, Seed: 1}.withDefaults()
	srng := newSearchRNG(cfg.Seed)
	q := qlearn.NewTable(plan.NumLayers(), primitives.Count())
	replay := qlearn.NewReplay(cfg.Agent.ReplaySize)
	e := newEpisodeEngine(plan, cfg, q, replay, srng)

	// Warm up past every one-time allocation: the replay slab appears
	// on the first Add, the compiled replay arrays on the first
	// ReplayInto, and the buffer keeps growing (appending slot
	// headers) until it reaches capacity.
	for ep := 0; ep <= cfg.Agent.ReplaySize; ep++ {
		e.runEpisode(1)
	}

	for name, eps := range map[string]float64{"explore": 1, "mixed": 0.5, "greedy": 0} {
		allocs := testing.AllocsPerRun(50, func() {
			e.runEpisode(eps)
		})
		if allocs != 0 {
			t.Errorf("%s episode (eps=%v): %v allocs per episode, want 0", name, eps, allocs)
		}
	}
}
