package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// randomChainTable builds a random chain network of depth n with fully
// random (but finite, positive) times and penalties — a synthetic
// problem instance decoupled from the platform model, for
// cross-certifying the solvers.
func randomChainTable(rng *rand.Rand, depth int) *lut.Table {
	b := nn.NewBuilder("rand-chain", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Input()
	for i := 0; i < depth; i++ {
		switch i % 3 {
		case 0:
			x = b.Conv(name("c", i), x, 4, 3, 1, 1)
		case 1:
			x = b.ReLU(name("r", i), x)
		default:
			x = b.BatchNorm(name("b", i), x)
		}
	}
	net := b.MustBuild()
	tab := lut.New(net, primitives.ModeGPGPU)
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			tab.SetTime(i, p, 0.1+rng.Float64())
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				pen := 0.0
				if rng.Float64() < 0.5 {
					pen = rng.Float64() * 2
				}
				tab.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		tab.SetOutputPenalty(p, rng.Float64()*0.5)
	}
	return tab
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// Property: on random chains, PBQP equals the Viterbi optimum, every
// search result is a valid configuration no better than the optimum,
// and RL at a moderate budget is no worse than random search.
func TestSolverCrossCertificationProperty(t *testing.T) {
	f := func(seed int64, d uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := int(d%6) + 3
		tab := randomChainTable(rng, depth)

		opt, err := Optimal(tab)
		if err != nil {
			return false
		}
		pb := PBQP(tab)
		if math.Abs(pb.Time-opt.Time) > 1e-9 {
			t.Logf("seed %d depth %d: PBQP %.9g != optimal %.9g", seed, depth, pb.Time, opt.Time)
			return false
		}
		rl := Search(tab, Config{Episodes: 400, Seed: seed})
		rs := RandomSearch(tab, 400, seed)
		greedy := Greedy(tab)
		for _, r := range []*Result{rl, rs, greedy} {
			if r.Time < opt.Time-1e-9 {
				t.Logf("seed %d: result %.9g below optimum %.9g", seed, r.Time, opt.Time)
				return false
			}
			if math.Abs(tab.TotalTime(r.Assignment)-r.Time) > 1e-9 {
				t.Logf("seed %d: inconsistent result accounting", seed)
				return false
			}
		}
		return rl.Time <= rs.Time+1e-9
	}
	// Fixed generator: RL-beats-RS holds in expectation, not for every
	// adversarial instance, so the checked instances must be stable.
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// Property: on tiny chains, exhaustive enumeration agrees with the DP
// optimum exactly.
func TestExhaustiveEqualsOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomChainTable(rng, 3)
		opt, err := Optimal(tab)
		if err != nil {
			return false
		}
		exh, err := Exhaustive(tab, 1e7)
		if err != nil {
			return false
		}
		return math.Abs(opt.Time-exh.Time) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: a converged RL search on small random chains finds the
// exact optimum.
func TestRLFindsOptimumOnRandomChains(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomChainTable(rng, 4)
		opt, err := Optimal(tab)
		if err != nil {
			t.Fatal(err)
		}
		rl := Search(tab, Config{Episodes: 1500, Seed: seed})
		if rl.Time > opt.Time*1.001 {
			t.Errorf("seed %d: RL %.6g vs optimum %.6g", seed, rl.Time, opt.Time)
		}
	}
}
