package core

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/primitives"
)

func curveResult() *Result {
	return &Result{Curve: []EpisodePoint{
		{Episode: 0, Epsilon: 1, Time: 10, Best: 10},
		{Episode: 1, Epsilon: 1, Time: 8, Best: 8},
		{Episode: 2, Epsilon: 0.5, Time: 9, Best: 8},
		{Episode: 3, Epsilon: 0.5, Time: 4, Best: 4},
		{Episode: 4, Epsilon: 0, Time: 4, Best: 4},
	}}
}

func TestConvergedAt(t *testing.T) {
	r := curveResult()
	if got := r.ConvergedAt(0.01); got != 3 {
		t.Errorf("ConvergedAt(1%%) = %d, want 3", got)
	}
	// A 100% tolerance is satisfied from the start (8 <= 4*2).
	if got := r.ConvergedAt(1.0); got != 1 {
		t.Errorf("ConvergedAt(100%%) = %d, want 1", got)
	}
	empty := &Result{}
	if empty.ConvergedAt(0.01) != -1 {
		t.Error("empty curve should give -1")
	}
}

func TestBestAt(t *testing.T) {
	r := curveResult()
	tests := []struct {
		episodes int
		want     float64
	}{{0, 10}, {1, 10}, {2, 8}, {4, 4}, {100, 4}}
	for _, tc := range tests {
		if got := r.BestAt(tc.episodes); got != tc.want {
			t.Errorf("BestAt(%d) = %v, want %v", tc.episodes, got, tc.want)
		}
	}
	if !math.IsInf((&Result{}).BestAt(3), 1) {
		t.Error("empty curve BestAt should be +Inf")
	}
}

func TestAreaUnderCurveAndExploration(t *testing.T) {
	r := curveResult()
	if got := r.AreaUnderCurve(); got != 10+8+8+4+4 {
		t.Errorf("AUC = %v", got)
	}
	if got := r.ExplorationShare(); got != 0.4 {
		t.Errorf("exploration share = %v, want 0.4", got)
	}
	if (&Result{}).ExplorationShare() != 0 {
		t.Error("empty curve exploration share should be 0")
	}
}

func TestConvergenceOnRealSearch(t *testing.T) {
	// The paper's observation: the search is converged well before the
	// budget ends. Assert convergence happens strictly before the last
	// tenth of the run.
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	res := Search(tab, Config{Episodes: 1000, Seed: 1})
	// With the paper's schedule the decisive drops come during the
	// exploitation phase (after the 500 exploration episodes) — the
	// Fig. 4 shape.
	at := res.ConvergedAt(0.05)
	if at < 400 {
		t.Errorf("ConvergedAt(5%%) = %d — converged during full exploration, curve shape wrong", at)
	}
	// Fig. 5's meaning of "converged by 350": a complete 350-episode
	// search (schedule scaled to the budget) already matches a full
	// 1000-episode search.
	short := Search(tab, Config{Episodes: 350, Seed: 1})
	if short.Time > res.Time*1.01 {
		t.Errorf("350-episode complete search %.6g should be within 1%% of 1000-episode %.6g",
			short.Time, res.Time)
	}
	// Reward shaping should not hurt the area under the curve compared
	// to terminal-only rewards (it converges faster).
	shaped := res.AreaUnderCurve()
	terminal := Search(tab, Config{Episodes: 1000, Seed: 1, DisableShaping: true}).AreaUnderCurve()
	if shaped > terminal*1.1 {
		t.Errorf("shaped AUC %.4g should not be much worse than terminal-only %.4g", shaped, terminal)
	}
}
