package core

import (
	"math"

	"repro/internal/lut"
	"repro/internal/primitives"
)

// PBQP solves the primitive-selection problem as a Partitioned Boolean
// Quadratic Program, the formulation of Anderson & Gregg ("Optimal DNN
// primitive selection with partitioned boolean quadratic programming")
// that the paper cites as the prior state of the art. Each layer is a
// variable over its candidate primitives with vector costs (layer
// times); each graph edge carries a matrix cost (the compatibility
// penalties). The solver applies the classical reductions —
//
//	R0:  a degree-0 node takes its cheapest primitive;
//	RI:  a degree-1 node folds into its neighbour's cost vector;
//	RII: a degree-2 node folds into an edge between its neighbours;
//	RN:  (heuristic) a higher-degree node is decided greedily by
//	     local cost and its choice folded into the neighbours.
//
// — then back-propagates decisions. On chains and trees only
// R0/RI/RII fire, so the result is provably optimal (the test suite
// certifies it against Viterbi); on branchy graphs (Inception, ResNet)
// RN makes it a strong heuristic, which is exactly the comparison the
// paper's RL approach targets.
func PBQP(tab *lut.Table) *Result {
	s := newPBQPState(tab)
	s.reduceAll()
	assignment := s.backPropagate()
	return &Result{
		Assignment: assignment,
		Time:       tab.TotalTime(assignment),
		Episodes:   1,
	}
}

// pbqpNode is one live variable of the program.
type pbqpNode struct {
	layer int
	dom   []primitives.ID
	cost  []float64
	adj   map[int]*pbqpEdge // neighbour layer -> connecting edge
}

// pbqpEdge is a matrix cost between nodes a and b (indexed by their
// domain positions).
type pbqpEdge struct {
	a, b int
	m    [][]float64 // m[ai][bi]
}

// at returns the edge cost between node `from` at domain index fi and
// the other endpoint at index oi, handling orientation.
func (e *pbqpEdge) at(from int, fi, oi int) float64 {
	if from == e.a {
		return e.m[fi][oi]
	}
	return e.m[oi][fi]
}

// decision records how to reconstruct one eliminated node's choice.
type decision struct {
	layer int
	// fixed >= 0 means the choice is already known (R0/RN).
	fixed int
	// For RI: choice = best[idx(n1)]; for RII: best2[idx(n1)][idx(n2)].
	n1, n2 int
	best   []int
	best2  [][]int
}

type pbqpState struct {
	tab   *lut.Table
	nodes map[int]*pbqpNode
	stack []decision
	// chosen[layer] = domain index, filled during back-propagation.
	chosen map[int]int
}

func newPBQPState(tab *lut.Table) *pbqpState {
	s := &pbqpState{tab: tab, nodes: map[int]*pbqpNode{}, chosen: map[int]int{}}
	L := tab.NumLayers()

	for i := 1; i < L; i++ {
		dom := tab.Candidates(i)
		n := &pbqpNode{layer: i, dom: dom, cost: make([]float64, len(dom)), adj: map[int]*pbqpEdge{}}
		for k, p := range dom {
			n.cost[k] = tab.Time(i, p)
			if i == tab.OutputLayer() {
				n.cost[k] += tab.OutputPenalty(p)
			}
		}
		s.nodes[i] = n
	}

	inputPrim := tab.Candidates(0)[0]
	for _, ed := range tab.Edges() {
		to := s.nodes[ed.To]
		if ed.From == 0 {
			// The input pseudo-node is fixed: fold its edge into the
			// consumer's vector.
			for k, p := range to.dom {
				to.cost[k] += tab.Penalty(0, ed.To, inputPrim, p)
			}
			continue
		}
		from := s.nodes[ed.From]
		m := make([][]float64, len(from.dom))
		for fi, fp := range from.dom {
			m[fi] = make([]float64, len(to.dom))
			for ti, tp := range to.dom {
				m[fi][ti] = tab.Penalty(ed.From, ed.To, fp, tp)
			}
		}
		s.addEdge(&pbqpEdge{a: ed.From, b: ed.To, m: m})
	}
	return s
}

// addEdge installs an edge, merging with an existing parallel edge by
// summing matrices.
func (s *pbqpState) addEdge(e *pbqpEdge) {
	na, nb := s.nodes[e.a], s.nodes[e.b]
	if prev, ok := na.adj[e.b]; ok {
		for fi := range prev.m {
			for ti := range prev.m[fi] {
				// Orient e's matrix to prev's orientation.
				if prev.a == e.a {
					prev.m[fi][ti] += e.m[fi][ti]
				} else {
					prev.m[fi][ti] += e.m[ti][fi]
				}
			}
		}
		return
	}
	na.adj[e.b] = e
	nb.adj[e.a] = e
}

// removeEdge detaches an edge from both endpoints.
func (s *pbqpState) removeEdge(e *pbqpEdge) {
	delete(s.nodes[e.a].adj, e.b)
	delete(s.nodes[e.b].adj, e.a)
}

// reduceAll applies reductions until every node is eliminated.
func (s *pbqpState) reduceAll() {
	for len(s.nodes) > 0 {
		n := s.pickNode()
		switch len(n.adj) {
		case 0:
			s.reduceR0(n)
		case 1:
			s.reduceRI(n)
		case 2:
			s.reduceRII(n)
		default:
			s.reduceRN(n)
		}
	}
}

// pickNode prefers the lowest-degree node (R0 < RI < RII < RN),
// breaking ties by layer index for determinism.
func (s *pbqpState) pickNode() *pbqpNode {
	var best *pbqpNode
	for _, n := range s.nodes {
		if best == nil ||
			len(n.adj) < len(best.adj) ||
			(len(n.adj) == len(best.adj) && n.layer < best.layer) {
			best = n
		}
	}
	return best
}

func (s *pbqpState) reduceR0(n *pbqpNode) {
	bi := 0
	for k := range n.cost {
		if n.cost[k] < n.cost[bi] {
			bi = k
		}
	}
	s.stack = append(s.stack, decision{layer: n.layer, fixed: bi, n1: -1, n2: -1})
	delete(s.nodes, n.layer)
}

func (s *pbqpState) reduceRI(n *pbqpNode) {
	var e *pbqpEdge
	var other int
	for o, ed := range n.adj {
		other, e = o, ed
	}
	on := s.nodes[other]
	best := make([]int, len(on.dom))
	for oi := range on.dom {
		minC := math.Inf(1)
		for fi := range n.dom {
			c := n.cost[fi] + e.at(n.layer, fi, oi)
			if c < minC {
				minC, best[oi] = c, fi
			}
		}
		on.cost[oi] += minC
	}
	s.removeEdge(e)
	s.stack = append(s.stack, decision{layer: n.layer, fixed: -1, n1: other, n2: -1, best: best})
	delete(s.nodes, n.layer)
}

func (s *pbqpState) reduceRII(n *pbqpNode) {
	others := make([]int, 0, 2)
	for o := range n.adj {
		others = append(others, o)
	}
	if others[0] > others[1] {
		others[0], others[1] = others[1], others[0]
	}
	j, k := others[0], others[1]
	ej, ek := n.adj[j], n.adj[k]
	nj, nk := s.nodes[j], s.nodes[k]

	m := make([][]float64, len(nj.dom))
	best2 := make([][]int, len(nj.dom))
	for ji := range nj.dom {
		m[ji] = make([]float64, len(nk.dom))
		best2[ji] = make([]int, len(nk.dom))
		for ki := range nk.dom {
			minC := math.Inf(1)
			for fi := range n.dom {
				c := n.cost[fi] + ej.at(n.layer, fi, ji) + ek.at(n.layer, fi, ki)
				if c < minC {
					minC, best2[ji][ki] = c, fi
				}
			}
			m[ji][ki] = minC
		}
	}
	s.removeEdge(ej)
	s.removeEdge(ek)
	delete(s.nodes, n.layer)
	s.addEdge(&pbqpEdge{a: j, b: k, m: m})
	s.stack = append(s.stack, decision{layer: n.layer, fixed: -1, n1: j, n2: k, best2: best2})
}

// reduceRN decides a high-degree node heuristically: pick the domain
// value minimizing its own cost plus the cheapest compatible value of
// each neighbour, then fold the decided edge rows into the neighbours.
func (s *pbqpState) reduceRN(n *pbqpNode) {
	bi, biCost := 0, math.Inf(1)
	for fi := range n.dom {
		c := n.cost[fi]
		for o, e := range n.adj {
			on := s.nodes[o]
			minC := math.Inf(1)
			for oi := range on.dom {
				v := e.at(n.layer, fi, oi) + on.cost[oi]
				if v < minC {
					minC = v
				}
			}
			c += minC
		}
		if c < biCost {
			biCost, bi = c, fi
		}
	}
	// Fold the chosen row into every neighbour and drop the node.
	for o, e := range n.adj {
		on := s.nodes[o]
		for oi := range on.dom {
			on.cost[oi] += e.at(n.layer, bi, oi)
		}
		delete(on.adj, n.layer)
	}
	s.stack = append(s.stack, decision{layer: n.layer, fixed: bi, n1: -1, n2: -1})
	delete(s.nodes, n.layer)
}

// backPropagate unwinds the reduction stack, materializing choices.
func (s *pbqpState) backPropagate() []primitives.ID {
	for i := len(s.stack) - 1; i >= 0; i-- {
		d := s.stack[i]
		switch {
		case d.fixed >= 0:
			s.chosen[d.layer] = d.fixed
		case d.n2 < 0: // RI
			s.chosen[d.layer] = d.best[s.chosen[d.n1]]
		default: // RII
			s.chosen[d.layer] = d.best2[s.chosen[d.n1]][s.chosen[d.n2]]
		}
	}
	assignment := make([]primitives.ID, s.tab.NumLayers())
	assignment[0] = s.tab.Candidates(0)[0]
	for i := 1; i < s.tab.NumLayers(); i++ {
		assignment[i] = s.tab.Candidates(i)[s.chosen[i]]
	}
	return assignment
}
