package core

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

func TestPBQPOptimalOnChains(t *testing.T) {
	// On chain networks only R0/RI/RII fire, so PBQP must equal the
	// Viterbi optimum exactly.
	for _, name := range []string{"lenet5", "mobilenet-v1", "tinyyolo"} {
		for _, mode := range []primitives.Mode{primitives.ModeCPU, primitives.ModeGPGPU} {
			tab := profiled(t, models.MustBuild(name), mode)
			opt, err := Optimal(tab)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			pb := PBQP(tab)
			if math.Abs(pb.Time-opt.Time) > 1e-12 {
				t.Errorf("%s/%v: PBQP %.6g != optimal %.6g", name, mode, pb.Time, opt.Time)
			}
		}
	}
}

func TestPBQPOptimalOnSmallChain(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	pb := PBQP(tab)
	if math.Abs(pb.Time-opt.Time) > 1e-12 {
		t.Errorf("PBQP %.6g != optimal %.6g", pb.Time, opt.Time)
	}
	if got := tab.TotalTime(pb.Assignment); math.Abs(got-pb.Time) > 1e-12 {
		t.Error("PBQP reported time inconsistent with its assignment")
	}
}

func TestPBQPMatchesExhaustiveOnTinyBranch(t *testing.T) {
	// A small branchy net: RN fires, so PBQP is heuristic — but on
	// this instance it should land at (or extremely near) the
	// exhaustive optimum.
	b := nn.NewBuilder("tiny-branch", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Conv("stem", b.Input(), 8, 1, 1, 0)
	l := b.ReLU("left", x)
	r := b.BatchNorm("right", x)
	b.EltwiseAdd("add", l, r)
	net := b.MustBuild()
	tab := profiled(t, net, primitives.ModeGPGPU)
	exh, err := Exhaustive(tab, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	pb := PBQP(tab)
	if pb.Time < exh.Time-1e-12 {
		t.Fatalf("PBQP below exhaustive optimum — impossible")
	}
	if pb.Time > exh.Time*1.10 {
		t.Errorf("PBQP %.6g more than 10%% above optimum %.6g on a tiny instance", pb.Time, exh.Time)
	}
}

func TestPBQPOnBranchyNetworksIsValidAndStrong(t *testing.T) {
	// GoogleNet/ResNet exercise RN heavily. PBQP must produce a valid
	// assignment whose time beats the single-library baselines.
	for _, name := range []string{"googlenet", "resnet50", "squeezenet"} {
		tab := profiled(t, models.MustBuild(name), primitives.ModeGPGPU)
		pb := PBQP(tab)
		if len(pb.Assignment) != tab.NumLayers() {
			t.Fatalf("%s: assignment length %d", name, len(pb.Assignment))
		}
		if math.IsInf(pb.Time, 0) || pb.Time <= 0 {
			t.Fatalf("%s: PBQP time %v", name, pb.Time)
		}
		_, bsl := BestSingleLibrary(tab)
		if pb.Time > bsl.Time {
			t.Errorf("%s: PBQP %.4g worse than best single library %.4g", name, pb.Time, bsl.Time)
		}
	}
}

func TestPBQPAndRLAgree(t *testing.T) {
	// On MobileNet (chain) both PBQP and a converged RL search hit the
	// same optimum — the paper's point is that RL gets there with a
	// sample-based method that scales to settings where PBQP's exact
	// reductions don't apply.
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	pb := PBQP(tab)
	rl := Search(tab, Config{Episodes: 1000, Seed: 1})
	if math.Abs(pb.Time-rl.Time) > pb.Time*0.01 {
		t.Errorf("PBQP %.6g and converged RL %.6g should agree within 1%%", pb.Time, rl.Time)
	}
}

func TestPBQPDeterministic(t *testing.T) {
	tab := profiled(t, models.MustBuild("googlenet"), primitives.ModeGPGPU)
	a := PBQP(tab)
	b := PBQP(tab)
	if a.Time != b.Time {
		t.Error("PBQP should be deterministic")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("PBQP assignments differ between runs")
		}
	}
}
