package core

import "math"

// Search-quality statistics over episode curves, used by the figure
// harness and the ablation analysis.

// ConvergedAt returns the first episode whose best-so-far value is
// within rel (e.g. 0.01 for 1 %) of the final best, or -1 for an empty
// curve. The paper reports MobileNet "falls near convergence after
// only 350" episodes; this is the corresponding measurement.
func (r *Result) ConvergedAt(rel float64) int {
	if len(r.Curve) == 0 {
		return -1
	}
	final := r.Curve[len(r.Curve)-1].Best
	for _, pt := range r.Curve {
		if pt.Best <= final*(1+rel) {
			return pt.Episode
		}
	}
	return r.Curve[len(r.Curve)-1].Episode
}

// BestAt returns the best-so-far value after the given episode budget
// (clamped to the curve), or +Inf for an empty curve. It lets one
// long search answer "what would a budget-N search of this very run
// have found".
func (r *Result) BestAt(episodes int) float64 {
	if len(r.Curve) == 0 {
		return math.Inf(1)
	}
	if episodes <= 0 {
		return r.Curve[0].Best
	}
	if episodes >= len(r.Curve) {
		return r.Curve[len(r.Curve)-1].Best
	}
	return r.Curve[episodes-1].Best
}

// AreaUnderCurve integrates the best-so-far curve (lower is better:
// fast convergence to a good value gives a small area). Useful for
// comparing schedules and ablations beyond their endpoints.
func (r *Result) AreaUnderCurve() float64 {
	var area float64
	for _, pt := range r.Curve {
		area += pt.Best
	}
	return area
}

// ExplorationShare returns the fraction of episodes run at ε = 1.
func (r *Result) ExplorationShare() float64 {
	if len(r.Curve) == 0 {
		return 0
	}
	n := 0
	for _, pt := range r.Curve {
		if pt.Epsilon == 1 {
			n++
		}
	}
	return float64(n) / float64(len(r.Curve))
}
