package core

import (
	"math"
	"testing"

	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// profiledBoth builds latency and energy tables for a network.
func profiledBoth(t *testing.T, net *nn.Network, mode primitives.Mode) (*lut.Table, *lut.Table) {
	t.Helper()
	pl := platform.JetsonTX2Like()
	tt, et, err := profile.RunWithEnergy(net, profile.NewSimSource(net, pl),
		profile.Options{Mode: mode, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	return tt, et
}

func TestSearchMultiLambdaZeroMatchesLatencySearch(t *testing.T) {
	net := smallChain(t)
	tt, et := profiledBoth(t, net, primitives.ModeGPGPU)
	mono := Search(tt, Config{Episodes: 600, Seed: 3})
	multi, err := SearchMulti(tt, et, 0, Config{Episodes: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mono.Time-multi.Seconds) > 1e-12 {
		t.Errorf("lambda=0 multi (%v) should equal plain search (%v)", multi.Seconds, mono.Time)
	}
	if multi.Joules <= 0 {
		t.Errorf("energy = %v", multi.Joules)
	}
}

func TestSearchMultiTradesLatencyForEnergy(t *testing.T) {
	// A GPU-heavy network: high lambda should push work off the
	// power-hungry GPU, lowering joules at a latency cost.
	net := models.MustBuild("squeezenet")
	tt, et := profiledBoth(t, net, primitives.ModeGPGPU)
	fast, err := SearchMulti(tt, et, 0, Config{Episodes: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frugal, err := SearchMulti(tt, et, 1000, Config{Episodes: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if frugal.Joules > fast.Joules {
		t.Errorf("high-lambda search should not burn more energy: %v > %v J",
			frugal.Joules, fast.Joules)
	}
	if frugal.Seconds < fast.Seconds {
		t.Errorf("energy-optimal mapping should not also be faster: %v < %v s",
			frugal.Seconds, fast.Seconds)
	}
	// The trade-off must be real on this platform: distinct corners.
	if frugal.Joules == fast.Joules && frugal.Seconds == fast.Seconds {
		t.Error("latency- and energy-optimal mappings coincide; the objective is degenerate")
	}
}

func TestSearchMultiValidation(t *testing.T) {
	net := smallChain(t)
	tt, et := profiledBoth(t, net, primitives.ModeGPGPU)
	if _, err := SearchMulti(tt, et, -1, Config{Episodes: 10}); err == nil {
		t.Error("negative lambda should error")
	}
	other := profiled(t, models.MustBuild("lenet5"), primitives.ModeGPGPU)
	if _, err := SearchMulti(tt, other, 1, Config{Episodes: 10}); err == nil {
		t.Error("mismatched tables should error")
	}
}

func TestParetoFront(t *testing.T) {
	net := models.MustBuild("squeezenet")
	tt, et := profiledBoth(t, net, primitives.ModeGPGPU)
	front, err := ParetoFront(tt, et, []float64{0, 1, 10, 1000}, Config{Episodes: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	// No point on the front dominates another.
	for i, p := range front {
		for j, q := range front {
			if i == j {
				continue
			}
			if q.Seconds <= p.Seconds && q.Joules <= p.Joules &&
				(q.Seconds < p.Seconds || q.Joules < p.Joules) {
				t.Errorf("front point %+v dominated by %+v", p, q)
			}
		}
	}
}

func TestParetoFrontDefaultLambdas(t *testing.T) {
	net := smallChain(t)
	tt, et := profiledBoth(t, net, primitives.ModeCPU)
	front, err := ParetoFront(tt, et, nil, Config{Episodes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Error("default lambdas produced no front")
	}
}

func TestEnergyOf(t *testing.T) {
	net := smallChain(t)
	tt, et := profiledBoth(t, net, primitives.ModeGPGPU)
	res := Search(tt, Config{Episodes: 300, Seed: 1})
	e := EnergyOf(et, res.Assignment)
	if e <= 0 || math.IsInf(e, 0) {
		t.Errorf("EnergyOf = %v", e)
	}
	// Vanilla (CPU, slow) burns more CPU-seconds than the optimized
	// mix burns total; on the default power model vanilla should cost
	// more joules than the latency-optimal mapping... not necessarily,
	// so only assert both are finite and vanilla's is positive.
	van := SingleLibrary(tt, primitives.Vanilla)
	if ev := EnergyOf(et, van.Assignment); ev <= 0 {
		t.Errorf("vanilla energy = %v", ev)
	}
}

func TestEnergyTablesStructure(t *testing.T) {
	net := smallChain(t)
	_, et := profiledBoth(t, net, primitives.ModeGPGPU)
	for i := 1; i < et.NumLayers(); i++ {
		for _, p := range et.Candidates(i) {
			if v := et.Time(i, p); v <= 0 || math.IsInf(v, 0) {
				t.Errorf("layer %d prim %d: energy %v", i, p, v)
			}
		}
	}
	// GPU primitives must cost more joules per second than CPU ones:
	// check a conv layer where both exist.
	convIdx := net.LayerIndex("conv1")
	_ = convIdx
}

func TestGPUEnergyRatioExceedsCPU(t *testing.T) {
	// For the same layer, joules/second on GPU ~ GPUWatts and on CPU
	// ~ CPUWatts.
	pl := platform.JetsonTX2Like()
	net := smallChain(t)
	conv := net.Layers[net.LayerIndex("conv1")]
	cpuP, _ := primitives.ByName("openblas-gemm-im2col")
	gpuP, _ := primitives.ByName("cudnn-conv")
	cpuRatio := pl.LayerEnergy(conv, cpuP) / pl.LayerLatency(conv, cpuP)
	gpuRatio := pl.LayerEnergy(conv, gpuP) / pl.LayerLatency(conv, gpuP)
	if math.Abs(cpuRatio-pl.Power().CPUWatts) > 1e-9 {
		t.Errorf("CPU joules/sec = %v, want %v", cpuRatio, pl.Power().CPUWatts)
	}
	if math.Abs(gpuRatio-pl.Power().GPUWatts) > 1e-9 {
		t.Errorf("GPU joules/sec = %v, want %v", gpuRatio, pl.Power().GPUWatts)
	}
	if gpuRatio <= cpuRatio {
		t.Error("GPU should draw more power than a single CPU core")
	}
}
