package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

// TestSplitSearchProperty (property test): a search split at an
// arbitrary episode boundary — checkpoint, then restore — must reach a
// final best within tolerance of the unsplit run under the same
// config, across several seeds and random split points. The split run
// is not bit-identical (the RNG is re-derived at the boundary) but the
// learned state carries over, so quality must not degrade.
func TestSplitSearchProperty(t *testing.T) {
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	const episodes = 600
	rng := rand.New(rand.NewSource(99))
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		seed := seed
		split := 1 + rng.Intn(episodes-1)
		t.Run(fmt.Sprintf("seed%d-split%d", seed, split), func(t *testing.T) {
			cfg := Config{Episodes: episodes, Seed: seed}
			mono := Search(tab, cfg)

			schedule := qlearn.PaperSchedule(episodes)
			part1, ck := SearchResumable(tab, Config{Episodes: split, Schedule: schedule, Seed: seed}, nil)
			part2, ck2 := SearchResumable(tab, Config{Episodes: episodes - split, Schedule: schedule, Seed: seed}, ck)
			if ck2.Episode != episodes {
				t.Fatalf("final episode %d, want %d", ck2.Episode, episodes)
			}
			splitBest := part1.Time
			if part2.Time < splitBest {
				splitBest = part2.Time
			}
			// 5% tolerance: the halves share the Q-table, so the split
			// run must stay in the same quality band as the monolith.
			if splitBest > mono.Time*1.05 {
				t.Errorf("split at %d: best %.6g vs monolithic %.6g (>5%% worse)", split, splitBest, mono.Time)
			}
		})
	}
}

func TestSnapshotRoundTripAndValidation(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	res, snap, err := SearchCheckpointed(tab, Config{Episodes: 200, Seed: 3}, DurableOptions{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Checkpoint.Episode != 200 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.BestTime != res.Time {
		t.Fatalf("snapshot best %v, result %v", snap.BestTime, res.Time)
	}
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(data, tab)
	if err != nil {
		t.Fatal(err)
	}
	if back.BestTime != snap.BestTime || back.Checkpoint.Episode != 200 {
		t.Fatalf("round trip: %+v", back)
	}

	// Schema validation: a best time that disagrees with the table's
	// own evaluation is rejected (the digest-style consistency check).
	tampered := []byte(string(data))
	// Flip one digit of the best_time field via JSON-level surgery.
	snap2 := *snap
	snap2.BestTime *= 1.5
	bad, err := snap2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad, tab); err == nil {
		t.Error("inconsistent best time accepted")
	}
	if _, err := LoadSnapshot(tampered[:len(tampered)/2], tab); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// A snapshot for a different network shape is rejected.
	other := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	if _, err := LoadSnapshot(data, other); err == nil {
		t.Error("snapshot accepted against mismatched table")
	}
}

// TestCheckpointedResumeIsExact: kill a checkpointed search at an
// arbitrary snapshot boundary and resume from the saved snapshot; the
// final best time and assignment must be byte-identical to an
// uninterrupted run at the same cadence — the durable-search
// acceptance invariant.
func TestCheckpointedResumeIsExact(t *testing.T) {
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	cfg := Config{Episodes: 500, Seed: 7}
	const every = 90 // deliberately not a divisor of the budget

	full, _, err := SearchCheckpointed(tab, cfg, DurableOptions{Every: every})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after the third snapshot: keep only the snapshot a
	// crash would have left on disk.
	var kept *Snapshot
	saves := 0
	_, _, err = SearchCheckpointed(tab, cfg, DurableOptions{Every: every, Save: func(s *Snapshot) error {
		saves++
		if saves == 3 {
			data, err := s.Marshal()
			if err != nil {
				return err
			}
			back, err := LoadSnapshot(data, tab)
			if err != nil {
				return err
			}
			kept = back
			return fmt.Errorf("simulated crash")
		}
		return nil
	}})
	if err == nil || kept == nil {
		t.Fatalf("simulated crash not triggered (err %v)", err)
	}

	resumed, snap, err := SearchCheckpointed(tab, cfg, DurableOptions{Every: every, From: kept})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Time != full.Time {
		t.Errorf("resumed best %.9g, uninterrupted %.9g", resumed.Time, full.Time)
	}
	for i := range full.Assignment {
		if resumed.Assignment[i] != full.Assignment[i] {
			t.Fatalf("assignment diverges at layer %d", i)
		}
	}
	if snap.Checkpoint.Episode != cfg.Episodes {
		t.Errorf("final snapshot at episode %d, want %d", snap.Checkpoint.Episode, cfg.Episodes)
	}
	if resumed.Episodes != cfg.Episodes-kept.Checkpoint.Episode {
		t.Errorf("resumed session ran %d episodes, want %d", resumed.Episodes, cfg.Episodes-kept.Checkpoint.Episode)
	}
}

func TestSearchCheckpointedNothingToResume(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	_, snap, err := SearchCheckpointed(tab, Config{Episodes: 100, Seed: 1}, DurableOptions{Every: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SearchCheckpointed(tab, Config{Episodes: 100, Seed: 1}, DurableOptions{From: snap}); err == nil {
		t.Error("resuming a completed run should error")
	}
}

// TestSearchCheckpointedSaveFailureAborts: a sink error stops the
// search — durability failures are loud.
func TestSearchCheckpointedSaveFailureAborts(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	boom := fmt.Errorf("disk full")
	_, _, err := SearchCheckpointed(tab, Config{Episodes: 100, Seed: 1}, DurableOptions{
		Every: 10,
		Save:  func(*Snapshot) error { return boom },
	})
	if err == nil {
		t.Fatal("save failure swallowed")
	}
}
