package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/lut"
	"repro/internal/pool"
	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// Alternative exploration policies — the paper uses ε-greedy (following
// Baker et al.) and names richer exploration among the things to try;
// this file provides a Boltzmann (softmax) policy for comparison, plus
// a multi-seed ensemble runner matching the "mean of 5 full
// experiments" protocol of Fig. 5.

// Policy selects an action given the Q-values of the allowed actions.
type Policy interface {
	// Select returns the chosen action from allowed, given access to
	// the Q-table at (step, prim) and the episode index.
	Select(q *qlearn.Table, step, prim int, allowed []int, episode int, rng *rand.Rand) int
}

// EpsilonGreedy is the paper's policy: explore uniformly with
// probability ε (from the schedule), otherwise exploit.
type EpsilonGreedy struct {
	// Schedule is the ε plateau list.
	Schedule []qlearn.Phase
}

// Select implements Policy.
func (p *EpsilonGreedy) Select(q *qlearn.Table, step, prim int, allowed []int, episode int, rng *rand.Rand) int {
	if rng.Float64() < qlearn.EpsilonAt(p.Schedule, episode) {
		return allowed[rng.Intn(len(allowed))]
	}
	return q.Best(step, prim, allowed, rng)
}

// Boltzmann samples actions proportionally to exp(Q/T), annealing the
// temperature geometrically from Start to End over the episode budget.
type Boltzmann struct {
	// Start and End are the initial and final temperatures.
	Start, End float64
	// Episodes is the annealing horizon.
	Episodes int
}

// temperature returns the annealed temperature at the episode.
func (p *Boltzmann) temperature(episode int) float64 {
	if p.Episodes <= 1 {
		return p.End
	}
	frac := float64(episode) / float64(p.Episodes-1)
	if frac > 1 {
		frac = 1
	}
	return p.Start * math.Pow(p.End/p.Start, frac)
}

// Select implements Policy.
func (p *Boltzmann) Select(q *qlearn.Table, step, prim int, allowed []int, episode int, rng *rand.Rand) int {
	t := p.temperature(episode)
	// Stabilize by subtracting the max Q.
	maxQ := math.Inf(-1)
	for _, a := range allowed {
		if v := q.Get(step, prim, a); v > maxQ {
			maxQ = v
		}
	}
	weights := make([]float64, len(allowed))
	var sum float64
	for i, a := range allowed {
		weights[i] = math.Exp((q.Get(step, prim, a) - maxQ) / t)
		sum += weights[i]
	}
	r := rng.Float64() * sum
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return allowed[i]
		}
	}
	return allowed[len(allowed)-1]
}

// SearchWithPolicy runs the QS-DNN episode walk with a pluggable
// exploration policy; the Q-update machinery (replay included) is the
// standard one.
func SearchWithPolicy(tab *lut.Table, cfg Config, policy Policy) *Result {
	cfg = cfg.withDefaults()
	if policy == nil {
		policy = &EpsilonGreedy{Schedule: cfg.Schedule}
	}
	rng := newSearchRNG(cfg.Seed)
	L := tab.NumLayers()
	q := qlearn.NewTable(L, primitives.Count())
	replay := qlearn.NewReplay(cfg.Agent.ReplaySize)

	allowed := make([][]int, L)
	for i := 1; i < L; i++ {
		ids := tab.Candidates(i)
		acts := make([]int, len(ids))
		for k, id := range ids {
			acts[k] = int(id)
		}
		allowed[i] = acts
	}

	// Normalize rewards by the largest finite layer time so Q-values —
	// and therefore Boltzmann temperatures — are scale-free across
	// problems. ε-greedy is invariant to positive scaling, so this
	// changes nothing for the paper's policy.
	scale := 0.0
	for i := 1; i < L; i++ {
		for _, p := range tab.Candidates(i) {
			if v := tab.Time(i, p); !math.IsInf(v, 1) && v > scale {
				scale = v
			}
		}
	}
	if scale == 0 {
		scale = 1
	}

	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	best := &Result{Time: math.Inf(1), Episodes: cfg.Episodes}

	for ep := 0; ep < cfg.Episodes; ep++ {
		traj := make([]qlearn.Transition, 0, L-1)
		for i := 1; i < L; i++ {
			prev := int(assignment[i-1])
			action := policy.Select(q, i-1, prev, allowed[i], ep, rng)
			assignment[i] = primitives.ID(action)
			reward := -tab.LayerCost(i, assignment[i], assignment) / scale
			var next []int
			if i+1 < L {
				next = allowed[i+1]
			}
			traj = append(traj, qlearn.Transition{
				Step: i - 1, Prim: prev, Action: action,
				Reward: reward, NextAllowed: next,
			})
		}
		total := tab.TotalTime(assignment)
		q.UpdateEpisode(traj, cfg.Agent)
		if !cfg.DisableReplay {
			replay.Add(traj)
			replay.ReplayInto(q, cfg.Agent, cfg.ReplayUpdates, rng)
		}
		if total < best.Time {
			best.Time = total
			best.Assignment = append([]primitives.ID(nil), assignment...)
		}
		best.Curve = append(best.Curve, EpisodePoint{
			Episode: ep, Epsilon: qlearn.EpsilonAt(cfg.Schedule, ep), Time: total, Best: best.Time,
		})
	}
	return best
}

// EnsembleStats summarizes a multi-seed ensemble run.
type EnsembleStats struct {
	// Best is the overall best result across seeds.
	Best *Result
	// Mean and Std summarize the per-seed best times.
	Mean, Std float64
	// Times lists each seed's best time, sorted ascending.
	Times []float64
}

// SearchEnsemble runs n independent searches with consecutive seeds
// concurrently (the search is CPU-bound and seeds are independent) and
// aggregates them — the Fig. 5 protocol of averaging complete
// experiments. The table is compiled into an evaluation plan once and
// shared read-only by every seed. The fan-out goes through the bounded
// shared worker pool rather than one goroutine per seed, so large
// ensembles cannot oversubscribe the host; aggregation walks seeds in
// order, keeping the stats independent of completion order.
func SearchEnsemble(tab *lut.Table, cfg Config, n int) (*EnsembleStats, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: ensemble size %d", n)
	}
	plan := searchplan.Compile(tab)
	results := make([]*Result, n)
	pool.Run(n, pool.DefaultWorkers(), func(i int) {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		results[i] = SearchPlanned(plan, c)
	})
	stats := &EnsembleStats{Best: results[0]}
	for _, r := range results {
		stats.Times = append(stats.Times, r.Time)
		if r.Time < stats.Best.Time {
			stats.Best = r
		}
	}
	sort.Float64s(stats.Times)
	var sum float64
	for _, t := range stats.Times {
		sum += t
	}
	stats.Mean = sum / float64(n)
	for _, t := range stats.Times {
		stats.Std += (t - stats.Mean) * (t - stats.Mean)
	}
	stats.Std = math.Sqrt(stats.Std / float64(n))
	return stats, nil
}
