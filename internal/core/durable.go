package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// Durable search: SearchResumable already splits a search into
// sessions; this file adds the pieces a crash-safe CLI needs on top —
// a serializable Snapshot that carries the best configuration found so
// far alongside the agent state (the Q-table alone cannot replay a
// best that was discovered before the last checkpoint boundary), and
// SearchCheckpointed, which runs the search in fixed-cadence chunks
// and hands each boundary snapshot to a persistence sink. Because the
// chunk boundaries are deterministic for a given cadence, a run killed
// at any instant and resumed from its last snapshot recomputes exactly
// the chunks the crash destroyed and converges to the same final
// result as an uninterrupted run of the same cadence.

// Snapshot is the durable state of a checkpointed search: the agent
// checkpoint plus the best assignment observed so far.
type Snapshot struct {
	// Checkpoint is the agent state (Q-table, replay buffer, episode).
	Checkpoint *qlearn.Checkpoint
	// BestAssignment is the best configuration found so far; empty
	// when no episode has completed.
	BestAssignment []primitives.ID
	// BestTime is BestAssignment's total time (undefined when
	// BestAssignment is empty).
	BestTime float64
}

// snapshotJSON is the on-disk form of a Snapshot. BestTime is stored
// only when a best exists, because JSON cannot carry +Inf.
type snapshotJSON struct {
	Checkpoint     json.RawMessage `json:"checkpoint"`
	BestAssignment []int           `json:"best_assignment,omitempty"`
	BestTime       float64         `json:"best_time,omitempty"`
}

// Marshal serializes the snapshot.
func (s *Snapshot) Marshal() ([]byte, error) {
	ck, err := s.Checkpoint.Marshal()
	if err != nil {
		return nil, err
	}
	out := snapshotJSON{Checkpoint: ck}
	if len(s.BestAssignment) > 0 {
		out.BestAssignment = make([]int, len(s.BestAssignment))
		for i, id := range s.BestAssignment {
			out.BestAssignment[i] = int(id)
		}
		out.BestTime = s.BestTime
	}
	return json.Marshal(out)
}

// LoadSnapshot restores a snapshot and validates it against the table
// the search will resume on: the agent dimensions must match, the best
// assignment (when present) must be a legal configuration, and its
// recorded time must equal the table's own evaluation of it — a
// checksum-grade consistency check that ties the snapshot to the exact
// measurements it was computed from. Any violation is an error, so the
// rotation loader treats a schema-invalid snapshot like a torn one and
// falls back to the previous generation.
func LoadSnapshot(data []byte, tab *lut.Table) (*Snapshot, error) {
	var in snapshotJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	ck, err := qlearn.LoadCheckpoint(in.Checkpoint)
	if err != nil {
		return nil, err
	}
	L := tab.NumLayers()
	if ck.Table.Steps() != L {
		return nil, fmt.Errorf("core: snapshot Q-table covers %d steps, table needs %d", ck.Table.Steps(), L)
	}
	s := &Snapshot{Checkpoint: ck, BestTime: math.Inf(1)}
	if len(in.BestAssignment) > 0 {
		if len(in.BestAssignment) != L {
			return nil, fmt.Errorf("core: snapshot best assignment has %d layers, table has %d", len(in.BestAssignment), L)
		}
		ids := make([]primitives.ID, L)
		for i, a := range in.BestAssignment {
			id := primitives.ID(a)
			if int(id) != a || !isCandidateOf(tab, i, id) {
				return nil, fmt.Errorf("core: snapshot best assignment layer %d: primitive %d is not a candidate", i, a)
			}
			ids[i] = id
		}
		if got := tab.TotalTime(ids); got != in.BestTime {
			return nil, fmt.Errorf("core: snapshot best time %v does not match table evaluation %v", in.BestTime, got)
		}
		s.BestAssignment = ids
		s.BestTime = in.BestTime
	}
	return s, nil
}

// isCandidateOf reports whether id is in layer i's candidate set.
func isCandidateOf(tab *lut.Table, i int, id primitives.ID) bool {
	for _, c := range tab.Candidates(i) {
		if c == id {
			return true
		}
	}
	return false
}

// DurableOptions configures SearchCheckpointed.
type DurableOptions struct {
	// Every is the snapshot cadence in episodes (<= 0 selects 100).
	Every int
	// Save persists one boundary snapshot; a failure aborts the
	// search (durability is the point — losing snapshots silently
	// would defeat it). nil disables persistence.
	Save func(*Snapshot) error
	// From resumes from a prior snapshot; nil starts fresh.
	From *Snapshot
}

// DefaultSnapshotEvery is the default checkpoint cadence in episodes.
const DefaultSnapshotEvery = 100

// ErrStopEarly is the cooperative early-stop signal for a deadline
// budget: a Save callback that returns an error wrapping it makes
// SearchCheckpointedPlanned stop at that checkpoint boundary and
// return the best-so-far Result and boundary Snapshot alongside the
// error — the caller gets a usable (partial-budget) plan instead of
// nothing. Any other Save error still aborts with a nil result.
var ErrStopEarly = errors.New("core: search stopped early at checkpoint boundary")

// SearchCheckpointed runs a search of cfg.Episodes total episodes in
// chunks of opts.Every episodes, saving a Snapshot after each chunk.
// With opts.From it continues from a prior snapshot's episode count —
// the ε schedule (fixed over the total budget) anneals as if the run
// were never interrupted, and the carried best-so-far guarantees the
// final result equals an uninterrupted run at the same cadence.
//
// The returned Result covers the episodes run in this session (its
// Curve starts at the resumed episode); its Time/Assignment reflect
// the best over the whole logical run, snapshot history included.
func SearchCheckpointed(tab *lut.Table, cfg Config, opts DurableOptions) (*Result, *Snapshot, error) {
	return SearchCheckpointedPlanned(searchplan.Compile(tab), cfg, opts)
}

// SearchCheckpointedPlanned is SearchCheckpointed over a pre-compiled
// plan — the serve daemon compiles each distinct table once in its
// single-flight cache and runs every coalesced request's search on the
// shared plan.
func SearchCheckpointedPlanned(plan *searchplan.Plan, cfg Config, opts DurableOptions) (*Result, *Snapshot, error) {
	cfg = cfg.withDefaults()
	total := cfg.Episodes
	every := opts.Every
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	start := 0
	best := &Result{Time: math.Inf(1)}
	var from *qlearn.Checkpoint
	if opts.From != nil {
		from = opts.From.Checkpoint
		start = from.Episode
		if len(opts.From.BestAssignment) > 0 {
			best.Time = opts.From.BestTime
			best.Assignment = append([]primitives.ID(nil), opts.From.BestAssignment...)
		}
	}
	if start >= total {
		return nil, nil, fmt.Errorf("core: snapshot already covers %d episodes (budget %d): nothing to resume", start, total)
	}

	snap := func(ck *qlearn.Checkpoint) *Snapshot {
		s := &Snapshot{Checkpoint: ck, BestTime: best.Time}
		if best.Assignment != nil {
			s.BestAssignment = append([]primitives.ID(nil), best.Assignment...)
		}
		return s
	}
	var last *Snapshot
	for ep := start; ep < total; {
		chunk := every - ep%every // realign to cadence boundaries after a resume
		if ep+chunk > total {
			chunk = total - ep
		}
		ccfg := cfg
		ccfg.Episodes = chunk
		res, ck := SearchResumablePlanned(plan, ccfg, from)
		from = ck
		ep += chunk
		if res.Time < best.Time {
			best.Time = res.Time
			best.Assignment = append([]primitives.ID(nil), res.Assignment...)
		}
		best.Curve = append(best.Curve, res.Curve...)
		last = snap(ck)
		if opts.Save != nil {
			if err := opts.Save(last); err != nil {
				if errors.Is(err, ErrStopEarly) {
					best.Episodes = ep - start
					return best, last, fmt.Errorf("core: saving snapshot at episode %d: %w", ep, err)
				}
				return nil, nil, fmt.Errorf("core: saving snapshot at episode %d: %w", ep, err)
			}
		}
	}
	best.Episodes = total - start
	return best, last, nil
}
