package core

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/primitives"
)

func TestSearchApproxFindsGoodConfiguration(t *testing.T) {
	net := models.MustBuild("mobilenet-v1")
	tab := profiled(t, net, primitives.ModeGPGPU)
	res, err := SearchApprox(tab, net, ApproxConfig{Config: Config{Episodes: 600, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Time, 0) || res.Time <= 0 {
		t.Fatalf("time = %v", res.Time)
	}
	// Validity: the reported time matches the assignment.
	if got := tab.TotalTime(res.Assignment); math.Abs(got-res.Time) > 1e-12 {
		t.Error("reported time inconsistent with assignment")
	}
	// Quality: far better than random search at the same budget, and
	// within striking distance of the exact optimum.
	rs := RandomSearch(tab, 600, 1)
	if res.Time >= rs.Time {
		t.Errorf("approx agent %.4g should beat random search %.4g", res.Time, rs.Time)
	}
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > 3*opt.Time {
		t.Errorf("approx agent %.4g more than 3x off the optimum %.4g", res.Time, opt.Time)
	}
}

func TestSearchApproxGeneralizesFromFewEpisodes(t *testing.T) {
	// The approximator's selling point: on a deep network a *small*
	// budget already yields a decent configuration because layer-kind
	// x library knowledge transfers across layers. Compare against
	// the tabular agent at the same tiny budget.
	net := models.MustBuild("resnet50")
	tab := profiled(t, net, primitives.ModeGPGPU)
	const budget = 80
	approx, err := SearchApprox(tab, net, ApproxConfig{Config: Config{Episodes: budget, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tabular := Search(tab, Config{Episodes: budget, Seed: 2})
	if approx.Time >= tabular.Time {
		t.Errorf("at %d episodes on resnet50, approx (%.4g) should beat tabular (%.4g)",
			budget, approx.Time, tabular.Time)
	}
}

func TestSearchApproxValidation(t *testing.T) {
	netA := models.MustBuild("lenet5")
	netB := models.MustBuild("alexnet")
	tab := profiled(t, netA, primitives.ModeCPU)
	if _, err := SearchApprox(tab, netB, ApproxConfig{Config: Config{Episodes: 10}}); err == nil {
		t.Error("network/table mismatch should error")
	}
}

func TestSearchApproxDeterministic(t *testing.T) {
	net := models.MustBuild("lenet5")
	tab := profiled(t, net, primitives.ModeGPGPU)
	a, err := SearchApprox(tab, net, ApproxConfig{Config: Config{Episodes: 150, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchApprox(tab, net, ApproxConfig{Config: Config{Episodes: 150, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Error("approx search should be seed-deterministic")
	}
}

func TestSearchApproxCurveInvariants(t *testing.T) {
	net := models.MustBuild("lenet5")
	tab := profiled(t, net, primitives.ModeGPGPU)
	res, err := SearchApprox(tab, net, ApproxConfig{Config: Config{Episodes: 200, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 200 {
		t.Fatalf("curve = %d points", len(res.Curve))
	}
	prev := math.Inf(1)
	for _, pt := range res.Curve {
		if pt.Best > prev+1e-15 {
			t.Fatal("best-so-far increased")
		}
		prev = pt.Best
	}
}
