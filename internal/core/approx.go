package core

import (
	"fmt"
	"math"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

// Linear function-approximation search — the paper's §VII direction
// toward value-function approximation. Instead of one Q-value per
// (layer, primitive, action) cell, the agent learns weights over
// features that generalize across layers: which library suits which
// layer kind, whether the action keeps the layout/processor of the
// previous layer, and where in the network it sits. On deep networks
// this needs far fewer episodes than the tabular agent to reach a
// good (if not always optimal) configuration.

// approxFeaturizer maps (step, previous primitive, action) to a
// sparse-ish feature vector.
type approxFeaturizer struct {
	net *nn.Network
	dim int
	// layout of the vector:
	//   [0]                          bias
	//   [1 + kind*numLibs + lib]     layer-kind x library indicator
	//   [kindLibBase + ...] etc.
	kindLibOff   int
	sameLayout   int
	sameProc     int
	gpuAction    int
	depthFrac    int
	depthGPU     int
	winogradPick int
}

const numLibs = 8

func newApproxFeaturizer(net *nn.Network) *approxFeaturizer {
	f := &approxFeaturizer{net: net}
	f.kindLibOff = 1
	nKinds := len(nn.AllOpKinds()) + 1 // + input kind slot
	base := f.kindLibOff + nKinds*numLibs
	f.sameLayout = base
	f.sameProc = base + 1
	f.gpuAction = base + 2
	f.depthFrac = base + 3
	f.depthGPU = base + 4
	f.winogradPick = base + 5
	f.dim = base + 6
	return f
}

// features fills buf (len dim) for taking `action` at layer `step`
// when layer step-1 used `prev`.
func (f *approxFeaturizer) features(step int, prev, action primitives.ID, buf []float64) []float64 {
	for i := range buf {
		buf[i] = 0
	}
	l := f.net.Layers[step]
	ap := primitives.ByID(action)
	pp := primitives.ByID(prev)
	buf[0] = 1
	buf[f.kindLibOff+int(l.Kind)*numLibs+int(ap.Lib)] = 1
	if ap.Layout == pp.Layout {
		buf[f.sameLayout] = 1
	}
	if ap.Proc == pp.Proc {
		buf[f.sameProc] = 1
	}
	if ap.Proc == primitives.GPU {
		buf[f.gpuAction] = 1
	}
	depth := float64(step) / float64(f.net.Len())
	buf[f.depthFrac] = depth
	if ap.Proc == primitives.GPU {
		buf[f.depthGPU] = depth
	}
	if ap.Algo == primitives.WinogradAlgo {
		buf[f.winogradPick] = 1
	}
	return buf
}

// ApproxConfig extends Config with approximator settings.
type ApproxConfig struct {
	Config
	// Alpha is the semi-gradient step size (default 0.01 — the
	// tabular α is too aggressive for shared weights).
	Alpha float64
}

// SearchApprox runs the ε-greedy episode walk with the linear
// approximator instead of the Q-table. The network is required because
// the features are built from layer kinds the LUT does not carry.
func SearchApprox(tab *lut.Table, net *nn.Network, cfg ApproxConfig) (*Result, error) {
	if tab.Network != net.Name {
		return nil, fmt.Errorf("core: table is for %q, network is %q", tab.Network, net.Name)
	}
	c := cfg.Config.withDefaults()
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.01
	}
	rng := newSearchRNG(c.Seed)
	L := tab.NumLayers()
	fz := newApproxFeaturizer(net)
	agent := qlearn.NewApprox(fz.dim)

	// Reward scale: normalize by the largest finite layer time so TD
	// targets stay O(1) regardless of network size.
	scale := 0.0
	for i := 1; i < L; i++ {
		for _, p := range tab.Candidates(i) {
			if v := tab.Time(i, p); !math.IsInf(v, 1) && v > scale {
				scale = v
			}
		}
	}
	if scale == 0 {
		scale = 1
	}

	phi := make([]float64, fz.dim)
	phiNext := make([]float64, fz.dim)
	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	best := &Result{Time: math.Inf(1), Episodes: c.Episodes}

	value := func(step int, prev, action primitives.ID) float64 {
		return agent.Value(fz.features(step, prev, action, phi))
	}

	for ep := 0; ep < c.Episodes; ep++ {
		eps := qlearn.EpsilonAt(c.Schedule, ep)
		for i := 1; i < L; i++ {
			prev := assignment[i-1]
			cands := tab.Candidates(i)
			var action primitives.ID
			if rng.Float64() < eps {
				action = cands[rng.Intn(len(cands))]
			} else {
				action = cands[0]
				bestV := value(i, prev, action)
				for _, cnd := range cands[1:] {
					if v := value(i, prev, cnd); v > bestV {
						action, bestV = cnd, v
					}
				}
			}
			assignment[i] = action
			reward := -tab.LayerCost(i, action, assignment) / scale

			// TD target with the successor's best value.
			target := reward
			if i+1 < L {
				nxt := math.Inf(-1)
				for _, cnd := range tab.Candidates(i + 1) {
					if v := agent.Value(fz.features(i+1, action, cnd, phiNext)); v > nxt {
						nxt = v
					}
				}
				target += c.Agent.Gamma * nxt
			}
			agent.Update(fz.features(i, prev, action, phi), target, alpha)
		}
		total := tab.TotalTime(assignment)
		if total < best.Time {
			best.Time = total
			best.Assignment = append([]primitives.ID(nil), assignment...)
		}
		best.Curve = append(best.Curve, EpisodePoint{Episode: ep, Epsilon: eps, Time: total, Best: best.Time})
	}
	return best, nil
}
