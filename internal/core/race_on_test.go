//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race, whose instrumentation allocates.
const raceEnabled = true
