package core

import (
	"errors"
	"testing"

	"repro/internal/models"
	"repro/internal/primitives"
)

// TestSearchCheckpointedStopEarly: a Save callback returning
// ErrStopEarly (the deadline-budget signal) stops the search at the
// snapshot boundary but still hands back the best-so-far result and a
// resumable snapshot — and resuming from that snapshot reproduces the
// uninterrupted run exactly. This is the contract the serving layer's
// deadline budgets lean on.
func TestSearchCheckpointedStopEarly(t *testing.T) {
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	cfg := Config{Episodes: 500, Seed: 7}
	const every = 90 // deliberately not a divisor of the budget

	full, _, err := SearchCheckpointed(tab, cfg, DurableOptions{Every: every})
	if err != nil {
		t.Fatal(err)
	}

	// Budget "expires" at the second snapshot boundary (episode 180).
	saves := 0
	best, snap, err := SearchCheckpointed(tab, cfg, DurableOptions{Every: every, Save: func(s *Snapshot) error {
		saves++
		if saves == 2 {
			return ErrStopEarly
		}
		return nil
	}})
	if !errors.Is(err, ErrStopEarly) {
		t.Fatalf("err = %v, want ErrStopEarly", err)
	}
	if best == nil || snap == nil {
		t.Fatal("early stop must still return best-so-far and a snapshot")
	}
	const boundary = 2 * every
	if best.Episodes != boundary {
		t.Errorf("best.Episodes = %d, want %d (episodes actually run)", best.Episodes, boundary)
	}
	if snap.Checkpoint.Episode != boundary {
		t.Errorf("snapshot at episode %d, want %d", snap.Checkpoint.Episode, boundary)
	}
	if len(best.Assignment) == 0 {
		t.Fatal("best-so-far has no assignment")
	}
	if best.Time <= 0 {
		t.Fatalf("best-so-far time %v", best.Time)
	}
	// The interrupted prefix can never beat the full run.
	if best.Time < full.Time {
		t.Errorf("prefix best %.9g beats uninterrupted %.9g", best.Time, full.Time)
	}

	// Resuming from the early-stop snapshot completes the budget and
	// lands exactly where the uninterrupted run did.
	resumed, fin, err := SearchCheckpointed(tab, cfg, DurableOptions{Every: every, From: snap})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Time != full.Time {
		t.Errorf("resumed best %.9g, uninterrupted %.9g", resumed.Time, full.Time)
	}
	for i := range full.Assignment {
		if resumed.Assignment[i] != full.Assignment[i] {
			t.Fatalf("assignment diverges at layer %d", i)
		}
	}
	if resumed.Episodes != cfg.Episodes-boundary {
		t.Errorf("resumed session ran %d episodes, want %d", resumed.Episodes, cfg.Episodes-boundary)
	}
	if fin.Checkpoint.Episode != cfg.Episodes {
		t.Errorf("final snapshot at episode %d, want %d", fin.Checkpoint.Episode, cfg.Episodes)
	}
}
