package core

import (
	"math"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

// SearchResumable runs the QS-DNN search starting from an optional
// checkpoint and returns both the result and a final checkpoint. The
// ε schedule is indexed by the *global* episode count, so a search
// split across sessions anneals exactly like a monolithic one. The
// RNG is re-seeded per call (cfg.Seed + the starting episode), so a
// resumed run is deterministic given the checkpoint and config,
// though not bit-identical to an unsplit run.
func SearchResumable(tab *lut.Table, cfg Config, from *qlearn.Checkpoint) (*Result, *qlearn.Checkpoint) {
	cfg = cfg.withDefaults()
	startEp := 0
	L := tab.NumLayers()
	var q *qlearn.Table
	var replay *qlearn.Replay
	if from != nil {
		startEp = from.Episode
		q = from.Table
		replay = from.Replay
		if replay == nil {
			replay = qlearn.NewReplay(cfg.Agent.ReplaySize)
		}
	} else {
		q = qlearn.NewTable(L, primitives.Count())
		replay = qlearn.NewReplay(cfg.Agent.ReplaySize)
	}
	rng := newSearchRNG(cfg.Seed + int64(startEp))

	allowed := make([][]int, L)
	for i := 1; i < L; i++ {
		ids := tab.Candidates(i)
		acts := make([]int, len(ids))
		for k, id := range ids {
			acts[k] = int(id)
		}
		allowed[i] = acts
	}

	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	best := &Result{Time: math.Inf(1)}

	endEp := startEp + cfg.Episodes
	for ep := startEp; ep < endEp; ep++ {
		eps := qlearn.EpsilonAt(cfg.Schedule, ep)
		traj := make([]qlearn.Transition, 0, L-1)
		for i := 1; i < L; i++ {
			prev := int(assignment[i-1])
			var action int
			if rng.Float64() < eps {
				action = allowed[i][rng.Intn(len(allowed[i]))]
			} else {
				action = q.Best(i-1, prev, allowed[i], rng)
			}
			assignment[i] = primitives.ID(action)
			var next []int
			if i+1 < L {
				next = allowed[i+1]
			}
			traj = append(traj, qlearn.Transition{
				Step: i - 1, Prim: prev, Action: action,
				Reward: -tab.LayerCost(i, assignment[i], assignment), NextAllowed: next,
			})
		}
		total := tab.TotalTime(assignment)
		q.UpdateEpisode(traj, cfg.Agent)
		if !cfg.DisableReplay {
			replay.Add(traj)
			replay.ReplayInto(q, cfg.Agent, cfg.ReplayUpdates, rng)
		}
		if total < best.Time {
			best.Time = total
			best.Assignment = append([]primitives.ID(nil), assignment...)
		}
		best.Curve = append(best.Curve, EpisodePoint{Episode: ep, Epsilon: eps, Time: total, Best: best.Time})
	}
	best.Episodes = cfg.Episodes
	return best, qlearn.Snapshot(q, replay, endEp)
}
