package core

import (
	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// SearchResumable runs the QS-DNN search starting from an optional
// checkpoint and returns both the result and a final checkpoint. The
// ε schedule is indexed by the *global* episode count, so a search
// split across sessions anneals exactly like a monolithic one. The
// RNG is re-seeded per call (cfg.Seed + the starting episode), so a
// resumed run is deterministic given the checkpoint and config,
// though not bit-identical to an unsplit run.
func SearchResumable(tab *lut.Table, cfg Config, from *qlearn.Checkpoint) (*Result, *qlearn.Checkpoint) {
	return SearchResumablePlanned(searchplan.Compile(tab), cfg, from)
}

// SearchResumablePlanned is SearchResumable over a pre-compiled plan;
// the durable checkpointing loop compiles once and reuses the plan
// across every chunk of a run.
func SearchResumablePlanned(p *searchplan.Plan, cfg Config, from *qlearn.Checkpoint) (*Result, *qlearn.Checkpoint) {
	cfg = cfg.withDefaults()
	// The resumable protocol always learns from the shaped per-layer
	// reward; a checkpoint carries no record of the ablation variants,
	// so the flag is ignored here (as it always was).
	cfg.DisableShaping = false
	startEp := 0
	L := p.NumLayers()
	var q *qlearn.Table
	var replay *qlearn.Replay
	if from != nil {
		startEp = from.Episode
		q = from.Table
		replay = from.Replay
		if replay == nil {
			replay = qlearn.NewReplay(cfg.Agent.ReplaySize)
		}
	} else {
		q = qlearn.NewTable(L, primitives.Count())
		replay = qlearn.NewReplay(cfg.Agent.ReplaySize)
	}
	rng := newSearchRNG(cfg.Seed + int64(startEp))
	e := newEpisodeEngine(p, cfg, q, replay, rng)

	curve := make([]EpisodePoint, 0, cfg.Episodes)
	endEp := startEp + cfg.Episodes
	for ep := startEp; ep < endEp; ep++ {
		eps := qlearn.EpsilonAt(cfg.Schedule, ep)
		total := e.runEpisode(eps)
		curve = append(curve, EpisodePoint{Episode: ep, Epsilon: eps, Time: total, Best: e.bestTime})
	}
	best := &Result{
		Assignment: e.bestCopy(),
		Time:       e.bestTime,
		Episodes:   cfg.Episodes,
		Curve:      curve,
	}
	return best, qlearn.Snapshot(q, replay, endEp)
}
