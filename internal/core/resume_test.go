package core

import (
	"testing"

	"repro/internal/models"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

func TestResumableSearchContinuesSchedule(t *testing.T) {
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	schedule := qlearn.PaperSchedule(1000)

	// Part 1: episodes 0..499 (full exploration).
	part1, ckpt := SearchResumable(tab, Config{Episodes: 500, Schedule: schedule, Seed: 1}, nil)
	if ckpt.Episode != 500 {
		t.Fatalf("checkpoint episode = %d", ckpt.Episode)
	}
	for _, pt := range part1.Curve {
		if pt.Epsilon != 1 {
			t.Fatalf("episode %d epsilon %v during exploration half", pt.Episode, pt.Epsilon)
		}
	}

	// Part 2: episodes 500..999 resume the annealing exactly.
	part2, ckpt2 := SearchResumable(tab, Config{Episodes: 500, Schedule: schedule, Seed: 1}, ckpt)
	if ckpt2.Episode != 1000 {
		t.Fatalf("final checkpoint episode = %d", ckpt2.Episode)
	}
	if part2.Curve[0].Epsilon != 0.9 {
		t.Errorf("resumed first epsilon = %v, want 0.9", part2.Curve[0].Epsilon)
	}
	if part2.Curve[len(part2.Curve)-1].Epsilon != 0 {
		t.Error("resumed search should end at full exploitation")
	}

	// The resumed half exploits the carried Q-knowledge: its best must
	// match a monolithic 1000-episode search's quality closely.
	mono := Search(tab, Config{Episodes: 1000, Seed: 1})
	if part2.Time > mono.Time*1.02 {
		t.Errorf("split search %.6g more than 2%% worse than monolithic %.6g", part2.Time, mono.Time)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	_, ckpt := SearchResumable(tab, Config{Episodes: 200, Seed: 3}, nil)
	data, err := ckpt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := qlearn.LoadCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Episode != ckpt.Episode {
		t.Errorf("episode %d != %d", back.Episode, ckpt.Episode)
	}
	// Resuming from the loaded checkpoint must equal resuming from the
	// original (same RNG derivation, same state).
	a, _ := SearchResumable(tab, Config{Episodes: 200, Seed: 3}, ckpt)
	b, _ := SearchResumable(tab, Config{Episodes: 200, Seed: 3}, back)
	if a.Time != b.Time {
		t.Errorf("resume from serialized checkpoint differs: %.9g vs %.9g", b.Time, a.Time)
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	if _, err := qlearn.LoadCheckpoint([]byte("{")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := qlearn.LoadCheckpoint([]byte(`{"steps":0,"prims":3}`)); err == nil {
		t.Error("bad dims should fail")
	}
	if _, err := qlearn.LoadCheckpoint([]byte(`{"steps":2,"prims":2,"q":[1]}`)); err == nil {
		t.Error("short Q should fail")
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	q := qlearn.NewTable(2, 2)
	q.Set(0, 0, 1, 5)
	ck := qlearn.Snapshot(q, nil, 7)
	q.Set(0, 0, 1, 9)
	if got := ck.Table.Get(0, 0, 1); got != 5 {
		t.Errorf("snapshot mutated: %v", got)
	}
	if ck.Episode != 7 {
		t.Errorf("episode %d, want 7", ck.Episode)
	}
}
