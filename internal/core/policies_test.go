package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

func TestEpsilonGreedyPolicyMatchesSearch(t *testing.T) {
	// SearchWithPolicy with the paper's ε-greedy must reproduce Search
	// exactly (same RNG consumption pattern, same updates).
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	cfg := Config{Episodes: 300, Seed: 9}
	direct := Search(tab, cfg)
	viaPolicy := SearchWithPolicy(tab, cfg, nil)
	if direct.Time != viaPolicy.Time {
		t.Errorf("policy search %.6g != direct search %.6g", viaPolicy.Time, direct.Time)
	}
}

func TestBoltzmannPolicyFindsGoodSolutions(t *testing.T) {
	tab := profiled(t, models.MustBuild("mobilenet-v1"), primitives.ModeGPGPU)
	cfg := Config{Episodes: 700, Seed: 1}
	res := SearchWithPolicy(tab, cfg, &Boltzmann{Start: 1.0, End: 0.01, Episodes: 700})
	if math.IsInf(res.Time, 0) || res.Time <= 0 {
		t.Fatalf("boltzmann time %v", res.Time)
	}
	// Must beat random search and stay within 2x of the optimum.
	rs := RandomSearch(tab, 700, 1)
	if res.Time >= rs.Time {
		t.Errorf("boltzmann %.4g should beat random %.4g", res.Time, rs.Time)
	}
	opt, err := Optimal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > 2*opt.Time {
		t.Errorf("boltzmann %.4g more than 2x off optimum %.4g", res.Time, opt.Time)
	}
}

func TestBoltzmannTemperatureAnneals(t *testing.T) {
	p := &Boltzmann{Start: 1, End: 0.01, Episodes: 100}
	if got := p.temperature(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("t(0) = %v", got)
	}
	if got := p.temperature(99); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("t(end) = %v", got)
	}
	if p.temperature(50) <= p.temperature(49+50) || p.temperature(10) >= p.temperature(0) {
		t.Error("temperature should decrease monotonically")
	}
	// Past the horizon: clamped to End.
	if got := p.temperature(500); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("t(past) = %v", got)
	}
	one := &Boltzmann{Start: 1, End: 0.5, Episodes: 1}
	if one.temperature(0) != 0.5 {
		t.Error("single-episode horizon should use End")
	}
}

func TestBoltzmannSamplesProportionally(t *testing.T) {
	q := qlearn.NewTable(1, 3)
	q.Set(0, 0, 0, 1.0)
	q.Set(0, 0, 1, 0.0)
	q.Set(0, 0, 2, -1.0)
	p := &Boltzmann{Start: 0.5, End: 0.5, Episodes: 10}
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[p.Select(q, 0, 0, []int{0, 1, 2}, 0, rng)]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("sampling not ordered by Q: %v", counts)
	}
	if counts[2] == 0 {
		t.Error("low-Q action should still be explored at T=0.5")
	}
}

func TestSearchEnsemble(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	stats, err := SearchEnsemble(tab, Config{Episodes: 200, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Times) != 5 {
		t.Fatalf("times = %d", len(stats.Times))
	}
	// Sorted ascending, best equals the minimum, mean >= best.
	for i := 1; i < 5; i++ {
		if stats.Times[i] < stats.Times[i-1] {
			t.Fatal("times not sorted")
		}
	}
	if stats.Best.Time != stats.Times[0] {
		t.Errorf("best %.6g != min %.6g", stats.Best.Time, stats.Times[0])
	}
	if stats.Mean < stats.Best.Time {
		t.Error("mean below best")
	}
	if stats.Std < 0 {
		t.Error("negative std")
	}
	if _, err := SearchEnsemble(tab, Config{Episodes: 10}, 0); err == nil {
		t.Error("zero ensemble should error")
	}
}

func TestSearchEnsembleDeterministic(t *testing.T) {
	tab := profiled(t, smallChain(t), primitives.ModeGPGPU)
	a, err := SearchEnsemble(tab, Config{Episodes: 150, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchEnsemble(tab, Config{Episodes: 150, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatal("ensemble should be deterministic despite concurrency")
		}
	}
}
