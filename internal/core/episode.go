package core

// The zero-allocation episode engine: all per-run state of the QS-DNN
// episode loop lives in one struct whose buffers are allocated once
// and reused by every episode — the reusable trajectory slab (Step and
// NextAllowed are fixed per position and pre-filled; only Prim, Action
// and Reward are rewritten), the assignment in both primitive-ID and
// candidate-position form, and the best-so-far copy. After the replay
// buffer's one-time slab allocation, a steady-state episode performs
// zero heap allocations (pinned by TestSearchEpisodeZeroAlloc).
//
// The engine preserves the exact RNG draw order and floating-point
// operation order of the original lut.Table walk, so every search
// result is byte-identical to the pre-plan implementation (pinned by
// the golden tests).

import (
	"math"
	"math/rand"

	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// episodeEngine runs QS-DNN episodes over a compiled plan.
type episodeEngine struct {
	plan   *searchplan.Plan
	cfg    Config
	rng    *rand.Rand
	q      *qlearn.Table
	replay *qlearn.Replay

	// assignment/apos are the current episode's configuration, as
	// primitive IDs and as candidate positions.
	assignment []primitives.ID
	apos       []int32
	// traj is the reusable trajectory slab.
	traj []qlearn.Transition

	// bestTime/bestAssign track the best configuration so far;
	// haveBest distinguishes "no episode yet" from a real best.
	bestTime   float64
	bestAssign []primitives.ID
	haveBest   bool
}

// newEpisodeEngine allocates every per-run buffer. cfg must already
// have its defaults applied.
func newEpisodeEngine(p *searchplan.Plan, cfg Config, q *qlearn.Table, replay *qlearn.Replay, rng *rand.Rand) *episodeEngine {
	L := p.NumLayers()
	e := &episodeEngine{
		plan: p, cfg: cfg, rng: rng, q: q, replay: replay,
		assignment: make([]primitives.ID, L),
		apos:       make([]int32, L),
		bestAssign: make([]primitives.ID, L),
		bestTime:   math.Inf(1),
	}
	e.assignment[0] = p.Candidates(0)[0]
	if L > 1 {
		e.traj = make([]qlearn.Transition, L-1)
		for k := range e.traj {
			e.traj[k].Step = k
			if k+2 < L {
				e.traj[k].NextAllowed = p.Allowed(k + 2)
			}
		}
	}
	// Shape the Q-table for the plan's per-step action vocabularies so
	// the Bellman scans run over contiguous row prefixes. A table whose
	// dimensions cannot hold the plan's actions (possible only with a
	// foreign checkpoint) stays unshaped; the search then behaves — and
	// fails — exactly like the unshaped implementation.
	if q.Steps() == L {
		vocab := make([][]int, L)
		for s := 0; s+1 < L; s++ {
			vocab[s] = p.Allowed(s + 1)
		}
		//nolint:errcheck // best-effort: unshaped tables stay correct
		_ = q.Shape(vocab)
	}
	return e
}

// seedBest primes the best-so-far with a configuration carried over
// from a resumed snapshot.
func (e *episodeEngine) seedBest(assignment []primitives.ID, time float64) {
	copy(e.bestAssign, assignment)
	e.bestTime = time
	e.haveBest = true
}

// bestCopy returns a fresh copy of the best assignment (nil when no
// episode has completed).
func (e *episodeEngine) bestCopy() []primitives.ID {
	if !e.haveBest {
		return nil
	}
	return append([]primitives.ID(nil), e.bestAssign...)
}

// runEpisode walks the network once under exploration rate eps,
// updates the agent (Bellman pass plus experience replay) and returns
// the episode's total inference time. It allocates nothing.
func (e *episodeEngine) runEpisode(eps float64) float64 {
	p := e.plan
	rng := e.rng
	L := p.NumLayers()
	for i := 1; i < L; i++ {
		prev := int(e.assignment[i-1])
		allowed := p.Allowed(i)
		var action int
		var cpos int32
		if rng.Float64() < eps {
			k := rng.Intn(len(allowed))
			action = allowed[k]
			cpos = int32(k)
		} else {
			action = e.q.Best(i-1, prev, allowed, rng)
			cpos = p.Pos(i, primitives.ID(action))
		}
		e.assignment[i] = primitives.ID(action)
		e.apos[i] = cpos

		var reward float64
		if !e.cfg.DisableShaping {
			reward = -p.LayerCostPos(i, int(cpos), e.apos)
		}
		tr := &e.traj[i-1]
		tr.Prim = prev
		tr.Action = action
		tr.Reward = reward
	}
	total := p.TotalTimePos(e.apos)
	if e.cfg.DisableShaping {
		// Single terminal reward carrying the whole signal.
		e.traj[len(e.traj)-1].Reward = -total
	}

	e.q.UpdateEpisode(e.traj, e.cfg.Agent)
	if !e.cfg.DisableReplay {
		e.replay.Add(e.traj)
		e.replay.ReplayInto(e.q, e.cfg.Agent, e.cfg.ReplayUpdates, rng)
	}

	if total < e.bestTime {
		e.bestTime = total
		copy(e.bestAssign, e.assignment)
		e.haveBest = true
	}
	return total
}
