// Package core implements the paper's primary contribution: QS-DNN,
// the Q-learning-based search (Algorithm 1) that walks a profiled
// network layer by layer choosing one primitive per layer, learning to
// accept locally slower primitives when that avoids layout-conversion
// or processor-transfer penalties downstream. The package also
// provides the comparators used in the evaluation: Random Search, the
// per-layer Greedy strategy (the "red path" of Fig. 1), exhaustive
// enumeration, the exact Viterbi optimum for chain networks (the
// PBQP-style formulation of Anderson & Gregg restricted to chains),
// and single-library substitution (the Best-Single-Library rows of
// Table II).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/qlearn"
	"repro/internal/searchplan"
)

// Config controls a QS-DNN search run. Zero values are replaced by the
// paper's settings.
type Config struct {
	// Episodes is the episode budget (paper: 1000).
	Episodes int
	// Agent holds α, γ and the replay capacity (paper: 0.05/0.9/128).
	Agent qlearn.Config
	// Schedule is the ε schedule; nil selects PaperSchedule(Episodes).
	Schedule []qlearn.Phase
	// Seed drives all stochastic choices; searches are reproducible.
	Seed int64
	// DisableReplay turns experience replay off (ablation).
	DisableReplay bool
	// DisableShaping replaces the per-layer shaped reward with a
	// single terminal reward equal to the negated total inference
	// time (ablation; the paper reports shaping converges better).
	DisableShaping bool
	// ReplayUpdates is the number of stored episodes re-applied after
	// each episode; 0 selects the replay buffer size.
	ReplayUpdates int
}

// withDefaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.Episodes == 0 {
		c.Episodes = 1000
	}
	// BatchedReplay is a pure replay-ordering switch, not a
	// hyper-parameter: setting it alone still gets the paper's α/γ/size.
	if c.Agent == (qlearn.Config{BatchedReplay: c.Agent.BatchedReplay}) {
		batched := c.Agent.BatchedReplay
		c.Agent = qlearn.PaperConfig()
		c.Agent.BatchedReplay = batched
	}
	if c.Schedule == nil {
		c.Schedule = qlearn.PaperSchedule(c.Episodes)
	}
	if c.ReplayUpdates == 0 {
		c.ReplayUpdates = c.Agent.ReplaySize
	}
	return c
}

// EpisodePoint records one episode of a search for learning-curve
// reproduction (Fig. 4).
type EpisodePoint struct {
	// Episode is the zero-based episode index.
	Episode int
	// Epsilon is the exploration rate in force.
	Epsilon float64
	// Time is the inference time of the configuration sampled in this
	// episode (seconds).
	Time float64
	// Best is the best inference time found up to and including this
	// episode.
	Best float64
}

// Result is the outcome of a search.
type Result struct {
	// Assignment maps each layer index to the chosen primitive
	// (index 0 is the input pseudo-primitive).
	Assignment []primitives.ID
	// Time is the total inference time of Assignment (seconds).
	Time float64
	// Episodes is the number of full configurations evaluated.
	Episodes int
	// Curve holds one point per episode (nil for non-episodic
	// searches such as Greedy or the DP optimum).
	Curve []EpisodePoint
}

// newSearchRNG builds the deterministic RNG all searches use.
func newSearchRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Search runs QS-DNN (Algorithm 1) over a profiled look-up table. It
// compiles the table into an evaluation plan first; callers that run
// many searches over one table (the batch runner, ensembles) compile
// once and use SearchPlanned directly.
func Search(tab *lut.Table, cfg Config) *Result {
	return SearchPlanned(searchplan.Compile(tab), cfg)
}

// SearchPlanned runs QS-DNN over a pre-compiled plan. The plan is
// read-only here, so any number of searches may share one plan
// concurrently.
func SearchPlanned(p *searchplan.Plan, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := newSearchRNG(cfg.Seed)
	q := qlearn.NewTable(p.NumLayers(), primitives.Count())
	replay := qlearn.NewReplay(cfg.Agent.ReplaySize)
	e := newEpisodeEngine(p, cfg, q, replay, rng)

	curve := make([]EpisodePoint, 0, cfg.Episodes)
	for ep := 0; ep < cfg.Episodes; ep++ {
		eps := qlearn.EpsilonAt(cfg.Schedule, ep)
		total := e.runEpisode(eps)
		curve = append(curve, EpisodePoint{Episode: ep, Epsilon: eps, Time: total, Best: e.bestTime})
	}
	return &Result{
		Assignment: e.bestCopy(),
		Time:       e.bestTime,
		Episodes:   cfg.Episodes,
		Curve:      curve,
	}
}

// RandomSearch evaluates the given number of uniformly random
// configurations — the RS baseline of §VI-B.
func RandomSearch(tab *lut.Table, episodes int, seed int64) *Result {
	return RandomSearchPlanned(searchplan.Compile(tab), episodes, seed)
}

// RandomSearchPlanned is RandomSearch over a pre-compiled plan. A
// uniform draw over candidates *is* a uniform draw over candidate
// positions, so the whole loop runs on positions and converts the
// winner to primitive IDs once at the end.
func RandomSearchPlanned(p *searchplan.Plan, episodes int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	L := p.NumLayers()
	apos := make([]int32, L)
	bestApos := make([]int32, L)
	haveBest := false
	best := &Result{Time: math.Inf(1), Episodes: episodes}
	best.Curve = make([]EpisodePoint, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		for i := 1; i < L; i++ {
			apos[i] = int32(rng.Intn(p.NumCandidates(i)))
		}
		total := p.TotalTimePos(apos)
		if total < best.Time {
			best.Time = total
			copy(bestApos, apos)
			haveBest = true
		}
		best.Curve = append(best.Curve, EpisodePoint{
			Episode: ep, Epsilon: 1, Time: total, Best: best.Time,
		})
	}
	if haveBest {
		best.Assignment = p.AssignmentIDs(bestApos, nil)
	}
	return best
}

// Greedy picks, for every layer independently, the primitive with the
// lowest isolated execution time, ignoring all compatibility
// penalties — the locally-optimal "red path" of the paper's Fig. 1
// that the RL agent learns to avoid.
func Greedy(tab *lut.Table) *Result {
	return GreedyPlanned(searchplan.Compile(tab))
}

// GreedyPlanned is Greedy over a pre-compiled plan.
func GreedyPlanned(p *searchplan.Plan) *Result {
	L := p.NumLayers()
	apos := make([]int32, L)
	for i := 1; i < L; i++ {
		bestC := 0
		bestT := p.TimePos(i, 0)
		for c := 1; c < p.NumCandidates(i); c++ {
			if t := p.TimePos(i, c); t < bestT {
				bestC, bestT = c, t
			}
		}
		apos[i] = int32(bestC)
	}
	return &Result{Assignment: p.AssignmentIDs(apos, nil), Time: p.TotalTimePos(apos), Episodes: 1}
}

// Optimal computes the exact minimum-time assignment for chain
// networks with Viterbi dynamic programming over (layer, primitive)
// states. It returns an error for non-chain tables (an edge whose
// producer is not the sequential predecessor), where the chain DP is
// not exact.
func Optimal(tab *lut.Table) (*Result, error) {
	return OptimalPlanned(searchplan.Compile(tab))
}

// OptimalPlanned is Optimal over a pre-compiled plan: the DP runs on
// dense candidate-position vectors instead of maps, so cost ties now
// break deterministically toward the earlier candidate (the map
// version broke them by iteration order); the optimal cost itself is
// unchanged.
func OptimalPlanned(p *searchplan.Plan) (*Result, error) {
	L := p.NumLayers()
	edgeInto := make([]int, L)
	for i := range edgeInto {
		edgeInto[i] = -1
	}
	for k, e := range p.Edges() {
		if e.From != e.To-1 {
			return nil, fmt.Errorf("core: Optimal requires a chain network, found edge %d->%d", e.From, e.To)
		}
		if edgeInto[e.To] < 0 {
			edgeInto[e.To] = k
		}
	}
	prevCost := []float64{0}
	// back[i][c] is the best predecessor position for layer i at c.
	back := make([][]int32, L)
	for i := 1; i < L; i++ {
		nc := p.NumCandidates(i)
		cur := make([]float64, nc)
		back[i] = make([]int32, nc)
		for c := 0; c < nc; c++ {
			bestCost := math.Inf(1)
			bestPrev := int32(-1)
			for q := range prevCost {
				cost := prevCost[q] + p.TimePos(i, c) + p.PenaltyPos(edgeInto[i], q, c)
				if cost < bestCost {
					bestCost, bestPrev = cost, int32(q)
				}
			}
			if i == p.OutputLayer() {
				bestCost += p.OutputPenaltyPos(c)
			}
			cur[c] = bestCost
			back[i][c] = bestPrev
		}
		prevCost = cur
	}
	bestCost := math.Inf(1)
	bestLast := int32(-1)
	for c, v := range prevCost {
		if v < bestCost {
			bestCost, bestLast = v, int32(c)
		}
	}
	apos := make([]int32, L)
	apos[L-1] = bestLast
	for i := L - 1; i >= 1; i-- {
		apos[i-1] = back[i][apos[i]]
	}
	return &Result{Assignment: p.AssignmentIDs(apos, nil), Time: p.TotalTimePos(apos), Episodes: 1}, nil
}

// Exhaustive enumerates every configuration and returns the true
// optimum. It refuses design spaces larger than maxConfigs to keep
// runtimes bounded; it exists to certify the other searches on small
// networks.
func Exhaustive(tab *lut.Table, maxConfigs float64) (*Result, error) {
	return ExhaustivePlanned(searchplan.Compile(tab), maxConfigs)
}

// ExhaustivePlanned is Exhaustive over a pre-compiled plan. The walk
// enumerates candidate positions in the same order the table walk
// enumerated candidate IDs, so the found optimum is identical.
func ExhaustivePlanned(p *searchplan.Plan, maxConfigs float64) (*Result, error) {
	L := p.NumLayers()
	space := 1.0
	for i := 1; i < L; i++ {
		space *= float64(p.NumCandidates(i))
	}
	if space > maxConfigs {
		return nil, fmt.Errorf("core: design space %.3g exceeds cap %.3g", space, maxConfigs)
	}
	apos := make([]int32, L)
	bestApos := make([]int32, L)
	haveBest := false
	best := &Result{Time: math.Inf(1)}
	count := 0
	var walk func(i int)
	walk = func(i int) {
		if i == L {
			count++
			if total := p.TotalTimePos(apos); total < best.Time {
				best.Time = total
				copy(bestApos, apos)
				haveBest = true
			}
			return
		}
		for c := 0; c < p.NumCandidates(i); c++ {
			apos[i] = int32(c)
			walk(i + 1)
		}
	}
	walk(1)
	best.Episodes = count
	if haveBest {
		best.Assignment = p.AssignmentIDs(bestApos, nil)
	}
	return best, nil
}

// SingleLibrary builds the whole-library substitution the profiling
// phase benchmarks: every layer uses lib's primitive where the library
// supports the layer and Vanilla elsewhere. This is how the per-library
// columns and the Best Single Library (BSL) row of Table II are formed.
func SingleLibrary(tab *lut.Table, lib primitives.Library) *Result {
	L := tab.NumLayers()
	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	for i := 1; i < L; i++ {
		pick := primitives.ID(-1)
		for _, id := range tab.Candidates(i) {
			if primitives.ByID(id).Lib == lib {
				pick = id
				break
			}
		}
		if pick < 0 {
			pick = primitives.PVanilla.Idx
		}
		assignment[i] = pick
	}
	return &Result{Assignment: assignment, Time: tab.TotalTime(assignment), Episodes: 1}
}

// BestSingleLibrary returns the fastest whole-library substitution and
// which library achieved it, over the libraries available in the
// table's mode.
func BestSingleLibrary(tab *lut.Table) (primitives.Library, *Result) {
	bestLib := primitives.Vanilla
	var best *Result
	for _, lib := range primitives.AllLibraries() {
		r := SingleLibrary(tab, lib)
		if best == nil || r.Time < best.Time {
			best, bestLib = r, lib
		}
	}
	return bestLib, best
}

// VanillaTime returns the all-Vanilla inference time — the
// dependency-free baseline every Table II speedup is measured against.
func VanillaTime(tab *lut.Table) float64 {
	return SingleLibrary(tab, primitives.Vanilla).Time
}
