// Package core implements the paper's primary contribution: QS-DNN,
// the Q-learning-based search (Algorithm 1) that walks a profiled
// network layer by layer choosing one primitive per layer, learning to
// accept locally slower primitives when that avoids layout-conversion
// or processor-transfer penalties downstream. The package also
// provides the comparators used in the evaluation: Random Search, the
// per-layer Greedy strategy (the "red path" of Fig. 1), exhaustive
// enumeration, the exact Viterbi optimum for chain networks (the
// PBQP-style formulation of Anderson & Gregg restricted to chains),
// and single-library substitution (the Best-Single-Library rows of
// Table II).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

// Config controls a QS-DNN search run. Zero values are replaced by the
// paper's settings.
type Config struct {
	// Episodes is the episode budget (paper: 1000).
	Episodes int
	// Agent holds α, γ and the replay capacity (paper: 0.05/0.9/128).
	Agent qlearn.Config
	// Schedule is the ε schedule; nil selects PaperSchedule(Episodes).
	Schedule []qlearn.Phase
	// Seed drives all stochastic choices; searches are reproducible.
	Seed int64
	// DisableReplay turns experience replay off (ablation).
	DisableReplay bool
	// DisableShaping replaces the per-layer shaped reward with a
	// single terminal reward equal to the negated total inference
	// time (ablation; the paper reports shaping converges better).
	DisableShaping bool
	// ReplayUpdates is the number of stored episodes re-applied after
	// each episode; 0 selects the replay buffer size.
	ReplayUpdates int
}

// withDefaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.Episodes == 0 {
		c.Episodes = 1000
	}
	if c.Agent == (qlearn.Config{}) {
		c.Agent = qlearn.PaperConfig()
	}
	if c.Schedule == nil {
		c.Schedule = qlearn.PaperSchedule(c.Episodes)
	}
	if c.ReplayUpdates == 0 {
		c.ReplayUpdates = c.Agent.ReplaySize
	}
	return c
}

// EpisodePoint records one episode of a search for learning-curve
// reproduction (Fig. 4).
type EpisodePoint struct {
	// Episode is the zero-based episode index.
	Episode int
	// Epsilon is the exploration rate in force.
	Epsilon float64
	// Time is the inference time of the configuration sampled in this
	// episode (seconds).
	Time float64
	// Best is the best inference time found up to and including this
	// episode.
	Best float64
}

// Result is the outcome of a search.
type Result struct {
	// Assignment maps each layer index to the chosen primitive
	// (index 0 is the input pseudo-primitive).
	Assignment []primitives.ID
	// Time is the total inference time of Assignment (seconds).
	Time float64
	// Episodes is the number of full configurations evaluated.
	Episodes int
	// Curve holds one point per episode (nil for non-episodic
	// searches such as Greedy or the DP optimum).
	Curve []EpisodePoint
}

// newSearchRNG builds the deterministic RNG all searches use.
func newSearchRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Search runs QS-DNN (Algorithm 1) over a profiled look-up table.
func Search(tab *lut.Table, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := newSearchRNG(cfg.Seed)
	L := tab.NumLayers()
	q := qlearn.NewTable(L, primitives.Count())
	replay := qlearn.NewReplay(cfg.Agent.ReplaySize)

	// Allowed actions per step, as plain ints for the Q-table.
	allowed := make([][]int, L)
	for i := 1; i < L; i++ {
		ids := tab.Candidates(i)
		acts := make([]int, len(ids))
		for k, id := range ids {
			acts[k] = int(id)
		}
		allowed[i] = acts
	}

	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	best := &Result{Time: math.Inf(1)}
	curve := make([]EpisodePoint, 0, cfg.Episodes)

	for ep := 0; ep < cfg.Episodes; ep++ {
		eps := qlearn.EpsilonAt(cfg.Schedule, ep)

		// Reset path; walk the network sequentially (Algorithm 1).
		traj := make([]qlearn.Transition, 0, L-1)
		for i := 1; i < L; i++ {
			prev := int(assignment[i-1])
			var action int
			if rng.Float64() < eps {
				action = allowed[i][rng.Intn(len(allowed[i]))]
			} else {
				action = q.Best(i-1, prev, allowed[i], rng)
			}
			assignment[i] = primitives.ID(action)

			// Check for incompatibility and compute the layer's
			// inference time: the shaped reward is the negated layer
			// cost including every incoming penalty (and the
			// host-return cost at the output layer).
			var reward float64
			if !cfg.DisableShaping {
				reward = -tab.LayerCost(i, assignment[i], assignment)
			}
			var next []int
			if i+1 < L {
				next = allowed[i+1]
			}
			traj = append(traj, qlearn.Transition{
				Step: i - 1, Prim: prev, Action: action,
				Reward: reward, NextAllowed: next,
			})
		}
		total := tab.TotalTime(assignment)
		if cfg.DisableShaping {
			// Single terminal reward carrying the whole signal.
			traj[len(traj)-1].Reward = -total
		}

		// Update the action-value function and replay experience.
		q.UpdateEpisode(traj, cfg.Agent)
		if !cfg.DisableReplay {
			replay.Add(traj)
			replay.ReplayInto(q, cfg.Agent, cfg.ReplayUpdates, rng)
		}

		if total < best.Time {
			best.Time = total
			best.Assignment = append([]primitives.ID(nil), assignment...)
		}
		curve = append(curve, EpisodePoint{Episode: ep, Epsilon: eps, Time: total, Best: best.Time})
	}
	best.Episodes = cfg.Episodes
	best.Curve = curve
	return best
}

// RandomSearch evaluates the given number of uniformly random
// configurations — the RS baseline of §VI-B.
func RandomSearch(tab *lut.Table, episodes int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	L := tab.NumLayers()
	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	best := &Result{Time: math.Inf(1), Episodes: episodes}
	for ep := 0; ep < episodes; ep++ {
		for i := 1; i < L; i++ {
			c := tab.Candidates(i)
			assignment[i] = c[rng.Intn(len(c))]
		}
		total := tab.TotalTime(assignment)
		if total < best.Time {
			best.Time = total
			best.Assignment = append([]primitives.ID(nil), assignment...)
		}
		best.Curve = append(best.Curve, EpisodePoint{
			Episode: ep, Epsilon: 1, Time: total, Best: best.Time,
		})
	}
	return best
}

// Greedy picks, for every layer independently, the primitive with the
// lowest isolated execution time, ignoring all compatibility
// penalties — the locally-optimal "red path" of the paper's Fig. 1
// that the RL agent learns to avoid.
func Greedy(tab *lut.Table) *Result {
	L := tab.NumLayers()
	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	for i := 1; i < L; i++ {
		best := tab.Candidates(i)[0]
		for _, p := range tab.Candidates(i)[1:] {
			if tab.Time(i, p) < tab.Time(i, best) {
				best = p
			}
		}
		assignment[i] = best
	}
	return &Result{Assignment: assignment, Time: tab.TotalTime(assignment), Episodes: 1}
}

// Optimal computes the exact minimum-time assignment for chain
// networks with Viterbi dynamic programming over (layer, primitive)
// states. It returns an error for non-chain tables (an edge whose
// producer is not the sequential predecessor), where the chain DP is
// not exact.
func Optimal(tab *lut.Table) (*Result, error) {
	L := tab.NumLayers()
	for _, e := range tab.Edges() {
		if e.From != e.To-1 {
			return nil, fmt.Errorf("core: Optimal requires a chain network, found edge %d->%d", e.From, e.To)
		}
	}
	type cell struct {
		cost float64
		prev int
	}
	prev := map[primitives.ID]cell{tab.Candidates(0)[0]: {cost: 0, prev: -1}}
	// back[i][p] is the best predecessor primitive for layer i at p.
	back := make([]map[primitives.ID]primitives.ID, L)
	for i := 1; i < L; i++ {
		cur := make(map[primitives.ID]cell, len(tab.Candidates(i)))
		back[i] = make(map[primitives.ID]primitives.ID)
		for _, p := range tab.Candidates(i) {
			bestCost := math.Inf(1)
			var bestPrev primitives.ID = -1
			for q, pc := range prev {
				c := pc.cost + tab.Time(i, p) + tab.Penalty(i-1, i, q, p)
				if c < bestCost {
					bestCost, bestPrev = c, q
				}
			}
			if i == tab.OutputLayer() {
				bestCost += tab.OutputPenalty(p)
			}
			cur[p] = cell{cost: bestCost}
			back[i][p] = bestPrev
		}
		prev = cur
	}
	bestCost := math.Inf(1)
	var bestLast primitives.ID = -1
	for p, c := range prev {
		if c.cost < bestCost {
			bestCost, bestLast = c.cost, p
		}
	}
	assignment := make([]primitives.ID, L)
	assignment[L-1] = bestLast
	for i := L - 1; i >= 1; i-- {
		assignment[i-1] = back[i][assignment[i]]
	}
	return &Result{Assignment: assignment, Time: tab.TotalTime(assignment), Episodes: 1}, nil
}

// Exhaustive enumerates every configuration and returns the true
// optimum. It refuses design spaces larger than maxConfigs to keep
// runtimes bounded; it exists to certify the other searches on small
// networks.
func Exhaustive(tab *lut.Table, maxConfigs float64) (*Result, error) {
	L := tab.NumLayers()
	space := 1.0
	for i := 1; i < L; i++ {
		space *= float64(len(tab.Candidates(i)))
	}
	if space > maxConfigs {
		return nil, fmt.Errorf("core: design space %.3g exceeds cap %.3g", space, maxConfigs)
	}
	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	best := &Result{Time: math.Inf(1)}
	count := 0
	var walk func(i int)
	walk = func(i int) {
		if i == L {
			count++
			if total := tab.TotalTime(assignment); total < best.Time {
				best.Time = total
				best.Assignment = append([]primitives.ID(nil), assignment...)
			}
			return
		}
		for _, p := range tab.Candidates(i) {
			assignment[i] = p
			walk(i + 1)
		}
	}
	walk(1)
	best.Episodes = count
	return best, nil
}

// SingleLibrary builds the whole-library substitution the profiling
// phase benchmarks: every layer uses lib's primitive where the library
// supports the layer and Vanilla elsewhere. This is how the per-library
// columns and the Best Single Library (BSL) row of Table II are formed.
func SingleLibrary(tab *lut.Table, lib primitives.Library) *Result {
	L := tab.NumLayers()
	assignment := make([]primitives.ID, L)
	assignment[0] = tab.Candidates(0)[0]
	for i := 1; i < L; i++ {
		pick := primitives.ID(-1)
		for _, id := range tab.Candidates(i) {
			if primitives.ByID(id).Lib == lib {
				pick = id
				break
			}
		}
		if pick < 0 {
			pick = primitives.PVanilla.Idx
		}
		assignment[i] = pick
	}
	return &Result{Assignment: assignment, Time: tab.TotalTime(assignment), Episodes: 1}
}

// BestSingleLibrary returns the fastest whole-library substitution and
// which library achieved it, over the libraries available in the
// table's mode.
func BestSingleLibrary(tab *lut.Table) (primitives.Library, *Result) {
	bestLib := primitives.Vanilla
	var best *Result
	for _, lib := range primitives.AllLibraries() {
		r := SingleLibrary(tab, lib)
		if best == nil || r.Time < best.Time {
			best, bestLib = r, lib
		}
	}
	return bestLib, best
}

// VanillaTime returns the all-Vanilla inference time — the
// dependency-free baseline every Table II speedup is measured against.
func VanillaTime(tab *lut.Table) float64 {
	return SingleLibrary(tab, primitives.Vanilla).Time
}
