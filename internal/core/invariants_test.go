package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/lut"
	"repro/internal/primitives"
)

// Invariant harness for the search algorithms: on randomized chain
// tables, no search may ever beat the exact DP optimum, and every
// Result must price its own assignment exactly as the table does.

// checkResultInvariants asserts the two universal properties of a
// search outcome against its table and the known optimum.
func checkResultInvariants(t *testing.T, label string, tab *lut.Table, r *Result, optimum float64) {
	t.Helper()
	if r.Time < optimum-1e-9 {
		t.Errorf("%s: time %.9g beats the DP optimum %.9g — impossible", label, r.Time, optimum)
	}
	if got := tab.TotalTime(r.Assignment); math.Abs(got-r.Time) > 1e-9 {
		t.Errorf("%s: Result.Time %.9g != recomputed TotalTime %.9g", label, r.Time, got)
	}
	if len(r.Assignment) != tab.NumLayers() {
		t.Errorf("%s: assignment has %d entries, table has %d layers", label, len(r.Assignment), tab.NumLayers())
	}
	for i := 1; i < tab.NumLayers(); i++ {
		if !containsID(tab.Candidates(i), r.Assignment[i]) {
			t.Errorf("%s: layer %d assigned non-candidate %d", label, i, r.Assignment[i])
		}
	}
}

func containsID(ids []primitives.ID, id primitives.ID) bool {
	for _, c := range ids {
		if c == id {
			return true
		}
	}
	return false
}

// TestSearchesNeverBeatOptimalProperty: for randomized chain tables of
// varying depth, Search (in every ablation variant), RandomSearch and
// Greedy all stay at or above core.Optimal's DP optimum, and each
// Result.Time equals lut.Table.TotalTime(assignment) recomputed from
// scratch.
func TestSearchesNeverBeatOptimalProperty(t *testing.T) {
	prop := func(seed int64, d uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := int(d%8) + 2
		tab := randomChainTable(rng, depth)
		opt, err := Optimal(tab)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// The optimum itself must satisfy its own accounting.
		checkResultInvariants(t, "optimal", tab, opt, opt.Time)

		variants := map[string]Config{
			"paper":      {Episodes: 150, Seed: seed},
			"no-replay":  {Episodes: 150, Seed: seed, DisableReplay: true},
			"no-shaping": {Episodes: 150, Seed: seed, DisableShaping: true},
		}
		for label, cfg := range variants {
			checkResultInvariants(t, label, tab, Search(tab, cfg), opt.Time)
		}
		checkResultInvariants(t, "random-search", tab, RandomSearch(tab, 150, seed), opt.Time)
		checkResultInvariants(t, "greedy", tab, Greedy(tab), opt.Time)
		return !t.Failed()
	}
	n := 20
	if testing.Short() {
		n = 6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// TestEnsembleMatchesIndividualSeeds: SearchEnsemble (which fans out
// on the shared pool) must report exactly the per-seed results a
// sequential loop produces.
func TestEnsembleMatchesIndividualSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomChainTable(rng, 5)
	const n = 6
	cfg := Config{Episodes: 120, Seed: 10}
	stats, err := SearchEnsemble(tab, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		want = append(want, Search(tab, c).Time)
	}
	// stats.Times is sorted; compare as multisets via sorted copies.
	got := append([]float64(nil), stats.Times...)
	wantSorted := append([]float64(nil), want...)
	sortFloats(got)
	sortFloats(wantSorted)
	for i := range got {
		if got[i] != wantSorted[i] {
			t.Fatalf("ensemble times %v != sequential times %v", stats.Times, wantSorted)
		}
	}
	best := math.Inf(1)
	for _, w := range want {
		if w < best {
			best = w
		}
	}
	if stats.Best.Time != best {
		t.Errorf("ensemble best %v, sequential best %v", stats.Best.Time, best)
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// TestConcurrentSearchSharedTable: core.Search is a pure function of
// (table, config); 8 goroutines searching one shared *lut.Table with
// the same config must all return the result the sequential call
// returns. Run under -race this also proves the table read path is
// race-free.
func TestConcurrentSearchSharedTable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tab := randomChainTable(rng, 6)
	cfg := Config{Episodes: 200, Seed: 4}
	want := Search(tab, cfg)

	const goroutines = 8
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = Search(tab, cfg)
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r.Time != want.Time {
			t.Errorf("goroutine %d: time %v, sequential %v", g, r.Time, want.Time)
		}
		for i := range want.Assignment {
			if r.Assignment[i] != want.Assignment[i] {
				t.Errorf("goroutine %d: assignment differs at layer %d", g, i)
				break
			}
		}
	}
}
