package core

import (
	"fmt"
	"math"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/qlearn"
)

// Multi-objective search — the paper's §VII future work: "we envision
// to extend exploration to e.g. different reward choices or having
// multi-objective search, for problems related to inference of DNNs on
// constrained environments". The implementation scalarizes latency and
// energy with a tunable trade-off weight and reuses the identical
// Q-learning machinery; sweeping the weight traces a latency/energy
// Pareto front.

// MultiResult is the outcome of one multi-objective search.
type MultiResult struct {
	// Assignment is the chosen primitive per layer.
	Assignment []primitives.ID
	// Seconds is the configuration's inference latency.
	Seconds float64
	// Joules is the configuration's inference energy.
	Joules float64
	// Lambda is the trade-off weight used (cost = t + λ·e).
	Lambda float64
}

// checkCompatibleTables verifies that the two objective tables were
// built for the same network structure.
func checkCompatibleTables(timeTab, energyTab *lut.Table) error {
	if timeTab.NumLayers() != energyTab.NumLayers() ||
		timeTab.Network != energyTab.Network ||
		timeTab.Mode != energyTab.Mode {
		return fmt.Errorf("core: objective tables disagree (%s/%v %d layers vs %s/%v %d layers)",
			timeTab.Network, timeTab.Mode, timeTab.NumLayers(),
			energyTab.Network, energyTab.Mode, energyTab.NumLayers())
	}
	return nil
}

// SearchMulti runs the QS-DNN agent with the scalarized reward
// r = -(latency + λ·energy). λ = 0 reduces exactly to Search; large λ
// approaches the energy-optimal mapping.
func SearchMulti(timeTab, energyTab *lut.Table, lambda float64, cfg Config) (*MultiResult, error) {
	if err := checkCompatibleTables(timeTab, energyTab); err != nil {
		return nil, err
	}
	if lambda < 0 {
		return nil, fmt.Errorf("core: negative lambda %v", lambda)
	}
	cfg = cfg.withDefaults()
	rng := newSearchRNG(cfg.Seed)
	L := timeTab.NumLayers()
	q := qlearn.NewTable(L, primitives.Count())
	replay := qlearn.NewReplay(cfg.Agent.ReplaySize)

	allowed := make([][]int, L)
	for i := 1; i < L; i++ {
		ids := timeTab.Candidates(i)
		acts := make([]int, len(ids))
		for k, id := range ids {
			acts[k] = int(id)
		}
		allowed[i] = acts
	}

	assignment := make([]primitives.ID, L)
	assignment[0] = timeTab.Candidates(0)[0]
	best := &MultiResult{Seconds: math.Inf(1), Joules: math.Inf(1), Lambda: lambda}
	bestCost := math.Inf(1)

	for ep := 0; ep < cfg.Episodes; ep++ {
		eps := qlearn.EpsilonAt(cfg.Schedule, ep)
		traj := make([]qlearn.Transition, 0, L-1)
		for i := 1; i < L; i++ {
			prev := int(assignment[i-1])
			var action int
			if rng.Float64() < eps {
				action = allowed[i][rng.Intn(len(allowed[i]))]
			} else {
				action = q.Best(i-1, prev, allowed[i], rng)
			}
			assignment[i] = primitives.ID(action)
			cost := timeTab.LayerCost(i, assignment[i], assignment) +
				lambda*energyTab.LayerCost(i, assignment[i], assignment)
			var next []int
			if i+1 < L {
				next = allowed[i+1]
			}
			traj = append(traj, qlearn.Transition{
				Step: i - 1, Prim: prev, Action: action,
				Reward: -cost, NextAllowed: next,
			})
		}
		t := timeTab.TotalTime(assignment)
		e := energyTab.TotalTime(assignment)
		q.UpdateEpisode(traj, cfg.Agent)
		if !cfg.DisableReplay {
			replay.Add(traj)
			replay.ReplayInto(q, cfg.Agent, cfg.ReplayUpdates, rng)
		}
		if c := t + lambda*e; c < bestCost {
			bestCost = c
			best.Seconds, best.Joules = t, e
			best.Assignment = append([]primitives.ID(nil), assignment...)
		}
	}
	return best, nil
}

// ParetoPoint is one point of the latency/energy front.
type ParetoPoint struct {
	// Lambda is the weight that produced the point.
	Lambda float64
	// Seconds / Joules are the point's objectives.
	Seconds, Joules float64
}

// ParetoFront sweeps the trade-off weight and returns the
// non-dominated (latency, energy) points found, ordered by ascending
// lambda. Dominated points are filtered out.
func ParetoFront(timeTab, energyTab *lut.Table, lambdas []float64, cfg Config) ([]ParetoPoint, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0, 0.5, 1, 2, 5, 10, 50}
	}
	points := make([]ParetoPoint, 0, len(lambdas))
	for _, lam := range lambdas {
		r, err := SearchMulti(timeTab, energyTab, lam, cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, ParetoPoint{Lambda: lam, Seconds: r.Seconds, Joules: r.Joules})
	}
	// Filter dominated points (another point is <= in both objectives
	// and < in one) and collapse duplicates: several lambdas often
	// land on the same configuration.
	front := points[:0]
	seen := map[[2]float64]bool{}
	for i, p := range points {
		key := [2]float64{p.Seconds, p.Joules}
		if seen[key] {
			continue
		}
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Seconds <= p.Seconds && q.Joules <= p.Joules &&
				(q.Seconds < p.Seconds || q.Joules < p.Joules) {
				dominated = true
				break
			}
		}
		if !dominated {
			seen[key] = true
			front = append(front, p)
		}
	}
	return front, nil
}

// EnergyOf evaluates an existing assignment against an energy table —
// e.g. to ask how many joules the latency-optimal mapping burns.
func EnergyOf(energyTab *lut.Table, assignment []primitives.ID) float64 {
	return energyTab.TotalTime(assignment)
}
