package runner

import (
	"repro/internal/lut"
	"repro/internal/profile"
	"repro/internal/searchplan"
)

// Flight is the exported, long-lived face of the batch runner's keyed
// single-flight LUT cache. A batch run builds a cache per call because
// its lifetime is the batch; the serve daemon instead keeps one Flight
// for the life of the process, so every request that agrees on a
// profiling key — across arbitrarily many concurrent clients — shares
// a single profiling run and a single compiled search plan.
//
// Keys are caller-defined strings: the runner's batches key by
// (network, mode, samples); the serve daemon additionally folds in the
// platform preset, which a batch never varies. The single-flight
// contract is the cache's (tableCache): the first Get for a key runs
// build, concurrent Gets park on that one build, failed builds are
// evicted so the next Get retries instead of replaying a cached error.
type Flight struct {
	c *tableCache
}

// NewFlight returns an empty single-flight LUT cache safe for
// concurrent use.
func NewFlight() *Flight { return &Flight{c: newTableCache()} }

// BuildFunc profiles one look-up table for a cache key.
type BuildFunc func() (*lut.Table, *profile.Report, error)

// Get returns the table, compiled search plan, and profiling report
// for key, invoking build at most once per key no matter how many
// goroutines ask concurrently. The plan is compiled exactly once per
// distinct table, before any waiter observes the entry.
func (f *Flight) Get(key string, build BuildFunc) (*lut.Table, *searchplan.Plan, *profile.Report, error) {
	return f.c.get(key, build)
}

// Stats returns the lookup counters: hits is the number of Gets served
// from (or coalesced into) an existing entry, misses the number of
// distinct builds executed.
func (f *Flight) Stats() (hits, misses int) { return f.c.stats() }

// Evict drops key's completed entry so the next Get re-profiles. An
// in-flight build is not evicted (all of its waiters must share the
// one result); Evict reports whether an entry was actually removed.
func (f *Flight) Evict(key string) bool { return f.c.evict(key) }
