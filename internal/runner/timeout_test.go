package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// TestUnitTimeout: a unit whose profiling blocks past UnitTimeout
// fails with a deadline error, promptly, while units of other jobs
// complete normally.
func TestUnitTimeout(t *testing.T) {
	blocking := func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		if net.Name == "mobilenet-v1" {
			// A hung backend: wait for the unit deadline, honoring ctx.
			<-ctx.Done()
			return nil, nil, ctx.Err()
		}
		return profile.RunContext(ctx, net, profile.NewSimSource(net, platform.JetsonTX2Like()),
			profile.Options{Mode: mode, Samples: samples})
	}
	jobs := []Job{
		{Network: "mobilenet-v1", Mode: primitives.ModeCPU, Seeds: []int64{1}, Episodes: 50, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1, 2}, Episodes: 50, Samples: 2},
	}
	start := time.Now()
	batch, err := RunContext(context.Background(), jobs, Options{
		Workers:     2,
		Profile:     blocking,
		UnitTimeout: 50 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("batch took %v — the unit timeout did not preempt the hung profiler", elapsed)
	}

	hung, healthy := batch.Jobs[0], batch.Jobs[1]
	if hung.Err == nil {
		t.Fatal("hung unit reported no error")
	}
	if !errors.Is(hung.Err, context.DeadlineExceeded) {
		t.Fatalf("hung unit err = %v, want wrapped context.DeadlineExceeded", hung.Err)
	}
	if hung.Complete {
		t.Fatal("hung job marked complete")
	}

	if healthy.Err != nil {
		t.Fatalf("healthy job failed: %v", healthy.Err)
	}
	if !healthy.Complete || len(healthy.Seeds) != 2 {
		t.Fatalf("healthy job incomplete: %+v", healthy)
	}
	for _, sr := range healthy.Seeds {
		if sr.Result == nil || len(sr.Result.Assignment) == 0 {
			t.Fatalf("healthy seed %d has no result", sr.Seed)
		}
	}
	if batch.Canceled {
		t.Fatal("a unit timeout must not mark the whole batch canceled")
	}
}
