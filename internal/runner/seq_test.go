package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// The workers=1 regression guard (ISSUE 5): a one-worker batch must
// run fully sequentially — no goroutines parked on single-flight
// channels, no lock contention — while keeping the exact cache
// contract of the concurrent path.

func seqTestTable(t testing.TB) *lut.Table {
	t.Helper()
	net := models.LeNet5()
	tab, _, err := profile.RunContext(context.Background(), net,
		profile.NewSimSource(net, platform.JetsonTX2Like()),
		profile.Options{Mode: primitives.ModeCPU, Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSequentialCacheNeverParks(t *testing.T) {
	c := newSequentialTableCache()
	tab := seqTestTable(t)
	builds := 0
	build := func() (*lut.Table, *profile.Report, error) {
		builds++
		return tab, nil, nil
	}
	key := cacheKey{network: "lenet5", mode: primitives.ModeCPU, samples: 2}.String()
	for i := 0; i < 5; i++ {
		got, plan, _, err := c.get(key, build)
		if err != nil {
			t.Fatal(err)
		}
		if got != tab {
			t.Fatal("cache returned a different table")
		}
		if plan == nil {
			t.Fatal("sequential cache must compile the search plan")
		}
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	if hits, misses := c.stats(); hits != 4 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 4/1", hits, misses)
	}
	if p := c.parkedWaiters(); p != 0 {
		t.Errorf("sequential cache parked %d waiters, want 0", p)
	}
}

func TestSequentialCacheRetriesFailedBuild(t *testing.T) {
	c := newSequentialTableCache()
	tab := seqTestTable(t)
	key := cacheKey{network: "lenet5", mode: primitives.ModeCPU, samples: 2}.String()
	calls := 0
	flaky := func() (*lut.Table, *profile.Report, error) {
		calls++
		if calls == 1 {
			return nil, nil, fmt.Errorf("board unreachable")
		}
		return tab, nil, nil
	}
	if _, _, _, err := c.get(key, flaky); err == nil {
		t.Fatal("first build should fail")
	}
	got, _, _, err := c.get(key, flaky)
	if err != nil || got != tab {
		t.Fatalf("retry after failure: got %v, %v", got, err)
	}
	if calls != 2 {
		t.Errorf("build ran %d times, want 2 (failure evicted, then retried)", calls)
	}
}

// TestConcurrentCacheCountsParkedWaiters validates the instrument the
// guard relies on: when concurrent callers genuinely coalesce onto an
// in-flight build, the parked counter sees them.
func TestConcurrentCacheCountsParkedWaiters(t *testing.T) {
	c := newTableCache()
	tab := seqTestTable(t)
	key := cacheKey{network: "lenet5", mode: primitives.ModeCPU, samples: 2}.String()
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.get(key, func() (*lut.Table, *profile.Report, error) {
			close(entered)
			<-release
			return tab, nil, nil
		})
	}()
	<-entered
	const waiters = 3
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.get(key, func() (*lut.Table, *profile.Report, error) {
				t.Error("coalesced waiter must not build")
				return nil, nil, nil
			})
		}()
	}
	// Wait until every waiter has registered as parked (the counter is
	// incremented immediately before blocking on the ready channel), so
	// the test is deterministic even at GOMAXPROCS=1, then release the
	// build and let everyone drain.
	deadline := time.Now().Add(5 * time.Second)
	for c.parkedWaiters() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked before deadline", c.parkedWaiters(), waiters)
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if p := c.parkedWaiters(); p != waiters {
		t.Errorf("parked = %d, want %d", p, waiters)
	}
	if hits, misses := c.stats(); hits != waiters || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", hits, misses, waiters)
	}
}

// TestRunSequentialMatchesPooled pins that the sequential bypass is a
// pure performance change: a Workers=1 batch and an (unclamped,
// genuinely pooled on multicore hosts) Workers=4 batch produce
// identical results and identical cache statistics.
func TestRunSequentialMatchesPooled(t *testing.T) {
	jobs := []Job{
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1, 2}, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{3}, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Seeds: []int64{1}, Episodes: 60, Samples: 2},
	}
	seq, err := Run(jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Run(jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.ProfileHits != pooled.ProfileHits || seq.ProfileMisses != pooled.ProfileMisses {
		t.Errorf("cache stats differ: seq %d/%d vs pooled %d/%d",
			seq.ProfileHits, seq.ProfileMisses, pooled.ProfileHits, pooled.ProfileMisses)
	}
	for i := range seq.Jobs {
		a, b := seq.Jobs[i], pooled.Jobs[i]
		if a.Best.Time != b.Best.Time || a.BestSeed != b.BestSeed {
			t.Errorf("job %d: best differs: %v/%d vs %v/%d", i, a.Best.Time, a.BestSeed, b.Best.Time, b.BestSeed)
		}
	}
}

// BenchmarkRunBatch is the workers=1 regression guard benchmark: it
// isolates the orchestrator overhead (pool, cache, aggregation) from
// profiling and search cost by using an instant ProfileFunc and a tiny
// episode budget, at one worker (fully sequential, bypassed pool and
// cache locking) and at eight (pooled on multicore hosts, clamped to
// GOMAXPROCS otherwise). benchstat against bench/baseline.txt keeps
// the sequential path from regressing behind the pooled one again.
func BenchmarkRunBatch(b *testing.B) {
	tab := seqTestTable(b)
	instant := func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		return tab, nil, nil
	}
	jobs := []Job{
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1, 2}, Episodes: 40, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{3, 4}, Episodes: 40, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{5, 6}, Episodes: 40, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{7, 8}, Episodes: 40, Samples: 2},
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(jobs, Options{Workers: workers, Profile: instant}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
