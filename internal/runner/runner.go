// Package runner is the concurrent search orchestrator: it fans a
// batch of (network, mode, seed) search jobs across a bounded worker
// pool, shares profiled look-up tables through a keyed single-flight
// cache (each distinct (network, mode, samples) combination is
// profiled exactly once, even when many workers request it at the same
// instant), and aggregates per-job results deterministically — the
// output depends only on the jobs and their seeds, never on worker
// count or completion order.
//
// The search itself (core.Search) is a pure function of (table, config)
// and lut.Table is read-only after profiling, so arbitrarily many
// searches may share one table concurrently; the runner exploits both.
//
// Fault tolerance: a failing profiling run fails only the jobs that
// depend on its table (and is evicted from the cache so a later batch
// or retry can succeed); a canceled context stops workers from
// claiming further units while letting in-flight searches finish, so
// the batch returns whatever partial results exist.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/store"
)

// Job is one network to optimize: the search runs once per seed and
// the best result wins (best-of-N protocol).
type Job struct {
	// Network is the zoo model name.
	Network string
	// Mode is the processor mode to profile and search under.
	Mode primitives.Mode
	// Seeds are the search seeds to try; empty selects {1}.
	Seeds []int64
	// Episodes is the per-seed episode budget (default 1000).
	Episodes int
	// Samples is the profiling average count (default 50).
	Samples int
	// Search optionally overrides the full agent configuration; its
	// Episodes and Seed fields are set per seed from the job.
	Search core.Config
}

// unit is one (job index, seed index) work item of a batch.
type unit struct{ job, seed int }

// withDefaults fills unset job fields.
func (j Job) withDefaults() Job {
	if len(j.Seeds) == 0 {
		j.Seeds = []int64{1}
	}
	if j.Episodes == 0 {
		j.Episodes = 1000
	}
	if j.Samples == 0 {
		j.Samples = 50
	}
	return j
}

// ProfileFunc builds the look-up table for one (network, mode,
// samples) combination. The runner wraps it in the single-flight
// cache, so it is called at most once per distinct combination per
// batch (failed builds are evicted and may be retried by a later
// request). It must honor ctx: a canceled context should abort the
// build promptly with ctx.Err(). The returned Report may be nil when
// the implementation has nothing to report (e.g. tables loaded from
// disk).
type ProfileFunc func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error)

// Options configures a batch run.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects one per CPU. The
	// effective count is clamped to GOMAXPROCS (units are pure compute,
	// so extra goroutines only add scheduling overhead); at one
	// effective worker the batch runs fully sequentially with the pool
	// and single-flight machinery bypassed.
	Workers int
	// Platform is the board model profiled against when Profile is
	// nil; nil selects the TX2-like preset.
	Platform *platform.Platform
	// Profile overrides the profiling step (e.g. to load saved tables
	// or drive the real engine). nil profiles on the Platform
	// simulator.
	Profile ProfileFunc
	// Robust selects the fault-tolerant measurement policy for the
	// default simulator profiler (retry, per-sample timeout, robust
	// aggregation, graceful degradation). nil keeps the strict legacy
	// path unless Faults is set, in which case profile.DefaultRobust()
	// applies. Ignored when Profile is non-nil.
	Robust *profile.Robust
	// Faults, when non-nil, wraps the default simulator source in a
	// seeded fault injector — the test harness for the robustness
	// machinery. Ignored when Profile is non-nil.
	Faults *profile.FaultConfig
	// UnitTimeout, when > 0, caps each unit's wall-clock (profiling
	// wait plus search) with a per-unit context deadline derived at
	// unit start. A unit that exceeds it fails with an error wrapping
	// context.DeadlineExceeded; the rest of the batch proceeds. 0
	// preserves the legacy unbounded behavior.
	UnitTimeout time.Duration
	// Manifest, when non-nil, makes the batch resumable: completed
	// units are journaled (with a digest of the table they were
	// computed from), profiled tables are persisted as checksummed
	// blobs, and a re-invoked batch restores every verifiable unit
	// instead of re-running it. See manifest.go for the verification
	// rules.
	Manifest *store.Manifest
}

// SeedResult is one seed's search outcome within a job.
type SeedResult struct {
	// Seed is the search seed.
	Seed int64
	// Result is the search outcome for this seed; nil if the unit
	// never ran (profiling failed or the batch was canceled first).
	Result *core.Result
	// Elapsed is the wall-clock time of this seed's search (profiling
	// excluded — tables are shared across seeds and jobs).
	Elapsed time.Duration
}

// JobResult aggregates one job: every per-seed result plus the
// comparison quantities of the paper's Table II.
type JobResult struct {
	// Job echoes the (defaulted) input job.
	Job Job
	// Net is the built network.
	Net *nn.Network
	// Table is the shared profiled look-up table; nil if profiling
	// never completed for this job.
	Table *lut.Table
	// Profile is the profiling degradation/fault report for the job's
	// table; nil when the profiler had nothing to report.
	Profile *profile.Report
	// Err is the first error that hit one of this job's units
	// (profiling failure, recovered search panic, or cancellation).
	// A job with Err != nil may still carry partial Seeds results.
	Err error
	// Complete reports that every seed ran to completion.
	Complete bool
	// Seeds holds one result per seed, in the job's seed order.
	// Entries with a nil Result did not run.
	Seeds []SeedResult
	// Best is the fastest per-seed result over the seeds that ran
	// (ties break toward the earlier seed, so aggregation is
	// order-independent); nil if no seed completed.
	Best *core.Result
	// BestSeed is the seed that produced Best.
	BestSeed int64
	// VanillaSeconds is the all-Vanilla baseline time.
	VanillaSeconds float64
	// BSLSeconds is the Best-Single-Library time.
	BSLSeconds float64
	// BSLLibrary is the library achieving BSLSeconds.
	BSLLibrary primitives.Library
	// Elapsed is the summed search wall-clock across the job's seeds.
	Elapsed time.Duration
}

// SpeedupVsVanilla returns VanillaSeconds / Best.Time.
func (r *JobResult) SpeedupVsVanilla() float64 { return r.VanillaSeconds / r.Best.Time }

// SpeedupVsBSL returns BSLSeconds / Best.Time.
func (r *JobResult) SpeedupVsBSL() float64 { return r.BSLSeconds / r.Best.Time }

// BatchResult is the outcome of a batch run.
type BatchResult struct {
	// Jobs holds one result per input job, in input order.
	Jobs []JobResult
	// Canceled reports that the batch context was done before every
	// unit ran; Jobs then holds whatever completed first.
	Canceled bool
	// Elapsed is the batch wall-clock, profiling included.
	Elapsed time.Duration
	// ProfileHits counts table requests served by the cache;
	// ProfileMisses counts the distinct profiling runs executed.
	ProfileHits, ProfileMisses int
	// Restored counts units skipped because a manifest record verified
	// (always 0 without Options.Manifest).
	Restored int
}

// FailedJobs counts jobs with a non-nil Err.
func (b *BatchResult) FailedJobs() int {
	n := 0
	for i := range b.Jobs {
		if b.Jobs[i].Err != nil {
			n++
		}
	}
	return n
}

// Run executes the batch with a background context and the legacy
// all-or-nothing contract: the first per-job error fails the whole
// call. Callers that want partial results under failure or
// cancellation use RunContext.
func Run(jobs []Job, opts Options) (*BatchResult, error) {
	batch, err := RunContext(context.Background(), jobs, opts)
	if err != nil {
		return nil, err
	}
	for i := range batch.Jobs {
		if jerr := batch.Jobs[i].Err; jerr != nil {
			return nil, jerr
		}
	}
	return batch, nil
}

// RunContext executes the batch under ctx. Jobs are validated up front
// (unknown networks fail the whole batch before any work starts);
// every (job, seed) pair then becomes one unit of work on the pool.
//
// Per-unit failures do not abort the batch: the affected job records
// its first error in JobResult.Err and the rest proceed. Cancellation
// stops further units from starting; completed units survive in the
// returned BatchResult (with Canceled set), so an interrupted batch
// still flushes its partial results.
func RunContext(ctx context.Context, jobs []Job, opts Options) (*BatchResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("runner: empty batch")
	}
	pl := opts.Platform
	if pl == nil {
		pl = platform.JetsonTX2Like()
	}
	profileFn := opts.Profile
	if profileFn == nil {
		profileFn = simProfile(pl, opts.Robust, opts.Faults)
	}

	// Validate and default every job; build each distinct network once.
	defaulted := make([]Job, len(jobs))
	nets := map[string]*nn.Network{}
	for i, j := range jobs {
		j = j.withDefaults()
		if _, ok := nets[j.Network]; !ok {
			net, err := models.Build(j.Network)
			if err != nil {
				return nil, fmt.Errorf("runner: job %d: %w", i, err)
			}
			nets[j.Network] = net
		}
		defaulted[i] = j
	}

	// Flatten to (job, seed) units. Each unit writes only its own
	// slots, so the pool needs no further synchronization.
	var units []unit
	for ji, j := range defaulted {
		for si := range j.Seeds {
			units = append(units, unit{job: ji, seed: si})
		}
	}
	results := make([][]SeedResult, len(defaulted))
	tables := make([][]*lut.Table, len(defaulted))
	reports := make([][]*profile.Report, len(defaulted))
	errs := make([]error, len(units))
	for ji, j := range defaulted {
		results[ji] = make([]SeedResult, len(j.Seeds))
		tables[ji] = make([]*lut.Table, len(j.Seeds))
		reports[ji] = make([]*profile.Report, len(j.Seeds))
	}

	// Manifest restore pass: skip every unit whose journal record and
	// stored table verify, then run only what's left. Without a
	// manifest, pending is all units and the path below is unchanged.
	var ml *manifestLUTs
	skip := make([]bool, len(units))
	restored := 0
	if opts.Manifest != nil {
		ml = newManifestLUTs(opts.Manifest)
		skip, restored = ml.restore(units, defaulted, nets, results, tables)
	}
	pending := make([]int, 0, len(units))
	for u := range units {
		if !skip[u] {
			pending = append(pending, u)
		}
	}

	// Resolve the effective worker count before spinning anything up.
	// Units are pure compute (a search is CPU-bound; profiling is
	// single-flighted), so workers beyond the schedulable parallelism
	// only add scheduler churn and single-flight parking — measured at
	// ~13% of batch wall-clock on a single-core host (EXPERIMENTS.md).
	// Clamping to GOMAXPROCS makes a one-core host take the sequential
	// path no matter what was requested, and at one worker both the
	// pool (which runs inline) and the cache (sequential mode, no
	// locking or parking) are bypassed entirely.
	workers := opts.Workers
	if workers <= 0 {
		workers = pool.DefaultWorkers()
	}
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	cache := newTableCache()
	if workers <= 1 {
		cache = newSequentialTableCache()
	}
	start := time.Now()
	outcome := pool.RunContext(ctx, len(pending), workers, func(k int) {
		u := pending[k]
		ji, si := units[u].job, units[u].seed
		job := defaulted[ji]
		net := nets[job.Network]
		uctx := ctx
		if opts.UnitTimeout > 0 {
			var ucancel context.CancelFunc
			uctx, ucancel = context.WithTimeout(ctx, opts.UnitTimeout)
			defer ucancel()
		}
		key := cacheKey{network: job.Network, mode: job.Mode, samples: job.Samples}
		tab, plan, rep, err := cache.get(key.String(), func() (*lut.Table, *profile.Report, error) {
			// With a manifest, a stored table that verifies is reused
			// (profiling is deterministic, so the result is identical);
			// a fresh build is persisted before any unit records
			// reference its digest.
			if ml != nil {
				if tab, _, lerr := ml.load(key, job, net); lerr == nil {
					return tab, nil, nil
				}
			}
			tab, rep, err := profileFn(uctx, net, job.Mode, job.Samples)
			if err == nil && ml != nil {
				if serr := ml.save(key, job, tab); serr != nil {
					return nil, nil, fmt.Errorf("persisting LUT: %w", serr)
				}
			}
			return tab, rep, err
		})
		if err != nil {
			errs[u] = fmt.Errorf("runner: profiling %s/%s: %w", job.Network, job.Mode, err)
			return
		}
		tables[ji][si] = tab
		reports[ji][si] = rep
		cfg := job.Search
		cfg.Episodes = job.Episodes
		cfg.Seed = job.Seeds[si]
		t0 := time.Now()
		res := core.SearchPlanned(plan, cfg)
		results[ji][si] = SeedResult{Seed: job.Seeds[si], Result: res, Elapsed: time.Since(t0)}
		if ml != nil {
			// Journal the completed unit durably; a failed append is a
			// broken durability promise and fails the unit loudly.
			if merr := ml.record(job, job.Seeds[si], res, key); merr != nil {
				errs[u] = fmt.Errorf("runner: journaling %s/%s: %w", job.Network, job.Mode, merr)
			}
		}
	})
	// A recovered search panic fails its unit like any other error —
	// the message carries the captured stack for the report.
	for _, pe := range outcome.Panics {
		if u := pending[pe.Index]; errs[u] == nil {
			errs[u] = fmt.Errorf("runner: %w\n%s", pe, pe.Stack)
		}
	}

	// Aggregate in input order: completion order never leaks into the
	// result. Ties between seeds break toward the earlier seed.
	batch := &BatchResult{Jobs: make([]JobResult, len(defaulted)), Canceled: ctx.Err() != nil}
	jobErr := make([]error, len(defaulted))
	for u, un := range units {
		if errs[u] != nil && jobErr[un.job] == nil {
			jobErr[un.job] = errs[u]
		}
	}
	for ji, j := range defaulted {
		jr := JobResult{Job: j, Net: nets[j.Network], Err: jobErr[ji], Seeds: results[ji]}
		ran := 0
		for si, sr := range results[ji] {
			if tables[ji][si] != nil && jr.Table == nil {
				jr.Table = tables[ji][si]
				jr.Profile = reports[ji][si]
			}
			if sr.Result == nil {
				continue
			}
			ran++
			jr.Elapsed += sr.Elapsed
			if jr.Best == nil || sr.Result.Time < jr.Best.Time {
				jr.Best = sr.Result
				jr.BestSeed = j.Seeds[si]
			}
		}
		jr.Complete = jr.Err == nil && ran == len(j.Seeds)
		if !jr.Complete && jr.Err == nil {
			cause := context.Cause(ctx)
			if cause == nil {
				cause = context.Canceled
			}
			jr.Err = fmt.Errorf("runner: %s/%s: canceled after %d/%d seeds: %w",
				j.Network, j.Mode, ran, len(j.Seeds), cause)
		}
		if jr.Table != nil {
			jr.VanillaSeconds = core.VanillaTime(jr.Table)
			lib, bsl := core.BestSingleLibrary(jr.Table)
			jr.BSLLibrary, jr.BSLSeconds = lib, bsl.Time
		}
		batch.Jobs[ji] = jr
	}
	batch.Elapsed = time.Since(start)
	batch.ProfileHits, batch.ProfileMisses = cache.stats()
	batch.Restored = restored
	return batch, nil
}

// simProfile is the default ProfileFunc: profile on the platform
// simulator, optionally through the fault injector and the robust
// measurement policy.
func simProfile(pl *platform.Platform, robust *profile.Robust, faults *profile.FaultConfig) ProfileFunc {
	return func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		sim := profile.NewSimSource(net, pl)
		var src profile.FallibleSource = profile.AsFallible(sim)
		if faults != nil {
			src = profile.NewFaultSource(sim, *faults)
			if robust == nil {
				// Injected faults without a recovery policy would just
				// fail; a fault-injected run implies the robust path.
				robust = profile.DefaultRobust()
			}
		}
		return profile.RunFallible(ctx, net, src, profile.Options{Mode: mode, Samples: samples, Robust: robust})
	}
}
