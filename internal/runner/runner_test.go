package runner

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// countingProfile wraps the simulator profile with an execution
// counter so tests can assert the single-flight property.
func countingProfile(pl *platform.Platform, calls *atomic.Int64) ProfileFunc {
	return func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		calls.Add(1)
		return profile.RunContext(ctx, net, profile.NewSimSource(net, pl), profile.Options{Mode: mode, Samples: samples})
	}
}

func TestRunProfilesEachKeyExactlyOnce(t *testing.T) {
	// 3 jobs sharing one (network, mode, samples) key plus 1 distinct
	// key, 3 seeds each, spread over 8 workers: the shared key must be
	// profiled once no matter how the 12 units interleave.
	jobs := []Job{
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Seeds: []int64{1, 2, 3}, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Seeds: []int64{4, 5, 6}, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Seeds: []int64{7, 8, 9}, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1, 2, 3}, Episodes: 60, Samples: 2},
	}
	var calls atomic.Int64
	batch, err := Run(jobs, Options{Workers: 8, Profile: countingProfile(platform.JetsonTX2Like(), &calls)})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("profile executed %d times, want 2 (distinct keys)", calls.Load())
	}
	if batch.ProfileMisses != 2 {
		t.Errorf("ProfileMisses = %d, want 2", batch.ProfileMisses)
	}
	if batch.ProfileHits != 12-2 {
		t.Errorf("ProfileHits = %d, want %d", batch.ProfileHits, 12-2)
	}
	// Jobs sharing a key share the identical table instance.
	if batch.Jobs[0].Table != batch.Jobs[1].Table || batch.Jobs[1].Table != batch.Jobs[2].Table {
		t.Error("jobs with the same key got different table instances")
	}
	if batch.Jobs[0].Table == batch.Jobs[3].Table {
		t.Error("different modes share a table")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := []Job{
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Seeds: []int64{1, 2, 3, 4}, Episodes: 120, Samples: 3},
		{Network: "mobilenet-v1", Mode: primitives.ModeCPU, Seeds: []int64{5, 6}, Episodes: 80, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1}, Episodes: 100, Samples: 3},
	}
	run := func(workers int) *BatchResult {
		b, err := Run(jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(1), run(8)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Best.Time != jb.Best.Time || ja.BestSeed != jb.BestSeed {
			t.Errorf("job %d: best differs: %v/seed %d vs %v/seed %d",
				i, ja.Best.Time, ja.BestSeed, jb.Best.Time, jb.BestSeed)
		}
		if ja.VanillaSeconds != jb.VanillaSeconds || ja.BSLSeconds != jb.BSLSeconds {
			t.Errorf("job %d: baselines differ", i)
		}
		for s := range ja.Seeds {
			ra, rb := ja.Seeds[s].Result, jb.Seeds[s].Result
			if ra.Time != rb.Time {
				t.Errorf("job %d seed %d: time %v vs %v", i, s, ra.Time, rb.Time)
			}
			if fmt.Sprint(ra.Assignment) != fmt.Sprint(rb.Assignment) {
				t.Errorf("job %d seed %d: assignments differ", i, s)
			}
		}
	}
}

func TestRunBestOfSeedsAndOrdering(t *testing.T) {
	job := Job{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{3, 1, 7}, Episodes: 150, Samples: 2}
	batch, err := Run([]Job{job}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	jr := batch.Jobs[0]
	if len(jr.Seeds) != 3 {
		t.Fatalf("got %d seed results", len(jr.Seeds))
	}
	// Seed results stay in the job's declared seed order.
	for i, want := range []int64{3, 1, 7} {
		if jr.Seeds[i].Seed != want {
			t.Errorf("seed slot %d = %d, want %d", i, jr.Seeds[i].Seed, want)
		}
	}
	// Best is the minimum over seeds, with a matching recorded seed.
	minTime, minSeed := jr.Seeds[0].Result.Time, jr.Seeds[0].Seed
	for _, sr := range jr.Seeds[1:] {
		if sr.Result.Time < minTime {
			minTime, minSeed = sr.Result.Time, sr.Seed
		}
	}
	if jr.Best.Time != minTime || jr.BestSeed != minSeed {
		t.Errorf("Best = %v/seed %d, want %v/seed %d", jr.Best.Time, jr.BestSeed, minTime, minSeed)
	}
	// Best-of-N can only improve on any single seed.
	single := core.Search(jr.Table, core.Config{Episodes: 150, Seed: 3})
	if jr.Best.Time > single.Time {
		t.Errorf("best-of-3 (%v) worse than seed 3 alone (%v)", jr.Best.Time, single.Time)
	}
	if jr.SpeedupVsVanilla() < 1 {
		t.Errorf("speedup vs vanilla %v < 1", jr.SpeedupVsVanilla())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("empty batch should error")
	}
	if _, err := Run([]Job{{Network: "bogus"}}, Options{}); err == nil {
		t.Error("unknown network should error before any work")
	}
	failing := func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		return nil, nil, fmt.Errorf("board unreachable")
	}
	_, err := Run([]Job{{Network: "lenet5", Episodes: 10, Samples: 2}}, Options{Profile: failing})
	if err == nil {
		t.Error("profile failure should fail the batch")
	}
}

func TestRunDefaults(t *testing.T) {
	batch, err := Run([]Job{{Network: "lenet5", Episodes: 20, Samples: 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jr := batch.Jobs[0]
	if len(jr.Seeds) != 1 || jr.Seeds[0].Seed != 1 {
		t.Errorf("default seeds = %v, want [1]", jr.Job.Seeds)
	}
	if jr.Job.Mode != primitives.ModeCPU {
		t.Errorf("default mode = %v", jr.Job.Mode)
	}
	if jr.Net == nil || jr.Net.Name != "lenet5" {
		t.Error("Net not populated")
	}
}
