package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// flakyProfile fails the first failures calls for each key, then
// profiles normally — the shape of a board that comes back after a
// transient outage.
func flakyProfile(pl *platform.Platform, failures int64, calls *atomic.Int64) ProfileFunc {
	real := countingProfile(pl, calls)
	var failed atomic.Int64
	return func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		if failed.Add(1) <= failures {
			return nil, nil, fmt.Errorf("board unreachable (outage %d)", failed.Load())
		}
		return real(ctx, net, mode, samples)
	}
}

// TestCacheEvictsFailedBuilds: a failed profiling run must not poison
// the single-flight cache — the next request for the same key retries
// the build and can succeed. Without eviction the second batch below
// would replay the cached outage error forever.
func TestCacheEvictsFailedBuilds(t *testing.T) {
	cache := newTableCache()
	key := cacheKey{network: "lenet5", mode: primitives.ModeCPU, samples: 2}.String()
	boom := errors.New("board unreachable")
	if _, _, _, err := cache.get(key, func() (*lut.Table, *profile.Report, error) {
		return nil, nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first get: err = %v, want the build error", err)
	}
	var built atomic.Int64
	tab, _, _, err := cache.get(key, func() (*lut.Table, *profile.Report, error) {
		built.Add(1)
		return &lut.Table{}, nil, nil
	})
	if err != nil || tab == nil {
		t.Fatalf("retry after failed build: tab=%v err=%v", tab, err)
	}
	if built.Load() != 1 {
		t.Errorf("retry ran the build %d times, want 1 (error entry not evicted?)", built.Load())
	}
	// The recovered entry is cached like any success.
	if _, _, _, err := cache.get(key, func() (*lut.Table, *profile.Report, error) {
		t.Error("third get rebuilt a cached success")
		return nil, nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

// TestRunContextPartialFailure: one job's profiling fails; the other
// jobs complete with results, and the failed job carries its error
// instead of sinking the batch.
func TestRunContextPartialFailure(t *testing.T) {
	var calls atomic.Int64
	pf := countingProfile(platform.JetsonTX2Like(), &calls)
	failing := func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		if mode == primitives.ModeGPGPU {
			return nil, nil, fmt.Errorf("GPU board unreachable")
		}
		return pf(ctx, net, mode, samples)
	}
	batch, err := RunContext(context.Background(), []Job{
		{Network: "lenet5", Mode: primitives.ModeCPU, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeCPU, Episodes: 60, Samples: 3},
	}, Options{Workers: 4, Profile: failing})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Canceled {
		t.Error("Canceled set without cancellation")
	}
	if got := batch.FailedJobs(); got != 1 {
		t.Fatalf("FailedJobs = %d, want 1", got)
	}
	for i, want := range []bool{true, false, true} {
		jr := batch.Jobs[i]
		if jr.Complete != want {
			t.Errorf("job %d: Complete = %v, want %v (err %v)", i, jr.Complete, want, jr.Err)
		}
		if want && (jr.Best == nil || jr.Err != nil) {
			t.Errorf("job %d: healthy job missing results: best=%v err=%v", i, jr.Best, jr.Err)
		}
	}
	if jr := batch.Jobs[1]; jr.Err == nil || !strings.Contains(jr.Err.Error(), "GPU board unreachable") {
		t.Errorf("failed job error = %v", batch.Jobs[1].Err)
	}
	// The legacy Run surface still fails all-or-nothing on the same input.
	if _, err := Run([]Job{{Network: "lenet5", Mode: primitives.ModeGPGPU, Episodes: 60, Samples: 2}},
		Options{Profile: failing}); err == nil {
		t.Error("Run should surface the job error")
	}
}

// TestRunContextCancellationFlushesPartialResults: cancel mid-batch;
// the call returns promptly with Canceled set, completed seeds intact,
// unfinished jobs marked with a cancellation error — and no leaked
// worker goroutines.
func TestRunContextCancellationFlushesPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	slowish := func(c context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		if done.Add(1) == 1 {
			defer cancel() // first profiling run completes, then the batch is interrupted
		}
		return profile.RunContext(c, net, profile.NewSimSource(net, platform.JetsonTX2Like()),
			profile.Options{Mode: mode, Samples: samples})
	}
	jobs := []Job{
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1, 2, 3, 4, 5, 6}, Episodes: 80, Samples: 2},
		{Network: "mobilenet-v1", Mode: primitives.ModeCPU, Seeds: []int64{1, 2, 3, 4}, Episodes: 80, Samples: 2},
	}
	before := runtime.NumGoroutine()
	batch, err := RunContext(ctx, jobs, Options{Workers: 1, Profile: slowish})
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Canceled {
		t.Error("Canceled not set")
	}
	var ran, skipped int
	for _, jr := range batch.Jobs {
		for _, sr := range jr.Seeds {
			if sr.Result != nil {
				ran++
			} else {
				skipped++
			}
		}
		if !jr.Complete {
			if jr.Err == nil || !errors.Is(jr.Err, context.Canceled) {
				t.Errorf("incomplete job %s: err = %v, want context.Canceled", jr.Job.Network, jr.Err)
			}
		}
	}
	if ran == 0 {
		t.Error("no partial results survived cancellation")
	}
	if skipped == 0 {
		t.Error("cancellation skipped nothing — cancel landed too late to test anything")
	}
	// Workers must have exited: allow a little scheduler slack.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d before, %d after cancellation", before, after)
	}
}

// TestRunContextFaultDeterminismAcrossWorkers: with fault injection
// active, the batch outcome is still a pure function of (jobs, seeds,
// fault seed) — 1 worker and 8 workers produce byte-equal tables and
// identical search results.
func TestRunContextFaultDeterminismAcrossWorkers(t *testing.T) {
	jobs := []Job{
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Seeds: []int64{1, 2, 3}, Episodes: 80, Samples: 3},
		{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{4, 5}, Episodes: 80, Samples: 3},
	}
	faults := profile.FaultConfig{
		Seed: 99, TransientRate: 0.08, NaNRate: 0.04, SpikeRate: 0.06, SpikeFactor: 40,
	}
	robust := profile.DefaultRobust()
	robust.SampleTimeout = 200 * time.Millisecond
	run := func(workers int) *BatchResult {
		b, err := RunContext(context.Background(), jobs,
			Options{Workers: workers, Faults: &faults, Robust: robust})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(1), run(8)
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Err != nil || jb.Err != nil {
			t.Fatalf("job %d failed under faults: %v / %v", i, ja.Err, jb.Err)
		}
		da, _ := ja.Table.MarshalJSON()
		db, _ := jb.Table.MarshalJSON()
		if string(da) != string(db) {
			t.Errorf("job %d: fault-injected tables differ across worker counts", i)
		}
		if ja.Best.Time != jb.Best.Time || ja.BestSeed != jb.BestSeed {
			t.Errorf("job %d: best differs across worker counts", i)
		}
		if (ja.Profile == nil) != (jb.Profile == nil) {
			t.Fatalf("job %d: report presence differs", i)
		}
		if ja.Profile != nil && ja.Profile.Render() != jb.Profile.Render() {
			t.Errorf("job %d: degradation reports differ across worker counts", i)
		}
	}
}

// TestRunContextSearchPanicIsolated: a panic inside one unit's search
// path fails that job with a captured stack; sibling jobs complete.
func TestRunContextSearchPanicIsolated(t *testing.T) {
	var calls atomic.Int64
	pf := countingProfile(platform.JetsonTX2Like(), &calls)
	exploding := func(ctx context.Context, net *nn.Network, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		if mode == primitives.ModeGPGPU {
			panic("profiler bug")
		}
		return pf(ctx, net, mode, samples)
	}
	batch, err := RunContext(context.Background(), []Job{
		{Network: "lenet5", Mode: primitives.ModeCPU, Episodes: 60, Samples: 2},
		{Network: "lenet5", Mode: primitives.ModeGPGPU, Episodes: 60, Samples: 2},
	}, Options{Workers: 2, Profile: exploding})
	if err != nil {
		t.Fatal(err)
	}
	if jr := batch.Jobs[0]; !jr.Complete || jr.Err != nil {
		t.Errorf("healthy sibling damaged: complete=%v err=%v", jr.Complete, jr.Err)
	}
	jr := batch.Jobs[1]
	if jr.Err == nil || !strings.Contains(jr.Err.Error(), "panicked") {
		t.Fatalf("panicking job err = %v", jr.Err)
	}
	if !strings.Contains(jr.Err.Error(), "robust_test") {
		t.Error("panic error lost the captured stack")
	}
}

// TestRunContextDegradationReportSurfaces: a fault schedule with
// permanent failures produces a job-level profile report whose
// exclusions match the (still valid) table.
func TestRunContextDegradationReportSurfaces(t *testing.T) {
	robust := profile.DefaultRobust()
	robust.SampleTimeout = 100 * time.Millisecond
	robust.BackoffBase = 100 * time.Microsecond
	faults := profile.FaultConfig{Seed: 42, TransientRate: 0.05, PermanentRate: 0.04, NaNRate: 0.03}
	batch, err := RunContext(context.Background(),
		[]Job{{Network: "lenet5", Mode: primitives.ModeGPGPU, Episodes: 80, Samples: 3}},
		Options{Workers: 2, Faults: &faults, Robust: robust})
	if err != nil {
		t.Fatal(err)
	}
	jr := batch.Jobs[0]
	if jr.Err != nil {
		t.Fatal(jr.Err)
	}
	if jr.Profile == nil || !jr.Profile.Flaky() {
		t.Fatal("fault-injected run produced no report activity")
	}
	data, err := jr.Table.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lut.Load(data, jr.Net); err != nil {
		t.Errorf("degraded table failed Load round trip: %v", err)
	}
}
