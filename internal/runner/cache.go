package runner

import (
	"sync"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/searchplan"
)

// cacheKey identifies one profiling run. Two jobs that agree on all
// three fields consume byte-identical look-up tables (profiling is
// deterministic per sample index), so the table is built once and
// shared.
type cacheKey struct {
	network string
	mode    primitives.Mode
	samples int
}

// cacheEntry is one in-flight or completed profiling run. ready is
// closed when tab/plan/rep/err are final; waiters block on it instead
// of holding the cache lock across the (expensive) build. The entry
// carries the table's compiled search plan too, so a batch compiles
// each distinct table exactly once no matter how many (job, seed)
// units search it.
type cacheEntry struct {
	ready chan struct{}
	tab   *lut.Table
	plan  *searchplan.Plan
	rep   *profile.Report
	err   error
}

// tableCache is a keyed single-flight cache: the first request for a
// key builds the table, every concurrent or later request for the same
// key waits for (or immediately gets) that one result.
type tableCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    int
	misses  int
}

func newTableCache() *tableCache {
	return &tableCache{entries: map[cacheKey]*cacheEntry{}}
}

// get returns the table for key, building it with build on the first
// request. Concurrent callers with the same key share the single
// build; waiters coalesced onto a failing build all see its error, but
// the failed entry is then evicted, so the key's next get retries the
// build instead of replaying a cached failure forever — a transient
// board outage must not poison the batch.
func (c *tableCache) get(key cacheKey, build func() (*lut.Table, *profile.Report, error)) (*lut.Table, *searchplan.Plan, *profile.Report, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.tab, e.plan, e.rep, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.tab, e.rep, e.err = build()
	if e.err != nil {
		c.mu.Lock()
		// Guard on identity: a later successful rebuild must not be
		// evicted by a stale failure.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	} else if e.tab != nil {
		// Compile before publishing, so every waiter shares the one
		// plan.
		e.plan = searchplan.Compile(e.tab)
	}
	close(e.ready)
	return e.tab, e.plan, e.rep, e.err
}

// stats returns the lookup counters: hits is the number of requests
// served from (or coalesced into) an existing entry, misses the number
// of distinct builds executed.
func (c *tableCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
