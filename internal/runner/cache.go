package runner

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lut"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/searchplan"
)

// cacheKey identifies one profiling run. Two jobs that agree on all
// three fields consume byte-identical look-up tables (profiling is
// deterministic per sample index), so the table is built once and
// shared.
type cacheKey struct {
	network string
	mode    primitives.Mode
	samples int
}

// String renders the key in the canonical form the cache indexes by.
// External composers of the cache (runner.Flight) bring their own key
// strings — e.g. the serve daemon adds the platform preset, which a
// batch never varies.
func (k cacheKey) String() string {
	return fmt.Sprintf("%s|%d|%d", k.network, int(k.mode), k.samples)
}

// cacheEntry is one in-flight or completed profiling run. ready is
// closed when tab/plan/rep/err are final; waiters block on it instead
// of holding the cache lock across the (expensive) build. The entry
// carries the table's compiled search plan too, so a batch compiles
// each distinct table exactly once no matter how many (job, seed)
// units search it.
type cacheEntry struct {
	ready chan struct{}
	tab   *lut.Table
	plan  *searchplan.Plan
	rep   *profile.Report
	err   error
}

// tableCache is a keyed single-flight cache: the first request for a
// key builds the table, every concurrent or later request for the same
// key waits for (or immediately gets) that one result.
//
// In sequential mode (newSequentialTableCache) there is exactly one
// caller, so the single-flight machinery is pure overhead: get skips
// the mutex and the ready-channel parking entirely and runs as a plain
// map lookup + build. The semantics are identical — each key builds at
// most once, failed builds are not cached — but a one-worker batch
// pays no synchronization cost (the workers=1 regression guard,
// TestSequentialCacheNeverParks, pins this).
type tableCache struct {
	seq     bool
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
	// parked counts get calls that actually blocked on another
	// caller's in-flight build — always zero in sequential mode.
	parked atomic.Int64
}

func newTableCache() *tableCache {
	return &tableCache{entries: map[string]*cacheEntry{}}
}

// newSequentialTableCache returns a cache for a one-worker batch: same
// contract, no locking, no parking.
func newSequentialTableCache() *tableCache {
	return &tableCache{seq: true, entries: map[string]*cacheEntry{}}
}

// get returns the table for key, building it with build on the first
// request. Concurrent callers with the same key share the single
// build; waiters coalesced onto a failing build all see its error, but
// the failed entry is then evicted, so the key's next get retries the
// build instead of replaying a cached failure forever — a transient
// board outage must not poison the batch.
func (c *tableCache) get(key string, build func() (*lut.Table, *profile.Report, error)) (*lut.Table, *searchplan.Plan, *profile.Report, error) {
	if c.seq {
		return c.getSeq(key, build)
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
			// Build already final; no parking.
		default:
			c.parked.Add(1)
			<-e.ready
		}
		return e.tab, e.plan, e.rep, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.tab, e.rep, e.err = build()
	if e.err != nil {
		c.mu.Lock()
		// Guard on identity: a later successful rebuild must not be
		// evicted by a stale failure.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	} else if e.tab != nil {
		// Compile before publishing, so every waiter shares the one
		// plan.
		e.plan = searchplan.Compile(e.tab)
	}
	close(e.ready)
	return e.tab, e.plan, e.rep, e.err
}

// getSeq is the sequential-mode get: exactly one goroutine uses the
// cache, so a plain map is the whole implementation. Entries are
// stored with their ready channel already closed so the shared stats
// and any accidental concurrent read still behave.
func (c *tableCache) getSeq(key string, build func() (*lut.Table, *profile.Report, error)) (*lut.Table, *searchplan.Plan, *profile.Report, error) {
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e.tab, e.plan, e.rep, e.err
	}
	c.misses++
	e := &cacheEntry{ready: closedChan()}
	e.tab, e.rep, e.err = build()
	if e.err != nil {
		// Mirror the concurrent path: failures are not cached, so the
		// next request for this key retries the build.
		return e.tab, nil, e.rep, e.err
	}
	if e.tab != nil {
		e.plan = searchplan.Compile(e.tab)
	}
	c.entries[key] = e
	return e.tab, e.plan, e.rep, e.err
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// evict removes key's completed entry so the next get re-runs the
// build — how the serve daemon's plan-health machinery forces a
// re-profile of a table whose measurements drifted or whose candidates
// were dropped by breaker fast-fails. An in-flight build is left
// alone (its waiters must all observe the one result; the caller can
// evict again once it completes). Returns whether an entry was
// removed.
func (c *tableCache) evict(key string) bool {
	if c.seq {
		if _, ok := c.entries[key]; ok {
			delete(c.entries, key)
			return true
		}
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	select {
	case <-e.ready:
	default:
		return false
	}
	delete(c.entries, key)
	return true
}

// stats returns the lookup counters: hits is the number of requests
// served from (or coalesced into) an existing entry, misses the number
// of distinct builds executed.
func (c *tableCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// parkedWaiters reports how many get calls blocked behind another
// caller's in-flight build — the quantity the workers=1 bypass
// eliminates.
func (c *tableCache) parkedWaiters() int { return int(c.parked.Load()) }
