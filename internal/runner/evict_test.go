package runner

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/profile"
)

// Eviction contract (plan-health): evict removes a completed entry so
// the next get rebuilds, returns false for unknown keys, and never
// tears an in-flight build out from under its waiters.

func TestEvictRebuildsOnNextGet(t *testing.T) {
	tab := seqTestTable(t)
	for name, c := range map[string]*tableCache{
		"sequential": newSequentialTableCache(),
		"concurrent": newTableCache(),
	} {
		t.Run(name, func(t *testing.T) {
			builds := 0
			build := func() (*lut.Table, *profile.Report, error) {
				builds++
				return tab, nil, nil
			}
			if c.evict("lenet5|0|2") {
				t.Fatal("evict of an empty cache returned true")
			}
			if _, _, _, err := c.get("lenet5|0|2", build); err != nil {
				t.Fatal(err)
			}
			if !c.evict("lenet5|0|2") {
				t.Fatal("evict of a completed entry returned false")
			}
			if c.evict("lenet5|0|2") {
				t.Fatal("second evict of the same key returned true")
			}
			got, plan, _, err := c.get("lenet5|0|2", build)
			if err != nil {
				t.Fatal(err)
			}
			if got != tab || plan == nil {
				t.Fatal("rebuild after evict returned a broken entry")
			}
			if builds != 2 {
				t.Fatalf("build ran %d times, want 2 (rebuild after evict)", builds)
			}
			if _, misses := c.stats(); misses != 2 {
				t.Fatalf("misses = %d, want 2", misses)
			}
		})
	}
}

func TestEvictLeavesInFlightBuildAlone(t *testing.T) {
	tab := seqTestTable(t)
	f := NewFlight()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan *lut.Table, 1)
	go func() {
		got, _, _, _ := f.Get("k", func() (*lut.Table, *profile.Report, error) {
			close(started)
			<-release
			return tab, nil, nil
		})
		done <- got
	}()
	<-started
	if f.Evict("k") {
		t.Error("evict removed an in-flight build")
	}
	close(release)
	if got := <-done; got != tab {
		t.Fatal("in-flight build returned the wrong table")
	}
	// The entry survived the attempted eviction: this Get is a hit.
	if _, _, _, err := f.Get("k", func() (*lut.Table, *profile.Report, error) {
		t.Error("build re-ran after a refused eviction")
		return tab, nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := f.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// Once the build is final, eviction succeeds and the next Get
	// rebuilds.
	if !f.Evict("k") {
		t.Fatal("evict of the now-completed entry returned false")
	}
	rebuilt := false
	if _, _, _, err := f.Get("k", func() (*lut.Table, *profile.Report, error) {
		rebuilt = true
		return tab, nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("Get after a successful eviction did not rebuild")
	}
}
