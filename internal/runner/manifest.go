package runner

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/store"
)

// Manifest-aware batching: with Options.Manifest set, every completed
// (network, mode, seed) unit is journaled together with a digest of
// the look-up table it was computed from, and the table itself is kept
// as a checksummed blob. A re-invoked batch restores every journaled
// unit whose record parses, whose stored LUT passes its envelope CRC
// and matches the record's digest, and whose assignment re-evaluates
// on that LUT to exactly the recorded time — anything less re-runs the
// unit from scratch. Restored units therefore contribute byte-for-byte
// the numbers the original run produced, which is what makes an
// interrupted-and-resumed sweep's summary identical to an
// uninterrupted one.
//
// One caveat: profiling degradation reports are not journaled, so a
// resumed job restored from the manifest carries a nil Profile report
// even if the original profiling run degraded. Under the deterministic
// simulator (no fault injection) the two summaries are identical.

// unitRecord is the journal payload for one completed (job, seed)
// unit. Seconds round-trips exactly through JSON (Go emits the
// shortest representation that parses back to the same float64), so a
// restored result is bit-identical to the one originally computed.
type unitRecord struct {
	Seconds    float64 `json:"seconds"`
	Assignment []int   `json:"assignment"`
	LUTCRC     uint32  `json:"lut_crc"`
}

// unitKey names one unit in the journal. Episodes and samples are part
// of the identity: a record computed under a different budget must not
// satisfy this run's unit.
func unitKey(j Job, seed int64) string {
	return fmt.Sprintf("%s|%s|seed=%d|ep=%d|samples=%d", j.Network, j.Mode, seed, j.Episodes, j.Samples)
}

// lutBlobName names the stored look-up table for a job's profiling
// combination.
func lutBlobName(j Job) string {
	return fmt.Sprintf("luts/%s-%s-s%d.lut", j.Network, strings.ToLower(j.Mode.String()), j.Samples)
}

// toResult rebuilds a search result from a journal record, verifying
// it against the restored table: assignment shape, candidate
// membership per layer, and — the digest check — that the table
// re-evaluates the assignment to exactly the recorded time. A record
// that fails any check reports false and the unit re-runs.
func (rec unitRecord) toResult(tab *lut.Table, episodes int) (*core.Result, bool) {
	if tab == nil || len(rec.Assignment) != tab.NumLayers() {
		return nil, false
	}
	ids := make([]primitives.ID, len(rec.Assignment))
	for i, a := range rec.Assignment {
		id := primitives.ID(a)
		found := false
		for _, c := range tab.Candidates(i) {
			if c == id {
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
		ids[i] = id
	}
	if tab.TotalTime(ids) != rec.Seconds {
		return nil, false
	}
	return &core.Result{Assignment: ids, Time: rec.Seconds, Episodes: episodes}, true
}

// manifestLUTs bridges the single-flight table cache and the manifest
// blob store: it loads stored tables (verifying envelope CRC and full
// lut.Load validation), persists freshly profiled ones, and remembers
// each combination's blob CRC so unit records can embed the digest of
// the exact table they were computed from.
type manifestLUTs struct {
	man *store.Manifest

	mu   sync.Mutex
	crcs map[cacheKey]uint32
}

func newManifestLUTs(man *store.Manifest) *manifestLUTs {
	return &manifestLUTs{man: man, crcs: map[cacheKey]uint32{}}
}

// load reads and validates a stored table for the job's combination.
func (m *manifestLUTs) load(key cacheKey, j Job, net *nn.Network) (*lut.Table, uint32, error) {
	payload, crc, err := m.man.ReadBlob(lutBlobName(j))
	if err != nil {
		return nil, 0, err
	}
	tab, err := lut.Load(payload, net)
	if err != nil {
		return nil, 0, err
	}
	if tab.Mode != j.Mode {
		return nil, 0, fmt.Errorf("runner: stored LUT is for mode %s, job wants %s", tab.Mode, j.Mode)
	}
	m.setCRC(key, crc)
	return tab, crc, nil
}

// save persists a freshly profiled table as the combination's blob.
func (m *manifestLUTs) save(key cacheKey, j Job, tab *lut.Table) error {
	payload, err := json.Marshal(tab)
	if err != nil {
		return err
	}
	crc, err := m.man.WriteBlob(lutBlobName(j), payload)
	if err != nil {
		return err
	}
	m.setCRC(key, crc)
	return nil
}

func (m *manifestLUTs) setCRC(key cacheKey, crc uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crcs[key] = crc
}

// crc returns the blob digest recorded for a combination this run.
func (m *manifestLUTs) crc(key cacheKey) (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.crcs[key]
	return v, ok
}

// record journals one completed unit. The caller guarantees the unit's
// table went through load or save, so the digest is always available.
func (m *manifestLUTs) record(j Job, seed int64, res *core.Result, key cacheKey) error {
	crc, ok := m.crc(key)
	if !ok {
		return fmt.Errorf("runner: no LUT digest for %s/%s", j.Network, j.Mode)
	}
	assignment := make([]int, len(res.Assignment))
	for i, id := range res.Assignment {
		assignment[i] = int(id)
	}
	return m.man.Put(unitKey(j, seed), unitRecord{
		Seconds:    res.Time,
		Assignment: assignment,
		LUTCRC:     crc,
	})
}

// restore scans the journal for units that can be skipped, fills their
// result slots, and returns which units remain pending. Tables are
// loaded and verified once per profiling combination.
func (m *manifestLUTs) restore(units []unit, defaulted []Job, nets map[string]*nn.Network,
	results [][]SeedResult, tables [][]*lut.Table) (skip []bool, restored int) {
	skip = make([]bool, len(units))
	type combo struct {
		tab *lut.Table
		crc uint32
	}
	combos := map[cacheKey]*combo{}
	for u, un := range units {
		j := defaulted[un.job]
		seed := j.Seeds[un.seed]
		raw, ok := m.man.Get(unitKey(j, seed))
		if !ok {
			continue
		}
		var rec unitRecord
		if json.Unmarshal(raw, &rec) != nil {
			continue
		}
		key := cacheKey{network: j.Network, mode: j.Mode, samples: j.Samples}
		c, ok := combos[key]
		if !ok {
			c = &combo{}
			if tab, crc, err := m.load(key, j, nets[j.Network]); err == nil {
				c.tab, c.crc = tab, crc
			}
			combos[key] = c
		}
		if c.tab == nil || c.crc != rec.LUTCRC {
			continue
		}
		res, ok := rec.toResult(c.tab, j.Episodes)
		if !ok {
			continue
		}
		tables[un.job][un.seed] = c.tab
		results[un.job][un.seed] = SeedResult{Seed: seed, Result: res}
		skip[u] = true
		restored++
	}
	return skip, restored
}
