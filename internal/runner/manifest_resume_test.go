package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/primitives"
	"repro/internal/store"
)

func mustUnmarshal(t *testing.T, raw json.RawMessage, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatal(err)
	}
}

// resumeJobs is the standard workload of the manifest tests: two
// networks, both modes, two seeds each.
func resumeJobs() []Job {
	var jobs []Job
	for _, n := range []string{"lenet5", "mobilenet-v1"} {
		for _, m := range []primitives.Mode{primitives.ModeCPU, primitives.ModeGPGPU} {
			jobs = append(jobs, Job{Network: n, Mode: m, Seeds: []int64{1, 2}, Episodes: 150, Samples: 3})
		}
	}
	return jobs
}

// assertSameOutcome compares the deterministic quantities of two batch
// results: per-job best time/seed, per-seed times, and baselines.
func assertSameOutcome(t *testing.T, a, b *BatchResult) {
	t.Helper()
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Best == nil || jb.Best == nil {
			t.Fatalf("job %d missing best (%v, %v)", i, ja.Best, jb.Best)
		}
		if ja.Best.Time != jb.Best.Time || ja.BestSeed != jb.BestSeed {
			t.Errorf("job %d best %.9g/seed %d vs %.9g/seed %d",
				i, ja.Best.Time, ja.BestSeed, jb.Best.Time, jb.BestSeed)
		}
		if ja.VanillaSeconds != jb.VanillaSeconds || ja.BSLSeconds != jb.BSLSeconds {
			t.Errorf("job %d baselines differ", i)
		}
		for si := range ja.Seeds {
			ra, rb := ja.Seeds[si].Result, jb.Seeds[si].Result
			if (ra == nil) != (rb == nil) || (ra != nil && ra.Time != rb.Time) {
				t.Errorf("job %d seed %d results differ", i, si)
			}
		}
	}
}

func TestManifestResumeSkipsCompletedUnits(t *testing.T) {
	dir := t.TempDir()
	man, err := store.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 4, Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	man.Close()
	if first.Restored != 0 {
		t.Fatalf("fresh run restored %d units", first.Restored)
	}

	man2, err := store.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer man2.Close()
	second, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 4, Manifest: man2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8; second.Restored != want {
		t.Errorf("restored %d units, want %d", second.Restored, want)
	}
	if second.ProfileMisses != 0 {
		t.Errorf("resumed run re-profiled %d times", second.ProfileMisses)
	}
	assertSameOutcome(t, first, second)

	// The manifest matches a no-manifest run of the same jobs: the
	// durable path changes persistence, never results.
	plain, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, first, plain)
}

// TestManifestBudgetChangeInvalidatesRecords: records carry their
// episode/sample budget, so a run with a different budget re-runs
// everything instead of serving stale results.
func TestManifestBudgetChangeInvalidatesRecords(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1}, Episodes: 100, Samples: 3}}
	man, _ := store.OpenManifest(dir)
	if _, err := RunContext(context.Background(), jobs, Options{Manifest: man}); err != nil {
		t.Fatal(err)
	}
	man.Close()

	jobs[0].Episodes = 200
	man2, _ := store.OpenManifest(dir)
	defer man2.Close()
	res, err := RunContext(context.Background(), jobs, Options{Manifest: man2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored != 0 {
		t.Errorf("restored %d units across a budget change", res.Restored)
	}
}

// TestManifestCorruptLUTIsReprofiled: a flipped byte in a stored table
// blob fails its checksum; the affected units re-run (re-profiling
// deterministically) and the batch still converges to the same result.
func TestManifestCorruptLUTIsReprofiled(t *testing.T) {
	dir := t.TempDir()
	man, _ := store.OpenManifest(dir)
	first, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 4, Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	man.Close()

	// Flip one byte in one stored LUT.
	blob := filepath.Join(dir, "luts", "lenet5-cpu-s3.lut")
	raw, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(blob, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	man2, _ := store.OpenManifest(dir)
	defer man2.Close()
	second, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 4, Manifest: man2})
	if err != nil {
		t.Fatal(err)
	}
	// 2 units (lenet5/CPU seeds 1,2) re-ran; the other 6 restored.
	if second.Restored != 6 {
		t.Errorf("restored %d units, want 6", second.Restored)
	}
	if second.ProfileMisses != 1 {
		t.Errorf("re-profiled %d combinations, want 1", second.ProfileMisses)
	}
	assertSameOutcome(t, first, second)
}

// TestManifestInconsistentRecordIsRerun: a record whose stored time
// disagrees with the table's evaluation of its assignment (a forged or
// stale result) fails the digest check and re-runs.
func TestManifestInconsistentRecordIsRerun(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{{Network: "lenet5", Mode: primitives.ModeCPU, Seeds: []int64{1}, Episodes: 100, Samples: 3}}
	man, _ := store.OpenManifest(dir)
	first, err := RunContext(context.Background(), jobs, Options{Manifest: man})
	if err != nil {
		t.Fatal(err)
	}

	// Forge the record: keep the assignment, poison the time.
	j := jobs[0].withDefaults()
	key := unitKey(j, 1)
	raw, ok := man.Get(key)
	if !ok {
		t.Fatal("record missing")
	}
	var rec unitRecord
	mustUnmarshal(t, raw, &rec)
	rec.Seconds *= 0.5
	if err := man.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	man.Close()

	man2, _ := store.OpenManifest(dir)
	defer man2.Close()
	second, err := RunContext(context.Background(), jobs, Options{Manifest: man2})
	if err != nil {
		t.Fatal(err)
	}
	if second.Restored != 0 {
		t.Error("forged record restored")
	}
	assertSameOutcome(t, first, second)
}

// TestManifestCanceledRunResumes: cancel a batch immediately (nothing
// runs), then resume to completion — the interrupted-then-resumed
// outcome equals an uninterrupted one.
func TestManifestCanceledRunResumes(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	man, _ := store.OpenManifest(dir)
	interrupted, err := RunContext(ctx, resumeJobs(), Options{Workers: 2, Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted.Canceled {
		t.Fatal("batch not canceled")
	}
	man.Close()

	man2, _ := store.OpenManifest(dir)
	defer man2.Close()
	resumed, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 2, Manifest: man2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunContext(context.Background(), resumeJobs(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, resumed, plain)
}
