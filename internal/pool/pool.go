// Package pool provides the bounded worker pool shared by the batch
// runner (internal/runner) and the multi-seed ensembles of
// internal/core. Centralizing the fan-out keeps every concurrent path
// in the tree on the same, race-tested primitive instead of ad-hoc
// goroutine spawning — including the fault-tolerance behaviors: a
// panicking job fails that one job (with its stack captured) instead
// of crashing the process, and a canceled context stops workers from
// claiming further jobs without abandoning the ones in flight.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default concurrency: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// PanicError is one recovered job panic: the index that panicked, the
// recovered value, and the goroutine stack captured at recovery time.
type PanicError struct {
	// Index is the job index passed to fn.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %v", e.Index, e.Value)
}

// Outcome summarizes a RunContext call.
type Outcome struct {
	// Completed counts fn calls that returned normally.
	Completed int
	// Skipped counts indices never started because the context was
	// done first. Indices in flight at cancellation run to completion.
	Skipped int
	// Panics holds one entry per fn call that panicked, in index
	// order. Completed + Skipped + len(Panics) == n.
	Panics []*PanicError
}

// Err returns the first panic as an error, or nil.
func (o Outcome) Err() error {
	if len(o.Panics) == 0 {
		return nil
	}
	return o.Panics[0]
}

// Run invokes fn(i) for every i in [0, n), using at most workers
// concurrent goroutines, and returns when all calls have finished.
// workers <= 0 selects DefaultWorkers(). Items are claimed in index
// order, so with workers == 1 the calls are strictly sequential —
// callers exploit this to check that their aggregation is
// order-independent.
//
// fn must confine its writes to per-index state (e.g. results[i]);
// Run itself introduces no synchronization beyond the completion
// barrier, which does establish a happens-before edge between every
// fn call and Run's return.
//
// If any fn call panics, every remaining job still runs and the first
// panic (by index) is then re-raised on the calling goroutine —
// callers that need per-job panic isolation use RunContext.
func Run(n, workers int, fn func(int)) {
	out := RunContext(context.Background(), n, workers, fn)
	if err := out.Err(); err != nil {
		panic(err)
	}
}

// RunContext is Run under a context: workers stop claiming new indices
// once ctx is done (jobs already started run to completion — fn is
// responsible for observing ctx itself if it wants to stop early), and
// a panicking fn call is recovered, captured with its stack, and
// reported in the Outcome instead of crashing the process or
// deadlocking the completion barrier.
func RunContext(ctx context.Context, n, workers int, fn func(int)) Outcome {
	if n <= 0 {
		return Outcome{}
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	var (
		next      atomic.Int64
		completed atomic.Int64
		mu        sync.Mutex
		panics    []*PanicError
	)
	call := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				mu.Lock()
				panics = append(panics, &PanicError{Index: i, Value: v, Stack: debug.Stack()})
				mu.Unlock()
				return
			}
			completed.Add(1)
		}()
		fn(i)
	}
	work := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			call(i)
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	started := int(next.Load())
	if started > n {
		started = n
	}
	sort.Slice(panics, func(a, b int) bool { return panics[a].Index < panics[b].Index })
	return Outcome{
		Completed: int(completed.Load()),
		Skipped:   n - started,
		Panics:    panics,
	}
}
