// Package pool provides the bounded worker pool shared by the batch
// runner (internal/runner) and the multi-seed ensembles of
// internal/core. Centralizing the fan-out keeps every concurrent path
// in the tree on the same, race-tested primitive instead of ad-hoc
// goroutine spawning.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default concurrency: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run invokes fn(i) for every i in [0, n), using at most workers
// concurrent goroutines, and returns when all calls have finished.
// workers <= 0 selects DefaultWorkers(). Items are claimed in index
// order, so with workers == 1 the calls are strictly sequential —
// callers exploit this to check that their aggregation is
// order-independent.
//
// fn must confine its writes to per-index state (e.g. results[i]);
// Run itself introduces no synchronization beyond the completion
// barrier, which does establish a happens-before edge between every
// fn call and Run's return.
func Run(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
