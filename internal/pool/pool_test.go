package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(0, 4, func(int) { called = true })
	Run(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n <= 0")
	}
}

func TestRunSingleWorkerIsSequential(t *testing.T) {
	var order []int
	Run(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Run(50, workers, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, bound is %d", p, workers)
	}
}
