package pool

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(0, 4, func(int) { called = true })
	Run(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n <= 0")
	}
}

func TestRunSingleWorkerIsSequential(t *testing.T) {
	var order []int
	Run(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestRunContextRecoversPanics: a panicking job fails only itself —
// every other job still runs, the process survives, and the panic is
// reported with a captured stack. Run with several worker counts under
// -race.
func TestRunContextRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 40
		var ran [n]atomic.Int32
		out := RunContext(context.Background(), n, workers, func(i int) {
			ran[i].Add(1)
			if i%10 == 3 {
				panic("job exploded")
			}
		})
		if out.Completed != n-4 {
			t.Errorf("workers=%d: Completed = %d, want %d", workers, out.Completed, n-4)
		}
		if len(out.Panics) != 4 {
			t.Fatalf("workers=%d: %d panics, want 4", workers, len(out.Panics))
		}
		for k, pe := range out.Panics {
			if pe.Index != 10*k+3 {
				t.Errorf("panic %d at index %d, want %d (sorted)", k, pe.Index, 10*k+3)
			}
			if pe.Value != "job exploded" {
				t.Errorf("panic value = %v", pe.Value)
			}
			if !strings.Contains(string(pe.Stack), "pool_test") {
				t.Error("captured stack does not reach the panicking job")
			}
		}
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Errorf("workers=%d: job %d ran %d times despite sibling panics", workers, i, ran[i].Load())
			}
		}
		if err := out.Err(); err == nil || !strings.Contains(err.Error(), "job 3 panicked") {
			t.Errorf("Err() = %v", err)
		}
	}
}

// TestRunRepanicsAfterCompletion: the legacy Run surface still raises
// a job panic, but only after draining every job (no half-run batch).
func TestRunRepanicsAfterCompletion(t *testing.T) {
	var ran atomic.Int32
	defer func() {
		if recover() == nil {
			t.Error("Run swallowed the job panic")
		}
		if ran.Load() != 10 {
			t.Errorf("%d/10 jobs ran before the re-panic", ran.Load())
		}
	}()
	Run(10, 4, func(i int) {
		ran.Add(1)
		if i == 2 {
			panic("boom")
		}
	})
}

// TestRunContextCancellationSkipsRemaining: once the context is done,
// no new index is claimed; in-flight jobs finish and the outcome
// accounts for every index exactly once.
func TestRunContextCancellationSkipsRemaining(t *testing.T) {
	const n = 200
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	out := RunContext(ctx, n, 2, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if out.Skipped == 0 {
		t.Error("cancellation skipped nothing")
	}
	if got := out.Completed + out.Skipped + len(out.Panics); got != n {
		t.Errorf("accounting: %d + %d + %d != %d", out.Completed, out.Skipped, len(out.Panics), n)
	}
	if int(ran.Load()) != out.Completed {
		t.Errorf("ran %d jobs but Completed = %d", ran.Load(), out.Completed)
	}
}

// TestRunContextPreCanceled: an already-canceled context runs nothing.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := RunContext(ctx, 50, 4, func(int) { t.Error("job ran under canceled context") })
	if out.Skipped != 50 || out.Completed != 0 {
		t.Errorf("outcome = %+v, want all skipped", out)
	}
}

// TestRunContextCancellationIsPrompt: cancellation between jobs stops
// the pool without waiting for the whole queue.
func TestRunContextCancellationIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	var once atomic.Bool
	RunContext(ctx, 10000, 2, func(i int) {
		if once.CompareAndSwap(false, true) {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pool drained for %v after cancellation", elapsed)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Run(50, workers, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, bound is %d", p, workers)
	}
}
