package profile

import (
	"context"

	"repro/internal/lut"
	"repro/internal/primitives"
)

// FallibleSource is the error-aware measurement contract. Real boards
// are not the simulator: a primitive can crash, a driver can hang, a
// timer can return garbage — so every measurement may fail, and every
// measurement observes a context so a hung board cannot wedge the
// pipeline. The Measure* names deliberately differ from Source's
// methods so a single type may implement both contracts.
//
// Implementations must return promptly once ctx is done (returning
// ctx.Err()); the robust measurement layer relies on this for its
// per-sample timeout and for graceful shutdown.
type FallibleSource interface {
	// MeasureSample returns one latency observation (seconds) of
	// running layer i of the network with primitive p; sample indexes
	// the input image for reproducibility.
	MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error)
	// MeasureEdgePenalty returns the compatibility cost of feeding the
	// producer layer's output, computed by fp, into a consumer using
	// tp.
	MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error)
	// MeasureOutputPenalty returns the cost of returning the output
	// layer's result to the host when computed by p.
	MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error)
}

// FallibleEnergySource extends FallibleSource with error-aware energy
// measurements.
type FallibleEnergySource interface {
	FallibleSource
	// MeasureSampleEnergy returns one energy observation (joules) of
	// layer i under primitive p.
	MeasureSampleEnergy(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error)
	// MeasureEdgeEnergyPenalty returns the joules of the edge's
	// compatibility work.
	MeasureEdgeEnergyPenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error)
	// MeasureOutputEnergyPenalty returns the joules of the host-return
	// work.
	MeasureOutputEnergyPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error)
}

// ValidObservation reports whether v is a physically meaningful
// measurement: finite and non-negative — the invariant lut.Table
// enforces at write time. The robust measurement layer rejects (and
// retries) observations that fail it at the source boundary.
func ValidObservation(v float64) bool { return lut.ValidSeconds(v) }

// AsFallible adapts an infallible Source to the FallibleSource
// contract. A source that already implements FallibleSource (like the
// real engine's) is returned unchanged, so its genuine error reporting
// is preserved; otherwise each call checks the context and wraps the
// raw value in a nil error.
func AsFallible(src Source) FallibleSource {
	if f, ok := src.(FallibleSource); ok {
		return f
	}
	return infallible{src}
}

type infallible struct{ src Source }

func (a infallible) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return a.src.Sample(i, p, sample), nil
}

func (a infallible) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return a.src.EdgePenalty(producer, fp, tp), nil
}

func (a infallible) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return a.src.OutputPenalty(output, p), nil
}
