package profile

import (
	"context"
	"fmt"

	"repro/internal/primitives"
)

// RemeasureSample re-runs the robust measurement series for a single
// (layer, primitive) table cell — the canary primitive of the serve
// daemon's plan-health subsystem. It aggregates exactly like
// RunFallible's phase 1a (same policy, same per-sample indices, same
// outlier rejection), so against an unchanged deterministic source the
// fresh estimate reproduces the stored baseline bit-for-bit; any
// difference beyond the drift band is the environment moving, not the
// estimator.
func RemeasureSample(ctx context.Context, src FallibleSource, pol *Robust, i int, p *primitives.Primitive, samples int) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("profile: Samples must be positive, got %d", samples)
	}
	m := &meter{policy: pol, report: &Report{}}
	what := fmt.Sprintf("canary layer %d with %s", i, p.Name)
	return m.series(ctx, what, samples, func(ctx context.Context, s int) (float64, error) {
		return src.MeasureSample(ctx, i, p, s)
	})
}
