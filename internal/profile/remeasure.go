package profile

import (
	"context"
	"fmt"

	"repro/internal/primitives"
)

// RemeasureSample re-runs the robust measurement series for a single
// (layer, primitive) table cell — the canary primitive of the serve
// daemon's plan-health subsystem. It aggregates exactly like
// RunFallible's phase 1a (same policy, same per-sample indices, same
// outlier rejection), so against an unchanged deterministic source the
// fresh estimate reproduces the stored baseline bit-for-bit; any
// difference beyond the drift band is the environment moving, not the
// estimator.
func RemeasureSample(ctx context.Context, src FallibleSource, pol *Robust, i int, p *primitives.Primitive, samples int) (float64, error) {
	what := fmt.Sprintf("canary layer %d with %s", i, p.Name)
	return RobustSeries(ctx, pol, what, samples, func(ctx context.Context, s int) (float64, error) {
		return src.MeasureSample(ctx, i, p, s)
	})
}

// RobustSeries aggregates samples of an arbitrary measurement under
// the robust policy — the same timeout/retry/outlier-rejection series
// the profiling protocol applies to table cells. It is the measurement
// entry point for callers that time quantities outside the
// FallibleSource shape, such as the autotuner's parameterized kernel
// variants. A nil policy falls back to a plain mean, mirroring
// RunFallible with Options.Robust nil.
func RobustSeries(ctx context.Context, pol *Robust, what string, samples int, f func(ctx context.Context, sample int) (float64, error)) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("profile: Samples must be positive, got %d", samples)
	}
	m := &meter{policy: pol, report: &Report{}}
	return m.series(ctx, what, samples, f)
}
