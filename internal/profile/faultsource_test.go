package profile

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// testFaults is an aggressive schedule exercising every fault type
// with fast stalls, sized for test budgets.
func testFaults(seed int64) FaultConfig {
	return FaultConfig{
		Seed:          seed,
		TransientRate: 0.10,
		PermanentRate: 0.05,
		StallRate:     0.02,
		Stall:         10 * time.Millisecond,
		NaNRate:       0.05,
		SpikeRate:     0.08,
		SpikeFactor:   50,
	}
}

func runFaulty(t *testing.T, seed int64) (*lut.Table, *Report) {
	t.Helper()
	net := models.MustBuild("lenet5")
	src := NewFaultSource(NewSimSource(net, platform.JetsonTX2Like()), testFaults(seed))
	pol := robustFast()
	pol.SampleTimeout = 5 * time.Millisecond // faster than the stall
	tab, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeGPGPU, Samples: 5, Robust: pol,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return tab, rep
}

// TestFaultInjectionEndToEnd: under a seeded schedule mixing transient
// errors, stalls, NaN samples and permanent failures, profiling
// completes; transient faults are retried away, persistent ones land
// in the degradation report, and the result is a valid table.
func TestFaultInjectionEndToEnd(t *testing.T) {
	net := models.MustBuild("lenet5")
	tab, rep := runFaulty(t, 42)

	if !rep.Flaky() {
		t.Error("schedule injected nothing — rates too low for this net?")
	}
	if rep.Retries == 0 || rep.Invalid == 0 {
		t.Errorf("expected retries and invalid observations, got %d/%d", rep.Retries, rep.Invalid)
	}
	// Permanent failures must appear as exclusions, and every exclusion
	// must be reflected in the candidate sets.
	for _, e := range rep.Excluded {
		p, ok := primitives.ByName(e.Primitive)
		if !ok {
			t.Fatalf("exclusion names unknown primitive %q", e.Primitive)
		}
		if isCandidateOf(tab, e.Layer, p.Idx) {
			t.Errorf("excluded %s still candidate of layer %d", e.Primitive, e.Layer)
		}
	}
	// The degraded table survives a serialize/Load round trip — the
	// acceptance bar for "reduced but valid".
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lut.Load(data, net); err != nil {
		t.Errorf("faulty-profiled table failed Load round trip: %v", err)
	}
}

// TestFaultScheduleDeterministic: equal seeds produce byte-equal
// tables and identical reports; different seeds produce different
// fault patterns.
func TestFaultScheduleDeterministic(t *testing.T) {
	ta, ra := runFaulty(t, 7)
	tb, rb := runFaulty(t, 7)
	da, _ := ta.MarshalJSON()
	db, _ := tb.MarshalJSON()
	if string(da) != string(db) {
		t.Error("same fault seed produced different tables")
	}
	if ra.Render() != rb.Render() {
		t.Errorf("same fault seed produced different reports:\n%s\nvs\n%s", ra.Render(), rb.Render())
	}
	_, rc := runFaulty(t, 8)
	if ra.Render() == rc.Render() && ra.Retries == rc.Retries && ra.Invalid == rc.Invalid {
		t.Error("different fault seeds produced identical fault patterns")
	}
}

// TestFaultSourceInjectedErrorsAreTyped: injected failures carry
// ErrInjected so they are distinguishable from real board errors.
func TestFaultSourceInjectedErrorsAreTyped(t *testing.T) {
	net := models.MustBuild("lenet5")
	src := NewFaultSource(NewSimSource(net, platform.JetsonTX2Like()),
		FaultConfig{Seed: 1, TransientRate: 1, TransientBurst: 1})
	p := primitives.ByID(primitives.PVanilla.Idx)
	_, err := src.MeasureSample(context.Background(), 1, p, 0)
	var inj *ErrInjected
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want *ErrInjected", err)
	}
	// The transient burst clears: the second attempt succeeds.
	if _, err := src.MeasureSample(context.Background(), 1, p, 0); err != nil {
		t.Fatalf("attempt after burst failed: %v", err)
	}
}

// TestFaultSourceStallHonorsContext: a stalled measurement unblocks as
// soon as its context is canceled — the property the per-sample
// timeout and SIGINT handling depend on.
func TestFaultSourceStallHonorsContext(t *testing.T) {
	net := models.MustBuild("lenet5")
	src := NewFaultSource(NewSimSource(net, platform.JetsonTX2Like()),
		FaultConfig{Seed: 1, StallRate: 1, Stall: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := src.MeasureSample(ctx, 1, primitives.ByID(primitives.PVanilla.Idx), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("stall ignored the context")
	}
}
