package profile

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"
)

// Robust is the fault-tolerance policy for profiling on real, flaky
// hardware: per-sample timeouts bound hung measurements, transient
// failures are retried with exponential backoff plus deterministic
// jitter, invalid observations (NaN, +/-Inf, negative) are rejected at
// the source boundary, and the per-measurement aggregate is
// outlier-robust (MAD rejection followed by a trimmed mean) instead of
// a raw mean, so a single scheduling spike cannot mislead the search.
//
// The zero value disables each mechanism it configures (no timeout, no
// retries, raw mean); DefaultRobust returns the tuned policy the CLI
// uses. A nil *Robust in Options selects the strict legacy protocol:
// the first failure or invalid observation aborts profiling with an
// error, and samples are aggregated with the plain mean.
type Robust struct {
	// SampleTimeout caps one measurement attempt; 0 disables. A source
	// that ignores its context still leaks a goroutine until it
	// returns, but the pipeline itself moves on.
	SampleTimeout time.Duration
	// MaxRetries is the number of extra attempts after the first for a
	// failing or invalid measurement.
	MaxRetries int
	// BackoffBase is the delay before the first retry; it doubles per
	// attempt up to BackoffMax. 0 retries immediately.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff; 0 means uncapped.
	BackoffMax time.Duration
	// JitterSeed drives the deterministic +/-50% backoff jitter, so two
	// runs with the same seed sleep identically (results never depend
	// on the jitter either way).
	JitterSeed int64
	// TrimFraction is the fraction of samples trimmed from each tail
	// before averaging (0.1 = drop the lowest and highest 10%).
	TrimFraction float64
	// MADK rejects samples more than MADK normalized median absolute
	// deviations from the median before trimming; 0 disables.
	MADK float64
	// MinValidFrac is the fraction of a measurement's samples that must
	// survive timeout/retry for the measurement to count; below it the
	// primitive is treated as persistently failing on that layer.
	// 0 selects 0.5.
	MinValidFrac float64
}

// DefaultRobust returns the policy used by the CLI: 2s sample timeout,
// 3 retries with 2ms..50ms backoff, 10% trimmed mean and 5-MAD
// rejection.
func DefaultRobust() *Robust {
	return &Robust{
		SampleTimeout: 2 * time.Second,
		MaxRetries:    3,
		BackoffBase:   2 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		TrimFraction:  0.1,
		MADK:          5,
		MinValidFrac:  0.5,
	}
}

// minValid returns the number of valid samples required out of n.
func (r *Robust) minValid(n int) int {
	frac := r.MinValidFrac
	if frac <= 0 {
		frac = 0.5
	}
	m := int(math.Ceil(frac * float64(n)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// backoffDelay returns the jittered sleep before retry attempt a
// (1-based) of the measurement identified by what; 0 when backoff is
// disabled.
func (r *Robust) backoffDelay(what string, sample, attempt int) time.Duration {
	if r.BackoffBase <= 0 {
		return 0
	}
	d := r.BackoffBase << (attempt - 1)
	if r.BackoffMax > 0 && d > r.BackoffMax {
		d = r.BackoffMax
	}
	// Deterministic jitter in [0.5, 1.5): seeded by the measurement
	// identity so runs with equal seeds sleep identically.
	return time.Duration(float64(d) * (0.5 + u01(r.JitterSeed, what, sample, attempt)))
}

// backoff sleeps for backoffDelay, aborting early if ctx is done.
func (r *Robust) backoff(ctx context.Context, what string, sample, attempt int) error {
	d := r.backoffDelay(what, sample, attempt)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// u01 maps (seed, key, nums) to a deterministic uniform value in
// [0, 1) — shared by the backoff jitter and the fault injector.
func u01(seed int64, key string, nums ...int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	for _, n := range nums {
		fmt.Fprintf(h, "|%d", n)
	}
	// splitmix64 finalizer decorrelates nearby FNV states.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// meter executes measurements under a policy, accumulating counters
// and exclusions into the Report. A nil policy selects the strict
// legacy behavior.
type meter struct {
	policy *Robust
	report *Report
}

// attempt runs one measurement with timeout, validity checking at the
// source boundary, and bounded retry. what identifies the measurement
// in errors and jitter hashing; sample disambiguates retries of
// different samples of the same measurement.
func (m *meter) attempt(ctx context.Context, what string, sample int, f func(context.Context) (float64, error)) (float64, error) {
	retries := 0
	var timeout time.Duration
	if m.policy != nil {
		retries = m.policy.MaxRetries
		timeout = m.policy.SampleTimeout
	}
	var lastErr error
	for a := 0; a <= retries; a++ {
		if a > 0 {
			// Respect the run's remaining deadline budget, not just the
			// per-sample timeout: a retry whose backoff sleep would
			// outlive the budget cannot possibly succeed, so fail now
			// and let the caller use what is left of the budget.
			if dl, ok := ctx.Deadline(); ok {
				if d := m.policy.backoffDelay(what, sample, a); time.Until(dl) <= d {
					return 0, fmt.Errorf("%s: retry budget exhausted after %d attempt(s): %w (last error: %v)",
						what, a, context.DeadlineExceeded, lastErr)
				}
			}
			m.report.Retries++
			if err := m.policy.backoff(ctx, what, sample, a); err != nil {
				return 0, err
			}
		}
		v, err := runBounded(ctx, timeout, f)
		if err == nil {
			if !ValidObservation(v) {
				m.report.Invalid++
				lastErr = fmt.Errorf("invalid observation %v", v)
				continue
			}
			return v, nil
		}
		if ctx.Err() != nil {
			// The run itself was canceled — don't retry.
			return 0, err
		}
		// A source that declares its error non-retryable (an open
		// circuit breaker's fast-fail) skips the remaining attempts:
		// retrying against a breaker that already knows the backend is
		// down only burns budget.
		var nr interface{ NoRetry() bool }
		if errors.As(err, &nr) && nr.NoRetry() {
			m.report.FastFails++
			return 0, fmt.Errorf("%s: %w", what, err)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			m.report.Timeouts++
		}
		lastErr = err
	}
	return 0, fmt.Errorf("%s: %d attempt(s) failed: %w", what, retries+1, lastErr)
}

// runBounded invokes f under an optional per-attempt deadline. The
// measurement runs in its own goroutine so a source that ignores its
// context cannot block the pipeline past the timeout (it leaks that
// goroutine until it returns — the price of preemption-free Go).
func runBounded(ctx context.Context, timeout time.Duration, f func(context.Context) (float64, error)) (float64, error) {
	if timeout <= 0 {
		return f(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type res struct {
		v   float64
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := f(actx)
		ch <- res{v, err}
	}()
	select {
	case <-actx.Done():
		return 0, actx.Err()
	case r := <-ch:
		return r.v, r.err
	}
}

// series measures n samples of one (layer, primitive) quantity and
// returns the aggregate. In strict mode (nil policy) any failure
// aborts; under a policy, failed samples are dropped and the
// measurement succeeds as long as minValid samples survive.
func (m *meter) series(ctx context.Context, what string, n int, f func(ctx context.Context, sample int) (float64, error)) (float64, error) {
	vals := make([]float64, 0, n)
	var lastErr error
	for s := 0; s < n; s++ {
		v, err := m.attempt(ctx, what, s, func(ctx context.Context) (float64, error) { return f(ctx, s) })
		if err != nil {
			if ctx.Err() != nil {
				return 0, err
			}
			if m.policy == nil {
				return 0, err
			}
			m.report.DroppedSamples++
			lastErr = err
			continue
		}
		vals = append(vals, v)
	}
	if m.policy == nil {
		return mean(vals), nil
	}
	if need := m.policy.minValid(n); len(vals) < need {
		return 0, fmt.Errorf("%s: only %d/%d samples valid (need %d): %w", what, len(vals), n, need, lastErr)
	}
	return m.aggregate(vals), nil
}

// single measures a one-shot quantity (edge or output penalty) under
// the retry/timeout machinery.
func (m *meter) single(ctx context.Context, what string, f func(context.Context) (float64, error)) (float64, error) {
	return m.attempt(ctx, what, 0, f)
}

// aggregate reduces valid samples to one value: MAD outlier rejection
// followed by a trimmed mean. Counters for rejected samples land in
// the report. Falls back to the plain mean when both mechanisms are
// disabled — and always when fewer than 3 samples remain, where robust
// statistics are meaningless.
func (m *meter) aggregate(vals []float64) float64 {
	p := m.policy
	if (p.MADK <= 0 && p.TrimFraction <= 0) || len(vals) < 3 {
		return mean(vals)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	kept := sorted
	if p.MADK > 0 {
		med := medianSorted(sorted)
		dev := make([]float64, len(sorted))
		for i, v := range sorted {
			dev[i] = math.Abs(v - med)
		}
		sort.Float64s(dev)
		// 1.4826 scales the MAD to a Gaussian sigma estimate.
		if mad := medianSorted(dev) * 1.4826; mad > 0 {
			filtered := kept[:0:0]
			for _, v := range sorted {
				if math.Abs(v-med) <= p.MADK*mad {
					filtered = append(filtered, v)
				} else {
					m.report.Outliers++
				}
			}
			if len(filtered) > 0 {
				kept = filtered
			}
		}
	}
	if p.TrimFraction > 0 {
		k := int(p.TrimFraction * float64(len(kept)))
		if 2*k < len(kept) {
			m.report.Outliers += 2 * k
			kept = kept[k : len(kept)-k]
		}
	}
	return mean(kept)
}

func mean(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
