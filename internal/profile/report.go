package profile

import (
	"fmt"
	"strings"

	"repro/internal/primitives"
)

// Exclusion records one (layer, primitive) candidate dropped by the
// graceful-degradation policy: the primitive persistently failed to
// profile on the layer (retries exhausted or too few valid samples),
// so it was removed from the candidate set and the search proceeds
// without it (every layer always retains Vanilla unless Vanilla itself
// is broken).
type Exclusion struct {
	// Layer is the layer index; LayerName its zoo name.
	Layer     int    `json:"layer"`
	LayerName string `json:"layer_name"`
	// Primitive is the dropped primitive's name.
	Primitive string `json:"primitive"`
	// Reason is the final error that exhausted the retry budget.
	Reason string `json:"reason"`
}

// EdgeExclusion records one compatibility pair whose penalty could not
// be measured; the pair's entry stays +Inf, so the search can never
// find it attractive, but both endpoint primitives remain usable via
// other pairings.
type EdgeExclusion struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	FromPrim string `json:"from_prim"`
	ToPrim   string `json:"to_prim"`
	Reason   string `json:"reason"`
}

// Report is the structured outcome of a fault-tolerant profiling run:
// what was dropped, what was retried, what was rejected. It is
// deterministic for a deterministic source (e.g. a seeded fault
// schedule), so batch outputs that embed it stay byte-reproducible.
type Report struct {
	// Network and Mode identify the profiled table.
	Network string          `json:"network"`
	Mode    primitives.Mode `json:"mode"`
	// Samples is the per-measurement sample budget.
	Samples int `json:"samples"`
	// Excluded lists (layer, primitive) candidates dropped after the
	// retry budget was exhausted.
	Excluded []Exclusion `json:"excluded,omitempty"`
	// EdgeExcluded lists compatibility pairs left unprofiled (+Inf).
	EdgeExcluded []EdgeExclusion `json:"edge_excluded,omitempty"`
	// Retries counts retry attempts performed (successful or not).
	Retries int `json:"retries"`
	// Timeouts counts attempts killed by the per-sample timeout.
	Timeouts int `json:"timeouts"`
	// Invalid counts observations rejected at the source boundary
	// (NaN, +/-Inf, negative).
	Invalid int `json:"invalid"`
	// Outliers counts valid observations discarded by the robust
	// aggregation (MAD rejection + trimming).
	Outliers int `json:"outliers"`
	// DroppedSamples counts samples abandoned after retries while the
	// measurement as a whole still succeeded.
	DroppedSamples int `json:"dropped_samples"`
	// FastFails counts attempts aborted by a non-retryable fast-fail
	// (an open circuit breaker). Candidates dropped by fast-fails were
	// never actually measured, so a table built with FastFails > 0 is
	// worth re-profiling once the breaker closes — the serve daemon's
	// plan-health canaries use this to evict degraded cached tables.
	FastFails int `json:"fast_fails,omitempty"`
}

// Degraded reports whether any candidate or pair was excluded — i.e.
// whether the search will run on a reduced (but valid) table.
func (r *Report) Degraded() bool {
	return len(r.Excluded) > 0 || len(r.EdgeExcluded) > 0
}

// Flaky reports whether any fault-tolerance machinery fired at all,
// even if nothing was permanently excluded.
func (r *Report) Flaky() bool {
	return r.Retries > 0 || r.Timeouts > 0 || r.Invalid > 0 || r.DroppedSamples > 0
}

// Lines renders the degradation outcome as human-readable lines, one
// per exclusion — the form the CLI prints. Deterministic for a
// deterministic source.
func (r *Report) Lines() []string {
	var out []string
	for _, e := range r.Excluded {
		out = append(out, fmt.Sprintf("dropped %s on layer %d (%s): %s", e.Primitive, e.Layer, e.LayerName, e.Reason))
	}
	for _, e := range r.EdgeExcluded {
		out = append(out, fmt.Sprintf("unprofiled pair (%s -> %s) on edge %d->%d: %s",
			e.FromPrim, e.ToPrim, e.From, e.To, e.Reason))
	}
	return out
}

// Render returns the full report as text: the counters plus every
// exclusion line.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profiling %s (%s, %d samples): %d retries, %d timeouts, %d invalid, %d outliers rejected, %d samples dropped\n",
		r.Network, r.Mode, r.Samples, r.Retries, r.Timeouts, r.Invalid, r.Outliers, r.DroppedSamples)
	if !r.Degraded() {
		b.WriteString("  no candidates excluded\n")
		return b.String()
	}
	for _, line := range r.Lines() {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}
