package profile

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// scriptedSource is a FallibleSource with per-call programmable
// behavior, layered over the simulator for realistic clean values.
// The attempt counter is mutex-protected: a timed-out attempt's
// goroutine may still be touching the map when the retry starts.
type scriptedSource struct {
	clean FallibleSource
	// sample intercepts MeasureSample; nil passes through.
	sample func(ctx context.Context, i int, p *primitives.Primitive, s, attempt int) (float64, bool, error)
	mu     sync.Mutex
	calls  map[string]int
}

func newScripted(t *testing.T, f func(ctx context.Context, i int, p *primitives.Primitive, s, attempt int) (float64, bool, error)) *scriptedSource {
	t.Helper()
	net := smallNet(t)
	return &scriptedSource{
		clean:  AsFallible(NewSimSource(net, platform.JetsonTX2Like())),
		sample: f,
		calls:  map[string]int{},
	}
}

func (s *scriptedSource) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	key := fmt.Sprintf("%d|%d|%d", i, p.Idx, sample)
	s.mu.Lock()
	attempt := s.calls[key]
	s.calls[key]++
	s.mu.Unlock()
	if s.sample != nil {
		if v, handled, err := s.sample(ctx, i, p, sample, attempt); handled {
			return v, err
		}
	}
	return s.clean.MeasureSample(ctx, i, p, sample)
}

func (s *scriptedSource) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	return s.clean.MeasureEdgePenalty(ctx, producer, fp, tp)
}

func (s *scriptedSource) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	return s.clean.MeasureOutputPenalty(ctx, output, p)
}

func robustFast() *Robust {
	return &Robust{
		SampleTimeout: 250 * time.Millisecond,
		MaxRetries:    3,
		BackoffBase:   time.Microsecond,
		BackoffMax:    10 * time.Microsecond,
		TrimFraction:  0.1,
		MADK:          5,
	}
}

// TestRetryAbsorbsTransientErrors: failures that clear within the
// retry budget leave no exclusions and a fully populated table.
func TestRetryAbsorbsTransientErrors(t *testing.T) {
	net := smallNet(t)
	src := newScripted(t, func(_ context.Context, i int, _ *primitives.Primitive, s, attempt int) (float64, bool, error) {
		if i == 1 && s == 0 && attempt < 2 {
			return 0, true, errors.New("transient board hiccup")
		}
		return 0, false, nil
	})
	tab, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 3, Robust: robustFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() {
		t.Errorf("transient faults caused exclusions: %v", rep.Lines())
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded for transient failures")
	}
	for _, p := range tab.Candidates(1) {
		if math.IsInf(tab.Time(1, p), 1) {
			t.Errorf("layer 1 prim %d unmeasured despite retries", p)
		}
	}
}

// TestInvalidObservationsRejectedAndRetried: NaN/Inf/negative samples
// never enter the table; a retry that observes a clean value wins.
func TestInvalidObservationsRejectedAndRetried(t *testing.T) {
	net := smallNet(t)
	bads := []float64{math.NaN(), math.Inf(1), -1}
	src := newScripted(t, func(_ context.Context, i int, _ *primitives.Primitive, s, attempt int) (float64, bool, error) {
		if i == 2 && s < len(bads) && attempt == 0 {
			return bads[s], true, nil
		}
		return 0, false, nil
	})
	tab, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 4, Robust: robustFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invalid != 3*len(tab.Candidates(2)) {
		t.Errorf("Invalid = %d, want %d", rep.Invalid, 3*len(tab.Candidates(2)))
	}
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			if v := tab.Time(i, p); !lut.ValidSeconds(v) || math.IsInf(v, 1) {
				t.Errorf("layer %d prim %d: invalid stored value %v", i, p, v)
			}
		}
	}
}

// TestTimeoutBoundsStalledMeasurement: a stalled attempt is killed by
// the per-sample timeout and the retry succeeds.
func TestTimeoutBoundsStalledMeasurement(t *testing.T) {
	net := smallNet(t)
	src := newScripted(t, func(ctx context.Context, i int, _ *primitives.Primitive, s, attempt int) (float64, bool, error) {
		if i == 1 && s == 0 && attempt == 0 {
			<-ctx.Done() // honor the attempt deadline
			return 0, true, ctx.Err()
		}
		return 0, false, nil
	})
	pol := robustFast()
	pol.SampleTimeout = 20 * time.Millisecond
	start := time.Now()
	_, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 2, Robust: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts == 0 {
		t.Error("stall did not register a timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("profiling took %v, stall should cost ~one timeout", elapsed)
	}
}

// TestDegradationDropsPersistentlyFailingPrimitive: a primitive that
// fails every attempt on one layer is excluded there — Vanilla
// fallback — while surviving elsewhere, and the degraded table still
// round-trips Load.
func TestDegradationDropsPersistentlyFailingPrimitive(t *testing.T) {
	net := smallNet(t)
	var victim *primitives.Primitive
	for _, p := range primitives.Registry() {
		if p.Proc == primitives.CPU && p != primitives.PVanilla && supports(net.Layers[1], p, primitives.ModeCPU) {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no non-Vanilla CPU candidate on layer 1")
	}
	src := newScripted(t, func(_ context.Context, i int, p *primitives.Primitive, s, attempt int) (float64, bool, error) {
		if i == 1 && p == victim {
			return 0, true, errors.New("kernel faults on this shape")
		}
		return 0, false, nil
	})
	tab, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 3, Robust: robustFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() || len(rep.Excluded) != 1 {
		t.Fatalf("Excluded = %+v, want exactly the victim", rep.Excluded)
	}
	e := rep.Excluded[0]
	if e.Layer != 1 || e.Primitive != victim.Name || !strings.Contains(e.Reason, "kernel faults") {
		t.Errorf("exclusion = %+v", e)
	}
	for _, c := range tab.Candidates(1) {
		if c == victim.Idx {
			t.Error("victim still a candidate of layer 1")
		}
	}
	if !isCandidateOf(tab, 1, primitives.PVanilla.Idx) {
		t.Error("Vanilla fallback missing from layer 1")
	}
	// The reduced table is fully valid: serialize and reload.
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lut.Load(data, net); err != nil {
		t.Errorf("degraded table failed Load round trip: %v", err)
	}
}

// TestNoSurvivingCandidateErrors: when every primitive of a layer
// fails persistently, profiling reports an error instead of producing
// an unschedulable table.
func TestNoSurvivingCandidateErrors(t *testing.T) {
	net := smallNet(t)
	src := newScripted(t, func(_ context.Context, i int, _ *primitives.Primitive, s, attempt int) (float64, bool, error) {
		if i == 1 {
			return 0, true, errors.New("layer is cursed")
		}
		return 0, false, nil
	})
	_, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 2, Robust: robustFast(),
	})
	if err == nil || !strings.Contains(err.Error(), "no surviving primitive") {
		t.Fatalf("err = %v, want no-surviving-primitive", err)
	}
	if len(rep.Excluded) == 0 {
		t.Error("report does not record the exclusions that led to the error")
	}
}

// TestRobustAggregationRejectsSpikes: with outliers injected into a
// noiseless source, the MAD/trimmed aggregate stays at the true value
// while the raw mean would be dragged far off.
func TestRobustAggregationRejectsSpikes(t *testing.T) {
	net := smallNet(t)
	noiseless := platform.JetsonTX2Like()
	noiseless.MeasurementNoise = 0
	truth, err := Run(net, NewSimSource(net, noiseless), Options{Mode: primitives.ModeCPU, Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	clean := AsFallible(NewSimSource(net, noiseless))
	spiky := newScripted(t, nil)
	spiky.clean = clean
	spiky.sample = func(ctx context.Context, i int, p *primitives.Primitive, s, attempt int) (float64, bool, error) {
		v, err := clean.MeasureSample(ctx, i, p, s)
		if s%10 == 3 { // every 10th sample is a 100x scheduling spike
			return v * 100, true, err
		}
		return v, true, err
	}
	tab, rep, err := RunFallible(context.Background(), net, spiky, Options{
		Mode: primitives.ModeCPU, Samples: 20, Robust: robustFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outliers == 0 {
		t.Error("no outliers rejected despite injected spikes")
	}
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			got, want := tab.Time(i, p), truth.Time(i, p)
			if math.Abs(got-want) > 0.05*want {
				t.Errorf("layer %d prim %d: robust mean %v vs truth %v (spikes leaked)", i, p, got, want)
			}
		}
	}
}

// TestRunFallibleCancellation: a canceled context aborts promptly with
// the context error rather than degrading.
func TestRunFallibleCancellation(t *testing.T) {
	net := smallNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := newScripted(t, func(_ context.Context, i int, _ *primitives.Primitive, s, attempt int) (float64, bool, error) {
		n++
		if n == 5 {
			cancel()
		}
		return 0, false, nil
	})
	_, _, err := RunFallible(ctx, net, src, Options{
		Mode: primitives.ModeCPU, Samples: 3, Robust: robustFast(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStrictModeMatchesLegacyMean: with Robust nil the new pipeline is
// byte-identical to the historical raw-mean protocol.
func TestStrictModeMatchesLegacyMean(t *testing.T) {
	net := smallNet(t)
	pl := platform.JetsonTX2Like()
	a, err := Run(net, NewSimSource(net, pl), Options{Mode: primitives.ModeGPGPU, Samples: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunContext(context.Background(), net, NewSimSource(net, pl), Options{Mode: primitives.ModeGPGPU, Samples: 7})
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.MarshalJSON()
	db, _ := b.MarshalJSON()
	if string(da) != string(db) {
		t.Error("strict RunContext differs from Run")
	}
}

// TestStrictModeRejectsInvalidObservation: without a Robust policy an
// invalid sample is an immediate error (never a silent table entry).
func TestStrictModeRejectsInvalidObservation(t *testing.T) {
	net := smallNet(t)
	src := newScripted(t, func(_ context.Context, i int, _ *primitives.Primitive, s, attempt int) (float64, bool, error) {
		if i == 1 {
			return math.NaN(), true, nil
		}
		return 0, false, nil
	})
	_, _, err := RunFallible(context.Background(), net, src, Options{Mode: primitives.ModeCPU, Samples: 2})
	if err == nil || !strings.Contains(err.Error(), "invalid observation") {
		t.Fatalf("err = %v, want invalid-observation error", err)
	}
}

// TestRunWithEnergyErrorPaths covers the energy protocol's failure
// modes: invalid observations and cancellation.
func TestRunWithEnergyErrorPaths(t *testing.T) {
	net := smallNet(t)
	pl := platform.JetsonTX2Like()

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _, err := RunWithEnergyContext(ctx, net, NewSimSource(net, pl), Options{Mode: primitives.ModeCPU, Samples: 2})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})
	t.Run("invalid energy", func(t *testing.T) {
		src := &badEnergySource{EnergySource: NewSimSource(net, pl)}
		_, _, err := RunWithEnergyContext(context.Background(), net, src, Options{Mode: primitives.ModeCPU, Samples: 2})
		if err == nil || !strings.Contains(err.Error(), "invalid energy observation") {
			t.Errorf("err = %v, want invalid-energy error", err)
		}
	})
	t.Run("zero samples", func(t *testing.T) {
		if _, _, err := RunWithEnergyContext(context.Background(), net, NewSimSource(net, pl), Options{Mode: primitives.ModeCPU}); err == nil {
			t.Error("zero samples should error")
		}
	})
}

// badEnergySource returns NaN joules for every energy sample.
type badEnergySource struct{ EnergySource }

func (b *badEnergySource) SampleEnergy(i int, p *primitives.Primitive, sample int) float64 {
	return math.NaN()
}
