package profile

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

func smallNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("small", tensor.Shape{N: 1, C: 3, H: 16, W: 16})
	x := b.Conv("conv", b.Input(), 8, 3, 1, 1)
	x = b.ReLU("relu", x)
	x = b.Flatten("flat", x)
	b.FullyConnected("fc", x, 10)
	return b.MustBuild()
}

func TestRunPopulatesAllCandidates(t *testing.T) {
	net := smallNet(t)
	pl := platform.JetsonTX2Like()
	tab, err := Run(net, NewSimSource(net, pl), DefaultOptions(primitives.ModeGPGPU))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			if v := tab.Time(i, p); math.IsInf(v, 1) || v <= 0 {
				t.Errorf("layer %d prim %s: time %v", i, primitives.ByID(p).Name, v)
			}
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				if v := tab.Penalty(ed.From, ed.To, fp, tp); math.IsInf(v, 1) || v < 0 {
					t.Errorf("edge %d->%d (%d,%d): penalty %v", ed.From, ed.To, fp, tp, v)
				}
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		if v := tab.OutputPenalty(p); math.IsInf(v, 1) || v < 0 {
			t.Errorf("output penalty for %s = %v", primitives.ByID(p).Name, v)
		}
	}
}

func TestCPUModeExcludesGPUPrimitives(t *testing.T) {
	net := smallNet(t)
	pl := platform.JetsonTX2Like()
	tab, err := Run(net, NewSimSource(net, pl), DefaultOptions(primitives.ModeCPU))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			if primitives.ByID(p).Proc == primitives.GPU {
				t.Errorf("layer %d has GPU candidate %s in CPU mode", i, primitives.ByID(p).Name)
			}
		}
	}
}

func TestAveragingSuppressesJitter(t *testing.T) {
	net := smallNet(t)
	pl := platform.JetsonTX2Like()
	src := NewSimSource(net, pl)

	one, err := Run(net, src, Options{Mode: primitives.ModeCPU, Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(net, src, Options{Mode: primitives.ModeCPU, Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	noiseless := platform.JetsonTX2Like()
	noiseless.MeasurementNoise = 0
	truth, err := Run(net, NewSimSource(net, noiseless), Options{Mode: primitives.ModeCPU, Samples: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The 200-sample average must sit closer to the noise-free value
	// than a single sample for most entries.
	better, total := 0, 0
	for i := 1; i < truth.NumLayers(); i++ {
		for _, p := range truth.Candidates(i) {
			tv := truth.Time(i, p)
			d1 := math.Abs(one.Time(i, p) - tv)
			dm := math.Abs(many.Time(i, p) - tv)
			total++
			if dm <= d1 {
				better++
			}
		}
	}
	if better*2 < total {
		t.Errorf("averaging helped only %d/%d entries", better, total)
	}
}

func TestRunRejectsBadSamples(t *testing.T) {
	net := smallNet(t)
	if _, err := Run(net, NewSimSource(net, platform.JetsonTX2Like()), Options{Mode: primitives.ModeCPU}); err == nil {
		t.Error("zero samples should error")
	}
}

func TestProfileDeterministic(t *testing.T) {
	net := smallNet(t)
	a, err := Run(net, NewSimSource(net, platform.JetsonTX2Like()), DefaultOptions(primitives.ModeGPGPU))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, NewSimSource(net, platform.JetsonTX2Like()), DefaultOptions(primitives.ModeGPGPU))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < a.NumLayers(); i++ {
		for _, p := range a.Candidates(i) {
			if a.Time(i, p) != b.Time(i, p) {
				t.Fatalf("layer %d prim %d: %v != %v", i, p, a.Time(i, p), b.Time(i, p))
			}
		}
	}
}

func TestPenaltyStructure(t *testing.T) {
	// Same-layout same-processor pairs are free; crossing processors
	// costs at least the fixed transfer; changing layout costs > 0.
	net := smallNet(t)
	pl := platform.JetsonTX2Like()
	tab, err := Run(net, NewSimSource(net, pl), DefaultOptions(primitives.ModeGPGPU))
	if err != nil {
		t.Fatal(err)
	}
	convIdx := net.LayerIndex("conv")
	reluIdx := net.LayerIndex("relu")
	van := primitives.PVanilla.Idx
	if got := tab.Penalty(convIdx, reluIdx, van, van); got != 0 {
		t.Errorf("vanilla->vanilla penalty = %v, want 0", got)
	}
	cu := primitives.PCuDNNOp.Idx
	if got := tab.Penalty(convIdx, reluIdx, van, cu); got < pl.TransferFixedSec {
		t.Errorf("CPU->GPU penalty = %v, want >= fixed transfer %v", got, pl.TransferFixedSec)
	}
	nn := primitives.PNNPackOp.Idx
	if got := tab.Penalty(convIdx, reluIdx, van, nn); got <= 0 {
		t.Errorf("NCHW->NHWC penalty = %v, want > 0", got)
	}
}

func TestProfileGoogleNetBranches(t *testing.T) {
	// The branchy GoogleNet graph must profile without gaps.
	net := models.MustBuild("googlenet")
	pl := platform.JetsonTX2Like()
	tab, err := Run(net, NewSimSource(net, pl), Options{Mode: primitives.ModeGPGPU, Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			if math.IsInf(tab.Time(i, p), 1) {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Errorf("%d unmeasured (layer, primitive) entries", missing)
	}
}

func TestRunWithEnergy(t *testing.T) {
	net := smallNet(t)
	pl := platform.JetsonTX2Like()
	tt, et, err := RunWithEnergy(net, NewSimSource(net, pl), Options{Mode: primitives.ModeGPGPU, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumLayers() != et.NumLayers() || len(tt.Edges()) != len(et.Edges()) {
		t.Fatal("objective tables have different structure")
	}
	pw := pl.Power()
	for i := 1; i < tt.NumLayers(); i++ {
		for _, p := range tt.Candidates(i) {
			joules := et.Time(i, p)
			secs := tt.Time(i, p)
			if joules <= 0 || math.IsInf(joules, 0) {
				t.Fatalf("layer %d prim %d energy %v", i, p, joules)
			}
			// Energy/time ratio stays between the CPU and GPU draws
			// (both objectives carry the same multiplicative jitter,
			// so the ratio is bounded by the power extremes with a
			// margin for independent sample noise).
			r := joules / secs
			lo, hi := pw.CPUWatts*0.8, pw.GPUWatts*1.25
			if r < lo || r > hi {
				t.Fatalf("layer %d prim %d joules/sec = %v outside [%v, %v]", i, p, r, lo, hi)
			}
		}
	}
	// Energy penalties populated on every edge.
	for _, ed := range et.Edges() {
		for _, fp := range et.Candidates(ed.From) {
			for _, tp := range et.Candidates(ed.To) {
				if v := et.Penalty(ed.From, ed.To, fp, tp); math.IsInf(v, 1) || v < 0 {
					t.Fatalf("edge %d->%d energy penalty %v", ed.From, ed.To, v)
				}
			}
		}
	}
	if _, _, err := RunWithEnergy(net, NewSimSource(net, pl), Options{Mode: primitives.ModeCPU}); err == nil {
		t.Error("zero samples should error")
	}
}
