// Package profile implements the paper's inference phase (§V-A): the
// protocol that turns a latency source (the platform simulator or the
// real engine) into the look-up table the search consumes.
//
// The protocol follows the paper exactly:
//
//  1. Vanilla is the base implementation. For each primitive type, the
//     controller substitutes it into every layer the primitive can
//     implement (Vanilla everywhere else) and "infers" the whole
//     network once per sample image, recording each layer's time; the
//     per-layer mean over the samples is stored. The network is thus
//     inferred only as many times as there are global implementations.
//  2. A single extra pass profiles every possible compatibility layer
//     (layout conversion / processor copy) between each pair of
//     consecutive layers, branches included, plus the output-return
//     cost.
package profile

import (
	"fmt"

	"repro/internal/compat"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// Source supplies raw measurements: one per-layer latency sample under
// a given primitive, and the compatibility costs. The platform
// simulator and the real engine both implement it.
type Source interface {
	// Sample returns one latency observation (seconds) of running
	// layer i of the network with primitive p; sample indexes the
	// input image for reproducibility.
	Sample(i int, p *primitives.Primitive, sample int) float64
	// EdgePenalty returns the compatibility cost of feeding the
	// producer layer's output, computed by fp, into a consumer using
	// tp.
	EdgePenalty(producer int, fp, tp *primitives.Primitive) float64
	// OutputPenalty returns the cost of returning the output layer's
	// result to the host when computed by p.
	OutputPenalty(output int, p *primitives.Primitive) float64
}

// Options configures a profiling run.
type Options struct {
	// Mode selects the processor mode (CPU or GPGPU).
	Mode primitives.Mode
	// Samples is the number of images averaged per measurement; the
	// paper uses 50.
	Samples int
}

// DefaultOptions returns the paper's profiling settings.
func DefaultOptions(mode primitives.Mode) Options {
	return Options{Mode: mode, Samples: 50}
}

// Run executes the two-phase protocol and returns the populated table.
func Run(net *nn.Network, src Source, opts Options) (*lut.Table, error) {
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("profile: Samples must be positive, got %d", opts.Samples)
	}
	t := lut.New(net, opts.Mode)

	// Phase 1a: one global implementation per primitive. A layer's
	// time under primitive p is measured during the run where p is
	// substituted in (layers p cannot implement run Vanilla and are
	// measured during the Vanilla run).
	for _, p := range primitives.Registry() {
		if opts.Mode == primitives.ModeCPU && p.Proc == primitives.GPU {
			continue
		}
		for i, l := range net.Layers {
			if i == 0 {
				continue
			}
			if !supports(l, p, opts.Mode) {
				continue
			}
			var sum float64
			for s := 0; s < opts.Samples; s++ {
				sum += src.Sample(i, p, s)
			}
			t.SetTime(i, p.Idx, sum/float64(opts.Samples))
		}
	}

	// Phase 1b: one pass over all compatibility layers — every edge,
	// every primitive pair, plus the host-return penalty.
	for _, ed := range t.Edges() {
		for _, fp := range t.Candidates(ed.From) {
			for _, tp := range t.Candidates(ed.To) {
				pen := src.EdgePenalty(ed.From, primitives.ByID(fp), primitives.ByID(tp))
				t.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	out := t.OutputLayer()
	for _, p := range t.Candidates(out) {
		t.SetOutputPenalty(p, src.OutputPenalty(out, primitives.ByID(p)))
	}
	return t, nil
}

// supports reports whether p is a candidate for layer l under mode.
func supports(l *nn.Layer, p *primitives.Primitive, mode primitives.Mode) bool {
	for _, c := range primitives.Candidates(l, mode) {
		if c == p {
			return true
		}
	}
	return false
}

// EnergySource supplies per-step energy measurements; sources that
// implement it (the simulator does) enable the multi-objective search
// of the paper's future-work section.
type EnergySource interface {
	Source
	// SampleEnergy returns one energy observation (joules) of layer i
	// under primitive p.
	SampleEnergy(i int, p *primitives.Primitive, sample int) float64
	// EdgeEnergyPenalty returns the joules of the edge's
	// compatibility work.
	EdgeEnergyPenalty(producer int, fp, tp *primitives.Primitive) float64
	// OutputEnergyPenalty returns the joules of the host-return work.
	OutputEnergyPenalty(output int, p *primitives.Primitive) float64
}

// RunWithEnergy executes the protocol measuring both objectives and
// returns a latency table (seconds) and an energy table (joules) with
// identical structure — lut.Table is objective-agnostic, so the same
// machinery evaluates either.
func RunWithEnergy(net *nn.Network, src EnergySource, opts Options) (timeTab, energyTab *lut.Table, err error) {
	timeTab, err = Run(net, src, opts)
	if err != nil {
		return nil, nil, err
	}
	energyTab = lut.New(net, opts.Mode)
	for i, l := range net.Layers {
		if i == 0 {
			continue
		}
		for _, p := range primitives.Candidates(l, opts.Mode) {
			var sum float64
			for s := 0; s < opts.Samples; s++ {
				sum += src.SampleEnergy(i, p, s)
			}
			energyTab.SetTime(i, p.Idx, sum/float64(opts.Samples))
		}
	}
	for _, ed := range energyTab.Edges() {
		for _, fp := range energyTab.Candidates(ed.From) {
			for _, tp := range energyTab.Candidates(ed.To) {
				pen := src.EdgeEnergyPenalty(ed.From, primitives.ByID(fp), primitives.ByID(tp))
				energyTab.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	out := energyTab.OutputLayer()
	for _, p := range energyTab.Candidates(out) {
		energyTab.SetOutputPenalty(p, src.OutputEnergyPenalty(out, primitives.ByID(p)))
	}
	return timeTab, energyTab, nil
}

// SimSource adapts the platform cost model to the Source interface.
type SimSource struct {
	Net      *nn.Network
	Platform *platform.Platform
}

// NewSimSource wires a network to a platform model.
func NewSimSource(net *nn.Network, pl *platform.Platform) *SimSource {
	return &SimSource{Net: net, Platform: pl}
}

// Sample returns one noisy simulated measurement.
func (s *SimSource) Sample(i int, p *primitives.Primitive, sample int) float64 {
	return s.Platform.Sample(s.Net.Layers[i], p, sample)
}

// EdgePenalty returns the simulated compatibility cost.
func (s *SimSource) EdgePenalty(producer int, fp, tp *primitives.Primitive) float64 {
	return compat.Penalty(s.Platform, s.Net.Layers[producer], fp, tp)
}

// OutputPenalty returns the simulated host-return cost.
func (s *SimSource) OutputPenalty(output int, p *primitives.Primitive) float64 {
	return compat.OutputPenalty(s.Platform, s.Net.Layers[output], p)
}

// SampleEnergy returns one noisy simulated energy measurement.
func (s *SimSource) SampleEnergy(i int, p *primitives.Primitive, sample int) float64 {
	return s.Platform.SampleEnergy(s.Net.Layers[i], p, sample)
}

// EdgeEnergyPenalty returns the simulated compatibility energy.
func (s *SimSource) EdgeEnergyPenalty(producer int, fp, tp *primitives.Primitive) float64 {
	return compat.EnergyPenalty(s.Platform, s.Net.Layers[producer], fp, tp)
}

// OutputEnergyPenalty returns the simulated host-return energy.
func (s *SimSource) OutputEnergyPenalty(output int, p *primitives.Primitive) float64 {
	return compat.OutputEnergyPenalty(s.Platform, s.Net.Layers[output], p)
}

var _ EnergySource = (*SimSource)(nil)
