// Package profile implements the paper's inference phase (§V-A): the
// protocol that turns a latency source (the platform simulator or the
// real engine) into the look-up table the search consumes.
//
// The protocol follows the paper exactly:
//
//  1. Vanilla is the base implementation. For each primitive type, the
//     controller substitutes it into every layer the primitive can
//     implement (Vanilla everywhere else) and "infers" the whole
//     network once per sample image, recording each layer's time; the
//     per-layer mean over the samples is stored. The network is thus
//     inferred only as many times as there are global implementations.
//  2. A single extra pass profiles every possible compatibility layer
//     (layout conversion / processor copy) between each pair of
//     consecutive layers, branches included, plus the output-return
//     cost.
package profile

import (
	"context"
	"fmt"
	"math"

	"repro/internal/compat"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// Source supplies raw measurements: one per-layer latency sample under
// a given primitive, and the compatibility costs. The platform
// simulator and the real engine both implement it.
type Source interface {
	// Sample returns one latency observation (seconds) of running
	// layer i of the network with primitive p; sample indexes the
	// input image for reproducibility.
	Sample(i int, p *primitives.Primitive, sample int) float64
	// EdgePenalty returns the compatibility cost of feeding the
	// producer layer's output, computed by fp, into a consumer using
	// tp.
	EdgePenalty(producer int, fp, tp *primitives.Primitive) float64
	// OutputPenalty returns the cost of returning the output layer's
	// result to the host when computed by p.
	OutputPenalty(output int, p *primitives.Primitive) float64
}

// Options configures a profiling run.
type Options struct {
	// Mode selects the processor mode (CPU or GPGPU).
	Mode primitives.Mode
	// Samples is the number of images averaged per measurement; the
	// paper uses 50.
	Samples int
	// Robust, when non-nil, enables the fault-tolerant protocol:
	// per-sample timeouts, retry with backoff, outlier-robust
	// aggregation, and graceful degradation (persistently failing
	// primitives are dropped from their layer's candidate set instead
	// of aborting the run). nil selects the strict legacy protocol —
	// any failure or invalid observation is an immediate error and
	// samples are aggregated with the plain mean.
	Robust *Robust
}

// DefaultOptions returns the paper's profiling settings.
func DefaultOptions(mode primitives.Mode) Options {
	return Options{Mode: mode, Samples: 50}
}

// Run executes the two-phase protocol and returns the populated table.
// It is the non-cancellable strict entry point kept for existing
// callers; RunContext adds cancellation and the degradation report.
func Run(net *nn.Network, src Source, opts Options) (*lut.Table, error) {
	t, _, err := RunContext(context.Background(), net, src, opts)
	return t, err
}

// RunContext executes the protocol under a context. With Options.Robust
// set, the run is fault-tolerant and the returned Report records every
// retry, rejection and exclusion; with Robust nil the report only
// carries identification fields. The report is non-nil whenever the
// run got past argument validation, even on error.
func RunContext(ctx context.Context, net *nn.Network, src Source, opts Options) (*lut.Table, *Report, error) {
	return RunFallible(ctx, net, AsFallible(src), opts)
}

// RunFallible is RunContext for sources that report measurement
// errors. It implements the fault-tolerance tentpole:
//
//   - every measurement goes through the Robust policy (timeout, retry
//     with backoff, validity checking at the source boundary);
//   - a primitive that persistently fails on a layer is dropped from
//     that layer's candidate set (Vanilla fallback) and recorded in
//     the Report — the search proceeds on a reduced-but-valid table;
//   - the run errors only when a layer has no surviving candidate, an
//     edge has no measurable pair, or the context is canceled.
func RunFallible(ctx context.Context, net *nn.Network, src FallibleSource, opts Options) (*lut.Table, *Report, error) {
	if opts.Samples <= 0 {
		return nil, nil, fmt.Errorf("profile: Samples must be positive, got %d", opts.Samples)
	}
	rep := &Report{Network: net.Name, Mode: opts.Mode, Samples: opts.Samples}
	m := &meter{policy: opts.Robust, report: rep}
	degrade := opts.Robust != nil
	t := lut.New(net, opts.Mode)

	// Phase 1a: one global implementation per primitive. A layer's
	// time under primitive p is measured during the run where p is
	// substituted in (layers p cannot implement run Vanilla and are
	// measured during the Vanilla run).
	for _, p := range primitives.Registry() {
		if opts.Mode == primitives.ModeCPU && p.Proc == primitives.GPU {
			continue
		}
		for i, l := range net.Layers {
			if i == 0 {
				continue
			}
			if !supports(l, p, opts.Mode) {
				continue
			}
			what := fmt.Sprintf("layer %d (%s) with %s", i, l.Name, p.Name)
			v, err := m.series(ctx, what, opts.Samples, func(ctx context.Context, s int) (float64, error) {
				return src.MeasureSample(ctx, i, p, s)
			})
			if err != nil {
				if ctx.Err() != nil || !degrade {
					return nil, rep, fmt.Errorf("profile: %w", err)
				}
				t.DropCandidate(i, p.Idx)
				rep.Excluded = append(rep.Excluded, Exclusion{
					Layer: i, LayerName: l.Name, Primitive: p.Name, Reason: err.Error(),
				})
				continue
			}
			t.SetTime(i, p.Idx, v)
		}
	}

	// Degradation floor: the search needs at least one measured
	// primitive per layer; a layer that lost everything (Vanilla
	// included) cannot be scheduled at all.
	for i := 1; i < t.NumLayers(); i++ {
		ok := false
		for _, id := range t.Candidates(i) {
			if !math.IsInf(t.Time(i, id), 1) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, rep, fmt.Errorf("profile: layer %d (%s): no surviving primitive after degradation",
				i, net.Layers[i].Name)
		}
	}

	// Phase 1b: one pass over all compatibility layers — every edge,
	// every surviving primitive pair, plus the host-return penalty. A
	// pair whose penalty cannot be measured stays +Inf (the search can
	// never find it attractive); an edge with no measurable pair at
	// all makes every assignment unschedulable, which is an error.
	for _, ed := range t.Edges() {
		okPair := false
		for _, fp := range t.Candidates(ed.From) {
			for _, tp := range t.Candidates(ed.To) {
				what := fmt.Sprintf("edge %d->%d (%s -> %s)",
					ed.From, ed.To, primitives.ByID(fp).Name, primitives.ByID(tp).Name)
				pen, err := m.single(ctx, what, func(ctx context.Context) (float64, error) {
					return src.MeasureEdgePenalty(ctx, ed.From, primitives.ByID(fp), primitives.ByID(tp))
				})
				if err != nil {
					if ctx.Err() != nil || !degrade {
						return nil, rep, fmt.Errorf("profile: %w", err)
					}
					rep.EdgeExcluded = append(rep.EdgeExcluded, EdgeExclusion{
						From: ed.From, To: ed.To,
						FromPrim: primitives.ByID(fp).Name, ToPrim: primitives.ByID(tp).Name,
						Reason: err.Error(),
					})
					continue
				}
				t.SetPenalty(ed.From, ed.To, fp, tp, pen)
				okPair = true
			}
		}
		if !okPair {
			return nil, rep, fmt.Errorf("profile: edge %d->%d: no measurable primitive pair", ed.From, ed.To)
		}
	}
	out := t.OutputLayer()
	for _, p := range append([]primitives.ID(nil), t.Candidates(out)...) {
		what := fmt.Sprintf("output penalty (%s)", primitives.ByID(p).Name)
		pen, err := m.single(ctx, what, func(ctx context.Context) (float64, error) {
			return src.MeasureOutputPenalty(ctx, out, primitives.ByID(p))
		})
		if err != nil {
			if ctx.Err() != nil || !degrade {
				return nil, rep, fmt.Errorf("profile: %w", err)
			}
			// Without a host-return cost the primitive is unusable at
			// the output layer specifically, so it is dropped there.
			t.DropCandidate(out, p)
			rep.Excluded = append(rep.Excluded, Exclusion{
				Layer: out, LayerName: net.Layers[out].Name,
				Primitive: primitives.ByID(p).Name, Reason: err.Error(),
			})
			continue
		}
		t.SetOutputPenalty(p, pen)
	}
	if len(t.Candidates(out)) == 0 {
		return nil, rep, fmt.Errorf("profile: output layer %d: no surviving primitive after degradation", out)
	}
	return t, rep, nil
}

// isCandidateOf reports whether id is in layer i's candidate set of t.
func isCandidateOf(t *lut.Table, i int, id primitives.ID) bool {
	for _, c := range t.Candidates(i) {
		if c == id {
			return true
		}
	}
	return false
}

// supports reports whether p is a candidate for layer l under mode.
func supports(l *nn.Layer, p *primitives.Primitive, mode primitives.Mode) bool {
	for _, c := range primitives.Candidates(l, mode) {
		if c == p {
			return true
		}
	}
	return false
}

// EnergySource supplies per-step energy measurements; sources that
// implement it (the simulator does) enable the multi-objective search
// of the paper's future-work section.
type EnergySource interface {
	Source
	// SampleEnergy returns one energy observation (joules) of layer i
	// under primitive p.
	SampleEnergy(i int, p *primitives.Primitive, sample int) float64
	// EdgeEnergyPenalty returns the joules of the edge's
	// compatibility work.
	EdgeEnergyPenalty(producer int, fp, tp *primitives.Primitive) float64
	// OutputEnergyPenalty returns the joules of the host-return work.
	OutputEnergyPenalty(output int, p *primitives.Primitive) float64
}

// RunWithEnergy executes the protocol measuring both objectives and
// returns a latency table (seconds) and an energy table (joules) with
// identical structure — lut.Table is objective-agnostic, so the same
// machinery evaluates either.
func RunWithEnergy(net *nn.Network, src EnergySource, opts Options) (timeTab, energyTab *lut.Table, err error) {
	return RunWithEnergyContext(context.Background(), net, src, opts)
}

// RunWithEnergyContext is RunWithEnergy under a context: cancellation
// is observed between measurements, and invalid energy observations
// (NaN, +/-Inf, negative) are rejected at the source boundary with an
// error instead of silently entering the table.
func RunWithEnergyContext(ctx context.Context, net *nn.Network, src EnergySource, opts Options) (timeTab, energyTab *lut.Table, err error) {
	timeTab, _, err = RunContext(ctx, net, src, opts)
	if err != nil {
		return nil, nil, err
	}
	checkJ := func(what string, v float64) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		if !ValidObservation(v) {
			return fmt.Errorf("profile: %s: invalid energy observation %v", what, v)
		}
		return nil
	}
	energyTab = lut.New(net, opts.Mode)
	for i, l := range net.Layers {
		if i == 0 {
			continue
		}
		// Mirror any degradation of the latency table: both objectives
		// must expose identical candidate sets to the search.
		for _, id := range append([]primitives.ID(nil), energyTab.Candidates(i)...) {
			if !isCandidateOf(timeTab, i, id) {
				energyTab.DropCandidate(i, id)
			}
		}
		for _, id := range energyTab.Candidates(i) {
			p := primitives.ByID(id)
			var sum float64
			for s := 0; s < opts.Samples; s++ {
				v := src.SampleEnergy(i, p, s)
				if err := checkJ(fmt.Sprintf("layer %d (%s) with %s", i, l.Name, p.Name), v); err != nil {
					return nil, nil, err
				}
				sum += v
			}
			energyTab.SetTime(i, id, sum/float64(opts.Samples))
		}
	}
	for _, ed := range energyTab.Edges() {
		for _, fp := range energyTab.Candidates(ed.From) {
			for _, tp := range energyTab.Candidates(ed.To) {
				pen := src.EdgeEnergyPenalty(ed.From, primitives.ByID(fp), primitives.ByID(tp))
				if err := checkJ(fmt.Sprintf("edge %d->%d", ed.From, ed.To), pen); err != nil {
					return nil, nil, err
				}
				energyTab.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	out := energyTab.OutputLayer()
	for _, p := range energyTab.Candidates(out) {
		pen := src.OutputEnergyPenalty(out, primitives.ByID(p))
		if err := checkJ("output penalty", pen); err != nil {
			return nil, nil, err
		}
		energyTab.SetOutputPenalty(p, pen)
	}
	return timeTab, energyTab, nil
}

// SimSource adapts the platform cost model to the Source interface.
type SimSource struct {
	Net      *nn.Network
	Platform *platform.Platform
}

// NewSimSource wires a network to a platform model.
func NewSimSource(net *nn.Network, pl *platform.Platform) *SimSource {
	return &SimSource{Net: net, Platform: pl}
}

// Sample returns one noisy simulated measurement.
func (s *SimSource) Sample(i int, p *primitives.Primitive, sample int) float64 {
	return s.Platform.Sample(s.Net.Layers[i], p, sample)
}

// EdgePenalty returns the simulated compatibility cost.
func (s *SimSource) EdgePenalty(producer int, fp, tp *primitives.Primitive) float64 {
	return compat.Penalty(s.Platform, s.Net.Layers[producer], fp, tp)
}

// OutputPenalty returns the simulated host-return cost.
func (s *SimSource) OutputPenalty(output int, p *primitives.Primitive) float64 {
	return compat.OutputPenalty(s.Platform, s.Net.Layers[output], p)
}

// SampleEnergy returns one noisy simulated energy measurement.
func (s *SimSource) SampleEnergy(i int, p *primitives.Primitive, sample int) float64 {
	return s.Platform.SampleEnergy(s.Net.Layers[i], p, sample)
}

// EdgeEnergyPenalty returns the simulated compatibility energy.
func (s *SimSource) EdgeEnergyPenalty(producer int, fp, tp *primitives.Primitive) float64 {
	return compat.EnergyPenalty(s.Platform, s.Net.Layers[producer], fp, tp)
}

// OutputEnergyPenalty returns the simulated host-return energy.
func (s *SimSource) OutputEnergyPenalty(output int, p *primitives.Primitive) float64 {
	return compat.OutputEnergyPenalty(s.Platform, s.Net.Layers[output], p)
}

var _ EnergySource = (*SimSource)(nil)
