package profile

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/primitives"
)

// FaultConfig is a seeded, deterministic fault schedule. Every
// decision is a pure function of (Seed, measurement identity, attempt
// number), so two runs with equal seeds inject identical faults
// regardless of worker count or wall-clock — which is what makes the
// fault-tolerant pipeline testable under -race with determinism
// assertions.
//
// Rates are probabilities in [0, 1]; a zero config injects nothing.
type FaultConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// TransientRate selects measurements whose first attempts error
	// (the retry machinery must absorb them).
	TransientRate float64
	// TransientBurst is the maximum number of consecutive failing
	// attempts of a transient fault; 0 selects 2. A burst longer than
	// the retry budget turns the fault persistent.
	TransientBurst int
	// PermanentRate selects (layer, primitive) sample measurements
	// that fail on every attempt — the graceful-degradation path must
	// drop those primitives. Penalty measurements are exempt so the
	// schedule cannot make a whole edge unmeasurable, and so is the
	// Vanilla primitive: it models the always-available software
	// fallback (library kernels break; the baseline C path does not),
	// which guarantees every layer keeps a surviving candidate.
	PermanentRate float64
	// StallRate selects measurements whose first attempt blocks for
	// Stall (or until the context is canceled) — the per-sample
	// timeout path.
	StallRate float64
	// Stall is the stall duration; 0 selects 50ms.
	Stall time.Duration
	// NaNRate selects samples whose first attempt observes NaN — the
	// source-boundary validation path.
	NaNRate float64
	// SpikeRate selects samples whose (valid) observation is
	// multiplied by SpikeFactor — the outlier-robust aggregation path.
	// Spikes are not errors and are never retried.
	SpikeRate float64
	// SpikeFactor is the outlier multiplier; 0 selects 25.
	SpikeFactor float64
	// FaultLibraries restricts the error schedule (transient,
	// permanent, stall, NaN, spike) to the named libraries; empty
	// targets all. Drift modes below have their own library lists.
	FaultLibraries []string

	// DriftStep names libraries whose sample latencies jump to
	// DriftFactor times their true value once the drift round counter
	// is advanced past zero — a thermal-throttling cliff.
	DriftStep []string
	// DriftRamp names libraries whose latencies ramp linearly from 1x
	// to DriftFactor times over DriftRampRounds rounds, then saturate
	// — gradual DVFS / co-located-load creep.
	DriftRamp []string
	// DriftFactor is the saturated drift multiplier; 0 selects 3.
	DriftFactor float64
	// DriftRampRounds is the number of rounds a ramp takes to
	// saturate; 0 selects 4.
	DriftRampRounds int
}

// DefaultFaults returns the schedule used by the CLI's -fault-seed
// flag and the CI fault-injection step: a little of everything.
func DefaultFaults(seed int64) FaultConfig {
	return FaultConfig{
		Seed:          seed,
		TransientRate: 0.05,
		PermanentRate: 0.02,
		StallRate:     0.01,
		Stall:         25 * time.Millisecond,
		NaNRate:       0.03,
		SpikeRate:     0.05,
	}
}

// ErrInjected marks every error produced by the schedule, so tests and
// reports can tell injected faults from real ones.
type ErrInjected struct{ What string }

func (e *ErrInjected) Error() string { return "injected fault: " + e.What }

// FaultSource decorates any Source (or FallibleSource) with the fault
// schedule — the test harness for the entire fault-tolerance stack.
// It tracks per-measurement attempt counts (its only state), so
// transient faults clear after their burst while permanent faults
// never do. Safe for concurrent use.
type FaultSource struct {
	cfg FaultConfig
	src FallibleSource

	// round is the drift round counter. Like everything else in the
	// schedule it is not wall-clock: the harness advances it
	// explicitly (one advance per simulated environment shift), so a
	// drifted run is replayed exactly by setting the same round.
	round atomic.Int64

	mu       sync.Mutex
	attempts map[string]int
}

// NewFaultSource wraps src in the fault schedule. Each FaultSource
// starts with fresh attempt counters; construct one per profiling run
// to keep runs independent and deterministic.
func NewFaultSource(src Source, cfg FaultConfig) *FaultSource {
	return &FaultSource{cfg: cfg, src: AsFallible(src), attempts: map[string]int{}}
}

// AdvanceDrift advances the drift round counter by one and returns
// the new round — one environment shift (the throttle tightening, the
// neighbor workload growing).
func (f *FaultSource) AdvanceDrift() int64 { return f.round.Add(1) }

// SetDriftRound pins the drift round counter — how a reference run
// reproduces the exact environment a live run drifted into.
func (f *FaultSource) SetDriftRound(n int64) { f.round.Store(n) }

// DriftRound returns the current drift round.
func (f *FaultSource) DriftRound() int64 { return f.round.Load() }

// driftFactor returns the latency multiplier the drift schedule
// applies to lib at the current round: a pure function of (config,
// round), identical for every measurement of the library within a
// round, so a table profiled at round r is byte-identical to any
// other table profiled at round r.
func (f *FaultSource) driftFactor(lib string) float64 {
	r := f.round.Load()
	if r <= 0 {
		return 1
	}
	sat := f.cfg.DriftFactor
	if sat <= 0 {
		sat = 3
	}
	if containsLib(f.cfg.DriftStep, lib) {
		return sat
	}
	if containsLib(f.cfg.DriftRamp, lib) {
		rounds := f.cfg.DriftRampRounds
		if rounds <= 0 {
			rounds = 4
		}
		if r >= int64(rounds) {
			return sat
		}
		return 1 + (sat-1)*float64(r)/float64(rounds)
	}
	return 1
}

// targeted reports whether the error schedule applies to a
// measurement touching libs.
func (f *FaultSource) targeted(libs ...string) bool {
	if len(f.cfg.FaultLibraries) == 0 {
		return true
	}
	for _, lib := range libs {
		if containsLib(f.cfg.FaultLibraries, lib) {
			return true
		}
	}
	return false
}

func containsLib(list []string, lib string) bool {
	for _, l := range list {
		if l == lib {
			return true
		}
	}
	return false
}

// nextAttempt returns and increments the attempt counter for key.
func (f *FaultSource) nextAttempt(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	a := f.attempts[key]
	f.attempts[key] = a + 1
	return a
}

// roll returns the schedule's uniform value for one decision kind over
// a measurement identity.
func (f *FaultSource) roll(kind string, nums ...int) float64 {
	return u01(f.cfg.Seed, "fault|"+kind, nums...)
}

// stall blocks for the configured stall duration or until ctx is done.
func (f *FaultSource) stall(ctx context.Context) error {
	d := f.cfg.Stall
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// inject applies the schedule to one attempt of the measurement
// identified by (kind, nums). permanentOK enables permanent faults
// (sample measurements only). It returns an injected (or context)
// error, whether to poison the observation with NaN, and a multiplier
// for valid observations.
func (f *FaultSource) inject(ctx context.Context, kind string, permanentOK bool, nums ...int) (poison bool, factor float64, err error) {
	attempt := f.nextAttempt(fmt.Sprintf("%s|%v", kind, nums))

	if permanentOK && f.cfg.PermanentRate > 0 && f.roll(kind+"|perm", nums[0], nums[1]) < f.cfg.PermanentRate {
		return false, 1, &ErrInjected{What: fmt.Sprintf("%s %v: permanent failure", kind, nums)}
	}
	if attempt == 0 && f.cfg.StallRate > 0 && f.roll(kind+"|stall", nums...) < f.cfg.StallRate {
		if err := f.stall(ctx); err != nil {
			return false, 1, err
		}
	}
	if f.cfg.TransientRate > 0 && f.roll(kind+"|trans", nums...) < f.cfg.TransientRate {
		burst := f.cfg.TransientBurst
		if burst <= 0 {
			burst = 2
		}
		n := 1 + int(f.roll(kind+"|burst", nums...)*float64(burst))
		if n > burst {
			n = burst
		}
		if attempt < n {
			return false, 1, &ErrInjected{What: fmt.Sprintf("%s %v: transient failure (attempt %d)", kind, nums, attempt)}
		}
	}
	if attempt == 0 && f.cfg.NaNRate > 0 && f.roll(kind+"|nan", nums...) < f.cfg.NaNRate {
		return true, 1, nil
	}
	if f.cfg.SpikeRate > 0 && f.roll(kind+"|spike", nums...) < f.cfg.SpikeRate {
		factor := f.cfg.SpikeFactor
		if factor <= 0 {
			factor = 25
		}
		return false, factor, nil
	}
	return false, 1, nil
}

// MeasureSample applies the full schedule to one latency sample.
// Vanilla is exempt from permanent faults (it is the degradation
// fallback), so injection can shrink candidate sets but never leave a
// layer without a surviving primitive. Drift multiplies the valid
// observation after error injection: a drifted library still
// measures, it just measures slower.
func (f *FaultSource) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	poison, factor := false, 1.0
	if f.targeted(p.Lib.String()) {
		var err error
		poison, factor, err = f.inject(ctx, "sample", p.Idx != primitives.PVanilla.Idx, i, int(p.Idx), sample)
		if err != nil {
			return 0, err
		}
	}
	v, err := f.src.MeasureSample(ctx, i, p, sample)
	if err != nil {
		return 0, err
	}
	if poison {
		return math.NaN(), nil
	}
	return v * factor * f.driftFactor(p.Lib.String()), nil
}

// MeasureEdgePenalty applies the schedule minus permanent faults: a
// persistently failing pair stays +Inf via the transient-burst path,
// but the schedule cannot render an entire edge unmeasurable.
func (f *FaultSource) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	var poison bool
	if f.targeted(fp.Lib.String(), tp.Lib.String()) {
		var err error
		poison, _, err = f.inject(ctx, "edge", false, producer, int(fp.Idx), int(tp.Idx))
		if err != nil {
			return 0, err
		}
	}
	v, err := f.src.MeasureEdgePenalty(ctx, producer, fp, tp)
	if err != nil {
		return 0, err
	}
	if poison {
		return math.NaN(), nil
	}
	return v, nil
}

// MeasureOutputPenalty applies the schedule to the host-return cost.
func (f *FaultSource) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	var poison bool
	if f.targeted(p.Lib.String()) {
		var err error
		poison, _, err = f.inject(ctx, "output", false, output, int(p.Idx))
		if err != nil {
			return 0, err
		}
	}
	v, err := f.src.MeasureOutputPenalty(ctx, output, p)
	if err != nil {
		return 0, err
	}
	if poison {
		return math.NaN(), nil
	}
	return v, nil
}

var _ FallibleSource = (*FaultSource)(nil)
