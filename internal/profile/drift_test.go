package profile

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// driftFaults is a drift-only schedule: no error injection, so every
// change in a measurement is attributable to the drift multiplier.
func driftFaults(seed int64) FaultConfig {
	return FaultConfig{
		Seed:            seed,
		DriftStep:       []string{"ATLAS"},
		DriftRamp:       []string{"NNPACK"},
		DriftFactor:     3,
		DriftRampRounds: 4,
	}
}

// measureAll profiles lenet5 (cpu mode) through src and returns the
// marshaled table bytes.
func driftTable(t *testing.T, src FallibleSource) []byte {
	t.Helper()
	net := models.MustBuild("lenet5")
	tab, _, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDriftFactorSchedule pins the per-round multiplier of step and
// ramp libraries: step jumps straight to the saturated factor, ramp
// approaches it linearly and saturates, untargeted libraries never
// move, and round 0 is always drift-free.
func TestDriftFactorSchedule(t *testing.T) {
	net := models.MustBuild("lenet5")
	f := NewFaultSource(NewSimSource(net, platform.JetsonTX2Like()), driftFaults(1))
	cases := []struct {
		round      int64
		step, ramp float64
	}{
		{0, 1, 1},
		{1, 3, 1.5},
		{2, 3, 2},
		{3, 3, 2.5},
		{4, 3, 3},
		{9, 3, 3}, // saturated
	}
	for _, c := range cases {
		f.SetDriftRound(c.round)
		if got := f.driftFactor("ATLAS"); math.Abs(got-c.step) > 1e-12 {
			t.Errorf("round %d: step factor = %v, want %v", c.round, got, c.step)
		}
		if got := f.driftFactor("NNPACK"); math.Abs(got-c.ramp) > 1e-12 {
			t.Errorf("round %d: ramp factor = %v, want %v", c.round, got, c.ramp)
		}
		if got := f.driftFactor("OpenBLAS"); got != 1 {
			t.Errorf("round %d: untargeted library drifted by %v", c.round, got)
		}
	}
	if f.DriftRound() != 9 {
		t.Errorf("DriftRound = %d, want 9", f.DriftRound())
	}
	f.SetDriftRound(0)
	if f.AdvanceDrift() != 1 || f.DriftRound() != 1 {
		t.Error("AdvanceDrift did not advance to 1")
	}
}

// TestDriftedTablesReproducible: a table profiled at drift round r is
// byte-identical to any other table profiled at round r (fresh source,
// fresh run) — the property the self-healing byte-identity gate builds
// on — and differs from the round-0 table only in drifted libraries.
func TestDriftedTablesReproducible(t *testing.T) {
	net := models.MustBuild("lenet5")
	board := platform.JetsonTX2Like()
	at := func(round int64) []byte {
		src := NewFaultSource(NewSimSource(net, board), driftFaults(7))
		src.SetDriftRound(round)
		return driftTable(t, src)
	}
	clean := at(0)
	cleanRef := driftTable(t, AsFallible(NewSimSource(net, board)))
	if string(clean) != string(cleanRef) {
		t.Fatal("round-0 drift source changed the table vs the plain simulator")
	}
	d1a, d1b := at(3), at(3)
	if string(d1a) != string(d1b) {
		t.Fatal("two fresh profiles at the same drift round differ")
	}
	if string(d1a) == string(clean) {
		t.Fatal("drift round 3 produced the undrifted table")
	}

	// Only the targeted libraries moved, and by the scheduled factor.
	cleanTab, err := lut.Load(clean, net)
	if err != nil {
		t.Fatal(err)
	}
	driftTab, err := lut.Load(d1a, net)
	if err != nil {
		t.Fatal(err)
	}
	wantFactor := map[string]float64{"ATLAS": 3, "NNPACK": 2.5}
	for i := 1; i < net.Len(); i++ {
		for _, p := range primitives.Candidates(net.Layers[i], primitives.ModeCPU) {
			base := cleanTab.Time(i, p.Idx)
			got := driftTab.Time(i, p.Idx)
			want := base
			if fac, ok := wantFactor[p.Lib.String()]; ok {
				want = base * fac
			}
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Errorf("layer %d %s (%s): drifted time %v, want %v (base %v)",
					i, p.Name, p.Lib, got, want, base)
			}
		}
	}
}

// TestFaultLibrariesTargeting: with FaultLibraries set, the error
// schedule only ever touches measurements of the named libraries —
// other libraries' tables stay byte-identical to a fault-free run.
func TestFaultLibrariesTargeting(t *testing.T) {
	net := models.MustBuild("lenet5")
	board := platform.JetsonTX2Like()
	cfg := FaultConfig{
		Seed:           11,
		TransientRate:  1.0, // every targeted measurement fails its burst
		TransientBurst: 1,
		FaultLibraries: []string{"NNPACK"},
	}
	src := NewFaultSource(NewSimSource(net, board), cfg)
	pol := DefaultRobust()
	tab, rep, err := RunFallible(context.Background(), net, src, Options{
		Mode: primitives.ModeCPU, Samples: 3, Robust: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("targeted schedule injected nothing")
	}
	// The reference must aggregate under the same robust policy — the
	// comparison isolates the fault targeting, not the aggregation.
	cleanTab, _, err := RunFallible(context.Background(), net, AsFallible(NewSimSource(net, board)), Options{
		Mode: primitives.ModeCPU, Samples: 3, Robust: DefaultRobust(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < net.Len(); i++ {
		for _, p := range primitives.Candidates(net.Layers[i], primitives.ModeCPU) {
			if p.Lib.String() == "NNPACK" {
				continue
			}
			if got, want := tab.Time(i, p.Idx), cleanTab.Time(i, p.Idx); got != want {
				t.Errorf("untargeted %s (%s) layer %d: %v, want clean %v", p.Name, p.Lib, i, got, want)
			}
		}
	}
}

// TestRemeasureSampleMatchesProfile: a canary re-measurement through
// RemeasureSample reproduces exactly the aggregate the full profiling
// run stored for that (layer, primitive) — the property that makes the
// drift comparison meaningful (zero false positives on a stable
// environment).
func TestRemeasureSampleMatchesProfile(t *testing.T) {
	net := models.MustBuild("lenet5")
	board := platform.JetsonTX2Like()
	const samples = 5
	sim := NewSimSource(net, board)
	pol := DefaultRobust()
	tab, _, err := RunFallible(context.Background(), net, AsFallible(sim), Options{
		Mode: primitives.ModeCPU, Samples: samples, Robust: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < net.Len(); i++ {
		for _, p := range primitives.Candidates(net.Layers[i], primitives.ModeCPU) {
			want := tab.Time(i, p.Idx)
			got, err := RemeasureSample(context.Background(), AsFallible(sim), pol, i, p, samples)
			if err != nil {
				t.Fatalf("layer %d %s: %v", i, p.Name, err)
			}
			if got != want {
				t.Errorf("layer %d %s: canary %v != stored %v", i, p.Name, got, want)
			}
		}
	}
	if _, err := RemeasureSample(context.Background(), AsFallible(sim), pol, 1, primitives.PVanilla, 0); err == nil {
		t.Error("samples=0 did not error")
	}
}

// TestFastFailCounter: a NoRetry abort increments Report.FastFails so
// the serve daemon can mark tables built under breaker fast-fails.
func TestFastFailCounter(t *testing.T) {
	var rep Report
	m := &meter{policy: DefaultRobust(), report: &rep}
	_, err := m.series(context.Background(), "x", 2, func(ctx context.Context, s int) (float64, error) {
		return 0, &noRetryErr{msg: "fast fail"}
	})
	if err == nil {
		t.Fatal("fast-failing series did not error")
	}
	if rep.FastFails == 0 {
		t.Fatalf("FastFails = %d, want > 0", rep.FastFails)
	}
	var zero Report
	if !reflect.DeepEqual(rep.Excluded, zero.Excluded) {
		t.Fatal("fast-fail recorded an exclusion at the meter level")
	}
}
