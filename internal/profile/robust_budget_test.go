package profile

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// noRetryErr mimics a circuit breaker's fast-fail: the source itself
// declares the error permanent for this attempt loop.
type noRetryErr struct{ msg string }

func (e *noRetryErr) Error() string { return e.msg }
func (e *noRetryErr) NoRetry() bool { return true }

// TestAttemptNoRetry: an error carrying NoRetry() bool = true skips
// the remaining attempts — no retries burned, no backoff slept.
func TestAttemptNoRetry(t *testing.T) {
	rep := &Report{}
	m := &meter{
		policy: &Robust{MaxRetries: 5, BackoffBase: time.Millisecond},
		report: rep,
	}
	var calls atomic.Int64
	_, err := m.attempt(context.Background(), "sample", 0, func(context.Context) (float64, error) {
		calls.Add(1)
		return 0, fmt.Errorf("guarded: %w", &noRetryErr{msg: "breaker open"})
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	var nr interface{ NoRetry() bool }
	if !errors.As(err, &nr) || !nr.NoRetry() {
		t.Fatalf("NoRetry marker lost through the attempt loop: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("source called %d times, want 1 (no retries against an open breaker)", calls.Load())
	}
	if rep.Retries != 0 {
		t.Fatalf("report counted %d retries, want 0", rep.Retries)
	}
}

// TestRetryBudget: when the remaining context deadline cannot cover
// the next backoff sleep, the attempt loop fails immediately instead
// of sleeping past the budget.
func TestRetryBudget(t *testing.T) {
	rep := &Report{}
	m := &meter{
		policy: &Robust{MaxRetries: 3, BackoffBase: 200 * time.Millisecond},
		report: rep,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()

	var calls atomic.Int64
	start := time.Now()
	_, err := m.attempt(ctx, "sample", 0, func(context.Context) (float64, error) {
		calls.Add(1)
		return 0, errors.New("transient")
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	// The 200ms backoff would outlive the 80ms budget, so the loop
	// must bail before sleeping — well under the first backoff.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("attempt loop slept %v despite an exhausted retry budget", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("source called %d times, want 1", calls.Load())
	}
	if rep.Retries != 0 {
		t.Fatalf("report counted %d retries, want 0 (budget refused the retry)", rep.Retries)
	}
}
