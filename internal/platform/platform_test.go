package platform

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// probeNet returns a network with one layer of several kinds for
// latency probing.
func probeNet() *nn.Network {
	b := nn.NewBuilder("probe", tensor.Shape{N: 1, C: 64, H: 56, W: 56})
	x := b.Conv("conv3x3", b.Input(), 64, 3, 1, 1)
	x = b.ReLU("relu", x)
	x = b.DepthwiseConv("dw", x, 3, 1, 1)
	x = b.Flatten("flat", x)
	b.FullyConnected("fc", x, 1000)
	return b.MustBuild()
}

func layer(t *testing.T, net *nn.Network, name string) *nn.Layer {
	t.Helper()
	i := net.LayerIndex(name)
	if i < 0 {
		t.Fatalf("layer %q missing", name)
	}
	return net.Layers[i]
}

func prim(t *testing.T, name string) *primitives.Primitive {
	t.Helper()
	p, ok := primitives.ByName(name)
	if !ok {
		t.Fatalf("primitive %q missing", name)
	}
	return p
}

func TestLatenciesPositiveAndFinite(t *testing.T) {
	pl := JetsonTX2Like()
	net := probeNet()
	for _, l := range net.Layers {
		for _, p := range primitives.Candidates(l, primitives.ModeGPGPU) {
			got := pl.LayerLatency(l, p)
			if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
				t.Errorf("%s with %s: latency %v", l.Name, p.Name, got)
			}
		}
	}
}

func TestVanillaConvAbout45xSlowerThanBestCPU(t *testing.T) {
	pl := JetsonTX2Like()
	net := probeNet()
	conv := layer(t, net, "conv3x3")
	vanilla := pl.LayerLatency(conv, prim(t, "vanilla-direct"))
	best := math.Inf(1)
	for _, p := range primitives.Candidates(conv, primitives.ModeCPU) {
		if v := pl.LayerLatency(conv, p); v < best {
			best = v
		}
	}
	ratio := vanilla / best
	if ratio < 30 || ratio > 70 {
		t.Errorf("vanilla/best CPU conv ratio = %.1f, want ~45 (30..70)", ratio)
	}
}

func TestOpenBLASBeatsATLAS(t *testing.T) {
	pl := JetsonTX2Like()
	conv := layer(t, probeNet(), "conv3x3")
	for _, lower := range []string{"im2col", "im2row", "kn2row"} {
		atlas := pl.LayerLatency(conv, prim(t, "atlas-gemm-"+lower))
		open := pl.LayerLatency(conv, prim(t, "openblas-gemm-"+lower))
		if open >= atlas {
			t.Errorf("%s: openblas %.3gms !< atlas %.3gms", lower, open*1e3, atlas*1e3)
		}
	}
}

func TestWinogradBeatsGEMMOn3x3(t *testing.T) {
	pl := JetsonTX2Like()
	conv := layer(t, probeNet(), "conv3x3")
	wino := pl.LayerLatency(conv, prim(t, "armcl-winograd"))
	gemmT := pl.LayerLatency(conv, prim(t, "armcl-gemm"))
	if wino >= gemmT {
		t.Errorf("winograd %.3gms !< gemm %.3gms", wino*1e3, gemmT*1e3)
	}
}

func TestArmCLDepthwiseBeatsCuDNNDepthwise(t *testing.T) {
	pl := JetsonTX2Like()
	dw := layer(t, probeNet(), "dw")
	arm := pl.LayerLatency(dw, prim(t, "armcl-depthwise"))
	cu := pl.LayerLatency(dw, prim(t, "cudnn-depthwise"))
	if arm >= cu {
		t.Errorf("armcl dw %.3gms !< cudnn dw %.3gms (grouped-conv fallback should be slow)", arm*1e3, cu*1e3)
	}
}

func TestGPUWinsBigConvLosesTinyConv(t *testing.T) {
	pl := JetsonTX2Like()
	// Big conv: VGG-scale.
	b := nn.NewBuilder("big", tensor.Shape{N: 1, C: 256, H: 56, W: 56})
	b.Conv("big", b.Input(), 256, 3, 1, 1)
	bigNet := b.MustBuild()
	big := layer(t, bigNet, "big")
	gpuBig := pl.LayerLatency(big, prim(t, "cudnn-conv"))
	cpuBig := pl.LayerLatency(big, prim(t, "openblas-gemm-im2row"))
	if gpuBig >= cpuBig {
		t.Errorf("big conv: gpu %.3gms !< cpu %.3gms", gpuBig*1e3, cpuBig*1e3)
	}
	// Tiny conv: LeNet-scale — launch overhead should dominate.
	b2 := nn.NewBuilder("tiny", tensor.Shape{N: 1, C: 1, H: 28, W: 28})
	b2.Conv("tiny", b2.Input(), 20, 5, 1, 0)
	tinyNet := b2.MustBuild()
	tiny := layer(t, tinyNet, "tiny")
	gpuTiny := pl.LayerLatency(tiny, prim(t, "cudnn-conv"))
	cpuTiny := pl.LayerLatency(tiny, prim(t, "openblas-gemm-im2row"))
	if gpuTiny <= cpuTiny {
		t.Errorf("tiny conv: gpu %.3gus !> cpu %.3gus", gpuTiny*1e6, cpuTiny*1e6)
	}
}

func TestCuBLASBeatsVanillaFCForBigFC(t *testing.T) {
	pl := JetsonTX2Like()
	b := nn.NewBuilder("fc", tensor.Shape{N: 1, C: 25088, H: 1, W: 1})
	b.FullyConnected("fc6", b.Input(), 4096)
	net := b.MustBuild()
	fc := layer(t, net, "fc6")
	cu := pl.LayerLatency(fc, prim(t, "cublas-gemv"))
	van := pl.LayerLatency(fc, prim(t, "vanilla-direct"))
	open := pl.LayerLatency(fc, prim(t, "openblas-gemv"))
	if cu >= van || cu >= open {
		t.Errorf("big FC: cublas %.3gms should beat vanilla %.3gms and openblas %.3gms",
			cu*1e3, van*1e3, open*1e3)
	}
	// Vanilla FC should clearly trail the tuned BLAS GEMV (this is
	// why cuDNN-only loses on VGG19/AlexNet: its FC falls back to
	// Vanilla on the CPU).
	if van < 1.5*open {
		t.Errorf("vanilla FC %.3gms should be >=1.5x openblas %.3gms", van*1e3, open*1e3)
	}
}

func TestSparseFCBeatsDenseBLAS(t *testing.T) {
	pl := JetsonTX2Like()
	b := nn.NewBuilder("fc", tensor.Shape{N: 1, C: 9216, H: 1, W: 1})
	b.FullyConnected("fc", b.Input(), 4096)
	net := b.MustBuild()
	fc := layer(t, net, "fc")
	sparse := pl.LayerLatency(fc, prim(t, "sparse-fc"))
	open := pl.LayerLatency(fc, prim(t, "openblas-gemv"))
	if sparse >= open {
		t.Errorf("pruned FC: sparse %.3gms !< openblas %.3gms", sparse*1e3, open*1e3)
	}
}

func TestTransferAndConversionCosts(t *testing.T) {
	pl := JetsonTX2Like()
	if pl.TransferLatency(0) != 0 {
		t.Error("zero-byte transfer should be free")
	}
	small := pl.TransferLatency(1024)
	big := pl.TransferLatency(64 << 20)
	if small < pl.TransferFixedSec {
		t.Error("transfer should include the fixed cost")
	}
	if big <= small {
		t.Error("bigger transfers should cost more")
	}
	convCPU := pl.ConversionLatency(1<<20, primitives.CPU)
	convGPU := pl.ConversionLatency(1<<20, primitives.GPU)
	if convCPU <= 0 || convGPU <= 0 {
		t.Error("conversions should cost time")
	}
	if pl.ConversionLatency(0, primitives.CPU) != 0 {
		t.Error("zero-byte conversion should be free")
	}
}

func TestDeterminismAndNoise(t *testing.T) {
	net := probeNet()
	conv := layer(t, net, "conv3x3")
	p := prim(t, "openblas-gemm-im2col")

	a := JetsonTX2Like()
	b := JetsonTX2Like()
	if a.LayerLatency(conv, p) != b.LayerLatency(conv, p) {
		t.Error("same seed should give identical latency")
	}
	c := JetsonTX2Like()
	c.Seed = 99
	if a.LayerLatency(conv, p) == c.LayerLatency(conv, p) {
		t.Error("different seeds should perturb latency")
	}
	// Measurement samples differ from each other but stay near base.
	base := a.LayerLatency(conv, p)
	s0, s1 := a.Sample(conv, p, 0), a.Sample(conv, p, 1)
	if s0 == s1 {
		t.Error("different samples should jitter")
	}
	for _, s := range []float64{s0, s1} {
		if math.Abs(s-base)/base > a.MeasurementNoise*1.01 {
			t.Errorf("sample %v strays too far from base %v", s, base)
		}
	}
	// Disabling noise gives the pure model.
	d := JetsonTX2Like()
	d.FabricationNoise = 0
	d.MeasurementNoise = 0
	if d.Sample(conv, p, 0) != d.LayerLatency(conv, p) {
		t.Error("noise-free sample should equal base latency")
	}
}

func TestCPUOnlyBoardRejectsGPU(t *testing.T) {
	pl := CPUOnlyBoard()
	conv := layer(t, probeNet(), "conv3x3")
	if !math.IsInf(pl.LayerLatency(conv, prim(t, "cudnn-conv")), 1) {
		t.Error("GPU primitive on CPU-only board should be +Inf")
	}
}

func TestInputLayerFree(t *testing.T) {
	pl := JetsonTX2Like()
	net := probeNet()
	if pl.LayerLatency(net.Layers[0], prim(t, "vanilla-direct")) != 0 {
		t.Error("input layer should cost nothing")
	}
}

func TestFlattenNearlyFree(t *testing.T) {
	pl := JetsonTX2Like()
	net := probeNet()
	flat := layer(t, net, "flat")
	v := pl.LayerLatency(flat, prim(t, "vanilla-direct"))
	if v > 10e-6 {
		t.Errorf("flatten latency %.3gus should be tiny (a view)", v*1e6)
	}
}

// Whole-network sanity: summing each layer's best primitive should
// give plausible absolute magnitudes (milliseconds, not seconds or
// nanoseconds) for MobileNet on CPU.
func TestMobileNetCPUMagnitude(t *testing.T) {
	pl := JetsonTX2Like()
	net := models.MustBuild("mobilenet-v1")
	var total float64
	for _, l := range net.Layers {
		best := math.Inf(1)
		for _, p := range primitives.Candidates(l, primitives.ModeCPU) {
			if v := pl.LayerLatency(l, p); v < best {
				best = v
			}
		}
		if !math.IsInf(best, 1) {
			total += best
		}
	}
	if total < 50e-3 || total > 2.0 {
		t.Errorf("MobileNet CPU lower bound = %.1fms, want O(100ms)", total*1e3)
	}
}
