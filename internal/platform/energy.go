package platform

import (
	"repro/internal/nn"
	"repro/internal/primitives"
)

// Energy model — the paper's §VII names "multi-objective search ... for
// problems related to inference of DNNs on constrained environments"
// as future work; this file provides the second objective. Energy is
// modeled as active power × time per step, with distinct power draws
// for the CPU core, the GPU and the interconnect. The GPU finishes
// compute-heavy layers sooner but burns several times the power, so
// latency-optimal and energy-optimal mappings genuinely differ, which
// is what makes the multi-objective search non-trivial.

// PowerSpec holds the active power draws in watts.
type PowerSpec struct {
	// CPUWatts is the single-core active power.
	CPUWatts float64
	// GPUWatts is the GPU active power under load.
	GPUWatts float64
	// TransferWatts is drawn while the interconnect moves data.
	TransferWatts float64
}

// DefaultPower returns TX2-class draws: a single A57 core ~1.5 W, the
// Pascal GPU ~9 W under load, the memory system ~2.5 W during copies.
func DefaultPower() PowerSpec {
	return PowerSpec{CPUWatts: 1.5, GPUWatts: 9, TransferWatts: 2.5}
}

// Power returns the platform's power spec (the default unless the
// platform overrides it).
func (pl *Platform) Power() PowerSpec {
	if pl.PowerSpec != (PowerSpec{}) {
		return pl.PowerSpec
	}
	return DefaultPower()
}

// LayerEnergy returns the modeled energy, in joules, of executing
// layer l with primitive p: the layer's latency times the executing
// processor's active power.
func (pl *Platform) LayerEnergy(l *nn.Layer, p *primitives.Primitive) float64 {
	t := pl.LayerLatency(l, p)
	pw := pl.Power()
	if p.Proc == primitives.GPU {
		return t * pw.GPUWatts
	}
	return t * pw.CPUWatts
}

// SampleEnergy returns one noisy energy measurement (same jitter model
// as Sample).
func (pl *Platform) SampleEnergy(l *nn.Layer, p *primitives.Primitive, sample int) float64 {
	t := pl.Sample(l, p, sample)
	pw := pl.Power()
	if p.Proc == primitives.GPU {
		return t * pw.GPUWatts
	}
	return t * pw.CPUWatts
}

// ConversionEnergy returns the joules of a layout conversion on the
// given processor.
func (pl *Platform) ConversionEnergy(bytes int64, proc primitives.Processor) float64 {
	t := pl.ConversionLatency(bytes, proc)
	pw := pl.Power()
	if proc == primitives.GPU {
		return t * pw.GPUWatts
	}
	return t * pw.CPUWatts
}

// TransferEnergy returns the joules of one CPU<->GPU copy.
func (pl *Platform) TransferEnergy(bytes int64) float64 {
	return pl.TransferLatency(bytes) * pl.Power().TransferWatts
}
