package platform

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

func TestPresetsRegistry(t *testing.T) {
	names := []string{"tx2-like", "tx1-like", "nano-like", "xavier-like", "cpu-only"}
	if len(Presets()) != len(names) {
		t.Errorf("preset count = %d", len(Presets()))
	}
	for _, name := range names {
		p, ok := Preset(name)
		if !ok {
			t.Errorf("preset %q missing", name)
			continue
		}
		if p.Name != name {
			t.Errorf("preset %q has Name %q", name, p.Name)
		}
	}
	if _, ok := Preset("nope"); ok {
		t.Error("unknown preset should miss")
	}
}

func TestPresetOrdering(t *testing.T) {
	// A big conv should get faster with each GPU generation.
	b := nn.NewBuilder("p", tensor.Shape{N: 1, C: 128, H: 56, W: 56})
	b.Conv("c", b.Input(), 128, 3, 1, 1)
	net := b.MustBuild()
	conv := net.Layers[1]
	cudnn, _ := primitives.ByName("cudnn-conv")

	tx1 := JetsonTX1Like().LayerLatency(conv, cudnn)
	tx2 := JetsonTX2Like().LayerLatency(conv, cudnn)
	xavier := XavierLike().LayerLatency(conv, cudnn)
	if !(xavier < tx2 && tx2 < tx1) {
		t.Errorf("GPU generations out of order: xavier %v, tx2 %v, tx1 %v", xavier, tx2, tx1)
	}
	// Transfers get cheaper too.
	if XavierLike().TransferLatency(1<<20) >= JetsonTX1Like().TransferLatency(1<<20) {
		t.Error("xavier transfers should be cheaper than tx1")
	}
}

func TestPresetEnergyDiffers(t *testing.T) {
	b := nn.NewBuilder("p", tensor.Shape{N: 1, C: 32, H: 28, W: 28})
	b.Conv("c", b.Input(), 32, 3, 1, 1)
	net := b.MustBuild()
	conv := net.Layers[1]
	cudnn, _ := primitives.ByName("cudnn-conv")
	e1 := NanoLike().LayerEnergy(conv, cudnn)
	e2 := XavierLike().LayerEnergy(conv, cudnn)
	if math.IsInf(e1, 0) || math.IsInf(e2, 0) || e1 <= 0 || e2 <= 0 {
		t.Fatalf("energies: %v %v", e1, e2)
	}
	if NanoLike().Power().GPUWatts >= XavierLike().Power().GPUWatts {
		t.Error("nano should draw less GPU power than xavier")
	}
}
