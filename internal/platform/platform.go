// Package platform provides the analytical latency model standing in
// for the paper's Nvidia Jetson TX-2 board. The search only ever
// consumes per-layer latencies and inter-layer penalties, so any
// latency source with the same structure exercises the identical
// search machinery; this model reproduces the structure that drives
// the paper's findings:
//
//   - a dependency-free Vanilla implementation that is ~45x slower
//     than the best CPU primitive mix,
//   - BLAS libraries whose GEMM lowerings (im2col/im2row/kn2row)
//     differ modestly, with OpenBLAS ahead of ATLAS,
//   - Winograd primitives (NNPACK/ArmCL) that beat GEMM on 3x3
//     stride-1 convolutions, and ArmCL's specialized depth-wise code,
//   - a GPU (cuDNN/cuBLAS) with enormous throughput but a real
//     per-call launch/sync overhead, a costly CPU<->GPU transfer, a
//     catastrophically bad depth-wise path (grouped-conv fallback,
//     as in 2018-era cuDNN) and no FC primitive at all,
//   - layout conversions (NCHW <-> NHWC) that tax library mixing.
//
// Latencies are seconds. The model is deterministic for a fixed seed;
// a small reproducible "fabrication" noise per (layer, primitive) and
// per-sample measurement jitter emulate real profiling.
package platform

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// Spec holds the hardware parameters of the modeled board.
type Spec struct {
	// CPUPeakGFLOPS is the single-thread fp32 peak of the CPU core.
	CPUPeakGFLOPS float64
	// GPUPeakGFLOPS is the fp32 peak of the GPGPU.
	GPUPeakGFLOPS float64
	// CPUMemGBps is the effective CPU memory bandwidth.
	CPUMemGBps float64
	// GPUMemGBps is the effective GPU memory bandwidth.
	GPUMemGBps float64
	// TransferGBps is the CPU<->GPU copy bandwidth.
	TransferGBps float64
	// TransferFixedSec is the fixed cost of one CPU<->GPU transfer
	// (driver call, synchronization).
	TransferFixedSec float64
	// GPULaunchSec is the per-primitive GPU launch+sync overhead.
	GPULaunchSec float64
	// CPUCallSec is the per-primitive CPU call overhead.
	CPUCallSec float64
	// SparseDensity is the non-zero fraction assumed for the Sparse
	// library's pruned weights.
	SparseDensity float64
	// GPUComputeRampFLOPs is the workload size at which a GPU kernel
	// reaches half of its peak utilization: small layers cannot fill
	// hundreds of cores, which is why tiny networks end up faster on
	// the CPU despite the GPU's raw throughput.
	GPUComputeRampFLOPs float64
	// GPUMemRampBytes is the analogous half-utilization point for
	// memory-bound GPU kernels.
	GPUMemRampBytes float64
}

// Platform is a board instance: a Spec plus a name, a noise seed and
// noise amplitudes.
type Platform struct {
	Spec
	// Name identifies the preset (e.g. "tx2-like").
	Name string
	// Seed makes all noise deterministic.
	Seed uint64
	// FabricationNoise is the relative spread of the fixed per-
	// (layer, primitive) latency perturbation (models units differing
	// from the datasheet). 0 disables it.
	FabricationNoise float64
	// MeasurementNoise is the relative spread of per-sample jitter
	// (models run-to-run variance the 50-image averaging smooths).
	MeasurementNoise float64
	// PowerSpec holds the active power draws for the energy model;
	// the zero value selects DefaultPower.
	PowerSpec PowerSpec
}

// JetsonTX2Like returns the calibrated heterogeneous preset used for
// the paper reproduction: one ARM A57-class thread plus a 256-core
// Pascal-class GPU.
func JetsonTX2Like() *Platform {
	return &Platform{
		Name: "tx2-like",
		Spec: Spec{
			CPUPeakGFLOPS:    8,   // 2 GHz, 4-wide fp32 FMA, sustained
			GPUPeakGFLOPS:    250, // 256 Pascal cores, sustained
			CPUMemGBps:       10,
			GPUMemGBps:       30,
			TransferGBps:     4,
			TransferFixedSec: 120e-6,
			GPULaunchSec:     60e-6,
			CPUCallSec:       1e-6,
			SparseDensity:    0.35,

			GPUComputeRampFLOPs: 300e6,
			GPUMemRampBytes:     4 << 20,
		},
		Seed:             1,
		FabricationNoise: 0.02,
		MeasurementNoise: 0.05,
	}
}

// CPUOnlyBoard returns a preset without a GPU (for ModeCPU studies on
// a plain embedded CPU board).
func CPUOnlyBoard() *Platform {
	p := JetsonTX2Like()
	p.Name = "cpu-only"
	p.GPUPeakGFLOPS = 0
	return p
}

// String returns the preset name.
func (pl *Platform) String() string { return pl.Name }

// hash01 returns a deterministic pseudo-uniform value in [0, 1) from
// the platform seed and the given strings/ints.
func (pl *Platform) hash01(parts ...any) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", pl.Seed)
	for _, p := range parts {
		fmt.Fprintf(h, "/%v", p)
	}
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// effModel is the per-primitive efficiency triple: fraction of peak
// FLOPs achieved on compute-bound work, fraction of memory bandwidth
// achieved on memory-bound work, and fixed per-call overhead.
type effModel struct {
	effC, effM, overhead float64
	// extraTraffic is additional scratch traffic in bytes (lowering
	// matrices etc.), charged at effM bandwidth.
	extraTraffic int64
}

// loweringScratch returns the patch-matrix bytes a lowering method
// materializes and re-reads for a convolution layer.
func loweringScratch(l *nn.Layer, lower primitives.Lowering) int64 {
	p := l.Conv
	ckk := int64(l.InShape.C) * int64(p.KernelH) * int64(p.KernelW)
	spatial := int64(l.OutShape.H) * int64(l.OutShape.W)
	patch := ckk * spatial * 4
	switch lower {
	case primitives.Im2col, primitives.Im2row:
		return 2 * patch // write + read
	case primitives.Kn2row:
		// kn2row gathers a C x OHOW slab per kernel offset but never
		// holds the full patch matrix; effective traffic is lower.
		return patch + patch/4
	default:
		return 0
	}
}

// model returns the efficiency triple for executing layer l with
// primitive p. It panics if the primitive cannot implement the layer
// (callers must stick to primitives.Candidates).
func (pl *Platform) model(l *nn.Layer, p *primitives.Primitive) effModel {
	cpuCall := pl.CPUCallSec
	launch := pl.GPULaunchSec
	switch p.Lib {
	case primitives.Vanilla:
		switch l.Kind {
		case nn.OpConv, nn.OpDepthwiseConv:
			return effModel{effC: 0.03, effM: 0.30, overhead: cpuCall}
		case nn.OpFullyConnected:
			// A naive GEMV still streams its weights once, so even the
			// dependency-free loop is memory-bound, not compute-bound.
			return effModel{effC: 0.30, effM: 0.40, overhead: cpuCall}
		case nn.OpLRN:
			return effModel{effC: 0.02, effM: 0.30, overhead: cpuCall}
		case nn.OpFlatten, nn.OpDropout:
			return effModel{effC: 1, effM: 1e9, overhead: cpuCall} // view / identity
		default: // pool, relu, bn, softmax, concat, eltwise
			return effModel{effC: 0.10, effM: 0.40, overhead: cpuCall}
		}
	case primitives.ATLAS:
		e := effModel{effM: 0.55, overhead: 3 * cpuCall, extraTraffic: loweringScratch(l, p.Lower)}
		switch p.Lower {
		case primitives.Im2col:
			e.effC = 0.33
		case primitives.Im2row:
			e.effC = 0.36
		case primitives.Kn2row:
			e.effC = 0.30
		default: // GEMV for FC
			e.effC = 0.30
			e.effM = 0.60
		}
		return e
	case primitives.OpenBLAS:
		e := effModel{effM: 0.70, overhead: 3 * cpuCall, extraTraffic: loweringScratch(l, p.Lower)}
		switch p.Lower {
		case primitives.Im2col:
			e.effC = 0.52
		case primitives.Im2row:
			e.effC = 0.58
		case primitives.Kn2row:
			e.effC = 0.46
		default: // GEMV for FC, or depthwise via im2col candidates
			e.effC = 0.50
			e.effM = 0.85
		}
		if l.Kind == nn.OpDepthwiseConv {
			// Depth-wise degenerates to many skinny GEMMs.
			e.effC, e.effM = 0.15, 0.50
		}
		return e
	case primitives.NNPACK:
		switch p.Algo {
		case primitives.WinogradAlgo:
			// effC > 1 is relative to the layer's *direct* FLOP count:
			// F(2x2,3x3) does ~2.25x less arithmetic.
			return effModel{effC: 1.25, effM: 0.70, overhead: 4 * cpuCall}
		case primitives.FFTAlgo:
			// The frequency-domain product beats GEMM for big kernels
			// (arithmetic shrinks with K^2) but pays transform traffic.
			kGain := float64(l.Conv.KernelH*l.Conv.KernelW) / 12.0
			extra := int64(l.OutShape.Bytes()) * 4 // transformed tiles
			return effModel{effC: 0.45 * kGain, effM: 0.60, overhead: 6 * cpuCall, extraTraffic: extra}
		case primitives.GEMMAlgo:
			return effModel{effC: 0.48, effM: 0.70, overhead: 4 * cpuCall}
		default: // pool / relu / softmax fast paths
			return effModel{effC: 0.30, effM: 0.80, overhead: 2 * cpuCall}
		}
	case primitives.ArmCL:
		switch p.Algo {
		case primitives.WinogradAlgo:
			return effModel{effC: 1.40, effM: 0.75, overhead: 4 * cpuCall}
		case primitives.SpatialDW:
			// NEON depth-wise code runs close to the core's peak.
			return effModel{effC: 0.90, effM: 0.65, overhead: 2 * cpuCall}
		default: // GEMM conv
			return effModel{effC: 0.60, effM: 0.75, overhead: 4 * cpuCall}
		}
	case primitives.Sparse:
		d := pl.SparseDensity
		if l.Kind == nn.OpFullyConnected {
			// SpMV: memory-bound on the compressed weights.
			return effModel{effC: 0.25 / d, effM: 0.60 / d, overhead: 3 * cpuCall}
		}
		// Sparse conv: compute shrinks with density but CSR indexing
		// is irregular.
		return effModel{effC: 0.22 / d, effM: 0.40, overhead: 3 * cpuCall,
			extraTraffic: loweringScratch(l, primitives.Im2col)}
	case primitives.CuDNN:
		switch {
		case p.Algo == primitives.WinogradAlgo:
			return effModel{effC: 0.85, effM: 0.70, overhead: launch}
		case p.Algo == primitives.SpatialDW:
			// 2018-era cuDNN ran depth-wise as grouped convolution,
			// effectively one tiny kernel per channel group — an
			// order of magnitude off optimal, which is why the paper's
			// MobileNet result mixes in ArmCL's CPU depth-wise code.
			perGroup := launch * (1 + float64(l.InShape.C)/48)
			return effModel{effC: 0.02, effM: 0.15, overhead: perGroup}
		case p.Algo == primitives.GEMMAlgo: // implicit-GEMM conv
			return effModel{effC: 0.45, effM: 0.70, overhead: launch}
		default: // pool / relu / bn / lrn / softmax / concat / eltwise
			if l.Kind == nn.OpFlatten || l.Kind == nn.OpDropout {
				return effModel{effC: 1, effM: 1e9, overhead: launch / 4}
			}
			return effModel{effC: 0.30, effM: 0.80, overhead: launch}
		}
	case primitives.CuBLAS:
		return effModel{effC: 0.40, effM: 0.80, overhead: launch}
	}
	panic(fmt.Sprintf("platform: no model for %s on %s", p.Name, l.Name))
}

// LayerLatency returns the modeled base latency, in seconds, of
// executing layer l with primitive p (excluding any conversion or
// transfer penalties, which Conversion/Transfer cover). The value
// includes the deterministic fabrication noise but no measurement
// jitter; Sample adds the latter.
func (pl *Platform) LayerLatency(l *nn.Layer, p *primitives.Primitive) float64 {
	if l.Kind == nn.OpInput {
		return 0
	}
	m := pl.model(l, p)
	peak := pl.CPUPeakGFLOPS
	bw := pl.CPUMemGBps
	flops := float64(l.FLOPs())
	traffic := float64(l.Traffic() + m.extraTraffic)
	if l.Kind == nn.OpFlatten || l.Kind == nn.OpDropout {
		traffic = 0 // a view / identity, not a copy
	}
	if p.Proc == primitives.GPU {
		peak = pl.GPUPeakGFLOPS
		bw = pl.GPUMemGBps
		if peak == 0 {
			return math.Inf(1) // board has no GPU
		}
		// Utilization ramps: small workloads cannot fill the GPU.
		if pl.GPUComputeRampFLOPs > 0 {
			m.effC *= flops / (flops + pl.GPUComputeRampFLOPs)
		}
		if pl.GPUMemRampBytes > 0 && traffic > 0 {
			m.effM *= traffic / (traffic + pl.GPUMemRampBytes)
		}
	}
	var tCompute, tMem float64
	if flops > 0 {
		tCompute = flops / (peak * 1e9 * m.effC)
	}
	if traffic > 0 {
		tMem = traffic / (bw * 1e9 * m.effM)
	}
	t := m.overhead + math.Max(tCompute, tMem)
	if pl.FabricationNoise > 0 {
		u := pl.hash01("fab", l.Name, p.Name)
		t *= 1 + pl.FabricationNoise*(2*u-1)
	}
	return t
}

// Sample returns one noisy measurement of LayerLatency, as the
// profiling phase would observe for a single image. sample indexes
// the image so repeated profiling is reproducible.
func (pl *Platform) Sample(l *nn.Layer, p *primitives.Primitive, sample int) float64 {
	base := pl.LayerLatency(l, p)
	if pl.MeasurementNoise <= 0 || math.IsInf(base, 1) {
		return base
	}
	u := pl.hash01("meas", l.Name, p.Name, sample)
	return base * (1 + pl.MeasurementNoise*(2*u-1))
}

// ConversionLatency returns the cost of converting an activation of
// the given byte size between NCHW and NHWC on the given processor.
func (pl *Platform) ConversionLatency(bytes int64, proc primitives.Processor) float64 {
	if bytes == 0 {
		return 0
	}
	if proc == primitives.GPU {
		return pl.GPULaunchSec + 2*float64(bytes)/(pl.GPUMemGBps*1e9*0.5)
	}
	// Strided permutation reads+writes at poor locality.
	return pl.CPUCallSec + 2*float64(bytes)/(pl.CPUMemGBps*1e9*0.35)
}

// TransferLatency returns the cost of moving an activation of the
// given byte size between the CPU and GPU memory spaces (either
// direction).
func (pl *Platform) TransferLatency(bytes int64) float64 {
	if bytes == 0 {
		return 0
	}
	return pl.TransferFixedSec + float64(bytes)/(pl.TransferGBps*1e9)
}

// LayoutOf returns the layout in which layer l's output materializes
// when implemented by primitive p.
func LayoutOf(p *primitives.Primitive) tensor.Layout { return p.Layout }
