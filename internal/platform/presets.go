package platform

// Additional board presets — the paper's §VII aims to "extend this
// work to other heterogeneous target platforms". Each preset keeps the
// same cost-model structure and only changes the hardware parameters,
// so the identical search runs unchanged; the found mappings differ
// because the trade-offs (GPU speed vs transfer cost vs CPU strength)
// differ.

// JetsonTX1Like returns a previous-generation board: a Maxwell-class
// GPU with half the sustained throughput and a slower interconnect.
func JetsonTX1Like() *Platform {
	p := JetsonTX2Like()
	p.Name = "tx1-like"
	p.GPUPeakGFLOPS = 130
	p.GPUMemGBps = 18
	p.TransferGBps = 2.5
	p.TransferFixedSec = 150e-6
	p.PowerSpec = PowerSpec{CPUWatts: 1.8, GPUWatts: 10, TransferWatts: 2.5}
	return p
}

// NanoLike returns an entry-level board: a 128-core GPU, a weaker CPU
// and tight memory bandwidth.
func NanoLike() *Platform {
	p := JetsonTX2Like()
	p.Name = "nano-like"
	p.CPUPeakGFLOPS = 5
	p.CPUMemGBps = 6
	p.GPUPeakGFLOPS = 110
	p.GPUMemGBps = 12
	p.TransferGBps = 2
	p.PowerSpec = PowerSpec{CPUWatts: 1.2, GPUWatts: 5, TransferWatts: 1.5}
	return p
}

// XavierLike returns a high-end board: a much faster GPU, a stronger
// CPU and a fast coherent interconnect — here the search offloads far
// more aggressively because transfers are cheap.
func XavierLike() *Platform {
	p := JetsonTX2Like()
	p.Name = "xavier-like"
	p.CPUPeakGFLOPS = 16
	p.CPUMemGBps = 20
	p.GPUPeakGFLOPS = 1000
	p.GPUMemGBps = 100
	p.TransferGBps = 20
	p.TransferFixedSec = 25e-6
	p.GPULaunchSec = 20e-6
	p.GPUComputeRampFLOPs = 150e6
	p.PowerSpec = PowerSpec{CPUWatts: 3, GPUWatts: 20, TransferWatts: 4}
	return p
}

// Presets returns every built-in board by name.
func Presets() map[string]func() *Platform {
	return map[string]func() *Platform{
		"tx2-like":    JetsonTX2Like,
		"tx1-like":    JetsonTX1Like,
		"nano-like":   NanoLike,
		"xavier-like": XavierLike,
		"cpu-only":    CPUOnlyBoard,
	}
}

// Preset builds the named board, reporting whether the name exists.
func Preset(name string) (*Platform, bool) {
	if f, ok := Presets()[name]; ok {
		return f(), true
	}
	return nil, false
}
