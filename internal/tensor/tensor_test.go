package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	tests := []struct {
		s    Shape
		want int
	}{
		{Shape{1, 3, 224, 224}, 150528},
		{Shape{1, 1, 1, 1}, 1},
		{Shape{2, 16, 8, 8}, 2048},
	}
	for _, tc := range tests {
		if got := tc.s.Elems(); got != tc.want {
			t.Errorf("Elems(%v) = %d, want %d", tc.s, got, tc.want)
		}
		if got := tc.s.Bytes(); got != tc.want*4 {
			t.Errorf("Bytes(%v) = %d, want %d", tc.s, got, tc.want*4)
		}
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 2, 3, 4}).Valid() {
		t.Error("positive shape should be valid")
	}
	for _, s := range []Shape{{0, 2, 3, 4}, {1, 0, 3, 4}, {1, 2, 0, 4}, {1, 2, 3, 0}, {-1, 2, 3, 4}} {
		if s.Valid() {
			t.Errorf("shape %v should be invalid", s)
		}
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{1, 3, 224, 224}).String(); got != "1x3x224x224" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid shape should panic")
		}
	}()
	New(Shape{0, 1, 1, 1}, NCHW)
}

func TestNewFromLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFrom with wrong length should panic")
		}
	}()
	NewFrom(Shape{1, 1, 2, 2}, NCHW, make([]float32, 3))
}

func TestIndexNCHW(t *testing.T) {
	tt := New(Shape{2, 3, 4, 5}, NCHW)
	// NCHW linear index: ((n*C+c)*H+h)*W + w
	if got := tt.Index(1, 2, 3, 4); got != ((1*3+2)*4+3)*5+4 {
		t.Errorf("Index = %d", got)
	}
	// Every coordinate maps to a distinct in-range index.
	seen := map[int]bool{}
	s := tt.Shape()
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					i := tt.Index(n, c, h, w)
					if i < 0 || i >= s.Elems() || seen[i] {
						t.Fatalf("bad or duplicate index %d for (%d,%d,%d,%d)", i, n, c, h, w)
					}
					seen[i] = true
				}
			}
		}
	}
}

func TestIndexNHWC(t *testing.T) {
	tt := New(Shape{2, 3, 4, 5}, NHWC)
	if got := tt.Index(1, 2, 3, 4); got != ((1*4+3)*5+4)*3+2 {
		t.Errorf("Index = %d", got)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	for _, l := range Layouts() {
		tt := New(Shape{1, 2, 3, 4}, l)
		tt.Set(0, 1, 2, 3, 42)
		if got := tt.At(0, 1, 2, 3); got != 42 {
			t.Errorf("layout %v: At = %v, want 42", l, got)
		}
	}
}

func TestLayoutConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(Shape{2, 5, 7, 3}, NCHW)
	a.FillRandom(rng, 1)
	b := a.ToLayout(NHWC)
	if b.Layout() != NHWC {
		t.Fatalf("layout = %v", b.Layout())
	}
	c := b.ToLayout(NCHW)
	if MaxAbsDiff(a, c) != 0 {
		t.Error("NCHW -> NHWC -> NCHW round trip changed values")
	}
	// Same logical contents even across layouts.
	if MaxAbsDiff(a, b) != 0 {
		t.Error("logical contents differ after conversion")
	}
}

func TestToLayoutNoCopyWhenSame(t *testing.T) {
	a := New(Shape{1, 1, 2, 2}, NCHW)
	if a.ToLayout(NCHW) != a {
		t.Error("ToLayout with same layout should return receiver")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(Shape{1, 1, 2, 2}, NCHW)
	a.Fill(3)
	b := a.Clone()
	b.Set(0, 0, 0, 0, 9)
	if a.At(0, 0, 0, 0) != 3 {
		t.Error("Clone shares storage with original")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(Shape{1, 2, 3, 4}, NCHW)
	b := New(Shape{1, 2, 3, 4}, NCHW)
	a.FillRandom(rand.New(rand.NewSource(7)), 0.5)
	b.FillRandom(rand.New(rand.NewSource(7)), 0.5)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("same seed should give same contents")
	}
	for _, v := range a.Data() {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("value %v outside scale", v)
		}
	}
}

func TestAllClose(t *testing.T) {
	a := New(Shape{1, 1, 1, 2}, NCHW)
	b := New(Shape{1, 1, 1, 2}, NCHW)
	b.Set(0, 0, 0, 1, 0.01)
	if !AllClose(a, b, 0.011) {
		t.Error("should be close at tol 0.011")
	}
	if AllClose(a, b, 0.009) {
		t.Error("should not be close at tol 0.009")
	}
}

func TestMaxAbsDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MaxAbsDiff(New(Shape{1, 1, 1, 1}, NCHW), New(Shape{1, 1, 1, 2}, NCHW))
}

// Property: for any valid small shape, conversion preserves every element.
func TestLayoutConversionProperty(t *testing.T) {
	f := func(n, c, h, w uint8, seed int64) bool {
		s := Shape{int(n%3) + 1, int(c%5) + 1, int(h%6) + 1, int(w%6) + 1}
		a := New(s, NCHW)
		a.FillRandom(rand.New(rand.NewSource(seed)), 2)
		return MaxAbsDiff(a, a.ToLayout(NHWC).ToLayout(NCHW)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayoutString(t *testing.T) {
	if NCHW.String() != "NCHW" || NHWC.String() != "NHWC" {
		t.Error("layout names wrong")
	}
	if Layout(99).String() != "Layout(?)" {
		t.Error("unknown layout name wrong")
	}
}
