package tensor

// Layout identifies the memory order of a 4-D activation tensor.
// Different acceleration libraries require different layouts (e.g.
// cuDNN and the BLAS lowerings prefer NCHW while NNPACK-style and some
// ArmCL primitives prefer NHWC); inserting a conversion between two
// layers whose primitives disagree costs time, which is the core
// incompatibility the QS-DNN search must learn to navigate.
type Layout uint8

const (
	// NCHW stores channels outermost (planar): all of channel 0's
	// pixels, then channel 1's, and so on.
	NCHW Layout = iota
	// NHWC stores channels innermost (interleaved): for each pixel,
	// all channels are adjacent.
	NHWC
)

// String returns the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case NHWC:
		return "NHWC"
	default:
		return "Layout(?)"
	}
}

// Layouts lists all supported layouts.
func Layouts() []Layout { return []Layout{NCHW, NHWC} }
