// Package tensor provides the dense float32 tensor type used by the
// inference engine, together with the memory layouts that acceleration
// primitives disagree about (NCHW vs NHWC) and the conversions between
// them. Layout mismatches between consecutive layers are the root cause
// of the compatibility penalties that make per-layer-greedy primitive
// selection sub-optimal, so this package is the foundation of the whole
// search problem.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape describes a 4-D activation tensor (N, C, H, W). Fully-connected
// activations use H = W = 1. N is the batch size; the paper (and this
// reproduction) uses N = 1 throughout inference-latency experiments.
type Shape struct {
	N, C, H, W int
}

// Elems returns the number of elements the shape holds.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Bytes returns the float32 byte footprint of the shape.
func (s Shape) Bytes() int { return s.Elems() * 4 }

// Valid reports whether all dimensions are strictly positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Equal reports whether two shapes match in every dimension.
func (s Shape) Equal(o Shape) bool { return s == o }

// Tensor is a dense float32 tensor with an explicit memory layout.
// Data is stored in a single contiguous slice; the layout determines
// how (n, c, h, w) coordinates map to a linear index.
type Tensor struct {
	shape  Shape
	layout Layout
	data   []float32
}

// New allocates a zero-filled tensor with the given shape and layout.
func New(shape Shape, layout Layout) *Tensor {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Tensor{shape: shape, layout: layout, data: make([]float32, shape.Elems())}
}

// NewFrom wraps an existing slice. The slice length must match the shape.
func NewFrom(shape Shape, layout Layout, data []float32) *Tensor {
	if len(data) != shape.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), shape, shape.Elems()))
	}
	return &Tensor{shape: shape, layout: layout, data: data}
}

// Shape returns the tensor's shape.
func (t *Tensor) Shape() Shape { return t.shape }

// Layout returns the tensor's memory layout.
func (t *Tensor) Layout() Layout { return t.layout }

// Data returns the backing slice. Callers must respect the layout.
func (t *Tensor) Data() []float32 { return t.data }

// Index returns the linear index of (n, c, h, w) under the tensor's layout.
func (t *Tensor) Index(n, c, h, w int) int {
	s := t.shape
	switch t.layout {
	case NCHW:
		return ((n*s.C+c)*s.H+h)*s.W + w
	case NHWC:
		return ((n*s.H+h)*s.W+w)*s.C + c
	default:
		panic("tensor: unknown layout " + t.layout.String())
	}
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 { return t.data[t.Index(n, c, h, w)] }

// Set assigns the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) { t.data[t.Index(n, c, h, w)] = v }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: t.shape, layout: t.layout, data: d}
}

// FillRandom fills the tensor with values drawn uniformly from
// [-scale, scale] using the given seeded source, so model weights are
// reproducible across runs.
func (t *Tensor) FillRandom(rng *rand.Rand, scale float32) {
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// ToLayout returns a tensor with identical logical contents in the
// requested layout. If the layout already matches, the receiver is
// returned unchanged (no copy).
func (t *Tensor) ToLayout(l Layout) *Tensor {
	if t.layout == l {
		return t
	}
	out := New(t.shape, l)
	s := t.shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					out.Set(n, c, h, w, t.At(n, c, h, w))
				}
			}
		}
	}
	return out
}

// MaxAbsDiff returns the maximum absolute element-wise difference
// between two tensors with the same shape, regardless of layout.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.shape.Equal(b.shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	var maxd float64
	s := a.shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					d := math.Abs(float64(a.At(n, c, h, w)) - float64(b.At(n, c, h, w)))
					if d > maxd {
						maxd = d
					}
				}
			}
		}
	}
	return maxd
}

// AllClose reports whether every element of a and b differs by at most tol.
func AllClose(a, b *Tensor, tol float64) bool { return MaxAbsDiff(a, b) <= tol }
