package compat

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

func producer(t *testing.T) *nn.Layer {
	t.Helper()
	b := nn.NewBuilder("p", tensor.Shape{N: 1, C: 16, H: 28, W: 28})
	b.Conv("conv", b.Input(), 32, 3, 1, 1)
	net := b.MustBuild()
	return net.Layers[net.LayerIndex("conv")]
}

func TestPenaltyCases(t *testing.T) {
	pl := platform.JetsonTX2Like()
	l := producer(t)
	van := primitives.PVanilla    // CPU / NCHW
	arm := primitives.PArmCLGemm  // CPU / NHWC
	cud := primitives.PCuDNNConv  // GPU / NCHW
	nnp := primitives.PNNPackGemm // CPU / NHWC

	if got := Penalty(pl, l, van, van); got != 0 {
		t.Errorf("same proc+layout penalty = %v, want 0", got)
	}
	layoutOnly := Penalty(pl, l, van, arm)
	if layoutOnly <= 0 {
		t.Errorf("layout-only penalty = %v, want > 0", layoutOnly)
	}
	procOnly := Penalty(pl, l, van, cud)
	if procOnly < pl.TransferFixedSec {
		t.Errorf("processor-only penalty = %v, want >= %v", procOnly, pl.TransferFixedSec)
	}
	both := Penalty(pl, l, arm, cud) // NHWC/CPU -> NCHW/GPU
	if both <= procOnly || both <= layoutOnly {
		t.Errorf("proc+layout penalty %v should exceed single penalties %v / %v",
			both, procOnly, layoutOnly)
	}
	// Two NHWC CPU libraries agree: free.
	if got := Penalty(pl, l, arm, nnp); got != 0 {
		t.Errorf("NHWC->NHWC same-proc penalty = %v, want 0", got)
	}
}

func TestPenaltyScalesWithActivationSize(t *testing.T) {
	pl := platform.JetsonTX2Like()
	bSmall := nn.NewBuilder("s", tensor.Shape{N: 1, C: 8, H: 7, W: 7})
	bSmall.Conv("c", bSmall.Input(), 8, 1, 1, 0)
	small := bSmall.MustBuild()
	bBig := nn.NewBuilder("b", tensor.Shape{N: 1, C: 64, H: 112, W: 112})
	bBig.Conv("c", bBig.Input(), 64, 1, 1, 0)
	big := bBig.MustBuild()

	van, cud := primitives.PVanilla, primitives.PCuDNNConv
	ps := Penalty(pl, small.Layers[1], van, cud)
	pb := Penalty(pl, big.Layers[1], van, cud)
	if pb <= ps {
		t.Errorf("big activation penalty %v should exceed small %v", pb, ps)
	}
}

func TestOutputPenalty(t *testing.T) {
	pl := platform.JetsonTX2Like()
	l := producer(t)
	if got := OutputPenalty(pl, l, primitives.PVanilla); got != 0 {
		t.Errorf("CPU/NCHW output penalty = %v, want 0", got)
	}
	if got := OutputPenalty(pl, l, primitives.PCuDNNConv); got < pl.TransferFixedSec {
		t.Errorf("GPU output penalty = %v, want >= fixed transfer", got)
	}
	if got := OutputPenalty(pl, l, primitives.PArmCLGemm); got <= 0 {
		t.Errorf("NHWC output penalty = %v, want > 0 (conversion back)", got)
	}
}

func TestIncompatible(t *testing.T) {
	if Incompatible(primitives.PVanilla, primitives.PAtlasIm2col) {
		t.Error("vanilla and atlas share CPU/NCHW")
	}
	if !Incompatible(primitives.PVanilla, primitives.PCuDNNConv) {
		t.Error("CPU vs GPU should be incompatible")
	}
	if !Incompatible(primitives.PVanilla, primitives.PArmCLGemm) {
		t.Error("NCHW vs NHWC should be incompatible")
	}
}

func TestInputPrimitiveIsHostFormat(t *testing.T) {
	p := InputPrimitive()
	if p.Proc != primitives.CPU || p.Layout != tensor.NCHW {
		t.Errorf("input pseudo-primitive = %v/%v, want CPU/NCHW", p.Proc, p.Layout)
	}
}

func TestEnergyPenalties(t *testing.T) {
	pl := platform.JetsonTX2Like()
	l := producer(t)
	van, arm, cud := primitives.PVanilla, primitives.PArmCLGemm, primitives.PCuDNNConv
	if got := EnergyPenalty(pl, l, van, van); got != 0 {
		t.Errorf("compatible edge energy = %v, want 0", got)
	}
	if got := EnergyPenalty(pl, l, van, arm); got <= 0 {
		t.Errorf("layout-change energy = %v, want > 0", got)
	}
	hop := EnergyPenalty(pl, l, van, cud)
	if hop <= 0 {
		t.Errorf("transfer energy = %v, want > 0", hop)
	}
	// Energy tracks time: transfer joules = transfer seconds x watts.
	want := pl.TransferLatency(int64(l.OutShape.Bytes())) * pl.Power().TransferWatts
	if got := EnergyPenalty(pl, l, van, cud); got != want {
		t.Errorf("transfer energy = %v, want %v", got, want)
	}
	if got := OutputEnergyPenalty(pl, l, van); got != 0 {
		t.Errorf("CPU/NCHW output energy = %v, want 0", got)
	}
	if got := OutputEnergyPenalty(pl, l, cud); got <= 0 {
		t.Errorf("GPU output energy = %v, want > 0", got)
	}
	if got := OutputEnergyPenalty(pl, l, arm); got <= 0 {
		t.Errorf("NHWC output energy = %v, want > 0", got)
	}
}
