// Package compat models the incompatibility penalties of §IV-A and
// Fig. 3 of the paper: when consecutive layers are implemented by
// primitives that disagree on tensor layout a conversion layer must
// run, and when they sit on different processors the activation must
// be copied across. These penalties are what make the per-layer-greedy
// choice globally sub-optimal (Fig. 1) and are exactly what the
// Q-learning agent must learn to look past.
package compat

import (
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// Penalty returns the cost, in seconds, of feeding producer's output
// (computed by primitive from) into consumer (computed by primitive
// to) on the given platform:
//
//   - different processors: one CPU<->GPU transfer of the activation,
//     plus a layout conversion on the destination processor if the
//     layouts also disagree;
//   - same processor, different layouts: one conversion there;
//   - otherwise free.
func Penalty(pl *platform.Platform, producer *nn.Layer, from *primitives.Primitive, to *primitives.Primitive) float64 {
	bytes := int64(producer.OutShape.Bytes())
	var cost float64
	if from.Proc != to.Proc {
		cost += pl.TransferLatency(bytes)
	}
	if from.Layout != to.Layout {
		cost += pl.ConversionLatency(bytes, to.Proc)
	}
	return cost
}

// InputPrimitive is the pseudo-primitive describing how the network
// input arrives: on the CPU, in NCHW order (the host format). The
// first layer's primitive pays a penalty against it like any other
// edge.
func InputPrimitive() *primitives.Primitive { return primitives.PVanilla }

// OutputPenalty returns the cost of delivering the final layer's
// output back to the host (CPU, NCHW): a transfer if the last
// primitive ran on the GPU, plus a conversion if it produced NHWC.
// This return cost is what makes an all-GPU LeNet lose to the pure
// CPU configuration.
func OutputPenalty(pl *platform.Platform, last *nn.Layer, p *primitives.Primitive) float64 {
	bytes := int64(last.OutShape.Bytes())
	var cost float64
	if p.Proc != primitives.CPU {
		cost += pl.TransferLatency(bytes)
	}
	if p.Layout != InputPrimitive().Layout {
		cost += pl.ConversionLatency(bytes, primitives.CPU)
	}
	return cost
}

// Incompatible reports whether an edge between the two primitives
// needs any compatibility layer at all.
func Incompatible(from, to *primitives.Primitive) bool {
	return from.Proc != to.Proc || from.Layout != to.Layout
}

// EnergyPenalty is Penalty's energy counterpart: the joules spent on
// the transfer and/or conversion an incompatible edge requires.
func EnergyPenalty(pl *platform.Platform, producer *nn.Layer, from *primitives.Primitive, to *primitives.Primitive) float64 {
	bytes := int64(producer.OutShape.Bytes())
	var e float64
	if from.Proc != to.Proc {
		e += pl.TransferEnergy(bytes)
	}
	if from.Layout != to.Layout {
		e += pl.ConversionEnergy(bytes, to.Proc)
	}
	return e
}

// OutputEnergyPenalty is OutputPenalty's energy counterpart.
func OutputEnergyPenalty(pl *platform.Platform, last *nn.Layer, p *primitives.Primitive) float64 {
	bytes := int64(last.OutShape.Bytes())
	var e float64
	if p.Proc != primitives.CPU {
		e += pl.TransferEnergy(bytes)
	}
	if p.Layout != InputPrimitive().Layout {
		e += pl.ConversionEnergy(bytes, primitives.CPU)
	}
	return e
}
