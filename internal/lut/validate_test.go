package lut

import (
	"math"
	"testing"

	"repro/internal/primitives"
)

// mustPanic asserts that f panics; the write-path validators are loud
// by contract.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic on invalid value", what)
		}
	}()
	f()
}

// TestSetRejectsInvalidValues is the write-path twin of Load's
// validation: NaN, +/-Inf and negative values must never enter a table
// silently (regression: they previously did, and only Load would have
// caught them on a round trip).
func TestSetRejectsInvalidValues(t *testing.T) {
	net := chainNet(t)
	tab := New(net, primitives.ModeGPGPU)
	p := tab.Candidates(1)[0]
	ed := tab.Edges()[0]
	out := tab.OutputLayer()
	op := tab.Candidates(out)[0]
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1e-9} {
		mustPanic(t, "SetTime", func() { tab.SetTime(1, p, bad) })
		mustPanic(t, "SetPenalty", func() { tab.SetPenalty(ed.From, ed.To, p, p, bad) })
		mustPanic(t, "SetOutputPenalty", func() { tab.SetOutputPenalty(op, bad) })
	}
	// Valid boundary values are accepted.
	tab.SetTime(1, p, 0)
	tab.SetPenalty(ed.From, ed.To, tab.Candidates(ed.From)[0], tab.Candidates(ed.To)[0], 0)
	tab.SetOutputPenalty(op, 1e-6)
}

func TestValidSeconds(t *testing.T) {
	for _, ok := range []float64{0, 1e-12, 42.5} {
		if !ValidSeconds(ok) {
			t.Errorf("ValidSeconds(%v) = false", ok)
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.001} {
		if ValidSeconds(bad) {
			t.Errorf("ValidSeconds(%v) = true", bad)
		}
	}
}

func TestDropCandidate(t *testing.T) {
	net := chainNet(t)
	tab := New(net, primitives.ModeGPGPU)
	cands := tab.Candidates(1)
	if len(cands) < 2 {
		t.Fatalf("layer 1 has %d candidates, need >= 2", len(cands))
	}
	victim := cands[len(cands)-1]
	before := len(cands)
	if !tab.DropCandidate(1, victim) {
		t.Fatal("DropCandidate returned false for a present candidate")
	}
	if got := len(tab.Candidates(1)); got != before-1 {
		t.Errorf("candidate count after drop = %d, want %d", got, before-1)
	}
	for _, c := range tab.Candidates(1) {
		if c == victim {
			t.Error("dropped candidate still present")
		}
	}
	if tab.DropCandidate(1, victim) {
		t.Error("dropping twice reported success")
	}
	if tab.DropCandidate(0, tab.Candidates(0)[0]) {
		t.Error("input pseudo-layer candidate must not be droppable")
	}
	// A dropped candidate's (unset, +Inf) entries are skipped by the
	// sparse serializer, so a degraded table still round-trips Load.
	fillValid(tab)
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(data, net); err != nil {
		t.Errorf("degraded table failed Load round trip: %v", err)
	}
}

// fillValid populates every remaining candidate entry with valid
// values.
func fillValid(tab *Table) {
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			tab.SetTime(i, p, 0.001*float64(i+1))
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				tab.SetPenalty(ed.From, ed.To, fp, tp, 0.0001)
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		tab.SetOutputPenalty(p, 0.0002)
	}
}
