package lut

import (
	"math"
	"testing"

	"repro/internal/primitives"
)

// tunedConvTwin enables tuned variants and returns (base, twin) for the
// openblas im2col conv path — the twin every tuned-candidate test uses.
func tunedConvTwin(t *testing.T) (primitives.ID, primitives.ID) {
	t.Helper()
	primitives.EnableTunedVariants()
	base := primitives.POpenIm2col.Idx
	twin, ok := primitives.TunedOf(base)
	if !ok {
		t.Fatal("openblas-gemm-im2col has no tuned twin")
	}
	return base, twin
}

func TestAddCandidateTunedTwin(t *testing.T) {
	base, twin := tunedConvTwin(t)
	tab := New(chainNet(t), primitives.ModeCPU)
	fill(tab)

	if !tab.AddCandidate(1, twin) {
		t.Fatal("AddCandidate refused a fresh tuned twin")
	}
	if tab.AddCandidate(1, twin) {
		t.Error("AddCandidate accepted a duplicate")
	}
	if tab.AddCandidate(0, twin) {
		t.Error("AddCandidate accepted the input pseudo-layer")
	}
	if tab.AddCandidate(1, primitives.ID(primitives.Count()+5)) {
		t.Error("AddCandidate accepted an out-of-range id")
	}
	found := false
	for _, c := range tab.Candidates(1) {
		if c == twin {
			found = true
		}
	}
	if !found {
		t.Fatal("twin missing from candidates after AddCandidate")
	}

	// Times start unmeasured; the tuner sets them after measuring.
	if !math.IsInf(tab.Time(1, twin), 1) {
		t.Error("fresh twin should be unmeasured (+Inf)")
	}
	tab.SetTime(1, twin, 0.001)

	// MirrorCandidate copies every penalty the base had.
	tab.MirrorCandidate(1, base, twin)
	for _, ed := range tab.Edges() {
		if ed.To == 1 {
			for _, fp := range tab.Candidates(ed.From) {
				if got, want := tab.Penalty(ed.From, ed.To, fp, twin), tab.Penalty(ed.From, ed.To, fp, base); got != want {
					t.Errorf("incoming penalty (%d,%d) = %v, want %v", fp, twin, got, want)
				}
			}
		}
		if ed.From == 1 {
			for _, tp := range tab.Candidates(ed.To) {
				if got, want := tab.Penalty(ed.From, ed.To, twin, tp), tab.Penalty(ed.From, ed.To, base, tp); got != want {
					t.Errorf("outgoing penalty (%d,%d) = %v, want %v", twin, tp, got, want)
				}
			}
		}
	}
}

// TestMirrorCoversTwinTwinPairs: when both endpoints of an edge gain
// twins (add+mirror in ascending layer order), the (twin, twin) pair is
// mirrored too.
func TestMirrorCoversTwinTwinPairs(t *testing.T) {
	base, twin := tunedConvTwin(t)
	tab := New(branchNet(t), primitives.ModeCPU)
	fill(tab)
	// Layers 1 (stem) and 2 (left) are conv layers joined by an edge.
	for _, layer := range []int{1, 2} {
		if !tab.AddCandidate(layer, twin) {
			t.Fatalf("AddCandidate(%d) failed", layer)
		}
		tab.MirrorCandidate(layer, base, twin)
	}
	if got, want := tab.Penalty(1, 2, twin, twin), tab.Penalty(1, 2, base, base); got != want {
		t.Errorf("twin-twin penalty = %v, want %v", got, want)
	}
}

// TestTunedTableRoundTrip: a table with tuned candidates, times and
// mirrored penalties survives MarshalJSON -> Load byte-exactly.
func TestTunedTableRoundTrip(t *testing.T) {
	base, twin := tunedConvTwin(t)
	net := chainNet(t)
	tab := New(net, primitives.ModeCPU)
	fill(tab)
	tab.AddCandidate(1, twin)
	tab.MirrorCandidate(1, base, twin)
	tab.SetTime(1, twin, 0.0007)

	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data, net)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Time(1, twin); got != 0.0007 {
		t.Errorf("twin time after round trip = %v", got)
	}
	for _, ed := range back.Edges() {
		if ed.To != 1 {
			continue
		}
		for _, fp := range back.Candidates(ed.From) {
			if got, want := back.Penalty(ed.From, ed.To, fp, twin), tab.Penalty(ed.From, ed.To, fp, twin); got != want {
				t.Errorf("penalty (%d,%d) after round trip = %v, want %v", fp, twin, got, want)
			}
		}
	}
	// The assignment using the twin prices like the original table.
	a := vanillaAssignment(tab)
	a[1] = twin
	if got, want := back.TotalTime(a), tab.TotalTime(a); got != want {
		t.Errorf("TotalTime with twin = %v, want %v", got, want)
	}
}

// TestLoadRejectsTunedForWrongLayer: a tuned name whose base is not a
// candidate of the layer is a forgery and must be rejected.
func TestLoadRejectsTunedForWrongLayer(t *testing.T) {
	_, twin := tunedConvTwin(t)
	net := chainNet(t)
	tab := New(net, primitives.ModeCPU)
	fill(tab)
	// Layer 2 is ReLU: openblas-gemm-im2col is not a candidate there,
	// so neither is its twin.
	tab.candidates[2] = append(tab.candidates[2], twin)
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(data, net); err == nil {
		t.Error("Load accepted a tuned twin on a layer its base cannot serve")
	}
}
