package lut

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

func chainNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("chain", tensor.Shape{N: 1, C: 3, H: 8, W: 8})
	x := b.Conv("conv", b.Input(), 4, 3, 1, 1)
	x = b.ReLU("relu", x)
	x = b.Flatten("flat", x)
	b.FullyConnected("fc", x, 10)
	return b.MustBuild()
}

func branchNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("branch", tensor.Shape{N: 1, C: 4, H: 8, W: 8})
	x := b.Conv("stem", b.Input(), 8, 3, 1, 1)
	l := b.Conv("left", x, 4, 1, 1, 0)
	r := b.Conv("right", x, 4, 1, 1, 0)
	b.Concat("cat", l, r)
	return b.MustBuild()
}

// fill populates a table with simple deterministic values.
func fill(t *Table) {
	for i := 1; i < t.NumLayers(); i++ {
		for _, p := range t.Candidates(i) {
			t.SetTime(i, p, float64(i)+float64(p)/100)
		}
	}
	for _, ed := range t.Edges() {
		for _, fp := range t.Candidates(ed.From) {
			for _, tp := range t.Candidates(ed.To) {
				pen := 0.0
				if fp != tp {
					pen = 0.5
				}
				t.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	for _, p := range t.Candidates(t.OutputLayer()) {
		t.SetOutputPenalty(p, 0.25)
	}
}

// vanillaAssignment returns the all-Vanilla assignment.
func vanillaAssignment(t *Table) []primitives.ID {
	a := make([]primitives.ID, t.NumLayers())
	for i := range a {
		a[i] = primitives.PVanilla.Idx
	}
	return a
}

func TestNewTableStructure(t *testing.T) {
	net := chainNet(t)
	tab := New(net, primitives.ModeGPGPU)
	if tab.NumLayers() != net.Len() {
		t.Errorf("NumLayers = %d", tab.NumLayers())
	}
	if tab.OutputLayer() != net.OutputLayer() {
		t.Errorf("OutputLayer = %d", tab.OutputLayer())
	}
	// One edge per layer in a chain (each consumes its predecessor).
	if len(tab.Edges()) != net.Len()-1 {
		t.Errorf("edges = %d, want %d", len(tab.Edges()), net.Len()-1)
	}
	// Input layer: only the pseudo-primitive, at zero time.
	if c := tab.Candidates(0); len(c) != 1 || c[0] != primitives.PVanilla.Idx {
		t.Errorf("input candidates = %v", c)
	}
	if tab.Time(0, primitives.PVanilla.Idx) != 0 {
		t.Error("input time should be zero")
	}
	// Unmeasured entries are +Inf.
	if !math.IsInf(tab.Time(1, tab.Candidates(1)[0]), 1) {
		t.Error("unmeasured time should be +Inf")
	}
}

func TestBranchEdges(t *testing.T) {
	net := branchNet(t)
	tab := New(net, primitives.ModeCPU)
	// Edges: input->stem, stem->left, stem->right, left->cat, right->cat.
	if len(tab.Edges()) != 5 {
		t.Errorf("edges = %d, want 5", len(tab.Edges()))
	}
	catIdx := net.LayerIndex("cat")
	n := 0
	for _, e := range tab.Edges() {
		if e.To == catIdx {
			n++
		}
	}
	if n != 2 {
		t.Errorf("concat incoming edges = %d, want 2", n)
	}
}

func TestTotalTimeSumsEverything(t *testing.T) {
	net := chainNet(t)
	tab := New(net, primitives.ModeCPU)
	fill(tab)
	a := vanillaAssignment(tab)
	// times: layers 1..4 => 1+2+3+4 (+ prim/100 terms), penalties all
	// same-prim = 0, output 0.25.
	want := 0.0
	for i := 1; i < tab.NumLayers(); i++ {
		want += tab.Time(i, a[i])
	}
	want += 0.25
	if got := tab.TotalTime(a); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalTime = %v, want %v", got, want)
	}
}

func TestTotalTimeIncludesPenalties(t *testing.T) {
	net := chainNet(t)
	tab := New(net, primitives.ModeCPU)
	fill(tab)
	a := vanillaAssignment(tab)
	base := tab.TotalTime(a)
	// Switch one middle layer to a different primitive: two edge
	// penalties (in and out) of 0.5 each appear.
	reluIdx := net.LayerIndex("relu")
	var alt primitives.ID = -1
	for _, c := range tab.Candidates(reluIdx) {
		if c != primitives.PVanilla.Idx {
			alt = c
			break
		}
	}
	if alt < 0 {
		t.Fatal("no alternative relu primitive")
	}
	a[reluIdx] = alt
	got := tab.TotalTime(a)
	dTime := tab.Time(reluIdx, alt) - tab.Time(reluIdx, primitives.PVanilla.Idx)
	if math.Abs(got-(base+dTime+1.0)) > 1e-9 {
		t.Errorf("TotalTime = %v, want base %v + dt %v + 1.0 penalty", got, base, dTime)
	}
}

func TestLayerCostMatchesTotalDecomposition(t *testing.T) {
	net := branchNet(t)
	tab := New(net, primitives.ModeCPU)
	fill(tab)
	a := vanillaAssignment(tab)
	// Summing LayerCost over all layers must equal TotalTime, because
	// every edge penalty is attributed to its consumer and the output
	// penalty to the output layer.
	var sum float64
	for i := 1; i < tab.NumLayers(); i++ {
		sum += tab.LayerCost(i, a[i], a)
	}
	if got := tab.TotalTime(a); math.Abs(got-sum) > 1e-9 {
		t.Errorf("TotalTime %v != sum of LayerCost %v", got, sum)
	}
}

func TestTotalTimeWrongLengthPanics(t *testing.T) {
	tab := New(chainNet(t), primitives.ModeCPU)
	defer func() {
		if recover() == nil {
			t.Error("wrong-length assignment should panic")
		}
	}()
	tab.TotalTime(make([]primitives.ID, 2))
}

func TestPenaltyUnknownEdgePanics(t *testing.T) {
	tab := New(chainNet(t), primitives.ModeCPU)
	defer func() {
		if recover() == nil {
			t.Error("unknown edge should panic")
		}
	}()
	tab.Penalty(0, 3, 0, 0)
}

func TestJSONRoundTrip(t *testing.T) {
	net := branchNet(t)
	tab := New(net, primitives.ModeGPGPU)
	fill(tab)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := Load(data, net)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Network != tab.Network || back.Mode != tab.Mode {
		t.Error("metadata lost in round trip")
	}
	a := vanillaAssignment(tab)
	if tab.TotalTime(a) != back.TotalTime(a) {
		t.Error("TotalTime differs after round trip")
	}
	// Spot-check a penalty pair.
	ed := tab.Edges()[1]
	fp := tab.Candidates(ed.From)[0]
	tp := tab.Candidates(ed.To)[1]
	if tab.Penalty(ed.From, ed.To, fp, tp) != back.Penalty(ed.From, ed.To, fp, tp) {
		t.Error("penalty differs after round trip")
	}
}

func TestLoadRejectsWrongNetwork(t *testing.T) {
	tab := New(chainNet(t), primitives.ModeCPU)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(data, branchNet(t)); err == nil {
		t.Error("loading a chain table into a branch network should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("{"), chainNet(t)); err == nil {
		t.Error("garbage JSON should fail")
	}
}

func TestComputeStats(t *testing.T) {
	net := chainNet(t)
	tab := New(net, primitives.ModeCPU)
	s := tab.ComputeStats()
	if s.Layers != net.Len()-1 {
		t.Errorf("Layers = %d", s.Layers)
	}
	if s.TimeEntries != 0 || s.PenaltyPairs != 0 {
		t.Errorf("fresh table stats = %+v, want empty", s)
	}
	fill(tab)
	s = tab.ComputeStats()
	wantTimes := 0
	for i := 1; i < tab.NumLayers(); i++ {
		wantTimes += len(tab.Candidates(i))
	}
	if s.TimeEntries != wantTimes {
		t.Errorf("TimeEntries = %d, want %d", s.TimeEntries, wantTimes)
	}
	if s.PenaltyPairs == 0 || s.NonzeroPenalties == 0 || s.NonzeroPenalties > s.PenaltyPairs {
		t.Errorf("penalty stats = %+v", s)
	}
}
