package lut

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// fuzzNet builds the small chain network all fuzz inputs are loaded
// against (Load takes the graph structure from the network, so the
// fuzzer only explores the byte side).
func fuzzNet() *nn.Network {
	b := nn.NewBuilder("fuzz-chain", tensor.Shape{N: 1, C: 3, H: 8, W: 8})
	x := b.Input()
	x = b.Conv("c1", x, 4, 3, 1, 1)
	x = b.ReLU("r1", x)
	x = b.FullyConnected("fc", x, 10)
	return b.MustBuild()
}

// fuzzTable returns a fully populated valid table for fuzzNet.
func fuzzTable(net *nn.Network) *Table {
	t := New(net, primitives.ModeGPGPU)
	for i := 1; i < t.NumLayers(); i++ {
		for k, p := range t.Candidates(i) {
			t.SetTime(i, p, 0.001*float64(i)+0.0001*float64(k))
		}
	}
	for _, ed := range t.Edges() {
		for _, fp := range t.Candidates(ed.From) {
			for _, tp := range t.Candidates(ed.To) {
				pen := 0.0
				if fp != tp {
					pen = 0.0002
				}
				t.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	for _, p := range t.Candidates(t.OutputLayer()) {
		t.SetOutputPenalty(p, 0.0001)
	}
	return t
}

// checkSane asserts a successfully loaded table contains no NaN or
// negative entry anywhere a search could read one (+Inf marks
// un-profiled cells and is legal).
func checkSane(t *testing.T, tab *Table) {
	t.Helper()
	bad := func(v float64) bool { return math.IsNaN(v) || (!math.IsInf(v, 1) && v < 0) }
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			if v := tab.Time(i, p); bad(v) {
				t.Fatalf("layer %d prim %d: loaded time %v", i, p, v)
			}
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				if v := tab.Penalty(ed.From, ed.To, fp, tp); bad(v) {
					t.Fatalf("edge %d->%d: loaded penalty %v", ed.From, ed.To, v)
				}
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		if v := tab.OutputPenalty(p); bad(v) {
			t.Fatalf("output penalty %v", v)
		}
	}
}

// FuzzLoad drives Load with arbitrary bytes: valid tables must load
// and stay sane, anything else must fail with an error — never a
// panic, and never a table carrying NaN or negative times.
func FuzzLoad(f *testing.F) {
	net := fuzzNet()
	valid, err := json.Marshal(fuzzTable(net))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"network":"fuzz-chain","mode":"GPGPU","layers":4,"output":3}`))
	f.Add(bytes.Replace(valid, []byte(`"sec":0.001`), []byte(`"sec":-1`), 1))
	f.Add(bytes.Replace(valid, []byte(`"layer":1`), []byte(`"layer":99`), 1))
	f.Add(bytes.Replace(valid, []byte(`"from":0`), []byte(`"from":7`), 1))
	f.Add(bytes.Replace(valid, []byte(`"prim":"vanilla-direct"`), []byte(`"prim":"warp-core"`), 1))
	f.Add(bytes.Replace(valid, []byte(`"mode":"GPGPU"`), []byte(`"mode":"TPU"`), 1))
	// Candidate-set reconciliation seeds: a degraded (DropCandidate)
	// table, a candidates list naming an unknown primitive, a truncated
	// candidates array, and a legacy table with no candidates field.
	if degraded, err := json.Marshal(fuzzDegradedTable(net)); err == nil {
		f.Add(degraded)
	}
	f.Add(bytes.Replace(valid, []byte(`"candidates":[`), []byte(`"candidates":[["warp-core"],`), 1))
	f.Add(bytes.Replace(valid, []byte(`"candidates":[[`), []byte(`"candidates":[`), 1))
	f.Add(legacyNoCands(valid))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Load(data, net)
		if err != nil {
			return
		}
		checkSane(t, tab)
		// A loaded table must serialize again (canonical form).
		if _, err := json.Marshal(tab); err != nil {
			t.Fatalf("re-marshal of loaded table failed: %v", err)
		}
	})
}

// fuzzDegradedTable is fuzzTable after degradation: one candidate
// dropped from each eligible layer, as the fault-tolerant profiler does
// when a primitive persistently fails.
func fuzzDegradedTable(net *nn.Network) *Table {
	tab := fuzzTable(net)
	for i := 1; i < tab.NumLayers(); i++ {
		cands := tab.Candidates(i)
		if len(cands) < 2 {
			continue
		}
		// Drop the last non-Vanilla candidate, keeping the layer valid.
		for k := len(cands) - 1; k >= 0; k-- {
			if cands[k] != primitives.PVanilla.Idx {
				tab.DropCandidate(i, cands[k])
				break
			}
		}
	}
	return tab
}

// legacyNoCands strips the candidates field, emulating a table written
// before candidate sets were serialized.
func legacyNoCands(valid []byte) []byte {
	var m map[string]json.RawMessage
	if json.Unmarshal(valid, &m) != nil {
		return valid
	}
	delete(m, "candidates")
	out, err := json.Marshal(m)
	if err != nil {
		return valid
	}
	return out
}

// TestMarshalLoadRoundTripExact: serializing a table, loading it back
// and serializing again reproduces the bytes exactly — for the fully
// populated table and for a DropCandidate-degraded one (whose reduced
// candidate sets must survive the round trip).
func TestMarshalLoadRoundTripExact(t *testing.T) {
	net := fuzzNet()
	for name, tab := range map[string]*Table{
		"full":     fuzzTable(net),
		"degraded": fuzzDegradedTable(net),
	} {
		first, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Load(first, net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s round trip not exact:\n first: %s\nsecond: %s", name, first, second)
		}
	}
}

// TestLoadReconcilesDroppedCandidates: a degraded table loads back with
// the same reduced candidate sets (searches over the loaded table see
// exactly the survivors), entries for dropped candidates are rejected,
// and a legacy table without a candidates field loads against the full
// sets.
func TestLoadReconcilesDroppedCandidates(t *testing.T) {
	net := fuzzNet()
	tab := fuzzDegradedTable(net)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data, net)
	if err != nil {
		t.Fatal(err)
	}
	full := fuzzTable(net)
	for i := 1; i < tab.NumLayers(); i++ {
		got, want := back.Candidates(i), tab.Candidates(i)
		if len(got) != len(want) {
			t.Fatalf("layer %d: loaded %d candidates, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("layer %d candidate %d: %d != %d", i, k, got[k], want[k])
			}
		}
		if len(got) >= len(full.Candidates(i)) {
			t.Fatalf("layer %d: degradation did not shrink the candidate set", i)
		}
	}
	// A time entry naming a dropped candidate must be rejected: the
	// candidates field and the entries disagree about the table.
	kept := map[primitives.ID]bool{}
	for _, id := range tab.Candidates(1) {
		kept[id] = true
	}
	var name string
	for _, id := range full.Candidates(1) {
		if !kept[id] {
			name = primitives.ByID(id).Name
			break
		}
	}
	if name == "" {
		t.Fatal("no dropped candidate found on layer 1")
	}
	forged := bytes.Replace(data, []byte(`{"layer":1,"times":[`),
		[]byte(`{"layer":1,"times":[{"prim":"`+name+`","sec":0.5},`), 1)
	if bytes.Equal(forged, data) {
		t.Fatal("forgery did not change the bytes")
	}
	if _, err := Load(forged, net); err == nil {
		t.Error("Load accepted a time entry for a dropped candidate")
	}
	// Legacy tables (no candidates field) still load with full sets.
	legacy, err := Load(legacyNoCands(data), net)
	if err != nil {
		t.Fatalf("legacy table: %v", err)
	}
	for i := 1; i < legacy.NumLayers(); i++ {
		if len(legacy.Candidates(i)) != len(full.Candidates(i)) {
			t.Fatalf("legacy layer %d: %d candidates, want full %d",
				i, len(legacy.Candidates(i)), len(full.Candidates(i)))
		}
	}
	// A candidates array of the wrong length is rejected.
	truncated := bytes.Replace(data, []byte(`"candidates":[[`), []byte(`"candidates":[`), 1)
	if _, err := Load(truncated, net); err == nil {
		t.Error("Load accepted a truncated candidates array")
	}
	// A candidates list naming a non-candidate is rejected.
	alien := bytes.Replace(data, []byte(`"candidates":[[`), []byte(`"candidates":[["warp-core",`), 1)
	if _, err := Load(alien, net); err == nil {
		t.Error("Load accepted an unknown candidate name")
	}
}

// TestLoadRejectsCorruptTables spells out the classes of corruption
// Load must refuse (the fuzz seeds, asserted deterministically).
func TestLoadRejectsCorruptTables(t *testing.T) {
	net := fuzzNet()
	valid, err := json.Marshal(fuzzTable(net))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"negative time":      bytes.Replace(valid, []byte(`"sec":0.001`), []byte(`"sec":-1`), 1),
		"out-of-range layer": bytes.Replace(valid, []byte(`"layer":1`), []byte(`"layer":99`), 1),
		"nonexistent edge":   bytes.Replace(valid, []byte(`"from":0`), []byte(`"from":7`), 1),
		"unknown primitive":  bytes.Replace(valid, []byte(`"prim":"vanilla-direct"`), []byte(`"prim":"warp-core"`), 1),
		"unknown mode":       bytes.Replace(valid, []byte(`"mode":"GPGPU"`), []byte(`"mode":"TPU"`), 1),
		"wrong output":       bytes.Replace(valid, []byte(`"output":3`), []byte(`"output":1`), 1),
	}
	for name, data := range cases {
		if bytes.Equal(data, valid) {
			t.Fatalf("%s: mutation did not change the bytes", name)
		}
		if _, err := Load(data, net); err == nil {
			t.Errorf("%s: Load accepted corrupt table", name)
		}
	}
}
