package lut

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// fuzzNet builds the small chain network all fuzz inputs are loaded
// against (Load takes the graph structure from the network, so the
// fuzzer only explores the byte side).
func fuzzNet() *nn.Network {
	b := nn.NewBuilder("fuzz-chain", tensor.Shape{N: 1, C: 3, H: 8, W: 8})
	x := b.Input()
	x = b.Conv("c1", x, 4, 3, 1, 1)
	x = b.ReLU("r1", x)
	x = b.FullyConnected("fc", x, 10)
	return b.MustBuild()
}

// fuzzTable returns a fully populated valid table for fuzzNet.
func fuzzTable(net *nn.Network) *Table {
	t := New(net, primitives.ModeGPGPU)
	for i := 1; i < t.NumLayers(); i++ {
		for k, p := range t.Candidates(i) {
			t.SetTime(i, p, 0.001*float64(i)+0.0001*float64(k))
		}
	}
	for _, ed := range t.Edges() {
		for _, fp := range t.Candidates(ed.From) {
			for _, tp := range t.Candidates(ed.To) {
				pen := 0.0
				if fp != tp {
					pen = 0.0002
				}
				t.SetPenalty(ed.From, ed.To, fp, tp, pen)
			}
		}
	}
	for _, p := range t.Candidates(t.OutputLayer()) {
		t.SetOutputPenalty(p, 0.0001)
	}
	return t
}

// checkSane asserts a successfully loaded table contains no NaN or
// negative entry anywhere a search could read one (+Inf marks
// un-profiled cells and is legal).
func checkSane(t *testing.T, tab *Table) {
	t.Helper()
	bad := func(v float64) bool { return math.IsNaN(v) || (!math.IsInf(v, 1) && v < 0) }
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			if v := tab.Time(i, p); bad(v) {
				t.Fatalf("layer %d prim %d: loaded time %v", i, p, v)
			}
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				if v := tab.Penalty(ed.From, ed.To, fp, tp); bad(v) {
					t.Fatalf("edge %d->%d: loaded penalty %v", ed.From, ed.To, v)
				}
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		if v := tab.OutputPenalty(p); bad(v) {
			t.Fatalf("output penalty %v", v)
		}
	}
}

// FuzzLoad drives Load with arbitrary bytes: valid tables must load
// and stay sane, anything else must fail with an error — never a
// panic, and never a table carrying NaN or negative times.
func FuzzLoad(f *testing.F) {
	net := fuzzNet()
	valid, err := json.Marshal(fuzzTable(net))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"network":"fuzz-chain","mode":"GPGPU","layers":4,"output":3}`))
	f.Add(bytes.Replace(valid, []byte(`"sec":0.001`), []byte(`"sec":-1`), 1))
	f.Add(bytes.Replace(valid, []byte(`"layer":1`), []byte(`"layer":99`), 1))
	f.Add(bytes.Replace(valid, []byte(`"from":0`), []byte(`"from":7`), 1))
	f.Add(bytes.Replace(valid, []byte(`"prim":"vanilla-direct"`), []byte(`"prim":"warp-core"`), 1))
	f.Add(bytes.Replace(valid, []byte(`"mode":"GPGPU"`), []byte(`"mode":"TPU"`), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Load(data, net)
		if err != nil {
			return
		}
		checkSane(t, tab)
		// A loaded table must serialize again (canonical form).
		if _, err := json.Marshal(tab); err != nil {
			t.Fatalf("re-marshal of loaded table failed: %v", err)
		}
	})
}

// TestMarshalLoadRoundTripExact: serializing a table, loading it back
// and serializing again reproduces the bytes exactly.
func TestMarshalLoadRoundTripExact(t *testing.T) {
	net := fuzzNet()
	tab := fuzzTable(net)
	first, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(first, net)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip not exact:\n first: %s\nsecond: %s", first, second)
	}
}

// TestLoadRejectsCorruptTables spells out the classes of corruption
// Load must refuse (the fuzz seeds, asserted deterministically).
func TestLoadRejectsCorruptTables(t *testing.T) {
	net := fuzzNet()
	valid, err := json.Marshal(fuzzTable(net))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"negative time":      bytes.Replace(valid, []byte(`"sec":0.001`), []byte(`"sec":-1`), 1),
		"out-of-range layer": bytes.Replace(valid, []byte(`"layer":1`), []byte(`"layer":99`), 1),
		"nonexistent edge":   bytes.Replace(valid, []byte(`"from":0`), []byte(`"from":7`), 1),
		"unknown primitive":  bytes.Replace(valid, []byte(`"prim":"vanilla-direct"`), []byte(`"prim":"warp-core"`), 1),
		"unknown mode":       bytes.Replace(valid, []byte(`"mode":"GPGPU"`), []byte(`"mode":"TPU"`), 1),
		"wrong output":       bytes.Replace(valid, []byte(`"output":3`), []byte(`"output":1`), 1),
	}
	for name, data := range cases {
		if bytes.Equal(data, valid) {
			t.Fatalf("%s: mutation did not change the bytes", name)
		}
		if _, err := Load(data, net); err == nil {
			t.Errorf("%s: Load accepted corrupt table", name)
		}
	}
}
