// Package lut implements the look-up table the paper's inference phase
// produces and its search phase consumes: per-(layer, primitive)
// execution times, per-edge compatibility penalties for every
// primitive pair, and the output-return penalty. Once the table is
// built, evaluating a full network configuration is a pure table walk,
// which is what lets the RL search run thousands of episodes in
// seconds on a workstation instead of on the embedded board.
package lut

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/primitives"
)

// Edge is one producer->consumer dependency between layer indices.
type Edge struct {
	From, To int
}

// Table is the measurement database for one (network, mode) pair.
// Entries not explicitly set are +Inf, so an un-profiled choice can
// never look attractive to a search.
//
// Concurrency: a Table is written only while it is being populated
// (New plus the Set* methods); once profiling finishes it is
// effectively immutable and every read-side method (Time, Penalty,
// LayerCost, TotalTime, Candidates, ...) is safe to call from any
// number of goroutines simultaneously. This is what lets the batch
// runner share one profiled table across concurrent searches. Callers
// must not interleave Set* calls with concurrent reads.
type Table struct {
	// Network is the architecture name the table was profiled for.
	Network string
	// Mode is the processor mode the table was profiled under.
	Mode primitives.Mode

	numLayers int
	numPrims  int
	output    int
	// candidates[i] holds the primitive IDs layer i may use.
	candidates [][]primitives.ID
	// times[i*numPrims+p] is the measured latency of layer i with
	// primitive p.
	times []float64
	// edges lists every dependency, input edges included.
	edges []Edge
	// incoming[i] holds the indices into edges whose To is layer i.
	incoming [][]int
	// penalties[e][fp*numPrims+tp] is the compatibility cost of edge
	// e when its endpoints use primitives fp and tp.
	penalties [][]float64
	// outputPen[p] is the host-return cost when the output layer uses
	// primitive p.
	outputPen []float64
}

// New allocates an empty table shaped for the network under the given
// mode. Candidate sets are frozen at construction.
func New(net *nn.Network, mode primitives.Mode) *Table {
	n := net.Len()
	np := primitives.Count()
	t := &Table{
		Network:    net.Name,
		Mode:       mode,
		numLayers:  n,
		numPrims:   np,
		output:     net.OutputLayer(),
		candidates: make([][]primitives.ID, n),
		times:      make([]float64, n*np),
		outputPen:  make([]float64, np),
	}
	for i := range t.times {
		t.times[i] = math.Inf(1)
	}
	for i := range t.outputPen {
		t.outputPen[i] = math.Inf(1)
	}
	for i, l := range net.Layers {
		if i == 0 {
			// The input pseudo-layer is always "implemented" by the
			// host-format pseudo-primitive at zero cost.
			t.candidates[0] = []primitives.ID{primitives.PVanilla.Idx}
			t.times[primitives.PVanilla.Idx] = 0
			continue
		}
		for _, p := range primitives.Candidates(l, mode) {
			t.candidates[i] = append(t.candidates[i], p.Idx)
		}
		for _, from := range l.Inputs {
			t.edges = append(t.edges, Edge{From: from, To: i})
		}
	}
	t.incoming = make([][]int, n)
	for e, ed := range t.edges {
		t.incoming[ed.To] = append(t.incoming[ed.To], e)
	}
	t.penalties = make([][]float64, len(t.edges))
	for e := range t.penalties {
		pen := make([]float64, np*np)
		for i := range pen {
			pen[i] = math.Inf(1)
		}
		t.penalties[e] = pen
	}
	return t
}

// NumLayers returns the layer count including the input layer.
func (t *Table) NumLayers() int { return t.numLayers }

// OutputLayer returns the index of the layer whose result returns to
// the host.
func (t *Table) OutputLayer() int { return t.output }

// Candidates returns the primitive IDs available to layer i.
func (t *Table) Candidates(i int) []primitives.ID { return t.candidates[i] }

// Edges returns every producer->consumer dependency.
func (t *Table) Edges() []Edge { return t.edges }

// ValidSeconds reports whether sec is an admissible table entry: a
// finite, non-negative measurement. This is the same invariant Load
// enforces on deserialized bytes; the Set* methods enforce it at write
// time so a NaN, infinite or negative observation can never enter a
// table silently — sources must reject (or retry) such values before
// storing them.
func ValidSeconds(sec float64) bool {
	return !math.IsNaN(sec) && !math.IsInf(sec, 0) && sec >= 0
}

// checkSet panics when sec violates the table invariant. Writing an
// invalid value is a programming error in the caller (the profiling
// layer validates measurements at the source boundary), so it is loud
// rather than silent.
func checkSet(what string, sec float64) {
	if !ValidSeconds(sec) {
		panic(fmt.Sprintf("lut: %s: invalid time %v (want finite, >= 0)", what, sec))
	}
}

// SetTime records the measured latency of layer i under primitive p.
// It panics if sec is NaN, infinite or negative — the same invariant
// Load enforces.
func (t *Table) SetTime(i int, p primitives.ID, sec float64) {
	checkSet(fmt.Sprintf("SetTime(%d, %d)", i, p), sec)
	t.times[i*t.numPrims+int(p)] = sec
}

// Time returns the recorded latency of layer i under primitive p
// (+Inf if never measured).
func (t *Table) Time(i int, p primitives.ID) float64 {
	return t.times[i*t.numPrims+int(p)]
}

// findEdge locates an edge, reporting whether it exists.
func (t *Table) findEdge(from, to int) (int, bool) {
	for e, ed := range t.edges {
		if ed.From == from && ed.To == to {
			return e, true
		}
	}
	return 0, false
}

// edgeIndex locates an edge or panics — tables are always walked with
// edges obtained from Edges().
func (t *Table) edgeIndex(from, to int) int {
	if e, ok := t.findEdge(from, to); ok {
		return e
	}
	panic(fmt.Sprintf("lut: no edge %d->%d", from, to))
}

// isCandidate reports whether primitive id is in layer i's candidate
// set.
func (t *Table) isCandidate(i int, id primitives.ID) bool {
	for _, c := range t.candidates[i] {
		if c == id {
			return true
		}
	}
	return false
}

// SetPenalty records the compatibility cost of edge (from, to) under
// the primitive pair (fp, tp). It panics if sec is NaN, infinite or
// negative — the same invariant Load enforces.
func (t *Table) SetPenalty(from, to int, fp, tp primitives.ID, sec float64) {
	checkSet(fmt.Sprintf("SetPenalty(%d->%d, %d, %d)", from, to, fp, tp), sec)
	t.penalties[t.edgeIndex(from, to)][int(fp)*t.numPrims+int(tp)] = sec
}

// Penalty returns the compatibility cost of edge (from, to) under the
// primitive pair (fp, tp).
func (t *Table) Penalty(from, to int, fp, tp primitives.ID) float64 {
	return t.penalties[t.edgeIndex(from, to)][int(fp)*t.numPrims+int(tp)]
}

// penaltyByEdge avoids the edge lookup when the caller already walks
// Edges() by index.
func (t *Table) penaltyByEdge(e int, fp, tp primitives.ID) float64 {
	return t.penalties[e][int(fp)*t.numPrims+int(tp)]
}

// PenaltyByEdge returns the compatibility cost of edge index e (in
// Edges() order) under the primitive pair (fp, tp). It is the bulk
// accessor the search-plan compiler walks; unlike Penalty it never
// scans the edge list.
func (t *Table) PenaltyByEdge(e int, fp, tp primitives.ID) float64 {
	return t.penaltyByEdge(e, fp, tp)
}

// SetOutputPenalty records the host-return cost for the output layer
// under primitive p. It panics if sec is NaN, infinite or negative —
// the same invariant Load enforces.
func (t *Table) SetOutputPenalty(p primitives.ID, sec float64) {
	checkSet(fmt.Sprintf("SetOutputPenalty(%d)", p), sec)
	t.outputPen[int(p)] = sec
}

// DropCandidate removes primitive p from layer i's candidate set and
// reports whether it was present. This is the graceful-degradation
// hook: when a primitive persistently fails to profile on a layer, the
// profiling layer drops it so the search only ever sees measurable
// choices. The input pseudo-layer's candidate cannot be dropped.
// Like the Set* methods, DropCandidate may only be called while the
// table is being populated, never concurrently with reads.
func (t *Table) DropCandidate(i int, p primitives.ID) bool {
	if i == 0 {
		return false
	}
	for k, c := range t.candidates[i] {
		if c == p {
			t.candidates[i] = append(t.candidates[i][:k], t.candidates[i][k+1:]...)
			return true
		}
	}
	return false
}

// AddCandidate inserts primitive id into layer i's candidate set and
// reports whether it was added. This is the autotuner's hook: a tuned
// twin (see primitives.EnableTunedVariants) added here becomes one
// more action for every search — Q-learning, DP, PBQP — with no search
// code aware of tuning at all. The id must fit the table's primitive
// dimension, which means the table must have been constructed after
// EnableTunedVariants; ids past the table's dimension are refused (not
// panicked) so a stale cache can never corrupt a live table. The input
// pseudo-layer cannot gain candidates. Like the Set* methods,
// AddCandidate may only be called while the table is being populated.
func (t *Table) AddCandidate(i int, id primitives.ID) bool {
	if i <= 0 || i >= t.numLayers {
		return false
	}
	if int(id) < 0 || int(id) >= t.numPrims {
		return false
	}
	if t.isCandidate(i, id) {
		return false
	}
	t.candidates[i] = append(t.candidates[i], id)
	return true
}

// MirrorCandidate copies every penalty involving base at layer i to id:
// incoming-edge columns, outgoing-edge rows, and the output-return
// penalty when i is the output layer. A tuned twin shares its base's
// library, layout and processor, so every conversion cost is identical
// by construction — mirroring keeps the penalty matrices consistent
// without re-profiling any pair. Mirror layers in a fixed order after
// AddCandidate-ing each twin: a (twin, twin) pair on an edge is covered
// when the consumer layer mirrors, because the producer's twin is
// already in its candidate set by then.
func (t *Table) MirrorCandidate(i int, base, id primitives.ID) {
	if int(id) >= t.numPrims || int(base) >= t.numPrims {
		return
	}
	for _, e := range t.incoming[i] {
		for _, fp := range t.candidates[t.edges[e].From] {
			t.penalties[e][int(fp)*t.numPrims+int(id)] = t.penalties[e][int(fp)*t.numPrims+int(base)]
		}
	}
	for e, ed := range t.edges {
		if ed.From != i {
			continue
		}
		for _, tp := range t.candidates[ed.To] {
			t.penalties[e][int(id)*t.numPrims+int(tp)] = t.penalties[e][int(base)*t.numPrims+int(tp)]
		}
	}
	if i == t.output {
		t.outputPen[int(id)] = t.outputPen[int(base)]
	}
}

// OutputPenalty returns the host-return cost under primitive p.
func (t *Table) OutputPenalty(p primitives.ID) float64 {
	return t.outputPen[int(p)]
}

// LayerCost returns layer i's latency under primitive p plus every
// incoming-edge penalty given the already-chosen producer primitives
// in assignment — the quantity the paper uses as the (negated) shaped
// reward of the step that picks p for layer i.
func (t *Table) LayerCost(i int, p primitives.ID, assignment []primitives.ID) float64 {
	cost := t.Time(i, p)
	for _, e := range t.incoming[i] {
		cost += t.penaltyByEdge(e, assignment[t.edges[e].From], p)
	}
	if i == t.output {
		cost += t.OutputPenalty(p)
	}
	return cost
}

// TotalTime evaluates a complete assignment (one primitive ID per
// layer; index 0 must be the input pseudo-primitive): the sum of all
// layer times, all edge penalties and the output-return penalty.
func (t *Table) TotalTime(assignment []primitives.ID) float64 {
	if len(assignment) != t.numLayers {
		panic(fmt.Sprintf("lut: assignment has %d entries, want %d", len(assignment), t.numLayers))
	}
	var total float64
	for i := 1; i < t.numLayers; i++ {
		total += t.Time(i, assignment[i])
	}
	for e, ed := range t.edges {
		total += t.penaltyByEdge(e, assignment[ed.From], assignment[ed.To])
	}
	total += t.OutputPenalty(assignment[t.output])
	return total
}

// tableJSON is the serialization form: entries are emitted sparsely
// (finite values only) with primitive names, so tables survive
// registry reordering.
type tableJSON struct {
	Network string              `json:"network"`
	Mode    string              `json:"mode"`
	Layers  int                 `json:"layers"`
	Output  int                 `json:"output"`
	Cands   [][]string          `json:"candidates"`
	Times   []layerTimeJSON     `json:"times"`
	Edges   []edgePenaltiesJSON `json:"edges"`
	OutPen  []primTimeJSON      `json:"output_penalty"`
}

type layerTimeJSON struct {
	Layer int            `json:"layer"`
	Times []primTimeJSON `json:"times"`
}

type primTimeJSON struct {
	Prim string  `json:"prim"`
	Sec  float64 `json:"sec"`
}

type edgePenaltiesJSON struct {
	From  int            `json:"from"`
	To    int            `json:"to"`
	Pairs []pairTimeJSON `json:"pairs"`
}

type pairTimeJSON struct {
	FromPrim string  `json:"from_prim"`
	ToPrim   string  `json:"to_prim"`
	Sec      float64 `json:"sec"`
}

// MarshalJSON serializes the table (sparse, name-keyed).
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		Network: t.Network,
		Mode:    t.Mode.String(),
		Layers:  t.numLayers,
		Output:  t.output,
	}
	for i := 0; i < t.numLayers; i++ {
		var names []string
		for _, id := range t.candidates[i] {
			names = append(names, primitives.ByID(id).Name)
		}
		out.Cands = append(out.Cands, names)
		lt := layerTimeJSON{Layer: i}
		for _, id := range t.candidates[i] {
			if v := t.Time(i, id); !math.IsInf(v, 1) {
				lt.Times = append(lt.Times, primTimeJSON{Prim: primitives.ByID(id).Name, Sec: v})
			}
		}
		out.Times = append(out.Times, lt)
	}
	for e, ed := range t.edges {
		ep := edgePenaltiesJSON{From: ed.From, To: ed.To}
		for _, fp := range t.candidates[ed.From] {
			for _, tp := range t.candidates[ed.To] {
				if v := t.penaltyByEdge(e, fp, tp); !math.IsInf(v, 1) {
					ep.Pairs = append(ep.Pairs, pairTimeJSON{
						FromPrim: primitives.ByID(fp).Name,
						ToPrim:   primitives.ByID(tp).Name,
						Sec:      v,
					})
				}
			}
		}
		out.Edges = append(out.Edges, ep)
	}
	for _, id := range t.candidates[t.output] {
		if v := t.OutputPenalty(id); !math.IsInf(v, 1) {
			out.OutPen = append(out.OutPen, primTimeJSON{Prim: primitives.ByID(id).Name, Sec: v})
		}
	}
	return json.Marshal(out)
}

// Load deserializes a table previously produced by MarshalJSON for
// the given network (the network supplies the graph structure). Every
// entry is validated against the network's structure and the global
// registry — layer indices in range, edges that exist, primitives that
// are real candidates of their layer, and finite non-negative times —
// so corrupt or adversarial bytes yield an error, never a panic or a
// table a search would misprice.
func Load(data []byte, net *nn.Network) (*Table, error) {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("lut: %w", err)
	}
	if in.Network != net.Name {
		return nil, fmt.Errorf("lut: table is for %q, network is %q", in.Network, net.Name)
	}
	var mode primitives.Mode
	switch in.Mode {
	case primitives.ModeCPU.String():
		mode = primitives.ModeCPU
	case primitives.ModeGPGPU.String():
		mode = primitives.ModeGPGPU
	default:
		return nil, fmt.Errorf("lut: unknown mode %q", in.Mode)
	}
	t := New(net, mode)
	if t.numLayers != in.Layers {
		return nil, fmt.Errorf("lut: table has %d layers, network has %d", in.Layers, t.numLayers)
	}
	if t.output != in.Output {
		return nil, fmt.Errorf("lut: table output layer %d, network output %d", in.Output, t.output)
	}
	byName := func(name string) (primitives.ID, error) {
		p, ok := primitives.ByName(name)
		if !ok {
			return 0, fmt.Errorf("lut: unknown primitive %q", name)
		}
		return p.Idx, nil
	}
	checkSec := func(what string, sec float64) error {
		if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
			return fmt.Errorf("lut: %s has invalid time %v", what, sec)
		}
		return nil
	}
	// Reconcile candidate sets with the serialized ones before loading
	// entries: a table that was degraded (DropCandidate) at profiling
	// time round-trips with the same reduced sets, not the network's
	// full ones. Older tables without a candidates field load against
	// the full sets as before. Every serialized name must still be a
	// real candidate of its layer under this registry; the input
	// pseudo-layer's candidate is immutable.
	if in.Cands != nil {
		if len(in.Cands) != t.numLayers {
			return nil, fmt.Errorf("lut: table has %d candidate sets, network has %d layers", len(in.Cands), t.numLayers)
		}
		for i, names := range in.Cands {
			keep := map[primitives.ID]bool{}
			for _, name := range names {
				id, err := byName(name)
				if err != nil {
					return nil, err
				}
				if !t.isCandidate(i, id) {
					// A tuned twin (added by the autotuner via
					// AddCandidate) is acceptable exactly when its base
					// primitive is a real candidate of the layer; any
					// other unknown-to-the-layer name is a forgery.
					// Twins resolve by name only after
					// EnableTunedVariants, so the default path still
					// rejects tuned tables outright.
					p := primitives.ByID(id)
					if !p.Tuned || !t.isCandidate(i, p.Base) || !t.AddCandidate(i, id) {
						return nil, fmt.Errorf("lut: %q is not a candidate of layer %d", name, i)
					}
				}
				keep[id] = true
			}
			if i == 0 {
				continue
			}
			for _, id := range append([]primitives.ID(nil), t.candidates[i]...) {
				if !keep[id] {
					t.DropCandidate(i, id)
				}
			}
		}
	}
	for _, lt := range in.Times {
		if lt.Layer < 0 || lt.Layer >= t.numLayers {
			return nil, fmt.Errorf("lut: time entry for out-of-range layer %d", lt.Layer)
		}
		for _, pt := range lt.Times {
			id, err := byName(pt.Prim)
			if err != nil {
				return nil, err
			}
			if !t.isCandidate(lt.Layer, id) {
				return nil, fmt.Errorf("lut: %q is not a candidate of layer %d", pt.Prim, lt.Layer)
			}
			if err := checkSec(fmt.Sprintf("layer %d/%s", lt.Layer, pt.Prim), pt.Sec); err != nil {
				return nil, err
			}
			t.SetTime(lt.Layer, id, pt.Sec)
		}
	}
	for _, ep := range in.Edges {
		e, ok := t.findEdge(ep.From, ep.To)
		if !ok {
			return nil, fmt.Errorf("lut: penalty entry for nonexistent edge %d->%d", ep.From, ep.To)
		}
		for _, pr := range ep.Pairs {
			fp, err := byName(pr.FromPrim)
			if err != nil {
				return nil, err
			}
			tp, err := byName(pr.ToPrim)
			if err != nil {
				return nil, err
			}
			if !t.isCandidate(ep.From, fp) || !t.isCandidate(ep.To, tp) {
				return nil, fmt.Errorf("lut: edge %d->%d pair (%s, %s) is not a candidate pair",
					ep.From, ep.To, pr.FromPrim, pr.ToPrim)
			}
			if err := checkSec(fmt.Sprintf("edge %d->%d", ep.From, ep.To), pr.Sec); err != nil {
				return nil, err
			}
			t.penalties[e][int(fp)*t.numPrims+int(tp)] = pr.Sec
		}
	}
	for _, pt := range in.OutPen {
		id, err := byName(pt.Prim)
		if err != nil {
			return nil, err
		}
		if !t.isCandidate(t.output, id) {
			return nil, fmt.Errorf("lut: output penalty for non-candidate %q", pt.Prim)
		}
		if err := checkSec(fmt.Sprintf("output penalty %s", pt.Prim), pt.Sec); err != nil {
			return nil, err
		}
		t.SetOutputPenalty(id, pt.Sec)
	}
	return t, nil
}

// Stats summarizes a profiled table: how many (layer, primitive)
// latencies were measured, how many compatibility pairs were profiled
// (the paper's Fig. 3 pass) and how many of those actually need a
// conversion or transfer.
type Stats struct {
	// Layers is the searchable layer count.
	Layers int
	// TimeEntries is the number of measured (layer, primitive) cells.
	TimeEntries int
	// PenaltyPairs is the number of profiled compatibility pairs.
	PenaltyPairs int
	// NonzeroPenalties counts pairs that need a compatibility layer.
	NonzeroPenalties int
}

// ComputeStats scans the table.
func (t *Table) ComputeStats() Stats {
	s := Stats{Layers: t.numLayers - 1}
	for i := 1; i < t.numLayers; i++ {
		for _, p := range t.candidates[i] {
			if !math.IsInf(t.Time(i, p), 1) {
				s.TimeEntries++
			}
		}
	}
	for e, ed := range t.edges {
		for _, fp := range t.candidates[ed.From] {
			for _, tp := range t.candidates[ed.To] {
				v := t.penaltyByEdge(e, fp, tp)
				if math.IsInf(v, 1) {
					continue
				}
				s.PenaltyPairs++
				if v > 0 {
					s.NonzeroPenalties++
				}
			}
		}
	}
	return s
}
