package models

import (
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestRegistry(t *testing.T) {
	names := All()
	if len(names) != 13 {
		t.Fatalf("zoo has %d models, want 13: %v", len(names), names)
	}
	for _, name := range names {
		n, err := Build(name)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n.Name != name {
			t.Errorf("Build(%q).Name = %q", name, n.Name)
		}
	}
	if _, err := Build("nope"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model error = %v", err)
	}
}

func TestMustBuildPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on unknown model")
		}
	}()
	MustBuild("definitely-not-a-model")
}

func TestTableIINetworksAllExist(t *testing.T) {
	for _, name := range TableIINetworks() {
		if _, err := Build(name); err != nil {
			t.Errorf("Table II network %q: %v", name, err)
		}
	}
	if len(TableIINetworks()) != 10 {
		t.Errorf("Table II has %d networks", len(TableIINetworks()))
	}
}

// Published parameter counts (approximate — grouped convolutions are
// modeled as dense, biases always included), used as sanity ranges.
func TestParameterCounts(t *testing.T) {
	tests := []struct {
		name     string
		min, max int64 // millions of parameters
	}{
		{"lenet5", 0, 1},       // ~0.43M
		{"alexnet", 58, 66},    // ~61M (ours dense: ~62.4M)
		{"vgg16", 130, 145},    // ~138M
		{"vgg19", 138, 150},    // ~144M
		{"googlenet", 5, 9},    // ~7M
		{"resnet50", 23, 28},   // ~25.6M
		{"mobilenet-v1", 3, 6}, // ~4.2M
		{"squeezenet", 1, 2},   // ~1.2M
		{"facenet20", 20, 35},  // SphereFace-20 ~28M
		{"tinyyolo", 10, 18},   // ~15.8M
	}
	for _, tc := range tests {
		n := MustBuild(tc.name)
		gotM := n.TotalWeights() / 1_000_000
		if gotM < tc.min || gotM > tc.max {
			t.Errorf("%s: %dM params, want in [%d, %d]M (exact %d)",
				tc.name, gotM, tc.min, tc.max, n.TotalWeights())
		}
	}
}

// Published MAC counts give FLOP ranges (FLOPs ~ 2*MACs).
func TestFLOPCounts(t *testing.T) {
	tests := []struct {
		name     string
		min, max int64 // GFLOPs
	}{
		{"alexnet", 1, 3},      // ~1.4 GFLOPs dense
		{"vgg16", 28, 33},      // ~31 GFLOPs
		{"vgg19", 35, 42},      // ~39 GFLOPs
		{"googlenet", 2, 4},    // ~3 GFLOPs
		{"resnet50", 7, 9},     // ~7.7 GFLOPs
		{"mobilenet-v1", 1, 2}, // ~1.1 GFLOPs
		{"tinyyolo", 5, 9},     // ~6.3 GFLOPs (12x12 head)
	}
	for _, tc := range tests {
		n := MustBuild(tc.name)
		gotG := n.TotalFLOPs() / 1_000_000_000
		if gotG < tc.min || gotG > tc.max {
			t.Errorf("%s: %d GFLOPs, want in [%d, %d] (exact %d)",
				tc.name, gotG, tc.min, tc.max, n.TotalFLOPs())
		}
	}
}

func TestLeNet5Structure(t *testing.T) {
	n := LeNet5()
	if !n.IsChain() {
		t.Error("LeNet-5 should be a chain")
	}
	conv2 := n.Layers[n.LayerIndex("conv2")]
	if !conv2.OutShape.Equal(tensor.Shape{N: 1, C: 50, H: 10, W: 10}) {
		t.Errorf("conv2 shape = %v", conv2.OutShape)
	}
	ip1 := n.Layers[n.LayerIndex("ip1")]
	if ip1.InShape.C != 50*5*5 {
		t.Errorf("ip1 input width = %d, want 1250", ip1.InShape.C)
	}
}

func TestAlexNetStructure(t *testing.T) {
	n := AlexNet()
	conv1 := n.Layers[n.LayerIndex("conv1")]
	if !conv1.OutShape.Equal(tensor.Shape{N: 1, C: 96, H: 55, W: 55}) {
		t.Errorf("conv1 shape = %v", conv1.OutShape)
	}
	fc6 := n.Layers[n.LayerIndex("fc6")]
	if fc6.InShape.C != 9216 {
		t.Errorf("fc6 input = %d, want 9216", fc6.InShape.C)
	}
	// cuDNN-relevant: AlexNet has 3 FC layers.
	fcCount := 0
	for _, l := range n.Layers {
		if l.Kind == nn.OpFullyConnected {
			fcCount++
		}
	}
	if fcCount != 3 {
		t.Errorf("fc count = %d, want 3", fcCount)
	}
}

func TestVGGStructure(t *testing.T) {
	for _, tc := range []struct {
		net   *nn.Network
		convs int
	}{
		{VGG16(), 13},
		{VGG19(), 16},
	} {
		convs := 0
		for _, l := range tc.net.Layers {
			if l.Kind == nn.OpConv {
				convs++
			}
		}
		if convs != tc.convs {
			t.Errorf("%s conv count = %d, want %d", tc.net.Name, convs, tc.convs)
		}
		last := tc.net.Layers[tc.net.LayerIndex("pool5")]
		if !last.OutShape.Equal(tensor.Shape{N: 1, C: 512, H: 7, W: 7}) {
			t.Errorf("%s pool5 shape = %v", tc.net.Name, last.OutShape)
		}
	}
}

func TestGoogleNetStructure(t *testing.T) {
	n := GoogleNet()
	concats := 0
	for _, l := range n.Layers {
		if l.Kind == nn.OpConcat {
			concats++
		}
	}
	if concats != 9 {
		t.Errorf("inception modules = %d, want 9", concats)
	}
	out := n.Layers[n.LayerIndex("inception_5b/output")]
	if out.OutShape.C != 1024 {
		t.Errorf("inception_5b channels = %d, want 1024", out.OutShape.C)
	}
	if n.IsChain() {
		t.Error("GoogleNet should not be a chain")
	}
}

func TestResNet50Structure(t *testing.T) {
	n := ResNet50()
	adds, convs := 0, 0
	for _, l := range n.Layers {
		switch l.Kind {
		case nn.OpEltwiseAdd:
			adds++
		case nn.OpConv:
			convs++
		}
	}
	if adds != 16 {
		t.Errorf("shortcut adds = %d, want 16", adds)
	}
	if convs != 53 { // 1 stem + 16*3 + 4 projections
		t.Errorf("convs = %d, want 53", convs)
	}
	pool := n.Layers[n.LayerIndex("pool5")]
	if pool.InShape.C != 2048 || pool.InShape.H != 7 {
		t.Errorf("pool5 input = %v", pool.InShape)
	}
}

func TestMobileNetStructure(t *testing.T) {
	n := MobileNetV1()
	dw := 0
	for _, l := range n.Layers {
		if l.Kind == nn.OpDepthwiseConv {
			dw++
		}
	}
	if dw != 13 {
		t.Errorf("depthwise convs = %d, want 13", dw)
	}
	if !n.IsChain() {
		t.Error("MobileNet-v1 should be a chain")
	}
	last := n.Layers[n.LayerIndex("conv14_pw/relu")]
	if !last.OutShape.Equal(tensor.Shape{N: 1, C: 1024, H: 7, W: 7}) {
		t.Errorf("final block shape = %v", last.OutShape)
	}
}

func TestSqueezeNetStructure(t *testing.T) {
	n := SqueezeNet()
	concats := 0
	for _, l := range n.Layers {
		if l.Kind == nn.OpConcat {
			concats++
		}
	}
	if concats != 8 {
		t.Errorf("fire modules = %d, want 8", concats)
	}
	f9 := n.Layers[n.LayerIndex("fire9/concat")]
	if f9.OutShape.C != 512 {
		t.Errorf("fire9 channels = %d, want 512", f9.OutShape.C)
	}
}

func TestFaceNet20Structure(t *testing.T) {
	n := FaceNet20()
	convs := 0
	for _, l := range n.Layers {
		if l.Kind == nn.OpConv {
			convs++
		}
	}
	// 4 downsample convs + (1+2+4+1)*2 residual convs = 20 weight convs.
	if convs != 20 {
		t.Errorf("convs = %d, want 20", convs)
	}
	fc := n.Layers[n.LayerIndex("fc5")]
	if fc.OutShape.C != 512 {
		t.Errorf("embedding = %d, want 512", fc.OutShape.C)
	}
	// 112x96 downsampled 4x by stride 2 = 7x6.
	if fc.InShape.C != 512*7*6 {
		t.Errorf("fc5 input = %d, want %d", fc.InShape.C, 512*7*6)
	}
}

func TestResNet18Structure(t *testing.T) {
	n := ResNet18()
	adds, convs := 0, 0
	for _, l := range n.Layers {
		switch l.Kind {
		case nn.OpEltwiseAdd:
			adds++
		case nn.OpConv:
			convs++
		}
	}
	if adds != 8 {
		t.Errorf("shortcut adds = %d, want 8", adds)
	}
	if convs != 20 { // 1 stem + 8*2 + 3 projections
		t.Errorf("convs = %d, want 20", convs)
	}
	// ~11.7M params, ~3.6 GFLOPs.
	if m := n.TotalWeights() / 1_000_000; m < 10 || m > 13 {
		t.Errorf("params = %dM, want ~11.7M", m)
	}
	if g := n.TotalFLOPs() / 1_000_000_000; g < 3 || g > 5 {
		t.Errorf("FLOPs = %dG, want ~3.6G", g)
	}
}

func TestMobileNetWidths(t *testing.T) {
	full := MustBuild("mobilenet-v1")
	half := MustBuild("mobilenet-v1-050")
	quarter := MustBuild("mobilenet-v1-025")
	if !(quarter.TotalFLOPs() < half.TotalFLOPs() && half.TotalFLOPs() < full.TotalFLOPs()) {
		t.Errorf("width multipliers should shrink FLOPs: %d / %d / %d",
			quarter.TotalFLOPs(), half.TotalFLOPs(), full.TotalFLOPs())
	}
	// Same depth, thinner layers.
	if half.Len() != full.Len() {
		t.Errorf("half-width layer count %d != full %d", half.Len(), full.Len())
	}
	// Width 0.5: stem 16 channels.
	stem := half.Layers[half.LayerIndex("conv1")]
	if stem.OutShape.C != 16 {
		t.Errorf("half-width stem channels = %d, want 16", stem.OutShape.C)
	}
	// Channel floor of 8 holds for the thinnest variant.
	qstem := quarter.Layers[quarter.LayerIndex("conv1")]
	if qstem.OutShape.C != 8 {
		t.Errorf("quarter-width stem channels = %d, want 8 (floor)", qstem.OutShape.C)
	}
}

func TestTinyYOLOStructure(t *testing.T) {
	n := TinyYOLO()
	if !n.IsChain() {
		t.Error("TinyYOLO should be a chain")
	}
	det := n.Layers[n.LayerIndex("detect")]
	if det.OutShape.C != 125 {
		t.Errorf("detect channels = %d, want 125", det.OutShape.C)
	}
	if det.OutShape.H != 12 || det.OutShape.W != 12 {
		t.Errorf("detect spatial = %dx%d", det.OutShape.H, det.OutShape.W)
	}
}
