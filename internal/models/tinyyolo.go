package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TinyYOLO builds a Tiny-YOLO-style single-shot object detector on
// 416x416 RGB input: seven 3x3 conv+pool stages doubling the width
// from 16 to 1024, a 3x3 trunk convolution and a 1x1 detection head
// producing 125 channels (5 anchors x (5 box terms + 20 VOC classes)).
// It is the paper's object-detection workload and, being a pure chain
// of large convolutions, also serves as the DP-certifiable big net in
// the test suite.
func TinyYOLO() *nn.Network {
	b := nn.NewBuilder("tinyyolo", tensor.Shape{N: 1, C: 3, H: 416, W: 416})
	x := b.Input()
	widths := []int{16, 32, 64, 128, 256, 512}
	for i, w := range widths {
		x = b.Conv(fmt.Sprintf("conv%d", i+1), x, w, 3, 1, 1)
		x = b.BatchNorm(fmt.Sprintf("bn%d", i+1), x)
		x = b.ReLU(fmt.Sprintf("relu%d", i+1), x)
		stride := 2
		if i == len(widths)-1 {
			stride = 1 // final pool keeps 13x13 resolution
		}
		x = b.Pool(fmt.Sprintf("pool%d", i+1), x, nn.MaxPool, 2, stride, 0)
	}
	x = b.Conv("conv7", x, 1024, 3, 1, 1)
	x = b.BatchNorm("bn7", x)
	x = b.ReLU("relu7", x)
	x = b.Conv("conv8", x, 1024, 3, 1, 1)
	x = b.BatchNorm("bn8", x)
	x = b.ReLU("relu8", x)
	b.Conv("detect", x, 125, 1, 1, 0)
	return b.MustBuild()
}
