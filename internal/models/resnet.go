package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// bottleneck appends one ResNet bottleneck block (1x1 reduce, 3x3,
// 1x1 expand) with identity or projection shortcut, returning the
// handle of the block's output ReLU.
func bottleneck(b *nn.Builder, name string, in, mid, out, stride int, project bool) int {
	x := b.Conv(name+"/conv1", in, mid, 1, stride, 0)
	x = b.BatchNorm(name+"/bn1", x)
	x = b.ReLU(name+"/relu1", x)
	x = b.Conv(name+"/conv2", x, mid, 3, 1, 1)
	x = b.BatchNorm(name+"/bn2", x)
	x = b.ReLU(name+"/relu2", x)
	x = b.Conv(name+"/conv3", x, out, 1, 1, 0)
	x = b.BatchNorm(name+"/bn3", x)

	shortcut := in
	if project {
		shortcut = b.Conv(name+"/proj", in, out, 1, stride, 0)
		shortcut = b.BatchNorm(name+"/proj_bn", shortcut)
	}
	x = b.EltwiseAdd(name+"/add", x, shortcut)
	return b.ReLU(name+"/relu", x)
}

// ResNet50 builds ResNet-50 (He et al., 2016) on 224x224 RGB input:
// a 7x7 stem and four stages of [3,4,6,3] bottleneck blocks with
// identity shortcuts. The element-wise additions make its graph
// branchy, exercising the search's branch-penalty handling.
func ResNet50() *nn.Network {
	b := nn.NewBuilder("resnet50", tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	x := b.Conv("conv1", b.Input(), 64, 7, 2, 3)
	x = b.BatchNorm("bn1", x)
	x = b.ReLU("relu1", x)
	x = b.Pool("pool1", x, nn.MaxPool, 3, 2, 1)

	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			name := fmt.Sprintf("res%d_%d", si+2, bi)
			stride, project := 1, false
			if bi == 0 {
				stride, project = st.stride, true
			}
			x = bottleneck(b, name, x, st.mid, st.out, stride, project)
		}
	}
	x = b.GlobalPool("pool5", x, nn.AvgPool)
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("fc1000", x, 1000)
	b.Softmax("prob", x)
	return b.MustBuild()
}
