package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// basicBlock appends a ResNet basic block (two 3x3 convolutions) with
// identity or projection shortcut.
func basicBlock(b *nn.Builder, name string, in, out, stride int, project bool) int {
	x := b.Conv(name+"/conv1", in, out, 3, stride, 1)
	x = b.BatchNorm(name+"/bn1", x)
	x = b.ReLU(name+"/relu1", x)
	x = b.Conv(name+"/conv2", x, out, 3, 1, 1)
	x = b.BatchNorm(name+"/bn2", x)

	shortcut := in
	if project {
		shortcut = b.Conv(name+"/proj", in, out, 1, stride, 0)
		shortcut = b.BatchNorm(name+"/proj_bn", shortcut)
	}
	x = b.EltwiseAdd(name+"/add", x, shortcut)
	return b.ReLU(name+"/relu", x)
}

// ResNet18 builds ResNet-18 (He et al., 2016) on 224x224 RGB input:
// the basic-block variant with [2,2,2,2] blocks per stage. Every 3x3
// convolution is stride-1 inside the blocks, so Winograd primitives
// apply almost everywhere — a different search landscape than the
// bottleneck ResNet-50.
func ResNet18() *nn.Network {
	b := nn.NewBuilder("resnet18", tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	x := b.Conv("conv1", b.Input(), 64, 7, 2, 3)
	x = b.BatchNorm("bn1", x)
	x = b.ReLU("relu1", x)
	x = b.Pool("pool1", x, nn.MaxPool, 3, 2, 1)

	stages := []struct {
		out, stride int
	}{
		{64, 1}, {128, 2}, {256, 2}, {512, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < 2; bi++ {
			name := fmt.Sprintf("res%d_%d", si+2, bi)
			stride, project := 1, false
			if bi == 0 && st.stride != 1 {
				stride, project = st.stride, true
			}
			x = basicBlock(b, name, x, st.out, stride, project)
		}
	}
	x = b.GlobalPool("pool5", x, nn.AvgPool)
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("fc1000", x, 1000)
	b.Softmax("prob", x)
	return b.MustBuild()
}
