// Package models is the architecture zoo: builders for the networks
// the paper evaluates (image classification, face recognition and
// object detection). Only layer geometry matters for the latency
// experiments — weights are synthetic and seeded — so each builder
// reproduces the published architecture's shapes.
package models

import (
	"fmt"
	"sort"

	"repro/internal/nn"
)

// builders maps a canonical model name to its builder.
var builders = map[string]func() *nn.Network{
	"lenet5":           LeNet5,
	"alexnet":          AlexNet,
	"vgg16":            VGG16,
	"vgg19":            VGG19,
	"googlenet":        GoogleNet,
	"resnet18":         ResNet18,
	"resnet50":         ResNet50,
	"mobilenet-v1":     MobileNetV1,
	"mobilenet-v1-050": func() *nn.Network { return MobileNetV1Width("mobilenet-v1-050", 0.5) },
	"mobilenet-v1-025": func() *nn.Network { return MobileNetV1Width("mobilenet-v1-025", 0.25) },
	"squeezenet":       SqueezeNet,
	"facenet20":        FaceNet20,
	"tinyyolo":         TinyYOLO,
}

// All returns the sorted canonical names of every model in the zoo.
func All() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs the named model or returns an error listing the
// available names.
func Build(name string) (*nn.Network, error) {
	if f, ok := builders[name]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("models: unknown model %q (available: %v)", name, All())
}

// MustBuild is Build but panics on an unknown name.
func MustBuild(name string) *nn.Network {
	n, err := Build(name)
	if err != nil {
		panic(err)
	}
	return n
}

// TableIINetworks lists the networks, in presentation order, used to
// regenerate the paper's Table II: classification (LeNet-5 through
// SqueezeNet), face recognition (FaceNet20) and detection (TinyYOLO).
func TableIINetworks() []string {
	return []string{
		"lenet5", "alexnet", "vgg16", "vgg19", "googlenet",
		"resnet50", "mobilenet-v1", "squeezenet", "facenet20", "tinyyolo",
	}
}
