package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MobileNetV1 builds MobileNet-v1 (Howard et al., 2017), width 1.0, on
// 224x224 RGB input: a strided stem convolution followed by 13
// depth-wise-separable blocks (depth-wise 3x3 + point-wise 1x1, each
// with batch-norm and ReLU). The alternation of depth-wise and
// point-wise layers is exactly the case where the paper reports QS-DNN
// learning to combine ArmCL's depth-wise code, cuDNN convolutions and
// Vanilla ReLU/B-Norm to avoid extra GPU copies (>1.4x over BSL).
func MobileNetV1() *nn.Network { return MobileNetV1Width("mobilenet-v1", 1.0) }

// MobileNetV1Width builds MobileNet-v1 with a width multiplier (the
// paper speaks of "MobileNets" in the plural — the family's thinner
// variants trade accuracy for latency and shift the CPU/GPU balance,
// since smaller layers amortize transfers and launches worse).
func MobileNetV1Width(name string, alpha float64) *nn.Network {
	scale := func(ch int) int {
		s := int(float64(ch) * alpha)
		if s < 8 {
			s = 8
		}
		return s
	}
	b := nn.NewBuilder(name, tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	x := b.Conv("conv1", b.Input(), scale(32), 3, 2, 1)
	x = b.BatchNorm("conv1/bn", x)
	x = b.ReLU("conv1/relu", x)

	// Each entry is the point-wise output width and the depth-wise stride.
	blocks := []struct {
		out, stride int
	}{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, blk := range blocks {
		dw := fmt.Sprintf("conv%d_dw", i+2)
		pw := fmt.Sprintf("conv%d_pw", i+2)
		x = b.DepthwiseConv(dw, x, 3, blk.stride, 1)
		x = b.BatchNorm(dw+"/bn", x)
		x = b.ReLU(dw+"/relu", x)
		x = b.Conv(pw, x, scale(blk.out), 1, 1, 0)
		x = b.BatchNorm(pw+"/bn", x)
		x = b.ReLU(pw+"/relu", x)
	}
	x = b.GlobalPool("pool6", x, nn.AvgPool)
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("fc7", x, 1000)
	b.Softmax("prob", x)
	return b.MustBuild()
}
