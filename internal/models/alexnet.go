package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// AlexNet builds AlexNet (Krizhevsky et al., 2012) on 227x227 RGB
// input, including the original two-group conv2/conv4/conv5 (a
// two-GPU training artifact the deployed model keeps). The heavy
// FC6-8 stack is
// what lets QS-DNN beat cuDNN on this network, since cuDNN provides no
// fully-connected primitive.
func AlexNet() *nn.Network {
	b := nn.NewBuilder("alexnet", tensor.Shape{N: 1, C: 3, H: 227, W: 227})
	x := b.Conv("conv1", b.Input(), 96, 11, 4, 0)
	x = b.ReLU("relu1", x)
	x = b.LRN("norm1", x, 5)
	x = b.Pool("pool1", x, nn.MaxPool, 3, 2, 0)
	x = b.Conv2D("conv2", x, nn.ConvParams{OutChannels: 256, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, Groups: 2})
	x = b.ReLU("relu2", x)
	x = b.LRN("norm2", x, 5)
	x = b.Pool("pool2", x, nn.MaxPool, 3, 2, 0)
	x = b.Conv("conv3", x, 384, 3, 1, 1)
	x = b.ReLU("relu3", x)
	x = b.Conv2D("conv4", x, nn.ConvParams{OutChannels: 384, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2})
	x = b.ReLU("relu4", x)
	x = b.Conv2D("conv5", x, nn.ConvParams{OutChannels: 256, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2})
	x = b.ReLU("relu5", x)
	x = b.Pool("pool5", x, nn.MaxPool, 3, 2, 0)
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("fc6", x, 4096)
	x = b.ReLU("relu6", x)
	x = b.Dropout("drop6", x)
	x = b.FullyConnected("fc7", x, 4096)
	x = b.ReLU("relu7", x)
	x = b.Dropout("drop7", x)
	x = b.FullyConnected("fc8", x, 1000)
	b.Softmax("prob", x)
	return b.MustBuild()
}
