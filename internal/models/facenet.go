package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// residualUnit appends a SphereFace-style residual unit: two 3x3
// convolutions of width ch with an identity shortcut.
func residualUnit(b *nn.Builder, name string, in, ch int) int {
	x := b.Conv(name+"/conv1", in, ch, 3, 1, 1)
	x = b.ReLU(name+"/relu1", x)
	x = b.Conv(name+"/conv2", x, ch, 3, 1, 1)
	x = b.ReLU(name+"/relu2", x)
	return b.EltwiseAdd(name+"/add", x, in)
}

// FaceNet20 builds a 20-layer SphereFace-style face-recognition CNN on
// 112x96 RGB crops: four strided stages of widths 64/128/256/512 with
// 1/2/4/1 residual units, ending in a 512-d embedding FC layer. It is
// the paper's face-recognition workload.
func FaceNet20() *nn.Network {
	b := nn.NewBuilder("facenet20", tensor.Shape{N: 1, C: 3, H: 112, W: 96})
	stages := []struct {
		ch, units int
	}{
		{64, 1}, {128, 2}, {256, 4}, {512, 1},
	}
	x := b.Input()
	for si, st := range stages {
		x = b.Conv(fmt.Sprintf("stage%d/down", si+1), x, st.ch, 3, 2, 1)
		x = b.ReLU(fmt.Sprintf("stage%d/down_relu", si+1), x)
		for u := 0; u < st.units; u++ {
			x = residualUnit(b, fmt.Sprintf("stage%d/res%d", si+1, u+1), x, st.ch)
		}
	}
	x = b.Flatten("flatten", x)
	b.FullyConnected("fc5", x, 512)
	return b.MustBuild()
}
