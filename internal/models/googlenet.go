package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// inceptionCfg holds the branch widths of one Inception module:
// the 1x1 branch, the 1x1->3x3 reduce/expand pair, the 1x1->5x5
// reduce/expand pair and the pool-projection 1x1.
type inceptionCfg struct {
	c1, r3, c3, r5, c5, pp int
}

// inception appends one Inception module and returns the concat handle.
func inception(b *nn.Builder, name string, in int, cfg inceptionCfg) int {
	b1 := b.Conv(name+"/1x1", in, cfg.c1, 1, 1, 0)
	b1 = b.ReLU(name+"/relu_1x1", b1)

	b2 := b.Conv(name+"/3x3_reduce", in, cfg.r3, 1, 1, 0)
	b2 = b.ReLU(name+"/relu_3x3_reduce", b2)
	b2 = b.Conv(name+"/3x3", b2, cfg.c3, 3, 1, 1)
	b2 = b.ReLU(name+"/relu_3x3", b2)

	b3 := b.Conv(name+"/5x5_reduce", in, cfg.r5, 1, 1, 0)
	b3 = b.ReLU(name+"/relu_5x5_reduce", b3)
	b3 = b.Conv(name+"/5x5", b3, cfg.c5, 5, 1, 2)
	b3 = b.ReLU(name+"/relu_5x5", b3)

	b4 := b.Pool(name+"/pool", in, nn.MaxPool, 3, 1, 1)
	b4 = b.Conv(name+"/pool_proj", b4, cfg.pp, 1, 1, 0)
	b4 = b.ReLU(name+"/relu_pool_proj", b4)

	return b.Concat(name+"/output", b1, b2, b3, b4)
}

// GoogleNet builds GoogLeNet / Inception-v1 (Szegedy et al., 2015) on
// 224x224 RGB input: the stem, nine Inception modules and the global
// average-pool classifier (auxiliary training heads omitted, as in
// inference deployments). Its 9-branch-module structure gives the
// largest design space in Table II, where the paper reports RL beating
// Random Search by up to 15x.
func GoogleNet() *nn.Network {
	b := nn.NewBuilder("googlenet", tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	x := b.Conv("conv1/7x7_s2", b.Input(), 64, 7, 2, 3)
	x = b.ReLU("conv1/relu_7x7", x)
	x = b.Pool("pool1/3x3_s2", x, nn.MaxPool, 3, 2, 0)
	x = b.LRN("pool1/norm1", x, 5)
	x = b.Conv("conv2/3x3_reduce", x, 64, 1, 1, 0)
	x = b.ReLU("conv2/relu_3x3_reduce", x)
	x = b.Conv("conv2/3x3", x, 192, 3, 1, 1)
	x = b.ReLU("conv2/relu_3x3", x)
	x = b.LRN("conv2/norm2", x, 5)
	x = b.Pool("pool2/3x3_s2", x, nn.MaxPool, 3, 2, 0)

	cfgs := []struct {
		name string
		cfg  inceptionCfg
	}{
		{"inception_3a", inceptionCfg{64, 96, 128, 16, 32, 32}},
		{"inception_3b", inceptionCfg{128, 128, 192, 32, 96, 64}},
		{"pool", inceptionCfg{}},
		{"inception_4a", inceptionCfg{192, 96, 208, 16, 48, 64}},
		{"inception_4b", inceptionCfg{160, 112, 224, 24, 64, 64}},
		{"inception_4c", inceptionCfg{128, 128, 256, 24, 64, 64}},
		{"inception_4d", inceptionCfg{112, 144, 288, 32, 64, 64}},
		{"inception_4e", inceptionCfg{256, 160, 320, 32, 128, 128}},
		{"pool", inceptionCfg{}},
		{"inception_5a", inceptionCfg{256, 160, 320, 32, 128, 128}},
		{"inception_5b", inceptionCfg{384, 192, 384, 48, 128, 128}},
	}
	poolCount := 2
	for _, c := range cfgs {
		if c.name == "pool" {
			poolCount++
			x = b.Pool(fmt.Sprintf("pool%d/3x3_s2", poolCount), x, nn.MaxPool, 3, 2, 0)
			continue
		}
		x = inception(b, c.name, x, c.cfg)
	}
	x = b.GlobalPool("pool5/7x7_s1", x, nn.AvgPool)
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("loss3/classifier", x, 1000)
	b.Softmax("prob", x)
	return b.MustBuild()
}
