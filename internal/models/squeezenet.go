package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// fire appends a SqueezeNet Fire module: a 1x1 squeeze followed by
// parallel 1x1 and 3x3 expands whose outputs are concatenated.
func fire(b *nn.Builder, name string, in, squeeze, e1, e3 int) int {
	s := b.Conv(name+"/squeeze1x1", in, squeeze, 1, 1, 0)
	s = b.ReLU(name+"/relu_squeeze", s)
	x1 := b.Conv(name+"/expand1x1", s, e1, 1, 1, 0)
	x1 = b.ReLU(name+"/relu_expand1x1", x1)
	x3 := b.Conv(name+"/expand3x3", s, e3, 3, 1, 1)
	x3 = b.ReLU(name+"/relu_expand3x3", x3)
	return b.Concat(name+"/concat", x1, x3)
}

// SqueezeNet builds SqueezeNet v1.0 (Iandola et al., 2016) on 224x224
// RGB input: a 7x7 stem, eight Fire modules and a fully-convolutional
// classifier ending in global average pooling.
func SqueezeNet() *nn.Network {
	b := nn.NewBuilder("squeezenet", tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	x := b.Conv("conv1", b.Input(), 96, 7, 2, 0)
	x = b.ReLU("relu_conv1", x)
	x = b.Pool("pool1", x, nn.MaxPool, 3, 2, 0)
	x = fire(b, "fire2", x, 16, 64, 64)
	x = fire(b, "fire3", x, 16, 64, 64)
	x = fire(b, "fire4", x, 32, 128, 128)
	x = b.Pool("pool4", x, nn.MaxPool, 3, 2, 0)
	x = fire(b, "fire5", x, 32, 128, 128)
	x = fire(b, "fire6", x, 48, 192, 192)
	x = fire(b, "fire7", x, 48, 192, 192)
	x = fire(b, "fire8", x, 64, 256, 256)
	x = b.Pool("pool8", x, nn.MaxPool, 3, 2, 0)
	x = fire(b, "fire9", x, 64, 256, 256)
	x = b.Conv("conv10", x, 1000, 1, 1, 0)
	x = b.ReLU("relu_conv10", x)
	x = b.GlobalPool("pool10", x, nn.AvgPool)
	b.Softmax("prob", x)
	return b.MustBuild()
}
