package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LeNet5 builds the Caffe variant of LeNet-5 on 32x32 grayscale input:
// two conv+pool stages followed by two fully-connected layers. It is
// the smallest network in the paper's Table II; its best "GPGPU"
// implementation turns out to be pure CPU because the CPU<->GPU copies
// outweigh the GPU's per-layer gains.
func LeNet5() *nn.Network {
	b := nn.NewBuilder("lenet5", tensor.Shape{N: 1, C: 1, H: 32, W: 32})
	x := b.Conv("conv1", b.Input(), 20, 5, 1, 0)
	x = b.Pool("pool1", x, nn.MaxPool, 2, 2, 0)
	x = b.Conv("conv2", x, 50, 5, 1, 0)
	x = b.Pool("pool2", x, nn.MaxPool, 2, 2, 0)
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("ip1", x, 500)
	x = b.ReLU("relu1", x)
	x = b.FullyConnected("ip2", x, 10)
	b.Softmax("prob", x)
	return b.MustBuild()
}
