package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// vgg builds a VGG-style network from a per-stage conv count. All
// convolutions are 3x3 stride 1 pad 1; each stage ends with a 2x2 max
// pool; the classifier is the standard FC-4096/4096/1000 stack.
func vgg(name string, convsPerStage []int) *nn.Network {
	channels := []int{64, 128, 256, 512, 512}
	b := nn.NewBuilder(name, tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	x := b.Input()
	for stage, nConv := range convsPerStage {
		for i := 0; i < nConv; i++ {
			id := fmt.Sprintf("conv%d_%d", stage+1, i+1)
			x = b.Conv(id, x, channels[stage], 3, 1, 1)
			x = b.ReLU("relu"+id[4:], x)
		}
		x = b.Pool(fmt.Sprintf("pool%d", stage+1), x, nn.MaxPool, 2, 2, 0)
	}
	x = b.Flatten("flatten", x)
	x = b.FullyConnected("fc6", x, 4096)
	x = b.ReLU("relu6", x)
	x = b.Dropout("drop6", x)
	x = b.FullyConnected("fc7", x, 4096)
	x = b.ReLU("relu7", x)
	x = b.Dropout("drop7", x)
	x = b.FullyConnected("fc8", x, 1000)
	b.Softmax("prob", x)
	return b.MustBuild()
}

// VGG16 builds the 16-weight-layer VGG configuration D (Simonyan &
// Zisserman, 2014) on 224x224 RGB input.
func VGG16() *nn.Network { return vgg("vgg16", []int{2, 2, 3, 3, 3}) }

// VGG19 builds the 19-weight-layer VGG configuration E. With 19 weight
// layers and a 25088x4096 FC6, it has both the largest design space and
// the FC bottleneck that makes QS-DNN's GPGPU result beat cuDNN.
func VGG19() *nn.Network { return vgg("vgg19", []int{2, 2, 4, 4, 4}) }
