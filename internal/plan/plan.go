// Package plan turns a search result into a deployment artifact — the
// role of the paper's inference engine optimizer, which "produces
// efficient and tunable code" for the target. A Plan is the explicit,
// serializable step sequence a runtime would execute: one compute step
// per layer with its chosen primitive, plus the compatibility steps
// (layout conversions, processor transfers) the selection implies, and
// the final host-return step. Plans validate against the look-up
// table: the sum of planned step times equals the LUT's TotalTime for
// the assignment, and the engine can execute CPU-only plans for real.
package plan

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
)

// StepKind classifies a plan step.
type StepKind uint8

const (
	// Compute executes one layer with its chosen primitive.
	Compute StepKind = iota
	// Compat runs a compatibility layer before a compute step: a
	// layout conversion, a processor transfer, or both.
	Compat
	// Return delivers the output back to the host (CPU, NCHW).
	Return
)

// String returns the step-kind name.
func (k StepKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Compat:
		return "compat"
	case Return:
		return "return"
	}
	return fmt.Sprintf("StepKind(%d)", uint8(k))
}

// Step is one entry of the deployment sequence.
type Step struct {
	// Kind classifies the step.
	Kind StepKind `json:"kind"`
	// Layer is the consumer layer index (the produced layer for
	// Compute, the destination for Compat, the output for Return).
	Layer int `json:"layer"`
	// LayerName is the consumer layer's name.
	LayerName string `json:"layer_name"`
	// From is the producer layer index for Compat steps (-1 else).
	From int `json:"from,omitempty"`
	// Primitive is the executing primitive for Compute steps.
	Primitive string `json:"primitive,omitempty"`
	// Proc is where the step runs (destination processor for Compat).
	Proc string `json:"proc"`
	// Transfer marks Compat steps that cross processors.
	Transfer bool `json:"transfer,omitempty"`
	// Convert marks Compat steps that change layout.
	Convert bool `json:"convert,omitempty"`
	// Bytes is the activation size a Compat/Return step moves.
	Bytes int64 `json:"bytes,omitempty"`
	// Seconds is the planned duration from the look-up table.
	Seconds float64 `json:"seconds"`
}

// Plan is the full deployment sequence for one assignment.
type Plan struct {
	// Network is the architecture name.
	Network string `json:"network"`
	// Mode is the processor mode the plan was searched under.
	Mode string `json:"mode"`
	// Steps is the ordered execution sequence.
	Steps []Step `json:"steps"`
	// TotalSeconds is the planned end-to-end latency; it equals the
	// look-up table's TotalTime for the assignment.
	TotalSeconds float64 `json:"total_seconds"`
}

// Build constructs the plan for an assignment over a profiled table.
func Build(net *nn.Network, tab *lut.Table, assignment []primitives.ID) (*Plan, error) {
	if net.Name != tab.Network {
		return nil, fmt.Errorf("plan: table is for %q, network is %q", tab.Network, net.Name)
	}
	if len(assignment) != net.Len() {
		return nil, fmt.Errorf("plan: assignment has %d entries, want %d", len(assignment), net.Len())
	}
	p := &Plan{Network: net.Name, Mode: tab.Mode.String()}

	// Incoming edges per consumer, in edge order.
	incoming := make(map[int][]lut.Edge)
	for _, e := range tab.Edges() {
		incoming[e.To] = append(incoming[e.To], e)
	}

	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		prim := primitives.ByID(assignment[i])
		// Compatibility steps for every incompatible incoming edge.
		for _, e := range incoming[i] {
			fromPrim := primitives.ByID(assignment[e.From])
			pen := tab.Penalty(e.From, e.To, fromPrim.Idx, prim.Idx)
			if math.IsInf(pen, 1) {
				return nil, fmt.Errorf("plan: edge %d->%d has no profiled penalty for (%s, %s)",
					e.From, e.To, fromPrim.Name, prim.Name)
			}
			transfer := fromPrim.Proc != prim.Proc
			convert := fromPrim.Layout != prim.Layout
			if !transfer && !convert {
				continue
			}
			p.Steps = append(p.Steps, Step{
				Kind: Compat, Layer: i, LayerName: l.Name, From: e.From,
				Proc: prim.Proc.String(), Transfer: transfer, Convert: convert,
				Bytes:   int64(net.Layers[e.From].OutShape.Bytes()),
				Seconds: pen,
			})
		}
		t := tab.Time(i, prim.Idx)
		if math.IsInf(t, 1) {
			return nil, fmt.Errorf("plan: layer %s has no profiled time for %s", l.Name, prim.Name)
		}
		p.Steps = append(p.Steps, Step{
			Kind: Compute, Layer: i, LayerName: l.Name, From: -1,
			Primitive: prim.Name, Proc: prim.Proc.String(),
			Seconds: t,
		})
	}

	out := tab.OutputLayer()
	outPrim := primitives.ByID(assignment[out])
	retPen := tab.OutputPenalty(outPrim.Idx)
	if math.IsInf(retPen, 1) {
		return nil, fmt.Errorf("plan: output layer has no profiled return penalty for %s", outPrim.Name)
	}
	p.Steps = append(p.Steps, Step{
		Kind: Return, Layer: out, LayerName: net.Layers[out].Name, From: -1,
		Proc:     primitives.CPU.String(),
		Transfer: outPrim.Proc != primitives.CPU,
		Convert:  outPrim.Layout != primitives.PVanilla.Layout,
		Bytes:    int64(net.Layers[out].OutShape.Bytes()),
		Seconds:  retPen,
	})

	for _, s := range p.Steps {
		p.TotalSeconds += s.Seconds
	}
	return p, nil
}

// Validate checks the plan's accounting against the table: the summed
// step durations must equal TotalTime(assignment) exactly.
func (p *Plan) Validate(tab *lut.Table, assignment []primitives.ID) error {
	want := tab.TotalTime(assignment)
	if math.Abs(p.TotalSeconds-want) > 1e-9*math.Max(1, want) {
		return fmt.Errorf("plan: steps sum to %g, table says %g", p.TotalSeconds, want)
	}
	return nil
}

// Transfers counts the processor crossings the plan performs
// (including the final host return if it crosses).
func (p *Plan) Transfers() int {
	n := 0
	for _, s := range p.Steps {
		if s.Transfer {
			n++
		}
	}
	return n
}

// Conversions counts the layout conversions.
func (p *Plan) Conversions() int {
	n := 0
	for _, s := range p.Steps {
		if s.Convert {
			n++
		}
	}
	return n
}

// MarshalJSON uses the plain struct encoding (method present for
// symmetry and stability of the public surface).
func (p *Plan) MarshalJSON() ([]byte, error) {
	type alias Plan
	return json.Marshal((*alias)(p))
}

// Load parses a serialized plan.
func Load(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return &p, nil
}

// Render emits a human-readable deployment listing — the "tunable
// code" view of the plan.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// deployment plan: %s (%s mode), %d steps, %.3f ms\n",
		p.Network, p.Mode, len(p.Steps), p.TotalSeconds*1e3)
	for i, s := range p.Steps {
		switch s.Kind {
		case Compute:
			fmt.Fprintf(&b, "%3d: [%s] %-28s %-22s %9.4f ms\n",
				i, s.Proc, s.LayerName, s.Primitive, s.Seconds*1e3)
		case Compat:
			what := make([]string, 0, 2)
			if s.Transfer {
				what = append(what, "transfer")
			}
			if s.Convert {
				what = append(what, "convert")
			}
			fmt.Fprintf(&b, "%3d: [%s] %-28s %-22s %9.4f ms (%d bytes)\n",
				i, s.Proc, "-> "+s.LayerName, strings.Join(what, "+"), s.Seconds*1e3, s.Bytes)
		case Return:
			fmt.Fprintf(&b, "%3d: [CPU] %-28s %-22s %9.4f ms\n",
				i, "return "+s.LayerName, "to host", s.Seconds*1e3)
		}
	}
	return b.String()
}

// TraceEvent is one entry of the Chrome-trace (catapult) timeline.
type TraceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  string  `json:"tid"`
}

// ChromeTrace renders the plan as a chrome://tracing-compatible JSON
// timeline with one track per processor (plus one for the
// interconnect), replaying the sequential execution.
func (p *Plan) ChromeTrace() ([]byte, error) {
	events := make([]TraceEvent, 0, len(p.Steps))
	t := 0.0
	for _, s := range p.Steps {
		tid := s.Proc
		name := s.LayerName
		switch s.Kind {
		case Compute:
			name = s.LayerName + " (" + s.Primitive + ")"
		case Compat:
			if s.Transfer {
				tid = "interconnect"
			}
			name = "compat -> " + s.LayerName
		case Return:
			tid = "interconnect"
			name = "return to host"
		}
		events = append(events, TraceEvent{
			Name: name, Ph: "X",
			Ts: t * 1e6, Dur: s.Seconds * 1e6,
			PID: 1, TID: tid,
		})
		t += s.Seconds
	}
	return json.Marshal(events)
}
