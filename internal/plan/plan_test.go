package plan

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

func searched(t *testing.T, name string, mode primitives.Mode) (*nn.Network, *lut.Table, []primitives.ID) {
	t.Helper()
	net := models.MustBuild(name)
	pl := platform.JetsonTX2Like()
	tab, err := profile.Run(net, profile.NewSimSource(net, pl), profile.Options{Mode: mode, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Search(tab, core.Config{Episodes: 500, Seed: 1})
	return net, tab, res.Assignment
}

func TestBuildAccountsForEverything(t *testing.T) {
	for _, name := range []string{"lenet5", "mobilenet-v1", "squeezenet"} {
		net, tab, assignment := searched(t, name, primitives.ModeGPGPU)
		p, err := Build(net, tab, assignment)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(tab, assignment); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// One compute step per searchable layer plus one return step.
		computes := 0
		for _, s := range p.Steps {
			if s.Kind == Compute {
				computes++
			}
		}
		if computes != net.Len()-1 {
			t.Errorf("%s: %d compute steps, want %d", name, computes, net.Len()-1)
		}
		if p.Steps[len(p.Steps)-1].Kind != Return {
			t.Errorf("%s: last step is %v, want return", name, p.Steps[len(p.Steps)-1].Kind)
		}
	}
}

func TestTransfersMatchProcessorHops(t *testing.T) {
	net, tab, assignment := searched(t, "mobilenet-v1", primitives.ModeGPGPU)
	p, err := Build(net, tab, assignment)
	if err != nil {
		t.Fatal(err)
	}
	// Count hops directly from the assignment (chain network: each
	// consecutive processor change is one transfer), plus the return
	// transfer if the last layer is on the GPU.
	hops := 0
	for i := 2; i < len(assignment); i++ {
		if primitives.ByID(assignment[i]).Proc != primitives.ByID(assignment[i-1]).Proc {
			hops++
		}
	}
	// Edge from input pseudo-layer (CPU).
	if primitives.ByID(assignment[1]).Proc != primitives.CPU {
		hops++
	}
	if primitives.ByID(assignment[len(assignment)-1]).Proc != primitives.CPU {
		hops++
	}
	if got := p.Transfers(); got != hops {
		t.Errorf("plan transfers = %d, assignment hops = %d", got, hops)
	}
}

func TestPureCPUPlanHasNoTransfers(t *testing.T) {
	net, tab, assignment := searched(t, "lenet5", primitives.ModeCPU)
	p, err := Build(net, tab, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if p.Transfers() != 0 {
		t.Errorf("CPU-mode plan has %d transfers", p.Transfers())
	}
}

func TestRenderAndTrace(t *testing.T) {
	net, tab, assignment := searched(t, "lenet5", primitives.ModeGPGPU)
	p, err := Build(net, tab, assignment)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Render()
	for _, want := range []string{"deployment plan: lenet5", "conv1", "return"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered plan missing %q", want)
		}
	}
	trace, err := p.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	if err := json.Unmarshal(trace, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != len(p.Steps) {
		t.Errorf("trace has %d events, plan has %d steps", len(events), len(p.Steps))
	}
	// Events are sequential and non-overlapping.
	for i := 1; i < len(events); i++ {
		if events[i].Ts < events[i-1].Ts+events[i-1].Dur-1e-6 {
			t.Fatalf("event %d overlaps its predecessor", i)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	net, tab, assignment := searched(t, "lenet5", primitives.ModeGPGPU)
	p, err := Build(net, tab, assignment)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalSeconds != p.TotalSeconds || len(back.Steps) != len(p.Steps) {
		t.Error("plan changed through JSON round trip")
	}
	if _, err := Load([]byte("{")); err == nil {
		t.Error("garbage plan JSON should fail")
	}
}

func TestBuildValidation(t *testing.T) {
	netA, tabA, assignment := searched(t, "lenet5", primitives.ModeCPU)
	netB := models.MustBuild("alexnet")
	if _, err := Build(netB, tabA, assignment); err == nil {
		t.Error("network/table mismatch should error")
	}
	if _, err := Build(netA, tabA, assignment[:2]); err == nil {
		t.Error("short assignment should error")
	}
}

func TestStepKindString(t *testing.T) {
	if Compute.String() != "compute" || Compat.String() != "compat" || Return.String() != "return" {
		t.Error("step kind names")
	}
	if !strings.Contains(StepKind(9).String(), "9") {
		t.Error("unknown step kind")
	}
}
