package tune

import "math"

// Surrogate is the learned cost model that prunes the exploded variant
// space: an online ridge regressor over the bounded feature vector of
// variant.go, trained on the log of measured seconds. Only the ranking
// matters — the tuner shortlists the lowest predicted times for real
// measurement — so a linear model over log-time with quadratic
// blocking terms is enough, and it is tiny, dependency-free and exactly
// reproducible: observations accumulate into a Gram matrix in call
// order and the solve is deterministic Gaussian elimination, so the
// same measurements in the same order always yield the same shortlist.
type Surrogate struct {
	d      int
	lambda float64
	// xtx accumulates XᵀX (d x d), xty accumulates Xᵀy.
	xtx []float64
	xty []float64
	n   int
	// w is the solved weight vector; nil until Fit succeeds.
	w []float64
}

// NewSurrogate returns an empty model for d-dimensional features.
func NewSurrogate(d int) *Surrogate {
	return &Surrogate{d: d, lambda: 1e-3, xtx: make([]float64, d*d), xty: make([]float64, d)}
}

// Observe folds one (features, seconds) measurement into the model.
// Non-positive or non-finite seconds are ignored — failed measurements
// must not poison the Gram matrix.
func (s *Surrogate) Observe(x []float64, sec float64) {
	if len(x) != s.d || !(sec > 0) || math.IsInf(sec, 0) {
		return
	}
	y := math.Log(sec)
	for i := 0; i < s.d; i++ {
		for j := 0; j < s.d; j++ {
			s.xtx[i*s.d+j] += x[i] * x[j]
		}
		s.xty[i] += x[i] * y
	}
	s.n++
	s.w = nil // stale
}

// Observations reports how many measurements the model has absorbed.
func (s *Surrogate) Observations() int { return s.n }

// Fit solves the ridge system (XᵀX + λI)w = Xᵀy and reports whether a
// usable model exists (it needs at least two observations; a singular
// system reports false).
func (s *Surrogate) Fit() bool {
	if s.w != nil {
		return true
	}
	if s.n < 2 {
		return false
	}
	d := s.d
	// Augmented [A | b] working copy; A = XᵀX + λI.
	a := make([]float64, d*(d+1))
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			a[i*(d+1)+j] = s.xtx[i*d+j]
		}
		a[i*(d+1)+i] += s.lambda
		a[i*(d+1)+d] = s.xty[i]
	}
	// Gaussian elimination with partial pivoting — branch decisions
	// depend only on accumulated values, never on iteration order.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r*(d+1)+col]) > math.Abs(a[piv*(d+1)+col]) {
				piv = r
			}
		}
		if math.Abs(a[piv*(d+1)+col]) < 1e-12 {
			return false
		}
		if piv != col {
			for j := 0; j <= d; j++ {
				a[col*(d+1)+j], a[piv*(d+1)+j] = a[piv*(d+1)+j], a[col*(d+1)+j]
			}
		}
		pv := a[col*(d+1)+col]
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r*(d+1)+col] / pv
			if f == 0 {
				continue
			}
			for j := col; j <= d; j++ {
				a[r*(d+1)+j] -= f * a[col*(d+1)+j]
			}
		}
	}
	w := make([]float64, d)
	for i := 0; i < d; i++ {
		w[i] = a[i*(d+1)+d] / a[i*(d+1)+i]
	}
	s.w = w
	return true
}

// Predict returns the model's log-seconds estimate for the feature
// vector. Callers must Fit first; Predict on an unfitted model returns
// 0 for every input (a constant ranking).
func (s *Surrogate) Predict(x []float64) float64 {
	if s.w == nil || len(x) != s.d {
		return 0
	}
	var y float64
	for i, v := range x {
		y += s.w[i] * v
	}
	return y
}
