package tune

import (
	"bytes"
	"context"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/tensor"
)

// tuneNet is a small net with two conv layers of different shapes —
// enough k and n that the blocking grids survive clampGrid.
func tuneNet(t *testing.T) *nn.Network {
	t.Helper()
	b := nn.NewBuilder("tune-test", tensor.Shape{N: 1, C: 16, H: 19, W: 19})
	x := b.Conv("conv1", b.Input(), 24, 3, 1, 1)
	x = b.ReLU("relu", x)
	x = b.Conv("conv2", x, 16, 3, 1, 1)
	b.Softmax("prob", x)
	return b.MustBuild()
}

// synthMeasurer is a deterministic, learnable cost model: log-time is
// exactly linear in the surrogate features plus a small deterministic
// hash perturbation, so the ridge regressor can rank variants well but
// not perfectly. It never depends on wall time, worker count or call
// order.
type synthMeasurer struct {
	net *nn.Network
	// weights over the feature vector (featureDim entries).
	w []float64
}

func newSynthMeasurer(net *nn.Network) *synthMeasurer {
	return &synthMeasurer{
		net: net,
		// Chosen so blocking and kernel choice matter: deeper blocking
		// (smaller kcFrac) helps up to a point, wide tiles help, panel
		// tiling helps slightly.
		w: []float64{-7, 0.3, 0.3, 0.3, 1.2, -0.5, 0.8, -0.3, 0.2, 0.1, -0.4, 0.15},
	}
}

func (m *synthMeasurer) cost(layer int, base *primitives.Primitive, v Variant) float64 {
	x := features(m.net.Layers[layer], base, v)
	var y float64
	for i := range x {
		y += m.w[i] * x[i]
	}
	h := fnv.New32a()
	h.Write([]byte(v.String()))
	h.Write([]byte(base.Name))
	h.Write([]byte{byte(layer)})
	jitter := float64(h.Sum32()%1000)/1000*0.04 - 0.02 // deterministic ±2%
	return math.Exp(y) * (1 + jitter)
}

func (m *synthMeasurer) MeasureVariant(_ context.Context, layer int, base *primitives.Primitive, v Variant, _ int) (float64, error) {
	return m.cost(layer, base, v), nil
}

func testTable(t *testing.T, net *nn.Network) *lut.Table {
	t.Helper()
	primitives.EnableTunedVariants() // before New so twins fit the table
	tab := lut.New(net, primitives.ModeCPU)
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			tab.SetTime(i, p, 0.001*float64(i))
		}
	}
	for _, ed := range tab.Edges() {
		for _, fp := range tab.Candidates(ed.From) {
			for _, tp := range tab.Candidates(ed.To) {
				tab.SetPenalty(ed.From, ed.To, fp, tp, 0)
			}
		}
	}
	for _, p := range tab.Candidates(tab.OutputLayer()) {
		tab.SetOutputPenalty(p, 0)
	}
	return tab
}

func runTune(t *testing.T, net *nn.Network, workers int) *Cache {
	t.Helper()
	tab := testTable(t, net)
	opts := DefaultOptions()
	opts.MeasureWorkers = workers
	opts.Samples = 1
	opts.Seed = 7
	c, err := Tune(context.Background(), net, tab, newSynthMeasurer(net), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTuneFindsImprovements(t *testing.T) {
	net := tuneNet(t)
	c := runTune(t, net, 1)
	if c.Stats.PairsTuned == 0 || c.Stats.Generated == 0 {
		t.Fatalf("nothing tuned: %+v", c.Stats)
	}
	if len(c.Entries) == 0 {
		t.Fatal("synthetic cost model has non-default optima; expected entries")
	}
	for _, e := range c.Entries {
		if e.Variant.IsDefault() {
			t.Errorf("entry %d/%s records the default variant", e.Layer, e.Base)
		}
		if !(e.Seconds < e.DefaultSec) {
			t.Errorf("entry %d/%s: tuned %v not faster than default %v", e.Layer, e.Base, e.Seconds, e.DefaultSec)
		}
	}
	if c.Stats.Measured >= c.Stats.Generated {
		t.Errorf("surrogate pruned nothing: measured %d of %d", c.Stats.Measured, c.Stats.Generated)
	}
}

// TestTuneDeterministicAcrossWorkers is the determinism satellite: the
// same seed and budget produce a byte-identical tuned cache — and a
// byte-identical tuned LUT — at any measurement worker count.
func TestTuneDeterministicAcrossWorkers(t *testing.T) {
	net := tuneNet(t)
	ref, err := runTune(t, net, 1).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := runTune(t, net, workers).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, got) {
			t.Errorf("cache bytes differ between 1 and %d measure workers", workers)
		}
	}
	// Applying equal caches to fresh tables yields byte-identical LUTs.
	mkLUT := func(workers int) []byte {
		tab := testTable(t, net)
		c := runTune(t, net, workers)
		c.Apply(tab, net)
		data, err := tab.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	lutRef := mkLUT(1)
	if !bytes.Equal(lutRef, mkLUT(8)) {
		t.Error("tuned LUT bytes differ between 1 and 8 measure workers")
	}
}

// TestSurrogateRegretGate is the regret satellite: against the
// exhaustively-evaluated grid, the shortlist's best is within 5% of
// the true optimum while measuring at least 5x fewer variants.
func TestSurrogateRegretGate(t *testing.T) {
	net := tuneNet(t)
	m := newSynthMeasurer(net)
	tab := testTable(t, net)
	opts := DefaultOptions()
	opts.Samples = 1
	c, err := Tune(context.Background(), net, tab, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Measured*5 > c.Stats.Generated {
		t.Errorf("shortlisting measured %d of %d variants (< 5x reduction)", c.Stats.Measured, c.Stats.Generated)
	}
	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		for _, base := range Bases() {
			vars := Space(l, base)
			if len(vars) == 0 || !hasCandidate(tab, i, base.Idx) {
				continue
			}
			trueBest := math.Inf(1)
			for _, v := range vars {
				if sec := m.cost(i, base, v); sec < trueBest {
					trueBest = sec
				}
			}
			// The tuner's pick: the recorded entry, or the default if
			// no entry beat it.
			got := m.cost(i, base, Variant{})
			for _, e := range c.Entries {
				if e.Layer == i && e.Base == base.Name {
					got = e.Seconds
				}
			}
			if got > trueBest*1.05 {
				t.Errorf("layer %d %s: shortlist best %.3g vs true optimum %.3g (regret %.1f%%)",
					i, base.Name, got, trueBest, (got/trueBest-1)*100)
			}
		}
	}
}

func TestApplyFeedsTable(t *testing.T) {
	net := tuneNet(t)
	tab := testTable(t, net)
	c := runTune(t, net, 1)
	applied, skipped := c.Apply(tab, net)
	if skipped != 0 {
		t.Errorf("%d entries skipped on a fresh table", skipped)
	}
	if len(applied) != len(c.Entries) {
		t.Fatalf("applied %d of %d entries", len(applied), len(c.Entries))
	}
	for _, a := range applied {
		twin := primitives.ByID(a.Twin)
		if !twin.Tuned {
			t.Fatalf("applied non-tuned primitive %s", twin.Name)
		}
		if !hasCandidate(tab, a.Layer, a.Twin) {
			t.Errorf("twin %s not a candidate of layer %d", twin.Name, a.Layer)
		}
		if math.IsInf(tab.Time(a.Layer, a.Twin), 1) {
			t.Errorf("twin %s time unset at layer %d", twin.Name, a.Layer)
		}
		// Twin must price no worse than base everywhere it appears:
		// mirrored penalties plus a strictly better time.
		if tab.Time(a.Layer, a.Twin) >= tab.Time(a.Layer, twin.Base) {
			// The synthetic table's base times (0.001*i) may be lower
			// than the synthetic measurement; only check that a time
			// exists. Real flows re-measure the base with the same
			// measurer.
			continue
		}
	}
	// Double apply refreshes, never errors or duplicates.
	applied2, _ := c.Apply(tab, net)
	if len(applied2) != len(applied) {
		t.Errorf("second apply returned %d entries, want %d", len(applied2), len(applied))
	}
	for i := 1; i < tab.NumLayers(); i++ {
		seen := map[primitives.ID]int{}
		for _, id := range tab.Candidates(i) {
			seen[id]++
			if seen[id] > 1 {
				t.Errorf("layer %d: duplicate candidate %d after double apply", i, id)
			}
		}
	}
}

func TestApplyRejectsMismatchedCache(t *testing.T) {
	net := tuneNet(t)
	tab := testTable(t, net)
	c := runTune(t, net, 1)
	c.Network = "other-net"
	if applied, skipped := c.Apply(tab, net); len(applied) != 0 || skipped != len(c.Entries) {
		t.Error("Apply accepted a cache for a different network")
	}
}

// TestApplySkipsForgedEntries: corrupt entries degrade to skips — no
// panic, no table corruption.
func TestApplySkipsForgedEntries(t *testing.T) {
	net := tuneNet(t)
	tab := testTable(t, net)
	before, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	forged := &Cache{
		Network: net.Name,
		Mode:    primitives.ModeCPU.String(),
		Entries: []Entry{
			{Layer: -1, Base: "openblas-gemm-im2col", Variant: Variant{KC: 8}, Seconds: 1, DefaultSec: 2},
			{Layer: 9999, Base: "openblas-gemm-im2col", Variant: Variant{KC: 8}, Seconds: 1, DefaultSec: 2},
			{Layer: 1, Base: "no-such-primitive", Variant: Variant{KC: 8}, Seconds: 1, DefaultSec: 2},
			{Layer: 1, Base: "vanilla-direct", Variant: Variant{KC: 8}, Seconds: 1, DefaultSec: 2}, // no twin
			{Layer: 1, Base: "openblas-gemm-im2col", Variant: Variant{KC: -4}, Seconds: 1, DefaultSec: 2},
			{Layer: 1, Base: "openblas-gemm-im2col", Variant: Variant{}, Seconds: 1, DefaultSec: 2}, // default
			{Layer: 1, Base: "openblas-gemm-im2col", Variant: Variant{KC: 8}, Seconds: -1, DefaultSec: 2},
			{Layer: 1, Base: "openblas-gemm-im2col", Variant: Variant{KC: 8}, Seconds: math.Inf(1), DefaultSec: 2},
			{Layer: 2, Base: "openblas-gemm-im2col", Variant: Variant{KC: 8}, Seconds: 1, DefaultSec: 2}, // relu layer
		},
	}
	applied, skipped := forged.Apply(tab, net)
	if len(applied) != 0 {
		t.Errorf("%d forged entries applied", len(applied))
	}
	if skipped != len(forged.Entries) {
		t.Errorf("skipped = %d, want %d", skipped, len(forged.Entries))
	}
	after, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("forged cache modified the table")
	}
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	net := tuneNet(t)
	c := runTune(t, net, 1)
	path := t.TempDir() + "/tuned.qsd"
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("cache round trip not byte-identical")
	}
}

func TestSpaceShape(t *testing.T) {
	net := tuneNet(t)
	conv := net.Layers[net.LayerIndex("conv1")]
	relu := net.Layers[net.LayerIndex("relu")]
	for _, base := range Bases() {
		vars := Space(conv, base)
		if len(vars) < 8 {
			t.Errorf("%s: space only %d variants", base.Name, len(vars))
		}
		if len(vars) > 0 && !vars[0].IsDefault() {
			t.Errorf("%s: space[0] is %v, want default", base.Name, vars[0])
		}
		seen := map[Variant]bool{}
		for _, v := range vars {
			if seen[v] {
				t.Errorf("%s: duplicate variant %v", base.Name, v)
			}
			seen[v] = true
			if !v.valid() {
				t.Errorf("%s: generated invalid variant %v", base.Name, v)
			}
		}
		if Space(relu, base) != nil {
			t.Errorf("%s: non-conv layer got a space", base.Name)
		}
	}
}
