package tune

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/store"
	"repro/internal/tensor"
)

// fuzzNet builds the network outside the fuzz loop; the fuzz target
// must not depend on testing.T helpers.
func fuzzNet() *nn.Network {
	b := nn.NewBuilder("tune-test", tensor.Shape{N: 1, C: 16, H: 19, W: 19})
	x := b.Conv("conv1", b.Input(), 24, 3, 1, 1)
	x = b.ReLU("relu", x)
	x = b.Conv("conv2", x, 16, 3, 1, 1)
	b.Softmax("prob", x)
	return b.MustBuild()
}

// FuzzCacheLoad throws arbitrary bytes at the tuned-cache codec: a
// corrupt, torn or forged file must either fail to load or apply with
// skips — it must never panic and never corrupt the table.
func FuzzCacheLoad(f *testing.F) {
	net := fuzzNet()
	// Seed with a genuine cache file (envelope + payload), its
	// truncations, bit flips, and raw forged payloads.
	c := &Cache{
		Network: net.Name,
		Mode:    primitives.ModeCPU.String(),
		Entries: []Entry{{Layer: 1, Base: "openblas-gemm-im2col", Variant: Variant{KC: 32}, Seconds: 0.5, DefaultSec: 1}},
	}
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.qsd")
	if err := c.Save(seedPath); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("QSD1 but not really"))
	f.Add(store.Encode([]byte(`{"network":"tune-test","mode":"cpu","entries":[{"layer":99,"base":"x","variant":{"kc":-1},"sec":-5}]}`)))
	f.Add(store.Encode([]byte(`{"entries":[{"layer":1,"base":"openblas-gemm-im2col","variant":{"kernel":"` +
		string(make([]byte, 100)) + `","workers":99999},"sec":1e308,"default_sec":2}]}`)))

	primitives.EnableTunedVariants()

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cache.qsd")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCache(path)
		if err != nil {
			return // rejected: the correct outcome for garbage
		}
		// Whatever loaded must apply without panicking, and forged
		// entries must be skipped, not applied.
		tab := testTableF(net)
		applied, _ := got.Apply(tab, net)
		for _, a := range applied {
			p := primitives.ByID(a.Twin)
			if p == nil || !p.Tuned {
				t.Fatalf("applied non-twin primitive %v", a.Twin)
			}
			if a.Layer <= 0 || a.Layer >= tab.NumLayers() {
				t.Fatalf("applied out-of-range layer %d", a.Layer)
			}
			if !a.Variant.valid() || a.Variant.IsDefault() {
				t.Fatalf("applied invalid variant %v", a.Variant)
			}
		}
	})
}

// testTableF is testTable without the *testing.T plumbing.
func testTableF(net *nn.Network) *lut.Table {
	tab := lut.New(net, primitives.ModeCPU)
	for i := 1; i < tab.NumLayers(); i++ {
		for _, p := range tab.Candidates(i) {
			tab.SetTime(i, p, 0.001*float64(i))
		}
	}
	return tab
}
