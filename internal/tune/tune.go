package tune

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/pool"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// Options bounds one tuning run.
type Options struct {
	// Budget is the maximum real measurements per (layer, base
	// primitive); the surrogate shortlists this many variants out of
	// the full space. Minimum effective value is 2 (the default
	// variant plus one challenger).
	Budget int
	// Samples is the robust-series sample count per measurement.
	Samples int
	// MeasureWorkers is the measurement fan-out. Results are collected
	// by variant index and folded in index order, so the tuned output
	// is byte-identical at any value (against a deterministic
	// measurer).
	MeasureWorkers int
	// Robust, when non-nil, applies the profiling layer's
	// timeout/retry/outlier policy to each measurement series.
	Robust *profile.Robust
	// Seed is recorded in the cache for provenance; the tuner itself
	// is deterministic by construction.
	Seed int64
}

// DefaultOptions returns the standard tuning budget.
func DefaultOptions() Options {
	return Options{Budget: 16, Samples: 3, MeasureWorkers: 1}
}

// Measurer times one (layer, base, variant) execution sample. The
// engine-backed implementation is EngineMeasurer; tests substitute
// synthetic deterministic cost models.
type Measurer interface {
	MeasureVariant(ctx context.Context, layer int, base *primitives.Primitive, v Variant, sample int) (float64, error)
}

// EngineMeasurer measures variants on the real engine's cached
// canonical activations.
type EngineMeasurer struct {
	Src *engine.Source
}

// MeasureVariant times one execution of the layer under the variant.
func (m EngineMeasurer) MeasureVariant(ctx context.Context, layer int, base *primitives.Primitive, v Variant, sample int) (float64, error) {
	_ = sample
	return m.Src.MeasureTuned(ctx, layer, base, v.Conv())
}

// Stats summarizes a tuning run for /statusz and `qsdnn version`.
type Stats struct {
	// PairsTuned counts the (layer, base primitive) pairs tuned.
	PairsTuned int `json:"pairs_tuned"`
	// Generated is the total variant-space size across pairs.
	Generated int `json:"variants_generated"`
	// Measured is how many variants were actually measured — the
	// surrogate pruned the rest.
	Measured int `json:"variants_measured"`
	// Failed counts measurements that errored (and were skipped).
	Failed int `json:"measure_failures,omitempty"`
	// Entries is how many tuned variants beat their default and were
	// recorded.
	Entries int `json:"entries"`
	// ShortlistHits counts recorded entries whose winning variant came
	// from the surrogate shortlist rather than the seed sweep — the
	// surrogate's hit rate is ShortlistHits/Entries.
	ShortlistHits int `json:"shortlist_hits"`
	// BestSpeedup is the largest default/tuned time ratio recorded.
	BestSpeedup float64 `json:"best_speedup,omitempty"`
}

// Bases returns the tunable base primitives in tuning order.
func Bases() []*primitives.Primitive {
	return []*primitives.Primitive{primitives.POpenIm2col, primitives.POpenIm2row, primitives.POpenKn2row}
}

// Tune runs the budgeted variant search for every tunable (layer,
// base) pair of the table and returns the resulting cache. The table
// supplies the candidate sets (a base degraded away by profiling is
// not tuned); it is not modified — call Cache.Apply to feed tunings
// into a table and an engine.
//
// Determinism: spaces are enumerated in fixed order, seeds are strided
// deterministically, the surrogate folds observations in variant-index
// order after each measurement barrier, and every tie breaks toward
// the lower variant index — so against a deterministic measurer the
// cache bytes are identical at any MeasureWorkers.
func Tune(ctx context.Context, net *nn.Network, tab *lut.Table, meas Measurer, opts Options) (*Cache, error) {
	if opts.Budget < 2 {
		opts.Budget = 2
	}
	if opts.Samples <= 0 {
		opts.Samples = 1
	}
	if opts.MeasureWorkers < 1 {
		opts.MeasureWorkers = 1
	}
	c := &Cache{
		Network: net.Name,
		Mode:    tab.Mode.String(),
		Seed:    opts.Seed,
		Budget:  opts.Budget,
	}
	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		for _, base := range Bases() {
			if !hasCandidate(tab, i, base.Idx) {
				continue
			}
			vars := Space(l, base)
			if len(vars) < 2 {
				continue
			}
			c.Stats.PairsTuned++
			c.Stats.Generated += len(vars)
			entry, ok, err := tuneOne(ctx, net, i, base, vars, meas, opts, &c.Stats)
			if err != nil {
				return nil, err
			}
			if ok {
				c.Entries = append(c.Entries, entry)
				c.Stats.Entries++
				if s := entry.DefaultSec / entry.Seconds; s > c.Stats.BestSpeedup {
					c.Stats.BestSpeedup = s
				}
			}
		}
	}
	return c, nil
}

func hasCandidate(tab *lut.Table, i int, id primitives.ID) bool {
	for _, c := range tab.Candidates(i) {
		if c == id {
			return true
		}
	}
	return false
}

// tuneOne runs the seed-sweep + surrogate-shortlist loop for one
// (layer, base) pair and returns a cache entry when a non-default
// variant wins.
func tuneOne(ctx context.Context, net *nn.Network, layer int, base *primitives.Primitive, vars []Variant, meas Measurer, opts Options, stats *Stats) (Entry, bool, error) {
	budget := opts.Budget
	if budget > len(vars) {
		budget = len(vars)
	}
	// Seed sweep: a deterministic stride through the space, always
	// including index 0 (the default — the baseline every tuned time
	// is judged against).
	seedN := budget / 3
	if seedN < 2 {
		seedN = 2
	}
	if seedN > budget {
		seedN = budget
	}
	seeds := make([]int, 0, seedN)
	for j := 0; j < seedN; j++ {
		idx := j * len(vars) / seedN
		if len(seeds) > 0 && seeds[len(seeds)-1] == idx {
			continue
		}
		seeds = append(seeds, idx)
	}

	times := make(map[int]float64, budget)
	shortlisted := make(map[int]bool)
	sur := NewSurrogate(featureDim)
	measure := func(idxs []int) error {
		res := make([]float64, len(idxs))
		out := pool.RunContext(ctx, len(idxs), opts.MeasureWorkers, func(j int) {
			v := vars[idxs[j]]
			what := fmt.Sprintf("tune layer %d %s %s", layer, base.Name, v)
			sec, err := profile.RobustSeries(ctx, opts.Robust, what, opts.Samples, func(ctx context.Context, s int) (float64, error) {
				return meas.MeasureVariant(ctx, layer, base, v, s)
			})
			if err != nil || !lut.ValidSeconds(sec) || sec == 0 {
				res[j] = math.NaN()
				return
			}
			res[j] = sec
		})
		if err := out.Err(); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Fold in index order after the barrier: byte-identical at any
		// MeasureWorkers.
		for j, idx := range idxs {
			stats.Measured++
			if math.IsNaN(res[j]) {
				stats.Failed++
				continue
			}
			times[idx] = res[j]
			sur.Observe(features(net.Layers[layer], base, vars[idx]), res[j])
		}
		return nil
	}

	if err := measure(seeds); err != nil {
		return Entry{}, false, err
	}

	// Surrogate shortlist, in rounds: rank every unmeasured variant by
	// predicted time, measure the best-looking few, refit, repeat until
	// the budget is spent. Refitting between rounds lets later rounds
	// exploit what earlier rounds learned.
	roundSize := budget / 4
	if roundSize < 2 {
		roundSize = 2
	}
	for rest := budget - len(seeds); rest > 0; {
		round := roundSize
		if round > rest {
			round = rest
		}
		type scored struct {
			idx  int
			pred float64
		}
		var cands []scored
		fitted := sur.Fit()
		for idx := range vars {
			if _, done := times[idx]; done {
				continue
			}
			p := 0.0
			if fitted {
				p = sur.Predict(features(net.Layers[layer], base, vars[idx]))
			}
			cands = append(cands, scored{idx, p})
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].pred != cands[b].pred {
				return cands[a].pred < cands[b].pred
			}
			return cands[a].idx < cands[b].idx
		})
		if round > len(cands) {
			round = len(cands)
		}
		pick := make([]int, round)
		for j := 0; j < round; j++ {
			pick[j] = cands[j].idx
			shortlisted[cands[j].idx] = true
		}
		sort.Ints(pick)
		if err := measure(pick); err != nil {
			return Entry{}, false, err
		}
		rest -= round
	}

	defSec, ok := times[0]
	if !ok {
		return Entry{}, false, nil // default unmeasurable: nothing to judge against
	}
	bestIdx, bestSec := 0, defSec
	for idx := 1; idx < len(vars); idx++ {
		if sec, done := times[idx]; done && sec < bestSec {
			bestIdx, bestSec = idx, sec
		}
	}
	if bestIdx == 0 {
		return Entry{}, false, nil
	}
	if shortlisted[bestIdx] {
		stats.ShortlistHits++
	}
	return Entry{
		Layer:      layer,
		Base:       base.Name,
		Variant:    vars[bestIdx],
		Seconds:    bestSec,
		DefaultSec: defSec,
	}, true, nil
}
