package tune

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/primitives"
	"repro/internal/store"
)

// Entry records one tuned winner: the variant that beat the default
// configuration of a base primitive on a layer, and both measured
// times.
type Entry struct {
	// Layer is the network layer index.
	Layer int `json:"layer"`
	// Base is the stable name of the base primitive the variant
	// parameterizes.
	Base string `json:"base"`
	// Variant is the winning configuration.
	Variant Variant `json:"variant"`
	// Seconds is the variant's measured time.
	Seconds float64 `json:"sec"`
	// DefaultSec is the default configuration's measured time.
	DefaultSec float64 `json:"default_sec"`
}

// Cache is the durable result of one tuning run. It serializes to
// canonical JSON inside the store envelope (CRC-framed, atomic
// replace), so a cache file round-trips byte-identically and a torn or
// corrupt file is detected at load instead of misconfiguring kernels.
type Cache struct {
	// Network is the architecture the tunings were measured for.
	Network string `json:"network"`
	// Mode is the processor mode of the table the tuner consulted.
	Mode string `json:"mode"`
	// Seed is the engine weight seed the measurements ran under.
	Seed int64 `json:"seed"`
	// Budget is the per-(layer, base) measurement budget used.
	Budget int `json:"budget"`
	// Entries holds the tuned winners, sorted by (Layer, Base).
	Entries []Entry `json:"entries"`
	// Stats summarizes the run.
	Stats Stats `json:"stats"`
}

// Marshal serializes the cache canonically: entries sorted by
// (Layer, Base), fixed field order. Equal caches yield equal bytes.
func (c *Cache) Marshal() ([]byte, error) {
	sort.SliceStable(c.Entries, func(a, b int) bool {
		if c.Entries[a].Layer != c.Entries[b].Layer {
			return c.Entries[a].Layer < c.Entries[b].Layer
		}
		return c.Entries[a].Base < c.Entries[b].Base
	})
	return json.Marshal(c)
}

// Save writes the cache durably (store envelope, atomic temp+fsync+
// rename).
func (c *Cache) Save(path string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	return store.Write(path, data)
}

// LoadCache reads a cache written by Save. Corrupt, torn or truncated
// files return an error (store.ErrCorrupt underneath) — callers fall
// back to untuned defaults, they never panic.
func LoadCache(path string) (*Cache, error) {
	payload, err := store.Read(path)
	if err != nil {
		return nil, err
	}
	var c Cache
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("tune: cache payload: %w", err)
	}
	return &c, nil
}

// Apply feeds the cache into a LUT: it enables the tuned twin
// primitives, adds each entry's twin as a candidate of its layer,
// mirrors the base's conversion penalties onto the twin, and records
// the tuned time — after which every search over the table can select
// the tuned variant exactly like any other primitive. It returns the
// per-(layer, twin) variant assignments the engine needs (feed them to
// engine.Engine.SetTuned via their Conv() form).
//
// Entries that no longer fit — unknown base, layer out of range, base
// not a candidate of the layer, invalid times, insane variants — are
// skipped and counted, never fatal: a stale or forged cache degrades
// to fewer tunings, it cannot corrupt a table.
func (c *Cache) Apply(tab *lut.Table, net *nn.Network) (applied []Applied, skipped int) {
	if c.Network != net.Name || c.Mode != tab.Mode.String() {
		return nil, len(c.Entries)
	}
	primitives.EnableTunedVariants()
	// Ascending layer order makes penalty mirroring cover twin-twin
	// edge pairs (see lut.MirrorCandidate).
	entries := append([]Entry(nil), c.Entries...)
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].Layer < entries[b].Layer })
	for _, e := range entries {
		base, ok := primitives.ByName(e.Base)
		if !ok || base.Tuned {
			skipped++
			continue
		}
		twin, ok := primitives.TunedOf(base.Idx)
		if !ok {
			skipped++
			continue
		}
		if e.Layer <= 0 || e.Layer >= tab.NumLayers() ||
			!e.Variant.valid() || e.Variant.IsDefault() ||
			!lut.ValidSeconds(e.Seconds) || !lut.ValidSeconds(e.DefaultSec) {
			skipped++
			continue
		}
		if !hasCandidate(tab, e.Layer, base.Idx) {
			skipped++
			continue
		}
		if !tab.AddCandidate(e.Layer, twin) {
			// Already present (double apply): refresh the time only.
			tab.SetTime(e.Layer, twin, e.Seconds)
			applied = append(applied, Applied{Layer: e.Layer, Twin: twin, Variant: e.Variant})
			continue
		}
		tab.MirrorCandidate(e.Layer, base.Idx, twin)
		tab.SetTime(e.Layer, twin, e.Seconds)
		applied = append(applied, Applied{Layer: e.Layer, Twin: twin, Variant: e.Variant})
	}
	return applied, skipped
}

// Applied is one (layer, twin, variant) assignment produced by Apply.
type Applied struct {
	// Layer is the network layer index.
	Layer int
	// Twin is the tuned twin primitive the variant executes as.
	Twin primitives.ID
	// Variant is the execution configuration.
	Variant Variant
}
