// Package tune is the per-(layer, primitive) kernel autotuner: it
// generates parameterized variants of the packed GEMM/conv paths —
// cache-block sizes, micro-kernel choice from the runtime dispatch
// registry, lowering panel widths, worker counts — ranks them with a
// small learned surrogate cost model trained online from measured
// samples, measures only a shortlist through the robust profiling
// series, and feeds the winners into the LUT as extra candidates
// (tuned twin primitives) so the existing Q-learning/DP/PBQP searches
// select them for free. Tunings persist durably (internal/store
// envelope) so serving and batch runs reuse them across processes.
//
// This is the inner tuning loop of the paper's outer primitive
// search: the outer loop picks among implementations, the inner loop
// (de Prado et al.'s Cortex-A DSE, PrIM-style tiling search) picks how
// each implementation runs.
package tune

import (
	"fmt"
	"math"

	"repro/internal/gemm"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/pool"
	"repro/internal/primitives"
)

// Variant is one point of the per-layer tuning space: the serializable
// form of a kernels.ConvTuned config. The zero Variant is the default
// pipeline (runtime-dispatched kernel, no cache blocking, no panel
// tiling, inherited worker count).
type Variant struct {
	// Kernel names a micro-kernel from the dispatch registry; "" is
	// the runtime-dispatched choice.
	Kernel string `json:"kernel,omitempty"`
	// KC is the GEMM k-blocking depth; 0 means the full reduction.
	KC int `json:"kc,omitempty"`
	// NC is the GEMM n-blocking width; 0 means the full width.
	NC int `json:"nc,omitempty"`
	// Panel is the lowering panel height in output rows; 0 disables
	// panel tiling.
	Panel int `json:"panel,omitempty"`
	// Workers overrides the execution fan-out; 0 inherits the
	// engine's.
	Workers int `json:"workers,omitempty"`
}

// IsDefault reports whether the variant is the default pipeline.
func (v Variant) IsDefault() bool { return v == Variant{} }

// Conv converts the variant to the kernels-layer execution config.
func (v Variant) Conv() kernels.ConvTuned {
	return kernels.ConvTuned{
		Panel:   v.Panel,
		Workers: v.Workers,
		Block:   gemm.BlockConfig{Kernel: v.Kernel, KC: v.KC, NC: v.NC},
	}
}

// String is the stable human-readable key ("default" for the zero
// variant).
func (v Variant) String() string {
	if v.IsDefault() {
		return "default"
	}
	k := v.Kernel
	if k == "" {
		k = "auto"
	}
	return fmt.Sprintf("%s/kc%d/nc%d/p%d/w%d", k, v.KC, v.NC, v.Panel, v.Workers)
}

// valid rejects variants a forged cache could smuggle in: negative
// knobs or absurd magnitudes. Unknown kernel names are deliberately
// allowed — the gemm layer degrades them to the dispatched kernel.
func (v Variant) valid() bool {
	const limit = 1 << 20
	return v.KC >= 0 && v.KC <= limit &&
		v.NC >= 0 && v.NC <= limit &&
		v.Panel >= 0 && v.Panel <= limit &&
		v.Workers >= 0 && v.Workers <= 4096 &&
		len(v.Kernel) <= 64
}

// gemmDims returns the (m, n, k) of the GEMM the base lowering runs
// for the layer (kn2row's per-offset rank-C multiplies report k = C).
func gemmDims(l *nn.Layer, base *primitives.Primitive) (m, n, k int) {
	oc := l.Conv.OutChannels
	spatial := l.OutShape.H * l.OutShape.W
	ckk := l.InShape.C * l.Conv.KernelH * l.Conv.KernelW
	switch base.Lower {
	case primitives.Im2row:
		return spatial, oc, ckk
	case primitives.Kn2row:
		return oc, spatial, l.InShape.C
	default: // im2col
		return oc, spatial, ckk
	}
}

// Space enumerates the tuning variants for (layer, base) in a fixed,
// deterministic order with the zero (default) variant first. Layers
// the tuner has nothing to offer (non-conv, depthwise) get nil. The
// grid adapts to the layer's GEMM dims — block sizes that exceed the
// problem collapse into the default and are skipped — and to the host
// (registered kernel variants, GOMAXPROCS).
func Space(l *nn.Layer, base *primitives.Primitive) []Variant {
	if l.Kind != nn.OpConv {
		return nil
	}
	_, n, k := gemmDims(l, base)
	kernelGrid := append([]string{""}, gemm.KernelVariants()...)
	kcGrid := clampGrid([]int{0, 16, 32, 64, 128, 256}, k)
	ncGrid := clampGrid([]int{0, 32, 64, 128, 256}, n)
	panelGrid := []int{0}
	if base.Lower != primitives.Kn2row && l.Conv.GroupCount() == 1 {
		// Panel tiling applies to the materialized im2col/im2row
		// matrices only; kn2row and grouped convs never build one.
		panelGrid = clampGrid([]int{0, 1, 2, 4, 8}, l.OutShape.H)
	}
	workerGrid := []int{0}
	if procs := pool.DefaultWorkers(); procs > 1 {
		workerGrid = append(workerGrid, procs)
	}
	var out []Variant
	for _, w := range workerGrid {
		for _, kn := range kernelGrid {
			for _, kc := range kcGrid {
				for _, nc := range ncGrid {
					for _, p := range panelGrid {
						out = append(out, Variant{Kernel: kn, KC: kc, NC: nc, Panel: p, Workers: w})
					}
				}
			}
		}
	}
	return out
}

// clampGrid drops grid points that meet or exceed the problem size —
// they behave exactly like 0 (no blocking), so measuring them would
// waste budget on duplicates.
func clampGrid(grid []int, limit int) []int {
	out := grid[:0:0]
	for _, g := range grid {
		if g == 0 || g < limit {
			out = append(out, g)
		}
	}
	return out
}

// featureDim is the surrogate input width; see features.
const featureDim = 12

// features maps (layer shape, variant) to the surrogate's input
// vector. All entries are bounded and deterministic: log-compressed
// GEMM dims, blocking fractions (quadratic terms let the regressor
// model a cache-sweet-spot interior optimum), panel fraction, worker
// count, and the register-tile geometry of the chosen kernel.
func features(l *nn.Layer, base *primitives.Primitive, v Variant) []float64 {
	m, n, k := gemmDims(l, base)
	kcFrac := 1.0
	if v.KC > 0 && v.KC < k {
		kcFrac = float64(v.KC) / float64(k)
	}
	ncFrac := 1.0
	if v.NC > 0 && v.NC < n {
		ncFrac = float64(v.NC) / float64(n)
	}
	panelFrac := 1.0
	if v.Panel > 0 && v.Panel < l.OutShape.H {
		panelFrac = float64(v.Panel) / float64(l.OutShape.H)
	}
	mr, nr, ok := gemm.KernelShape(v.Kernel)
	dispatched := 0.0
	if !ok {
		// "" or unknown: the dispatched kernel runs.
		mr, nr = 4, 8
		dispatched = 1.0
	}
	workers := float64(v.Workers)
	if v.Workers <= 0 {
		workers = 1
	}
	return []float64{
		1,
		math.Log1p(float64(m)),
		math.Log1p(float64(n)),
		math.Log1p(float64(k)),
		kcFrac,
		kcFrac * kcFrac,
		ncFrac,
		ncFrac * ncFrac,
		panelFrac,
		math.Log2(workers + 1),
		math.Log2(float64(mr * nr)),
		dispatched,
	}
}
