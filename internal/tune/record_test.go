package tune

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/models"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/store"
	"repro/internal/tensor"
)

// tunerRecord is the BENCH_tuner.json schema: the machine-readable
// tuned-vs-default evidence scripts/bench.sh emits and EXPERIMENTS.md
// quotes.
type tunerRecord struct {
	GemmKernel string       `json:"gemm_kernel"`
	Network    string       `json:"network"`
	Budget     int          `json:"budget"`
	Stats      Stats        `json:"stats"`
	Entries    []tunerEntry `json:"entries"`
	// SearchDefaultMs / SearchTunedMs are the end-to-end searched
	// engine times (core.Search over the same profiled table without
	// and with the tuned candidates applied).
	SearchDefaultMs float64 `json:"search_default_ms"`
	SearchTunedMs   float64 `json:"search_tuned_ms"`
}

type tunerEntry struct {
	Layer     int     `json:"layer"`
	Base      string  `json:"base"`
	Variant   string  `json:"variant"`
	DefaultMs float64 `json:"default_ms"`
	TunedMs   float64 `json:"tuned_ms"`
	Speedup   float64 `json:"speedup"`
}

// TestTunerRecord is the scripts/bench.sh hook: with QSDNN_TUNER_OUT
// set it autotunes a real zoo network on the host engine and writes
// the tuned-vs-default record. QSDNN_TUNER_BUDGET overrides the
// per-pair measurement budget (default 8; CI smoke uses 4),
// QSDNN_TUNER_NET the network (default lenet5).
func TestTunerRecord(t *testing.T) {
	out := os.Getenv("QSDNN_TUNER_OUT")
	if out == "" {
		t.Skip("set QSDNN_TUNER_OUT to record a tuning run (see scripts/bench.sh)")
	}
	budget := 8
	if s := os.Getenv("QSDNN_TUNER_BUDGET"); s != "" {
		b, err := strconv.Atoi(s)
		if err != nil || b < 2 {
			t.Fatalf("QSDNN_TUNER_BUDGET=%q: want an integer >= 2", s)
		}
		budget = b
	}
	netName := os.Getenv("QSDNN_TUNER_NET")
	if netName == "" {
		netName = "lenet5"
	}
	net, err := models.Build(netName)
	if err != nil {
		t.Fatal(err)
	}

	primitives.EnableTunedVariants()
	const seed = 1
	eng := engine.New(net, seed, 0, engine.Parallelism(0))
	in := tensor.New(net.InputShape, tensor.NCHW)
	in.FillRandom(rand.New(rand.NewSource(seed)), 1)
	src, err := engine.NewSource(eng, in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tab, _, err := profile.RunFallible(ctx, net, src, profile.Options{
		Mode: primitives.ModeCPU, Samples: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defRes := core.Search(tab, core.Config{Episodes: 500, Seed: seed})

	opts := DefaultOptions()
	opts.Budget = budget
	opts.Seed = seed
	cache, err := Tune(ctx, net, tab, EngineMeasurer{Src: src}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Marshal(); err != nil {
		t.Fatal(err)
	}
	applied, skipped := cache.Apply(tab, net)
	if skipped != 0 {
		t.Errorf("%d fresh entries skipped on the table they were tuned for", skipped)
	}
	for _, a := range applied {
		eng.SetTuned(a.Layer, a.Twin, a.Variant.Conv())
	}
	tunedRes := core.Search(tab, core.Config{Episodes: 500, Seed: seed})

	rec := tunerRecord{
		GemmKernel:      gemm.ActiveKernel(),
		Network:         netName,
		Budget:          cache.Budget,
		Stats:           cache.Stats,
		SearchDefaultMs: defRes.Time * 1e3,
		SearchTunedMs:   tunedRes.Time * 1e3,
	}
	for _, e := range cache.Entries {
		rec.Entries = append(rec.Entries, tunerEntry{
			Layer: e.Layer, Base: e.Base, Variant: e.Variant.String(),
			DefaultMs: e.DefaultSec * 1e3, TunedMs: e.Seconds * 1e3,
			Speedup: e.DefaultSec / e.Seconds,
		})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAtomic(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d tuned entries, best speedup %.2fx, searched %0.3f -> %0.3f ms",
		out, len(rec.Entries), rec.Stats.BestSpeedup, rec.SearchDefaultMs, rec.SearchTunedMs)

	// The acceptance gate: at least one tuned variant beats its
	// default by >= 10% on a real zoo conv shape, and the searched
	// engine got no slower.
	best := 0.0
	for _, e := range rec.Entries {
		if e.Speedup > best {
			best = e.Speedup
		}
	}
	if best < 1.10 {
		t.Errorf("no tuned variant beat its default by >= 10%% (best %.3fx)", best)
	}
	if rec.SearchTunedMs > rec.SearchDefaultMs*1.001 {
		t.Errorf("tuned candidates made the searched engine slower: %.3f -> %.3f ms",
			rec.SearchDefaultMs, rec.SearchTunedMs)
	}
}
