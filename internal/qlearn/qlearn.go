// Package qlearn implements the tabular Q-learning machinery of §IV-B
// and §V-B of the paper: the action-value table over (layer, primitive)
// states, the Bellman update of eq. (2), the ε-greedy schedule (50 % of
// episodes at full exploration, then 5 % at each ε from 0.9 downwards),
// and the size-128 experience-replay buffer adopted from Baker et al.
package qlearn

import (
	"fmt"
	"math/rand"
)

// Config holds the agent hyper-parameters. The paper sets the learning
// rate to 0.05 and the discount factor to 0.9 "to give slightly more
// importance to short-term rewards", with a replay buffer of 128.
type Config struct {
	// Alpha is the learning rate α of eq. (2).
	Alpha float64
	// Gamma is the discount factor γ.
	Gamma float64
	// ReplaySize is the experience-replay buffer capacity (episodes).
	ReplaySize int
}

// PaperConfig returns the hyper-parameters used throughout the paper.
func PaperConfig() Config {
	return Config{Alpha: 0.05, Gamma: 0.9, ReplaySize: 128}
}

// Phase is one ε plateau of the exploration schedule.
type Phase struct {
	// Epsilon is the exploration probability during the phase.
	Epsilon float64
	// Episodes is the number of episodes the phase lasts.
	Episodes int
}

// PaperSchedule builds the paper's schedule for the given episode
// budget: 50 % of episodes at ε = 1 (full exploration), then ten equal
// plateaus of 5 % each at ε = 0.9, 0.8, …, 0.1, 0 (Fig. 4: ε decreases
// by 0.1 every 50 episodes of a 1000-episode run after episode 500).
func PaperSchedule(total int) []Phase {
	if total <= 0 {
		return nil
	}
	full := total / 2
	rest := total - full
	phases := []Phase{{Epsilon: 1, Episodes: full}}
	step := rest / 10
	used := 0
	for i := 0; i < 10; i++ {
		n := step
		if i == 9 {
			n = rest - used // absorb rounding in the final plateau
		}
		if n <= 0 {
			continue
		}
		phases = append(phases, Phase{Epsilon: 0.9 - 0.1*float64(i), Episodes: n})
		used += n
	}
	return phases
}

// ScheduleEpisodes sums the episode counts of a schedule.
func ScheduleEpisodes(phases []Phase) int {
	n := 0
	for _, ph := range phases {
		n += ph.Episodes
	}
	return n
}

// EpsilonAt returns the ε in force at the given zero-based episode.
func EpsilonAt(phases []Phase, episode int) float64 {
	for _, ph := range phases {
		if episode < ph.Episodes {
			return ph.Epsilon
		}
		episode -= ph.Episodes
	}
	if len(phases) == 0 {
		return 0
	}
	return phases[len(phases)-1].Epsilon
}

// Table is the action-value function Q(s, a) with states
// s = (step, primitive-at-step) and actions a = primitive at the next
// step, stored densely. Values start at zero.
type Table struct {
	steps, prims int
	q            []float64
}

// NewTable allocates a Q-table for a walk of the given number of steps
// over the given primitive-registry size.
func NewTable(steps, prims int) *Table {
	if steps <= 0 || prims <= 0 {
		panic(fmt.Sprintf("qlearn: invalid table dims %dx%d", steps, prims))
	}
	return &Table{steps: steps, prims: prims, q: make([]float64, steps*prims*prims)}
}

// Steps returns the walk length the table covers.
func (t *Table) Steps() int { return t.steps }

func (t *Table) idx(step, prim, action int) int {
	return (step*t.prims+prim)*t.prims + action
}

// Get returns Q((step, prim), action).
func (t *Table) Get(step, prim, action int) float64 { return t.q[t.idx(step, prim, action)] }

// Set assigns Q((step, prim), action).
func (t *Table) Set(step, prim, action int, v float64) { t.q[t.idx(step, prim, action)] = v }

// Best returns the action with the highest Q-value among the allowed
// actions, breaking ties uniformly at random with rng (nil rng breaks
// ties by first occurrence).
func (t *Table) Best(step, prim int, allowed []int, rng *rand.Rand) int {
	if len(allowed) == 0 {
		panic("qlearn: Best with no allowed actions")
	}
	best := allowed[0]
	bestV := t.Get(step, prim, best)
	ties := 1
	for _, a := range allowed[1:] {
		v := t.Get(step, prim, a)
		switch {
		case v > bestV:
			best, bestV, ties = a, v, 1
		case v == bestV && rng != nil:
			ties++
			if rng.Intn(ties) == 0 {
				best = a
			}
		}
	}
	return best
}

// MaxQ returns the maximum Q-value at (step, prim) over the allowed
// actions, or 0 when no actions remain (terminal state).
func (t *Table) MaxQ(step, prim int, allowed []int) float64 {
	if len(allowed) == 0 {
		return 0
	}
	best := t.Get(step, prim, allowed[0])
	for _, a := range allowed[1:] {
		if v := t.Get(step, prim, a); v > best {
			best = v
		}
	}
	return best
}

// Transition is one step of an episode: in state (Step, Prim) the
// agent took Action and received Reward; NextAllowed lists the actions
// available in the successor state (nil at the terminal step).
type Transition struct {
	Step, Prim, Action int
	Reward             float64
	NextAllowed        []int
}

// Update applies eq. (2) to one transition:
//
//	Q(s,a) ← Q(s,a)(1-α) + α [ r + γ max_a' Q(s', a') ]
func (t *Table) Update(tr Transition, cfg Config) {
	target := tr.Reward + cfg.Gamma*t.MaxQ(tr.Step+1, tr.Action, tr.NextAllowed)
	old := t.Get(tr.Step, tr.Prim, tr.Action)
	t.Set(tr.Step, tr.Prim, tr.Action, old*(1-cfg.Alpha)+cfg.Alpha*target)
}

// UpdateEpisode applies Update to every transition of a trajectory in
// reverse order, so late rewards propagate backwards within a single
// pass.
func (t *Table) UpdateEpisode(traj []Transition, cfg Config) {
	for i := len(traj) - 1; i >= 0; i-- {
		t.Update(traj[i], cfg)
	}
}

// Replay is the fixed-capacity experience buffer: it stores complete
// episode trajectories and replays a sample of them after each episode.
type Replay struct {
	cap  int
	buf  [][]Transition
	next int
	full bool
}

// NewReplay allocates a buffer with the given capacity (episodes).
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{cap: capacity, buf: make([][]Transition, 0, capacity)}
}

// Len returns the number of stored episodes.
func (r *Replay) Len() int { return len(r.buf) }

// Add stores a trajectory, evicting the oldest once full.
func (r *Replay) Add(traj []Transition) {
	cp := make([]Transition, len(traj))
	copy(cp, traj)
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, cp)
		return
	}
	r.buf[r.next] = cp
	r.next = (r.next + 1) % r.cap
	r.full = true
}

// ReplayInto re-applies up to n uniformly sampled stored episodes to
// the Q-table.
func (r *Replay) ReplayInto(t *Table, cfg Config, n int, rng *rand.Rand) {
	if len(r.buf) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		t.UpdateEpisode(r.buf[rng.Intn(len(r.buf))], cfg)
	}
}
