// Package qlearn implements the tabular Q-learning machinery of §IV-B
// and §V-B of the paper: the action-value table over (layer, primitive)
// states, the Bellman update of eq. (2), the ε-greedy schedule (50 % of
// episodes at full exploration, then 5 % at each ε from 0.9 downwards),
// and the size-128 experience-replay buffer adopted from Baker et al.
package qlearn

import (
	"fmt"
	"math"
	"math/rand"
)

// Config holds the agent hyper-parameters. The paper sets the learning
// rate to 0.05 and the discount factor to 0.9 "to give slightly more
// importance to short-term rewards", with a replay buffer of 128.
type Config struct {
	// Alpha is the learning rate α of eq. (2).
	Alpha float64
	// Gamma is the discount factor γ.
	Gamma float64
	// ReplaySize is the experience-replay buffer capacity (episodes).
	ReplaySize int
}

// PaperConfig returns the hyper-parameters used throughout the paper.
func PaperConfig() Config {
	return Config{Alpha: 0.05, Gamma: 0.9, ReplaySize: 128}
}

// Phase is one ε plateau of the exploration schedule.
type Phase struct {
	// Epsilon is the exploration probability during the phase.
	Epsilon float64
	// Episodes is the number of episodes the phase lasts.
	Episodes int
}

// PaperSchedule builds the paper's schedule for the given episode
// budget: 50 % of episodes at ε = 1 (full exploration), then ten equal
// plateaus of 5 % each at ε = 0.9, 0.8, …, 0.1, 0 (Fig. 4: ε decreases
// by 0.1 every 50 episodes of a 1000-episode run after episode 500).
func PaperSchedule(total int) []Phase {
	if total <= 0 {
		return nil
	}
	full := total / 2
	rest := total - full
	phases := []Phase{{Epsilon: 1, Episodes: full}}
	step := rest / 10
	used := 0
	for i := 0; i < 10; i++ {
		n := step
		if i == 9 {
			n = rest - used // absorb rounding in the final plateau
		}
		if n <= 0 {
			continue
		}
		phases = append(phases, Phase{Epsilon: 0.9 - 0.1*float64(i), Episodes: n})
		used += n
	}
	return phases
}

// ScheduleEpisodes sums the episode counts of a schedule.
func ScheduleEpisodes(phases []Phase) int {
	n := 0
	for _, ph := range phases {
		n += ph.Episodes
	}
	return n
}

// EpsilonAt returns the ε in force at the given zero-based episode.
func EpsilonAt(phases []Phase, episode int) float64 {
	for _, ph := range phases {
		if episode < ph.Episodes {
			return ph.Epsilon
		}
		episode -= ph.Episodes
	}
	if len(phases) == 0 {
		return 0
	}
	return phases[len(phases)-1].Epsilon
}

// Table is the action-value function Q(s, a) with states
// s = (step, primitive-at-step) and actions a = primitive at the next
// step, stored densely. Values start at zero.
//
// A table may be *shaped* (see Shape) for a fixed per-step action
// vocabulary: the action dimension of each step's rows is then stored
// permuted so that the step's allowed actions occupy the leading
// positions in vocabulary order, which turns the hot successor-max
// scans into walks over a contiguous row prefix. Shaping is a pure
// layout change — every accessor translates through the permutation,
// so observable values (and un-shaped snapshots) are bit-identical to
// an unshaped table's.
type Table struct {
	steps, prims int
	q            []float64
	// perm[s*prims+a] is the stored column of action a at step s and
	// inv its inverse; nil when the table is unshaped (identity).
	perm, inv []int32
	// shapedRef[s] is &allowed[0] of the vocabulary Shape was given
	// (nil for steps with none) — an identity fast-path test, and
	// shapedW[s] its length.
	shapedRef []*int
	shapedW   []int32
	// gen counts layout changes so replay caches can detect them.
	gen int
}

// NewTable allocates a Q-table for a walk of the given number of steps
// over the given primitive-registry size.
func NewTable(steps, prims int) *Table {
	if steps <= 0 || prims <= 0 {
		panic(fmt.Sprintf("qlearn: invalid table dims %dx%d", steps, prims))
	}
	return &Table{steps: steps, prims: prims, q: make([]float64, steps*prims*prims)}
}

// Steps returns the walk length the table covers.
func (t *Table) Steps() int { return t.steps }

// Shape fixes the per-step action vocabulary and permutes the action
// dimension of the stored rows so each step's vocabulary occupies the
// leading positions in vocabulary order. allowed[s] lists the actions
// available at step s (nil for steps with none, e.g. the terminal
// one); each must be a duplicate-free subset of [0, prims). The
// search engine shapes its table once per run: the successor-max of
// the Bellman update then scans a contiguous row prefix instead of
// gathering through an index list. Re-shaping preserves all stored
// values. The vocabulary slices are retained (not copied) both as the
// scan order and as identity fast-path keys, so callers must not
// mutate them while the table is shaped.
func (t *Table) Shape(allowed [][]int) error {
	if len(allowed) != t.steps {
		return fmt.Errorf("qlearn: Shape got %d step vocabularies, table has %d steps", len(allowed), t.steps)
	}
	np := t.prims
	perm := make([]int32, t.steps*np)
	inv := make([]int32, t.steps*np)
	refs := make([]*int, t.steps)
	ws := make([]int32, t.steps)
	for s := 0; s < t.steps; s++ {
		pm := perm[s*np : (s+1)*np]
		for a := range pm {
			pm[a] = -1
		}
		c := int32(0)
		for _, a := range allowed[s] {
			if a < 0 || a >= np || pm[a] >= 0 {
				return fmt.Errorf("qlearn: Shape step %d: invalid or duplicate action %d", s, a)
			}
			pm[a] = c
			c++
		}
		for a := 0; a < np; a++ {
			if pm[a] < 0 {
				pm[a] = c
				c++
			}
		}
		iv := inv[s*np : (s+1)*np]
		for a, p := range pm {
			iv[p] = int32(a)
		}
		if len(allowed[s]) > 0 {
			refs[s] = &allowed[s][0]
			ws[s] = int32(len(allowed[s]))
		}
	}
	t.Unshape()
	tmp := make([]float64, np)
	for s := 0; s < t.steps; s++ {
		pm := perm[s*np : (s+1)*np]
		for p := 0; p < np; p++ {
			row := t.q[(s*np+p)*np : (s*np+p+1)*np]
			for a, c := range pm {
				tmp[c] = row[a]
			}
			copy(row, tmp)
		}
	}
	t.perm, t.inv, t.shapedRef, t.shapedW = perm, inv, refs, ws
	t.gen++
	return nil
}

// Unshape restores the canonical action layout. No-op when unshaped.
func (t *Table) Unshape() {
	if t.perm == nil {
		return
	}
	np := t.prims
	tmp := make([]float64, np)
	for s := 0; s < t.steps; s++ {
		iv := t.inv[s*np : (s+1)*np]
		for p := 0; p < np; p++ {
			row := t.q[(s*np+p)*np : (s*np+p+1)*np]
			for c, a := range iv {
				tmp[a] = row[c]
			}
			copy(row, tmp)
		}
	}
	t.perm, t.inv, t.shapedRef, t.shapedW = nil, nil, nil, nil
	t.gen++
}

// canonicalQ writes the table's values into dst in the canonical
// (unshaped) layout; dst must have len(q) entries.
func (t *Table) canonicalQ(dst []float64) {
	if t.perm == nil {
		copy(dst, t.q)
		return
	}
	np := t.prims
	for s := 0; s < t.steps; s++ {
		pm := t.perm[s*np : (s+1)*np]
		for p := 0; p < np; p++ {
			row := t.q[(s*np+p)*np : (s*np+p+1)*np]
			drow := dst[(s*np+p)*np : (s*np+p+1)*np]
			for a, c := range pm {
				drow[a] = row[c]
			}
		}
	}
}

func (t *Table) idx(step, prim, action int) int {
	if t.perm != nil {
		action = int(t.perm[step*t.prims+action])
	}
	return (step*t.prims+prim)*t.prims + action
}

// row returns the contiguous action-value row of state (step, prim).
// The inner loops of Best, MaxQ and the Bellman update walk this slice
// directly instead of recomputing the full index per action — the
// values read are the same ones idx addresses.
func (t *Table) row(step, prim int) []float64 {
	base := (step*t.prims + prim) * t.prims
	return t.q[base : base+t.prims]
}

// Get returns Q((step, prim), action).
func (t *Table) Get(step, prim, action int) float64 { return t.q[t.idx(step, prim, action)] }

// Set assigns Q((step, prim), action).
func (t *Table) Set(step, prim, action int, v float64) { t.q[t.idx(step, prim, action)] = v }

// Best returns the action with the highest Q-value among the allowed
// actions, breaking ties uniformly at random with rng (nil rng breaks
// ties by first occurrence).
func (t *Table) Best(step, prim int, allowed []int, rng *rand.Rand) int {
	if len(allowed) == 0 {
		panic("qlearn: Best with no allowed actions")
	}
	row := t.row(step, prim)
	if t.perm != nil {
		// Shaped vocabulary: the scan runs over the contiguous row
		// prefix in the same order the unshaped scan visits allowed,
		// so values, comparisons and tie-break draws are identical.
		if t.shapedRef[step] == &allowed[0] && int(t.shapedW[step]) == len(allowed) {
			best := 0
			bestV := row[0]
			ties := 1
			for c := 1; c < len(allowed); c++ {
				v := row[c]
				switch {
				case v > bestV:
					best, bestV, ties = c, v, 1
				case v == bestV && rng != nil:
					ties++
					if rng.Intn(ties) == 0 {
						best = c
					}
				}
			}
			return allowed[best]
		}
		pm := t.perm[step*t.prims : (step+1)*t.prims]
		best := allowed[0]
		bestV := row[pm[best]]
		ties := 1
		for _, a := range allowed[1:] {
			v := row[pm[a]]
			switch {
			case v > bestV:
				best, bestV, ties = a, v, 1
			case v == bestV && rng != nil:
				ties++
				if rng.Intn(ties) == 0 {
					best = a
				}
			}
		}
		return best
	}
	best := allowed[0]
	bestV := row[best]
	ties := 1
	for _, a := range allowed[1:] {
		v := row[a]
		switch {
		case v > bestV:
			best, bestV, ties = a, v, 1
		case v == bestV && rng != nil:
			ties++
			if rng.Intn(ties) == 0 {
				best = a
			}
		}
	}
	return best
}

// MaxQ returns the maximum Q-value at (step, prim) over the allowed
// actions, or 0 when no actions remain (terminal state).
func (t *Table) MaxQ(step, prim int, allowed []int) float64 {
	if len(allowed) == 0 {
		return 0
	}
	row := t.row(step, prim)
	if t.perm != nil {
		if t.shapedRef[step] == &allowed[0] && int(t.shapedW[step]) == len(allowed) {
			best := row[0]
			for _, v := range row[1:len(allowed)] {
				if v > best {
					best = v
				}
			}
			return best
		}
		pm := t.perm[step*t.prims : (step+1)*t.prims]
		best := row[pm[allowed[0]]]
		for _, a := range allowed[1:] {
			if v := row[pm[a]]; v > best {
				best = v
			}
		}
		return best
	}
	best := row[allowed[0]]
	for _, a := range allowed[1:] {
		if v := row[a]; v > best {
			best = v
		}
	}
	return best
}

// Transition is one step of an episode: in state (Step, Prim) the
// agent took Action and received Reward; NextAllowed lists the actions
// available in the successor state (nil at the terminal step).
type Transition struct {
	Step, Prim, Action int
	Reward             float64
	NextAllowed        []int
}

// Update applies eq. (2) to one transition:
//
//	Q(s,a) ← Q(s,a)(1-α) + α [ r + γ max_a' Q(s', a') ]
func (t *Table) Update(tr Transition, cfg Config) {
	target := tr.Reward + cfg.Gamma*t.MaxQ(tr.Step+1, tr.Action, tr.NextAllowed)
	row := t.row(tr.Step, tr.Prim)
	c := tr.Action
	if t.perm != nil {
		c = int(t.perm[tr.Step*t.prims+tr.Action])
	}
	row[c] = row[c]*(1-cfg.Alpha) + cfg.Alpha*target
}

// UpdateEpisode applies Update to every transition of a trajectory in
// reverse order, so late rewards propagate backwards within a single
// pass.
//
// This is the innermost loop of the whole search (the replay pass
// re-applies it ReplaySize times per episode), so the Bellman update
// is fused here: successor-row max and value update run over directly
// indexed contiguous rows with the state stride hoisted out of the
// loop. The arithmetic is expression-for-expression the same as
// Update's — same operations, same order — so the learned values are
// bit-identical to the per-transition path.
func (t *Table) UpdateEpisode(traj []Transition, cfg Config) {
	q, np := t.q, t.prims
	stride := np * np
	keep := 1 - cfg.Alpha
	for i := len(traj) - 1; i >= 0; i-- {
		tr := &traj[i]
		var maxNext float64
		if na := tr.NextAllowed; len(na) > 0 {
			base := (tr.Step+1)*stride + tr.Action*np
			row := q[base : base+np]
			switch {
			case t.perm == nil:
				maxNext = row[na[0]]
				for _, a := range na[1:] {
					if v := row[a]; v > maxNext {
						maxNext = v
					}
				}
			case t.shapedRef[tr.Step+1] == &na[0] && int(t.shapedW[tr.Step+1]) == len(na):
				maxNext = row[0]
				for _, v := range row[1:len(na)] {
					if v > maxNext {
						maxNext = v
					}
				}
			default:
				pm := t.perm[(tr.Step+1)*np : (tr.Step+2)*np]
				maxNext = row[pm[na[0]]]
				for _, a := range na[1:] {
					if v := row[pm[a]]; v > maxNext {
						maxNext = v
					}
				}
			}
		}
		target := tr.Reward + cfg.Gamma*maxNext
		k := tr.Step*stride + tr.Prim*np + tr.Action
		if t.perm != nil {
			k = tr.Step*stride + tr.Prim*np + int(t.perm[tr.Step*np+tr.Action])
		}
		q[k] = q[k]*keep + cfg.Alpha*target
	}
}

// Replay is the fixed-capacity experience buffer: it stores complete
// episode trajectories and replays a sample of them after each episode.
//
// Storage is a ring over one preallocated backing slab: within a
// search every episode has the same length (layers − 1), so the slab
// is sized capacity×length at the first Add and each slot's copy goes
// into its fixed region — steady-state Adds perform zero heap
// allocations. Trajectories of a different length (possible only when
// a checkpoint restored from foreign bytes carries them) fall back to
// a per-episode allocation; behavior is otherwise identical.
type Replay struct {
	cap  int
	buf  [][]Transition
	next int
	// slab backs the trajectory copies; epLen is the episode length it
	// was shaped for (-1 until the first non-empty Add fixes it).
	slab  []Transition
	epLen int
	// Compiled form of the slab episodes, rebuilt lazily per slot on
	// the first replay after the slot changes: cks is the flat Q index
	// each transition updates, crows the successor state's row slice
	// into the table's backing array (nil at the terminal step; the
	// vocabulary-width prefix when the table is shaped, the full row
	// otherwise), crw the reward. A replay pass re-applies each stored
	// episode ~ReplaySize times, so deriving these indices and slice
	// headers once per Add instead of per replayed transition takes
	// the (step, prim, action) arithmetic and the row bounds checks
	// out of the innermost loop of the whole search. Against a shaped
	// table (see Table.Shape) the replay loop walks crows[i] — a
	// contiguous row prefix in vocabulary order — with no index gather
	// at all. cok marks slots that live in the slab; cuse marks slots
	// the compiled path may replay (slab-resident and, when shaped,
	// vocabulary-identical); cdirty marks slots whose arrays are
	// stale. cnp, ctab and cgen pin the dimensions, table and layout
	// generation the compilation is valid for.
	cks    []int32
	crows  [][]float64
	crw    []float64
	cok    []bool
	cuse   []bool
	cdirty []bool
	cnd    int
	cnp    int
	ctab   *Table
	cgen   int
}

// NewReplay allocates a buffer with the given capacity (episodes).
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{cap: capacity, buf: make([][]Transition, 0, capacity), epLen: -1}
}

// Len returns the number of stored episodes.
func (r *Replay) Len() int { return len(r.buf) }

// Add stores a copy of the trajectory, evicting the oldest once full.
// The caller may reuse traj's backing array immediately.
func (r *Replay) Add(traj []Transition) {
	if r.epLen < 0 && len(traj) > 0 {
		r.epLen = len(traj)
		r.slab = make([]Transition, r.cap*r.epLen)
		r.cok = make([]bool, r.cap)
		r.cuse = make([]bool, r.cap)
		r.cdirty = make([]bool, r.cap)
	}
	slot := r.next
	if len(r.buf) < r.cap {
		slot = len(r.buf)
	}
	var cp []Transition
	if len(traj) == r.epLen {
		cp = r.slab[slot*r.epLen : (slot+1)*r.epLen : (slot+1)*r.epLen]
		copy(cp, traj)
		r.cok[slot] = true
		r.cuse[slot] = false // until the next compile refreshes it
		if !r.cdirty[slot] {
			r.cdirty[slot] = true
			r.cnd++
		}
	} else {
		cp = make([]Transition, len(traj))
		copy(cp, traj)
		if r.cok != nil {
			r.cok[slot] = false
			r.cuse[slot] = false
			if r.cdirty[slot] {
				r.cdirty[slot] = false
				r.cnd--
			}
		}
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, cp)
		return
	}
	r.buf[r.next] = cp
	r.next = (r.next + 1) % r.cap
}

// compile refreshes the per-slot index arrays for t's dimensions.
// Only slab-resident slots are compiled; anything else (heterogeneous
// trajectories from a foreign checkpoint) keeps using UpdateEpisode.
func (r *Replay) compile(t *Table) {
	if r.slab == nil {
		return
	}
	np := t.prims
	stride := np * np
	// Indices are packed into int32; a table too large for that (never
	// the case for real networks) simply disables the compiled path.
	if np <= 0 || t.steps*stride > math.MaxInt32 {
		r.cnp = -1
		return
	}
	full := false
	if r.cks == nil || r.cnp != np || r.ctab != t || r.cgen != t.gen {
		if r.cks == nil {
			n := r.cap * r.epLen
			r.cks = make([]int32, n)
			r.crows = make([][]float64, n)
			r.crw = make([]float64, n)
		}
		r.cnp = np
		r.ctab = t
		r.cgen = t.gen
		full = true
	}
	if !full && r.cnd == 0 {
		return
	}
	for j := range r.buf {
		if !r.cok[j] || !(r.cdirty[j] || full) {
			continue
		}
		off := j * r.epLen
		traj := r.buf[j]
		usable := true
		for i := range traj {
			tr := &traj[i]
			k := tr.Step*stride + tr.Prim*np + tr.Action
			if t.perm != nil {
				if tr.Step < 0 || tr.Step >= t.steps || tr.Action < 0 || tr.Action >= np ||
					tr.Prim < 0 || tr.Prim >= np {
					usable = false
					break
				}
				k = tr.Step*stride + tr.Prim*np + int(t.perm[tr.Step*np+tr.Action])
			}
			r.cks[off+i] = int32(k)
			if na := tr.NextAllowed; len(na) > 0 {
				b := (tr.Step+1)*stride + tr.Action*np
				if t.perm != nil {
					// The contiguous-prefix scan is valid only for the
					// vocabulary the table was shaped with; anything else
					// replays through the translating generic path.
					if tr.Step+1 >= t.steps || t.shapedRef[tr.Step+1] != &na[0] ||
						int(t.shapedW[tr.Step+1]) != len(na) {
						usable = false
						break
					}
					r.crows[off+i] = t.q[b : b+len(na) : b+len(na)]
				} else {
					r.crows[off+i] = t.q[b : b+np : b+np]
				}
			} else {
				r.crows[off+i] = nil
			}
			r.crw[off+i] = tr.Reward
		}
		r.cuse[j] = usable
		if r.cdirty[j] {
			r.cdirty[j] = false
			r.cnd--
		}
	}
}

// ReplayInto re-applies up to n uniformly sampled stored episodes to
// the Q-table.
//
// Slab episodes replay through their compiled index arrays: the loop
// body performs the exact arithmetic of UpdateEpisode — the successor
// max over the same values in the same candidate order, then the same
// update expression — with the flat indices looked up instead of
// recomputed, so the learned values stay bit-identical while the
// per-transition cost drops.
func (r *Replay) ReplayInto(t *Table, cfg Config, n int, rng *rand.Rand) {
	if len(r.buf) == 0 {
		return
	}
	r.compile(t)
	q, np := t.q, t.prims
	keep := 1 - cfg.Alpha
	alpha, gamma := cfg.Alpha, cfg.Gamma
	shaped := t.perm != nil
	for s := 0; s < n; s++ {
		j := rng.Intn(len(r.buf))
		if r.cnp != np || !r.cuse[j] {
			t.UpdateEpisode(r.buf[j], cfg)
			continue
		}
		off := j * r.epLen
		ks := r.cks[off : off+r.epLen]
		rows := r.crows[off : off+r.epLen]
		rw := r.crw[off : off+r.epLen]
		if shaped {
			// Shaped layout: each successor scan is a contiguous row
			// prefix in vocabulary order — no index gather at all. The
			// leading loads let the compiler drop the per-transition
			// bounds checks (epLen ≥ 1 whenever the slab exists).
			_ = ks[len(rows)-1]
			_ = rw[len(rows)-1]
			for i := len(rows) - 1; i >= 0; i-- {
				var maxNext float64
				if row := rows[i]; len(row) > 0 {
					maxNext = row[0]
					for _, v := range row[1:] {
						if v > maxNext {
							maxNext = v
						}
					}
				}
				target := rw[i] + gamma*maxNext
				k := ks[i]
				q[k] = q[k]*keep + alpha*target
			}
			continue
		}
		traj := r.buf[j]
		for i := r.epLen - 1; i >= 0; i-- {
			var maxNext float64
			if row := rows[i]; row != nil {
				na := traj[i].NextAllowed
				maxNext = row[na[0]]
				for _, a := range na[1:] {
					if v := row[a]; v > maxNext {
						maxNext = v
					}
				}
			}
			target := rw[i] + gamma*maxNext
			k := ks[i]
			q[k] = q[k]*keep + alpha*target
		}
	}
}
