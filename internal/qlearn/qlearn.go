// Package qlearn implements the tabular Q-learning machinery of §IV-B
// and §V-B of the paper: the action-value table over (layer, primitive)
// states, the Bellman update of eq. (2), the ε-greedy schedule (50 % of
// episodes at full exploration, then 5 % at each ε from 0.9 downwards),
// and the size-128 experience-replay buffer adopted from Baker et al.
package qlearn

import (
	"fmt"
	"math"
	"math/rand"
)

// Config holds the agent hyper-parameters. The paper sets the learning
// rate to 0.05 and the discount factor to 0.9 "to give slightly more
// importance to short-term rewards", with a replay buffer of 128.
type Config struct {
	// Alpha is the learning rate α of eq. (2).
	Alpha float64
	// Gamma is the discount factor γ.
	Gamma float64
	// ReplaySize is the experience-replay buffer capacity (episodes).
	ReplaySize int
	// BatchedReplay switches Replay.ReplayInto to the wave-ordered
	// batched Bellman scheme: all sampled episodes advance through the
	// trajectory together, one position per wave, with targets computed
	// for the whole wave before any update lands. This shortens the
	// store→load dependent chain from samples×length to length and is
	// measurably faster, but the update ORDER differs from the serial
	// default — a sample's target sees every sample's later-position
	// updates and no sample's earlier-position ones — so learned values
	// are deterministic yet not byte-identical to serial replay. Off by
	// default; the serial path stays pinned by the original goldens and
	// the batched path by its own.
	BatchedReplay bool
}

// PaperConfig returns the hyper-parameters used throughout the paper.
func PaperConfig() Config {
	return Config{Alpha: 0.05, Gamma: 0.9, ReplaySize: 128}
}

// Phase is one ε plateau of the exploration schedule.
type Phase struct {
	// Epsilon is the exploration probability during the phase.
	Epsilon float64
	// Episodes is the number of episodes the phase lasts.
	Episodes int
}

// PaperSchedule builds the paper's schedule for the given episode
// budget: 50 % of episodes at ε = 1 (full exploration), then ten equal
// plateaus of 5 % each at ε = 0.9, 0.8, …, 0.1, 0 (Fig. 4: ε decreases
// by 0.1 every 50 episodes of a 1000-episode run after episode 500).
func PaperSchedule(total int) []Phase {
	if total <= 0 {
		return nil
	}
	full := total / 2
	rest := total - full
	phases := []Phase{{Epsilon: 1, Episodes: full}}
	step := rest / 10
	used := 0
	for i := 0; i < 10; i++ {
		n := step
		if i == 9 {
			n = rest - used // absorb rounding in the final plateau
		}
		if n <= 0 {
			continue
		}
		phases = append(phases, Phase{Epsilon: 0.9 - 0.1*float64(i), Episodes: n})
		used += n
	}
	return phases
}

// ScheduleEpisodes sums the episode counts of a schedule.
func ScheduleEpisodes(phases []Phase) int {
	n := 0
	for _, ph := range phases {
		n += ph.Episodes
	}
	return n
}

// EpsilonAt returns the ε in force at the given zero-based episode.
func EpsilonAt(phases []Phase, episode int) float64 {
	for _, ph := range phases {
		if episode < ph.Episodes {
			return ph.Epsilon
		}
		episode -= ph.Episodes
	}
	if len(phases) == 0 {
		return 0
	}
	return phases[len(phases)-1].Epsilon
}

// Table is the action-value function Q(s, a) with states
// s = (step, primitive-at-step) and actions a = primitive at the next
// step, stored densely. Values start at zero.
//
// A table may be *shaped* (see Shape) for a fixed per-step action
// vocabulary: the action dimension of each step's rows is then stored
// permuted so that the step's allowed actions occupy the leading
// positions in vocabulary order, which turns the hot successor-max
// scans into walks over a contiguous row prefix. Shaping is a pure
// layout change — every accessor translates through the permutation,
// so observable values (and un-shaped snapshots) are bit-identical to
// an unshaped table's.
type Table struct {
	steps, prims int
	q            []float64
	// perm[s*prims+a] is the stored column of action a at step s and
	// inv its inverse; nil when the table is unshaped (identity).
	perm, inv []int32
	// shapedRef[s] is &allowed[0] of the vocabulary Shape was given
	// (nil for steps with none) — an identity fast-path test, and
	// shapedW[s] its length.
	shapedRef []*int
	shapedW   []int32
	// gen counts layout changes so replay caches can detect them.
	gen int
}

// NewTable allocates a Q-table for a walk of the given number of steps
// over the given primitive-registry size.
func NewTable(steps, prims int) *Table {
	if steps <= 0 || prims <= 0 {
		panic(fmt.Sprintf("qlearn: invalid table dims %dx%d", steps, prims))
	}
	return &Table{steps: steps, prims: prims, q: make([]float64, steps*prims*prims)}
}

// Steps returns the walk length the table covers.
func (t *Table) Steps() int { return t.steps }

// Shape fixes the per-step action vocabulary and permutes the action
// dimension of the stored rows so each step's vocabulary occupies the
// leading positions in vocabulary order. allowed[s] lists the actions
// available at step s (nil for steps with none, e.g. the terminal
// one); each must be a duplicate-free subset of [0, prims). The
// search engine shapes its table once per run: the successor-max of
// the Bellman update then scans a contiguous row prefix instead of
// gathering through an index list. Re-shaping preserves all stored
// values. The vocabulary slices are retained (not copied) both as the
// scan order and as identity fast-path keys, so callers must not
// mutate them while the table is shaped.
func (t *Table) Shape(allowed [][]int) error {
	if len(allowed) != t.steps {
		return fmt.Errorf("qlearn: Shape got %d step vocabularies, table has %d steps", len(allowed), t.steps)
	}
	np := t.prims
	perm := make([]int32, t.steps*np)
	inv := make([]int32, t.steps*np)
	refs := make([]*int, t.steps)
	ws := make([]int32, t.steps)
	for s := 0; s < t.steps; s++ {
		pm := perm[s*np : (s+1)*np]
		for a := range pm {
			pm[a] = -1
		}
		c := int32(0)
		for _, a := range allowed[s] {
			if a < 0 || a >= np || pm[a] >= 0 {
				return fmt.Errorf("qlearn: Shape step %d: invalid or duplicate action %d", s, a)
			}
			pm[a] = c
			c++
		}
		for a := 0; a < np; a++ {
			if pm[a] < 0 {
				pm[a] = c
				c++
			}
		}
		iv := inv[s*np : (s+1)*np]
		for a, p := range pm {
			iv[p] = int32(a)
		}
		if len(allowed[s]) > 0 {
			refs[s] = &allowed[s][0]
			ws[s] = int32(len(allowed[s]))
		}
	}
	t.Unshape()
	tmp := make([]float64, np)
	for s := 0; s < t.steps; s++ {
		pm := perm[s*np : (s+1)*np]
		for p := 0; p < np; p++ {
			row := t.q[(s*np+p)*np : (s*np+p+1)*np]
			for a, c := range pm {
				tmp[c] = row[a]
			}
			copy(row, tmp)
		}
	}
	t.perm, t.inv, t.shapedRef, t.shapedW = perm, inv, refs, ws
	t.gen++
	return nil
}

// Unshape restores the canonical action layout. No-op when unshaped.
func (t *Table) Unshape() {
	if t.perm == nil {
		return
	}
	np := t.prims
	tmp := make([]float64, np)
	for s := 0; s < t.steps; s++ {
		iv := t.inv[s*np : (s+1)*np]
		for p := 0; p < np; p++ {
			row := t.q[(s*np+p)*np : (s*np+p+1)*np]
			for c, a := range iv {
				tmp[a] = row[c]
			}
			copy(row, tmp)
		}
	}
	t.perm, t.inv, t.shapedRef, t.shapedW = nil, nil, nil, nil
	t.gen++
}

// canonicalQ writes the table's values into dst in the canonical
// (unshaped) layout; dst must have len(q) entries.
func (t *Table) canonicalQ(dst []float64) {
	if t.perm == nil {
		copy(dst, t.q)
		return
	}
	np := t.prims
	for s := 0; s < t.steps; s++ {
		pm := t.perm[s*np : (s+1)*np]
		for p := 0; p < np; p++ {
			row := t.q[(s*np+p)*np : (s*np+p+1)*np]
			drow := dst[(s*np+p)*np : (s*np+p+1)*np]
			for a, c := range pm {
				drow[a] = row[c]
			}
		}
	}
}

func (t *Table) idx(step, prim, action int) int {
	if t.perm != nil {
		action = int(t.perm[step*t.prims+action])
	}
	return (step*t.prims+prim)*t.prims + action
}

// row returns the contiguous action-value row of state (step, prim).
// The inner loops of Best, MaxQ and the Bellman update walk this slice
// directly instead of recomputing the full index per action — the
// values read are the same ones idx addresses.
func (t *Table) row(step, prim int) []float64 {
	base := (step*t.prims + prim) * t.prims
	return t.q[base : base+t.prims]
}

// Get returns Q((step, prim), action).
func (t *Table) Get(step, prim, action int) float64 { return t.q[t.idx(step, prim, action)] }

// Set assigns Q((step, prim), action).
func (t *Table) Set(step, prim, action int, v float64) { t.q[t.idx(step, prim, action)] = v }

// Best returns the action with the highest Q-value among the allowed
// actions, breaking ties uniformly at random with rng (nil rng breaks
// ties by first occurrence).
func (t *Table) Best(step, prim int, allowed []int, rng *rand.Rand) int {
	if len(allowed) == 0 {
		panic("qlearn: Best with no allowed actions")
	}
	row := t.row(step, prim)
	if t.perm != nil {
		// Shaped vocabulary: the scan runs over the contiguous row
		// prefix in the same order the unshaped scan visits allowed,
		// so values, comparisons and tie-break draws are identical.
		if t.shapedRef[step] == &allowed[0] && int(t.shapedW[step]) == len(allowed) {
			best := 0
			bestV := row[0]
			ties := 1
			for c := 1; c < len(allowed); c++ {
				v := row[c]
				switch {
				case v > bestV:
					best, bestV, ties = c, v, 1
				case v == bestV && rng != nil:
					ties++
					if rng.Intn(ties) == 0 {
						best = c
					}
				}
			}
			return allowed[best]
		}
		pm := t.perm[step*t.prims : (step+1)*t.prims]
		best := allowed[0]
		bestV := row[pm[best]]
		ties := 1
		for _, a := range allowed[1:] {
			v := row[pm[a]]
			switch {
			case v > bestV:
				best, bestV, ties = a, v, 1
			case v == bestV && rng != nil:
				ties++
				if rng.Intn(ties) == 0 {
					best = a
				}
			}
		}
		return best
	}
	best := allowed[0]
	bestV := row[best]
	ties := 1
	for _, a := range allowed[1:] {
		v := row[a]
		switch {
		case v > bestV:
			best, bestV, ties = a, v, 1
		case v == bestV && rng != nil:
			ties++
			if rng.Intn(ties) == 0 {
				best = a
			}
		}
	}
	return best
}

// MaxQ returns the maximum Q-value at (step, prim) over the allowed
// actions, or 0 when no actions remain (terminal state).
func (t *Table) MaxQ(step, prim int, allowed []int) float64 {
	if len(allowed) == 0 {
		return 0
	}
	row := t.row(step, prim)
	if t.perm != nil {
		if t.shapedRef[step] == &allowed[0] && int(t.shapedW[step]) == len(allowed) {
			best := row[0]
			for _, v := range row[1:len(allowed)] {
				if v > best {
					best = v
				}
			}
			return best
		}
		pm := t.perm[step*t.prims : (step+1)*t.prims]
		best := row[pm[allowed[0]]]
		for _, a := range allowed[1:] {
			if v := row[pm[a]]; v > best {
				best = v
			}
		}
		return best
	}
	best := row[allowed[0]]
	for _, a := range allowed[1:] {
		if v := row[a]; v > best {
			best = v
		}
	}
	return best
}

// Transition is one step of an episode: in state (Step, Prim) the
// agent took Action and received Reward; NextAllowed lists the actions
// available in the successor state (nil at the terminal step).
type Transition struct {
	Step, Prim, Action int
	Reward             float64
	NextAllowed        []int
}

// Update applies eq. (2) to one transition:
//
//	Q(s,a) ← Q(s,a)(1-α) + α [ r + γ max_a' Q(s', a') ]
func (t *Table) Update(tr Transition, cfg Config) {
	target := tr.Reward + cfg.Gamma*t.MaxQ(tr.Step+1, tr.Action, tr.NextAllowed)
	row := t.row(tr.Step, tr.Prim)
	c := tr.Action
	if t.perm != nil {
		c = int(t.perm[tr.Step*t.prims+tr.Action])
	}
	row[c] = row[c]*(1-cfg.Alpha) + cfg.Alpha*target
}

// UpdateEpisode applies Update to every transition of a trajectory in
// reverse order, so late rewards propagate backwards within a single
// pass.
//
// This is the innermost loop of the whole search (the replay pass
// re-applies it ReplaySize times per episode), so the Bellman update
// is fused here: successor-row max and value update run over directly
// indexed contiguous rows with the state stride hoisted out of the
// loop. The arithmetic is expression-for-expression the same as
// Update's — same operations, same order — so the learned values are
// bit-identical to the per-transition path.
func (t *Table) UpdateEpisode(traj []Transition, cfg Config) {
	q, np := t.q, t.prims
	stride := np * np
	keep := 1 - cfg.Alpha
	for i := len(traj) - 1; i >= 0; i-- {
		tr := &traj[i]
		var maxNext float64
		if na := tr.NextAllowed; len(na) > 0 {
			base := (tr.Step+1)*stride + tr.Action*np
			row := q[base : base+np]
			switch {
			case t.perm == nil:
				maxNext = row[na[0]]
				for _, a := range na[1:] {
					if v := row[a]; v > maxNext {
						maxNext = v
					}
				}
			case t.shapedRef[tr.Step+1] == &na[0] && int(t.shapedW[tr.Step+1]) == len(na):
				maxNext = row[0]
				for _, v := range row[1:len(na)] {
					if v > maxNext {
						maxNext = v
					}
				}
			default:
				pm := t.perm[(tr.Step+1)*np : (tr.Step+2)*np]
				maxNext = row[pm[na[0]]]
				for _, a := range na[1:] {
					if v := row[pm[a]]; v > maxNext {
						maxNext = v
					}
				}
			}
		}
		target := tr.Reward + cfg.Gamma*maxNext
		k := tr.Step*stride + tr.Prim*np + tr.Action
		if t.perm != nil {
			k = tr.Step*stride + tr.Prim*np + int(t.perm[tr.Step*np+tr.Action])
		}
		q[k] = q[k]*keep + cfg.Alpha*target
	}
}

// Replay is the fixed-capacity experience buffer: it stores complete
// episode trajectories and replays a sample of them after each episode.
//
// Storage is a ring over one preallocated backing slab: within a
// search every episode has the same length (layers − 1), so the slab
// is sized capacity×length at the first Add and each slot's copy goes
// into its fixed region — steady-state Adds perform zero heap
// allocations. Trajectories of a different length (possible only when
// a checkpoint restored from foreign bytes carries them) fall back to
// a per-episode allocation; behavior is otherwise identical.
type Replay struct {
	cap  int
	buf  [][]Transition
	next int
	// slab backs the trajectory copies; epLen is the episode length it
	// was shaped for (-1 until the first non-empty Add fixes it).
	slab  []Transition
	epLen int
	// Compiled form of the slab episodes, rebuilt lazily per slot on
	// the first replay after the slot changes: cks is the flat Q index
	// each transition updates, crows the successor state's row slice
	// into the table's backing array (nil at the terminal step; the
	// vocabulary-width prefix when the table is shaped, the full row
	// otherwise), crw the reward. A replay pass re-applies each stored
	// episode ~ReplaySize times, so deriving these indices and slice
	// headers once per Add instead of per replayed transition takes
	// the (step, prim, action) arithmetic and the row bounds checks
	// out of the innermost loop of the whole search. Against a shaped
	// table (see Table.Shape) the replay loop walks crows[i] — a
	// contiguous row prefix in vocabulary order — with no index gather
	// at all. cok marks slots that live in the slab; cuse marks slots
	// the compiled path may replay (slab-resident and, when shaped,
	// vocabulary-identical); cdirty marks slots whose arrays are
	// stale. cnp, ctab and cgen pin the dimensions, table and layout
	// generation the compilation is valid for.
	// cuseN and calgN count the true entries of cuse and calg so the
	// batched path can skip its per-draw membership checks with one
	// compare when every slot qualifies (the steady state).
	cks    []int32
	crows  [][]float64
	crw    []float64
	cok    []bool
	cuse   []bool
	cuseN  int
	cdirty []bool
	cdl    []int32
	cnd    int
	cnp    int
	ctab   *Table
	cgen   int
	// Compiled tables for the batched fast path. calg marks canonical
	// slots: every transition sits at its own trajectory position
	// (Step == i) and only the last is terminal — true for every
	// engine-built episode. Canonical slots give the guarantees the
	// fast path builds on: a wave's reads (position-i+1 rows) and
	// writes (position-i entries) are disjoint, the successor width is
	// wave-constant, and the flat Q index decomposes as
	// k = i·np² + kk with kk = prim·np + permuted-action the
	// position-local transition id.
	//
	// The fast path's per-transition tables use DENSE ids: at position
	// i a canonical transition's state primitive lies in the step-(i-1)
	// vocabulary (w₍i₋₁₎ wide; one fixed primitive at i = 0) and its
	// permuted action in the step-i vocabulary (wᵢ wide), so the live
	// transitions occupy a w₍i₋₁₎×wᵢ subgrid of the np×np plane —
	// typically a few dozen entries, not np². cdoff[i] is the dense
	// offset of position i's subgrid (cdoff[epLen] the total size D),
	// cds the per-(slot, position) local dense id (slot-major), and,
	// indexed by global dense id: ckof the flat Q index, cbase the
	// successor row base, crwt the reward. Everything the hot loops
	// touch is a few KB — L1-resident — instead of np²-sized planes.
	//
	// Bases and flat indices are pure geometry; rewards are checked:
	// crwset marks written entries and any conflicting rewrite (a DAG
	// skip edge making the reward depend on a third layer's choice)
	// clears crwPure, which sends batched replay to the generic path.
	// A canonical slot that doesn't fit the dense grid (foreign
	// primitive outside the vocabulary) is demoted to calg = false;
	// cdok gates the whole mapping (vocabulary subgrids too large for
	// int16 local ids). The dense tables only ever carry canonical
	// slots' data, so they never see misaligned indices.
	calg    []bool
	calgN   int
	cdok    bool
	cdp0    int
	cdoff   []int32
	cds     []int16
	ckof    []int32
	cbase   []int32
	crwt    []float64
	crwset  []bool
	crwPure bool
	// Scratch for the batched replay path (Config.BatchedReplay),
	// reused across calls so steady-state replay stays allocation-free:
	// bidx holds the drawn sample slots, bslots the distinct ones in
	// ascending order with bsc packing each one's compiled column
	// offset (high 32 bits) and draw multiplicity (low 32) — one
	// sequential load per record in the hottest loop — btgt one wave
	// target per distinct slot, bpow/bgeo the collapsed-update
	// coefficient tables indexed by multiplicity (cached across passes
	// keyed on α — balpha/bplen), bkp/bag the same coefficients
	// re-indexed by distinct slot for the generic path's inner loop.
	// bmult accumulates the drawn multiplicity per dense transition id
	// (zeroed back by the apply loop, so it stays all-zero between
	// passes).
	bidx   []int
	bslots []int
	bsc    []int64
	bcnt   []int32
	btgt   []float64
	bpow   []float64
	bgeo   []float64
	balpha float64
	bplen  int
	bkp    []float64
	bag    []float64
	bmult  []int32
}

// NewReplay allocates a buffer with the given capacity (episodes).
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{cap: capacity, buf: make([][]Transition, 0, capacity), epLen: -1}
}

// Len returns the number of stored episodes.
func (r *Replay) Len() int { return len(r.buf) }

// Add stores a copy of the trajectory, evicting the oldest once full.
// The caller may reuse traj's backing array immediately.
func (r *Replay) Add(traj []Transition) {
	if r.epLen < 0 && len(traj) > 0 {
		r.epLen = len(traj)
		r.slab = make([]Transition, r.cap*r.epLen)
		r.cok = make([]bool, r.cap)
		r.cuse = make([]bool, r.cap)
		r.cdirty = make([]bool, r.cap)
	}
	slot := r.next
	if len(r.buf) < r.cap {
		slot = len(r.buf)
	}
	var cp []Transition
	if len(traj) == r.epLen {
		cp = r.slab[slot*r.epLen : (slot+1)*r.epLen : (slot+1)*r.epLen]
		copy(cp, traj)
		r.cok[slot] = true
		// Not usable until the next compile refreshes it; cuseN must
		// track every flip or the batched path's one-compare membership
		// check goes stale.
		if r.cuse[slot] {
			r.cuse[slot] = false
			r.cuseN--
		}
		if !r.cdirty[slot] {
			r.cdirty[slot] = true
			r.cnd++
			r.cdl = append(r.cdl, int32(slot))
		}
	} else {
		cp = make([]Transition, len(traj))
		copy(cp, traj)
		if r.cok != nil {
			r.cok[slot] = false
			if r.cuse[slot] {
				r.cuse[slot] = false
				r.cuseN--
			}
			if r.cdirty[slot] {
				r.cdirty[slot] = false
				r.cnd--
			}
		}
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, cp)
		return
	}
	r.buf[r.next] = cp
	r.next = (r.next + 1) % r.cap
}

// compile refreshes the per-slot index arrays for t's dimensions.
// Only slab-resident slots are compiled; anything else (heterogeneous
// trajectories from a foreign checkpoint) keeps using UpdateEpisode.
func (r *Replay) compile(t *Table) {
	if r.slab == nil {
		return
	}
	np := t.prims
	stride := np * np
	// Indices are packed into int32; a table too large for that (never
	// the case for real networks) simply disables the compiled path.
	if np <= 0 || t.steps*stride > math.MaxInt32 {
		r.cnp = -1
		return
	}
	full := false
	if r.cks == nil || r.cnp != np || r.ctab != t || r.cgen != t.gen {
		if r.cks == nil {
			n := r.cap * r.epLen
			r.cks = make([]int32, n)
			r.crows = make([][]float64, n)
			r.crw = make([]float64, n)
			r.calg = make([]bool, r.cap)
		}
		// Dense transition-space geometry (fast-path tables). Wave i's
		// subgrid is rows×cols with rows the step-(i-1) vocabulary width
		// (1 at i = 0) and cols the step-i width; positions beyond the
		// shaped steps, oversized subgrids, or an unshaped table disable
		// the mapping (cdok) and with it the batched fast path.
		r.cdok = false
		if t.perm != nil && r.epLen <= t.steps {
			if len(r.cdoff) < r.epLen+1 {
				r.cdoff = make([]int32, r.epLen+1)
			}
			d, ok := 0, true
			for i := 0; i < r.epLen; i++ {
				r.cdoff[i] = int32(d)
				rows := 1
				if i > 0 {
					rows = int(t.shapedW[i-1])
				}
				d += rows * int(t.shapedW[i])
				// cds holds global dense ids as int16.
				if d > math.MaxInt16 {
					ok = false
					break
				}
			}
			if ok {
				r.cdoff[r.epLen] = int32(d)
				r.cdok = true
				if len(r.cbase) < d {
					r.cbase = make([]int32, d)
					r.crwt = make([]float64, d)
					r.crwset = make([]bool, d)
					r.ckof = make([]int32, d)
				} else {
					clear(r.crwset[:d])
				}
				if r.cds == nil {
					r.cds = make([]int16, r.cap*r.epLen)
				}
			}
		}
		r.cdp0 = -1
		r.crwPure = true
		r.cnp = np
		r.ctab = t
		r.cgen = t.gen
		full = true
	}
	if !full && r.cnd == 0 {
		return
	}
	if !full {
		// Only the slots dirtied since the last pass (one per episode
		// in the steady state) — no flag scan over the whole buffer.
		for _, j32 := range r.cdl {
			if j := int(j32); r.cdirty[j] && r.cok[j] {
				r.compileSlot(t, np, stride, j)
			}
		}
		r.cdl = r.cdl[:0]
		return
	}
	for j := range r.buf {
		if r.cok[j] {
			r.compileSlot(t, np, stride, j)
		}
	}
	r.cdl = r.cdl[:0]
}

// compileSlot refreshes one slab slot's compiled arrays; see compile.
func (r *Replay) compileSlot(t *Table, np, stride, j int) {
	off := j * r.epLen
	traj := r.buf[j]
	usable := true
	canonical := true
	for i := range traj {
		tr := &traj[i]
		if tr.Step != i || (len(tr.NextAllowed) == 0) != (i == len(traj)-1) {
			canonical = false
			break
		}
	}
	dense := canonical && r.cdok
	for i := range traj {
		tr := &traj[i]
		pa := -1
		k := tr.Step*stride + tr.Prim*np + tr.Action
		if t.perm != nil {
			if tr.Step < 0 || tr.Step >= t.steps || tr.Action < 0 || tr.Action >= np ||
				tr.Prim < 0 || tr.Prim >= np {
				usable = false
				break
			}
			pa = int(t.perm[tr.Step*np+tr.Action])
			k = tr.Step*stride + tr.Prim*np + pa
		}
		r.cks[off+i] = int32(k)
		var b int
		if na := tr.NextAllowed; len(na) > 0 {
			b = (tr.Step+1)*stride + tr.Action*np
			if t.perm != nil {
				// The contiguous-prefix scan is valid only for the
				// vocabulary the table was shaped with; anything else
				// replays through the translating generic path.
				if tr.Step+1 >= t.steps || t.shapedRef[tr.Step+1] != &na[0] ||
					int(t.shapedW[tr.Step+1]) != len(na) {
					usable = false
					break
				}
				r.crows[off+i] = t.q[b : b+len(na) : b+len(na)]
			} else {
				r.crows[off+i] = t.q[b : b+np : b+np]
			}
		} else {
			r.crows[off+i] = nil
		}
		r.crw[off+i] = tr.Reward
		if dense {
			// Map the transition into wave i's dense subgrid: row =
			// the state primitive's position in the step-(i-1)
			// vocabulary (the one fixed start primitive at i = 0,
			// pinned by cdp0), column = the permuted action. A
			// transition outside the grid — a primitive foreign to
			// the vocabulary — demotes the slot to the generic path
			// (calg = false); already-written entries stay valid,
			// they describe real transitions. A transition's flat
			// index and base are pure geometry; its reward is shared
			// by every episode that carries it only on chain-shaped
			// reward structure — any conflicting rewrite (a DAG skip
			// edge) drops the whole replay to the generic path via
			// crwPure. Entries from since-evicted slots are never
			// invalidated, so a stale conflict can clear crwPure
			// spuriously — that only costs speed, never correctness,
			// and a table reshape resets it.
			pp := 0
			cols := int(t.shapedW[i])
			if i > 0 {
				pp = int(t.perm[(i-1)*np+tr.Prim])
				if pp >= int(t.shapedW[i-1]) {
					pp = -1
				}
			} else if r.cdp0 < 0 {
				r.cdp0 = tr.Prim
			} else if r.cdp0 != tr.Prim {
				pp = -1
			}
			if pp < 0 || pa >= cols {
				dense = false
				canonical = false
			} else {
				o := int(r.cdoff[i]) + pp*cols + pa
				r.cds[off+i] = int16(o)
				if r.crwset[o] {
					if r.crwt[o] != tr.Reward {
						r.crwPure = false
					}
				} else {
					r.crwset[o] = true
					r.crwt[o] = tr.Reward
					r.cbase[o] = int32(b)
					r.ckof[o] = int32(k)
				}
			}
		}
	}
	if r.cuse[j] != usable {
		r.cuse[j] = usable
		if usable {
			r.cuseN++
		} else {
			r.cuseN--
		}
	}
	if r.calg[j] != canonical {
		r.calg[j] = canonical
		if canonical {
			r.calgN++
		} else {
			r.calgN--
		}
	}
	if r.cdirty[j] {
		r.cdirty[j] = false
		r.cnd--
	}
}

// ReplayInto re-applies up to n uniformly sampled stored episodes to
// the Q-table.
//
// Slab episodes replay through their compiled index arrays: the loop
// body performs the exact arithmetic of UpdateEpisode — the successor
// max over the same values in the same candidate order, then the same
// update expression — with the flat indices looked up instead of
// recomputed, so the learned values stay bit-identical while the
// per-transition cost drops.
func (r *Replay) ReplayInto(t *Table, cfg Config, n int, rng *rand.Rand) {
	if len(r.buf) == 0 {
		return
	}
	r.compile(t)
	if cfg.BatchedReplay {
		r.replayBatched(t, cfg, n, rng)
		return
	}
	q, np := t.q, t.prims
	keep := 1 - cfg.Alpha
	alpha, gamma := cfg.Alpha, cfg.Gamma
	shaped := t.perm != nil
	for s := 0; s < n; s++ {
		j := rng.Intn(len(r.buf))
		if r.cnp != np || !r.cuse[j] {
			t.UpdateEpisode(r.buf[j], cfg)
			continue
		}
		off := j * r.epLen
		ks := r.cks[off : off+r.epLen]
		rows := r.crows[off : off+r.epLen]
		rw := r.crw[off : off+r.epLen]
		if shaped {
			// Shaped layout: each successor scan is a contiguous row
			// prefix in vocabulary order — no index gather at all. The
			// leading loads let the compiler drop the per-transition
			// bounds checks (epLen ≥ 1 whenever the slab exists).
			_ = ks[len(rows)-1]
			_ = rw[len(rows)-1]
			for i := len(rows) - 1; i >= 0; i-- {
				var maxNext float64
				if row := rows[i]; len(row) > 0 {
					maxNext = row[0]
					for _, v := range row[1:] {
						if v > maxNext {
							maxNext = v
						}
					}
				}
				target := rw[i] + gamma*maxNext
				k := ks[i]
				q[k] = q[k]*keep + alpha*target
			}
			continue
		}
		traj := r.buf[j]
		for i := r.epLen - 1; i >= 0; i-- {
			var maxNext float64
			if row := rows[i]; row != nil {
				na := traj[i].NextAllowed
				maxNext = row[na[0]]
				for _, a := range na[1:] {
					if v := row[a]; v > maxNext {
						maxNext = v
					}
				}
			}
			target := rw[i] + gamma*maxNext
			k := ks[i]
			q[k] = q[k]*keep + alpha*target
		}
	}
}

// replayBatched is the wave-ordered replay scheme behind
// Config.BatchedReplay. The serial path above replays whole episodes
// one after another; within each episode, transition i's successor max
// reads the very row transition i+1 just wrote (the successor state's
// primitive IS the action just taken), so the entire pass is one
// store→load dependent chain of samples×length Bellman updates — the
// dominant cost of the whole search.
//
// The batched scheme regroups the same updates by trajectory position.
// All n sample slots are drawn upfront (the identical rng.Intn call
// sequence as the serial path, so sampling statistics and downstream
// RNG state match exactly), their multiplicities counted, and the
// distinct slots listed in ascending order. Then, for position i from
// the end of the trajectory down to 0, one wave computes the Bellman
// target of every distinct slot's position-i transition — all
// successor-row reads see the table exactly as wave i+1 left it — and
// lands the updates in ascending slot order. The dependent chain is
// one wave after another: length, not samples×length, serial steps.
//
// A slot drawn c times contributes the same transition with the same
// target c times in a row under this grouping, so its c updates are
// collapsed into the closed form
//
//	q' = q·keepᶜ + target·α·(1 + keep + … + keepᶜ⁻¹)
//
// with the coefficient tables built once per pass by the same
// recurrences (bpow, bgeo below). This removes both the duplicate
// successor scans and the duplicate read-modify-write chains on the
// same table entry — the one remaining intra-wave serial dependency.
//
// Semantics: deterministic for a given RNG stream, but NOT
// byte-identical to serial replay — in a wave, every target sees ALL
// samples' later-position updates (serial: only earlier samples' plus
// its own), no position-≤i updates, updates land in ascending slot
// order rather than draw order, and collapsed duplicates round once
// instead of c times. The batched goldens in internal/core pin the
// resulting curves; the default serial goldens are untouched.
//
// When every sampled slot is step-aligned (Step == position, true for
// all engine-built episodes) and maps into the dense transition space
// (cdok/cds — the per-position vocabulary subgrids), and rewards are a
// pure function of the transition (crwPure — always true on chain
// networks), the pass reduces to per-transition accounting: one
// sequential walk over each distinct slot's dense-id column
// accumulates draw multiplicities into bmult, noting each wave's
// touched ids; then each wave applies exactly one successor scan and
// one collapsed update per distinct transition, reading the shared
// flat index, reward and successor base from ckof/crwt/cbase. The
// per-sample work drops to one add on an L1-resident array; the
// Bellman arithmetic runs only once per distinct transition per wave.
//
// Any drawn slot that the compiled arrays cannot serve (foreign
// trajectories, vocabulary drift) forfeits the wave ordering: the
// whole pass falls back to replaying the drawn slots serially, which
// keeps the fallback's learning dynamics identical to the default
// path rather than inventing a third ordering.
func (r *Replay) replayBatched(t *Table, cfg Config, n int, rng *rand.Rand) {
	if cap(r.bidx) < n {
		r.bidx = make([]int, n)
	}
	idx := r.bidx[:n]
	nb := len(r.buf)
	if len(r.bcnt) < r.cap {
		r.bcnt = make([]int32, r.cap)
		r.btgt = make([]float64, r.cap)
		r.bkp = make([]float64, r.cap)
		r.bag = make([]float64, r.cap)
	}
	cnt := r.bcnt
	for s := range idx {
		j := rng.Intn(nb)
		idx[s] = j
		cnt[j]++
	}
	// In the steady state every slot is compiled-usable (cuseN == nb)
	// and canonical (calgN == nb), so both membership checks are one
	// integer compare instead of n scattered byte loads.
	usable := r.cnp == t.prims
	if usable && r.cuseN != nb {
		for _, j := range idx {
			if !r.cuse[j] {
				usable = false
				break
			}
		}
	}
	if !usable {
		for _, j := range idx {
			cnt[j] = 0
			r.replaySlotSerial(t, cfg, j)
		}
		return
	}
	canonical := r.calgN == nb
	if !canonical && r.calgN > 0 {
		canonical = true
		for _, j := range idx {
			if !r.calg[j] {
				canonical = false
				break
			}
		}
	}
	if cap(r.bslots) < n+1 {
		// One spare entry: the compaction loop below stores before it
		// knows whether the index advances, so the write cursor can sit
		// one past the final count.
		r.bslots = make([]int, 0, n+1)
		r.bsc = make([]int64, n+1)
	}
	// Compact the distinct drawn slots (ascending, for a deterministic
	// wave order) into parallel sequential arrays: slot index, packed
	// cks column offset + draw multiplicity. Unconditional stores +
	// conditional-move advance; the taken rate (~2/3 at n = capacity)
	// would mispredict as a branch.
	slots := r.bslots[:cap(r.bslots)]
	sc := r.bsc
	epLen := r.epLen
	m := 0
	for j := 0; j < nb; j++ {
		c := cnt[j]
		slots[m] = j
		sc[m] = int64(j*epLen)<<32 | int64(c)
		cnt[j] = 0
		if c > 0 {
			m++
		}
	}
	slots = slots[:m]
	r.bslots = slots[:0]
	// bpow[c] = keepᶜ; bgeo[c] = α·(1 + keep + … + keepᶜ⁻¹), built by
	// q_c = q_{c-1}·keep + α·target so that c=1 reproduces the serial
	// single-update arithmetic exactly. The fast path sums
	// multiplicities across slots sharing a transition, so the tables
	// go up to n; bkp/bag re-index them by slot for the generic path.
	keep := 1 - cfg.Alpha
	alpha, gamma := cfg.Alpha, cfg.Gamma
	if r.bplen < n+1 || r.balpha != alpha {
		// The coefficient tables depend only on α, so they survive
		// across passes; a pass only rebuilds them after a α change (or
		// a larger n than ever seen).
		if len(r.bpow) < n+1 {
			r.bpow = make([]float64, n+1)
			r.bgeo = make([]float64, n+1)
		}
		pw, ge := r.bpow, r.bgeo
		pw[0], ge[0] = 1, 0
		for c := 1; c <= n; c++ {
			pw[c] = pw[c-1] * keep
			ge[c] = ge[c-1]*keep + alpha
		}
		r.balpha = alpha
		r.bplen = n + 1
	}
	pow, geo := r.bpow, r.bgeo
	q := t.q
	if canonical && r.cdok && r.crwPure {
		// Fast path: every slot is canonical and dense-mapped, the
		// table is shaped, and rewards are transition-pure. Each wave
		// (descending position) gathers the distinct slots' position-i
		// dense transition ids, accumulating draw multiplicities into
		// bmult and the first-touched ids into the wave list tb
		// (ascending-slot first-occurrence order, one entry per
		// distinct slot at most); it then does one successor scan and
		// one collapsed update per distinct transition, translating the
		// dense id back to its flat Q index through ckof. Every array
		// the loops touch — cds columns, bmult, tb, ckof, cbase, crwt —
		// is sized by the dense transition space (a few hundred entries
		// on real networks), so the whole pass runs out of L1 except
		// the Q-rows themselves. bmult stays all-zero between passes:
		// the apply half resets every entry it consumes.
		nd := int(r.cdoff[epLen])
		if len(r.bmult) < nd {
			r.bmult = make([]int32, nd)
		}
		mult := r.bmult
		cds := r.cds
		ckof, cbase, crwt := r.ckof, r.cbase, r.crwt
		// Accumulate first, for ALL waves in one pass: dense ids of
		// different positions occupy disjoint ranges, so the wave
		// structure only matters for the apply half. This makes the
		// per-sample work a single sequential walk over the slot's
		// dense-id column — load, add, nothing else.
		for s := 0; s < m; s++ {
			v := sc[s]
			c := int32(v)
			for _, o16 := range cds[int(v>>32) : int(v>>32)+epLen] {
				mult[int(o16)] += c
			}
		}
		// Apply in descending waves by scanning each wave's dense range
		// and skipping undrawn transitions. In the steady state the
		// draws saturate the small subgrids, so the skip branch is
		// mostly taken and the scan visits little beyond the touched
		// set; zeroing every entry consumed keeps bmult all-zero
		// between passes. Within a wave the order is irrelevant to the
		// values: updates land on distinct flat indices and every read
		// goes to position-(i+1) rows finalized by the previous wave.
		doff := r.cdoff
		for i := epLen - 1; i >= 0; i-- {
			lo, hi := int(doff[i]), int(doff[i+1])
			w := 0
			if i < epLen-1 {
				w = int(t.shapedW[i+1])
			}
			if w > 0 {
				for o := lo; o < hi; o++ {
					c := int(mult[o])
					if c == 0 {
						continue
					}
					mult[o] = 0
					b := int(cbase[o])
					row := q[b : b+w]
					maxNext := row[0]
					for _, v := range row[1:] {
						if v > maxNext {
							maxNext = v
						}
					}
					target := crwt[o] + gamma*maxNext
					k := int(ckof[o])
					q[k] = q[k]*pow[c] + target*geo[c]
				}
			} else {
				for o := lo; o < hi; o++ {
					c := int(mult[o])
					if c == 0 {
						continue
					}
					mult[o] = 0
					k := int(ckof[o])
					q[k] = q[k]*pow[c] + crwt[o]*geo[c]
				}
			}
		}
	} else {
		kp, ag := r.bkp, r.bag
		for s := 0; s < m; s++ {
			c := int(int32(sc[s]))
			kp[s] = pow[c]
			ag[s] = geo[c]
		}
		shaped := t.perm != nil
		for i := epLen - 1; i >= 0; i-- {
			// Targets for the whole wave first: non-canonical transitions
			// may write rows other slots read, so no update lands before
			// every read of the wave is done.
			for s, j := range slots {
				o := j*epLen + i
				var maxNext float64
				if row := r.crows[o]; len(row) > 0 {
					if shaped {
						maxNext = row[0]
						for _, v := range row[1:] {
							if v > maxNext {
								maxNext = v
							}
						}
					} else {
						na := r.buf[j][i].NextAllowed
						maxNext = row[na[0]]
						for _, a := range na[1:] {
							if v := row[a]; v > maxNext {
								maxNext = v
							}
						}
					}
				}
				r.btgt[s] = r.crw[o] + gamma*maxNext
			}
			for s, j := range slots {
				k := r.cks[j*epLen+i]
				q[k] = q[k]*kp[s] + r.btgt[s]*ag[s]
			}
		}
	}
}

// replaySlotSerial replays one drawn slot exactly as the serial
// ReplayInto loop body would; the batched path uses it when a drawn
// slot cannot go through the compiled arrays.
func (r *Replay) replaySlotSerial(t *Table, cfg Config, j int) {
	if r.cnp != t.prims || !r.cuse[j] {
		t.UpdateEpisode(r.buf[j], cfg)
		return
	}
	q := t.q
	keep := 1 - cfg.Alpha
	alpha, gamma := cfg.Alpha, cfg.Gamma
	off := j * r.epLen
	ks := r.cks[off : off+r.epLen]
	rows := r.crows[off : off+r.epLen]
	rw := r.crw[off : off+r.epLen]
	if t.perm != nil {
		for i := len(rows) - 1; i >= 0; i-- {
			var maxNext float64
			if row := rows[i]; len(row) > 0 {
				maxNext = row[0]
				for _, v := range row[1:] {
					if v > maxNext {
						maxNext = v
					}
				}
			}
			target := rw[i] + gamma*maxNext
			k := ks[i]
			q[k] = q[k]*keep + alpha*target
		}
		return
	}
	traj := r.buf[j]
	for i := r.epLen - 1; i >= 0; i-- {
		var maxNext float64
		if row := rows[i]; row != nil {
			na := traj[i].NextAllowed
			maxNext = row[na[0]]
			for _, a := range na[1:] {
				if v := row[a]; v > maxNext {
					maxNext = v
				}
			}
		}
		target := rw[i] + gamma*maxNext
		k := ks[i]
		q[k] = q[k]*keep + alpha*target
	}
}
