package qlearn

import (
	"math/rand"
	"testing"
)

// FuzzCheckpointUnmarshal drives LoadCheckpoint with arbitrary bytes:
// whatever the input — truncated JSON, flipped bytes, hostile
// dimensions, out-of-range replay transitions — it must return an
// error or a structurally sound checkpoint, never panic, and never
// produce a Table whose backing slice disagrees with steps×prims².
func FuzzCheckpointUnmarshal(f *testing.F) {
	// Seed corpus: a healthy checkpoint plus characteristic damage.
	healthy := func() []byte {
		tab := NewTable(3, 4)
		tab.Set(1, 2, 3, -0.5)
		rep := NewReplay(4)
		rep.Add([]Transition{{Step: 0, Prim: 0, Action: 1, Reward: -1, NextAllowed: []int{1, 2}}})
		ck := &Checkpoint{Table: tab, Replay: rep, Episode: 42}
		data, err := ck.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()
	f.Add(healthy)
	f.Add(healthy[:len(healthy)/2])
	flipped := append([]byte{}, healthy...)
	flipped[len(flipped)/3] ^= 0x08
	f.Add(flipped)
	f.Add([]byte(`{`))
	f.Add([]byte(`{"steps":1073741824,"prims":1073741824,"q":[]}`))
	f.Add([]byte(`{"steps":2,"prims":2,"q":[0,0,0,0,0,0,0,0],"episode":-3}`))
	f.Add([]byte(`{"steps":2,"prims":2,"q":[0,0,0,0,0,0,0,0],"replay":[[{"Step":99,"Prim":0,"Action":0}]]}`))
	f.Add([]byte(`{"steps":2,"prims":2,"q":[0,0,0,0,0,0,0,0],"replay":[[{"Step":1,"Prim":0,"Action":0,"NextAllowed":[5]}]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := LoadCheckpoint(data)
		if err != nil {
			if ck != nil {
				t.Fatal("error with non-nil checkpoint")
			}
			return
		}
		if ck.Table == nil {
			t.Fatal("nil table without error")
		}
		steps, prims := ck.Table.steps, ck.Table.prims
		if steps <= 0 || prims <= 0 {
			t.Fatalf("non-positive dims %dx%d", steps, prims)
		}
		if len(ck.Table.q) != steps*prims*prims {
			t.Fatalf("table has %d entries, dims say %d", len(ck.Table.q), steps*prims*prims)
		}
		if ck.Episode < 0 {
			t.Fatalf("negative episode %d", ck.Episode)
		}
		// The restored replay must be safe to apply: replaying into the
		// restored table may not index out of range.
		if ck.Replay != nil && ck.Replay.Len() > 0 {
			rng := rand.New(rand.NewSource(1))
			ck.Replay.ReplayInto(ck.Table, PaperConfig(), 2*ck.Replay.Len(), rng)
		}
	})
}
