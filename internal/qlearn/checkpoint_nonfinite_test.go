package qlearn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// A search over a partially degraded table (unmeasurable pairs priced
// +Inf) learns non-finite Q-values and rewards. Checkpoints must carry
// them exactly — JSON cannot, so they ride in a sidecar — and healthy
// checkpoints must not change shape.

func TestCheckpointNonFiniteRoundTrip(t *testing.T) {
	tab := NewTable(2, 3)
	tab.Set(0, 0, 1, math.Inf(-1))
	tab.Set(1, 2, 0, math.Inf(1))
	tab.Set(1, 1, 1, math.NaN())
	tab.Set(0, 1, 2, -0.5)
	r := NewReplay(4)
	r.Add([]Transition{
		{Step: 0, Prim: 0, Action: 1, Reward: math.Inf(-1), NextAllowed: []int{0}},
		{Step: 1, Prim: 1, Action: 2, Reward: -0.25},
	})
	r.Add([]Transition{{Step: 0, Prim: 2, Action: 0, Reward: math.NaN()}})
	ck := &Checkpoint{Table: tab, Replay: r, Episode: 7}
	data, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Marshal must not mutate the live agent state it aliases.
	if v := tab.Get(0, 0, 1); !math.IsInf(v, -1) {
		t.Fatalf("Marshal mutated live Q: %v", v)
	}
	if v := r.buf[0][0].Reward; !math.IsInf(v, -1) {
		t.Fatalf("Marshal mutated live replay reward: %v", v)
	}
	back, err := LoadCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if v := back.Table.Get(0, 0, 1); !math.IsInf(v, -1) {
		t.Errorf("-Inf Q restored as %v", v)
	}
	if v := back.Table.Get(1, 2, 0); !math.IsInf(v, 1) {
		t.Errorf("+Inf Q restored as %v", v)
	}
	if v := back.Table.Get(1, 1, 1); !math.IsNaN(v) {
		t.Errorf("NaN Q restored as %v", v)
	}
	if v := back.Table.Get(0, 1, 2); v != -0.5 {
		t.Errorf("finite Q restored as %v", v)
	}
	if v := back.Replay.buf[0][0].Reward; !math.IsInf(v, -1) {
		t.Errorf("-Inf reward restored as %v", v)
	}
	if v := back.Replay.buf[0][1].Reward; v != -0.25 {
		t.Errorf("finite reward restored as %v", v)
	}
	if v := back.Replay.buf[1][0].Reward; !math.IsNaN(v) {
		t.Errorf("NaN reward restored as %v", v)
	}
	// Marshaling the restored state reproduces the bytes exactly.
	again, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again2, err := (&Checkpoint{Table: back.Table, Replay: back.Replay, Episode: 7}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again2) {
		t.Errorf("round trip not exact:\n first: %s\nsecond: %s", data, again2)
	}
	_ = again
}

func TestCheckpointFiniteHasNoSidecar(t *testing.T) {
	tab := NewTable(2, 2)
	tab.Set(0, 0, 1, -0.5)
	r := NewReplay(2)
	r.Add([]Transition{{Step: 0, Prim: 0, Action: 1, Reward: -0.5}})
	data, err := Snapshot(tab, r, 3).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("nonfinite")) {
		t.Fatalf("healthy checkpoint grew a sidecar: %s", data)
	}
}

func TestCheckpointSidecarValidation(t *testing.T) {
	tab := NewTable(1, 2)
	tab.Set(0, 0, 1, math.Inf(-1))
	r := NewReplay(2)
	r.Add([]Transition{{Step: 0, Prim: 0, Action: 1, Reward: math.Inf(-1)}})
	data, err := (&Checkpoint{Table: tab, Replay: r, Episode: 1}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][2]string{
		"q index out of range":    {`"q_nonfinite":[{"i":1`, `"q_nonfinite":[{"i":99`},
		"replay pos out of range": {`"replay_nonfinite":[{"e":0,"t":0`, `"replay_nonfinite":[{"e":0,"t":9`},
		"unknown q marker":        {`{"i":1,"v":"-inf"}`, `{"i":1,"v":"-huge"}`},
		"unknown replay marker":   {`{"e":0,"t":0,"v":"-inf"}`, `{"e":0,"t":0,"v":"bogus"}`},
		"negative replay episode": {`"replay_nonfinite":[{"e":0`, `"replay_nonfinite":[{"e":-1`},
	}
	for name, sub := range cases {
		forged := bytes.Replace(data, []byte(sub[0]), []byte(sub[1]), 1)
		if bytes.Equal(forged, data) {
			t.Fatalf("%s: mutation did not change the bytes (%s)", name, data)
		}
		if _, err := LoadCheckpoint(forged); err == nil {
			t.Errorf("%s: LoadCheckpoint accepted corrupt sidecar", name)
		} else if !strings.Contains(err.Error(), "qlearn:") {
			t.Errorf("%s: error missing package prefix: %v", name, err)
		}
	}
}
