package qlearn

import "fmt"

// Approx is a linear action-value approximator Q(s,a) ≈ w·φ(s,a),
// the first step of the paper's future-work direction "Deep RL to
// approximate the value function for better scalability towards
// larger networks and more dimensions in the search space". Unlike
// the tabular agent, values generalize across states that share
// features (layer kind, library, processor, layout agreement), so far
// fewer episodes are needed on very deep networks.
type Approx struct {
	dim int
	w   []float64
}

// NewApprox allocates a zero-weight approximator over dim features.
func NewApprox(dim int) *Approx {
	if dim <= 0 {
		panic(fmt.Sprintf("qlearn: invalid feature dimension %d", dim))
	}
	return &Approx{dim: dim, w: make([]float64, dim)}
}

// Dim returns the feature dimension.
func (a *Approx) Dim() int { return a.dim }

// Value returns w·phi. The feature vector must have the constructor's
// dimension.
func (a *Approx) Value(phi []float64) float64 {
	if len(phi) != a.dim {
		panic(fmt.Sprintf("qlearn: feature vector has %d entries, want %d", len(phi), a.dim))
	}
	var v float64
	for i, x := range phi {
		if x != 0 {
			v += a.w[i] * x
		}
	}
	return v
}

// Update applies one semi-gradient TD step toward target:
// w ← w + α (target − w·φ) φ.
func (a *Approx) Update(phi []float64, target, alpha float64) {
	delta := alpha * (target - a.Value(phi))
	for i, x := range phi {
		if x != 0 {
			a.w[i] += delta * x
		}
	}
}

// Weights exposes a copy of the learned weights (for inspection and
// tests).
func (a *Approx) Weights() []float64 {
	out := make([]float64, a.dim)
	copy(out, a.w)
	return out
}
