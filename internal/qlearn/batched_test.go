package qlearn

import (
	"math"
	"math/rand"
	"testing"
)

// refCoeffs builds the collapsed-update coefficient tables exactly as
// the batched path does: pow[c] = keepᶜ and geo[c] = α·(1+keep+…+keepᶜ⁻¹)
// by the q·keep+α recurrence, so c = 1 reproduces a single serial
// update bit-for-bit.
func refCoeffs(cfg Config, n int) (pow, geo []float64) {
	keep := 1 - cfg.Alpha
	pow = make([]float64, n+1)
	geo = make([]float64, n+1)
	pow[0] = 1
	for c := 1; c <= n; c++ {
		pow[c] = pow[c-1] * keep
		geo[c] = geo[c-1]*keep + cfg.Alpha
	}
	return pow, geo
}

// refBatchedPass is an independent implementation of the documented
// batched-replay semantics, written against the public Table accessors
// on a plain (unshaped) table: draw n slots with the same RNG stream,
// then walk the trajectory positions in descending waves. With collapse
// (the chain/pure fast path), duplicate transitions within a wave —
// across slots as well as repeated draws — merge into one closed-form
// update of total multiplicity; without it (the generic path), targets
// are computed for every distinct slot first and the per-slot updates
// then land in ascending slot order.
func refBatchedPass(tab *Table, buf [][]Transition, cfg Config, n int, rng *rand.Rand, collapse bool) {
	nb := len(buf)
	counts := make([]int, nb)
	for s := 0; s < n; s++ {
		counts[rng.Intn(nb)]++
	}
	var order []int
	for j := 0; j < nb; j++ {
		if counts[j] > 0 {
			order = append(order, j)
		}
	}
	pow, geo := refCoeffs(cfg, n)
	epLen := len(buf[0])
	for i := epLen - 1; i >= 0; i-- {
		if collapse {
			type upd struct {
				tr Transition
				c  int
			}
			var merged []*upd
			seen := map[[3]int]*upd{}
			for _, j := range order {
				tr := buf[j][i]
				key := [3]int{tr.Step, tr.Prim, tr.Action}
				if u, ok := seen[key]; ok {
					u.c += counts[j]
				} else {
					u := &upd{tr: tr, c: counts[j]}
					seen[key] = u
					merged = append(merged, u)
				}
			}
			for _, u := range merged {
				tr := u.tr
				target := tr.Reward
				if len(tr.NextAllowed) > 0 {
					target += cfg.Gamma * tab.MaxQ(tr.Step+1, tr.Action, tr.NextAllowed)
				}
				q := tab.Get(tr.Step, tr.Prim, tr.Action)
				tab.Set(tr.Step, tr.Prim, tr.Action, q*pow[u.c]+target*geo[u.c])
			}
		} else {
			targets := make([]float64, len(order))
			for s, j := range order {
				tr := buf[j][i]
				targets[s] = tr.Reward
				if len(tr.NextAllowed) > 0 {
					targets[s] += cfg.Gamma * tab.MaxQ(tr.Step+1, tr.Action, tr.NextAllowed)
				}
			}
			for s, j := range order {
				tr := buf[j][i]
				q := tab.Get(tr.Step, tr.Prim, tr.Action)
				tab.Set(tr.Step, tr.Prim, tr.Action, q*pow[counts[j]]+targets[s]*geo[counts[j]])
			}
		}
	}
}

// assertSameQ compares a (possibly shaped) table against a plain
// reference table bit-for-bit in the canonical layout.
func assertSameQ(t *testing.T, got, want *Table, ctx string) {
	t.Helper()
	canon := make([]float64, len(got.q))
	got.canonicalQ(canon)
	for i := range want.q {
		if math.Float64bits(canon[i]) != math.Float64bits(want.q[i]) {
			t.Fatalf("%s: q[%d] = %x, want %x", ctx, i,
				math.Float64bits(canon[i]), math.Float64bits(want.q[i]))
		}
	}
}

// chainEpisode draws a trajectory like randomEpisode but with the
// reward a pure function of the transition, as chain-network shaping
// produces — the same (step, prim, action) always carries the same
// reward, which the fast path's shared reward table requires.
func chainEpisode(rng *rand.Rand, allowed [][]int, epLen int) []Transition {
	traj := randomEpisode(rng, allowed, epLen)
	for k := range traj {
		tr := &traj[k]
		h := uint64(tr.Step)*1000003 + uint64(tr.Prim)*10007 + uint64(tr.Action)
		tr.Reward = -float64(h%1024) / 1024
	}
	return traj
}

// The fast path (shaped table, canonical chain trajectories, pure
// rewards) must reproduce the documented wave semantics exactly —
// including the cross-slot duplicate collapse, which small buffers
// exercise on nearly every pass.
func TestBatchedReplayFastPathMatchesReference(t *testing.T) {
	const steps, prims, capacity, episodes, draws = 7, 9, 8, 120, 16
	seedRng := rand.New(rand.NewSource(17))
	allowed := randomVocab(seedRng, steps, prims)
	epLen := steps - 1

	tab := NewTable(steps, prims)
	if err := tab.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	ref := NewTable(steps, prims)
	r := NewReplay(capacity)
	var refBuf [][]Transition
	next := 0
	cfg := PaperConfig()
	cfg.BatchedReplay = true
	rngB := rand.New(rand.NewSource(23))
	rngR := rand.New(rand.NewSource(23))
	trajRng := rand.New(rand.NewSource(5))

	for ep := 0; ep < episodes; ep++ {
		traj := chainEpisode(trajRng, allowed, epLen)
		r.Add(traj)
		cp := append([]Transition(nil), traj...)
		if len(refBuf) < capacity {
			refBuf = append(refBuf, cp)
		} else {
			refBuf[next] = cp
			next = (next + 1) % capacity
		}
		r.ReplayInto(tab, cfg, draws, rngB)
		refBatchedPass(ref, refBuf, cfg, draws, rngR, true)
	}
	// The point of the test is the fast path; make sure it was taken.
	if !r.cdok || !r.crwPure || r.calgN != len(r.buf) || r.cuseN != len(r.buf) {
		t.Fatalf("fast path not engaged: cdok=%v crwPure=%v calgN=%d cuseN=%d nb=%d",
			r.cdok, r.crwPure, r.calgN, r.cuseN, len(r.buf))
	}
	assertSameQ(t, tab, ref, "fast path")
}

// Impure rewards — the same transition carried with different rewards,
// as DAG incoming-edge penalties produce — must drop the pass to the
// generic per-slot path, whose semantics the uncollapsed reference
// pins.
func TestBatchedReplayImpureRewardsGenericPath(t *testing.T) {
	const steps, prims = 5, 6
	allowed := make([][]int, steps)
	for s := 0; s+1 < steps; s++ {
		allowed[s] = []int{0, 1, 2, 3, 4, 5}
	}
	epLen := steps - 1

	tab := NewTable(steps, prims)
	if err := tab.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	ref := NewTable(steps, prims)
	r := NewReplay(4)
	var refBuf [][]Transition
	mkTraj := func(reward float64) []Transition {
		traj := make([]Transition, epLen)
		prev := 0
		for k := 0; k < epLen; k++ {
			var next []int
			if k+1 < epLen {
				next = allowed[k+1]
			}
			traj[k] = Transition{Step: k, Prim: prev, Action: k % prims,
				Reward: reward, NextAllowed: next}
			prev = k % prims
		}
		return traj
	}
	// Identical transitions, conflicting rewards.
	for _, rw := range []float64{-0.5, -0.7, -0.5, -0.9} {
		traj := mkTraj(rw)
		r.Add(traj)
		refBuf = append(refBuf, append([]Transition(nil), traj...))
	}
	cfg := PaperConfig()
	cfg.BatchedReplay = true
	rngB := rand.New(rand.NewSource(9))
	rngR := rand.New(rand.NewSource(9))
	for pass := 0; pass < 30; pass++ {
		r.ReplayInto(tab, cfg, 8, rngB)
		refBatchedPass(ref, refBuf, cfg, 8, rngR, false)
	}
	if r.crwPure {
		t.Fatal("conflicting rewards left crwPure set")
	}
	assertSameQ(t, tab, ref, "impure rewards")
}

// An unshaped table has no dense transition mapping, so canonical
// trajectories still replay through the generic batched path.
func TestBatchedReplayUnshapedGenericPath(t *testing.T) {
	const steps, prims, capacity, episodes, draws = 6, 7, 4, 60, 8
	seedRng := rand.New(rand.NewSource(41))
	allowed := randomVocab(seedRng, steps, prims)
	epLen := steps - 1

	tab := NewTable(steps, prims)
	ref := NewTable(steps, prims)
	r := NewReplay(capacity)
	var refBuf [][]Transition
	next := 0
	cfg := PaperConfig()
	cfg.BatchedReplay = true
	rngB := rand.New(rand.NewSource(6))
	rngR := rand.New(rand.NewSource(6))
	trajRng := rand.New(rand.NewSource(7))

	for ep := 0; ep < episodes; ep++ {
		traj := randomEpisode(trajRng, allowed, epLen)
		r.Add(traj)
		cp := append([]Transition(nil), traj...)
		if len(refBuf) < capacity {
			refBuf = append(refBuf, cp)
		} else {
			refBuf[next] = cp
			next = (next + 1) % capacity
		}
		r.ReplayInto(tab, cfg, draws, rngB)
		refBatchedPass(ref, refBuf, cfg, draws, rngR, false)
	}
	if r.cdok {
		t.Fatal("unshaped table built a dense mapping")
	}
	assertSameQ(t, tab, ref, "unshaped generic path")
}

// When the compiled arrays cannot serve the drawn slots — here the
// trajectories' NextAllowed slices are foreign copies, not the shaped
// vocabulary — the whole pass must fall back to serial replay,
// bit-identical to the default path on the same RNG stream.
func TestBatchedReplayFallbackSerial(t *testing.T) {
	const steps, prims, capacity, episodes, draws = 6, 8, 4, 40, 8
	seedRng := rand.New(rand.NewSource(3))
	allowed := randomVocab(seedRng, steps, prims)
	epLen := steps - 1

	batched := NewTable(steps, prims)
	serial := NewTable(steps, prims)
	if err := batched.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	if err := serial.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	rb := NewReplay(capacity)
	rs := NewReplay(capacity)
	cfgB := PaperConfig()
	cfgB.BatchedReplay = true
	cfgS := PaperConfig()
	rngB := rand.New(rand.NewSource(12))
	rngS := rand.New(rand.NewSource(12))
	trajRng := rand.New(rand.NewSource(13))

	for ep := 0; ep < episodes; ep++ {
		traj := randomEpisode(trajRng, allowed, epLen)
		for k := range traj {
			// Foreign backing arrays defeat the shaped identity check.
			traj[k].NextAllowed = append([]int(nil), traj[k].NextAllowed...)
		}
		rb.Add(traj)
		rs.Add(traj)
		rb.ReplayInto(batched, cfgB, draws, rngB)
		rs.ReplayInto(serial, cfgS, draws, rngS)
	}
	if rb.cuseN != 0 {
		t.Fatalf("foreign vocabularies left %d slots compiled-usable", rb.cuseN)
	}
	// Both tables are shaped identically, so raw storage must match
	// bit-for-bit (assertSameQ expects an unshaped reference).
	for i := range batched.q {
		if math.Float64bits(batched.q[i]) != math.Float64bits(serial.q[i]) {
			t.Fatalf("serial fallback diverged at q[%d]", i)
		}
	}
}

// Two identical runs must produce identical bytes: the batched path is
// deterministic for a given RNG stream.
func TestBatchedReplayDeterministic(t *testing.T) {
	const steps, prims, capacity, episodes, draws = 7, 9, 8, 60, 12
	run := func() *Table {
		seedRng := rand.New(rand.NewSource(17))
		allowed := randomVocab(seedRng, steps, prims)
		tab := NewTable(steps, prims)
		if err := tab.Shape(allowed); err != nil {
			t.Fatalf("Shape: %v", err)
		}
		r := NewReplay(capacity)
		cfg := PaperConfig()
		cfg.BatchedReplay = true
		rng := rand.New(rand.NewSource(23))
		trajRng := rand.New(rand.NewSource(5))
		for ep := 0; ep < episodes; ep++ {
			r.Add(randomEpisode(trajRng, allowed, steps-1))
			r.ReplayInto(tab, cfg, draws, rng)
		}
		return tab
	}
	a, b := run(), run()
	for i := range a.q {
		if math.Float64bits(a.q[i]) != math.Float64bits(b.q[i]) {
			t.Fatalf("non-deterministic at q[%d]", i)
		}
	}
}

// Counter and scratch invariants across ring wrap and mixed-length
// evictions: cuseN/calgN/cnd must equal their flag recounts, and bmult
// must return to all-zero after every pass.
func TestBatchedReplayCountersAndScratchInvariants(t *testing.T) {
	const steps, prims, capacity = 6, 8, 4
	seedRng := rand.New(rand.NewSource(61))
	allowed := randomVocab(seedRng, steps, prims)
	tab := NewTable(steps, prims)
	if err := tab.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	r := NewReplay(capacity)
	cfg := PaperConfig()
	cfg.BatchedReplay = true
	rng := rand.New(rand.NewSource(2))
	trajRng := rand.New(rand.NewSource(3))
	for ep := 0; ep < 4*capacity; ep++ {
		epLen := steps - 1
		if ep%3 == 1 {
			epLen = 3 // off-slab length, evicts a compiled slot in place
		}
		r.Add(randomEpisode(trajRng, allowed, epLen))
		r.ReplayInto(tab, cfg, 6, rng)

		nUse, nAlg, nDirty := 0, 0, 0
		for j := range r.cuse {
			if r.cuse[j] {
				nUse++
			}
			if r.calg[j] {
				nAlg++
			}
			if r.cdirty[j] {
				nDirty++
			}
		}
		if nUse != r.cuseN || nAlg != r.calgN || nDirty != r.cnd {
			t.Fatalf("ep %d: counters drifted: cuseN %d/%d calgN %d/%d cnd %d/%d",
				ep, r.cuseN, nUse, r.calgN, nAlg, r.cnd, nDirty)
		}
		for o, v := range r.bmult {
			if v != 0 {
				t.Fatalf("ep %d: bmult[%d] = %d after pass", ep, o, v)
			}
		}
	}
}

// The batched path must be allocation-free in the steady state, like
// the serial path it replaces.
func TestBatchedReplayZeroAllocSteadyState(t *testing.T) {
	const steps, prims, capacity, draws = 7, 9, 8, 16
	seedRng := rand.New(rand.NewSource(17))
	allowed := randomVocab(seedRng, steps, prims)
	tab := NewTable(steps, prims)
	if err := tab.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	r := NewReplay(capacity)
	cfg := PaperConfig()
	cfg.BatchedReplay = true
	rng := rand.New(rand.NewSource(23))
	trajRng := rand.New(rand.NewSource(5))
	traj := randomEpisode(trajRng, allowed, steps-1)
	for ep := 0; ep < 2*capacity; ep++ {
		r.Add(traj)
		r.ReplayInto(tab, cfg, draws, rng)
	}
	allocs := testing.AllocsPerRun(50, func() {
		r.Add(traj)
		r.ReplayInto(tab, cfg, draws, rng)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batched replay allocates %v times per episode", allocs)
	}
}
