package qlearn

import (
	"math"
	"testing"
)

func TestApproxValueIsDotProduct(t *testing.T) {
	a := NewApprox(3)
	a.Update([]float64{1, 0, 0}, 2, 1) // w[0] <- 2
	if got := a.Value([]float64{1, 0, 0}); got != 2 {
		t.Errorf("value = %v, want 2", got)
	}
	if got := a.Value([]float64{0.5, 0, 0}); got != 1 {
		t.Errorf("scaled value = %v, want 1", got)
	}
	if a.Dim() != 3 {
		t.Errorf("Dim = %d", a.Dim())
	}
}

func TestApproxConvergesOnLinearTarget(t *testing.T) {
	// Target function: q(phi) = 3*phi0 - 2*phi1. SGD on enough samples
	// must recover the weights.
	a := NewApprox(2)
	samples := [][]float64{{1, 0}, {0, 1}, {1, 1}, {0.5, 0.25}, {0.2, 0.9}}
	for iter := 0; iter < 4000; iter++ {
		phi := samples[iter%len(samples)]
		target := 3*phi[0] - 2*phi[1]
		a.Update(phi, target, 0.05)
	}
	w := a.Weights()
	if math.Abs(w[0]-3) > 0.01 || math.Abs(w[1]-(-2)) > 0.01 {
		t.Errorf("weights = %v, want [3 -2]", w)
	}
}

func TestApproxWeightsAreCopies(t *testing.T) {
	a := NewApprox(2)
	a.Update([]float64{1, 0}, 1, 1)
	w := a.Weights()
	w[0] = 99
	if got := a.Value([]float64{1, 0}); got == 99 {
		t.Error("Weights should return a copy")
	}
}

func TestApproxDimensionChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong feature dim should panic")
		}
	}()
	NewApprox(2).Value([]float64{1})
}

func TestNewApproxRejectsBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero dim should panic")
		}
	}()
	NewApprox(0)
}
