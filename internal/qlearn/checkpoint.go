package qlearn

import (
	"encoding/json"
	"fmt"
)

// Checkpointing: the paper's search is fast enough to run to
// completion, but a production autotuner interleaves profiling and
// searching across sessions — so the agent's learned state (Q-table +
// replay buffer) is serializable and restorable, resuming exactly
// where it left off.

// checkpointJSON is the on-disk form of an agent state.
type checkpointJSON struct {
	Steps   int            `json:"steps"`
	Prims   int            `json:"prims"`
	Q       []float64      `json:"q"`
	Episode int            `json:"episode"`
	Replay  [][]Transition `json:"replay,omitempty"`
}

// Checkpoint captures a search's learned state at a given episode.
type Checkpoint struct {
	// Table is the Q-table snapshot.
	Table *Table
	// Replay is the experience buffer snapshot (may be nil).
	Replay *Replay
	// Episode is the number of episodes already run.
	Episode int
}

// Marshal serializes the checkpoint. A shaped table (see Table.Shape)
// is serialized in the canonical action layout, so the bytes are
// independent of any in-memory permutation.
func (c *Checkpoint) Marshal() ([]byte, error) {
	qv := c.Table.q
	if c.Table.perm != nil {
		qv = make([]float64, len(c.Table.q))
		c.Table.canonicalQ(qv)
	}
	out := checkpointJSON{
		Steps:   c.Table.steps,
		Prims:   c.Table.prims,
		Q:       qv,
		Episode: c.Episode,
	}
	if c.Replay != nil {
		out.Replay = c.Replay.buf
	}
	return json.Marshal(out)
}

// Dimension sanity bounds for deserialized checkpoints: large enough
// for any network the repo can express, small enough that corrupt or
// adversarial dimension fields cannot drive a giant allocation before
// the length check fires.
const (
	maxCheckpointSteps = 1 << 20
	maxCheckpointPrims = 1 << 12
)

// LoadCheckpoint restores a checkpoint. Every field is validated —
// dimensions bounded and overflow-safe, Q length consistent with
// steps×prims², episode non-negative, and every replay transition
// in range for the table — so arbitrary bytes yield an error, never a
// panic or an agent state that would index out of bounds mid-search.
func LoadCheckpoint(data []byte) (*Checkpoint, error) {
	var in checkpointJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("qlearn: %w", err)
	}
	if in.Steps <= 0 || in.Prims <= 0 || in.Steps > maxCheckpointSteps || in.Prims > maxCheckpointPrims {
		return nil, fmt.Errorf("qlearn: invalid checkpoint dims %dx%d", in.Steps, in.Prims)
	}
	if want := uint64(in.Steps) * uint64(in.Prims) * uint64(in.Prims); uint64(len(in.Q)) != want {
		return nil, fmt.Errorf("qlearn: checkpoint Q has %d entries, want %d", len(in.Q), want)
	}
	if in.Episode < 0 {
		return nil, fmt.Errorf("qlearn: negative checkpoint episode %d", in.Episode)
	}
	for ti, traj := range in.Replay {
		for _, tr := range traj {
			if tr.Step < 0 || tr.Step >= in.Steps || tr.Prim < 0 || tr.Prim >= in.Prims ||
				tr.Action < 0 || tr.Action >= in.Prims {
				return nil, fmt.Errorf("qlearn: replay episode %d transition out of range (step %d, prim %d, action %d)",
					ti, tr.Step, tr.Prim, tr.Action)
			}
			if len(tr.NextAllowed) > 0 && tr.Step+1 >= in.Steps {
				return nil, fmt.Errorf("qlearn: replay episode %d has successor actions past the final step", ti)
			}
			for _, a := range tr.NextAllowed {
				if a < 0 || a >= in.Prims {
					return nil, fmt.Errorf("qlearn: replay episode %d successor action %d out of range", ti, a)
				}
			}
		}
	}
	t := NewTable(in.Steps, in.Prims)
	copy(t.q, in.Q)
	r := NewReplay(maxIntQ(len(in.Replay), 1))
	for _, traj := range in.Replay {
		r.Add(traj)
	}
	return &Checkpoint{Table: t, Replay: r, Episode: in.Episode}, nil
}

func maxIntQ(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot copies the current agent state into a Checkpoint (deep
// copies, so further learning does not mutate the snapshot).
func Snapshot(t *Table, r *Replay, episode int) *Checkpoint {
	ct := NewTable(t.steps, t.prims)
	t.canonicalQ(ct.q)
	var cr *Replay
	if r != nil {
		cr = NewReplay(r.cap)
		for _, traj := range r.buf {
			cr.Add(traj)
		}
	}
	return &Checkpoint{Table: ct, Replay: cr, Episode: episode}
}
