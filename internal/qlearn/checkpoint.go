package qlearn

import (
	"encoding/json"
	"fmt"
	"math"
)

// Checkpointing: the paper's search is fast enough to run to
// completion, but a production autotuner interleaves profiling and
// searching across sessions — so the agent's learned state (Q-table +
// replay buffer) is serializable and restorable, resuming exactly
// where it left off.

// checkpointJSON is the on-disk form of an agent state. JSON cannot
// carry IEEE non-finite values, but a search over a partially degraded
// table (unmeasurable pairs priced +Inf) legitimately learns -Inf
// Q-values and rewards — so non-finite entries are stored as 0 in the
// arrays with an exact sidecar restoring them at load. Checkpoints of
// healthy searches carry no sidecar and their bytes are unchanged.
type checkpointJSON struct {
	Steps      int            `json:"steps"`
	Prims      int            `json:"prims"`
	Q          []float64      `json:"q"`
	QNonFinite []nonFinite    `json:"q_nonfinite,omitempty"`
	Episode    int            `json:"episode"`
	Replay     [][]Transition `json:"replay,omitempty"`
	ReplayNF   []replayNF     `json:"replay_nonfinite,omitempty"`
}

// nonFinite records one non-finite slot of the Q array.
type nonFinite struct {
	I int    `json:"i"`
	V string `json:"v"` // "+inf", "-inf" or "nan"
}

// replayNF records one non-finite reward in the replay buffer, by
// (episode, transition) position.
type replayNF struct {
	E int    `json:"e"`
	T int    `json:"t"`
	V string `json:"v"`
}

func encodeNF(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return "nan"
	}
}

func decodeNF(s string) (float64, error) {
	switch s {
	case "+inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	case "nan":
		return math.NaN(), nil
	}
	return 0, fmt.Errorf("qlearn: unknown non-finite marker %q", s)
}

func finiteOK(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// Checkpoint captures a search's learned state at a given episode.
type Checkpoint struct {
	// Table is the Q-table snapshot.
	Table *Table
	// Replay is the experience buffer snapshot (may be nil).
	Replay *Replay
	// Episode is the number of episodes already run.
	Episode int
}

// Marshal serializes the checkpoint. A shaped table (see Table.Shape)
// is serialized in the canonical action layout, so the bytes are
// independent of any in-memory permutation.
func (c *Checkpoint) Marshal() ([]byte, error) {
	qv := c.Table.q
	if c.Table.perm != nil {
		qv = make([]float64, len(c.Table.q))
		c.Table.canonicalQ(qv)
	}
	var qnf []nonFinite
	for i, v := range qv {
		if !finiteOK(v) {
			qnf = append(qnf, nonFinite{I: i, V: encodeNF(v)})
		}
	}
	if qnf != nil && c.Table.perm == nil {
		// qv aliases the live table; copy before zeroing sidecar slots.
		qv = append([]float64(nil), qv...)
	}
	for _, e := range qnf {
		qv[e.I] = 0
	}
	out := checkpointJSON{
		Steps:      c.Table.steps,
		Prims:      c.Table.prims,
		Q:          qv,
		QNonFinite: qnf,
		Episode:    c.Episode,
	}
	if c.Replay != nil {
		// The marshaled buffer aliases the live one until a non-finite
		// reward forces a copy (outer slice once, each affected
		// trajectory once) — sidecar slots are zeroed only in copies.
		out.Replay = c.Replay.buf
		outerCopied := false
		for ei, traj := range c.Replay.buf {
			trajCopied := false
			for ti, tr := range traj {
				if finiteOK(tr.Reward) {
					continue
				}
				out.ReplayNF = append(out.ReplayNF, replayNF{E: ei, T: ti, V: encodeNF(tr.Reward)})
				if !outerCopied {
					out.Replay = append([][]Transition(nil), c.Replay.buf...)
					outerCopied = true
				}
				if !trajCopied {
					out.Replay[ei] = append([]Transition(nil), traj...)
					trajCopied = true
				}
				out.Replay[ei][ti].Reward = 0
			}
		}
	}
	return json.Marshal(out)
}

// Dimension sanity bounds for deserialized checkpoints: large enough
// for any network the repo can express, small enough that corrupt or
// adversarial dimension fields cannot drive a giant allocation before
// the length check fires.
const (
	maxCheckpointSteps = 1 << 20
	maxCheckpointPrims = 1 << 12
)

// LoadCheckpoint restores a checkpoint. Every field is validated —
// dimensions bounded and overflow-safe, Q length consistent with
// steps×prims², episode non-negative, and every replay transition
// in range for the table — so arbitrary bytes yield an error, never a
// panic or an agent state that would index out of bounds mid-search.
func LoadCheckpoint(data []byte) (*Checkpoint, error) {
	var in checkpointJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("qlearn: %w", err)
	}
	if in.Steps <= 0 || in.Prims <= 0 || in.Steps > maxCheckpointSteps || in.Prims > maxCheckpointPrims {
		return nil, fmt.Errorf("qlearn: invalid checkpoint dims %dx%d", in.Steps, in.Prims)
	}
	if want := uint64(in.Steps) * uint64(in.Prims) * uint64(in.Prims); uint64(len(in.Q)) != want {
		return nil, fmt.Errorf("qlearn: checkpoint Q has %d entries, want %d", len(in.Q), want)
	}
	if in.Episode < 0 {
		return nil, fmt.Errorf("qlearn: negative checkpoint episode %d", in.Episode)
	}
	for _, e := range in.QNonFinite {
		if e.I < 0 || e.I >= len(in.Q) {
			return nil, fmt.Errorf("qlearn: q_nonfinite index %d out of range", e.I)
		}
		v, err := decodeNF(e.V)
		if err != nil {
			return nil, err
		}
		in.Q[e.I] = v
	}
	for _, e := range in.ReplayNF {
		if e.E < 0 || e.E >= len(in.Replay) || e.T < 0 || e.T >= len(in.Replay[e.E]) {
			return nil, fmt.Errorf("qlearn: replay_nonfinite position (%d, %d) out of range", e.E, e.T)
		}
		v, err := decodeNF(e.V)
		if err != nil {
			return nil, err
		}
		in.Replay[e.E][e.T].Reward = v
	}
	for ti, traj := range in.Replay {
		for _, tr := range traj {
			if tr.Step < 0 || tr.Step >= in.Steps || tr.Prim < 0 || tr.Prim >= in.Prims ||
				tr.Action < 0 || tr.Action >= in.Prims {
				return nil, fmt.Errorf("qlearn: replay episode %d transition out of range (step %d, prim %d, action %d)",
					ti, tr.Step, tr.Prim, tr.Action)
			}
			if len(tr.NextAllowed) > 0 && tr.Step+1 >= in.Steps {
				return nil, fmt.Errorf("qlearn: replay episode %d has successor actions past the final step", ti)
			}
			for _, a := range tr.NextAllowed {
				if a < 0 || a >= in.Prims {
					return nil, fmt.Errorf("qlearn: replay episode %d successor action %d out of range", ti, a)
				}
			}
		}
	}
	t := NewTable(in.Steps, in.Prims)
	copy(t.q, in.Q)
	r := NewReplay(maxIntQ(len(in.Replay), 1))
	for _, traj := range in.Replay {
		r.Add(traj)
	}
	return &Checkpoint{Table: t, Replay: r, Episode: in.Episode}, nil
}

func maxIntQ(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot copies the current agent state into a Checkpoint (deep
// copies, so further learning does not mutate the snapshot).
func Snapshot(t *Table, r *Replay, episode int) *Checkpoint {
	ct := NewTable(t.steps, t.prims)
	t.canonicalQ(ct.q)
	var cr *Replay
	if r != nil {
		cr = NewReplay(r.cap)
		for _, traj := range r.buf {
			cr.Add(traj)
		}
	}
	return &Checkpoint{Table: ct, Replay: cr, Episode: episode}
}
