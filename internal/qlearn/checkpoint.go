package qlearn

import (
	"encoding/json"
	"fmt"
)

// Checkpointing: the paper's search is fast enough to run to
// completion, but a production autotuner interleaves profiling and
// searching across sessions — so the agent's learned state (Q-table +
// replay buffer) is serializable and restorable, resuming exactly
// where it left off.

// checkpointJSON is the on-disk form of an agent state.
type checkpointJSON struct {
	Steps   int            `json:"steps"`
	Prims   int            `json:"prims"`
	Q       []float64      `json:"q"`
	Episode int            `json:"episode"`
	Replay  [][]Transition `json:"replay,omitempty"`
}

// Checkpoint captures a search's learned state at a given episode.
type Checkpoint struct {
	// Table is the Q-table snapshot.
	Table *Table
	// Replay is the experience buffer snapshot (may be nil).
	Replay *Replay
	// Episode is the number of episodes already run.
	Episode int
}

// Marshal serializes the checkpoint.
func (c *Checkpoint) Marshal() ([]byte, error) {
	out := checkpointJSON{
		Steps:   c.Table.steps,
		Prims:   c.Table.prims,
		Q:       c.Table.q,
		Episode: c.Episode,
	}
	if c.Replay != nil {
		out.Replay = c.Replay.buf
	}
	return json.Marshal(out)
}

// LoadCheckpoint restores a checkpoint.
func LoadCheckpoint(data []byte) (*Checkpoint, error) {
	var in checkpointJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("qlearn: %w", err)
	}
	if in.Steps <= 0 || in.Prims <= 0 {
		return nil, fmt.Errorf("qlearn: invalid checkpoint dims %dx%d", in.Steps, in.Prims)
	}
	if len(in.Q) != in.Steps*in.Prims*in.Prims {
		return nil, fmt.Errorf("qlearn: checkpoint Q has %d entries, want %d",
			len(in.Q), in.Steps*in.Prims*in.Prims)
	}
	t := NewTable(in.Steps, in.Prims)
	copy(t.q, in.Q)
	r := NewReplay(maxIntQ(len(in.Replay), 1))
	for _, traj := range in.Replay {
		r.Add(traj)
	}
	return &Checkpoint{Table: t, Replay: r, Episode: in.Episode}, nil
}

func maxIntQ(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot copies the current agent state into a Checkpoint (deep
// copies, so further learning does not mutate the snapshot).
func Snapshot(t *Table, r *Replay, episode int) *Checkpoint {
	ct := NewTable(t.steps, t.prims)
	copy(ct.q, t.q)
	var cr *Replay
	if r != nil {
		cr = NewReplay(r.cap)
		for _, traj := range r.buf {
			cr.Add(traj)
		}
	}
	return &Checkpoint{Table: ct, Replay: cr, Episode: episode}
}
