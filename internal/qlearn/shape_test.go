package qlearn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomVocab draws a duplicate-free action subset per step; terminal
// steps (empty vocabularies) stay nil.
func randomVocab(rng *rand.Rand, steps, prims int) [][]int {
	allowed := make([][]int, steps)
	for s := 0; s+1 < steps; s++ {
		perm := rng.Perm(prims)
		w := 1 + rng.Intn(prims)
		allowed[s] = perm[:w]
	}
	return allowed
}

func fillRandom(t *Table, rng *rand.Rand) {
	for i := range t.q {
		t.q[i] = -rng.Float64() * 10
	}
}

// Shaping is a pure layout change: every accessor must read the same
// values before, during and after, and Unshape must restore the exact
// backing array.
func TestShapeUnshapeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const steps, prims = 6, 9
	tab := NewTable(steps, prims)
	fillRandom(tab, rng)
	orig := append([]float64(nil), tab.q...)

	allowed := randomVocab(rng, steps, prims)
	if err := tab.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	for s := 0; s < steps; s++ {
		for p := 0; p < prims; p++ {
			for a := 0; a < prims; a++ {
				want := orig[(s*prims+p)*prims+a]
				if got := tab.Get(s, p, a); got != want {
					t.Fatalf("shaped Get(%d,%d,%d) = %v, want %v", s, p, a, got, want)
				}
			}
		}
	}
	// Re-shaping with a different vocabulary preserves values too.
	if err := tab.Shape(randomVocab(rng, steps, prims)); err != nil {
		t.Fatalf("re-Shape: %v", err)
	}
	tab.Unshape()
	for i := range orig {
		if math.Float64bits(tab.q[i]) != math.Float64bits(orig[i]) {
			t.Fatalf("Unshape: q[%d] = %v, want %v", i, tab.q[i], orig[i])
		}
	}
}

func TestShapeRejectsBadVocab(t *testing.T) {
	tab := NewTable(3, 4)
	if err := tab.Shape(make([][]int, 2)); err == nil {
		t.Fatal("Shape accepted wrong step count")
	}
	if err := tab.Shape([][]int{{0, 0}, nil, nil}); err == nil {
		t.Fatal("Shape accepted duplicate action")
	}
	if err := tab.Shape([][]int{{4}, nil, nil}); err == nil {
		t.Fatal("Shape accepted out-of-range action")
	}
	if err := tab.Shape([][]int{{-1}, nil, nil}); err == nil {
		t.Fatal("Shape accepted negative action")
	}
	if tab.perm != nil {
		t.Fatal("failed Shape left the table shaped")
	}
}

// randomEpisode draws a trajectory over the vocabulary structure used
// by the search engine: the prim at step k+1 is the action taken at
// step k, and NextAllowed aliases the shared vocabulary slices.
func randomEpisode(rng *rand.Rand, allowed [][]int, epLen int) []Transition {
	traj := make([]Transition, epLen)
	prev := 0
	for k := 0; k < epLen; k++ {
		acts := allowed[k]
		action := acts[rng.Intn(len(acts))]
		var next []int
		if k+1 < epLen {
			next = allowed[k+1]
		}
		traj[k] = Transition{Step: k, Prim: prev, Action: action,
			Reward: -rng.Float64(), NextAllowed: next}
		prev = action
	}
	return traj
}

// A shaped table must behave bit-identically to an unshaped twin under
// the full agent workload: Best (including tie-break draws), MaxQ,
// Update, UpdateEpisode and compiled replay.
func TestShapedBitIdenticalToUnshaped(t *testing.T) {
	const steps, prims, episodes = 7, 11, 200
	seedRng := rand.New(rand.NewSource(21))
	allowed := randomVocab(seedRng, steps, prims)
	epLen := steps - 1

	plain := NewTable(steps, prims)
	shaped := NewTable(steps, prims)
	if err := shaped.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	cfg := PaperConfig()
	rp := NewReplay(16)
	rs := NewReplay(16)
	rngP := rand.New(rand.NewSource(77))
	rngS := rand.New(rand.NewSource(77))
	trajRng := rand.New(rand.NewSource(99))

	for ep := 0; ep < episodes; ep++ {
		traj := randomEpisode(trajRng, allowed, epLen)
		for k := 0; k < epLen; k++ {
			s, p := traj[k].Step, traj[k].Prim
			bp := plain.Best(s, p, allowed[k], rngP)
			bs := shaped.Best(s, p, allowed[k], rngS)
			if bp != bs {
				t.Fatalf("ep %d step %d: Best %d != %d", ep, k, bs, bp)
			}
			mp := plain.MaxQ(s, p, allowed[k])
			ms := shaped.MaxQ(s, p, allowed[k])
			if math.Float64bits(mp) != math.Float64bits(ms) {
				t.Fatalf("ep %d step %d: MaxQ %x != %x", ep, k,
					math.Float64bits(ms), math.Float64bits(mp))
			}
			if w := len(allowed[k]); w > 1 {
				// A sub-vocabulary misses the identity fast path and
				// must translate through the permutation instead.
				sub := allowed[k][:w-1]
				bp := plain.Best(s, p, sub, rngP)
				bs := shaped.Best(s, p, sub, rngS)
				if bp != bs {
					t.Fatalf("ep %d step %d: sub-vocab Best %d != %d", ep, k, bs, bp)
				}
				mp := plain.MaxQ(s, p, sub)
				ms := shaped.MaxQ(s, p, sub)
				if math.Float64bits(mp) != math.Float64bits(ms) {
					t.Fatalf("ep %d step %d: sub-vocab MaxQ differs", ep, k)
				}
			}
		}
		if ep%3 == 0 {
			// Exercise the single-transition path too.
			plain.Update(traj[0], cfg)
			shaped.Update(traj[0], cfg)
		}
		plain.UpdateEpisode(traj, cfg)
		shaped.UpdateEpisode(traj, cfg)
		rp.Add(traj)
		rs.Add(traj)
		rp.ReplayInto(plain, cfg, 8, rngP)
		rs.ReplayInto(shaped, cfg, 8, rngS)
	}

	canon := make([]float64, len(shaped.q))
	shaped.canonicalQ(canon)
	for i := range plain.q {
		if math.Float64bits(plain.q[i]) != math.Float64bits(canon[i]) {
			t.Fatalf("q[%d]: shaped %x != plain %x", i,
				math.Float64bits(canon[i]), math.Float64bits(plain.q[i]))
		}
	}
}

// Checkpoints serialize the canonical layout: a shaped table and its
// unshaped twin must marshal to the same bytes.
func TestShapedCheckpointCanonicalBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const steps, prims = 5, 6
	plain := NewTable(steps, prims)
	fillRandom(plain, rng)
	shaped := NewTable(steps, prims)
	copy(shaped.q, plain.q)
	if err := shaped.Shape(randomVocab(rng, steps, prims)); err != nil {
		t.Fatalf("Shape: %v", err)
	}

	bp, err := (&Checkpoint{Table: plain, Episode: 3}).Marshal()
	if err != nil {
		t.Fatalf("Marshal plain: %v", err)
	}
	bs, err := (&Checkpoint{Table: shaped, Episode: 3}).Marshal()
	if err != nil {
		t.Fatalf("Marshal shaped: %v", err)
	}
	if !bytes.Equal(bp, bs) {
		t.Fatal("shaped checkpoint bytes differ from unshaped")
	}

	// Snapshot must capture canonical values as well.
	sp := Snapshot(plain, nil, 3)
	ss := Snapshot(shaped, nil, 3)
	for i := range sp.Table.q {
		if math.Float64bits(sp.Table.q[i]) != math.Float64bits(ss.Table.q[i]) {
			t.Fatalf("snapshot q[%d] differs", i)
		}
	}
}

// The compiled replay must keep producing UpdateEpisode's exact values
// after the ring wraps and slots are overwritten in place.
func TestReplayCompiledRingWrapEquivalence(t *testing.T) {
	const steps, prims, capacity, epLen = 6, 8, 4, 5
	seedRng := rand.New(rand.NewSource(31))
	allowed := randomVocab(seedRng, steps, prims)

	compiled := NewTable(steps, prims)
	if err := compiled.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	naive := NewTable(steps, prims)
	rc := NewReplay(capacity)
	var naiveBuf [][]Transition
	next := 0
	cfg := PaperConfig()
	rngC := rand.New(rand.NewSource(8))
	rngN := rand.New(rand.NewSource(8))
	trajRng := rand.New(rand.NewSource(44))

	for ep := 0; ep < 5*capacity; ep++ {
		traj := randomEpisode(trajRng, allowed, epLen)
		rc.Add(traj)
		cp := append([]Transition(nil), traj...)
		if len(naiveBuf) < capacity {
			naiveBuf = append(naiveBuf, cp)
		} else {
			naiveBuf[next] = cp
			next = (next + 1) % capacity
		}
		rc.ReplayInto(compiled, cfg, 6, rngC)
		for s := 0; s < 6; s++ {
			naive.UpdateEpisode(naiveBuf[rngN.Intn(len(naiveBuf))], cfg)
		}
	}

	canon := make([]float64, len(compiled.q))
	compiled.canonicalQ(canon)
	for i := range naive.q {
		if math.Float64bits(naive.q[i]) != math.Float64bits(canon[i]) {
			t.Fatalf("q[%d]: compiled %x != naive %x", i,
				math.Float64bits(canon[i]), math.Float64bits(naive.q[i]))
		}
	}
}

// Mixed trajectory lengths force slots off the slab; replay must fall
// back to the generic path for those slots and stay correct.
func TestReplayMixedLengthFallback(t *testing.T) {
	const steps, prims = 6, 8
	seedRng := rand.New(rand.NewSource(61))
	allowed := randomVocab(seedRng, steps, prims)

	tab := NewTable(steps, prims)
	if err := tab.Shape(allowed); err != nil {
		t.Fatalf("Shape: %v", err)
	}
	naive := NewTable(steps, prims)
	const capacity = 8
	r := NewReplay(capacity)
	var naiveBuf [][]Transition
	next := 0
	cfg := PaperConfig()
	rngC := rand.New(rand.NewSource(2))
	rngN := rand.New(rand.NewSource(2))
	trajRng := rand.New(rand.NewSource(3))

	for ep := 0; ep < 3*capacity; ep++ {
		epLen := 5
		if ep%3 == 1 {
			epLen = 3 // off-slab length
		}
		traj := randomEpisode(trajRng, allowed, epLen)
		r.Add(traj)
		cp := append([]Transition(nil), traj...)
		if len(naiveBuf) < capacity {
			naiveBuf = append(naiveBuf, cp)
		} else {
			naiveBuf[next] = cp
			next = (next + 1) % capacity
		}
		r.ReplayInto(tab, cfg, 5, rngC)
		for s := 0; s < 5; s++ {
			naive.UpdateEpisode(naiveBuf[rngN.Intn(len(naiveBuf))], cfg)
		}
	}

	canon := make([]float64, len(tab.q))
	tab.canonicalQ(canon)
	for i := range naive.q {
		if math.Float64bits(naive.q[i]) != math.Float64bits(canon[i]) {
			t.Fatalf("q[%d]: mixed-length replay diverged", i)
		}
	}
}
