package qlearn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperConfig(t *testing.T) {
	c := PaperConfig()
	if c.Alpha != 0.05 || c.Gamma != 0.9 || c.ReplaySize != 128 {
		t.Errorf("paper config = %+v", c)
	}
}

func TestPaperSchedule1000(t *testing.T) {
	phases := PaperSchedule(1000)
	if ScheduleEpisodes(phases) != 1000 {
		t.Fatalf("schedule covers %d episodes", ScheduleEpisodes(phases))
	}
	// 50% full exploration.
	if phases[0].Epsilon != 1 || phases[0].Episodes != 500 {
		t.Errorf("first phase = %+v, want eps 1 for 500", phases[0])
	}
	// Then 10 plateaus of 50 episodes from 0.9 down to 0.0.
	if len(phases) != 11 {
		t.Fatalf("phases = %d, want 11", len(phases))
	}
	for i := 1; i < 11; i++ {
		wantEps := 0.9 - 0.1*float64(i-1)
		if math.Abs(phases[i].Epsilon-wantEps) > 1e-9 || phases[i].Episodes != 50 {
			t.Errorf("phase %d = %+v, want eps %.1f for 50", i, phases[i], wantEps)
		}
	}
}

func TestPaperScheduleSmallAndZero(t *testing.T) {
	if PaperSchedule(0) != nil {
		t.Error("zero budget should give nil schedule")
	}
	for _, n := range []int{1, 7, 25, 99, 333} {
		if got := ScheduleEpisodes(PaperSchedule(n)); got != n {
			t.Errorf("budget %d: schedule covers %d", n, got)
		}
	}
}

func TestEpsilonAt(t *testing.T) {
	phases := PaperSchedule(1000)
	tests := []struct {
		episode int
		want    float64
	}{
		{0, 1}, {499, 1}, {500, 0.9}, {549, 0.9}, {550, 0.8}, {999, 0},
	}
	for _, tc := range tests {
		if got := EpsilonAt(phases, tc.episode); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("EpsilonAt(%d) = %v, want %v", tc.episode, got, tc.want)
		}
	}
	// Past the schedule: stays at the last epsilon.
	if got := EpsilonAt(phases, 5000); got != 0 {
		t.Errorf("past-end epsilon = %v", got)
	}
	if got := EpsilonAt(nil, 3); got != 0 {
		t.Errorf("empty schedule epsilon = %v", got)
	}
}

func TestTableGetSet(t *testing.T) {
	tab := NewTable(3, 4)
	tab.Set(2, 1, 3, -0.5)
	if got := tab.Get(2, 1, 3); got != -0.5 {
		t.Errorf("Get = %v", got)
	}
	if got := tab.Get(0, 0, 0); got != 0 {
		t.Errorf("default Q = %v, want 0", got)
	}
	if tab.Steps() != 3 {
		t.Errorf("Steps = %d", tab.Steps())
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero dims should panic")
		}
	}()
	NewTable(0, 4)
}

func TestBestPicksArgmax(t *testing.T) {
	tab := NewTable(2, 5)
	tab.Set(0, 1, 2, 1.0)
	tab.Set(0, 1, 4, 3.0)
	if got := tab.Best(0, 1, []int{2, 3, 4}, nil); got != 4 {
		t.Errorf("Best = %d, want 4", got)
	}
	// Restricting the allowed set changes the answer.
	if got := tab.Best(0, 1, []int{2, 3}, nil); got != 2 {
		t.Errorf("Best restricted = %d, want 2", got)
	}
}

func TestBestTieBreaksUniformly(t *testing.T) {
	tab := NewTable(1, 3)
	rng := rand.New(rand.NewSource(1))
	seen := map[int]int{}
	for i := 0; i < 300; i++ {
		seen[tab.Best(0, 0, []int{0, 1, 2}, rng)]++
	}
	for a := 0; a < 3; a++ {
		if seen[a] < 50 {
			t.Errorf("action %d picked only %d/300 on ties", a, seen[a])
		}
	}
}

func TestMaxQTerminal(t *testing.T) {
	tab := NewTable(2, 3)
	if got := tab.MaxQ(1, 0, nil); got != 0 {
		t.Errorf("terminal MaxQ = %v, want 0", got)
	}
}

func TestUpdateBellman(t *testing.T) {
	cfg := Config{Alpha: 0.5, Gamma: 0.9}
	tab := NewTable(2, 2)
	tab.Set(1, 1, 0, 2.0) // successor value
	tr := Transition{Step: 0, Prim: 0, Action: 1, Reward: -1, NextAllowed: []int{0}}
	tab.Update(tr, cfg)
	// target = -1 + 0.9*2 = 0.8; Q = 0*(0.5) + 0.5*0.8 = 0.4
	if got := tab.Get(0, 0, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Q after update = %v, want 0.4", got)
	}
}

func TestUpdateConvergesToReward(t *testing.T) {
	// Repeated terminal updates converge Q to the reward.
	cfg := Config{Alpha: 0.1, Gamma: 0.9}
	tab := NewTable(1, 2)
	tr := Transition{Step: 0, Prim: 0, Action: 1, Reward: -3}
	for i := 0; i < 500; i++ {
		tab.Update(tr, cfg)
	}
	if got := tab.Get(0, 0, 1); math.Abs(got-(-3)) > 1e-3 {
		t.Errorf("Q = %v, want ~-3", got)
	}
}

// Property: Q stays bounded by max |reward| / (1 - gamma) under
// repeated updates with bounded rewards.
func TestQBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Alpha: 0.3, Gamma: 0.9}
		tab := NewTable(4, 3)
		bound := 1.0 / (1 - cfg.Gamma) * 1.001
		for i := 0; i < 2000; i++ {
			step := rng.Intn(3)
			tr := Transition{
				Step:        step,
				Prim:        rng.Intn(3),
				Action:      rng.Intn(3),
				Reward:      rng.Float64()*2 - 1, // |r| <= 1
				NextAllowed: []int{0, 1, 2},
			}
			tab.Update(tr, cfg)
		}
		for s := 0; s < 4; s++ {
			for p := 0; p < 3; p++ {
				for a := 0; a < 3; a++ {
					if math.Abs(tab.Get(s, p, a)) > bound {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestUpdateEpisodePropagatesBackwards(t *testing.T) {
	// A two-step episode with terminal reward: reverse-order updating
	// must move step 0's Q in one pass.
	cfg := Config{Alpha: 1, Gamma: 1}
	tab := NewTable(3, 1)
	traj := []Transition{
		{Step: 0, Prim: 0, Action: 0, Reward: 0, NextAllowed: []int{0}},
		{Step: 1, Prim: 0, Action: 0, Reward: 5, NextAllowed: nil},
	}
	tab.UpdateEpisode(traj, cfg)
	if got := tab.Get(0, 0, 0); got != 5 {
		t.Errorf("backward propagation gave Q = %v, want 5 in one pass", got)
	}
}

func TestReplayBuffer(t *testing.T) {
	r := NewReplay(2)
	if r.Len() != 0 {
		t.Error("new buffer not empty")
	}
	traj := []Transition{{Step: 0, Prim: 0, Action: 0, Reward: 1}}
	r.Add(traj)
	r.Add(traj)
	r.Add(traj) // evicts oldest
	if r.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", r.Len())
	}
	// The stored copy is independent of the caller's slice.
	traj[0].Reward = 99
	tab := NewTable(1, 1)
	r.ReplayInto(tab, Config{Alpha: 1, Gamma: 0}, 1, rand.New(rand.NewSource(1)))
	if got := tab.Get(0, 0, 0); got != 1 {
		t.Errorf("replayed reward = %v, want the stored copy's 1", got)
	}
}

func TestReplayIntoEmptyNoop(t *testing.T) {
	r := NewReplay(4)
	tab := NewTable(1, 1)
	r.ReplayInto(tab, PaperConfig(), 10, rand.New(rand.NewSource(1)))
	if tab.Get(0, 0, 0) != 0 {
		t.Error("replay on empty buffer should not touch the table")
	}
}

func TestNewReplayClampsCapacity(t *testing.T) {
	r := NewReplay(0)
	r.Add([]Transition{{}})
	if r.Len() != 1 {
		t.Error("zero capacity should clamp to 1")
	}
}

func TestCheckpointMarshalRoundTrip(t *testing.T) {
	tab := NewTable(2, 3)
	tab.Set(1, 2, 0, -0.75)
	r := NewReplay(4)
	r.Add([]Transition{{Step: 0, Prim: 1, Action: 2, Reward: -1, NextAllowed: []int{0, 1}}})
	ck := Snapshot(tab, r, 42)
	data, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Episode != 42 {
		t.Errorf("episode = %d", back.Episode)
	}
	if got := back.Table.Get(1, 2, 0); got != -0.75 {
		t.Errorf("Q = %v", got)
	}
	if back.Replay.Len() != 1 {
		t.Errorf("replay len = %d", back.Replay.Len())
	}
	// Snapshot without a replay buffer round-trips too.
	ck2 := Snapshot(tab, nil, 1)
	data2, err := ck2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := LoadCheckpoint(data2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Replay == nil || back2.Replay.Len() != 0 {
		t.Error("nil-replay checkpoint should restore an empty buffer")
	}
}
