package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestDecodeOptimizeRequest pins the request validator: every
// malformed body is a 400-class error naming the bad field, and valid
// bodies normalize to the documented defaults.
func TestDecodeOptimizeRequest(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		wantErr string // substring of the validation error; "" = valid
	}{
		{"minimal", `{"network":"lenet5"}`, ""},
		{"full", `{"network":"alexnet","platform":"nano-like","mode":"cpu","objective":"latency","episodes":200,"samples":3,"seed":7}`, ""},
		{"empty body", ``, "decoding request"},
		{"malformed json", `{"network":`, "decoding request"},
		{"wrong top-level type", `[1,2,3]`, "decoding request"},
		{"wrong field type", `{"network":"lenet5","episodes":"many"}`, "decoding request"},
		{"missing network", `{}`, "network is required"},
		{"blank network", `{"network":"   "}`, "network is required"},
		{"unknown network", `{"network":"resnet-9000"}`, "unknown network"},
		{"unknown platform", `{"network":"lenet5","platform":"tpu-like"}`, "unknown platform"},
		{"unknown mode", `{"network":"lenet5","mode":"fpga"}`, "unknown mode"},
		{"unknown objective", `{"network":"lenet5","objective":"energy"}`, "unknown objective"},
		{"negative episodes", `{"network":"lenet5","episodes":-5}`, "episodes must be positive"},
		{"fractional episodes", `{"network":"lenet5","episodes":10.5}`, "episodes must be an integer"},
		{"huge episodes", `{"network":"lenet5","episodes":1e99}`, "episodes exceeds the limit"},
		{"negative samples", `{"network":"lenet5","samples":-1}`, "samples must be positive"},
		{"fractional samples", `{"network":"lenet5","samples":0.5}`, "samples must be an integer"},
		{"huge samples", `{"network":"lenet5","samples":1e12}`, "samples exceeds the limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, spec, err := decodeOptimizeRequest(strings.NewReader(tc.body))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("decode(%s): unexpected error %v", tc.body, err)
				}
				if spec == nil {
					t.Fatal("valid request returned nil spec")
				}
				return
			}
			if err == nil {
				t.Fatalf("decode(%s): want error containing %q, got nil", tc.body, tc.wantErr)
			}
			if !isBadRequest(err) {
				t.Fatalf("decode(%s): error %v is not a bad-request error", tc.body, err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("decode(%s): error %q does not contain %q", tc.body, err, tc.wantErr)
			}
		})
	}
}

// TestSpecDefaults pins the normalization: zero fields take the
// paper's defaults and the coalescing key reflects them.
func TestSpecDefaults(t *testing.T) {
	_, spec, err := decodeOptimizeRequest(strings.NewReader(`{"network":"lenet5"}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Platform != "tx2-like" || spec.ModeName != "gpgpu" || spec.Objective != "latency" {
		t.Fatalf("defaults: got platform=%q mode=%q objective=%q", spec.Platform, spec.ModeName, spec.Objective)
	}
	if spec.Episodes != 1000 || spec.Samples != 50 || spec.Seed != 1 {
		t.Fatalf("defaults: got episodes=%d samples=%d seed=%d", spec.Episodes, spec.Samples, spec.Seed)
	}
	want := "lenet5|tx2-like|gpgpu|latency|e1000|s50|r1"
	if spec.key() != want {
		t.Fatalf("key: got %q, want %q", spec.key(), want)
	}
	if spec.lutKey() != "lenet5|tx2-like|gpgpu|s50" {
		t.Fatalf("lutKey: got %q", spec.lutKey())
	}
}

// TestBudgetNonFinite covers the NaN/Inf inputs JSON literals cannot
// express but the validator must still reject (a programmatic caller
// can construct them).
func TestBudgetNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		req := OptimizeRequest{Network: "lenet5", Episodes: v}
		if _, err := req.spec(); err == nil || !isBadRequest(err) {
			t.Fatalf("episodes=%v: want bad-request error, got %v", v, err)
		}
	}
}

// FuzzOptimizeRequest hammers the decode+validate path with arbitrary
// bytes: it must never panic, every rejection must be a bad-request
// error, and every accepted request must normalize to a fixed point
// (the normalized form re-validates to the same coalescing key — the
// property crash resume depends on when it re-admits stored requests).
func FuzzOptimizeRequest(f *testing.F) {
	seeds := []string{
		`{"network":"lenet5"}`,
		`{"network":"lenet5","platform":"nano-like","mode":"cpu","episodes":200,"samples":3,"seed":9,"wait":true}`,
		`{"network":"lenet5","episodes":1e99}`,
		`{"network":"lenet5","episodes":-1}`,
		`{"network":"lenet5","samples":0.5}`,
		`{"network":""}`,
		`{`,
		`[]`,
		`null`,
		`{"network":"lenet5","mode":"fpga"}`,
		strings.Repeat(`{"network":"lenet5",`, 200),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, spec, err := decodeOptimizeRequest(bytes.NewReader(data))
		if err != nil {
			if !isBadRequest(err) {
				t.Fatalf("decode error %v is not a bad-request error", err)
			}
			return
		}
		if spec == nil {
			t.Fatal("valid request returned nil spec")
		}
		norm := spec.request()
		spec2, err := norm.spec()
		if err != nil {
			t.Fatalf("normalized request failed validation: %v", err)
		}
		if spec2.key() != spec.key() {
			t.Fatalf("normalization is not a fixed point: %q -> %q", spec.key(), spec2.key())
		}
	})
}
