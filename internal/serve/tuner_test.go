package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/primitives"
	"repro/internal/tune"
)

// TestServeTunerCache: a server configured with a tuned-variant cache
// feeds the tuned twins into every matching profiled table, the search
// can select them, and /statusz reports the tuner state.
func TestServeTunerCache(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "tuned.qsd")
	// A tuned conv1 variant with a time no search can refuse, plus a
	// forged entry the apply layer must skip.
	c := &tune.Cache{
		Network: "lenet5",
		Mode:    primitives.ModeCPU.String(),
		Budget:  8,
		Entries: []tune.Entry{
			{Layer: 1, Base: "openblas-gemm-im2col", Variant: tune.Variant{KC: 32}, Seconds: 1e-7, DefaultSec: 1e-3},
			{Layer: 999, Base: "openblas-gemm-im2col", Variant: tune.Variant{KC: 32}, Seconds: 1e-7, DefaultSec: 1e-3},
		},
	}
	c.Stats = tune.Stats{PairsTuned: 1, Generated: 100, Measured: 10, Entries: 1, BestSpeedup: 2}
	if err := c.Save(cachePath); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, TunerCache: cachePath})
	code, _, payload := postOptimize(t, ts.URL, fastBody(1))
	if code != http.StatusOK {
		t.Fatalf("optimize: %d %s", code, payload)
	}
	if !strings.Contains(string(payload), primitives.TunedSuffix) {
		t.Errorf("searched plan did not select the tuned twin: %s", payload)
	}

	st := srv.Status()
	if st.Tuner == nil || !st.Tuner.Loaded || st.Tuner.Error != "" {
		t.Fatalf("tuner status: %+v", st.Tuner)
	}
	if st.Tuner.Network != "lenet5" || st.Tuner.Entries != 2 {
		t.Errorf("tuner identity: %+v", st.Tuner)
	}
	if st.Tuner.Applied != 1 || st.Tuner.Skipped != 1 {
		t.Errorf("applied/skipped = %d/%d, want 1/1", st.Tuner.Applied, st.Tuner.Skipped)
	}
	if st.Tuner.Stats.BestSpeedup != 2 {
		t.Errorf("stats not echoed: %+v", st.Tuner.Stats)
	}
}

// TestServeTunerCacheCorrupt: a torn or corrupt cache file must not
// stop the daemon — it starts, reports the load error in /statusz, and
// serves untuned defaults.
func TestServeTunerCacheCorrupt(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "tuned.qsd")
	if err := os.WriteFile(cachePath, []byte("QSD1 torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, TunerCache: cachePath})
	code, _, payload := postOptimize(t, ts.URL, fastBody(2))
	if code != http.StatusOK {
		t.Fatalf("optimize with corrupt tuner cache: %d %s", code, payload)
	}
	if strings.Contains(string(payload), primitives.TunedSuffix) {
		t.Errorf("corrupt cache still applied tunings: %s", payload)
	}
	st := srv.Status()
	if st.Tuner == nil || st.Tuner.Loaded || st.Tuner.Error == "" {
		t.Fatalf("corrupt cache status: %+v", st.Tuner)
	}
}
