package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/health"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/resilience"
	"repro/internal/runner"
	"repro/internal/searchplan"
	"repro/internal/tune"
)

// ProfileFunc builds the look-up table for one validated request. The
// server wraps it in the single-flight runner.Flight, so it runs at
// most once per distinct (network, platform, mode, samples)
// combination no matter how many clients ask concurrently. It must
// honor ctx. nil selects the platform simulator.
type ProfileFunc func(ctx context.Context, net *nn.Network, board *platform.Platform, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error)

// Config configures a Server.
type Config struct {
	// MaxInflight is the number of concurrent searches (the worker
	// count); <= 0 selects one per CPU.
	MaxInflight int
	// QueueDepth bounds the admission queue; a request arriving with
	// the queue full is rejected with 429 + Retry-After. <= 0
	// selects 64.
	QueueDepth int
	// PlanStore is the durable state directory (plans + job records +
	// search checkpoints); empty serves from memory only, with no
	// crash resume.
	PlanStore string
	// CacheSize is the warm in-memory plan LRU capacity; <= 0
	// selects 256.
	CacheSize int
	// SnapshotEvery is the search checkpoint cadence in episodes —
	// also the progress-event granularity; <= 0 selects
	// core.DefaultSnapshotEvery.
	SnapshotEvery int
	// RetainJobs bounds how many finished jobs stay pollable at
	// /v1/jobs/{id}; <= 0 selects 1024.
	RetainJobs int
	// Profile overrides the profiling step (tests use it to count
	// invocations and inject gates); nil profiles on the platform
	// simulator.
	Profile ProfileFunc
	// Robust selects the fault-tolerant measurement policy for the
	// default simulator profiler; ignored when Profile is non-nil.
	Robust *profile.Robust
	// Faults, when non-nil, wraps the default simulator source in the
	// seeded fault injector — the test/chaos harness for the
	// resilience machinery. Ignored when Profile is non-nil.
	Faults *profile.FaultConfig
	// MaxDeadline caps the per-request deadline_ms budget and, when
	// set, also applies as the default budget for requests that send
	// none. 0 leaves client budgets uncapped and deadline-less
	// requests unbounded (the legacy behavior).
	MaxDeadline time.Duration
	// Brownout enables degraded serving: when a job cannot be
	// completed in budget (queue delay, open breakers, profiling
	// failure), the newest cached plan of the request's family is
	// served with degraded=true and an honest Retry-After, instead of
	// an error.
	Brownout bool
	// Breaker, when non-nil, installs per-(platform, library) circuit
	// breakers around the default simulator profiler. A nil Exempt
	// list defaults to the Vanilla library — the degradation floor
	// must stay measurable. Ignored when Profile is non-nil.
	Breaker *resilience.BreakerConfig
	// WatchdogStall, when > 0, arms the stuck-work watchdog: a job
	// whose progress heartbeat (profiled measurements, checkpoint
	// boundaries) goes quiet for more than
	// max(WatchdogStall, WatchdogMult x learned cadence) is canceled.
	WatchdogStall time.Duration
	// WatchdogMult is the learned-cadence multiple for the watchdog
	// limit; <= 0 selects 8.
	WatchdogMult float64
	// Health configures the plan-health subsystem: canary re-profiling
	// cadence, drift band, plan TTL, and self-healing. nil installs the
	// defaults with no background canary loop (ticks can still be
	// driven explicitly via CanaryTick).
	Health *health.Config
	// TunerCache, when set, loads a kernel-autotuner cache file
	// (written by `qsdnn profile -engine -autotune -tuner-cache`) at
	// startup and feeds its tuned-variant candidates into every
	// profiled table whose network and mode match, so searches can
	// select the tuned kernels. An unreadable or corrupt cache is
	// reported in /statusz and ignored — the server starts and serves
	// defaults.
	TunerCache string
}

// errStopped aborts a search at a checkpoint boundary during a hard
// stop: the snapshot is already durable, so the job resumes on the
// next start.
var errStopped = errors.New("serve: hard stop at checkpoint boundary")

// errAbandoned cancels a job every waiting client has walked away
// from: with no waiter and no durable-record obligation, nobody will
// ever read the result.
var errAbandoned = errors.New("serve: all waiting clients disconnected")

// Server is the optimization daemon. Create with New, mount
// Handler(), and stop with Drain.
type Server struct {
	cfg    Config
	every  int
	retain int

	profileFn ProfileFunc // nil selects the simulator pipeline in profileJob
	flight    *runner.Flight
	lru       *lruCache
	store     *planStore // nil without Config.PlanStore
	breakers  *resilience.BreakerSet
	watchdog  *resilience.Watchdog

	// Plan health. hcfg is never nil (defaults when Config.Health is
	// nil); monitor is the drift/quarantine state machine. lutMu guards
	// the LUT registrations, the plan index (lutKey -> plan keys), and
	// the outstanding-heal bookkeeping; it is a leaf lock under s.mu —
	// never acquire s.mu while holding it.
	hcfg       *health.Config
	monitor    *health.Monitor
	canaryStop chan struct{}

	lutMu       sync.Mutex
	luts        map[string]*lutInfo
	planIndex   map[string][]string
	healPending map[string]int
	healRolled  map[string]bool

	// faultSrcs shares one fault injector per profiling key so injected
	// drift persists across re-profiles; driftRound is the round new
	// sources start at.
	faultMu    sync.Mutex
	faultSrcs  map[string]*profile.FaultSource
	driftRound int64

	// planMetas records each cached plan's health lineage (epoch,
	// parent, fingerprints); planMu is a leaf lock.
	planMu    sync.Mutex
	planMetas map[string]planMeta

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// family maps a brownout family key to the newest full-plan
	// request key cached for it.
	famMu  sync.Mutex
	family map[string]string

	// svcNanos is an EWMA of recent per-job service time (ns), feeding
	// the Retry-After estimator. 0 until the first job completes.
	svcNanos atomic.Int64

	mu        sync.Mutex
	draining  bool
	queue     chan *job
	resumedQ  []*job
	jobs      map[string]*job
	byKey     map[string]*job
	doneOrder []string
	nextID    int64

	queuedN         atomic.Int64
	inflight        atomic.Int64
	accepted        atomic.Int64
	rejected        atomic.Int64
	coalesced       atomic.Int64
	completed       atomic.Int64
	failed          atomic.Int64
	interrupted     atomic.Int64
	canceled        atomic.Int64
	watchdogFired   atomic.Int64
	degradedServed  atomic.Int64
	budgetExhausted atomic.Int64
	resumed         atomic.Int64
	skippedRec      atomic.Int64
	searches        atomic.Int64
	planHits        atomic.Int64
	storeHits       atomic.Int64
	planMisses      atomic.Int64

	// tuner is the loaded autotuner cache (nil when Config.TunerCache
	// is empty or the file was rejected); tunerErr records why a
	// configured cache did not load.
	tuner        *tune.Cache
	tunerErr     string
	tunerApplied atomic.Int64
	tunerSkipped atomic.Int64

	canaryRounds    atomic.Int64
	canaryMeasured  atomic.Int64
	driftedEntries  atomic.Int64
	quarantines     atomic.Int64
	healsEnqueued   atomic.Int64
	healsDeferred   atomic.Int64
	healedPairs     atomic.Int64
	healedN         atomic.Int64
	rolledBackN     atomic.Int64
	revalServed     atomic.Int64
	lutEvicted      atomic.Int64
	degradedEvicted atomic.Int64
}

// defaultProfile profiles on the platform simulator, optionally under
// the robust measurement policy.
func defaultProfile(robust *profile.Robust) ProfileFunc {
	return func(ctx context.Context, net *nn.Network, board *platform.Platform, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		sim := profile.NewSimSource(net, board)
		return profile.RunFallible(ctx, net, profile.AsFallible(sim),
			profile.Options{Mode: mode, Samples: samples, Robust: robust})
	}
}

// New builds a Server, reopens its durable store, re-admits every job
// record a previous process left behind (crash or hard-stop resume),
// and starts the worker set.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	every := cfg.SnapshotEvery
	if every <= 0 {
		every = core.DefaultSnapshotEvery
	}
	retain := cfg.RetainJobs
	if retain <= 0 {
		retain = 1024
	}
	hcfg := cfg.Health
	if hcfg == nil {
		hcfg = &health.Config{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		every:       every,
		retain:      retain,
		profileFn:   cfg.Profile,
		flight:      runner.NewFlight(),
		lru:         newLRU(cfg.CacheSize),
		baseCtx:     ctx,
		cancel:      cancel,
		queue:       make(chan *job, cfg.QueueDepth),
		jobs:        map[string]*job{},
		byKey:       map[string]*job{},
		family:      map[string]string{},
		hcfg:        hcfg,
		monitor:     health.NewMonitor(hcfg.ConfirmCount()),
		canaryStop:  make(chan struct{}),
		luts:        map[string]*lutInfo{},
		planIndex:   map[string][]string{},
		healPending: map[string]int{},
		healRolled:  map[string]bool{},
		faultSrcs:   map[string]*profile.FaultSource{},
		planMetas:   map[string]planMeta{},
	}
	if cfg.TunerCache != "" {
		if c, err := tune.LoadCache(cfg.TunerCache); err != nil {
			s.tunerErr = err.Error()
		} else {
			// Twins must exist before any table is built so tuned ids
			// fit the tables' candidate bounds.
			primitives.EnableTunedVariants()
			s.tuner = c
		}
	}
	if cfg.Breaker != nil {
		bcfg := *cfg.Breaker
		if bcfg.Exempt == nil {
			// Vanilla is the degradation floor: RunFallible can drop any
			// other library's candidates, but an unmeasurable Vanilla
			// fails the whole table, so its breaker never trips.
			bcfg.Exempt = []string{primitives.Vanilla.String()}
		}
		s.breakers = resilience.NewBreakerSet(&bcfg)
	}
	if cfg.WatchdogStall > 0 {
		s.watchdog = resilience.NewWatchdog(cfg.WatchdogStall, cfg.WatchdogMult)
		s.watchdog.Start()
	}
	if cfg.PlanStore != "" {
		st, err := openPlanStore(cfg.PlanStore)
		if err != nil {
			cancel()
			s.stopWatchdog()
			return nil, err
		}
		s.store = st
		reqs, skipped, err := st.pendingJobs()
		if err != nil {
			cancel()
			s.stopWatchdog()
			return nil, err
		}
		s.skippedRec.Add(int64(skipped))
		for _, req := range reqs {
			spec, err := req.spec()
			if err != nil {
				s.skippedRec.Add(1)
				continue
			}
			j := newJob(s.newID(), spec)
			j.resumed = true
			// Resumed jobs run without a deadline and regardless of
			// waiters: the durable record is an obligation to finish.
			j.arm(s.baseCtx, 0)
			j.pinned = true
			s.jobs[j.id] = j
			s.byKey[spec.key()] = j
			s.resumedQ = append(s.resumedQ, j)
			s.queuedN.Add(1)
			s.resumed.Add(1)
		}
		// Rebuild the in-memory indexes from the durable plans (oldest
		// first, so the newest plan of each family wins): the brownout
		// family map, and the health plan index + lineage metadata, so
		// quarantine and TTL accounting survive restarts.
		for _, key := range st.planKeys() {
			if cfg.Brownout {
				s.noteFamily(key)
			}
			sp, err := specFromKey(key)
			if err != nil {
				continue
			}
			if _, meta, ok := st.getPlan(key); ok {
				s.notePlan(key, sp, meta)
			}
		}
	}
	for w := 0; w < cfg.MaxInflight; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if hcfg.Interval > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.canaryLoop(hcfg.Interval)
		}()
	}
	return s, nil
}

// newID mints a job id. Callers either hold s.mu or run before any
// concurrency exists (New).
func (s *Server) newID() string {
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errorJSON is the uniform error reply body.
type errorJSON struct {
	Error string `json:"error"`
}

// handleOptimize is the admission path: validate (400), serve from the
// plan cache/store when the identical request was already optimized,
// coalesce onto an identical in-flight job, or admit onto the bounded
// queue — rejecting with 429 + Retry-After when it is full and 503
// while draining.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	req, spec, err := decodeOptimizeRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	key := spec.key()
	if payload, ok := s.lookupPlan(key); ok {
		writeJSON(w, http.StatusOK, s.cachedResponse(spec, key, payload))
		return
	}
	// The effective deadline budget: the client's, capped by the
	// server's -max-deadline, which also applies when the client sent
	// none.
	budget := spec.Deadline
	if s.cfg.MaxDeadline > 0 && (budget == 0 || budget > s.cfg.MaxDeadline) {
		budget = s.cfg.MaxDeadline
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "server is draining"})
		return
	}
	if j := s.byKey[key]; j != nil {
		s.coalesced.Add(1)
		if req.Wait {
			j.addWaiter()
		}
		s.mu.Unlock()
		s.respondJob(w, r, j, req.Wait, http.StatusOK, budget)
		return
	}
	// Second cache check under the lock: a job for this key may have
	// finished between the lock-free lookup above and here (it caches
	// its plan before releasing its coalescing slot, so holding s.mu
	// with byKey empty means any such plan is already visible) —
	// without this, the race would admit a duplicate search.
	if payload, ok := s.lookupPlan(key); ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, s.cachedResponse(spec, key, payload))
		return
	}
	// Load shedding under a budget: when the queue alone is expected
	// to eat the whole budget, admitting the job would only burn a
	// worker on an answer nobody can wait for — brown out (or refuse
	// honestly) up front.
	if budget > 0 && s.estimatedDelay() > budget {
		s.rejected.Add(1)
		s.mu.Unlock()
		s.brownoutOr503(w, spec, "queue delay exceeds the request deadline budget")
		return
	}
	j := newJob(s.newID(), spec)
	j.arm(s.baseCtx, budget)
	if req.Wait {
		j.addWaiter()
	} else {
		// An async (202) submission has no connected waiter to track;
		// the client polls, so the job must run.
		j.pinned = true
	}
	if s.store != nil {
		// Durable admission: the job record lands before the job is
		// claimable, so a SIGKILL at any later instant cannot lose it —
		// and the record is an obligation to finish even if every
		// waiter disconnects.
		j.pinned = true
		if err := s.store.saveJobRecord(spec, nil); err != nil {
			s.mu.Unlock()
			j.release()
			writeJSON(w, http.StatusInternalServerError, errorJSON{Error: fmt.Sprintf("persisting job record: %v", err)})
			return
		}
	}
	select {
	case s.queue <- j:
	default:
		if s.store != nil {
			s.store.dropJobRecord(key)
		}
		s.rejected.Add(1)
		s.mu.Unlock()
		j.release()
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorJSON{Error: "queue full"})
		return
	}
	s.jobs[j.id] = j
	s.byKey[key] = j
	s.accepted.Add(1)
	s.queuedN.Add(1)
	s.mu.Unlock()
	s.respondJob(w, r, j, req.Wait, http.StatusAccepted, budget)
}

// brownoutOr503 answers a request the server cannot serve exactly in
// time: under brownout with a cached family plan available, a degraded
// 200; otherwise an honest 503. Both carry the Retry-After estimate.
func (s *Server) brownoutOr503(w http.ResponseWriter, spec *jobSpec, msg string) {
	w.Header().Set("Retry-After", s.retryAfter())
	if s.cfg.Brownout {
		if payload, ok := s.lookupDegraded(spec); ok {
			s.degradedServed.Add(1)
			writeJSON(w, http.StatusOK, OptimizeResponse{State: StateDone, Cached: true, Degraded: true, Plan: payload})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: msg})
}

// budgetGrace is how much longer than its budget a waiting client
// holds on: the job's own deadline fires first, the search stops at
// the next checkpoint boundary, and the best-so-far plan is built —
// all inside the grace — so the client receives the budget-exhausted
// plan instead of racing it.
const budgetGrace = time.Second

// respondJob replies for an admitted (or coalesced-onto) job: a 202
// status envelope, or — with wait — the finished plan inline. Wait
// callers must have registered a waiter (addWaiter) before calling;
// it is dropped here on every exit, and a last waiter walking away
// cancels an unpinned job.
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job, wait bool, code int, budget time.Duration) {
	if !wait {
		writeJSON(w, code, j.status())
		return
	}
	defer j.dropWaiter()
	// A waiting POST is a long poll; exempt it from the http.Server
	// write deadline (same contract as the SSE stream).
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	var timeout <-chan time.Time
	if budget > 0 {
		t := time.NewTimer(budget + budgetGrace)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		return // client gone; dropWaiter decides the job's fate
	case <-timeout:
		// The job overran its budget without even a best-so-far plan
		// (e.g. stuck in profiling past the grace).
		s.brownoutOr503(w, j.spec, "deadline budget exhausted before the job finished")
		return
	}
	st := j.status()
	switch st.State {
	case StateDone:
		if st.Degraded {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeJSON(w, http.StatusOK, st)
	case StateInterrupted, StateCanceled:
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, st)
	default:
		writeJSON(w, http.StatusInternalServerError, st)
	}
}

// jobByID looks up a job.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams a job's progress as server-sent events: one
// `data:` line per checkpoint-cadence boundary, ending with the
// terminal state event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "unknown job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: "streaming unsupported"})
		return
	}
	// A progress stream outlives any sane write deadline; exempt it
	// (ignoring the error — a recorder or h2 stream may not support
	// deadlines, and then there is nothing to exempt from).
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sent := 0
	for {
		evs, update, terminal := j.eventsFrom(sent)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
		}
		if len(evs) > 0 {
			fl.Flush()
			sent += len(evs)
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-update:
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Statusz is the GET /statusz body: queue occupancy, job outcomes, and
// every cache layer's effectiveness.
type Statusz struct {
	Draining    bool  `json:"draining"`
	MaxInflight int   `json:"max_inflight"`
	QueueDepth  int   `json:"queue_depth"`
	Inflight    int64 `json:"inflight"`
	Queued      int64 `json:"queued"`

	Accepted    int64 `json:"accepted"`
	Rejected    int64 `json:"rejected"`
	Coalesced   int64 `json:"coalesced"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Interrupted int64 `json:"interrupted"`
	Resumed     int64 `json:"resumed"`
	SkippedRec  int64 `json:"skipped_records"`
	Searches    int64 `json:"searches"`

	// Resilience outcomes: canceled jobs (abandoned / budget /
	// watchdog), watchdog firings, degraded brownout replies, and
	// best-so-far plans returned at budget exhaustion.
	Canceled        int64 `json:"canceled"`
	WatchdogCancels int64 `json:"watchdog_cancels"`
	DegradedServed  int64 `json:"degraded_served"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	// RetryAfterSeconds is the current Retry-After estimate.
	RetryAfterSeconds int `json:"retry_after_seconds"`
	// Breakers is every circuit breaker's state, sorted; absent when
	// breakers are not configured.
	Breakers []resilience.BreakerStatus `json:"breakers,omitempty"`

	// Plan health: the global profile epoch, every non-fresh
	// (platform, library) pair's state, and the canary / quarantine /
	// self-healing counters.
	ProfileEpoch    int64           `json:"profile_epoch"`
	Health          []health.Status `json:"health,omitempty"`
	CanaryRounds    int64           `json:"canary_rounds"`
	CanaryMeasured  int64           `json:"canary_measured"`
	DriftedEntries  int64           `json:"drifted_entries"`
	Quarantines     int64           `json:"quarantines"`
	HealsEnqueued   int64           `json:"heals_enqueued"`
	HealsDeferred   int64           `json:"heals_deferred"`
	Healed          int64           `json:"healed"`
	RolledBack      int64           `json:"rolled_back"`
	RevalServed     int64           `json:"revalidating_served"`
	LUTEvictions    int64           `json:"lut_evictions"`
	DegradedLUTEvic int64           `json:"degraded_lut_evictions"`

	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanStoreHits   int64 `json:"plan_store_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCacheSize   int   `json:"plan_cache_size"`
	LUTCacheHits    int   `json:"lut_cache_hits"`
	LUTCacheMisses  int   `json:"lut_cache_misses"`

	// GemmKernel is the micro-kernel the runtime CPU dispatch selected
	// for the GEMM-backed engine paths (e.g. "avx2", "go") — recorded
	// so fleet monitoring can spot hosts that silently fell back to
	// the portable kernel.
	GemmKernel string `json:"gemm_kernel"`

	// Tuner reports the kernel-autotuner cache state; omitted when no
	// Config.TunerCache is configured.
	Tuner *TunerStatus `json:"tuner,omitempty"`
}

// TunerStatus is the /statusz view of the autotuner cache.
type TunerStatus struct {
	// CachePath is the configured cache file.
	CachePath string `json:"cache_path"`
	// Loaded reports whether the cache passed the codec checks.
	Loaded bool `json:"loaded"`
	// Error is why a configured cache did not load (corrupt, torn,
	// missing); empty when Loaded.
	Error string `json:"error,omitempty"`
	// Network and Mode identify what the cache tunes.
	Network string `json:"network,omitempty"`
	Mode    string `json:"mode,omitempty"`
	// Entries is the tuned-variant count in the cache.
	Entries int `json:"entries"`
	// Applied and Skipped count per-profile application outcomes since
	// start: candidates fed into tables vs entries rejected (wrong
	// network/mode, stale layer, forged values).
	Applied int64 `json:"applied"`
	Skipped int64 `json:"skipped"`
	// Stats echoes the tuning run's recorded statistics (variants
	// generated/measured, surrogate shortlist hits, best speedup).
	Stats tune.Stats `json:"stats"`
}

// Status snapshots the daemon counters.
func (s *Server) Status() Statusz {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	lh, lm := s.flight.Stats()
	st := Statusz{
		Draining:          draining,
		MaxInflight:       s.cfg.MaxInflight,
		QueueDepth:        s.cfg.QueueDepth,
		Inflight:          s.inflight.Load(),
		Queued:            s.queuedN.Load(),
		Accepted:          s.accepted.Load(),
		Rejected:          s.rejected.Load(),
		Coalesced:         s.coalesced.Load(),
		Completed:         s.completed.Load(),
		Failed:            s.failed.Load(),
		Interrupted:       s.interrupted.Load(),
		Canceled:          s.canceled.Load(),
		WatchdogCancels:   s.watchdogFired.Load(),
		DegradedServed:    s.degradedServed.Load(),
		BudgetExhausted:   s.budgetExhausted.Load(),
		RetryAfterSeconds: s.retryAfterSeconds(),
		Resumed:           s.resumed.Load(),
		SkippedRec:        s.skippedRec.Load(),
		Searches:          s.searches.Load(),
		PlanCacheHits:     s.planHits.Load(),
		PlanStoreHits:     s.storeHits.Load(),
		PlanCacheMisses:   s.planMisses.Load(),
		PlanCacheSize:     s.lru.len(),
		LUTCacheHits:      lh,
		LUTCacheMisses:    lm,
		GemmKernel:        gemm.ActiveKernel(),
		ProfileEpoch:      s.monitor.Epoch(),
		Health:            s.monitor.Snapshot(),
		CanaryRounds:      s.canaryRounds.Load(),
		CanaryMeasured:    s.canaryMeasured.Load(),
		DriftedEntries:    s.driftedEntries.Load(),
		Quarantines:       s.quarantines.Load(),
		HealsEnqueued:     s.healsEnqueued.Load(),
		HealsDeferred:     s.healsDeferred.Load(),
		Healed:            s.healedN.Load(),
		RolledBack:        s.rolledBackN.Load(),
		RevalServed:       s.revalServed.Load(),
		LUTEvictions:      s.lutEvicted.Load(),
		DegradedLUTEvic:   s.degradedEvicted.Load(),
	}
	if s.breakers != nil {
		st.Breakers = s.breakers.Snapshot()
	}
	if s.cfg.TunerCache != "" {
		ts := &TunerStatus{
			CachePath: s.cfg.TunerCache,
			Loaded:    s.tuner != nil,
			Error:     s.tunerErr,
			Applied:   s.tunerApplied.Load(),
			Skipped:   s.tunerSkipped.Load(),
		}
		if s.tuner != nil {
			ts.Network = s.tuner.Network
			ts.Mode = s.tuner.Mode
			ts.Entries = len(s.tuner.Entries)
			ts.Stats = s.tuner.Stats
		}
		st.Tuner = ts
	}
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// lookupPlan serves a finished plan from the LRU or the durable store.
func (s *Server) lookupPlan(key string) (json.RawMessage, bool) {
	if p, ok := s.lru.get(key); ok {
		s.planHits.Add(1)
		return p, true
	}
	if s.store != nil {
		if p, meta, ok := s.store.getPlan(key); ok {
			s.storeHits.Add(1)
			s.lru.add(key, p)
			if sp, err := specFromKey(key); err == nil {
				s.notePlan(key, sp, meta)
			}
			return p, true
		}
	}
	s.planMisses.Add(1)
	return nil, false
}

// previousPlan fetches the cached plan a heal job is about to replace,
// with its lineage metadata — the rollback check's other input. The
// store is consulted first (its metadata is authoritative across
// restarts), the LRU + in-memory metadata second.
func (s *Server) previousPlan(key string) (json.RawMessage, planMeta, bool) {
	if s.store != nil {
		if p, meta, ok := s.store.getPlan(key); ok {
			return p, meta, true
		}
	}
	if p, ok := s.lru.get(key); ok {
		return p, s.planMetaFor(key), true
	}
	return nil, planMeta{}, false
}

// noteFamily records key as its family's newest full plan.
func (s *Server) noteFamily(key string) {
	s.famMu.Lock()
	s.family[familyOfKey(key)] = key
	s.famMu.Unlock()
}

// lookupDegraded serves the newest cached plan of spec's family — the
// brownout substitute when the exact plan cannot be computed in time.
func (s *Server) lookupDegraded(spec *jobSpec) (json.RawMessage, bool) {
	s.famMu.Lock()
	key, ok := s.family[spec.familyKey()]
	s.famMu.Unlock()
	if !ok {
		return nil, false
	}
	return s.lookupPlan(key)
}

// defaultServiceNanos seeds the Retry-After estimate before the first
// job has completed.
const defaultServiceNanos = int64(time.Second)

// serviceNanos returns the EWMA per-job service time in nanoseconds.
func (s *Server) serviceNanos() int64 {
	if n := s.svcNanos.Load(); n > 0 {
		return n
	}
	return defaultServiceNanos
}

// recordService folds one job's wall-clock into the service-time EWMA.
func (s *Server) recordService(d time.Duration) {
	n := int64(d)
	if n <= 0 {
		n = 1
	}
	for {
		old := s.svcNanos.Load()
		next := n
		if old != 0 {
			next = old + (n-old)/4
		}
		if s.svcNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds estimates how long a retried request would wait
// for a worker: pending work (queued + in-flight + the retry itself)
// times the recent per-job service time, spread over the worker set,
// clamped to [1, 60] seconds.
func (s *Server) retryAfterSeconds() int {
	pending := s.queuedN.Load() + s.inflight.Load() + 1
	per := s.serviceNanos()
	secs := (pending*per/int64(s.cfg.MaxInflight) + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return int(secs)
}

// retryAfter is retryAfterSeconds as a Retry-After header value.
func (s *Server) retryAfter() string {
	return strconv.Itoa(s.retryAfterSeconds())
}

// estimatedDelay is the expected queue wait for a newly admitted job.
func (s *Server) estimatedDelay() time.Duration {
	return time.Duration(s.queuedN.Load() * s.serviceNanos() / int64(s.cfg.MaxInflight))
}

// stopWatchdog halts the watchdog loop if one was armed.
func (s *Server) stopWatchdog() {
	if s.watchdog != nil {
		s.watchdog.Stop()
	}
}

// worker claims jobs — startup-resumed ones first, then the admission
// queue — until Drain closes the queue or a hard stop cancels the base
// context.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		if j := s.popResumed(); j != nil {
			s.run(j)
			continue
		}
		j, ok := <-s.queue
		if !ok {
			for j := s.popResumed(); j != nil; j = s.popResumed() {
				s.run(j)
			}
			return
		}
		s.run(j)
	}
}

func (s *Server) popResumed() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.resumedQ) == 0 {
		return nil
	}
	j := s.resumedQ[0]
	s.resumedQ = s.resumedQ[1:]
	return j
}

// run executes one job under internal/pool's panic isolation: a
// panicking search fails that job (stack captured in its error) and
// the daemon lives on.
func (s *Server) run(j *job) {
	s.queuedN.Add(-1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.setRunning()
	t0 := time.Now()
	out := pool.RunContext(s.baseCtx, 1, 1, func(int) { s.exec(j) })
	s.recordService(time.Since(t0))
	if perr := out.Err(); perr != nil {
		s.finishJob(j, StateFailed, nil, fmt.Errorf("job panicked: %v", perr))
	}
	if out.Skipped == 1 {
		// Hard stop won the race before the job started; its durable
		// admission record (if any) resumes it next start.
		s.finishJob(j, StateInterrupted, nil, errors.New("server stopped before the job ran"))
	}
}

// exec is the job pipeline: cache check, single-flight profile (under
// the breakers and the watchdog heartbeat), checkpointed search with
// progress events and deadline-budget early stop, durable plan
// persistence.
func (s *Server) exec(j *job) {
	spec := j.spec
	key := spec.key()
	if j.ctx == nil {
		j.arm(s.baseCtx, 0)
	}
	defer j.release()

	// A heal job reports its completion — any terminal state — to the
	// health monitor, so a platform's quarantine resolves only once all
	// of its outstanding heals are accounted for.
	var healRolledBack bool
	if j.revalidate {
		defer func() { s.healDone(spec, healRolledBack) }()
	}

	var hb *resilience.Heartbeat
	if s.watchdog != nil {
		hb = s.watchdog.Watch(j.id, func(cause error) {
			s.watchdogFired.Add(1)
			j.cancelCause(cause)
		})
		defer hb.Stop()
	}

	// A resumed job whose plan was already persisted (crash between
	// putPlan and dropJobRecord) finishes without searching. A heal job
	// skips this fast path: replacing that cached plan is its purpose.
	if !j.revalidate {
		if payload, ok := s.lookupPlan(key); ok {
			if s.store != nil {
				s.store.dropJobRecord(key)
			}
			s.finishJob(j, StateDone, payload, nil)
			return
		}
	}
	if j.ctx.Err() != nil && s.baseCtx.Err() == nil {
		// Abandoned or out of budget while queued; nothing ran yet.
		s.finishBudget(j, context.Cause(j.ctx))
		return
	}

	net, err := models.Build(spec.Network)
	if err != nil {
		s.finishJob(j, StateFailed, nil, err)
		return
	}
	board, ok := platform.Preset(spec.Platform)
	if !ok {
		s.finishJob(j, StateFailed, nil, fmt.Errorf("unknown platform %q", spec.Platform))
		return
	}

	// The single-flight build runs under the leader job's context, so
	// a leader's deadline can kill a build other jobs are parked on.
	// The flight evicts failed builds, so followers just retry and the
	// next leader rebuilds under its own (live) context.
	var tab *lut.Table
	var plan *searchplan.Plan
	var rep *profile.Report
	for tries := 0; ; tries++ {
		hb.Suspend() // parked on the flight: quiet time is not a stall
		var perr error
		tab, plan, rep, perr = s.flight.Get(spec.lutKey(), func() (*lut.Table, *profile.Report, error) {
			hb.Beat() // this job is the leader; its own work resumes
			return s.profileJob(j, hb, net, board)
		})
		hb.Beat()
		if perr == nil {
			break
		}
		if s.baseCtx.Err() != nil {
			s.finishJob(j, StateInterrupted, nil, fmt.Errorf("profiling interrupted: %w", perr))
			return
		}
		if j.ctx.Err() != nil {
			s.finishBudget(j, fmt.Errorf("profiling: %w", perr))
			return
		}
		if tries < 3 && (errors.Is(perr, context.Canceled) || errors.Is(perr, context.DeadlineExceeded)) {
			continue // another job's budget killed the shared build
		}
		s.finishFailed(j, fmt.Errorf("profiling: %w", perr))
		return
	}
	li := s.registerLUT(spec, net, board, tab, rep)

	var from *core.Snapshot
	if s.store != nil {
		from = s.store.loadSnapshot(key, tab)
	}
	var res *core.Result
	if from != nil && from.Checkpoint.Episode >= spec.Episodes && len(from.BestAssignment) > 0 {
		// The previous process checkpointed the full budget but died
		// before persisting the plan; the snapshot carries the final
		// best, so the result is rebuilt without re-searching.
		res = &core.Result{
			Assignment: append([]primitives.ID(nil), from.BestAssignment...),
			Time:       from.BestTime,
			Episodes:   spec.Episodes,
		}
	}
	if res == nil {
		if from != nil && from.Checkpoint.Episode >= spec.Episodes {
			from = nil // unusable snapshot; start over
		}
		s.searches.Add(1)
		cfg := core.Config{Episodes: spec.Episodes, Seed: spec.Seed}
		var serr error
		res, _, serr = core.SearchCheckpointedPlanned(plan, cfg, core.DurableOptions{
			Every: s.every,
			From:  from,
			Save: func(snap *core.Snapshot) error {
				hb.Beat()
				j.progress(snap.Checkpoint.Episode, snap.BestTime)
				if s.store != nil {
					payload, merr := snap.Marshal()
					if merr != nil {
						return merr
					}
					if werr := s.store.saveJobRecord(spec, payload); werr != nil {
						return werr
					}
				}
				if s.baseCtx.Err() != nil && snap.Checkpoint.Episode < spec.Episodes {
					// Hard stop: the snapshot just persisted is the
					// resume point; stop at this boundary.
					return errStopped
				}
				if j.ctx.Err() != nil && snap.Checkpoint.Episode < spec.Episodes {
					// Deadline budget (or cancellation) hit: stop at
					// this boundary with the best-so-far carried out.
					return fmt.Errorf("job context done: %w", core.ErrStopEarly)
				}
				return nil
			},
		})
		if serr != nil {
			if errors.Is(serr, errStopped) || s.baseCtx.Err() != nil {
				s.finishJob(j, StateInterrupted, nil, errors.New("server stopping; search checkpointed for resume"))
				return
			}
			if errors.Is(serr, core.ErrStopEarly) && res != nil {
				s.finishBestEffort(j, net, tab, res)
				return
			}
			if j.ctx.Err() != nil {
				s.finishBudget(j, serr)
				return
			}
			s.finishFailed(j, serr)
			return
		}
	}

	meta := planMeta{Epoch: li.epoch, Fingerprints: li.fps}
	if j.revalidate {
		// Rollback guard: re-price the plan being replaced on the fresh
		// table; if the re-search regressed against it, keep the parent
		// assignment (re-priced on fresh measurements) instead.
		if old, oldMeta, ok := s.previousPlan(key); ok {
			meta.ParentEpoch = oldMeta.Epoch
			if ids, t, rok := replayAssignment(old, tab); rok && t < res.Time {
				res = &core.Result{Assignment: ids, Time: t, Episodes: res.Episodes}
				meta.RolledBack = true
			}
		}
	}
	pr := buildPlanResponse(spec, net, tab, res)
	payload, err := json.Marshal(pr)
	if err != nil {
		s.finishJob(j, StateFailed, nil, err)
		return
	}
	if s.store != nil {
		if err := s.store.putPlan(key, payload, meta); err != nil {
			s.finishJob(j, StateFailed, nil, fmt.Errorf("persisting plan: %w", err))
			return
		}
		s.store.dropJobRecord(key)
	}
	s.lru.add(key, payload)
	s.noteFamily(key)
	s.notePlan(key, spec, meta)
	if j.revalidate {
		s.healedN.Add(1)
		if meta.RolledBack {
			s.rolledBackN.Add(1)
		}
		healRolledBack = meta.RolledBack
	}
	s.finishJob(j, StateDone, payload, nil)
}

// profileJob builds the job's look-up table: the configured override
// when one exists (tests), otherwise the platform simulator composed
// with the configured resilience layers — fault injection innermost,
// then the circuit breakers, then the watchdog heartbeat, so a
// breaker fast-fail still beats (fast-failing is progress; stalling
// is not).
func (s *Server) profileJob(j *job, hb *resilience.Heartbeat, net *nn.Network, board *platform.Platform) (*lut.Table, *profile.Report, error) {
	tab, rep, err := s.profileJobInner(j, hb, net, board)
	if err == nil && s.tuner != nil {
		// Feed tuned-variant candidates in before the flight builds the
		// shared search plan; a mismatched cache just skips.
		applied, skipped := s.tuner.Apply(tab, net)
		s.tunerApplied.Add(int64(len(applied)))
		s.tunerSkipped.Add(int64(skipped))
	}
	return tab, rep, err
}

func (s *Server) profileJobInner(j *job, hb *resilience.Heartbeat, net *nn.Network, board *platform.Platform) (*lut.Table, *profile.Report, error) {
	spec := j.spec
	if s.profileFn != nil {
		return s.profileFn(j.ctx, net, board, spec.Mode, spec.Samples)
	}
	sim := profile.NewSimSource(net, board)
	robust := s.cfg.Robust
	var src profile.FallibleSource = profile.AsFallible(sim)
	if s.cfg.Faults != nil {
		// One injector per profiling key, shared across re-profiles and
		// canary measurements: the (injected) environment drifts, not
		// the individual run.
		src = s.faultSource(spec.lutKey(), sim)
		if robust == nil {
			robust = profile.DefaultRobust()
		}
	}
	if s.breakers != nil {
		src = resilience.GuardSource(s.breakers, spec.Platform, src)
	}
	src = resilience.WithHeartbeat(hb, src)
	return profile.RunFallible(j.ctx, net, src, profile.Options{Mode: spec.Mode, Samples: spec.Samples, Robust: robust})
}

// finishBestEffort completes a budget-exhausted job with its
// best-so-far plan, marked so the client knows the search budget was
// not fully spent. The partial plan is served to this job's waiters
// but never cached: a later identical request deserves the full run.
func (s *Server) finishBestEffort(j *job, net *nn.Network, tab *lut.Table, res *core.Result) {
	if cause := context.Cause(j.ctx); errors.Is(cause, errAbandoned) {
		s.finishCanceled(j, cause)
		return
	}
	if len(res.Assignment) == 0 {
		s.finishBudget(j, errors.New("no episode completed inside the budget"))
		return
	}
	pr := buildPlanResponse(j.spec, net, tab, res)
	pr.BudgetExhausted = true
	pr.EpisodesRun = res.Episodes
	payload, err := json.Marshal(pr)
	if err != nil {
		s.finishJob(j, StateFailed, nil, err)
		return
	}
	if s.store != nil {
		s.store.dropJobRecord(j.spec.key())
	}
	s.budgetExhausted.Add(1)
	s.finishJob(j, StateDone, payload, nil)
}

// finishBudget completes a job whose context died before a usable
// result existed: canceled outright, or — under brownout — answered
// with the newest cached plan of its family.
func (s *Server) finishBudget(j *job, cause error) {
	if c := context.Cause(j.ctx); c != nil && !errors.Is(c, context.Canceled) {
		cause = c
	}
	if errors.Is(cause, errAbandoned) {
		s.finishCanceled(j, cause)
		return
	}
	if s.cfg.Brownout {
		if payload, ok := s.lookupDegraded(j.spec); ok {
			if s.store != nil {
				s.store.dropJobRecord(j.spec.key())
			}
			j.setDegraded()
			s.degradedServed.Add(1)
			s.finishJob(j, StateDone, payload, nil)
			return
		}
	}
	s.finishCanceled(j, cause)
}

// finishFailed completes a genuinely failed job — under brownout with
// a degraded family plan when one exists, as a failure otherwise. A
// failed job's durable record is kept: a restarted server retries it.
func (s *Server) finishFailed(j *job, err error) {
	if s.cfg.Brownout {
		if payload, ok := s.lookupDegraded(j.spec); ok {
			if s.store != nil {
				s.store.dropJobRecord(j.spec.key())
			}
			j.setDegraded()
			s.degradedServed.Add(1)
			s.finishJob(j, StateDone, payload, nil)
			return
		}
	}
	s.finishJob(j, StateFailed, nil, err)
}

// finishCanceled completes a canceled job. Its durable record is
// dropped — except for watchdog stalls, where a restarted server
// (with a possibly healthier backend) should retry the work.
func (s *Server) finishCanceled(j *job, cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	if s.store != nil && !errors.Is(cause, resilience.ErrStalled) {
		s.store.dropJobRecord(j.spec.key())
	}
	s.finishJob(j, StateCanceled, nil, fmt.Errorf("job canceled: %w", cause))
}

// finishJob moves a job to a terminal state once, updates the outcome
// counters, releases its coalescing slot, and bounds the finished-job
// registry.
func (s *Server) finishJob(j *job, state string, plan json.RawMessage, err error) {
	select {
	case <-j.done:
		return // already terminal (e.g. the panic path raced exec)
	default:
	}
	j.finish(state, plan, err)
	switch state {
	case StateDone:
		s.completed.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateInterrupted:
		s.interrupted.Add(1)
	case StateCanceled:
		s.canceled.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[j.spec.key()] == j {
		delete(s.byKey, j.spec.key())
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.retain {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Drain gracefully stops the daemon: admission closes (new POSTs get
// 503), queued and in-flight jobs run to completion, and only past the
// timeout does it hard-stop — in-flight searches then cut out at their
// next checkpoint boundary with a durable snapshot, and a server
// restarted on the same plan store resumes them to byte-identical
// results. timeout <= 0 hard-stops immediately. Drain is idempotent
// and returns when every worker has exited.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		close(s.canaryStop)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		s.cancel()
		<-done
		s.stopWatchdog()
		return
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		s.cancel()
		<-done
	}
	s.stopWatchdog()
}

// ReferencePlan computes, in-process and without a server, exactly the
// plan the daemon serves for req at the given checkpoint cadence —
// the same pipeline the CLI's durable search (`qsdnn search
// -checkpoint`) runs. Tests pin byte-identity between served, cached,
// crash-resumed and reference plans with it.
func ReferencePlan(ctx context.Context, req OptimizeRequest, every int) (*PlanResponse, []byte, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, nil, err
	}
	net, err := models.Build(spec.Network)
	if err != nil {
		return nil, nil, err
	}
	board, _ := platform.Preset(spec.Platform)
	tab, _, err := defaultProfile(nil)(ctx, net, board, spec.Mode, spec.Samples)
	if err != nil {
		return nil, nil, err
	}
	res, _, err := core.SearchCheckpointed(tab, core.Config{Episodes: spec.Episodes, Seed: spec.Seed},
		core.DurableOptions{Every: every})
	if err != nil {
		return nil, nil, err
	}
	pr := buildPlanResponse(spec, net, tab, res)
	payload, err := json.Marshal(pr)
	if err != nil {
		return nil, nil, err
	}
	return pr, payload, nil
}
