package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/runner"
)

// ProfileFunc builds the look-up table for one validated request. The
// server wraps it in the single-flight runner.Flight, so it runs at
// most once per distinct (network, platform, mode, samples)
// combination no matter how many clients ask concurrently. It must
// honor ctx. nil selects the platform simulator.
type ProfileFunc func(ctx context.Context, net *nn.Network, board *platform.Platform, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error)

// Config configures a Server.
type Config struct {
	// MaxInflight is the number of concurrent searches (the worker
	// count); <= 0 selects one per CPU.
	MaxInflight int
	// QueueDepth bounds the admission queue; a request arriving with
	// the queue full is rejected with 429 + Retry-After. <= 0
	// selects 64.
	QueueDepth int
	// PlanStore is the durable state directory (plans + job records +
	// search checkpoints); empty serves from memory only, with no
	// crash resume.
	PlanStore string
	// CacheSize is the warm in-memory plan LRU capacity; <= 0
	// selects 256.
	CacheSize int
	// SnapshotEvery is the search checkpoint cadence in episodes —
	// also the progress-event granularity; <= 0 selects
	// core.DefaultSnapshotEvery.
	SnapshotEvery int
	// RetainJobs bounds how many finished jobs stay pollable at
	// /v1/jobs/{id}; <= 0 selects 1024.
	RetainJobs int
	// Profile overrides the profiling step (tests use it to count
	// invocations and inject gates); nil profiles on the platform
	// simulator.
	Profile ProfileFunc
	// Robust selects the fault-tolerant measurement policy for the
	// default simulator profiler; ignored when Profile is non-nil.
	Robust *profile.Robust
}

// errStopped aborts a search at a checkpoint boundary during a hard
// stop: the snapshot is already durable, so the job resumes on the
// next start.
var errStopped = errors.New("serve: hard stop at checkpoint boundary")

// Server is the optimization daemon. Create with New, mount
// Handler(), and stop with Drain.
type Server struct {
	cfg    Config
	every  int
	retain int

	profileFn ProfileFunc
	flight    *runner.Flight
	lru       *lruCache
	store     *planStore // nil without Config.PlanStore

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	queue     chan *job
	resumedQ  []*job
	jobs      map[string]*job
	byKey     map[string]*job
	doneOrder []string
	nextID    int64

	queuedN     atomic.Int64
	inflight    atomic.Int64
	accepted    atomic.Int64
	rejected    atomic.Int64
	coalesced   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	interrupted atomic.Int64
	resumed     atomic.Int64
	skippedRec  atomic.Int64
	searches    atomic.Int64
	planHits    atomic.Int64
	storeHits   atomic.Int64
	planMisses  atomic.Int64
}

// defaultProfile profiles on the platform simulator, optionally under
// the robust measurement policy.
func defaultProfile(robust *profile.Robust) ProfileFunc {
	return func(ctx context.Context, net *nn.Network, board *platform.Platform, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		sim := profile.NewSimSource(net, board)
		return profile.RunFallible(ctx, net, profile.AsFallible(sim),
			profile.Options{Mode: mode, Samples: samples, Robust: robust})
	}
}

// New builds a Server, reopens its durable store, re-admits every job
// record a previous process left behind (crash or hard-stop resume),
// and starts the worker set.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	every := cfg.SnapshotEvery
	if every <= 0 {
		every = core.DefaultSnapshotEvery
	}
	retain := cfg.RetainJobs
	if retain <= 0 {
		retain = 1024
	}
	profileFn := cfg.Profile
	if profileFn == nil {
		profileFn = defaultProfile(cfg.Robust)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		every:     every,
		retain:    retain,
		profileFn: profileFn,
		flight:    runner.NewFlight(),
		lru:       newLRU(cfg.CacheSize),
		baseCtx:   ctx,
		cancel:    cancel,
		queue:     make(chan *job, cfg.QueueDepth),
		jobs:      map[string]*job{},
		byKey:     map[string]*job{},
	}
	if cfg.PlanStore != "" {
		st, err := openPlanStore(cfg.PlanStore)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		reqs, skipped, err := st.pendingJobs()
		if err != nil {
			cancel()
			return nil, err
		}
		s.skippedRec.Add(int64(skipped))
		for _, req := range reqs {
			spec, err := req.spec()
			if err != nil {
				s.skippedRec.Add(1)
				continue
			}
			j := newJob(s.newID(), spec)
			j.resumed = true
			s.jobs[j.id] = j
			s.byKey[spec.key()] = j
			s.resumedQ = append(s.resumedQ, j)
			s.queuedN.Add(1)
			s.resumed.Add(1)
		}
	}
	for w := 0; w < cfg.MaxInflight; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// newID mints a job id. Callers either hold s.mu or run before any
// concurrency exists (New).
func (s *Server) newID() string {
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errorJSON is the uniform error reply body.
type errorJSON struct {
	Error string `json:"error"`
}

// handleOptimize is the admission path: validate (400), serve from the
// plan cache/store when the identical request was already optimized,
// coalesce onto an identical in-flight job, or admit onto the bounded
// queue — rejecting with 429 + Retry-After when it is full and 503
// while draining.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	req, spec, err := decodeOptimizeRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	key := spec.key()
	if payload, ok := s.lookupPlan(key); ok {
		writeJSON(w, http.StatusOK, OptimizeResponse{State: StateDone, Cached: true, Plan: payload})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "server is draining"})
		return
	}
	if j := s.byKey[key]; j != nil {
		s.coalesced.Add(1)
		s.mu.Unlock()
		s.respondJob(w, r, j, req.Wait, http.StatusOK)
		return
	}
	// Second cache check under the lock: a job for this key may have
	// finished between the lock-free lookup above and here (it caches
	// its plan before releasing its coalescing slot, so holding s.mu
	// with byKey empty means any such plan is already visible) —
	// without this, the race would admit a duplicate search.
	if payload, ok := s.lookupPlan(key); ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, OptimizeResponse{State: StateDone, Cached: true, Plan: payload})
		return
	}
	j := newJob(s.newID(), spec)
	if s.store != nil {
		// Durable admission: the job record lands before the job is
		// claimable, so a SIGKILL at any later instant cannot lose it.
		if err := s.store.saveJobRecord(spec, nil); err != nil {
			s.mu.Unlock()
			writeJSON(w, http.StatusInternalServerError, errorJSON{Error: fmt.Sprintf("persisting job record: %v", err)})
			return
		}
	}
	select {
	case s.queue <- j:
	default:
		if s.store != nil {
			s.store.dropJobRecord(key)
		}
		s.rejected.Add(1)
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorJSON{Error: "queue full"})
		return
	}
	s.jobs[j.id] = j
	s.byKey[key] = j
	s.accepted.Add(1)
	s.queuedN.Add(1)
	s.mu.Unlock()
	s.respondJob(w, r, j, req.Wait, http.StatusAccepted)
}

// respondJob replies for an admitted (or coalesced-onto) job: a 202
// status envelope, or — with wait — the finished plan inline.
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job, wait bool, code int) {
	if !wait {
		writeJSON(w, code, j.status())
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		return // client gone; the job keeps running for other waiters
	}
	st := j.status()
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, st)
	case StateInterrupted:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, st)
	default:
		writeJSON(w, http.StatusInternalServerError, st)
	}
}

// jobByID looks up a job.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams a job's progress as server-sent events: one
// `data:` line per checkpoint-cadence boundary, ending with the
// terminal state event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "unknown job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sent := 0
	for {
		evs, update, terminal := j.eventsFrom(sent)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
		}
		if len(evs) > 0 {
			fl.Flush()
			sent += len(evs)
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-update:
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Statusz is the GET /statusz body: queue occupancy, job outcomes, and
// every cache layer's effectiveness.
type Statusz struct {
	Draining    bool  `json:"draining"`
	MaxInflight int   `json:"max_inflight"`
	QueueDepth  int   `json:"queue_depth"`
	Inflight    int64 `json:"inflight"`
	Queued      int64 `json:"queued"`

	Accepted    int64 `json:"accepted"`
	Rejected    int64 `json:"rejected"`
	Coalesced   int64 `json:"coalesced"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Interrupted int64 `json:"interrupted"`
	Resumed     int64 `json:"resumed"`
	SkippedRec  int64 `json:"skipped_records"`
	Searches    int64 `json:"searches"`

	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanStoreHits   int64 `json:"plan_store_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCacheSize   int   `json:"plan_cache_size"`
	LUTCacheHits    int   `json:"lut_cache_hits"`
	LUTCacheMisses  int   `json:"lut_cache_misses"`
}

// Status snapshots the daemon counters.
func (s *Server) Status() Statusz {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	lh, lm := s.flight.Stats()
	return Statusz{
		Draining:        draining,
		MaxInflight:     s.cfg.MaxInflight,
		QueueDepth:      s.cfg.QueueDepth,
		Inflight:        s.inflight.Load(),
		Queued:          s.queuedN.Load(),
		Accepted:        s.accepted.Load(),
		Rejected:        s.rejected.Load(),
		Coalesced:       s.coalesced.Load(),
		Completed:       s.completed.Load(),
		Failed:          s.failed.Load(),
		Interrupted:     s.interrupted.Load(),
		Resumed:         s.resumed.Load(),
		SkippedRec:      s.skippedRec.Load(),
		Searches:        s.searches.Load(),
		PlanCacheHits:   s.planHits.Load(),
		PlanStoreHits:   s.storeHits.Load(),
		PlanCacheMisses: s.planMisses.Load(),
		PlanCacheSize:   s.lru.len(),
		LUTCacheHits:    lh,
		LUTCacheMisses:  lm,
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// lookupPlan serves a finished plan from the LRU or the durable store.
func (s *Server) lookupPlan(key string) (json.RawMessage, bool) {
	if p, ok := s.lru.get(key); ok {
		s.planHits.Add(1)
		return p, true
	}
	if s.store != nil {
		if p, ok := s.store.getPlan(key); ok {
			s.storeHits.Add(1)
			s.lru.add(key, p)
			return p, true
		}
	}
	s.planMisses.Add(1)
	return nil, false
}

// worker claims jobs — startup-resumed ones first, then the admission
// queue — until Drain closes the queue or a hard stop cancels the base
// context.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		if j := s.popResumed(); j != nil {
			s.run(j)
			continue
		}
		j, ok := <-s.queue
		if !ok {
			for j := s.popResumed(); j != nil; j = s.popResumed() {
				s.run(j)
			}
			return
		}
		s.run(j)
	}
}

func (s *Server) popResumed() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.resumedQ) == 0 {
		return nil
	}
	j := s.resumedQ[0]
	s.resumedQ = s.resumedQ[1:]
	return j
}

// run executes one job under internal/pool's panic isolation: a
// panicking search fails that job (stack captured in its error) and
// the daemon lives on.
func (s *Server) run(j *job) {
	s.queuedN.Add(-1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.setRunning()
	out := pool.RunContext(s.baseCtx, 1, 1, func(int) { s.exec(j) })
	if perr := out.Err(); perr != nil {
		s.finishJob(j, StateFailed, nil, fmt.Errorf("job panicked: %v", perr))
	}
	if out.Skipped == 1 {
		// Hard stop won the race before the job started; its durable
		// admission record (if any) resumes it next start.
		s.finishJob(j, StateInterrupted, nil, errors.New("server stopped before the job ran"))
	}
}

// exec is the job pipeline: cache check, single-flight profile,
// checkpointed search with progress events, durable plan persistence.
func (s *Server) exec(j *job) {
	spec := j.spec
	ctx := s.baseCtx
	key := spec.key()

	// A resumed job whose plan was already persisted (crash between
	// putPlan and dropJobRecord) finishes without searching.
	if payload, ok := s.lookupPlan(key); ok {
		if s.store != nil {
			s.store.dropJobRecord(key)
		}
		s.finishJob(j, StateDone, payload, nil)
		return
	}

	net, err := models.Build(spec.Network)
	if err != nil {
		s.finishJob(j, StateFailed, nil, err)
		return
	}
	board, ok := platform.Preset(spec.Platform)
	if !ok {
		s.finishJob(j, StateFailed, nil, fmt.Errorf("unknown platform %q", spec.Platform))
		return
	}
	tab, plan, _, err := s.flight.Get(spec.lutKey(), func() (*lut.Table, *profile.Report, error) {
		return s.profileFn(ctx, net, board, spec.Mode, spec.Samples)
	})
	if err != nil {
		if ctx.Err() != nil {
			s.finishJob(j, StateInterrupted, nil, fmt.Errorf("profiling interrupted: %w", err))
			return
		}
		s.finishJob(j, StateFailed, nil, fmt.Errorf("profiling: %w", err))
		return
	}

	var from *core.Snapshot
	if s.store != nil {
		from = s.store.loadSnapshot(key, tab)
	}
	var res *core.Result
	if from != nil && from.Checkpoint.Episode >= spec.Episodes && len(from.BestAssignment) > 0 {
		// The previous process checkpointed the full budget but died
		// before persisting the plan; the snapshot carries the final
		// best, so the result is rebuilt without re-searching.
		res = &core.Result{
			Assignment: append([]primitives.ID(nil), from.BestAssignment...),
			Time:       from.BestTime,
			Episodes:   spec.Episodes,
		}
	}
	if res == nil {
		if from != nil && from.Checkpoint.Episode >= spec.Episodes {
			from = nil // unusable snapshot; start over
		}
		s.searches.Add(1)
		cfg := core.Config{Episodes: spec.Episodes, Seed: spec.Seed}
		var serr error
		res, _, serr = core.SearchCheckpointedPlanned(plan, cfg, core.DurableOptions{
			Every: s.every,
			From:  from,
			Save: func(snap *core.Snapshot) error {
				j.progress(snap.Checkpoint.Episode, snap.BestTime)
				if s.store != nil {
					payload, merr := snap.Marshal()
					if merr != nil {
						return merr
					}
					if werr := s.store.saveJobRecord(spec, payload); werr != nil {
						return werr
					}
				}
				if ctx.Err() != nil && snap.Checkpoint.Episode < spec.Episodes {
					// Hard stop: the snapshot just persisted is the
					// resume point; stop at this boundary.
					return errStopped
				}
				return nil
			},
		})
		if serr != nil {
			if errors.Is(serr, errStopped) || ctx.Err() != nil {
				s.finishJob(j, StateInterrupted, nil, errors.New("server stopping; search checkpointed for resume"))
				return
			}
			s.finishJob(j, StateFailed, nil, serr)
			return
		}
	}

	pr := buildPlanResponse(spec, net, tab, res)
	payload, err := json.Marshal(pr)
	if err != nil {
		s.finishJob(j, StateFailed, nil, err)
		return
	}
	if s.store != nil {
		if err := s.store.putPlan(key, payload); err != nil {
			s.finishJob(j, StateFailed, nil, fmt.Errorf("persisting plan: %w", err))
			return
		}
		s.store.dropJobRecord(key)
	}
	s.lru.add(key, payload)
	s.finishJob(j, StateDone, payload, nil)
}

// finishJob moves a job to a terminal state once, updates the outcome
// counters, releases its coalescing slot, and bounds the finished-job
// registry.
func (s *Server) finishJob(j *job, state string, plan json.RawMessage, err error) {
	select {
	case <-j.done:
		return // already terminal (e.g. the panic path raced exec)
	default:
	}
	j.finish(state, plan, err)
	switch state {
	case StateDone:
		s.completed.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateInterrupted:
		s.interrupted.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[j.spec.key()] == j {
		delete(s.byKey, j.spec.key())
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.retain {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Drain gracefully stops the daemon: admission closes (new POSTs get
// 503), queued and in-flight jobs run to completion, and only past the
// timeout does it hard-stop — in-flight searches then cut out at their
// next checkpoint boundary with a durable snapshot, and a server
// restarted on the same plan store resumes them to byte-identical
// results. timeout <= 0 hard-stops immediately. Drain is idempotent
// and returns when every worker has exited.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		s.cancel()
		<-done
		return
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		s.cancel()
		<-done
	}
}

// ReferencePlan computes, in-process and without a server, exactly the
// plan the daemon serves for req at the given checkpoint cadence —
// the same pipeline the CLI's durable search (`qsdnn search
// -checkpoint`) runs. Tests pin byte-identity between served, cached,
// crash-resumed and reference plans with it.
func ReferencePlan(ctx context.Context, req OptimizeRequest, every int) (*PlanResponse, []byte, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, nil, err
	}
	net, err := models.Build(spec.Network)
	if err != nil {
		return nil, nil, err
	}
	board, _ := platform.Preset(spec.Platform)
	tab, _, err := defaultProfile(nil)(ctx, net, board, spec.Mode, spec.Samples)
	if err != nil {
		return nil, nil, err
	}
	res, _, err := core.SearchCheckpointed(tab, core.Config{Episodes: spec.Episodes, Seed: spec.Seed},
		core.DurableOptions{Every: every})
	if err != nil {
		return nil, nil, err
	}
	pr := buildPlanResponse(spec, net, tab, res)
	payload, err := json.Marshal(pr)
	if err != nil {
		return nil, nil, err
	}
	return pr, payload, nil
}
