package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/lut"
	"repro/internal/store"
)

// planStore is the daemon's durable state, an adapter over
// internal/store's atomic checksummed writes and last-good rotation:
//
//	<dir>/plans/<h>.qsd  finished plans, one rotating snapshot per
//	                     request key — a torn current generation falls
//	                     back to the previous one, and because plans
//	                     are deterministic per key, any generation
//	                     serves identical bytes
//	<dir>/jobs/<h>.qsd   admitted-but-unfinished jobs: the normalized
//	                     request plus (after the first checkpoint
//	                     cadence) the search snapshot — the record a
//	                     restarted server scans to resume work a crash
//	                     interrupted
//
// File names are a content hash of the request key, so keys of any
// shape map to safe path components.
type planStore struct {
	dir string
}

const (
	plansSubdir = "plans"
	jobsSubdir  = "jobs"
)

// openPlanStore creates (or reopens) the store layout under dir.
func openPlanStore(dir string) (*planStore, error) {
	for _, sub := range []string{plansSubdir, jobsSubdir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: opening plan store: %w", err)
		}
	}
	return &planStore{dir: dir}, nil
}

// keyFile maps a request key to its snapshot file name.
func keyFile(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:12]) + ".qsd"
}

func (s *planStore) planPath(key string) string {
	return filepath.Join(s.dir, plansSubdir, keyFile(key))
}

func (s *planStore) jobPath(key string) string {
	return filepath.Join(s.dir, jobsSubdir, keyFile(key))
}

// planMeta is a durable plan's health lineage: the profile epoch its
// LUT was measured under, the epoch of the plan it replaced (heal
// lineage), whether the replacing search regressed and the parent
// assignment was kept (rolled back), and the per-library measurement
// fingerprints of the table that priced it. All fields are omitempty,
// so pre-health plans (and epoch-zero plans) round-trip unchanged.
type planMeta struct {
	Epoch        int64                `json:"epoch,omitempty"`
	ParentEpoch  int64                `json:"parent_epoch,omitempty"`
	RolledBack   bool                 `json:"rolled_back,omitempty"`
	Fingerprints []health.Fingerprint `json:"fingerprints,omitempty"`
}

// planEnvelope is the on-disk form of a finished plan. The key is
// stored alongside the payload so a hash collision (or a manually
// misplaced file) is detected instead of serving the wrong plan. The
// embedded health metadata travels with the plan across restarts; the
// plan bytes themselves stay exactly the bytes served.
type planEnvelope struct {
	Key  string          `json:"key"`
	Plan json.RawMessage `json:"plan"`
	planMeta
}

// jobRecord is the on-disk form of an admitted job: the normalized
// request (enough to re-admit it after a crash) plus, once the search
// has crossed a checkpoint boundary, the durable search snapshot.
type jobRecord struct {
	Key      string          `json:"key"`
	Request  OptimizeRequest `json:"request"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// putPlan durably persists the marshaled plan for key with last-good
// rotation, alongside its health lineage metadata.
func (s *planStore) putPlan(key string, plan []byte, meta planMeta) error {
	payload, err := json.Marshal(planEnvelope{Key: key, Plan: plan, planMeta: meta})
	if err != nil {
		return err
	}
	return store.SaveRotating(s.planPath(key), payload)
}

// getPlan loads the newest valid stored plan for key. A torn or
// bit-flipped current generation falls back to the previous one; when
// no valid generation exists the lookup is a miss, never an error —
// the plan is deterministic, so the server just recomputes it.
func (s *planStore) getPlan(key string) ([]byte, planMeta, bool) {
	payload, _, _, err := store.LoadRotating(s.planPath(key), func(p []byte) error {
		var env planEnvelope
		if err := json.Unmarshal(p, &env); err != nil {
			return err
		}
		if env.Key != key {
			return fmt.Errorf("stored plan is for key %q, want %q", env.Key, key)
		}
		if len(env.Plan) == 0 {
			return fmt.Errorf("stored plan is empty")
		}
		return nil
	})
	if err != nil {
		return nil, planMeta{}, false
	}
	var env planEnvelope
	if json.Unmarshal(payload, &env) != nil {
		return nil, planMeta{}, false
	}
	return env.Plan, env.planMeta, true
}

// saveJobRecord durably records an admitted job; snapshot may be nil
// (admission time) or a marshaled core.Snapshot (checkpoint cadence).
// Successive saves rotate, so the previous checkpoint survives a torn
// write of the current one.
func (s *planStore) saveJobRecord(spec *jobSpec, snapshot []byte) error {
	payload, err := json.Marshal(jobRecord{Key: spec.key(), Request: spec.request(), Snapshot: snapshot})
	if err != nil {
		return err
	}
	return store.SaveRotating(s.jobPath(spec.key()), payload)
}

// dropJobRecord removes both generations of a finished job's record.
func (s *planStore) dropJobRecord(key string) {
	p := s.jobPath(key)
	os.Remove(p)
	os.Remove(store.PreviousPath(p))
}

// loadSnapshot returns the newest job-record snapshot for key that
// validates against tab, or nil when no generation carries a usable
// snapshot (fresh admission record, torn files, schema drift) — the
// search then starts from episode zero, which is always correct, just
// slower. A current generation whose snapshot fails validation falls
// back to the previous rotation, so a write torn by a crash costs at
// most one checkpoint cadence of recomputation.
func (s *planStore) loadSnapshot(key string, tab *lut.Table) *core.Snapshot {
	payload, _, _, err := store.LoadRotating(s.jobPath(key), func(p []byte) error {
		rec, err := decodeJobRecord(p, key)
		if err != nil {
			return err
		}
		if len(rec.Snapshot) == 0 {
			// A snapshot-less admission record is a valid generation:
			// it resumes as a fresh search.
			return nil
		}
		_, err = core.LoadSnapshot(rec.Snapshot, tab)
		return err
	})
	if err != nil {
		return nil
	}
	rec, err := decodeJobRecord(payload, key)
	if err != nil || len(rec.Snapshot) == 0 {
		return nil
	}
	snap, err := core.LoadSnapshot(rec.Snapshot, tab)
	if err != nil {
		return nil
	}
	return snap
}

// planKeys scans the stored plans and returns their request keys
// ordered oldest-first by file modification time (newest last), so a
// fold that keeps the last writer per family ends up with the newest
// plan. Unreadable entries are skipped — the scan rebuilds a cache,
// not a source of truth.
func (s *planStore) planKeys() []string {
	plansDir := filepath.Join(s.dir, plansSubdir)
	entries, err := os.ReadDir(plansDir)
	if err != nil {
		return nil
	}
	type keyed struct {
		key string
		mod int64
	}
	var found []keyed
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		base := name
		switch {
		case strings.Contains(name, ".qsd.tmp"):
			continue
		case strings.HasSuffix(name, ".qsd.prev"):
			base = strings.TrimSuffix(name, ".prev")
		case strings.HasSuffix(name, ".qsd"):
		default:
			continue
		}
		if seen[base] {
			continue
		}
		seen[base] = true
		path := filepath.Join(plansDir, base)
		payload, _, _, lerr := store.LoadRotating(path, func(p []byte) error {
			var env planEnvelope
			if err := json.Unmarshal(p, &env); err != nil {
				return err
			}
			if env.Key == "" || len(env.Plan) == 0 {
				return fmt.Errorf("empty plan envelope")
			}
			return nil
		})
		if lerr != nil {
			continue
		}
		var env planEnvelope
		if json.Unmarshal(payload, &env) != nil {
			continue
		}
		var mod int64
		if fi, serr := os.Stat(path); serr == nil {
			mod = fi.ModTime().UnixNano()
		} else if fi, serr := os.Stat(store.PreviousPath(path)); serr == nil {
			mod = fi.ModTime().UnixNano()
		}
		found = append(found, keyed{key: env.Key, mod: mod})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].key < found[j].key
	})
	keys := make([]string, len(found))
	for i, k := range found {
		keys[i] = k.key
	}
	return keys
}

// decodeJobRecord unmarshals and key-checks one job record payload.
func decodeJobRecord(p []byte, key string) (*jobRecord, error) {
	var rec jobRecord
	if err := json.Unmarshal(p, &rec); err != nil {
		return nil, err
	}
	if key != "" && rec.Key != key {
		return nil, fmt.Errorf("job record is for key %q, want %q", rec.Key, key)
	}
	return &rec, nil
}

// pendingJobs scans the job records left by a previous process —
// admitted jobs a crash or hard stop interrupted — and returns their
// normalized requests for re-admission. Records whose every generation
// is unreadable are skipped (and counted), never fatal: the daemon
// must come up even over a mangled store.
func (s *planStore) pendingJobs() (reqs []OptimizeRequest, skipped int, err error) {
	jobsDir := filepath.Join(s.dir, jobsSubdir)
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: scanning job records: %w", err)
	}
	// A SIGKILL inside SaveRotating can leave a record that exists
	// only as its .prev rotation (current already rotated away, the
	// replacement not yet renamed into place), so the scan derives
	// record identities from both generations and lets LoadRotating
	// pick the newest valid one.
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		base := name
		switch {
		case strings.Contains(name, ".qsd.tmp"):
			// Litter from a write the crash tore mid-flight; the
			// rotation generations carry the recoverable state.
			os.Remove(filepath.Join(jobsDir, name))
			continue
		case strings.HasSuffix(name, ".qsd.prev"):
			base = strings.TrimSuffix(name, ".prev")
		case strings.HasSuffix(name, ".qsd"):
		default:
			continue
		}
		if seen[base] {
			continue
		}
		seen[base] = true
		path := filepath.Join(jobsDir, base)
		payload, _, _, lerr := store.LoadRotating(path, func(p []byte) error {
			_, derr := decodeJobRecord(p, "")
			return derr
		})
		if lerr != nil {
			skipped++
			continue
		}
		rec, derr := decodeJobRecord(payload, "")
		if derr != nil {
			skipped++
			continue
		}
		reqs = append(reqs, rec.Request)
	}
	return reqs, skipped, nil
}
