package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/resilience"
)

// driftFaultConfig is the e2e drift schedule: no error injection, two
// of the five CPU libraries drift — ATLAS steps to 3x, NNPACK ramps —
// so every detector decision is attributable to the injected drift.
func driftFaultConfig() *profile.FaultConfig {
	return &profile.FaultConfig{
		Seed:            7,
		DriftStep:       []string{"ATLAS"},
		DriftRamp:       []string{"NNPACK"},
		DriftFactor:     3,
		DriftRampRounds: 4,
	}
}

// driftedReference computes, without a server, the plan an optimizer
// would produce against the drifted environment at the given round —
// the byte-identity target for the self-healing gate.
func driftedReference(t *testing.T, body string, fc *profile.FaultConfig, round int64) []byte {
	t.Helper()
	var req OptimizeRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	spec, err := req.spec()
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build(spec.Network)
	if err != nil {
		t.Fatal(err)
	}
	board, _ := platform.Preset(spec.Platform)
	src := profile.NewFaultSource(profile.NewSimSource(net, board), *fc)
	src.SetDriftRound(round)
	// The server defaults to the robust policy whenever faults are
	// configured; the reference must aggregate identically.
	tab, _, err := profile.RunFallible(context.Background(), net, src,
		profile.Options{Mode: spec.Mode, Samples: spec.Samples, Robust: profile.DefaultRobust()})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.SearchCheckpointed(tab, core.Config{Episodes: spec.Episodes, Seed: spec.Seed}, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(buildPlanResponse(spec, net, tab, res))
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestDriftQuarantineHealE2E is the acceptance gate for the plan-health
// subsystem: seeded step + ramp drift on 2 of 5 CPU libraries, 64
// concurrent requests against the quarantined plan — zero raw 500s,
// every response a usable plan marked revalidating — the detector
// quarantines exactly the drifted (platform, library) pairs, and the
// healed plan is byte-identical to one optimized directly against the
// drifted source.
func TestDriftQuarantineHealE2E(t *testing.T) {
	fc := driftFaultConfig()
	srv, ts := newTestServer(t, Config{
		MaxInflight: 2, QueueDepth: 80, PlanStore: t.TempDir(),
		Faults: fc,
		// No Interval: the test drives CanaryTick explicitly, so every
		// transition is deterministic. NoHeal separates the detection
		// phase (serve revalidating) from the healing phase (HealNow).
		Health: &health.Config{Seed: 3, CanarySize: 1 << 20, NoHeal: true},
	})
	body := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":3,"wait":true}`

	// Phase 0: optimize in the undrifted environment (drift round 0 is
	// a clean schedule) and verify the plan serves fresh.
	code, _, payload := postOptimize(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("prime: %d (%s)", code, payload)
	}
	var prime OptimizeResponse
	if err := json.Unmarshal(payload, &prime); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prime.Plan, driftedReference(t, body, fc, 0)) {
		t.Fatalf("undrifted plan differs from the round-0 reference: %s", prime.Plan)
	}
	code, _, payload = postOptimize(t, ts.URL, body)
	var cached OptimizeResponse
	if err := json.Unmarshal(payload, &cached); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || !cached.Cached || cached.Revalidating || cached.Age != 0 {
		t.Fatalf("pre-drift cached response: %d %s", code, payload)
	}

	// Phase 1: the environment shifts. Three advances put the step
	// library at 3x and the ramp library at 2.5x.
	for i := 0; i < 3; i++ {
		srv.AdvanceDrift()
	}
	tick := srv.CanaryTick(context.Background())
	if tick.Measured == 0 || tick.Drifted == 0 {
		t.Fatalf("canary tick saw nothing: %+v", tick)
	}
	if tick.Quarantined != 2 {
		t.Fatalf("quarantined %d pairs, want exactly 2 (ATLAS, NNPACK): %+v", tick.Quarantined, tick)
	}
	st := srv.Status()
	if st.Quarantines != 2 || st.LUTEvictions == 0 {
		t.Fatalf("quarantine counters: %+v", st)
	}
	quarantined := map[string]bool{}
	for _, h := range st.Health {
		if h.Platform != "tx2-like" {
			t.Fatalf("unexpected platform in health status: %+v", h)
		}
		switch h.State {
		case "quarantined":
			quarantined[h.Library] = true
		case "fresh", "suspect":
			if h.Library == "ATLAS" || h.Library == "NNPACK" {
				t.Fatalf("drifted library not quarantined: %+v", h)
			}
		default:
			t.Fatalf("unexpected health state: %+v", h)
		}
	}
	if len(quarantined) != 2 || !quarantined["ATLAS"] || !quarantined["NNPACK"] {
		t.Fatalf("quarantined set = %v, want exactly {ATLAS, NNPACK}", quarantined)
	}

	// Phase 2: 64 concurrent requests against the quarantined plan.
	// Never a 500 — every reply is the cached plan, honestly marked
	// revalidating (NoHeal keeps the window open deterministically).
	var wg sync.WaitGroup
	codes := make([]int, 64)
	bodies := make([][]byte, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, c, bodies[i])
		}
		var or OptimizeResponse
		if err := json.Unmarshal(bodies[i], &or); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if or.State != StateDone || len(or.Plan) == 0 {
			t.Fatalf("request %d: not a servable plan: %s", i, bodies[i])
		}
		if !or.Revalidating {
			t.Fatalf("request %d: quarantined plan served without the revalidating mark: %s", i, bodies[i])
		}
	}
	if st := srv.Status(); st.RevalServed < 64 {
		t.Fatalf("revalidating_served = %d, want >= 64", st.RevalServed)
	}

	// Phase 3: heal. The re-optimization re-profiles the drifted
	// environment and atomically replaces the stale plan.
	if n := srv.HealNow(); n != 1 {
		t.Fatalf("HealNow enqueued %d jobs, want 1", n)
	}
	waitFor(t, 30*time.Second, func() bool { return srv.Status().Healed == 1 }, "heal to complete")

	code, _, payload = postOptimize(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("post-heal: %d (%s)", code, payload)
	}
	var healed OptimizeResponse
	if err := json.Unmarshal(payload, &healed); err != nil {
		t.Fatal(err)
	}
	if !healed.Cached || healed.Revalidating || healed.Age != 0 {
		t.Fatalf("post-heal response not fresh: %s", payload)
	}
	if healed.PlanEpoch == 0 {
		t.Fatalf("healed plan did not advance the profile epoch: %s", payload)
	}
	if bytes.Equal(healed.Plan, prime.Plan) {
		t.Fatal("heal served the pre-drift plan unchanged")
	}
	if want := driftedReference(t, body, fc, 3); !bytes.Equal(healed.Plan, want) {
		t.Fatalf("healed plan differs from the drifted-environment reference\ngot:  %s\nwant: %s", healed.Plan, want)
	}
	st = srv.Status()
	if st.RolledBack != 0 {
		t.Fatalf("heal rolled back against a fresh optimum: %+v", st)
	}
	for _, h := range st.Health {
		if h.Library == "ATLAS" || h.Library == "NNPACK" {
			if h.State != "healed" {
				t.Fatalf("post-heal state for %s = %q, want healed", h.Library, h.State)
			}
		}
	}
	if st.ProfileEpoch == 0 {
		t.Fatalf("profile epoch did not advance: %+v", st)
	}
}

// TestQuarantineHealGoldenFaultFree: quarantining and healing in a
// stable environment is a no-op on the plan bytes — a false-alarm
// quarantine re-profiles, re-searches, and lands byte-for-byte on the
// plan it replaced (and on the serverless reference). The healing
// machinery itself must not perturb results.
func TestQuarantineHealGoldenFaultFree(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxInflight: 1, QueueDepth: 8, PlanStore: t.TempDir(),
		Health: &health.Config{NoHeal: true},
	})
	body := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":5,"wait":true}`
	code, _, payload := postOptimize(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("prime: %d (%s)", code, payload)
	}
	var prime OptimizeResponse
	if err := json.Unmarshal(payload, &prime); err != nil {
		t.Fatal(err)
	}

	// Force a false-alarm quarantine through the real machinery: the
	// monitor confirms the pair, the LUT is marked stale and evicted.
	if !srv.monitor.NoteDrift("tx2-like", "OpenBLAS", 2) {
		t.Fatal("forced drift note did not confirm quarantine")
	}
	srv.quarantine("tx2-like", "OpenBLAS")
	code, _, payload = postOptimize(t, ts.URL, body)
	var reval OptimizeResponse
	if err := json.Unmarshal(payload, &reval); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || !reval.Revalidating {
		t.Fatalf("quarantined plan not served revalidating: %d %s", code, payload)
	}

	if n := srv.HealNow(); n != 1 {
		t.Fatalf("HealNow enqueued %d jobs, want 1", n)
	}
	waitFor(t, 30*time.Second, func() bool { return srv.Status().Healed == 1 }, "heal to complete")
	code, _, payload = postOptimize(t, ts.URL, body)
	var healed OptimizeResponse
	if err := json.Unmarshal(payload, &healed); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || healed.Revalidating {
		t.Fatalf("post-heal response: %d %s", code, payload)
	}
	if !bytes.Equal(healed.Plan, prime.Plan) {
		t.Fatalf("fault-free heal changed the plan\nbefore: %s\nafter:  %s", prime.Plan, healed.Plan)
	}
	var req OptimizeRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	_, want, err := ReferencePlan(context.Background(), req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed.Plan, want) {
		t.Fatalf("healed plan differs from reference\ngot:  %s\nwant: %s", healed.Plan, want)
	}
	if st := srv.Status(); len(st.Health) == 0 || st.Health[0].State != "healed" {
		t.Fatalf("health after golden heal: %+v", st.Health)
	}
}

// TestBreakerDegradedLUTEviction extends the PR 7 breaker e2e: a table
// whose candidates were dropped by breaker fast-fails is evicted from
// the single-flight cache once its platform's breakers close again, and
// the self-healing re-optimization restores the fault-free plan.
func TestBreakerDegradedLUTEviction(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	srv, ts := newTestServer(t, Config{
		MaxInflight: 1, QueueDepth: 8, PlanStore: t.TempDir(),
		// Every NNPACK measurement fails exactly its first attempt; no
		// retries, so the first failure drops the candidate and trips
		// the breaker, and everything after fast-fails.
		Faults: &profile.FaultConfig{Seed: 13, TransientRate: 1, TransientBurst: 1,
			FaultLibraries: []string{"NNPACK"}},
		Robust: &profile.Robust{MaxRetries: 0},
		Breaker: &resilience.BreakerConfig{
			FailureThreshold: 1, Probes: 1,
			Cooldown: time.Hour, Now: clock,
		},
		Health: &health.Config{Seed: 5, CanarySize: 1 << 20},
	})
	body := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":2,"wait":true}`
	code, _, payload := postOptimize(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("degraded build: %d (%s)", code, payload)
	}
	var degraded OptimizeResponse
	if err := json.Unmarshal(payload, &degraded); err != nil {
		t.Fatal(err)
	}
	open, fastFails := false, int64(0)
	for _, b := range srv.Status().Breakers {
		if b.Library == "NNPACK" {
			open = b.State != resilience.Closed
			fastFails = b.FastFails
		}
	}
	if !open || fastFails == 0 {
		t.Fatalf("NNPACK breaker not tripped into fast-fails: %+v", srv.Status().Breakers)
	}

	// Canary rounds double as recovery probes: each tick the half-open
	// breaker admits a probe, and each probe burns one single-shot
	// transient until a full round passes clean and the breaker closes
	// — at which point the degraded table is evicted and healed.
	ctx := context.Background()
	for i := 0; i < 100 && srv.Status().DegradedLUTEvic == 0; i++ {
		advance(2 * time.Hour)
		srv.CanaryTick(ctx)
	}
	st := srv.Status()
	if st.DegradedLUTEvic == 0 {
		t.Fatalf("degraded LUT never evicted after breaker recovery: %+v", st)
	}
	for _, b := range st.Breakers {
		if b.State != resilience.Closed {
			t.Fatalf("breaker %s/%s not closed after recovery: %+v", b.Platform, b.Library, b)
		}
	}
	if st.Quarantines != 0 {
		t.Fatalf("breaker recovery misattributed to drift quarantine: %+v", st)
	}
	// Each heal re-profiles through the shared fault source: the sample
	// identities the canaries burned now pass, but the edge phase keeps
	// discovering fresh single-shot transients, re-tripping the breaker
	// mid-build — the healed table is better than the last but still
	// partial. The recovery loop therefore converges identity by
	// identity: close the breaker (one canary probe), evict the degraded
	// table, heal, repeat — until a build passes fully clean and the
	// healed plan is byte-identical to the fault-free reference.
	var req OptimizeRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	_, want, err := ReferencePlan(ctx, req, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last OptimizeResponse
	converged := false
	for cycle := 0; cycle < 200 && !converged; cycle++ {
		waitFor(t, 30*time.Second, func() bool {
			st := srv.Status()
			return st.Healed+st.RolledBack >= st.HealsEnqueued
		}, "heal cycle to settle")
		code, _, payload = postOptimize(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("recovery cycle %d: %d (%s)", cycle, code, payload)
		}
		if err := json.Unmarshal(payload, &last); err != nil {
			t.Fatal(err)
		}
		if !last.Revalidating && bytes.Equal(last.Plan, want) {
			converged = true
			break
		}
		advance(2 * time.Hour)
		srv.CanaryTick(ctx)
	}
	if !converged {
		t.Fatalf("healed plan never converged to the fault-free reference\nlast: %s\nwant: %s", last.Plan, want)
	}
	st = srv.Status()
	if st.Healed == 0 {
		t.Fatalf("converged without any completed heal: %+v", st)
	}
	if st.Quarantines != 0 {
		t.Fatalf("breaker recovery misattributed to drift quarantine: %+v", st)
	}
}

// TestPlanTTLRevalidation: -plan-ttl marks plans revalidating once
// their LUT has advanced past the TTL in profile epochs — age is
// epoch-based, never wall-clock.
func TestPlanTTLRevalidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxInflight: 1, QueueDepth: 8,
		Health: &health.Config{PlanTTL: 1, NoHeal: true},
	})
	mkBody := func(seed int) string {
		return fmt.Sprintf(`{"network":"lenet5","mode":"cpu","episodes":200,"samples":3,"seed":%d,"wait":true}`, seed)
	}
	code, _, payload := postOptimize(t, ts.URL, mkBody(1))
	if code != http.StatusOK {
		t.Fatalf("prime: %d (%s)", code, payload)
	}
	code, _, payload = postOptimize(t, ts.URL, mkBody(1))
	var fresh OptimizeResponse
	json.Unmarshal(payload, &fresh)
	if code != http.StatusOK || fresh.Revalidating || fresh.Age != 0 {
		t.Fatalf("plan at age 0 not fresh: %s", payload)
	}

	// Force a re-profile of the shared LUT under a different plan key:
	// the profile epoch advances, aging the first plan past its TTL.
	spec, err := specFromKey("lenet5|tx2-like|cpu|latency|e200|s3|r1")
	if err != nil {
		t.Fatal(err)
	}
	if !srv.flight.Evict(spec.lutKey()) {
		t.Fatal("LUT eviction failed")
	}
	code, _, payload = postOptimize(t, ts.URL, mkBody(2))
	if code != http.StatusOK {
		t.Fatalf("re-profile request: %d (%s)", code, payload)
	}

	code, _, payload = postOptimize(t, ts.URL, mkBody(1))
	var aged OptimizeResponse
	if err := json.Unmarshal(payload, &aged); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || !aged.Revalidating || aged.Age != 1 {
		t.Fatalf("plan past TTL not marked revalidating (age %d): %s", aged.Age, payload)
	}
	// The plan optimized against the fresh epoch is not aged.
	code, _, payload = postOptimize(t, ts.URL, mkBody(2))
	var young OptimizeResponse
	json.Unmarshal(payload, &young)
	if code != http.StatusOK || young.Revalidating || young.Age != 0 {
		t.Fatalf("fresh-epoch plan marked stale: %s", payload)
	}
}

// TestReplayAssignment pins the rollback check's pricing primitive: a
// stored plan re-prices exactly on a fresh table, and payloads that no
// longer fit the table are rejected rather than mispriced.
func TestReplayAssignment(t *testing.T) {
	net := models.MustBuild("lenet5")
	board, _ := platform.Preset("tx2-like")
	tab, _, err := profile.RunFallible(context.Background(), net,
		profile.AsFallible(profile.NewSimSource(net, board)),
		profile.Options{Mode: primitives.ModeCPU, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.SearchCheckpointed(tab, core.Config{Episodes: 200, Seed: 1}, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := specFromKey("lenet5|tx2-like|cpu|latency|e200|s3|r1")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(buildPlanResponse(spec, net, tab, res))
	if err != nil {
		t.Fatal(err)
	}
	ids, total, ok := replayAssignment(payload, tab)
	if !ok {
		t.Fatal("valid plan failed to replay")
	}
	if total != tab.TotalTime(ids) || total != res.Time {
		t.Fatalf("replay total %v, want %v", total, res.Time)
	}
	if _, _, ok := replayAssignment([]byte(`{"assignment":[0]}`), tab); ok {
		t.Error("short assignment replayed")
	}
	if _, _, ok := replayAssignment([]byte(`not json`), tab); ok {
		t.Error("garbage payload replayed")
	}
	var pr PlanResponse
	if err := json.Unmarshal(payload, &pr); err != nil {
		t.Fatal(err)
	}
	pr.Assignment[1] = 9999 // not a candidate of any layer
	alien, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := replayAssignment(alien, tab); ok {
		t.Error("assignment naming a non-candidate replayed")
	}
}

// TestStatuszDuringDrain pins the drain contract: /healthz flips to
// 503 (with Retry-After) the moment drain begins, while /statusz stays
// reachable and reports draining:true — operators keep observability
// while the daemon sheds load.
func TestStatuszDuringDrain(t *testing.T) {
	gate := make(chan struct{})
	cp := newCountingProfile(gate)
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, Profile: cp.fn()})
	// Park a job so the drain has something to wait on.
	code, _, payload := postOptimize(t, ts.URL, `{"network":"lenet5","mode":"cpu","episodes":200,"samples":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d (%s)", code, payload)
	}
	waitFor(t, 5*time.Second, func() bool { return cp.total() == 1 }, "job to park in profiling")

	drained := make(chan struct{})
	go func() {
		srv.Drain(30 * time.Second)
		close(drained)
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Status().Draining }, "drain to begin")

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("healthz 503 without Retry-After")
	}

	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz during drain: %d, want 200", resp.StatusCode)
	}
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statusz decode during drain: %v", err)
	}
	resp.Body.Close()
	if !st.Draining {
		t.Fatalf("statusz during drain: %+v", st)
	}
	if st.GemmKernel == "" {
		t.Fatal("statusz did not report the dispatched GEMM kernel")
	}

	close(gate)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not finish after the gate opened")
	}
}
