package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// waitFor polls cond until it holds or the deadline passes — the
// harness-wide substitute for sleeps.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// countingProfile wraps the simulator profiler and counts invocations
// per LUT key — the probe that proves profiling is single-flighted.
type countingProfile struct {
	mu    sync.Mutex
	calls map[string]int
	gate  chan struct{} // non-nil: block until closed (or ctx done)
}

func newCountingProfile(gate chan struct{}) *countingProfile {
	return &countingProfile{calls: map[string]int{}, gate: gate}
}

func (c *countingProfile) fn() ProfileFunc {
	return func(ctx context.Context, net *nn.Network, board *platform.Platform, mode primitives.Mode, samples int) (*lut.Table, *profile.Report, error) {
		c.mu.Lock()
		c.calls[fmt.Sprintf("%s|%d|%d", net.Name, int(mode), samples)]++
		c.mu.Unlock()
		if c.gate != nil {
			select {
			case <-c.gate:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		return defaultProfile(nil)(ctx, net, board, mode, samples)
	}
}

func (c *countingProfile) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

func (c *countingProfile) distinct() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}

// newTestServer starts a daemon and its HTTP front end on an ephemeral
// port, both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(0)
	})
	return srv, ts
}

func postOptimize(t *testing.T, base, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, payload
}

// fastBody is a request cheap enough for handler tests.
func fastBody(seed int) string {
	return fmt.Sprintf(`{"network":"lenet5","mode":"cpu","episodes":200,"samples":3,"seed":%d,"wait":true}`, seed)
}

// TestHandlerErrors is the table-driven pass over every HTTP error
// path: malformed and invalid bodies are 400s with a JSON error, and
// unknown jobs are 404s.
func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4})
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"malformed json", "POST", "/v1/optimize", `{"network":`, http.StatusBadRequest, "decoding request"},
		{"unknown network", "POST", "/v1/optimize", `{"network":"nope"}`, http.StatusBadRequest, "unknown network"},
		{"negative episodes", "POST", "/v1/optimize", `{"network":"lenet5","episodes":-1}`, http.StatusBadRequest, "episodes must be positive"},
		{"fractional samples", "POST", "/v1/optimize", `{"network":"lenet5","samples":2.5}`, http.StatusBadRequest, "samples must be an integer"},
		{"overflow episodes", "POST", "/v1/optimize", `{"network":"lenet5","episodes":1e99}`, http.StatusBadRequest, "episodes exceeds the limit"},
		{"unknown job", "GET", "/v1/jobs/j-999999", "", http.StatusNotFound, "unknown job"},
		{"unknown job events", "GET", "/v1/jobs/j-999999/events", "", http.StatusNotFound, "unknown job"},
		{"method not allowed", "GET", "/v1/optimize", "", http.StatusMethodNotAllowed, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			payload, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.wantCode, payload)
			}
			if tc.wantErr == "" {
				return
			}
			var e errorJSON
			if err := json.Unmarshal(payload, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", payload)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Fatalf("error %q does not contain %q", e.Error, tc.wantErr)
			}
		})
	}
}

// TestAdmissionControl pins the bounded queue: with one worker parked
// on a gated profile and a one-slot queue, the third distinct request
// is rejected with 429 + Retry-After, and releasing the gate drains
// everything to completion.
func TestAdmissionControl(t *testing.T) {
	gate := make(chan struct{})
	cp := newCountingProfile(gate)
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 1, Profile: cp.fn()})

	// Distinct samples per request -> distinct LUT keys, so the gate
	// holds each job independently.
	code, _, payload := postOptimize(t, ts.URL, `{"network":"lenet5","mode":"cpu","episodes":200,"samples":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("first POST: status %d (%s)", code, payload)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Status().Inflight == 1 }, "worker to claim the first job")

	code, _, payload = postOptimize(t, ts.URL, `{"network":"lenet5","mode":"cpu","episodes":200,"samples":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("second POST (queued): status %d (%s)", code, payload)
	}
	code, hdr, payload := postOptimize(t, ts.URL, `{"network":"lenet5","mode":"cpu","episodes":200,"samples":5}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third POST: status %d, want 429 (%s)", code, payload)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 reply is missing Retry-After")
	}
	if st := srv.Status(); st.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", st.Rejected)
	}

	close(gate)
	waitFor(t, 10*time.Second, func() bool { return srv.Status().Completed == 2 }, "gated jobs to finish")
	if st := srv.Status(); st.Failed != 0 || st.Interrupted != 0 {
		t.Fatalf("outcomes after release: %+v", st)
	}
}

// TestHealthzAndStatusz: healthz flips to 503 when draining, and
// statusz is well-formed JSON with the configured bounds.
func TestHealthzAndStatusz(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 2, QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	resp.Body.Close()
	if st.MaxInflight != 2 || st.QueueDepth != 7 || st.Draining {
		t.Fatalf("statusz: %+v", st)
	}

	srv.Drain(time.Second)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	code, _, _ := postOptimize(t, ts.URL, fastBody(1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d, want 503", code)
	}
}

// TestJobLifecycleAndEvents drives one job end to end through the
// polling and SSE endpoints: 202 envelope, progress events at the
// checkpoint cadence, terminal done event, and a final poll carrying
// the plan.
func TestJobLifecycleAndEvents(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, SnapshotEvery: 50})
	code, _, payload := postOptimize(t, ts.URL, `{"network":"lenet5","mode":"cpu","episodes":200,"samples":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d (%s)", code, payload)
	}
	var acc OptimizeResponse
	if err := json.Unmarshal(payload, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || (acc.State != StateQueued && acc.State != StateRunning) {
		t.Fatalf("202 envelope: %+v", acc)
	}

	// The SSE stream must end with a done event and include cadence
	// progress in between.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // server closes the stream at the terminal event
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, line := range strings.Split(string(raw), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want running + cadence + done", len(events))
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Episode != 200 {
		t.Fatalf("terminal event: %+v", last)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Episode < events[i-1].Episode {
			t.Fatalf("events out of order: %+v", events)
		}
	}

	waitFor(t, 5*time.Second, func() bool { return srv.Status().Completed == 1 }, "job completion")
	resp, err = http.Get(ts.URL + "/v1/jobs/" + acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final.State != StateDone || len(final.Plan) == 0 {
		t.Fatalf("final poll: state=%q plan=%d bytes", final.State, len(final.Plan))
	}
}
