package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/resilience"
)

// TestDeadlineBudgetExhausted: a 1e6-episode search under a 500ms
// deadline_ms returns 200 with the best-so-far plan, marked
// budget_exhausted, with the partial episode count — never a timeout
// error, never a hang.
func TestDeadlineBudgetExhausted(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, SnapshotEvery: 200})
	body := `{"network":"lenet5","mode":"cpu","episodes":1000000,"samples":3,"seed":1,"wait":true,"deadline_ms":500}`
	code, _, payload := postOptimize(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d (%s)", code, payload)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(payload, &or); err != nil {
		t.Fatal(err)
	}
	if or.State != StateDone || len(or.Plan) == 0 {
		t.Fatalf("response: %s", payload)
	}
	var pr PlanResponse
	if err := json.Unmarshal(or.Plan, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.BudgetExhausted {
		t.Fatalf("plan not marked budget_exhausted: %s", or.Plan)
	}
	if pr.EpisodesRun <= 0 || pr.EpisodesRun >= 1000000 {
		t.Fatalf("episodes_run = %d, want partial progress", pr.EpisodesRun)
	}
	if len(pr.Assignment) == 0 || pr.Seconds <= 0 {
		t.Fatalf("best-so-far plan is empty: %s", or.Plan)
	}
	st := srv.Status()
	if st.BudgetExhausted != 1 {
		t.Fatalf("statusz budget_exhausted = %d, want 1: %+v", st.BudgetExhausted, st)
	}
	if st.Failed != 0 {
		t.Fatalf("budget exhaustion recorded as failure: %+v", st)
	}

	// A best-effort plan is never cached: the identical request runs
	// again (and, with no deadline this time, completes in full).
	full := `{"network":"lenet5","mode":"cpu","episodes":1000000,"samples":3,"seed":1,"wait":true}`
	_ = full // the full run would take too long here; just verify no cache hit
	code2, _, payload2 := postOptimize(t, ts.URL, body)
	if code2 != http.StatusOK {
		t.Fatalf("second POST: %d (%s)", code2, payload2)
	}
	var or2 OptimizeResponse
	if err := json.Unmarshal(payload2, &or2); err != nil {
		t.Fatal(err)
	}
	if or2.Cached {
		t.Fatalf("budget-exhausted plan was served from cache: %s", payload2)
	}
}

// TestMaxDeadlineCapsAndDefaults: the server-side -max-deadline both
// caps an over-ask and applies as the default budget for requests that
// send none.
func TestMaxDeadlineCapsAndDefaults(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxInflight: 1, QueueDepth: 4, SnapshotEvery: 200,
		MaxDeadline: 400 * time.Millisecond,
	})
	// No deadline_ms: the server default still bounds the job.
	body := `{"network":"lenet5","mode":"cpu","episodes":1000000,"samples":3,"seed":5,"wait":true}`
	t0 := time.Now()
	code, _, payload := postOptimize(t, ts.URL, body)
	elapsed := time.Since(t0)
	if code != http.StatusOK {
		t.Fatalf("status %d (%s)", code, payload)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(payload, &or); err != nil {
		t.Fatal(err)
	}
	var pr PlanResponse
	if err := json.Unmarshal(or.Plan, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.BudgetExhausted {
		t.Fatalf("server default budget not applied: %s", or.Plan)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("request took %v despite a 400ms budget", elapsed)
	}
	// An over-ask is capped to MaxDeadline, not honored.
	body2 := `{"network":"lenet5","mode":"cpu","episodes":1000000,"samples":3,"seed":6,"wait":true,"deadline_ms":3600000}`
	code2, _, payload2 := postOptimize(t, ts.URL, body2)
	if code2 != http.StatusOK {
		t.Fatalf("status %d (%s)", code2, payload2)
	}
	var or2 OptimizeResponse
	json.Unmarshal(payload2, &or2)
	var pr2 PlanResponse
	if err := json.Unmarshal(or2.Plan, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.BudgetExhausted {
		t.Fatalf("client over-ask escaped the -max-deadline cap: %s", or2.Plan)
	}
	if got := srv.Status().BudgetExhausted; got != 2 {
		t.Fatalf("budget_exhausted = %d, want 2", got)
	}
}

// TestWaiterAbandonCancel: when the only wait-mode client disconnects,
// the job is canceled — nobody will read the result, so finishing it
// is pure waste. (A 202 async submission or a durable record pins the
// job; this one has neither.)
func TestWaiterAbandonCancel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	cp := newCountingProfile(gate)
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, Profile: cp.fn()})

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":9,"wait":true}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return cp.total() == 1 }, "job to park in profiling")
	cancel() // the only interested client walks away
	if err := <-errc; err == nil {
		t.Fatal("client POST should have failed with context canceled")
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Status().Canceled == 1 }, "abandoned job to cancel")
	st := srv.Status()
	if st.Completed != 0 || st.Failed != 0 {
		t.Fatalf("abandoned job still ran to completion: %+v", st)
	}
}

// TestBreakerE2E: under a fixed fault seed, two independent servers
// walk their breakers through identical transitions (determinism), and
// a server with breakers but no faults serves plans byte-identical to
// the reference pipeline (transparency when healthy).
func TestBreakerE2E(t *testing.T) {
	mk := func() *Server {
		// TransientBurst 2 with MaxRetries 2 means every measurement
		// eventually succeeds — the faults trip breakers mid-run, but
		// the healed table (and therefore the plan) is byte-identical
		// to a fault-free run.
		srv, err := New(Config{
			MaxInflight: 1, QueueDepth: 8,
			Faults: &profile.FaultConfig{Seed: 11, TransientRate: 0.6, TransientBurst: 2},
			Robust: &profile.Robust{MaxRetries: 2},
			// Threshold 2: a burst-2 transient (fail, fail, succeed)
			// is exactly the trip pattern, so breakers demonstrably
			// cycle under this schedule.
			Breaker: &resilience.BreakerConfig{
				FailureThreshold: 2,
				Probes:           2,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Drain(0) })
		return srv
	}
	body := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":4,"seed":3,"wait":true}`

	var plans [][]byte
	var snaps [][]resilience.BreakerStatus
	for i := 0; i < 2; i++ {
		srv := mk()
		ts := newLocalHTTP(t, srv)
		code, _, payload := postOptimize(t, ts, body)
		if code != http.StatusOK {
			t.Fatalf("server %d: status %d (%s)", i, code, payload)
		}
		var or OptimizeResponse
		if err := json.Unmarshal(payload, &or); err != nil {
			t.Fatal(err)
		}
		plans = append(plans, or.Plan)
		snaps = append(snaps, srv.Status().Breakers)
	}
	if !bytes.Equal(plans[0], plans[1]) {
		t.Fatalf("plans differ across identically seeded servers\na: %s\nb: %s", plans[0], plans[1])
	}
	a, _ := json.Marshal(snaps[0])
	b, _ := json.Marshal(snaps[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("breaker transitions not deterministic\na: %s\nb: %s", a, b)
	}
	trips, failures := int64(0), int64(0)
	for _, s := range snaps[0] {
		trips += s.Trips
		failures += s.Failures
	}
	if failures == 0 {
		t.Fatalf("fault schedule injected nothing: %s", a)
	}
	if trips == 0 {
		t.Fatalf("no breaker tripped under the transient-failure schedule: %s", a)
	}

	// Transparency: breakers without faults change nothing.
	hsrv, err := New(Config{
		MaxInflight: 1, QueueDepth: 8,
		Breaker: &resilience.BreakerConfig{FailureThreshold: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hsrv.Drain(0)
	hts := newLocalHTTP(t, hsrv)
	code, _, payload := postOptimize(t, hts, body)
	if code != http.StatusOK {
		t.Fatalf("healthy server: %d (%s)", code, payload)
	}
	var hor OptimizeResponse
	if err := json.Unmarshal(payload, &hor); err != nil {
		t.Fatal(err)
	}
	var req OptimizeRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	_, want, err := ReferencePlan(context.Background(), req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hor.Plan, want) {
		t.Fatalf("breakers changed a healthy plan\ngot:  %s\nwant: %s", hor.Plan, want)
	}
	// Healed equivalence: the faulty servers' retries absorbed every
	// transient, so their plans match the fault-free reference byte
	// for byte.
	if !bytes.Equal(plans[0], want) {
		t.Fatalf("healed plan differs from reference\ngot:  %s\nwant: %s", plans[0], want)
	}
	for _, s := range hsrv.Status().Breakers {
		if s.Trips != 0 || s.Failures != 0 {
			t.Fatalf("healthy run recorded breaker activity: %+v", s)
		}
	}
}

// TestWatchdogStall: a source whose every measurement hangs (30s
// stalls, no sample timeout to rescue it) is detected by the progress
// watchdog within its 50ms floor and the job is canceled with a
// watchdog verdict, answered as an honest 503 with Retry-After.
func TestWatchdogStall(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxInflight: 1, QueueDepth: 4,
		Faults:        &profile.FaultConfig{Seed: 1, StallRate: 1, Stall: 30 * time.Second},
		Robust:        &profile.Robust{MaxRetries: 0},
		WatchdogStall: 50 * time.Millisecond,
	})
	body := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":2,"wait":true}`
	t0 := time.Now()
	code, hdr, payload := postOptimize(t, ts.URL, body)
	elapsed := time.Since(t0)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", code, payload)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("stalled job took %v to cancel; the watchdog floor is 50ms", elapsed)
	}
	st := srv.Status()
	if st.WatchdogCancels != 1 {
		t.Fatalf("watchdog_cancels = %d, want 1: %+v", st.WatchdogCancels, st)
	}
	if st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1: %+v", st.Canceled, st)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(payload, &or); err != nil {
		t.Fatal(err)
	}
	if or.State != StateCanceled || !strings.Contains(or.Error, "stalled") {
		t.Fatalf("job record does not surface the stall: %s", payload)
	}
}

// TestBrownoutServesFamilyPlan: a second daemon whose profiler is
// broken answers a request with the newest durable plan of the same
// (network, platform, mode, objective) family — marked degraded, with
// a Retry-After — instead of a 500.
func TestBrownoutServesFamilyPlan(t *testing.T) {
	dir := t.TempDir()

	// Daemon 1: healthy, completes and persists plan A.
	srv1, ts1 := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, PlanStore: dir})
	bodyA := `{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":1,"wait":true}`
	code, _, payloadA := postOptimize(t, ts1.URL, bodyA)
	if code != http.StatusOK {
		t.Fatalf("daemon 1: %d (%s)", code, payloadA)
	}
	var orA OptimizeResponse
	if err := json.Unmarshal(payloadA, &orA); err != nil {
		t.Fatal(err)
	}
	srv1.Drain(0)

	// Daemon 2: same store, brownout on, profiler hard-broken.
	srv2, err := New(Config{
		MaxInflight: 1, QueueDepth: 4, PlanStore: dir, Brownout: true,
		Profile: failingProfile("backend driver missing"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Drain(0)
	ts2 := newLocalHTTP(t, srv2)

	// Different seed/episodes: a different exact key, same family.
	bodyB := `{"network":"lenet5","mode":"cpu","episodes":500,"samples":3,"seed":42,"wait":true}`
	code2, hdr2, payloadB := postOptimize(t, ts2, bodyB)
	if code2 != http.StatusOK {
		t.Fatalf("brownout answer: %d (%s)", code2, payloadB)
	}
	if hdr2.Get("Retry-After") == "" {
		t.Fatal("degraded 200 without Retry-After")
	}
	var orB OptimizeResponse
	if err := json.Unmarshal(payloadB, &orB); err != nil {
		t.Fatal(err)
	}
	if !orB.Degraded {
		t.Fatalf("response not marked degraded: %s", payloadB)
	}
	if !bytes.Equal(orB.Plan, orA.Plan) {
		t.Fatalf("degraded plan is not the family's newest plan\ngot:  %s\nwant: %s", orB.Plan, orA.Plan)
	}
	st := srv2.Status()
	if st.DegradedServed != 1 {
		t.Fatalf("degraded_served = %d, want 1: %+v", st.DegradedServed, st)
	}

	// A family with no cached plan still fails honestly (503-free is
	// only promised when a substitute exists): alexnet has no plan in
	// this store.
	bodyC := `{"network":"alexnet","mode":"cpu","episodes":300,"samples":3,"seed":1,"wait":true}`
	code3, hdr3, payloadC := postOptimize(t, ts2, bodyC)
	if code3 != http.StatusServiceUnavailable && code3 != http.StatusInternalServerError {
		t.Fatalf("no-substitute failure: %d (%s)", code3, payloadC)
	}
	if code3 == http.StatusServiceUnavailable && hdr3.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestRetryAfterEstimate: the Retry-After estimate scales with queue
// depth and recent service time and clamps to [1, 60].
func TestRetryAfterEstimate(t *testing.T) {
	srv, err := New(Config{MaxInflight: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain(0)
	// No history: the default estimate is the floor.
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle estimate = %d, want 1", got)
	}
	// Slow service times push the estimate up...
	srv.recordService(40 * time.Second)
	if got := srv.retryAfterSeconds(); got <= 1 {
		t.Fatalf("estimate after 40s jobs = %d, want > 1", got)
	}
	// ...and clamp at 60.
	for i := 0; i < 8; i++ {
		srv.recordService(10 * time.Minute)
	}
	if got := srv.retryAfterSeconds(); got != 60 {
		t.Fatalf("estimate = %d, want clamped 60", got)
	}
	// EWMA decays back down with fast jobs.
	for i := 0; i < 64; i++ {
		srv.recordService(50 * time.Millisecond)
	}
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Fatalf("estimate after recovery = %d, want 1", got)
	}
}

// failingProfile is a ProfileFunc that always errors — the hard-broken
// backend used by brownout tests.
func failingProfile(msg string) ProfileFunc {
	return func(ctx context.Context, _ *nn.Network, _ *platform.Platform, _ primitives.Mode, _ int) (*lut.Table, *profile.Report, error) {
		return nil, nil, fmt.Errorf("%s", msg)
	}
}
