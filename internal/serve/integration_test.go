package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newLocalHTTP mounts an already-constructed Server on an ephemeral
// port (the Drain lifecycle stays with the caller).
func newLocalHTTP(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestServeEndToEndConcurrent is the headline load test: 64 concurrent
// clients over 8 distinct requests (8 duplicates each) against a
// 4-worker daemon. It proves, in one pass:
//
//   - zero client-visible errors under contention;
//   - coalescing: duplicates of an in-flight request share its search,
//     and profiling runs exactly once per distinct LUT key no matter
//     how many clients race;
//   - determinism: all 8 replies for one request are byte-identical,
//     and equal to the plan the in-process reference pipeline (the
//     CLI's checkpointed-search path) computes for that request.
func TestServeEndToEndConcurrent(t *testing.T) {
	cp := newCountingProfile(nil)
	srv, ts := newTestServer(t, Config{MaxInflight: 4, QueueDepth: 128, Profile: cp.fn()})

	const uniques = 8
	const dups = 8
	body := func(u int) string {
		// Seeds vary the search, modes split the LUT keys: 8 distinct
		// coalescing keys over 2 distinct LUT keys.
		mode := "cpu"
		if u%2 == 1 {
			mode = "gpgpu"
		}
		return fmt.Sprintf(`{"network":"lenet5","mode":%q,"episodes":300,"samples":3,"seed":%d,"wait":true}`,
			mode, u/2+1)
	}

	var wg sync.WaitGroup
	plans := make([][]string, uniques) // plans[u] = the dup replies
	errs := make(chan error, uniques*dups)
	for u := 0; u < uniques; u++ {
		plans[u] = make([]string, dups)
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func(u, d int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
					strings.NewReader(body(u)))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client (%d,%d): status %d", u, d, resp.StatusCode)
					return
				}
				var or OptimizeResponse
				if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
					errs <- fmt.Errorf("client (%d,%d): decode: %w", u, d, err)
					return
				}
				if or.State != StateDone || len(or.Plan) == 0 {
					errs <- fmt.Errorf("client (%d,%d): state %q, %d plan bytes", u, d, or.State, len(or.Plan))
					return
				}
				plans[u][d] = string(or.Plan)
			}(u, d)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every duplicate saw the same bytes, and those bytes match the
	// reference pipeline exactly.
	for u := 0; u < uniques; u++ {
		for d := 1; d < dups; d++ {
			if plans[u][d] != plans[u][0] {
				t.Fatalf("request %d: duplicate %d got different plan bytes", u, d)
			}
		}
		var req OptimizeRequest
		if err := json.Unmarshal([]byte(body(u)), &req); err != nil {
			t.Fatal(err)
		}
		_, want, err := ReferencePlan(context.Background(), req, 0)
		if err != nil {
			t.Fatal(err)
		}
		if plans[u][0] != string(want) {
			t.Fatalf("request %d: served plan differs from the reference pipeline\nserved:    %s\nreference: %s",
				u, plans[u][0], want)
		}
	}

	// Profiling is single-flighted: exactly one invocation per
	// distinct LUT key (cpu and gpgpu), despite 64 racing clients.
	if cp.distinct() != 2 || cp.total() != 2 {
		t.Fatalf("profile invocations: %d calls over %d keys, want exactly 2 over 2", cp.total(), cp.distinct())
	}
	st := srv.Status()
	if st.Searches != uniques {
		t.Fatalf("searches %d, want %d (one per distinct request)", st.Searches, uniques)
	}
	if st.Rejected != 0 || st.Failed != 0 {
		t.Fatalf("outcomes: %+v", st)
	}
	if st.Coalesced+st.PlanCacheHits+st.PlanStoreHits == 0 {
		t.Fatalf("no request was coalesced or cache-served: %+v", st)
	}
}

// TestServeDrainCompletesInflight: a graceful drain with budget lets
// every admitted job finish — zero dropped, zero interrupted — while
// new work is refused.
func TestServeDrainCompletesInflight(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 2, QueueDepth: 16})
	const jobs = 6
	for i := 0; i < jobs; i++ {
		code, _, payload := postOptimize(t, ts.URL,
			fmt.Sprintf(`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":%d}`, i+1))
		if code != http.StatusAccepted {
			t.Fatalf("POST %d: status %d (%s)", i, code, payload)
		}
	}
	srv.Drain(30 * time.Second)
	st := srv.Status()
	if st.Completed != jobs {
		t.Fatalf("completed %d of %d admitted jobs", st.Completed, jobs)
	}
	if st.Interrupted != 0 || st.Failed != 0 || st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("after drain: %+v", st)
	}
	code, _, _ := postOptimize(t, ts.URL, fastBody(99))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST after drain: %d, want 503", code)
	}
}

// TestServeHardStopResumes: a zero-budget drain (the SIGKILL-adjacent
// path a caller can also reach via -drain-timeout 0) interrupts jobs —
// one parked in profiling, one still queued — and a second daemon on
// the same plan store re-admits both from their durable records and
// finishes them to plans byte-identical to the reference pipeline.
func TestServeHardStopResumes(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	cp := newCountingProfile(gate)
	srv, err := New(Config{MaxInflight: 1, QueueDepth: 4, PlanStore: dir, Profile: cp.fn()})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalHTTP(t, srv)

	bodies := []string{
		`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":1}`,
		`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":2}`,
	}
	for i, b := range bodies {
		code, _, payload := postOptimize(t, ts, b)
		if code != http.StatusAccepted {
			t.Fatalf("POST %d: status %d (%s)", i, code, payload)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Status().Inflight == 1 }, "first job to park in profiling")
	srv.Drain(0) // hard stop: profiling gate unblocks via ctx, worker exits
	st := srv.Status()
	if st.Interrupted != 2 || st.Completed != 0 {
		t.Fatalf("after hard stop: %+v", st)
	}

	// Second daemon, same store, no gate: both jobs come back from
	// their durable records and complete unattended.
	srv2, err := New(Config{MaxInflight: 2, QueueDepth: 4, PlanStore: dir, Profile: newCountingProfile(nil).fn()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Drain(0)
	if got := srv2.Status().Resumed; got != 2 {
		t.Fatalf("resumed %d jobs, want 2", got)
	}
	waitFor(t, 30*time.Second, func() bool { return srv2.Status().Completed == 2 }, "resumed jobs to finish")

	// The resumed plans are byte-identical to the reference pipeline.
	ts2 := newLocalHTTP(t, srv2)
	for i, b := range bodies {
		code, _, payload := postOptimize(t, ts2, b) // identical request, now cache-served
		if code != http.StatusOK {
			t.Fatalf("post-resume GET-equivalent %d: status %d (%s)", i, code, payload)
		}
		var or OptimizeResponse
		if err := json.Unmarshal(payload, &or); err != nil {
			t.Fatal(err)
		}
		var req OptimizeRequest
		if err := json.Unmarshal([]byte(b), &req); err != nil {
			t.Fatal(err)
		}
		_, want, err := ReferencePlan(context.Background(), req, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(or.Plan) != string(want) {
			t.Fatalf("resumed plan %d differs from reference\nresumed:   %s\nreference: %s", i, or.Plan, want)
		}
	}
}
