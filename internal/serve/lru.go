package serve

import (
	"container/list"
	"sync"
)

// lruCache is the warm in-memory plan cache in front of the durable
// plan store: a fixed-capacity LRU from request key to the marshaled
// plan bytes that were (or will be) persisted for that key. Serving
// from it skips both the search and the disk read, and because the
// cached value is the exact stored payload, a cache hit is
// byte-identical to a cold recompute.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key     string
	payload []byte
}

// newLRU returns an LRU holding up to cap entries; cap <= 0 selects
// the default capacity of 256 plans.
func newLRU(cap int) *lruCache {
	if cap <= 0 {
		cap = 256
	}
	return &lruCache{cap: cap, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached payload for key and marks it most recently
// used.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).payload, true
}

// add inserts or refreshes key, evicting the least recently used entry
// past capacity.
func (c *lruCache) add(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).payload = payload
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, payload: payload})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
