package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/store"
)

// corruptTail simulates a torn write: the file keeps its prefix but
// loses (mangled) trailing bytes, which must fail the stored CRC.
func corruptTail(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 {
		t.Fatalf("file %s too short to corrupt (%d bytes)", path, len(data))
	}
	for i := len(data) - 8; i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPlanStoreLastGoodRotation(t *testing.T) {
	ps, err := openPlanStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "lenet5|tx2-like|cpu|latency|e200|s3|r1"
	if _, _, ok := ps.getPlan(key); ok {
		t.Fatal("empty store reported a plan")
	}
	v1 := []byte(`{"plan":"v1"}`)
	v2 := []byte(`{"plan":"v2"}`)
	if err := ps.putPlan(key, v1, planMeta{}); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := ps.getPlan(key); !ok || string(got) != string(v1) {
		t.Fatalf("after put v1: got %q ok=%v", got, ok)
	}
	if err := ps.putPlan(key, v2, planMeta{}); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := ps.getPlan(key); string(got) != string(v2) {
		t.Fatalf("after put v2: got %q", got)
	}

	// A torn current generation falls back to the previous one.
	corruptTail(t, ps.planPath(key))
	got, _, ok := ps.getPlan(key)
	if !ok {
		t.Fatal("torn current generation should fall back to previous, got miss")
	}
	if string(got) != string(v1) {
		t.Fatalf("fallback: got %q, want previous generation %q", got, v1)
	}

	// Both generations torn: a miss, never an error or garbage.
	corruptTail(t, store.PreviousPath(ps.planPath(key)))
	if _, _, ok := ps.getPlan(key); ok {
		t.Fatal("fully corrupted store served a plan")
	}

	// A stored plan under a different key must not satisfy this key
	// (hash-collision / misplaced-file guard).
	if err := ps.putPlan("other-key", v1, planMeta{}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(ps.planPath("other-key"), ps.planPath("stolen-key")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ps.getPlan("stolen-key"); ok {
		t.Fatal("plan stored under a different key was served")
	}
}

// testTable profiles lenet5 cheaply for snapshot round-trips.
func testTable(t *testing.T) (*jobSpec, *lut.Table) {
	t.Helper()
	req := OptimizeRequest{Network: "lenet5", Mode: "cpu", Episodes: 300, Samples: 3}
	spec, err := req.spec()
	if err != nil {
		t.Fatal(err)
	}
	net := models.MustBuild(spec.Network)
	board, _ := platform.Preset(spec.Platform)
	tab, _, err := defaultProfile(nil)(context.Background(), net, board, spec.Mode, spec.Samples)
	if err != nil {
		t.Fatal(err)
	}
	return spec, tab
}

func TestJobRecordLifecycle(t *testing.T) {
	ps, err := openPlanStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, tab := testTable(t)
	key := spec.key()

	// Admission record: no snapshot yet, but the request round-trips
	// through the pending scan.
	if err := ps.saveJobRecord(spec, nil); err != nil {
		t.Fatal(err)
	}
	if snap := ps.loadSnapshot(key, tab); snap != nil {
		t.Fatal("admission record has no snapshot, loadSnapshot should return nil")
	}
	reqs, skipped, err := ps.pendingJobs()
	if err != nil || skipped != 0 || len(reqs) != 1 {
		t.Fatalf("pendingJobs: reqs=%d skipped=%d err=%v", len(reqs), skipped, err)
	}
	spec2, err := reqs[0].spec()
	if err != nil || spec2.key() != key {
		t.Fatalf("re-admitted request key %q (err %v), want %q", spec2.key(), err, key)
	}

	// Two checkpoint generations, then a torn current: loadSnapshot
	// must fall back to the previous checkpoint, not start from zero.
	var snaps [][]byte
	_, _, err = core.SearchCheckpointed(tab, core.Config{Episodes: spec.Episodes, Seed: spec.Seed},
		core.DurableOptions{Every: 100, Save: func(s *core.Snapshot) error {
			p, err := s.Marshal()
			if err != nil {
				return err
			}
			snaps = append(snaps, p)
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("need >= 2 checkpoints, got %d", len(snaps))
	}
	if err := ps.saveJobRecord(spec, snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := ps.saveJobRecord(spec, snaps[1]); err != nil {
		t.Fatal(err)
	}
	snap := ps.loadSnapshot(key, tab)
	if snap == nil {
		t.Fatal("loadSnapshot returned nil for a valid record")
	}
	if snap.Checkpoint.Episode != 200 {
		t.Fatalf("newest snapshot episode %d, want 200", snap.Checkpoint.Episode)
	}
	corruptTail(t, ps.jobPath(key))
	snap = ps.loadSnapshot(key, tab)
	if snap == nil {
		t.Fatal("torn current checkpoint should fall back to previous, got nil")
	}
	if snap.Checkpoint.Episode != 100 {
		t.Fatalf("fallback snapshot episode %d, want 100", snap.Checkpoint.Episode)
	}

	// Drop removes both generations; the pending scan is empty again.
	ps.dropJobRecord(key)
	reqs, skipped, err = ps.pendingJobs()
	if err != nil || skipped != 0 || len(reqs) != 0 {
		t.Fatalf("after drop: reqs=%d skipped=%d err=%v", len(reqs), skipped, err)
	}
}

// TestPendingJobsSkipsGarbage: a mangled record (both generations
// unreadable) is counted and skipped, never fatal — the daemon must
// come up over a damaged store.
func TestPendingJobsSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	ps, err := openPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := testTable(t)
	if err := ps.saveJobRecord(spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobsSubdir, "garbage.qsd"), []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	reqs, skipped, err := ps.pendingJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || skipped != 1 {
		t.Fatalf("got %d requests, %d skipped; want 1 and 1", len(reqs), skipped)
	}
}
