package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// benchServer starts a daemon for benchmarking.
func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		srv.Drain(0)
	})
	return srv, ts
}

// postOnce issues one wait:true request and checks the reply shape;
// it is goroutine-safe (no testing.B calls) for the coalesced case.
func postOnce(url, body string) (*OptimizeResponse, error) {
	resp, err := http.Post(url+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var or OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		return nil, err
	}
	if or.State != StateDone || len(or.Plan) == 0 {
		return nil, fmt.Errorf("state %q, %d plan bytes", or.State, len(or.Plan))
	}
	return &or, nil
}

func benchPost(b *testing.B, url, body string) *OptimizeResponse {
	b.Helper()
	or, err := postOnce(url, body)
	if err != nil {
		b.Fatal(err)
	}
	return or
}

func benchBody(seed int) string {
	return fmt.Sprintf(`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":%d,"wait":true}`, seed)
}

// BenchmarkServeOptimize measures the three request classes end to end
// over HTTP:
//
//	cold       unique request -> profile (first only) + full search
//	warm       repeated request -> served from the plan LRU
//	coalesced  8 concurrent duplicates -> one search, 8 replies
func BenchmarkServeOptimize(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		_, ts := benchServer(b, Config{MaxInflight: 4, QueueDepth: 256})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchPost(b, ts.URL, benchBody(i+1)) // unique seed: never cached
		}
		b.ReportMetric(float64(b.Elapsed().Seconds())/float64(b.N)*1e3, "ms/req")
	})

	b.Run("warm", func(b *testing.B) {
		_, ts := benchServer(b, Config{MaxInflight: 4, QueueDepth: 256})
		benchPost(b, ts.URL, benchBody(1)) // populate the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			or := benchPost(b, ts.URL, benchBody(1))
			if !or.Cached {
				b.Fatal("warm request missed the cache")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Seconds())/float64(b.N)*1e3, "ms/req")
	})

	b.Run("coalesced", func(b *testing.B) {
		const dups = 8
		_, ts := benchServer(b, Config{MaxInflight: 4, QueueDepth: 256})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body := benchBody(1_000_000 + i) // fresh seed per round
			var wg sync.WaitGroup
			errs := make(chan error, dups)
			for d := 0; d < dups; d++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := postOnce(ts.URL, body); err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Seconds())/float64(b.N)*1e3, "ms/round")
	})
}
