// Package loadtest drives a running qsdnn serve daemon with a fixed
// pool of concurrent clients and reports client-observed latency
// percentiles and throughput. scripts/bench.sh uses it to produce
// BENCH_serve.json; the package test doubles as the >= 64-client
// zero-error acceptance gate.
package loadtest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent clients (default 64).
	Clients int
	// Requests is the total request count (default 4 * Clients).
	Requests int
	// Bodies are the POST /v1/optimize payloads, assigned round-robin.
	Bodies [][]byte
	// Timeout bounds one request (default 2 minutes).
	Timeout time.Duration
}

// Class aggregates the latency distribution of one response class
// (e.g. degraded brownout answers, budget-exhausted best-effort plans).
type Class struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns,omitempty"`
	P95   time.Duration `json:"p95_ns,omitempty"`
	P99   time.Duration `json:"p99_ns,omitempty"`
	Max   time.Duration `json:"max_ns,omitempty"`
}

func classOf(ds []time.Duration) Class {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	c := Class{Count: len(ds)}
	if len(ds) == 0 {
		return c
	}
	c.P50 = percentile(ds, 50)
	c.P95 = percentile(ds, 95)
	c.P99 = percentile(ds, 99)
	c.Max = ds[len(ds)-1]
	return c
}

// Result is the aggregate outcome of a load run.
type Result struct {
	Requests   int           `json:"requests"`
	Clients    int           `json:"clients"`
	Errors     int           `json:"errors"`
	ByStatus   map[int]int   `json:"by_status"`
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`
	P99        time.Duration `json:"p99_ns"`
	Max        time.Duration `json:"max_ns"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"requests_per_second"`
	// Degraded aggregates brownout substitutions ("degraded":true
	// responses); BudgetExhausted aggregates best-effort plans returned
	// at the deadline ("budget_exhausted":true); Revalidating aggregates
	// quarantined-but-served plans awaiting a self-healing re-search
	// ("revalidating":true). All are zero-count on a healthy run.
	Degraded        Class `json:"degraded"`
	BudgetExhausted Class `json:"budget_exhausted"`
	Revalidating    Class `json:"revalidating"`
}

// String renders the run for humans.
func (r *Result) String() string {
	return fmt.Sprintf("%d requests / %d clients: %d errors, p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms, %.1f req/s",
		r.Requests, r.Clients, r.Errors,
		float64(r.P50)/1e6, float64(r.P95)/1e6, float64(r.P99)/1e6, float64(r.Max)/1e6,
		r.Throughput)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// durations using nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Run fires opt.Requests POSTs at opt.BaseURL from opt.Clients
// concurrent workers. A request counts as an error if it fails at the
// transport layer, returns a status outside {200, 202, 429, 503}, or
// returns 429/503 without a Retry-After header — 429 is the daemon's
// documented backpressure answer and 503 its honest overload/degraded
// answer, but both are only acceptable when they tell the client when
// to come back. The caller can decide from ByStatus whether rejections
// are acceptable for the run.
func Run(ctx context.Context, opt Options) (*Result, error) {
	if opt.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: BaseURL is required")
	}
	if len(opt.Bodies) == 0 {
		return nil, fmt.Errorf("loadtest: at least one request body is required")
	}
	if opt.Clients <= 0 {
		opt.Clients = 64
	}
	if opt.Requests <= 0 {
		opt.Requests = 4 * opt.Clients
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Minute
	}
	client := &http.Client{Timeout: opt.Timeout}
	url := opt.BaseURL + "/v1/optimize"

	var mu sync.Mutex
	durations := make([]time.Duration, 0, opt.Requests)
	var degradedD, budgetD, revalD []time.Duration
	byStatus := map[int]int{}
	errorsN := 0

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := opt.Bodies[i%len(opt.Bodies)]
				t0 := time.Now()
				r, err := post(ctx, client, url, body)
				d := time.Since(t0)
				bad := err != nil
				switch r.status {
				case http.StatusOK, http.StatusAccepted:
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Backpressure and degradation are honest only with
					// a Retry-After; a bare 429/503 strands the client.
					if !r.retryAfter {
						bad = true
					}
				default:
					bad = true
				}
				mu.Lock()
				durations = append(durations, d)
				byStatus[r.status]++
				if r.degraded {
					degradedD = append(degradedD, d)
				}
				if r.budget {
					budgetD = append(budgetD, d)
				}
				if r.revalidating {
					revalD = append(revalD, d)
				}
				if bad {
					errorsN++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opt.Requests; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	res := &Result{
		Requests: len(durations),
		Clients:  opt.Clients,
		Errors:   errorsN,
		ByStatus: byStatus,
		P50:      percentile(durations, 50),
		P95:      percentile(durations, 95),
		P99:      percentile(durations, 99),
		Elapsed:  elapsed,
	}
	if len(durations) > 0 {
		res.Max = durations[len(durations)-1]
	}
	if elapsed > 0 {
		res.Throughput = float64(len(durations)) / elapsed.Seconds()
	}
	res.Degraded = classOf(degradedD)
	res.BudgetExhausted = classOf(budgetD)
	res.Revalidating = classOf(revalD)
	return res, nil
}

// reply is one request's client-observed outcome: the status (0 on
// transport failure), whether a Retry-After header came back, and
// whether the body flagged the plan as degraded or budget-exhausted.
// The flags are detected by substring, not a full unmarshal — the
// fields are only ever emitted as literal true.
type reply struct {
	status       int
	retryAfter   bool
	degraded     bool
	budget       bool
	revalidating bool
}

// post issues one request and classifies the response.
func post(ctx context.Context, client *http.Client, url string, body []byte) (reply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return reply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return reply{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	r := reply{
		status:       resp.StatusCode,
		retryAfter:   resp.Header.Get("Retry-After") != "",
		degraded:     bytes.Contains(payload, []byte(`"degraded":true`)),
		budget:       bytes.Contains(payload, []byte(`"budget_exhausted":true`)),
		revalidating: bytes.Contains(payload, []byte(`"revalidating":true`)),
	}
	return r, err
}
